(* jigsaw-sim: run scheduling simulations from the command line.

   Examples:
     jigsaw-sim --trace Thunder --sched Jigsaw
     jigsaw-sim --trace Synth-16 --sched all --scenario 10%
     jigsaw-sim --swf my_trace.swf --radix 18 --sched Jigsaw --table2
     jigsaw-sim --trace Synth-22 --sched all --mtbf 2e6 --mttr 2e4 --requeue 3
     jigsaw-sim --sweep --sched all --jobs 4          # full preset x scheme grid
     jigsaw-sim --sweep --sched all --fingerprint     # deterministic digests *)

open Cmdliner

(* Stop generating new --mtbf failures once the queue is likely drained:
   the last arrival plus twice the longest runtime request. *)
let default_horizon (w : Trace.Workload.t) =
  let jobs = w.jobs in
  let last_arrival =
    if Array.length jobs = 0 then 0.0 else jobs.(Array.length jobs - 1).arrival
  in
  let max_est =
    Array.fold_left
      (fun acc (j : Trace.Job.t) -> Float.max acc j.est_runtime)
      0.0 jobs
  in
  last_arrival +. (2.0 *. max_est)

(* Advance a live simulation in [every]-sized simulated-time slices,
   writing a checkpoint after each slice.  Every write is atomic (temp
   file + rename), so a kill at any wall-clock instant leaves the last
   completed checkpoint intact. *)
let checkpoint_loop sim ~every ~out =
  match every with
  | None -> ()
  | Some dt ->
      let rec loop t =
        if not (Sched.Simulator.is_finished sim) then begin
          Sched.Simulator.run_until sim t;
          Sched.Checkpoint.write ~path:out sim;
          loop (t +. dt)
        end
      in
      loop (Sched.Simulator.now sim +. dt)

(* --restore: the checkpoint is self-describing (workload, faults and
   scheme travel inside it), so no --trace/--sched flags are read. *)
let run_restored ~path ~checkpoint_every ~checkpoint_out ~json ~fingerprint
    ~table2 ~net =
  match Sched.Checkpoint.restore ?net ~path () with
  | Error m ->
      Format.eprintf "cannot restore %s: %s@." path m;
      exit 1
  | Ok sim ->
      (match checkpoint_every with
      | Some _ ->
          let out = Option.value checkpoint_out ~default:path in
          checkpoint_loop sim ~every:checkpoint_every ~out
      | None -> ());
      let metrics, _ = Sched.Simulator.finish sim in
      let m = metrics in
      if fingerprint then
        Format.printf "%s/%s %s@." m.Sched.Metrics.trace_name
          m.Sched.Metrics.sched_name
          (Sched.Metrics.fingerprint m)
      else if json then Format.printf "%s@." (Sched.Metrics.to_json_string m)
      else begin
        Format.printf "%a@." (Sched.Metrics.pp ~format:Sched.Metrics.Human) m;
        if table2 then begin
          let h = m.Sched.Metrics.inst_hist in
          Format.printf
            "  instantaneous utilization: >=98:%d  95-97:%d  90-95:%d  80-90:%d  60-80:%d  <=60:%d@."
            h.(5) h.(4) h.(3) h.(2) h.(1) h.(0)
        end;
        match Sched.Simulator.net_summary sim with
        | Some s -> Format.printf "%a@." Routing.Telemetry.pp_summary s
        | None -> ()
      end

let run preset swf radix sched scenario seed window truncate jobs sweep full
    scale table2 series mtbf mttr fault_seed fault_trace fault_horizon requeue
    resubmit_delay charge_lost_work moldable trace_out trace_format profile
    json fingerprint series_out checkpoint_every checkpoint_out restore
    resume_sweep net_telemetry net_routing net_flows =
  let net =
    if not net_telemetry then None
    else
      match
        ( Routing.Telemetry.policy_of_name net_routing,
          Routing.Telemetry.shape_of_name net_flows )
      with
      | Some p, Some sh -> Some (p, sh)
      | None, _ ->
          Format.eprintf "unknown --net-routing %s (dmodk|greedy|jigsaw)@."
            net_routing;
          exit 1
      | _, None ->
          Format.eprintf "unknown --net-flows %s (alltoall|ring)@." net_flows;
          exit 1
  in
  (match restore with
  | Some path ->
      if preset <> None || swf <> None || sweep then begin
        Format.eprintf
          "--restore runs a self-describing checkpoint; drop --trace/--swf/--sweep@.";
        exit 1
      end;
      run_restored ~path ~checkpoint_every ~checkpoint_out ~json ~fingerprint
        ~table2 ~net;
      exit 0
  | None -> ());
  let jobs = if jobs = 0 then Par.Pool.default_jobs () else max 1 jobs in
  let scenario =
    match Trace.Scenario.of_name scenario with
    | Ok s -> s
    | Error m ->
        Format.eprintf "%s@." m;
        exit 1
  in
  let allocs =
    match Sched.Allocator.of_cli sched with
    | Ok l -> l
    | Error m ->
        Format.eprintf "%s@." m;
        exit 1
  in
  let resilience =
    Cli_common.resilience ~requeue ~resubmit_delay ~charge_lost_work
  in
  (* Fault events are topology-specific, so the sweep regenerates them
     per entry; scripted traces cannot follow a cluster change. *)
  (match (fault_trace, mtbf) with
  | Some _, Some _ ->
      Format.eprintf "--fault-trace and --mtbf are mutually exclusive@.";
      exit 1
  | Some _, None when sweep ->
      Format.eprintf
        "--fault-trace ids are topology-specific; use --mtbf with --sweep@.";
      exit 1
  | _ -> ());
  let faults_for (entry : Trace.Presets.entry) (workload : Trace.Workload.t) =
    let topo = Fattree.Topology.of_radix entry.cluster_radix in
    match (fault_trace, mtbf) with
    | Some path, None -> (
        match Trace.Faults.load path with
        | Ok f -> f
        | Error m ->
            (* Exit 2: input-file rejection (the message carries the
               offending line number), distinct from usage errors. *)
            Format.eprintf "cannot load fault trace %s: %s@." path m;
            exit 2)
    | None, Some mtbf ->
        let horizon =
          match fault_horizon with
          | Some h -> h
          | None -> default_horizon workload
        in
        Trace.Faults.generate ~seed:fault_seed ~mtbf ~mttr ~horizon topo
    | _ -> Trace.Faults.none
  in
  let truncated (w : Trace.Workload.t) =
    let w =
      match truncate with Some n -> Trace.Workload.truncate w n | None -> w
    in
    Cli_common.apply_moldable moldable w
  in
  let mk_cell (entry : Trace.Presets.entry) alloc =
    let workload = truncated entry.workload in
    Sched.Sweep.cell ~scenario ~scenario_seed:seed ~backfill_window:window
      ~backfill:(window > 0)
      ~faults:(faults_for entry workload)
      ~resilience ~profile ?net ~radix:entry.cluster_radix alloc workload
  in
  Cli_common.check_scale_full ~action:"runs" scale full;
  let entries =
    if sweep then begin
      if preset <> None || swf <> None then begin
        Format.eprintf "--sweep runs every preset; drop --trace/--swf@.";
        exit 1
      end;
      if scale then Trace.Presets.scale_all () else Trace.Presets.all ~full
    end
    else begin
      let entry =
        match (preset, swf) with
        | Some name, None -> (
            match Cli_common.preset_entry ~full name with
            | Ok e -> e
            | Error m ->
                Format.eprintf "%s@." m;
                exit 1)
        | None, Some path -> (
            match
              Trace.Swf.load ~name:(Filename.basename path) ~system_nodes:0 path
            with
            | Ok w -> { Trace.Presets.workload = w; cluster_radix = radix }
            | Error m ->
                (* Exit 2: input-file rejection, line number included. *)
                Format.eprintf "cannot load %s: %s@." path m;
                exit 2)
        | Some _, Some _ ->
            Format.eprintf "--trace and --swf are mutually exclusive@.";
            exit 1
        | None, None ->
            Format.eprintf "one of --trace or --swf is required@.";
            exit 1
      in
      [ entry ]
    end
  in
  let cells =
    List.concat_map (fun e -> List.map (mk_cell e) allocs) entries
    |> Array.of_list
  in
  (* Sinks buffer into channels, which only one domain may write: event
     tracing stays on the serial path. *)
  if trace_out <> None && (sweep || jobs > 1) then begin
    Format.eprintf "--trace-out is serial-only; drop --sweep/--jobs@.";
    exit 1
  end;
  (match checkpoint_every with
  | Some _ when sweep || List.length allocs > 1 || jobs > 1 || trace_out <> None
    ->
      Format.eprintf
        "--checkpoint-every snapshots a single serial run (one trace, one \
         scheme); drop --sweep/--jobs/--trace-out and pick one --sched@.";
      exit 1
  | Some _ when checkpoint_out = None ->
      Format.eprintf "--checkpoint-every requires --checkpoint-out FILE@.";
      exit 1
  | _ -> ());
  if resume_sweep <> None && (trace_out <> None || checkpoint_every <> None)
  then begin
    Format.eprintf
      "--resume-sweep journals sweep cells; drop --trace-out/--checkpoint-every@.";
    exit 1
  end;
  let out_format = if json then Sched.Metrics.Json else Sched.Metrics.Human in
  let multi = Array.length cells > 1 in
  if (not json) && not fingerprint then begin
    if sweep then
      Format.printf "sweep: %d cells (%d traces x %d schemes), %d domain%s@.@."
        (Array.length cells) (List.length entries) (List.length allocs) jobs
        (if jobs = 1 then "" else "s")
    else begin
      let entry = List.hd entries in
      let workload = truncated entry.workload in
      let topo = Fattree.Topology.of_radix entry.cluster_radix in
      let faults = faults_for entry workload in
      Format.printf "trace: %a@." Trace.Workload.pp_summary
        (Trace.Workload.summarize workload);
      Format.printf "cluster: %a; scenario %s; backfill window %d@."
        Fattree.Topology.pp topo (Trace.Scenario.name scenario) window;
      if not (Trace.Faults.is_empty faults) then
        Format.printf "faults: %d events%s@."
          (Trace.Faults.num_events faults)
          (Cli_common.describe_requeue ~resubmit_delay requeue);
      Format.printf "@."
    end
  end;
  let t_start = Unix.gettimeofday () in
  let results =
    match (checkpoint_every, trace_out) with
    | Some _, _ ->
        (* Single serial cell, advanced slice by slice with a checkpoint
           after each slice; the final metrics are computed by [finish]
           exactly as an uninterrupted run would. *)
        let c = cells.(0) in
        let t0 = Unix.gettimeofday () in
        let prof = if profile then Some (Obs.Prof.create ()) else None in
        let cfg =
          Sched.Simulator.Config.make ~scenario:c.scenario
            ~scenario_seed:c.scenario_seed ~backfill_window:c.backfill_window
            ~backfill:c.backfill ~faults:c.faults ~resilience:c.resilience
            ?prof ?net:c.net ~radix:c.radix c.allocator
        in
        let sim = Sched.Simulator.start cfg c.workload in
        let out = Option.get checkpoint_out in
        checkpoint_loop sim ~every:checkpoint_every ~out;
        let metrics, _ = Sched.Simulator.finish sim in
        [|
          {
            Sched.Sweep.metrics;
            prof;
            net = Sched.Simulator.net_summary sim;
            wall_s = Unix.gettimeofday () -. t0;
            restored = false;
          };
        |]
    | None, None when sweep -> (
        (* Graceful SIGINT/SIGTERM: finish (and journal) the cells in
           flight, start nothing new, exit 130 — a rerun with the same
           --resume-sweep file completes only the missing cells. *)
        let stop = Atomic.make false in
        let arm s =
          try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true))
          with Invalid_argument _ -> ()
        in
        arm Sys.sigint;
        arm Sys.sigterm;
        match
          Sched.Sweep.run ~jobs ?manifest:resume_sweep
            ~should_stop:(fun () -> Atomic.get stop)
            cells
        with
        | results -> results
        | exception Sched.Sweep.Interrupted ->
            Format.eprintf "interrupted: in-flight cells journaled%s@."
              (match resume_sweep with
              | Some f ->
                  Printf.sprintf " to %s; rerun with the same flags to finish"
                    f
              | None ->
                  "; use --resume-sweep FILE to make interrupted sweeps \
                   resumable");
            exit 130)
    | None, None -> Sched.Sweep.run ~jobs ?manifest:resume_sweep cells
    | None, Some path ->
        (* Serial path with a live sink: all cells of one invocation
           append to a single trace file; the per-run [Run_meta] event
           delimits them (jigsaw-trace splits on it). *)
        let trace_fmt =
          match
            Cli_common.parse_format ~flag:"trace format" ~allow_auto:false
              trace_format
          with
          | Ok f -> f
          | Error m ->
              Format.eprintf "%s@." m;
              exit 1
        in
        let fmt =
          match trace_fmt with
          | Some f -> f
          | None -> Obs.Sink.format_of_path path
        in
        let oc = Out_channel.open_text path in
        let sink = Obs.Sink.to_channel fmt oc in
        let results =
          Array.map
            (fun (c : Sched.Sweep.cell) ->
              let t0 = Unix.gettimeofday () in
              let prof = if profile then Some (Obs.Prof.create ()) else None in
              let cfg =
                Sched.Simulator.Config.make ~scenario:c.scenario
                  ~scenario_seed:c.scenario_seed
                  ~backfill_window:c.backfill_window ~backfill:c.backfill
                  ~faults:c.faults ~resilience:c.resilience ~sink ?prof
                  ?net:c.net ~radix:c.radix c.allocator
              in
              let sim = Sched.Simulator.start cfg c.workload in
              let metrics, _ = Sched.Simulator.finish sim in
              {
                Sched.Sweep.metrics;
                prof;
                net = Sched.Simulator.net_summary sim;
                wall_s = Unix.gettimeofday () -. t0;
                restored = false;
              })
            cells
        in
        Out_channel.close oc;
        if (not json) && not fingerprint then
          Format.printf "event trace -> %s@." path;
        results
  in
  let total_wall = Unix.gettimeofday () -. t_start in
  (* A FILE.csv series path grows the cell's trace/scheme names before
     its extension when several cells run (FILE.Thunder.Jigsaw.csv), so
     runs never clobber each other. *)
  let series_file path (c : Sched.Sweep.cell) =
    if not multi then path
    else begin
      let tag =
        if sweep then
          Printf.sprintf "%s.%s" c.workload.Trace.Workload.name
            c.allocator.Sched.Allocator.name
        else c.allocator.Sched.Allocator.name
      in
      Printf.sprintf "%s.%s%s" (Filename.remove_extension path) tag
        (Filename.extension path)
    end
  in
  Array.iteri
    (fun i (r : Sched.Sweep.result) ->
      let c = cells.(i) in
      let m = r.metrics in
      if fingerprint then
        (* The stable cell id, not the display label: fingerprint lines
           are diffed across runs and machines, so the key must not
           depend on grid position or flag order. *)
        Format.printf "%s %s@." c.id (Sched.Metrics.fingerprint m)
      else begin
        (if json then
           let extra =
             [
               ("wall_clock_s", Obs.Json.Num r.wall_s);
               ("jobs", Obs.Json.Num (float_of_int jobs));
             ]
           in
           Format.printf "%s@." (Sched.Metrics.to_json_string ~extra m)
         else Format.printf "%a@." (Sched.Metrics.pp ~format:out_format) m);
        (match r.prof with
        | Some p ->
            if json then begin
              let b = Buffer.create 1024 in
              Obs.Prof.write_json b p;
              Format.printf "%s@." (Buffer.contents b)
            end
            else Format.printf "%a" Obs.Prof.pp_report p
        | None -> ());
        (match r.net with
        | Some s when not json ->
            Format.printf "%a@." Routing.Telemetry.pp_summary s
        | _ -> ());
        if table2 && not json then begin
          let h = m.inst_hist in
          Format.printf
            "  instantaneous utilization: >=98:%d  95-97:%d  90-95:%d  80-90:%d  60-80:%d  <=60:%d@."
            h.(5) h.(4) h.(3) h.(2) h.(1) h.(0)
        end;
        (match series with
        | None -> ()
        | Some path ->
            let file =
              if sweep then
                Printf.sprintf "%s.%s.%s.csv" path
                  c.workload.Trace.Workload.name
                  c.allocator.Sched.Allocator.name
              else
                Printf.sprintf "%s.%s.csv" path c.allocator.Sched.Allocator.name
            in
            Out_channel.with_open_text file (fun oc ->
                Sched.Metrics.write_series_csv oc m);
            if not json then Format.printf "  utilization series -> %s@." file);
        match series_out with
        | None -> ()
        | Some path ->
            let file = series_file path c in
            Out_channel.with_open_text file (fun oc ->
                Sched.Metrics.write_series_csv oc m);
            if not json then Format.printf "  utilization series -> %s@." file
      end)
    results;
  if sweep && (not json) && not fingerprint then begin
    (match resume_sweep with
    | Some path ->
        let restored =
          Array.fold_left
            (fun n (r : Sched.Sweep.result) -> if r.restored then n + 1 else n)
            0 results
        in
        Format.printf "@.manifest %s: %d cell%s restored, %d run@." path
          restored
          (if restored = 1 then "" else "s")
          (Array.length results - restored)
    | None -> ());
    Format.printf "@.sweep wall-clock: %.2fs over %d domain%s@." total_wall jobs
      (if jobs = 1 then "" else "s")
  end

let cmd =
  let preset =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"NAME"
           ~doc:"Preset trace name (Table 1): Synth-16/22/28, Thunder, Atlas, Aug/Sep/Oct/Nov-Cab.")
  in
  let swf =
    Arg.(value & opt (some file) None & info [ "swf" ] ~docv:"FILE"
           ~doc:"Load a trace in Standard Workload Format instead of a preset.")
  in
  let radix =
    Arg.(value & opt int 18 & info [ "radix" ] ~docv:"K"
           ~doc:"Cluster switch radix for --swf traces (presets carry their own).")
  in
  let sched =
    Arg.(value & opt string "Jigsaw" & info [ "sched" ] ~docv:"SCHEME"
           ~doc:"Scheduler: Baseline, LC+S, Jigsaw, LaaS, TA, or 'all'.")
  in
  let scenario =
    Arg.(value & opt string "None" & info [ "scenario" ] ~docv:"S"
           ~doc:"Isolation speed-up scenario: None, 5%, 10%, 20%, V2, Random.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "scenario-seed" ] ~docv:"N"
           ~doc:"Seed for randomized scenarios (V2, Random).")
  in
  let window =
    Arg.(value & opt int 50 & info [ "window" ] ~docv:"N"
           ~doc:"EASY backfilling lookahead window (paper uses 50); 0 disables backfilling (plain FIFO).")
  in
  let truncate =
    Arg.(value & opt (some int) None & info [ "truncate" ] ~docv:"N"
           ~doc:"Truncate each trace to its first N jobs.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for parallel simulation: each trace x scheme \
                 cell runs on its own domain and results merge in submission \
                 order, so output is byte-identical to --jobs 1. 0 picks the \
                 machine's recommended domain count.")
  in
  let sweep =
    Arg.(value & flag & info [ "sweep" ]
           ~doc:"Run the full preset x scheme grid (all 9 Table-1 traces \
                 against every --sched scheme) in one invocation; combine \
                 with --jobs for a parallel sweep.")
  in
  let full =
    Cli_common.full_arg ~doc:"Use paper-scale preset traces (slow)."
  in
  let scale =
    Cli_common.scale_arg
      ~doc:"Use the radix-48 scale tier: the nine workload families \
            re-targeted at a 27648-node cluster (names carry an @48 \
            suffix, e.g. Synth-16\\@48), for measuring allocator cost \
            at large radix. With --sweep, runs the 45-cell scale grid; \
            incompatible with --full."
  in
  let table2 =
    Arg.(value & flag & info [ "table2" ]
           ~doc:"Also print the instantaneous-utilization histogram.")
  in
  let series =
    Arg.(value & opt (some string) None & info [ "series" ] ~docv:"PREFIX"
           ~doc:"Dump the utilization time series to PREFIX.<scheme>.csv \
                 (PREFIX.<trace>.<scheme>.csv under --sweep).")
  in
  let mtbf =
    Arg.(value & opt (some float) None & info [ "mtbf" ] ~docv:"SECONDS"
           ~doc:"Inject exponential failures: per-component mean time between \
                 failures (nodes, cables and switches each fail independently). \
                 Expected unavailable fraction per component is mttr/(mtbf+mttr). \
                 Under --sweep the stream is regenerated per cluster from the \
                 same seed.")
  in
  let mttr =
    Arg.(value & opt float 3600.0 & info [ "mttr" ] ~docv:"SECONDS"
           ~doc:"Mean time to repair for --mtbf failures.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
           ~doc:"Seed for the --mtbf failure streams.")
  in
  let fault_trace =
    Arg.(value & opt (some file) None & info [ "fault-trace" ] ~docv:"FILE"
           ~doc:"Scripted fault trace: one '<time> fail|repair \
                 node|leaf-cable|l2-cable|leaf|l2|spine <id>' per line.")
  in
  let fault_horizon =
    Arg.(value & opt (some float) None & info [ "fault-horizon" ] ~docv:"SECONDS"
           ~doc:"Stop generating new --mtbf failures after this simulated time \
                 (default: last arrival + twice the longest runtime request).")
  in
  let requeue =
    Cli_common.requeue_arg
      ~doc:"Fault-recovery policy for killed jobs: RETRIES (resubmit each \
            victim up to RETRIES times), 'shrink' (moldable victims shed \
            only their failed nodes and keep running; others are \
            abandoned), or 'shrink:RETRIES' (shrink when possible, \
            resubmit the rest). Without this flag killed jobs are \
            abandoned."
  in
  let resubmit_delay =
    Cli_common.resubmit_delay_arg
      ~doc:"Delay between a fault killing a job and its resubmission."
  in
  let charge_lost_work =
    Arg.(value & opt bool true & info [ "charge-lost-work" ] ~docv:"BOOL"
           ~doc:"Count every killed attempt's node-seconds as lost work \
                 (false: only jobs abandoned for good are charged).")
  in
  let moldable =
    Cli_common.moldable_arg
      ~doc:"Make every job moldable around its rigid request: granted \
            sizes may range over [ceil(MIN*size), floor(MAX*size)] \
            (default 0.5,2.0) with the rigid size preferred, and \
            runtimes scale work-conservingly with the granted size. \
            Trace names gain a '+m' suffix, so cell ids and checkpoints \
            never collide with rigid runs."
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the structured event trace (arrivals, passes, \
                 allocation attempts, starts, reservations, completions, \
                 faults, kills) to FILE; all schemes of the invocation \
                 append to it. Analyze with jigsaw-trace. Serial-only \
                 (incompatible with --sweep and --jobs > 1).")
  in
  let trace_format =
    Arg.(value & opt (some string) None & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Trace format: jsonl or csv (default: csv for a .csv \
                 FILE, jsonl otherwise).")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Collect and print per-phase wall-clock profiles: probe and \
                 reservation span timers, probe-outcome and state-operation \
                 counters, queue/occupancy gauges. Each cell profiles into \
                 its own registry.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Machine-readable output: one flat JSON object per result \
                 row (and per --profile report) instead of the human text. \
                 Rows carry wall_clock_s and the domain count (jobs).")
  in
  let fingerprint =
    Arg.(value & flag & info [ "fingerprint" ]
           ~doc:"Print one 'label digest' line per cell instead of metrics: \
                 the behavioural fingerprint (wall-clock excluded), \
                 byte-comparable across --jobs settings.")
  in
  let series_out =
    Arg.(value & opt (some string) None & info [ "series-out" ] ~docv:"FILE"
           ~doc:"Dump the utilization time series to FILE at full float \
                 precision (with several cells, FILE gains the cell's \
                 names before its extension).")
  in
  let checkpoint_every =
    Arg.(value & opt (some float) None & info [ "checkpoint-every" ]
           ~docv:"SIMTIME"
           ~doc:"Checkpoint the simulation every SIMTIME simulated seconds to \
                 --checkpoint-out (atomic write: temp file + rename). Single \
                 serial run only (one trace, one scheme). Restoring the file \
                 and finishing reproduces the uninterrupted run's fingerprint \
                 bit for bit.")
  in
  let checkpoint_out =
    Arg.(value & opt (some string) None & info [ "checkpoint-out" ] ~docv:"FILE"
           ~doc:"Destination file for --checkpoint-every snapshots (each \
                 overwrites the last).")
  in
  let restore =
    Arg.(value & opt (some file) None & info [ "restore" ] ~docv:"FILE"
           ~doc:"Resume a checkpointed simulation and run it to completion. \
                 The file is self-describing (workload, scheme, faults and \
                 all mid-flight state travel inside it), so --trace/--sched \
                 are not read; --json/--fingerprint/--table2 still shape the \
                 output, and --checkpoint-every continues snapshotting \
                 (default destination: the restored file).")
  in
  let resume_sweep =
    Arg.(value & opt (some string) None & info [ "resume-sweep" ] ~docv:"FILE"
           ~doc:"Journal every finished sweep cell to FILE (one \
                 fingerprint-verified row per cell) and, when FILE already \
                 exists, skip the cells it records — an interrupted --sweep \
                 rerun with the same flags completes only the missing cells \
                 and reports identical results.")
  in
  let net_telemetry =
    Arg.(value & flag & info [ "net-telemetry" ]
           ~doc:"Route every running job's synthetic flow set and measure \
                 per-channel congestion and cross-job interference live: \
                 each start routes the job's flows under --net-routing, each \
                 completion or kill retracts them, maintaining incremental \
                 channel loads, shared-channel and interfered-flow counts. \
                 Emits net_route/net_sample trace events (see jigsaw-trace) \
                 and prints a telemetry summary per cell. Pure observer: \
                 metrics fingerprints are unchanged.")
  in
  let net_routing =
    Arg.(value & opt string "jigsaw" & info [ "net-routing" ] ~docv:"POLICY"
           ~doc:"Routing policy for --net-telemetry: dmodk (static \
                 destination-mod-k up-paths), greedy (load-aware per-job \
                 routing), or jigsaw (forwarding tables over the job's own \
                 allocated cables, as the paper's compiler would emit).")
  in
  let net_flows =
    Arg.(value & opt string "alltoall" & info [ "net-flows" ] ~docv:"SHAPE"
           ~doc:"Synthetic flow set routed per job: alltoall (every ordered \
                 node pair) or ring (each node to its successor).")
  in
  let term =
    Term.(
      const run $ preset $ swf $ radix $ sched $ scenario $ seed $ window
      $ truncate $ jobs $ sweep $ full $ scale $ table2 $ series $ mtbf $ mttr
      $ fault_seed $ fault_trace $ fault_horizon $ requeue $ resubmit_delay
      $ charge_lost_work $ moldable $ trace_out $ trace_format $ profile $ json
      $ fingerprint $ series_out $ checkpoint_every $ checkpoint_out $ restore
      $ resume_sweep $ net_telemetry $ net_routing $ net_flows)
  in
  Cmd.v
    (Cmd.info "jigsaw-sim" ~version:"1.0.0"
       ~doc:"Trace-driven fat-tree scheduling simulation (Jigsaw, HPDC'21)")
    term

let () = exit (Cmd.eval cmd)
