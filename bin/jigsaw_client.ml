(* jigsaw-client: talk to a running jigsaw-daemon.

   Examples:
     jigsaw-client --socket jig.sock --submit 64,3600
     jigsaw-client --socket jig.sock --fail node,12 --at 500
     jigsaw-client --socket jig.sock --play Synth-16 --jobs 50
     jigsaw-client --socket jig.sock --drain --fingerprint
     jigsaw-client --socket jig.sock --status

   Every state-mutating request carries a request id (rid); on a
   connection failure, a missing reply, or an overloaded shed the client
   retries with exponential backoff plus jitter, and the daemon's rid
   table turns the retries into acknowledged no-ops — at-most-once
   application with at-least-once delivery, surviving daemon crashes in
   between. *)

open Cmdliner

let () = Random.self_init ()

type conn = { mutable fd : Unix.file_descr option }

let disconnect c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.fd <- None

let connect c sock =
  match c.fd with
  | Some fd -> fd
  | None ->
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      (try Unix.connect fd (ADDR_UNIX sock)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      c.fd <- Some fd;
      fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let read_line_fd fd =
  let b = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length b = 0 then raise End_of_file else Buffer.contents b
    | _ ->
        if Bytes.get byte 0 = '\n' then Buffer.contents b
        else (Buffer.add_char b (Bytes.get byte 0); go ())
  in
  go ()

let backoff attempt =
  (* Exponential with full jitter, capped at 2 s. *)
  Random.float (Float.min 2.0 (0.05 *. Float.pow 2.0 (float_of_int attempt)))

let json_line fields =
  let b = Buffer.create 128 in
  Obs.Json.write b fields;
  Buffer.add_char b '\n';
  Buffer.contents b

(* One request, at-least-once: retries rebuild the connection, resend
   the same line (same rid), and honor overload retry-after hints.
   Returns the parsed reply fields of the first definitive answer. *)
let rpc c ~sock ~retries line =
  let rec go attempt =
    let retry_after hint =
      if attempt >= retries then None
      else begin
        disconnect c;
        Unix.sleepf (Float.max hint (backoff attempt));
        Some (attempt + 1)
      end
    in
    match
      let fd = connect c sock in
      write_all fd line;
      read_line_fd fd
    with
    | exception (Unix.Unix_error _ | End_of_file) -> (
        match retry_after 0.0 with
        | Some a -> go a
        | None -> Error "daemon unreachable (retries exhausted)")
    | reply -> (
        match Obs.Json.parse_line reply with
        | exception Obs.Json.Parse_error m ->
            Error ("unparseable reply: " ^ m)
        | fields ->
            if Obs.Json.mem fields "ok" && Obs.Json.int fields "ok" = 1 then
              Ok fields
            else if
              Obs.Json.mem fields "error"
              && Obs.Json.str fields "error" = "overloaded"
            then
              let hint =
                if Obs.Json.mem fields "retry_after" then
                  Obs.Json.num fields "retry_after"
                else 0.0
              in
              match retry_after hint with
              | Some a -> go a
              | None -> Error "daemon overloaded (retries exhausted)"
            else
              Error
                (Printf.sprintf "%s: %s"
                   (try Obs.Json.str fields "error" with _ -> "error")
                   (try Obs.Json.str fields "message" with _ -> reply)))
  in
  go 0

let fresh_rid =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "cli:%d:%x:%d" (Unix.getpid ()) (Random.bits ()) !n

let num_field k v = (k, Obs.Json.Num v)
let str_field k v = (k, Obs.Json.Str v)

let parse_pair what spec =
  match String.split_on_char ',' spec with
  | [ a; b ] -> (a, b)
  | _ ->
      Format.eprintf "bad %s spec %S (want TARGET,INDEX)@." what spec;
      exit 1

let run sock retries at rid ping status stats advance submit min_size max_size
    resize cancel fail_t repair_t play full jobs drain fingerprint shutdown
    crash =
  let c = { fd = None } in
  let failed = ref false in
  let at_fields = match at with None -> [] | Some t -> [ num_field "at" t ] in
  let send ?(quiet = false) ?(tolerate = fun _ -> false) ?(rid = rid) fields =
    let rid = Some (Option.value rid ~default:(fresh_rid ())) in
    let fields = fields @ at_fields @ [ str_field "rid" (Option.get rid) ] in
    match rpc c ~sock ~retries (json_line fields) with
    | Error m when tolerate m -> None
    | Error m ->
        Format.eprintf "jigsaw-client: %s@." m;
        failed := true;
        None
    | Ok reply ->
        if not quiet then begin
          let b = Buffer.create 128 in
          Obs.Json.write b reply;
          print_endline (Buffer.contents b)
        end;
        Some reply
  in
  if ping then ignore (send [ str_field "op" "ping" ]);
  (match play with
  | None -> ()
  | Some name -> (
      match Trace.Presets.by_name ~full name with
      | None ->
          Format.eprintf "unknown preset %S@." name;
          exit 1
      | Some e ->
          let w =
            match jobs with
            | None -> e.workload
            | Some n -> Trace.Workload.truncate e.workload n
          in
          (* Re-playing after a restart may outlive the daemon's rid
             window (old WAL segments are GC'd after checkpoints), but
             play ids are deterministic: a duplicate-job-id rejection
             only means this exact submission was already accepted. *)
          let already_in m =
            String.length m >= 25
            && String.sub m 0 25 = "invalid: duplicate job id"
          in
          Array.iter
            (fun (j : Trace.Job.t) ->
              if not !failed then
                ignore
                  (send ~quiet:true ~tolerate:already_in
                     ~rid:(Some (Printf.sprintf "play:%s:%d" w.name j.id))
                     [
                       str_field "op" "submit";
                       num_field "id" (float_of_int j.id);
                       num_field "size" (float_of_int j.size);
                       num_field "runtime" j.runtime;
                       num_field "est_runtime" j.est_runtime;
                       num_field "bw" j.bw_class;
                       num_field "at" j.arrival;
                     ]))
            w.jobs;
          if not !failed then
            Format.eprintf "played %d jobs from %s@." (Array.length w.jobs)
              w.name));
  (match submit with
  | None -> ()
  | Some spec ->
      let fields =
        match
          String.split_on_char ',' spec |> List.map float_of_string
        with
        | [ size; runtime ] ->
            [ num_field "size" size; num_field "runtime" runtime ]
        | [ size; runtime; est ] ->
            [
              num_field "size" size;
              num_field "runtime" runtime;
              num_field "est_runtime" est;
            ]
        | [ size; runtime; est; bw ] ->
            [
              num_field "size" size;
              num_field "runtime" runtime;
              num_field "est_runtime" est;
              num_field "bw" bw;
            ]
        | _ | (exception Failure _) ->
            Format.eprintf
              "bad --submit spec %S (want SIZE,RUNTIME[,EST[,BW]])@." spec;
            exit 1
      in
      (* Moldable bounds ride on the v2 protocol; rigid submissions keep
         the v1 wire shape so old daemons still accept them. *)
      let molding =
        (match min_size with
        | None -> []
        | Some n -> [ num_field "min" (float_of_int n) ])
        @
        match max_size with
        | None -> []
        | Some n -> [ num_field "max" (float_of_int n) ]
      in
      let version =
        if molding = [] then [] else [ num_field "version" 2.0 ]
      in
      ignore (send ((str_field "op" "submit" :: fields) @ molding @ version)));
  (match cancel with
  | None -> ()
  | Some id ->
      ignore
        (send [ str_field "op" "cancel"; num_field "id" (float_of_int id) ]));
  (match resize with
  | None -> ()
  | Some spec -> (
      match
        String.split_on_char ',' spec |> List.map int_of_string_opt
      with
      | [ Some id; Some size ] ->
          ignore
            (send
               [
                 str_field "op" "resize";
                 num_field "id" (float_of_int id);
                 num_field "size" (float_of_int size);
                 num_field "version" 2.0;
               ])
      | _ ->
          Format.eprintf "bad --resize spec %S (want JOB,SIZE)@." spec;
          exit 1));
  let fault op spec =
    let target, index = parse_pair op spec in
    match int_of_string_opt index with
    | None ->
        Format.eprintf "bad %s index %S@." op index;
        exit 1
    | Some i ->
        ignore
          (send
             [
               str_field "op" op;
               str_field "target" target;
               num_field "index" (float_of_int i);
             ])
  in
  Option.iter (fault "fail") fail_t;
  Option.iter (fault "repair") repair_t;
  (match advance with
  | None -> ()
  | Some t -> ignore (send [ str_field "op" "advance"; num_field "to" t ]));
  (if drain && not !failed then
     match send ~quiet:fingerprint [ str_field "op" "drain" ] with
     | Some reply when fingerprint ->
         print_endline (Obs.Json.str reply "fingerprint")
     | _ -> ());
  if status then ignore (send [ str_field "op" "status" ]);
  if stats then ignore (send [ str_field "op" "stats" ]);
  if shutdown then ignore (send [ str_field "op" "shutdown" ]);
  (match crash with
  | None -> ()
  | Some point ->
      (* No reply expected when the daemon dies on the spot. *)
      let fields =
        str_field "op" "crash"
        :: (if point = "now" then [] else [ str_field "point" point ])
      in
      (try
         let fd = connect c sock in
         write_all fd (json_line fields);
         if point <> "now" then ignore (read_line_fd fd)
       with Unix.Unix_error _ | End_of_file -> ()));
  disconnect c;
  exit (if !failed then 1 else 0)

let cmd =
  let sock =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH")
  in
  let retries =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry budget per request: reconnects, resends (same \
                 request id, so the daemon deduplicates) with exponential \
                 backoff plus jitter, and honors overload retry-after \
                 hints.")
  in
  let at =
    Arg.(value & opt (some float) None & info [ "at" ] ~docv:"TIME"
           ~doc:"Logical timestamp for the request (logical-clock daemons; \
                 clamped up to the simulation clock).")
  in
  let rid =
    Arg.(value & opt (some string) None & info [ "rid" ] ~docv:"ID"
           ~doc:"Request id for duplicate suppression (default: generated).")
  in
  let ping = Arg.(value & flag & info [ "ping" ]) in
  let status = Arg.(value & flag & info [ "status" ]) in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the daemon's operational counters: uptime, ops \
                 applied, WAL sequence and segment counts, checkpoints on \
                 disk and written, queue depth, shed/disconnect tallies.")
  in
  let advance =
    Arg.(value & opt (some float) None & info [ "advance" ] ~docv:"TIME"
           ~doc:"Advance a logical-clock daemon's simulation to TIME.")
  in
  let submit =
    Arg.(value & opt (some string) None & info [ "submit" ] ~docv:"SPEC"
           ~doc:"Submit a job: SIZE,RUNTIME[,EST[,BW]].")
  in
  let min_size =
    Arg.(value & opt (some int) None & info [ "min" ] ~docv:"N"
           ~doc:"With --submit: moldable lower bound — the job accepts any \
                 granted size in [N, --max] and prefers SIZE. Sent as a v2 \
                 protocol request.")
  in
  let max_size =
    Arg.(value & opt (some int) None & info [ "max" ] ~docv:"N"
           ~doc:"With --submit: moldable upper bound (default: SIZE).")
  in
  let resize =
    Arg.(value & opt (some string) None & info [ "resize" ] ~docv:"JOB,SIZE"
           ~doc:"Mold a running moldable job to SIZE nodes in place. The \
                 reply reports the engine's verdict: resized (with the \
                 granted size) or refused (with the reason).")
  in
  let cancel =
    Arg.(value & opt (some int) None & info [ "cancel" ] ~docv:"ID")
  in
  let fail_t =
    Arg.(value & opt (some string) None & info [ "fail" ] ~docv:"TARGET,INDEX"
           ~doc:"Inject a failure: node,N leaf-cable,N l2-cable,N leaf,N \
                 l2,N or spine,N.")
  in
  let repair_t =
    Arg.(value & opt (some string) None
         & info [ "repair" ] ~docv:"TARGET,INDEX")
  in
  let play =
    Arg.(value & opt (some string) None & info [ "play" ] ~docv:"PRESET"
           ~doc:"Submit every job of a preset trace at its recorded arrival \
                 time, with deterministic request ids (play:TRACE:ID) — \
                 restartable mid-stream without double submission.")
  in
  let full = Arg.(value & flag & info [ "full" ]) in
  let jobs =
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N"
           ~doc:"With --play: only the first N jobs.")
  in
  let drain =
    Arg.(value & flag & info [ "drain" ]
           ~doc:"Run the simulation to completion and report its metrics \
                 fingerprint.")
  in
  let fingerprint =
    Arg.(value & flag & info [ "fingerprint" ]
           ~doc:"With --drain: print only the fingerprint digest.")
  in
  let shutdown = Arg.(value & flag & info [ "shutdown" ]) in
  let crash =
    Arg.(value & opt (some string) None & info [ "crash" ] ~docv:"POINT"
           ~doc:"Test op (daemon must run with --allow-crash): 'now' makes \
                 the daemon SIGKILL itself immediately; any other value arms \
                 that named crash point.")
  in
  let term =
    Term.(
      const run $ sock $ retries $ at $ rid $ ping $ status $ stats $ advance
      $ submit $ min_size $ max_size $ resize $ cancel $ fail_t $ repair_t
      $ play $ full $ jobs $ drain $ fingerprint $ shutdown $ crash)
  in
  Cmd.v
    (Cmd.info "jigsaw-client" ~version:"1.0.0"
       ~doc:"Client for jigsaw-daemon: submissions, cancellations, faults, \
             drains — with retry, backoff and duplicate-safe request ids")
    term

let () = exit (Cmd.eval cmd)
