(* jigsaw-daemon: run the scheduler as a crash-safe service.

   Examples:
     jigsaw-daemon --socket /tmp/jig.sock --dir /tmp/jig-state \
       --sched Jigsaw --radix 16
     jigsaw-daemon --socket jig.sock --dir state --preset Synth-16
     jigsaw-daemon --socket jig.sock --dir state --time-scale 60
     jigsaw-daemon --socket jig.sock --dir state --supervise

   The state directory is self-describing (WAL segment headers carry the
   full config); restarting over an existing directory needs no scheme
   flags and refuses conflicting ones.  Kill it however you like —
   including kill -9 mid-request — and restart: recovery replays the
   write-ahead log into exactly the acknowledged state. *)

open Cmdliner

let state_dir_initialized dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && Array.exists
       (fun n ->
         String.length n > 4 && String.sub n 0 4 = "wal-"
         && Filename.check_suffix n ".jsonl")
       (Sys.readdir dir)

(* Supervisor: fork the serve loop, restart it when it dies abnormally
   (a crash), with exponential backoff; a clean exit (shutdown op or
   SIGTERM handled inside) ends supervision.  The supervisor forwards
   SIGTERM/SIGINT to the child so `kill <supervisor>` still shuts the
   service down gracefully. *)
let supervise serve =
  let child = ref 0 in
  let forward s =
    try Sys.set_signal s (Sys.Signal_handle (fun _ ->
        if !child > 0 then try Unix.kill !child s with Unix.Unix_error _ -> ()))
    with Invalid_argument _ -> ()
  in
  forward Sys.sigterm;
  forward Sys.sigint;
  let rec loop backoff =
    let started = Unix.gettimeofday () in
    match Unix.fork () with
    | 0 -> exit (serve ())
    | pid -> (
        child := pid;
        let _, status =
          let rec wait () =
            try Unix.waitpid [] pid
            with Unix.Unix_error (EINTR, _, _) -> wait ()
          in
          wait ()
        in
        child := 0;
        match status with
        | Unix.WEXITED 0 -> 0
        | Unix.WEXITED n when n <> 0 && Unix.gettimeofday () -. started < 1.0
          ->
            (* Fast failure loop on a persistent error (bad state dir):
               give up rather than spin. *)
            Format.eprintf "jigsaw-daemon: child exited %d immediately; not \
                            restarting@." n;
            n
        | Unix.WEXITED n ->
            Format.eprintf "jigsaw-daemon: child exited %d; restarting in \
                            %.1fs@." n backoff;
            Unix.sleepf backoff;
            loop (Float.min 5.0 (backoff *. 2.0))
        | Unix.WSIGNALED s | Unix.WSTOPPED s ->
            Format.eprintf "jigsaw-daemon: child died (signal %d); restarting \
                            in %.1fs@." s backoff;
            Unix.sleepf backoff;
            loop (Float.min 5.0 (backoff *. 2.0))
        | exception Unix.Unix_error _ -> 1)
  in
  loop 0.1

let run socket dir preset full sched radix scenario seed window no_backfill
    requeue resubmit_delay charge_lost_work trace_name system_nodes time_scale
    max_clients max_queue client_timeout ckpt_ops ckpt_s retain allow_crash
    quiet supervised =
  let fail fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; exit 1) fmt in
  let params =
    if state_dir_initialized dir then None
    else begin
      (* Fresh directory: pin the config now; it travels in every WAL
         segment header from here on. *)
      let radix, trace_name, system_nodes =
        match preset with
        | None ->
            let sn =
              match system_nodes with
              | Some n -> n
              | None ->
                  Fattree.Topology.num_nodes (Fattree.Topology.of_radix radix)
            in
            (radix, Option.value trace_name ~default:"daemon", sn)
        | Some p -> (
            match Trace.Presets.by_name ~full p with
            | None -> fail "unknown preset %S" p
            | Some e ->
                ( e.cluster_radix,
                  e.workload.name,
                  e.workload.system_nodes ))
      in
      (match Trace.Scenario.of_name scenario with
      | Error m -> fail "%s" m
      | Ok _ -> ());
      (match Sched.Allocator.by_name sched with
      | Error m -> fail "%s" m
      | Ok _ -> ());
      let resilience =
        Cli_common.resilience ~requeue ~resubmit_delay ~charge_lost_work
      in
      Some
        {
          Svc.Core.scheme = sched;
          radix;
          scenario;
          scenario_seed = seed;
          backfill_window = window;
          backfill = not no_backfill;
          resilience;
          trace_name;
          system_nodes;
        }
    end
  in
  let opts =
    {
      (Svc.Daemon.default_opts ~socket ~dir) with
      params;
      time_scale;
      max_clients;
      max_queue;
      client_timeout;
      ckpt_every_ops = ckpt_ops;
      ckpt_every_s = ckpt_s;
      retain;
      allow_crash_op = allow_crash;
      log = (if quiet then ignore else fun m -> Format.eprintf "[jigsaw-daemon] %s@." m);
    }
  in
  let serve () =
    match Svc.Daemon.run opts with
    | Ok () -> 0
    | Error m ->
        Format.eprintf "jigsaw-daemon: %s@." m;
        1
  in
  if supervised then exit (supervise serve) else exit (serve ())

let cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on.")
  in
  let dir =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"State directory (write-ahead log + checkpoints); created if \
                 missing.  An initialized directory fixes the simulation \
                 config — scheme flags are then unnecessary, and conflicting \
                 ones are refused.")
  in
  let preset =
    Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME"
           ~doc:"Adopt a preset trace's identity (name, cluster radix, system \
                 nodes) so a drained daemon run is fingerprint-comparable \
                 with 'jigsaw-sim --trace NAME'.  Jobs still arrive over the \
                 socket (see jigsaw-client --play).")
  in
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"With --preset: paper-scale job counts.")
  in
  let sched =
    Arg.(value & opt string "Jigsaw" & info [ "sched" ] ~docv:"NAME"
           ~doc:"Scheduling scheme (fresh state dir only).")
  in
  let radix =
    Arg.(value & opt int 16 & info [ "radix" ] ~docv:"K"
           ~doc:"Switch radix of the simulated cluster (fresh dir only).")
  in
  let scenario =
    Arg.(value & opt string "None" & info [ "scenario" ] ~docv:"S"
           ~doc:"Performance scenario, as in jigsaw-sim (fresh dir only).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "scenario-seed" ] ~docv:"N")
  in
  let window =
    Arg.(value & opt int 50 & info [ "window" ] ~docv:"N"
           ~doc:"EASY backfill window (fresh dir only).")
  in
  let no_backfill =
    Arg.(value & flag & info [ "no-backfill" ]
           ~doc:"Plain FIFO: disable EASY backfilling (fresh dir only).")
  in
  let requeue =
    Cli_common.requeue_arg
      ~doc:"Fault-recovery policy: N (resubmit killed jobs at most N times \
            each), 'shrink' (moldable victims shed their failed nodes in \
            place), or 'shrink:N' (both)."
  in
  let resubmit_delay =
    Cli_common.resubmit_delay_arg
      ~doc:"Delay between a fault killing a job and its resubmission."
  in
  let charge_lost_work =
    Arg.(value & flag & info [ "charge-lost-work" ])
  in
  let trace_name =
    Arg.(value & opt (some string) None & info [ "trace-name" ] ~docv:"NAME"
           ~doc:"Workload name stamped into metrics/fingerprints (fresh dir \
                 only; default: daemon).")
  in
  let system_nodes =
    Arg.(value & opt (some int) None & info [ "system-nodes" ] ~docv:"N"
           ~doc:"Node count reported in metrics (default: the radix's full \
                 fat-tree).")
  in
  let time_scale =
    Arg.(value & opt (some float) None & info [ "time-scale" ] ~docv:"X"
           ~doc:"Wall-clock mode: advance the simulation X simulated seconds \
                 per real second.  Default: logical time — the clock moves \
                 only on request stamps and the advance op, which is the \
                 deterministic mode the tests use.")
  in
  let max_clients =
    Arg.(value & opt int 32 & info [ "max-clients" ] ~docv:"N")
  in
  let max_queue =
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Ingest queue bound; beyond it requests are shed with an \
                 overloaded reply and a retry-after hint.")
  in
  let client_timeout =
    Arg.(value & opt float 10.0 & info [ "client-timeout" ] ~docv:"SECONDS"
           ~doc:"Disconnect clients that stop draining replies for this \
                 long.")
  in
  let ckpt_ops =
    Arg.(value & opt int 64 & info [ "checkpoint-every-ops" ] ~docv:"N")
  in
  let ckpt_s =
    Arg.(value & opt float 5.0 & info [ "checkpoint-every-s" ] ~docv:"SECONDS")
  in
  let retain =
    Arg.(value & opt int 2 & info [ "retain" ] ~docv:"N"
           ~doc:"Checkpoints retained; older ones are pruned and the WAL \
                 segments feeding only them are deleted.")
  in
  let allow_crash =
    Arg.(value & flag & info [ "allow-crash" ]
           ~doc:"Honor the crash test op (self-SIGKILL / crash-point \
                 arming).  For the recovery test suite only.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ]) in
  let supervise =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Run under a supervisor that restarts the daemon with \
                 exponential backoff when it dies abnormally; recovery makes \
                 the restart invisible to clients beyond retried requests.")
  in
  let term =
    Term.(
      const run $ socket $ dir $ preset $ full $ sched $ radix $ scenario
      $ seed $ window $ no_backfill $ requeue $ resubmit_delay
      $ charge_lost_work $ trace_name $ system_nodes $ time_scale
      $ max_clients $ max_queue $ client_timeout $ ckpt_ops $ ckpt_s $ retain
      $ allow_crash $ quiet $ supervise)
  in
  Cmd.v
    (Cmd.info "jigsaw-daemon" ~version:"1.0.0"
       ~doc:"Crash-safe scheduler-as-a-service over a Unix-domain socket")
    term

let () = exit (Cmd.eval cmd)
