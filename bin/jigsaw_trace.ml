(* jigsaw-trace: read an event trace written by `jigsaw-sim --trace-out`
   and summarize it — per-job timelines, queue-depth percentiles,
   submit-to-start latency histograms, attempt outcomes, and a fault
   post-mortem associating each failure with the jobs it killed.

   Examples:
     jigsaw-sim --trace Synth-16 --sched all --trace-out t.jsonl
     jigsaw-trace t.jsonl
     jigsaw-trace --timeline t.jsonl *)

open Cmdliner

let run file format timeline =
  let format =
    match Cli_common.parse_format ~flag:"format" ~allow_auto:true format with
    | Ok f -> f
    | Error m ->
        Format.eprintf "%s@." m;
        exit 1
  in
  match Obs.Reader.load ?format file with
  | Error m ->
      Format.eprintf "jigsaw-trace: %s@." m;
      exit 1
  | Ok [] ->
      Format.eprintf "jigsaw-trace: %s holds no events@." file;
      exit 1
  | Ok runs ->
      List.iteri
        (fun i (run : Obs.Reader.run) ->
          if i > 0 then Format.printf "@.";
          (* Head each run with its stable identity (the same
             trace#jobs/scheme/scenario shape sweep cell ids use), so
             multi-run files diff by content, not by position. *)
          (match run.meta with
          | Some m ->
              Format.printf "=== %s#%d/%s/%s ===@." m.trace m.jobs m.scheme
                m.scenario
          | None -> Format.printf "=== (headless fragment %d) ===@." i);
          Format.printf "%a"
            (Obs.Analysis.pp_summary ~timeline)
            (Obs.Analysis.of_run run))
        runs

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Trace file written by jigsaw-sim --trace-out.")
  in
  let format =
    Arg.(value & opt (some string) None & info [ "format" ] ~docv:"FMT"
           ~doc:"Input format: auto (default, by file extension), jsonl, \
                 or csv.")
  in
  let timeline =
    Arg.(value & flag & info [ "timeline" ]
           ~doc:"Also print one line per job: submission, every (re)start \
                 and kill, completion, and the job's fate.")
  in
  Cmd.v
    (Cmd.info "jigsaw-trace" ~version:"1.0.0"
       ~doc:"Analyze event traces from jigsaw-sim")
    Term.(const run $ file $ format $ timeline)

let () = exit (Cmd.eval cmd)
