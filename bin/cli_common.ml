(* Flag vocabulary shared by the jigsaw executables.

   jigsaw-sim, jigsaw-daemon, jigsaw-trace-gen and jigsaw-trace each
   used to declare private copies of the flags every tool understands —
   preset selection (--trace/--full/--scale), the fault-resilience
   policy (--requeue/--resubmit-delay/--charge-lost-work), trace-format
   names — and the copies were one refactor away from drifting apart.
   They are declared once here, so parsing, validation and error
   wording are identical across tools by construction; per-tool help
   text stays at the call site (the tools legitimately describe the
   same flag differently).

   The two molding knobs introduced with sized allocation requests
   live here too, for the same reason:

   - [--moldable [MIN,MAX]] turns every job of the selected workload
     moldable around its rigid request (trace names gain a "+m" suffix
     so cell ids and checkpoints never collide with the rigid runs);
   - [--requeue] grows from RETRIES to a policy: [N], [shrink], or
     [shrink:N].  Plain [N] is the historical kill-and-resubmit;
     [shrink] recovers moldable victims in place by retracting only
     the failed nodes' share (zero lost work) and abandons what it
     cannot shrink; [shrink:N] falls back to requeueing those. *)

open Cmdliner

let die fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Resilience policy: --requeue N | shrink | shrink:N                  *)
(* ------------------------------------------------------------------ *)

type requeue = { retries : int option; shrink : bool }

let requeue_of_string s =
  let retries what s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "bad %s %S (want a non-negative count)" what s)
  in
  match s with
  | "shrink" -> Ok { retries = None; shrink = true }
  | s when String.length s > 7 && String.sub s 0 7 = "shrink:" -> (
      match retries "shrink retry count" (String.sub s 7 (String.length s - 7)) with
      | Ok r -> Ok { retries = r; shrink = true }
      | Error m -> Error m)
  | s -> (
      match retries "--requeue" s with
      | Ok r -> Ok { retries = r; shrink = false }
      | Error m -> Error m)

let requeue_to_string = function
  | { retries = None; shrink = true } -> "shrink"
  | { retries = Some n; shrink = true } -> Printf.sprintf "shrink:%d" n
  | { retries = Some n; shrink = false } -> string_of_int n
  | { retries = None; shrink = false } -> "0"

let requeue_conv =
  Arg.conv ~docv:"POLICY"
    ( (fun s -> Result.map_error (fun m -> `Msg m) (requeue_of_string s)),
      fun ppf r -> Format.pp_print_string ppf (requeue_to_string r) )

let requeue_arg ~doc =
  Arg.(value & opt (some requeue_conv) None
       & info [ "requeue" ] ~docv:"POLICY" ~doc)

let resubmit_delay_arg ~doc =
  Arg.(value & opt float 0.0 & info [ "resubmit-delay" ] ~docv:"SECONDS" ~doc)

(* The resilience record a policy denotes.  [shrink] alone turns
   requeueing off (victims that cannot shrink are abandoned, exactly as
   without --requeue); [shrink:N] layers the historical resubmission
   under it. *)
let resilience ~requeue ~resubmit_delay ~charge_lost_work =
  match requeue with
  | None -> { Sched.Simulator.no_resilience with charge_lost_work }
  | Some { retries; shrink } ->
      {
        Sched.Simulator.requeue = retries <> None;
        resubmit_delay;
        max_retries = Option.value ~default:0 retries;
        charge_lost_work;
        shrink;
      }

(* Human description for run headers ("faults: 12 events; ..."). *)
let describe_requeue ~resubmit_delay = function
  | None -> "; no requeue (killed jobs are abandoned)"
  | Some { retries; shrink } ->
      let requeue =
        match retries with
        | Some n ->
            Printf.sprintf "; requeue up to %d times after %.0fs" n
              resubmit_delay
        | None -> "; no requeue (killed jobs are abandoned)"
      in
      if shrink then requeue ^ "; moldable victims shrink in place"
      else requeue

(* ------------------------------------------------------------------ *)
(* Moldable workloads: --moldable [MIN,MAX]                            *)
(* ------------------------------------------------------------------ *)

let moldable_fracs_of_string s =
  match String.split_on_char ',' s |> List.map float_of_string with
  | [ min_frac; max_frac ]
    when min_frac > 0.0 && min_frac <= 1.0 && max_frac >= 1.0 ->
      Ok (min_frac, max_frac)
  | _ | (exception Failure _) ->
      Error
        (Printf.sprintf
           "bad --moldable spec %S (want MIN,MAX fractions with 0 < MIN <= 1 \
            <= MAX)"
           s)

let moldable_conv =
  Arg.conv ~docv:"MIN,MAX"
    ( (fun s -> Result.map_error (fun m -> `Msg m) (moldable_fracs_of_string s)),
      fun ppf (a, b) -> Format.fprintf ppf "%g,%g" a b )

let moldable_arg ~doc =
  Arg.(value
       & opt ~vopt:(Some (0.5, 2.0)) (some moldable_conv) None
       & info [ "moldable" ] ~docv:"MIN,MAX" ~doc)

let apply_moldable spec w =
  match spec with
  | None -> w
  | Some (min_frac, max_frac) -> Trace.Workload.moldable ~min_frac ~max_frac w

(* ------------------------------------------------------------------ *)
(* Preset lookup                                                       *)
(* ------------------------------------------------------------------ *)

let known_preset_names ~full () =
  List.map
    (fun (e : Trace.Presets.entry) -> e.workload.Trace.Workload.name)
    (Trace.Presets.all ~full @ Trace.Presets.scale_all ())

let preset_entry ~full name =
  match Trace.Presets.by_name ~full name with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown trace %s; known: %s" name
           (String.concat ", " (known_preset_names ~full ())))

let check_scale_full ~action scale full =
  if scale && full then
    die "--scale %s the radix-48 tier (its own job counts); drop --full"
      action

let full_arg ~doc = Arg.(value & flag & info [ "full" ] ~doc)
let scale_arg ~doc = Arg.(value & flag & info [ "scale" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Trace-file formats                                                  *)
(* ------------------------------------------------------------------ *)

(* [auto] means "decide by file extension" and maps to [None]. *)
let parse_format ~flag ~allow_auto s =
  match s with
  | None -> Ok None
  | Some "auto" when allow_auto -> Ok None
  | Some s -> (
      match Obs.Sink.format_of_name s with
      | Some f -> Ok (Some f)
      | None ->
          Error
            (Printf.sprintf "unknown %s %s (%s)" flag s
               (if allow_auto then "auto|jsonl|csv" else "jsonl|csv")))
