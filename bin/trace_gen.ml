(* jigsaw-trace-gen: generate preset traces as Standard Workload Format
   files, so experiments can be rerun from fixed inputs (or fed to other
   simulators).

   Example:
     jigsaw-trace-gen --trace Thunder --out thunder.swf
     jigsaw-trace-gen --all --dir traces/ --full *)

open Cmdliner

let generate preset all out dir full scale analyze =
  Cli_common.check_scale_full ~action:"exports" scale full;
  let entries =
    if all then
      if scale then Trace.Presets.scale_all () else Trace.Presets.all ~full
    else
      match preset with
      | None ->
          Format.eprintf "one of --trace or --all is required@.";
          exit 1
      | Some name -> (
          match Cli_common.preset_entry ~full name with
          | Ok e -> [ e ]
          | Error m ->
              Format.eprintf "%s@." m;
              exit 1)
  in
  List.iter
    (fun (e : Trace.Presets.entry) ->
      let w = e.workload in
      if analyze then
        Format.printf "--- %s ---@.%a@.@." w.name Trace.Analysis.pp
          (Trace.Analysis.analyze w)
      else begin
        let path =
          match (out, all) with
          | Some p, false -> p
          | _ ->
              let base = String.lowercase_ascii w.name ^ ".swf" in
              Filename.concat dir base
        in
        Trace.Swf.save w path;
        Format.printf "%s: %d jobs -> %s@." w.name (Trace.Workload.num_jobs w) path
      end)
    entries

let cmd =
  let preset =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"NAME"
           ~doc:"Preset trace to export (see Table 1).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Export every preset trace.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output file (single-trace mode).")
  in
  let dir =
    Arg.(value & opt dir "." & info [ "dir" ] ~docv:"DIR"
           ~doc:"Output directory (with --all).")
  in
  let full = Cli_common.full_arg ~doc:"Paper-scale job counts." in
  let scale =
    Cli_common.scale_arg
      ~doc:"Export the radix-48 scale tier (names end in \\@48; with \
            --all, exports all nine scale traces). Incompatible with \
            --full."
  in
  let analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"Print distribution summaries instead of writing SWF files.")
  in
  let term =
    Term.(const generate $ preset $ all $ out $ dir $ full $ scale $ analyze)
  in
  Cmd.v
    (Cmd.info "jigsaw-trace-gen" ~version:"1.0.0"
       ~doc:"Export the evaluation job traces as SWF files")
    term

let () = exit (Cmd.eval cmd)
