#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from a bench output file."""
import re
import sys

bench_path = sys.argv[1] if len(sys.argv) > 1 else "/root/repo/bench_output.txt"
exp_path = "/root/repo/EXPERIMENTS.md"

out = open(bench_path).read()

def section(title):
    # capture from '=== title ===' to the next '===' or EOF
    pat = re.compile(r"=== " + re.escape(title) + r" ===\n\n(.*?)(?:\n\[|\n=== )", re.S)
    m = pat.search(out)
    if not m:
        return None
    body = m.group(1).strip()
    # Drop the harness's inline expectation footers; EXPERIMENTS.md has
    # its own shape-check prose.
    lines = [l for l in body.split("\n") if not l.startswith("(expect") and not l.startswith(" with the window") and not l.startswith(" fragmentation") and not l.startswith(" Atlas worst") and not l.startswith(" LC+S notably") and not l.startswith(" backfilling gets")]
    return "\n".join(lines).strip()

blocks = {
    "PLACEHOLDER_FIG6": section("Figure 6: Average system utilization (%) per scheme and trace"),
    "PLACEHOLDER_TABLE2": section("Table 2: Instantaneous utilization frequency on Thunder"),
    "PLACEHOLDER_FIG7": section("Figure 7: Average job turnaround time normalized to Baseline (all jobs / jobs > 100 nodes)"),
    "PLACEHOLDER_FIG8": section("Figure 8: Makespan normalized to Baseline"),
    "PLACEHOLDER_TABLE3": section("Table 3: Average scheduling time per job (seconds)"),
    "PLACEHOLDER_MICRO": section("Bechamel micro-benchmarks (radix-18 cluster, ~70% loaded)"),
    "PLACEHOLDER_ABLATION": None,
}

# ablation: concat the three ablation sections
abl = []
for t in [
    "Ablation A: Jigsaw's full-leaf restriction vs. least-constrained placement",
    "Ablation B: EASY backfilling window (Jigsaw on Synth-16)",
    "Ablation C: runtime-estimate accuracy (Jigsaw on Synth-16)",
]:
    s = section(t)
    if s:
        abl.append("--- " + t.split(":")[0] + " ---\n" + s)
blocks["PLACEHOLDER_ABLATION"] = "\n\n".join(abl) if abl else None

exp = open(exp_path).read()
missing = []
for k, v in blocks.items():
    if v is None:
        missing.append(k)
        continue
    exp = exp.replace(k, v)
open(exp_path, "w").write(exp)
print("filled; missing:", missing)
