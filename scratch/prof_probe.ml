(* Scratch profiling: where does a multi-pod try_alloc on a busy
   radix-24 cluster spend its time? *)

let load_cluster ~radix ~seed ~target =
  let topo = Fattree.Topology.of_radix radix in
  let st = Fattree.State.create topo in
  let prng = Sim.Prng.create ~seed in
  let continue = ref true in
  let id = ref 0 in
  while !continue && Fattree.State.node_utilization st < target do
    let size =
      max 1
        (min
           (Fattree.Topology.num_nodes topo / 8)
           (int_of_float (Sim.Prng.exponential prng ~mean:16.0)))
    in
    (match Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size with
    | Some p ->
        Fattree.State.claim_exn st
          (Jigsaw_core.Partition.to_alloc topo p ~bw:1.0)
    | None -> continue := false);
    incr id
  done;
  st

let time label iters f =
  for _ = 1 to 10 do ignore (f ()) done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do ignore (f ()) done;
  Printf.printf "%-40s %10.0f ns\n%!" label
    ((Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters)

let () =
  let st = load_cluster ~radix:24 ~seed:77 ~target:0.8 in
  let topo = Fattree.State.topo st in
  Printf.printf "util: %.3f\n" (Fattree.State.node_utilization st);
  (match Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:200 with
  | Some _ -> print_endline "size 200: fits"
  | None -> print_endline "size 200: no fit");
  time "probe 200" 200 (fun () ->
      Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:200);
  time "probe 40" 200 (fun () ->
      Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:40);
  time "probe 6" 200 (fun () ->
      Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:6);
  time "shapes.two_level 200" 200 (fun () ->
      Jigsaw_core.Shapes.two_level topo ~size:200);
  time "shapes.three_level 200" 200 (fun () ->
      Jigsaw_core.Shapes.three_level topo ~size:200
        ~n_l:(Fattree.Topology.m1 topo));
  time "shapes.two_level 40" 200 (fun () ->
      Jigsaw_core.Shapes.two_level topo ~size:40);
  time "probe 200 two_level_only" 200 (fun () ->
      Jigsaw_core.Jigsaw.get_allocation ~two_level_only:true st ~job:1
        ~size:200)

(* Replicate the json-harness interleaving: does running LC+S first
   distort the following Jigsaw measurement (GC state)? *)
let () =
  let st = load_cluster ~radix:24 ~seed:77 ~target:0.8 in
  let lcs = match Sched.Allocator.by_name "LC+S" with Ok a -> a | Error _ -> assert false in
  let jig = Sched.Allocator.jigsaw in
  let job = Trace.Job.v ~id:999_999 ~size:200 ~runtime:100.0 () in
  time "lcs 200 (json-style)" 200 (fun () -> lcs.try_alloc st job);
  time "jigsaw 200 after lcs" 200 (fun () -> jig.try_alloc st job);
  time "jigsaw 200 again" 200 (fun () -> jig.try_alloc st job);
  Gc.full_major ();
  time "jigsaw 200 after full_major" 200 (fun () -> jig.try_alloc st job)

(* Break down try_alloc: search vs to_alloc materialization. *)
let () =
  let st = load_cluster ~radix:24 ~seed:77 ~target:0.8 in
  let topo = Fattree.State.topo st in
  let p =
    match Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:200 with
    | Some p -> p
    | None -> assert false
  in
  time "search only (get_allocation 200)" 200 (fun () ->
      Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:200);
  time "to_alloc only" 200 (fun () ->
      Jigsaw_core.Partition.to_alloc topo p ~bw:1.0)

(* Narrow down the 65us inside to_alloc. *)
let () =
  let st = load_cluster ~radix:24 ~seed:77 ~target:0.8 in
  let p =
    match Jigsaw_core.Jigsaw.get_allocation st ~job:1 ~size:200 with
    | Some p -> p
    | None -> assert false
  in
  let a = Jigsaw_core.Partition.to_alloc (Fattree.State.topo st) p ~bw:1.0 in
  Printf.printf "sizes: nodes=%d leaf_cables=%d l2_cables=%d\n%!"
    (Array.length a.Fattree.Alloc.nodes)
    (Array.length a.Fattree.Alloc.leaf_cables)
    (Array.length a.Fattree.Alloc.l2_cables);
  time "Partition.nodes" 200 (fun () -> Jigsaw_core.Partition.nodes p);
  time "Partition.leaves" 200 (fun () -> Jigsaw_core.Partition.leaves p);
  let arr = Array.init 400 (fun i -> (i * 7919) mod 1000) in
  time "sort 400 ints (Int.compare)" 200 (fun () ->
      let c = Array.copy arr in
      Array.sort Int.compare c)
