(* Scratch: LC+S multi-pod try_alloc latency, radix 24 and 48. *)
let load_cluster ~radix ~seed ~target =
  let topo = Fattree.Topology.of_radix radix in
  let st = Fattree.State.create topo in
  let prng = Sim.Prng.create ~seed in
  let continue = ref true in
  let id = ref 0 in
  while !continue && Fattree.State.node_utilization st < target do
    let size =
      max 1
        (min
           (Fattree.Topology.num_nodes topo / 8)
           (int_of_float (Sim.Prng.exponential prng ~mean:16.0)))
    in
    (match Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size with
    | Some p ->
        Fattree.State.claim_exn st
          (Jigsaw_core.Partition.to_alloc topo p ~bw:1.0)
    | None -> continue := false);
    incr id
  done;
  st

let time label iters f =
  for _ = 1 to 5 do ignore (f ()) done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do ignore (f ()) done;
  Printf.printf "%-40s %12.0f ns\n%!" label
    ((Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters)

let () =
  List.iter (fun radix ->
    let st = load_cluster ~radix ~seed:77 ~target:0.8 in
    Printf.printf "radix %d util %.3f\n%!" radix (Fattree.State.node_utilization st);
    List.iter (fun (a : Sched.Allocator.t) ->
      List.iter (fun size ->
        let job = Trace.Job.v ~id:999_999 ~size ~runtime:100.0 () in
        time (Printf.sprintf "r%d %s size-%d" radix a.name size) 200
          (fun () -> a.try_alloc st job))
        [ 40; 200 ])
      Sched.Allocator.all)
    [ 24 ]
