(* Metric fingerprint for allocation-for-allocation equivalence checks:
   runs every scheme on truncated traces and prints full-precision
   metrics that depend only on allocation decisions (never on wall
   clock).  Run before and after an allocator/simulator change and diff
   the output. *)

let () =
  let entries =
    [ (Trace.Presets.synth_16 ~full:false, 800);
      (Trace.Presets.thunder ~full:false, 600);
      (Trace.Presets.atlas ~full:false, 400);
      (Trace.Presets.aug_cab ~full:false, 600) ]
  in
  List.iter
    (fun ((e : Trace.Presets.entry), cap) ->
      let w = Trace.Workload.truncate e.workload cap in
      List.iter
        (fun (a : Sched.Allocator.t) ->
          let cfg = Sched.Simulator.default_config a ~radix:e.cluster_radix in
          let m = Sched.Simulator.run cfg w in
          Format.printf "%s/%s util=%.17g alloc_util=%.17g makespan=%.17g tat=%.17g rejected=%d hist=%s@."
            w.name a.name m.avg_utilization m.alloc_utilization m.makespan
            m.avg_turnaround_all m.rejected
            (String.concat ","
               (Array.to_list (Array.map string_of_int m.inst_hist))))
        Sched.Allocator.all)
    entries
