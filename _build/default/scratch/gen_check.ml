let () =
  List.iter (fun (e : Trace.Presets.entry) ->
    Format.printf "%a@." Trace.Workload.pp_summary (Trace.Workload.summarize e.workload))
    (Trace.Presets.all ~full:true)
