open Fattree
open Jigsaw_core
let () =
  let topo = Topology.of_radix 28 in
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:2828 in
  let placed = ref 0 and failed = ref 0 in
  for job = 0 to 199 do
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:400 in
    match Jigsaw.get_allocation st ~job ~size with
    | Some p -> incr placed; State.claim_exn st (Partition.to_alloc topo p ~bw:1.0)
    | None -> incr failed
  done;
  Format.printf "placed=%d failed=%d util=%.2f@." !placed !failed (State.node_utilization st)
