scratch/fingerprint.ml: Array Format List Sched String Trace
