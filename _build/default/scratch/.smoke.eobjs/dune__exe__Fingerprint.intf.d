scratch/fingerprint.mli:
