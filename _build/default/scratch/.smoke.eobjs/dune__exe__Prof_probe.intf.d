scratch/prof_probe.mli:
