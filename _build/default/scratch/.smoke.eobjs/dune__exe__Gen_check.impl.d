scratch/gen_check.ml: Format List Trace
