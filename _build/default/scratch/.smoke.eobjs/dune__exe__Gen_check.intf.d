scratch/gen_check.mli:
