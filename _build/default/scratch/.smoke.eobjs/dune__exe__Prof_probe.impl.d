scratch/prof_probe.ml: Array Fattree Gc Int Jigsaw_core Printf Sched Sim Trace Unix
