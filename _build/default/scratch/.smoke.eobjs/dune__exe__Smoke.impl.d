scratch/smoke.ml: Fattree Format Jigsaw Jigsaw_core Partition Sim State Topology
