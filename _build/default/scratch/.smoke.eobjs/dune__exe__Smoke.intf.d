scratch/smoke.mli:
