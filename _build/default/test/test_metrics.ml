(* Unit tests for metric computations. *)

let pj ~id ~size ~arrival ~start ~stop =
  {
    Sched.Metrics.job = Trace.Job.v ~id ~size ~runtime:(stop -. start) ~arrival ();
    start_time = start;
    end_time = stop;
  }

let test_mean_turnaround_all () =
  let jobs =
    [
      pj ~id:0 ~size:4 ~arrival:0.0 ~start:0.0 ~stop:100.0;
      (* turnaround 100 *)
      pj ~id:1 ~size:4 ~arrival:50.0 ~start:100.0 ~stop:150.0;
      (* turnaround 100 *)
      pj ~id:2 ~size:4 ~arrival:0.0 ~start:300.0 ~stop:400.0;
      (* turnaround 400 *)
    ]
  in
  let mean, n = Sched.Metrics.mean_turnaround jobs ~large_only:false in
  Alcotest.(check int) "population" 3 n;
  Alcotest.(check (float 1e-9)) "mean" 200.0 mean

let test_mean_turnaround_large_only () =
  let jobs =
    [
      pj ~id:0 ~size:4 ~arrival:0.0 ~start:0.0 ~stop:1000.0;
      pj ~id:1 ~size:200 ~arrival:0.0 ~start:0.0 ~stop:50.0;
      pj ~id:2 ~size:101 ~arrival:0.0 ~start:0.0 ~stop:150.0;
    ]
  in
  let mean, n = Sched.Metrics.mean_turnaround jobs ~large_only:true in
  Alcotest.(check int) "two large jobs" 2 n;
  Alcotest.(check (float 1e-9)) "mean over large" 100.0 mean

let test_mean_turnaround_empty () =
  let mean, n = Sched.Metrics.mean_turnaround [] ~large_only:false in
  Alcotest.(check int) "none" 0 n;
  Alcotest.(check (float 1e-9)) "zero" 0.0 mean

let test_table2_boundaries () =
  (* The Table 2 bucket edges, low to high. *)
  Alcotest.(check (array (float 1e-9)))
    "boundaries"
    [| 0.60; 0.80; 0.90; 0.95; 0.98 |]
    Sched.Metrics.table2_boundaries;
  (* Six buckets result. *)
  let h = Sim.Stats.Hist.create ~boundaries:Sched.Metrics.table2_boundaries in
  Sim.Stats.Hist.add h 0.5;
  Alcotest.(check int) "bucket count" 6 (Array.length (Sim.Stats.Hist.counts h))

let suite =
  [
    Alcotest.test_case "mean turnaround (all)" `Quick test_mean_turnaround_all;
    Alcotest.test_case "mean turnaround (large)" `Quick test_mean_turnaround_large_only;
    Alcotest.test_case "mean turnaround (empty)" `Quick test_mean_turnaround_empty;
    Alcotest.test_case "table 2 buckets" `Quick test_table2_boundaries;
  ]
