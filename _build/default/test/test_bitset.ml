(* Tests for Sim.Bitset. *)

open Sim

let test_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63 (word boundary)" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index 10 out of range [0, 10)") (fun () ->
      Bitset.add b 10);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitset: index -1 out of range [0, 10)") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_fill_clear () =
  let b = Bitset.create 130 in
  Bitset.fill b;
  Alcotest.(check int) "full" 130 (Bitset.cardinal b);
  Alcotest.(check bool) "mem last" true (Bitset.mem b 129);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let test_iter_order () =
  let b = Bitset.of_list 200 [ 150; 3; 77; 3; 64 ] in
  Alcotest.(check (list int)) "ascending" [ 3; 64; 77; 150 ] (Bitset.to_list b)

let test_first_clear_from () =
  let b = Bitset.of_list 10 [ 0; 1; 2; 5 ] in
  Alcotest.(check (option int)) "from 0" (Some 3) (Bitset.first_clear_from b 0);
  Alcotest.(check (option int)) "from 3" (Some 3) (Bitset.first_clear_from b 3);
  Alcotest.(check (option int)) "from 5" (Some 6) (Bitset.first_clear_from b 5);
  let full = Bitset.create 4 in
  Bitset.fill full;
  Alcotest.(check (option int)) "all set" None (Bitset.first_clear_from full 0)

let test_count_range () =
  let b = Bitset.of_list 100 [ 10; 20; 30; 40 ] in
  Alcotest.(check int) "range [15,35)" 2 (Bitset.count_range b ~lo:15 ~hi:35);
  Alcotest.(check int) "clamped" 4 (Bitset.count_range b ~lo:(-5) ~hi:1000)

let test_set_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 65; 66 ] in
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  let c = Bitset.of_list 70 [ 3; 69 ] in
  Alcotest.(check bool) "disjoint" true (Bitset.disjoint a c);
  Bitset.union_into ~dst:a c;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 65; 69 ] (Bitset.to_list a)

let test_copy_equal () =
  let a = Bitset.of_list 50 [ 5; 10 ] in
  let b = Bitset.copy a in
  Alcotest.(check bool) "equal" true (Bitset.equal a b);
  Bitset.add b 11;
  Alcotest.(check bool) "copy independent" false (Bitset.equal a b)

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list (int_range 0 199))
    (fun xs ->
      let b = Sim.Bitset.of_list 200 xs in
      Sim.Bitset.to_list b = List.sort_uniq compare xs)

let prop_cardinal =
  QCheck2.Test.make ~name:"cardinal = |set|" ~count:200
    QCheck2.Gen.(list (int_range 0 499))
    (fun xs ->
      let b = Sim.Bitset.of_list 500 xs in
      Sim.Bitset.cardinal b = List.length (List.sort_uniq compare xs))

let suite =
  [
    Alcotest.test_case "basic membership" `Quick test_basic;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "fill and clear" `Quick test_fill_clear;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    Alcotest.test_case "first_clear_from" `Quick test_first_clear_from;
    Alcotest.test_case "count_range" `Quick test_count_range;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "copy and equal" `Quick test_copy_equal;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_cardinal;
  ]
