(* Tests for inter-job interference measurement — and the headline
   semantic claim: Jigsaw partitions produce zero inter-job channel
   sharing where Baseline placement does not. *)

open Fattree
open Jigsaw_core
open Routing

let topo = Topology.of_radix 8

let test_no_jobs () =
  let r = Congestion.analyze [] in
  Alcotest.(check int) "no flows" 0 r.total_flows;
  Alcotest.(check int) "no sharing" 0 r.shared_channels

let test_single_job_not_interference () =
  (* A single job sharing its own channels is intra-job, not counted. *)
  let flows = [ (0, 64); (8, 64) ] in
  let r = Congestion.analyze [ (1, Dmodk.routes topo flows) ] in
  Alcotest.(check int) "no cross-job share" 0 r.shared_channels;
  Alcotest.(check int) "flows counted" 2 r.total_flows

let test_cross_job_interference_detected () =
  (* Two jobs whose nodes share leaf 0: their flows to destinations with
     equal slot indices pick the same D-mod-k uplink channel. *)
  let j1 = Dmodk.routes topo [ (0, 16) ] in
  let j2 = Dmodk.routes topo [ (1, 32) ] in
  let r = Congestion.analyze [ (1, j1); (2, j2) ] in
  Alcotest.(check bool) "shared channels > 0" true (r.shared_channels > 0);
  Alcotest.(check int) "both flows interfered" 2 r.interfered_flows

let test_jigsaw_partitions_never_interfere () =
  (* Claim a handful of Jigsaw partitions and route random permutations
     inside each: no channel is shared across jobs, ever. *)
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:31 in
  let jobs = ref [] in
  List.iteri
    (fun job size ->
      match Jigsaw.get_allocation st ~job ~size with
      | None -> ()
      | Some p ->
          State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
          let n = Partition.node_count p in
          let perm = Sim.Prng.permutation prng n in
          (match Rearrange.route_permutation topo p ~perm with
          | Ok paths -> jobs := (job, paths) :: !jobs
          | Error m -> Alcotest.fail m))
    [ 17; 23; 9; 40; 12 ];
  let r = Congestion.analyze !jobs in
  Alcotest.(check bool) "several jobs placed" true (List.length !jobs >= 4);
  Alcotest.(check int) "zero shared channels" 0 r.shared_channels;
  Alcotest.(check int) "zero interfered flows" 0 r.interfered_flows;
  Alcotest.(check bool) "max load 1" true (r.max_load <= 1)

let test_baseline_scattering_interferes () =
  (* Baseline scatters jobs across shared leaves with no network
     awareness.  Two interleaved jobs running all-to-next-leaf traffic:
     flows from the same source leaf with equal destination slots land on
     the same uplink channel. *)
  (* Both jobs hold nodes on leaf 0 and stream to slot-0/1 destinations
     elsewhere: D-mod-k picks the same two uplinks of leaf 0 for both. *)
  let paths1 = Dmodk.routes topo [ (0, 16); (1, 17) ] in
  let paths2 = Dmodk.routes topo [ (2, 32); (3, 33) ] in
  let r = Congestion.analyze [ (1, paths1); (2, paths2) ] in
  Alcotest.(check bool) "interference exists" true (r.interfered_flows > 0)

let suite =
  [
    Alcotest.test_case "empty analysis" `Quick test_no_jobs;
    Alcotest.test_case "intra-job sharing not counted" `Quick test_single_job_not_interference;
    Alcotest.test_case "cross-job sharing detected" `Quick test_cross_job_interference_detected;
    Alcotest.test_case "Jigsaw partitions never interfere" `Quick test_jigsaw_partitions_never_interfere;
    Alcotest.test_case "scattered placement interferes" `Quick test_baseline_scattering_interferes;
  ]
