(* Tests for Sim.Stats. *)

open Sim

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "empty" 0.0 (Stats.mean [||])

let test_variance () =
  Alcotest.check feq "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "singleton" 0.0 (Stats.variance [| 5.0 |])

let test_stddev () =
  Alcotest.check feq "stddev" 2.0 (Stats.stddev [| 2.0; 2.0; 6.0; 6.0 |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  Alcotest.check feq "min" (-1.0) lo;
  Alcotest.check feq "max" 7.0 hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty array")
    (fun () -> ignore (Stats.min_max [||]))

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check feq "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.check feq "p50" 3.0 (Stats.percentile xs 50.0);
  Alcotest.check feq "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.check feq "p25 interpolated" 2.0 (Stats.percentile xs 25.0);
  Alcotest.check feq "p10 interpolated" 1.4 (Stats.percentile xs 10.0)

let test_percentile_unsorted_input () =
  Alcotest.check feq "median of unsorted" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let test_acc () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Acc.count acc);
  Alcotest.check feq "total" 10.0 (Stats.Acc.total acc);
  Alcotest.check feq "mean" 2.5 (Stats.Acc.mean acc);
  Alcotest.check feq "min" 1.0 (Stats.Acc.min acc);
  Alcotest.check feq "max" 4.0 (Stats.Acc.max acc);
  Alcotest.check (Alcotest.float 1e-6) "stddev matches array version"
    (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |])
    (Stats.Acc.stddev acc)

let test_acc_empty () =
  let acc = Stats.Acc.create () in
  Alcotest.check feq "mean empty" 0.0 (Stats.Acc.mean acc);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.Acc.min: empty")
    (fun () -> ignore (Stats.Acc.min acc))

let test_hist_buckets () =
  let h = Stats.Hist.create ~boundaries:[| 0.6; 0.8; 0.9 |] in
  List.iter (Stats.Hist.add h) [ 0.1; 0.59; 0.6; 0.7; 0.85; 0.95; 1.0 ];
  Alcotest.(check (array int)) "counts" [| 2; 2; 1; 2 |] (Stats.Hist.counts h);
  Alcotest.(check int) "total" 7 (Stats.Hist.total h)

let test_hist_weighted () =
  let h = Stats.Hist.create ~boundaries:[| 1.0 |] in
  Stats.Hist.add_weighted h 0.5 ~weight:3;
  Stats.Hist.add_weighted h 1.5 ~weight:2;
  Alcotest.(check (array int)) "weighted" [| 3; 2 |] (Stats.Hist.counts h)

let test_hist_bad_boundaries () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.Hist.create: boundaries must be strictly increasing")
    (fun () -> ignore (Stats.Hist.create ~boundaries:[| 1.0; 1.0 |]))

let prop_percentile_in_range =
  QCheck2.Test.make ~name:"percentile lies within extrema" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_bound_inclusive 100.0))
        (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Sim.Stats.percentile arr p in
      let lo, hi = Sim.Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile on unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "streaming accumulator" `Quick test_acc;
    Alcotest.test_case "accumulator empty" `Quick test_acc_empty;
    Alcotest.test_case "histogram buckets" `Quick test_hist_buckets;
    Alcotest.test_case "histogram weights" `Quick test_hist_weighted;
    Alcotest.test_case "histogram bad boundaries" `Quick test_hist_bad_boundaries;
    QCheck_alcotest.to_alcotest prop_percentile_in_range;
  ]
