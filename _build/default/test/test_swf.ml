(* Tests for the Standard Workload Format parser/printer. *)

let sample =
  "; comment line\n\
   ;another\n\
   1 0 5 3600 64 -1 -1 64 3600 -1 1 -1 -1 -1 -1 -1 -1 -1\n\
   \n\
   2 100 0 60 8 -1 -1 16 120 -1 1 -1 -1 -1 -1 -1 -1 -1\n\
   3 200 0 -1 4 -1 -1 4 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n"

let test_parse_basics () =
  match Trace.Swf.parse_string ~name:"s" ~system_nodes:128 sample with
  | Error m -> Alcotest.fail m
  | Ok w ->
      (* Third line has runtime -1 and is skipped. *)
      Alcotest.(check int) "two jobs" 2 (Trace.Workload.num_jobs w);
      let j0 = w.jobs.(0) and j1 = w.jobs.(1) in
      Alcotest.(check int) "size from requested procs" 64 j0.size;
      Alcotest.(check (float 1e-9)) "runtime" 3600.0 j0.runtime;
      Alcotest.(check (float 1e-9)) "arrival" 0.0 j0.arrival;
      Alcotest.(check int) "second size (requested over allocated)" 16 j1.size;
      Alcotest.(check (float 1e-9)) "second arrival" 100.0 j1.arrival

let test_estimate_from_requested_time () =
  (* Field 9 (requested time) becomes the estimate, clamped >= runtime. *)
  let line = "1 0 0 60 8 -1 -1 8 600 -1 1 -1 -1 -1 -1 -1 -1 -1" in
  (match Trace.Swf.parse_line 0 line with
  | Ok (Some j) ->
      Alcotest.(check (float 1e-9)) "estimate" 600.0 j.est_runtime;
      Alcotest.(check (float 1e-9)) "runtime" 60.0 j.runtime
  | _ -> Alcotest.fail "expected a job");
  (* Under-estimates clamp to the runtime. *)
  let line = "1 0 0 60 8 -1 -1 8 10 -1 1 -1 -1 -1 -1 -1 -1 -1" in
  match Trace.Swf.parse_line 0 line with
  | Ok (Some j) -> Alcotest.(check (float 1e-9)) "clamped" 60.0 j.est_runtime
  | _ -> Alcotest.fail "expected a job"

let test_requested_fallback () =
  (* Requested procs -1: fall back to allocated (field 5). *)
  let line = "1 0 0 60 24 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1" in
  match Trace.Swf.parse_line 0 line with
  | Ok (Some j) -> Alcotest.(check int) "fallback" 24 j.size
  | _ -> Alcotest.fail "expected a job"

let test_malformed () =
  (match Trace.Swf.parse_line 0 "1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short line accepted");
  match Trace.Swf.parse_line 0 "a b c d e f g h" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric accepted"

let test_roundtrip () =
  let w = Trace.Synthetic.synth ~mean_size:8 ~n_jobs:200 ~seed:11 ~max_size:64 in
  let text = Trace.Swf.to_string w in
  match Trace.Swf.parse_string ~name:w.name ~system_nodes:64 text with
  | Error m -> Alcotest.fail m
  | Ok w' ->
      Alcotest.(check int) "count" (Trace.Workload.num_jobs w) (Trace.Workload.num_jobs w');
      Array.iteri
        (fun i (j : Trace.Job.t) ->
          let j' = w'.jobs.(i) in
          Alcotest.(check int) "size" j.size j'.size;
          (* SWF stores whole seconds. *)
          Alcotest.(check bool) "runtime within 1s" true
            (Float.abs (j.runtime -. j'.runtime) <= 0.5))
        w.jobs

let test_file_roundtrip () =
  let w = Trace.Synthetic.synth ~mean_size:4 ~n_jobs:50 ~seed:13 ~max_size:32 in
  let path = Filename.temp_file "jigsaw_swf" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Swf.save w path;
      match Trace.Swf.load ~name:"x" ~system_nodes:32 path with
      | Ok w' -> Alcotest.(check int) "count" 50 (Trace.Workload.num_jobs w')
      | Error m -> Alcotest.fail m)

let test_load_missing_file () =
  match Trace.Swf.load ~name:"x" ~system_nodes:1 "/nonexistent/file.swf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let suite =
  [
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "requested-procs fallback" `Quick test_requested_fallback;
    Alcotest.test_case "estimate from requested time" `Quick test_estimate_from_requested_time;
    Alcotest.test_case "malformed lines rejected" `Quick test_malformed;
    Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "missing file" `Quick test_load_missing_file;
  ]
