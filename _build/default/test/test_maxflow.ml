(* Tests for Dinic's max flow. *)

open Routing

let test_simple_path () =
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:2;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5;
  Alcotest.(check int) "bottleneck" 2 (Maxflow.max_flow g ~s:0 ~t:3)

let test_parallel_paths () =
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge g ~src:0 ~dst:2 ~cap:1;
  Maxflow.add_edge g ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:1;
  Alcotest.(check int) "two paths" 2 (Maxflow.max_flow g ~s:0 ~t:3)

let test_disconnected () =
  let g = Maxflow.create 3 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:4;
  Alcotest.(check int) "no route" 0 (Maxflow.max_flow g ~s:0 ~t:2)

let test_needs_augmenting_path () =
  (* Classic case where a greedy choice must be undone via the residual
     edge. *)
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge g ~src:0 ~dst:2 ~cap:1;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:1;
  Maxflow.add_edge g ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:1;
  Alcotest.(check int) "flow 2" 2 (Maxflow.max_flow g ~s:0 ~t:3)

let test_bipartite_matching_equivalence () =
  (* Max flow on a unit bipartite network equals max matching size. *)
  let n = 5 in
  let edges = [ (0, 1); (0, 2); (1, 1); (2, 0); (3, 3); (4, 3) ] in
  let g = Maxflow.create (2 + (2 * n)) in
  let s = 2 * n and t = (2 * n) + 1 in
  for u = 0 to n - 1 do
    Maxflow.add_edge g ~src:s ~dst:u ~cap:1
  done;
  for v = 0 to n - 1 do
    Maxflow.add_edge g ~src:(n + v) ~dst:t ~cap:1
  done;
  List.iter (fun (u, v) -> Maxflow.add_edge g ~src:u ~dst:(n + v) ~cap:1) edges;
  let m = Matching.create ~left:n ~right:n in
  List.iter (fun (u, v) -> Matching.add_edge m u v) edges;
  Alcotest.(check int) "flow = matching"
    (List.length (Matching.max_matching m))
    (Maxflow.max_flow g ~s ~t)

let suite =
  [
    Alcotest.test_case "simple path bottleneck" `Quick test_simple_path;
    Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "augmenting path needed" `Quick test_needs_augmenting_path;
    Alcotest.test_case "matches bipartite matching" `Quick test_bipartite_matching_equivalence;
  ]
