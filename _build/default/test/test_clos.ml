(* Tests for the Clos (unfolded) view of the fat-tree. *)

open Fattree

let topo = Topology.of_radix 8

let test_stage_indices () =
  Alcotest.(check (list int)) "1..5" [ 1; 2; 3; 4; 5 ]
    (List.map Clos.stage_index
       [ Clos.In_leaf; Clos.In_l2; Clos.Spine_stage; Clos.Out_l2; Clos.Out_leaf ])

let test_stage_widths () =
  Alcotest.(check int) "in leaves" 32 (Clos.stage_width topo Clos.In_leaf);
  Alcotest.(check int) "in l2" 32 (Clos.stage_width topo Clos.In_l2);
  Alcotest.(check int) "spines" 16 (Clos.stage_width topo Clos.Spine_stage);
  Alcotest.(check int) "out l2" 32 (Clos.stage_width topo Clos.Out_l2);
  Alcotest.(check int) "out leaves" 32 (Clos.stage_width topo Clos.Out_leaf)

let test_center_networks () =
  (* An L2 switch belongs to the center network of its index in the pod;
     a spine to its group; leaves to none. *)
  Alcotest.(check (option int)) "leaf" None
    (Clos.center_network topo ~stage:Clos.In_leaf ~pos:3);
  let l2 = Topology.l2_of_coords topo ~pod:5 ~index:2 in
  Alcotest.(check (option int)) "l2" (Some 2)
    (Clos.center_network topo ~stage:Clos.In_l2 ~pos:l2);
  let spine = Topology.spine_of_coords topo ~group:3 ~index:1 in
  Alcotest.(check (option int)) "spine" (Some 3)
    (Clos.center_network topo ~stage:Clos.Spine_stage ~pos:spine)

let test_center_network_partition () =
  (* Each center network i contains exactly m3 L2 switches and m2
     spines: together they partition the middle stages. *)
  let counts_l2 = Array.make (Topology.m1 topo) 0 in
  for pos = 0 to Topology.num_l2 topo - 1 do
    match Clos.center_network topo ~stage:Clos.In_l2 ~pos with
    | Some i -> counts_l2.(i) <- counts_l2.(i) + 1
    | None -> Alcotest.fail "l2 must have a center"
  done;
  Array.iter (fun c -> Alcotest.(check int) "m3 L2 per center" 8 c) counts_l2;
  let counts_sp = Array.make (Topology.m1 topo) 0 in
  for pos = 0 to Topology.num_spines topo - 1 do
    match Clos.center_network topo ~stage:Clos.Spine_stage ~pos with
    | Some i -> counts_sp.(i) <- counts_sp.(i) + 1
    | None -> Alcotest.fail "spine must have a center"
  done;
  Array.iter (fun c -> Alcotest.(check int) "m2 spines per center" 4 c) counts_sp

let test_io_positions () =
  Alcotest.(check int) "input pos" 77 (Clos.input_of_node topo 77);
  Alcotest.(check int) "output pos" 77 (Clos.output_of_node topo 77);
  Alcotest.(check int) "input leaf" (Topology.node_leaf topo 77)
    (Clos.leaf_of_input topo 77)

let test_crossing_stages () =
  Alcotest.(check int) "same leaf" 0 (Clos.crossing_stages topo ~src:0 ~dst:3);
  Alcotest.(check int) "same pod" 2 (Clos.crossing_stages topo ~src:0 ~dst:9);
  Alcotest.(check int) "cross pod" 4 (Clos.crossing_stages topo ~src:0 ~dst:100)

let suite =
  [
    Alcotest.test_case "stage indices" `Quick test_stage_indices;
    Alcotest.test_case "stage widths" `Quick test_stage_widths;
    Alcotest.test_case "center networks" `Quick test_center_networks;
    Alcotest.test_case "center networks partition middle stages" `Quick test_center_network_partition;
    Alcotest.test_case "input/output positions" `Quick test_io_positions;
    Alcotest.test_case "crossing stages" `Quick test_crossing_stages;
  ]
