(* Tests for the least-constrained (LC / LC+S) search. *)

open Fattree
open Jigsaw_core

let topo = Topology.of_radix 8

let test_basic_allocations_legal () =
  let st = State.create topo in
  List.iteri
    (fun job size ->
      match Least_constrained.get_allocation st ~job ~size with
      | None -> Alcotest.failf "size %d failed on empty machine" size
      | Some p ->
          (match Conditions.check topo p with
          | Ok () -> ()
          | Error m -> Alcotest.failf "size %d illegal: %s" size m);
          Alcotest.(check int) "exact" size (Partition.node_count p);
          State.claim_exn st (Partition.to_alloc topo p ~bw:1.0))
    [ 1; 5; 17; 23; 40; 13 ]

let test_more_permissive_than_jigsaw () =
  (* Occupy one node on every leaf: Jigsaw's three-level search needs
     fully-free leaves and fails for a >pod job, while LC can still use
     partial leaves (n_l = 3). *)
  let st = State.create topo in
  for leaf = 0 to Topology.num_leaves topo - 1 do
    State.claim_exn st
      (Alloc.nodes_only ~job:(1000 + leaf) ~size:1
         [| Topology.leaf_first_node topo leaf |])
  done;
  Alcotest.(check bool) "Jigsaw fails" true
    (Jigsaw.get_allocation st ~job:0 ~size:17 = None);
  match Least_constrained.get_allocation st ~job:0 ~size:17 with
  | None -> Alcotest.fail "LC should succeed with n_l <= 3"
  | Some p ->
      Alcotest.(check bool) "legal" true (Conditions.is_legal topo p);
      Alcotest.(check bool) "uses partial leaves" true (Partition.n_l p < 4);
      State.claim_exn st (Partition.to_alloc topo p ~bw:1.0)

let test_fractional_demand_shares_links () =
  let st = State.create topo in
  (* Two 20-node jobs at demand 0.5 share spine cables; exclusive
     (demand 1.0) jobs could not both span pods this way after the
     machine fills.  Just verify both claims succeed at 0.5. *)
  let alloc_one job =
    match Least_constrained.get_allocation ~demand:0.5 st ~job ~size:20 with
    | Some p ->
        State.claim_exn st (Partition.to_alloc topo p ~bw:0.5);
        p
    | None -> Alcotest.failf "job %d failed" job
  in
  let p1 = alloc_one 1 in
  let p2 = alloc_one 2 in
  Alcotest.(check int) "both sized" 40
    (Partition.node_count p1 + Partition.node_count p2)

let test_budget_exhaustion_returns_none () =
  let st = State.create topo in
  (* Tiny budget: the three-level search cannot finish.  (Two-level
     placements carry no budget, so pick a size that spans pods.) *)
  Alcotest.(check bool) "gives up gracefully" true
    (Least_constrained.get_allocation ~budget:1 st ~job:0 ~size:100 = None)

let test_rejects_oversize () =
  let st = State.create topo in
  Alcotest.(check bool) "too big" true
    (Least_constrained.get_allocation st ~job:0 ~size:129 = None)

(* Property: LC succeeds whenever Jigsaw does (it searches a superset of
   the shape space), and its partitions are always legal. *)
let prop_lc_superset_of_jigsaw =
  QCheck2.Test.make ~name:"LC places whatever Jigsaw places" ~count:40
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 100_000))
    (fun (size, seed) ->
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      (* Light random churn first. *)
      for j = 0 to 6 do
        let s = Sim.Prng.int_in prng ~lo:1 ~hi:16 in
        match Jigsaw.get_allocation st ~job:(500 + j) ~size:s with
        | Some p -> State.claim_exn st (Partition.to_alloc topo p ~bw:1.0)
        | None -> ()
      done;
      match Jigsaw.get_allocation st ~job:0 ~size with
      | None -> true (* nothing to compare *)
      | Some _ -> (
          match Least_constrained.get_allocation st ~job:0 ~size with
          | Some p -> Conditions.is_legal topo p
          | None -> false))

let suite =
  [
    Alcotest.test_case "legal allocations" `Quick test_basic_allocations_legal;
    Alcotest.test_case "more permissive than Jigsaw" `Quick test_more_permissive_than_jigsaw;
    Alcotest.test_case "fractional demands share links" `Quick test_fractional_demand_shares_links;
    Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion_returns_none;
    Alcotest.test_case "oversize rejected" `Quick test_rejects_oversize;
    QCheck_alcotest.to_alcotest prop_lc_superset_of_jigsaw;
  ]
