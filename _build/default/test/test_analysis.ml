(* Tests for workload analysis — including checks that the synthetic
   stand-ins exhibit the characteristics the paper states. *)

let test_empty () =
  let w = Trace.Workload.create ~name:"e" ~system_nodes:8 [||] in
  let a = Trace.Analysis.analyze w in
  Alcotest.(check int) "no jobs" 0 a.num_jobs

let test_basic_stats () =
  let jobs =
    [|
      Trace.Job.v ~id:0 ~size:1 ~runtime:10.0 ();
      Trace.Job.v ~id:1 ~size:4 ~runtime:20.0 ();
      Trace.Job.v ~id:2 ~size:3 ~runtime:30.0 ();
      Trace.Job.v ~id:3 ~size:8 ~runtime:40.0 ();
    |]
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:16 jobs in
  let a = Trace.Analysis.analyze w in
  Alcotest.(check (float 1e-9)) "mean size" 4.0 a.mean_size;
  Alcotest.(check int) "max" 8 a.max_size;
  (* 1, 4, 8 are powers of two. *)
  Alcotest.(check (float 1e-9)) "pow2" 0.75 a.pow2_fraction;
  Alcotest.(check (float 1e-9)) "single node" 0.25 a.single_node_fraction;
  Alcotest.(check bool) "no arrivals, no load" true (a.offered_load = None)

let test_offered_load () =
  let jobs =
    [|
      Trace.Job.v ~id:0 ~size:10 ~runtime:100.0 ~arrival:0.0 ();
      Trace.Job.v ~id:1 ~size:10 ~runtime:100.0 ~arrival:100.0 ();
    |]
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:20 jobs in
  let a = Trace.Analysis.analyze w in
  (* demand 2000 node-s over 20 nodes * 100 s span = 1.0 *)
  Alcotest.(check (option (float 1e-6))) "load" (Some 1.0) a.offered_load

let test_size_histogram () =
  let jobs =
    [|
      Trace.Job.v ~id:0 ~size:1 ~runtime:1.0 ();
      Trace.Job.v ~id:1 ~size:2 ~runtime:1.0 ();
      Trace.Job.v ~id:2 ~size:3 ~runtime:1.0 ();
      Trace.Job.v ~id:3 ~size:4 ~runtime:1.0 ();
      Trace.Job.v ~id:4 ~size:7 ~runtime:1.0 ();
    |]
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:8 jobs in
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (1, 1); (2, 1); (4, 2); (8, 1) ]
    (Trace.Analysis.size_histogram w)

let test_load_profile () =
  let jobs =
    Array.init 10 (fun i ->
        Trace.Job.v ~id:i ~size:5 ~runtime:10.0 ~arrival:(float_of_int (i * 10)) ())
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:10 jobs in
  let profile = Trace.Analysis.load_profile w ~buckets:3 in
  Alcotest.(check int) "three buckets" 3 (Array.length profile);
  Array.iter (fun (_, l) -> Alcotest.(check bool) "positive" true (l > 0.0)) profile

let test_thunder_characteristics () =
  (* The stand-in must show the published fingerprints: extra mass on
     powers of two and runtimes skewed short (median far below mean). *)
  let w = Trace.Synthetic.thunder_like ~n_jobs:5_000 ~seed:3301 () in
  let a = Trace.Analysis.analyze w in
  Alcotest.(check bool) "power-of-two boost" true (a.pow2_fraction > 0.35);
  Alcotest.(check bool) "short-skewed runtimes" true
    (a.median_runtime < 0.6 *. a.mean_runtime);
  Alcotest.(check bool) "has single-node jobs (Table 1)" true
    (a.single_node_fraction > 0.0)

let test_synth_not_pow2_boosted () =
  (* The plain synthetic traces are purely exponential: a power of two is
     no more likely than its neighbours. *)
  let w = Trace.Synthetic.synth ~mean_size:16 ~n_jobs:5_000 ~seed:1 ~max_size:1024 in
  let a = Trace.Analysis.analyze w in
  Alcotest.(check bool) "no strong pow2 boost" true (a.pow2_fraction < 0.35)

let test_cab_load_near_target () =
  let w =
    Trace.Synthetic.cab_like ~month:"T" ~n_jobs:3_000 ~seed:5 ~target_load:1.0
      ~arrival_scale:1.0 ()
  in
  match (Trace.Analysis.analyze w).offered_load with
  | Some l ->
      Alcotest.(check bool) (Printf.sprintf "load ~1.0 (got %.2f)" l) true
        (l > 0.85 && l < 1.15)
  | None -> Alcotest.fail "cab has arrivals"

let suite =
  [
    Alcotest.test_case "empty workload" `Quick test_empty;
    Alcotest.test_case "basic stats" `Quick test_basic_stats;
    Alcotest.test_case "offered load" `Quick test_offered_load;
    Alcotest.test_case "size histogram" `Quick test_size_histogram;
    Alcotest.test_case "load profile" `Quick test_load_profile;
    Alcotest.test_case "thunder fingerprints" `Quick test_thunder_characteristics;
    Alcotest.test_case "synth is plain exponential" `Quick test_synth_not_pow2_boosted;
    Alcotest.test_case "cab load near target" `Quick test_cab_load_near_target;
  ]
