(* Tests for D-mod-k static routing on the full tree. *)

open Fattree
open Routing

let topo = Topology.of_radix 8

let test_intra_leaf_local () =
  let p = Dmodk.path topo ~src:0 ~dst:1 in
  Alcotest.(check int) "no hops" 0 (List.length p.hops)

let test_intra_pod_two_hops () =
  (* Nodes 0 and 4 are on leaves 0 and 1 of pod 0. *)
  let p = Dmodk.path topo ~src:0 ~dst:4 in
  Alcotest.(check int) "two hops" 2 (List.length p.hops);
  match p.hops with
  | [ up; down ] ->
      Alcotest.(check bool) "up then down" true
        (up.dir = Path.Up && down.dir = Path.Down);
      Alcotest.(check bool) "same L2 index" true
        (Topology.leaf_l2_cable_l2_index topo up.cable
        = Topology.leaf_l2_cable_l2_index topo down.cable)
  | _ -> Alcotest.fail "hop shape"

let test_inter_pod_four_hops () =
  let dst = Topology.node_of_coords topo ~pod:3 ~leaf:2 ~slot:1 in
  let p = Dmodk.path topo ~src:0 ~dst in
  Alcotest.(check int) "four hops" 4 (List.length p.hops);
  (* Destination-based determinism: same dst from another source in a
     third pod picks the same spine. *)
  let src2 = Topology.node_of_coords topo ~pod:5 ~leaf:0 ~slot:0 in
  let p2 = Dmodk.path topo ~src:src2 ~dst in
  let spine_of path =
    List.find_map
      (fun (h : Path.hop) ->
        if h.tier = Path.L2_spine && h.dir = Path.Down then
          Some (Topology.spine_of_l2_cable topo h.cable)
        else None)
      path.Path.hops
  in
  Alcotest.(check (option int)) "same spine for same dst" (spine_of p) (spine_of p2)

let test_shift_permutation_balanced () =
  (* D-mod-k's design goal: shift permutations on the dedicated tree are
     congestion-free. *)
  let n = Topology.num_nodes topo in
  let flows = List.init n (fun s -> (s, (s + Topology.m1 topo) mod n)) in
  Alcotest.(check int) "one flow per channel" 1 (Dmodk.max_load topo flows)

let test_hotspot_under_skew () =
  (* Many sources, one destination leaf: downlinks hotspot. *)
  let dst = Topology.node_of_coords topo ~pod:7 ~leaf:0 ~slot:0 in
  let flows = List.init 16 (fun k -> (k * Topology.m1 topo, dst)) in
  Alcotest.(check bool) "load > 1" true (Dmodk.max_load topo flows > 1)

let test_routes_cover_flows () =
  let flows = [ (0, 100); (5, 37); (64, 8) ] in
  let paths = Dmodk.routes topo flows in
  Alcotest.(check (list (pair int int)))
    "endpoints"
    flows
    (List.map (fun (p : Path.t) -> (p.src, p.dst)) paths)

let prop_paths_use_valid_cables =
  QCheck2.Test.make ~name:"dmodk paths stay in cable id ranges" ~count:300
    QCheck2.Gen.(pair (int_range 0 127) (int_range 0 127))
    (fun (src, dst) ->
      let p = Dmodk.path topo ~src ~dst in
      List.for_all
        (fun (h : Path.hop) ->
          match h.tier with
          | Path.Leaf_l2 -> h.cable >= 0 && h.cable < Topology.num_leaf_l2_cables topo
          | Path.L2_spine -> h.cable >= 0 && h.cable < Topology.num_l2_spine_cables topo)
        p.hops)

let prop_up_down_symmetry =
  QCheck2.Test.make ~name:"dmodk: hop structure follows pod locality" ~count:300
    QCheck2.Gen.(pair (int_range 0 127) (int_range 0 127))
    (fun (src, dst) ->
      let p = Dmodk.path topo ~src ~dst in
      let hops = List.length p.hops in
      if Topology.node_leaf topo src = Topology.node_leaf topo dst then hops = 0
      else if Topology.node_pod topo src = Topology.node_pod topo dst then hops = 2
      else hops = 4)

let suite =
  [
    Alcotest.test_case "intra-leaf is local" `Quick test_intra_leaf_local;
    Alcotest.test_case "intra-pod two hops" `Quick test_intra_pod_two_hops;
    Alcotest.test_case "inter-pod four hops, destination-based" `Quick test_inter_pod_four_hops;
    Alcotest.test_case "shift permutation balanced" `Quick test_shift_permutation_balanced;
    Alcotest.test_case "hotspot under skew" `Quick test_hotspot_under_skew;
    Alcotest.test_case "routes cover flows" `Quick test_routes_cover_flows;
    QCheck_alcotest.to_alcotest prop_paths_use_valid_cables;
    QCheck_alcotest.to_alcotest prop_up_down_symmetry;
  ]
