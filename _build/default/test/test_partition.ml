(* Tests for the partition representation and flattening. *)

open Fattree
open Jigsaw_core

let topo = Topology.of_radix 8

let two_level_fixture () =
  match Jigsaw.get_allocation (State.create topo) ~job:7 ~size:5 with
  | Some p -> p
  | None -> Alcotest.fail "fixture"

let three_level_fixture () =
  match Jigsaw.get_allocation (State.create topo) ~job:8 ~size:20 with
  | Some p -> p
  | None -> Alcotest.fail "fixture"

let test_kind () =
  Alcotest.(check bool) "2L" true (Partition.kind (two_level_fixture ()) = Two_level);
  Alcotest.(check bool) "3L" true
    (Partition.kind (three_level_fixture ()) = Three_level)

let test_nodes_sorted_unique () =
  let p = three_level_fixture () in
  let nodes = Partition.nodes p in
  Alcotest.(check int) "count" 20 (Array.length nodes);
  for i = 1 to Array.length nodes - 1 do
    Alcotest.(check bool) "ascending" true (nodes.(i) > nodes.(i - 1))
  done

let test_pods_used () =
  let p = three_level_fixture () in
  (* 20 nodes on radix 8 (pod = 16) spans exactly 2 pods under the
     dense-first shape (16 + 4). *)
  Alcotest.(check int) "pods" 2 (List.length (Partition.pods_used p))

let test_n_l_and_s () =
  let p = three_level_fixture () in
  Alcotest.(check int) "full leaves carry m1" 4 (Partition.n_l p);
  Alcotest.(check (array int)) "S = all indices" [| 0; 1; 2; 3 |]
    (Partition.l2_index_set p)

let test_to_alloc_counts () =
  let p = three_level_fixture () in
  let a = Partition.to_alloc topo p ~bw:1.0 in
  Alcotest.(check int) "nodes" 20 (Array.length a.nodes);
  (* Leaf cables: one per (node) since links balance nodes. *)
  Alcotest.(check int) "leaf cables" 20 (Array.length a.leaf_cables);
  (* Spine cables: full tree contributes 4 L2 x l_t=4... here t=1 full
     tree of 4 leaves (16 nodes) and a remainder tree of 1 leaf (4
     nodes).  Full tree: 4 L2 x 4 uplinks = 16; remainder: 4 L2 x 1 = 4. *)
  Alcotest.(check int) "l2 cables" 20 (Array.length a.l2_cables);
  Alcotest.(check (float 1e-9)) "bw" 1.0 a.bw;
  Alcotest.(check int) "job id" 8 a.job

let test_to_alloc_two_level_no_spines () =
  let p = two_level_fixture () in
  let a = Partition.to_alloc topo p ~bw:0.25 in
  Alcotest.(check int) "no spine cables" 0 (Array.length a.l2_cables);
  Alcotest.(check int) "leaf cables = nodes" 5 (Array.length a.leaf_cables);
  Alcotest.(check (float 1e-9)) "fractional bw" 0.25 a.bw

let test_leaves_accessor () =
  let p = three_level_fixture () in
  let leaves = Partition.leaves p in
  Alcotest.(check int) "five leaves (4 full + 1 rem-tree leaf)" 5
    (Array.length leaves)

let test_node_count_matches () =
  let p = two_level_fixture () in
  Alcotest.(check int) "node_count" 5 (Partition.node_count p);
  Alcotest.(check int) "nodes array" 5 (Array.length (Partition.nodes p))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_pp_runs () =
  let p = three_level_fixture () in
  let s = Format.asprintf "%a" Partition.pp p in
  Alcotest.(check bool) "mentions job" true (contains ~needle:"job=8" s);
  Alcotest.(check bool) "mentions level" true (contains ~needle:"three-level" s)

let suite =
  [
    Alcotest.test_case "kind" `Quick test_kind;
    Alcotest.test_case "nodes sorted unique" `Quick test_nodes_sorted_unique;
    Alcotest.test_case "pods used" `Quick test_pods_used;
    Alcotest.test_case "n_l and S" `Quick test_n_l_and_s;
    Alcotest.test_case "to_alloc cable counts" `Quick test_to_alloc_counts;
    Alcotest.test_case "two-level flattening" `Quick test_to_alloc_two_level_no_spines;
    Alcotest.test_case "leaves accessor" `Quick test_leaves_accessor;
    Alcotest.test_case "node_count" `Quick test_node_count_matches;
    Alcotest.test_case "pretty printing" `Quick test_pp_runs;
  ]
