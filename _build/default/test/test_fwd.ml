(* Tests for forwarding-table compilation and table-driven packet
   walks. *)

open Fattree
open Jigsaw_core
open Routing

let topo = Topology.of_radix 8

let fixture size =
  let st = State.create topo in
  match Jigsaw.get_allocation st ~job:0 ~size with
  | Some p -> p
  | None -> Alcotest.failf "no allocation for %d" size

let test_compile_and_walk_two_level () =
  let p = fixture 11 in
  match Fwd.compile topo p with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match Fwd.verify_all_pairs topo p t with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_compile_and_walk_three_level () =
  let p = fixture 23 in
  match Fwd.compile topo p with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match Fwd.verify_all_pairs topo p t with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_walk_matches_path_function () =
  let p = fixture 20 in
  let t = Result.get_ok (Fwd.compile topo p) in
  let nodes = Partition.nodes p in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            let walked = Result.get_ok (Fwd.walk topo t ~src ~dst) in
            let direct = Result.get_ok (Partition_routing.path topo p ~src ~dst) in
            Alcotest.(check int)
              (Printf.sprintf "%d->%d same hop count" src dst)
              (List.length direct.hops)
              (List.length walked.hops)
          end)
        nodes)
    nodes

let test_tables_are_small () =
  (* Entries are per (switch, destination): a 20-node partition needs at
     most (#switches it touches) * 20 entries. *)
  let p = fixture 20 in
  let t = Result.get_ok (Fwd.compile topo p) in
  let n_switches = List.length (Fwd.switches t) in
  Alcotest.(check bool) "entry bound" true
    (Fwd.num_entries t <= n_switches * 20);
  Alcotest.(check bool) "has entries" true (Fwd.num_entries t > 0)

let test_missing_entry_detected () =
  let p = fixture 8 in
  let t = Result.get_ok (Fwd.compile topo p) in
  (* A node outside the partition has no entries. *)
  let foreign = Topology.num_nodes topo - 1 in
  match Fwd.walk topo t ~src:(Partition.nodes p).(0) ~dst:foreign with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign destination walked"

let test_lookup_api () =
  let p = fixture 8 in
  let t = Result.get_ok (Fwd.compile topo p) in
  let nodes = Partition.nodes p in
  let dst = nodes.(Array.length nodes - 1) in
  let src = nodes.(0) in
  let src_leaf = Topology.node_leaf topo src in
  if src_leaf <> Topology.node_leaf topo dst then begin
    match Fwd.lookup t ~switch:(Fwd.Leaf src_leaf) ~dst with
    | Some port -> Alcotest.(check bool) "up port" true (port >= Topology.m1 topo)
    | None -> Alcotest.fail "entry expected"
  end

let prop_tables_deliver_everywhere =
  QCheck2.Test.make ~name:"compiled tables deliver all pairs on random partitions"
    ~count:25
    QCheck2.Gen.(pair (int_range 1 48) (int_range 0 100_000))
    (fun (size, seed) ->
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      (* Fragment first. *)
      for j = 0 to 4 do
        let s = Sim.Prng.int_in prng ~lo:1 ~hi:10 in
        match Jigsaw.get_allocation st ~job:(50 + j) ~size:s with
        | Some q -> State.claim_exn st (Partition.to_alloc topo q ~bw:1.0)
        | None -> ()
      done;
      match Jigsaw.get_allocation st ~job:0 ~size with
      | None -> QCheck2.assume_fail ()
      | Some p -> (
          match Fwd.compile topo p with
          | Error _ -> false
          | Ok t -> Fwd.verify_all_pairs topo p t = Ok ()))

let suite =
  [
    Alcotest.test_case "two-level compile and walk" `Quick test_compile_and_walk_two_level;
    Alcotest.test_case "three-level compile and walk" `Quick test_compile_and_walk_three_level;
    Alcotest.test_case "walk matches path function" `Quick test_walk_matches_path_function;
    Alcotest.test_case "table size bound" `Quick test_tables_are_small;
    Alcotest.test_case "missing entries detected" `Quick test_missing_entry_detected;
    Alcotest.test_case "lookup api" `Quick test_lookup_api;
    QCheck_alcotest.to_alcotest prop_tables_deliver_everywhere;
  ]
