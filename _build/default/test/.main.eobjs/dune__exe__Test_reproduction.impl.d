test/test_reproduction.ml: Alcotest Hashtbl Lazy List Printf Sched Trace
