test/test_incremental.ml: Alcotest Alloc Array Fattree Jigsaw_core List Printf Sched Sim State Topology Trace
