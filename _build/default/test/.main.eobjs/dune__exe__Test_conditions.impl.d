test/test_conditions.ml: Alcotest Array Conditions Fattree Jigsaw_core Partition Result Topology
