test/test_topology.ml: Alcotest Fattree Hashtbl List Printf QCheck2 QCheck_alcotest Result Topology
