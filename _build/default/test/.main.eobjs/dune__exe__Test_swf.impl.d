test/test_swf.ml: Alcotest Array Filename Float Fun Sys Trace
