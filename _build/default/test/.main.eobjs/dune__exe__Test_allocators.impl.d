test/test_allocators.ml: Alcotest Alloc Array Baselines Fattree Jigsaw_core List QCheck2 QCheck_alcotest Result Sched State Topology Trace
