test/test_least_constrained.ml: Alcotest Alloc Conditions Fattree Jigsaw Jigsaw_core Least_constrained List Partition QCheck2 QCheck_alcotest Sim State Topology
