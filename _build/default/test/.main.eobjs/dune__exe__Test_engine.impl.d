test/test_engine.ml: Alcotest Engine List QCheck2 QCheck_alcotest Sim
