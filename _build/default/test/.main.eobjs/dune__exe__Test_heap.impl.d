test/test_heap.ml: Alcotest Heap List QCheck2 QCheck_alcotest Sim
