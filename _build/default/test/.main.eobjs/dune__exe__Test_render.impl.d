test/test_render.ml: Alcotest Alloc Fattree Format Render State String Topology
