test/test_prng.ml: Alcotest Array Float Fun List Printf Prng Sim Stats
