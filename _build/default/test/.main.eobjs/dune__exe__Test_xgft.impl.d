test/test_xgft.ml: Alcotest Fattree Topology Xgft
