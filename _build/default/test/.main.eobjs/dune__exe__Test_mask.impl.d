test/test_mask.ml: Alcotest Jigsaw_core Mask QCheck2 QCheck_alcotest
