test/test_trace.ml: Alcotest Array Fattree Float List Printf Trace
