test/test_metrics.ml: Alcotest Array Sched Sim Trace
