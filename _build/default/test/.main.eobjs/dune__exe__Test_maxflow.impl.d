test/test_maxflow.ml: Alcotest List Matching Maxflow Routing
