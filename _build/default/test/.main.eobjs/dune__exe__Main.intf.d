test/main.mli:
