test/test_fwd.ml: Alcotest Array Fattree Fwd Jigsaw Jigsaw_core List Partition Partition_routing Printf QCheck2 QCheck_alcotest Result Routing Sim State Topology
