test/test_partition.ml: Alcotest Array Fattree Format Jigsaw Jigsaw_core List Partition State String Topology
