test/test_stats.ml: Alcotest Array List QCheck2 QCheck_alcotest Sim Stats
