test/test_congestion.ml: Alcotest Congestion Dmodk Fattree Jigsaw Jigsaw_core List Partition Rearrange Routing Sim State Topology
