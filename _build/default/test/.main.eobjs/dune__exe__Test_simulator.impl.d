test/test_simulator.ml: Alcotest Array List Printf Sched Trace
