test/test_partition_routing.ml: Alcotest Array Dmodk Fattree Jigsaw Jigsaw_core List Partition Partition_routing Path Printf QCheck2 QCheck_alcotest Routing Sim State Topology
