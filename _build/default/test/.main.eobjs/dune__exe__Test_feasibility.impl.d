test/test_feasibility.ml: Alcotest Alloc Array Fattree Feasibility List Printf Routing Topology
