test/test_necessity.ml: Alcotest Alloc Array Fattree Feasibility Jigsaw_core QCheck2 QCheck_alcotest Routing Sim State Topology
