test/test_greedy.ml: Alcotest Array Dmodk Fattree Fun Greedy List Path Routing Sim Topology
