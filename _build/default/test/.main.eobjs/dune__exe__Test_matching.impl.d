test/test_matching.ml: Alcotest Array List Matching QCheck2 QCheck_alcotest Routing Sim
