test/test_state.ml: Alcotest Alloc Array Fattree List QCheck2 QCheck_alcotest Result State Topology
