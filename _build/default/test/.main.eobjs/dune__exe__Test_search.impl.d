test/test_search.ml: Alcotest Alloc Array Conditions Fattree Jigsaw_core List Partition Search Shapes State Topology
