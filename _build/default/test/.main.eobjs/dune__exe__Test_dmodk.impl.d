test/test_dmodk.ml: Alcotest Dmodk Fattree List Path QCheck2 QCheck_alcotest Routing Topology
