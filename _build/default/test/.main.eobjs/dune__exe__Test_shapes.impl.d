test/test_shapes.ml: Alcotest Fattree Jigsaw_core List Printf QCheck2 QCheck_alcotest Shapes Topology
