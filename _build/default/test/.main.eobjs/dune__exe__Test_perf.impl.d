test/test_perf.ml: Alcotest Fattree Jigsaw Jigsaw_core Partition Printf Queue Routing Sim State Topology Unix
