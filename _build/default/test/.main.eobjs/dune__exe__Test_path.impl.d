test/test_path.ml: Alcotest Fattree List Path Result Routing
