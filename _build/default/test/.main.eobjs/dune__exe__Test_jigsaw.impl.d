test/test_jigsaw.ml: Alcotest Alloc Array Conditions Fattree Jigsaw Jigsaw_core List Partition QCheck2 QCheck_alcotest Sim State Topology
