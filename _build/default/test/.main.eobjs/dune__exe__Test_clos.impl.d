test/test_clos.ml: Alcotest Array Clos Fattree List Topology
