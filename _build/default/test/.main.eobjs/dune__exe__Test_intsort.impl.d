test/test_intsort.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Sim
