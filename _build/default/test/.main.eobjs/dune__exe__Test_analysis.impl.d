test/test_analysis.ml: Alcotest Array Printf Trace
