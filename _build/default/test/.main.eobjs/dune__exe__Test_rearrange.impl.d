test/test_rearrange.ml: Alcotest Array Baselines Conditions Fattree Fun Jigsaw Jigsaw_core Least_constrained List Partition Path QCheck2 QCheck_alcotest Rearrange Routing Sim State Topology
