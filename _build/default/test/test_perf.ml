(* Performance regression guards (Slow): the paper's Table 3 claims
   millisecond-scale scheduling on clusters beyond 5000 nodes.  These
   tests bound wall-clock cost loosely (10x headroom over measured) so
   algorithmic regressions — e.g. losing a precheck and exploding the
   backtracking — fail loudly without making the suite flaky. *)

open Fattree
open Jigsaw_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let test_jigsaw_scales_to_radix28 () =
  (* Churn 200 mixed jobs on the 5488-node cluster, releasing as we go so
     allocations keep succeeding against a fragmented machine. *)
  let topo = Topology.of_radix 28 in
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:2828 in
  let placed = ref 0 in
  let live = Queue.create () in
  let (), elapsed =
    time (fun () ->
        for job = 0 to 199 do
          let size = Sim.Prng.int_in prng ~lo:1 ~hi:400 in
          (match Jigsaw.get_allocation st ~job ~size with
          | Some p ->
              incr placed;
              let a = Partition.to_alloc topo p ~bw:1.0 in
              State.claim_exn st a;
              Queue.add a live
          | None -> ());
          (* Keep the machine around 70-90% full. *)
          if State.node_utilization st > 0.85 && not (Queue.is_empty live) then
            State.release st (Queue.pop live)
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "most jobs placed (%d/200)" !placed)
    true (!placed > 150);
  Alcotest.(check bool)
    (Printf.sprintf "200 allocations under 10s (took %.2fs)" elapsed)
    true (elapsed < 10.0)

let test_failing_searches_are_bounded () =
  (* Fill the machine, then hammer infeasible requests: failures must be
     fast (this is what the shape prechecks buy). *)
  let topo = Topology.of_radix 18 in
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:99 in
  let continue = ref true in
  let id = ref 0 in
  while !continue do
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:60 in
    (match Jigsaw.get_allocation st ~job:!id ~size with
    | Some p -> State.claim_exn st (Partition.to_alloc topo p ~bw:1.0)
    | None -> continue := false);
    incr id
  done;
  let (), elapsed =
    time (fun () ->
        for job = 0 to 499 do
          ignore (Jigsaw.get_allocation st ~job ~size:300)
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "500 failing searches under 5s (took %.2fs)" elapsed)
    true (elapsed < 5.0)

let test_routing_scales () =
  (* Route permutations over a 500-node partition on the big cluster. *)
  let topo = Topology.of_radix 28 in
  let st = State.create topo in
  match Jigsaw.get_allocation st ~job:0 ~size:500 with
  | None -> Alcotest.fail "empty machine fits 500"
  | Some p ->
      let n = Jigsaw_core.Partition.node_count p in
      let (), elapsed =
        time (fun () ->
            for shift = 1 to 5 do
              match
                Routing.Rearrange.route_permutation topo p
                  ~perm:(Routing.Rearrange.demo_permutation ~n ~shift)
              with
              | Ok _ -> ()
              | Error m -> Alcotest.fail m
            done)
      in
      Alcotest.(check bool)
        (Printf.sprintf "5 permutation routings under 10s (took %.2fs)" elapsed)
        true (elapsed < 10.0)

let suite =
  [
    Alcotest.test_case "Jigsaw scales to radix 28" `Slow test_jigsaw_scales_to_radix28;
    Alcotest.test_case "failing searches bounded" `Slow test_failing_searches_are_bounded;
    Alcotest.test_case "routing scales" `Slow test_routing_scales;
  ]
