(* Tests for path/channel accounting. *)

open Routing

let hop tier dir cable = { Path.tier; dir; cable }

let test_local_path () =
  let p = Path.local ~src:3 ~dst:4 in
  Alcotest.(check int) "no hops" 0 (List.length p.hops);
  Alcotest.(check int) "no load" 0 (Path.max_channel_load [ p ])

let test_channel_loads_directions_independent () =
  (* Up and down on the same cable are different channels. *)
  let p1 = { Path.src = 0; dst = 1; hops = [ hop Path.Leaf_l2 Path.Up 7 ] } in
  let p2 = { Path.src = 1; dst = 0; hops = [ hop Path.Leaf_l2 Path.Down 7 ] } in
  Alcotest.(check int) "load 1" 1 (Path.max_channel_load [ p1; p2 ]);
  Alcotest.(check bool) "ok" true (Path.one_flow_per_channel [ p1; p2 ] = Ok ())

let test_channel_conflict_detected () =
  let p1 = { Path.src = 0; dst = 1; hops = [ hop Path.Leaf_l2 Path.Up 7 ] } in
  let p2 = { Path.src = 2; dst = 3; hops = [ hop Path.Leaf_l2 Path.Up 7 ] } in
  Alcotest.(check int) "load 2" 2 (Path.max_channel_load [ p1; p2 ]);
  Alcotest.(check bool) "conflict" true
    (Result.is_error (Path.one_flow_per_channel [ p1; p2 ]))

let test_tiers_independent () =
  (* Same cable id on different tiers never conflicts. *)
  let p1 = { Path.src = 0; dst = 1; hops = [ hop Path.Leaf_l2 Path.Up 7 ] } in
  let p2 = { Path.src = 2; dst = 3; hops = [ hop Path.L2_spine Path.Up 7 ] } in
  Alcotest.(check int) "load 1" 1 (Path.max_channel_load [ p1; p2 ])

let test_uses_only () =
  let alloc =
    {
      Fattree.Alloc.job = 0;
      size = 2;
      nodes = [| 0; 1 |];
      leaf_cables = [| 5 |];
      l2_cables = [| 9 |];
      bw = 1.0;
    }
  in
  let good =
    { Path.src = 0; dst = 1;
      hops = [ hop Path.Leaf_l2 Path.Up 5; hop Path.L2_spine Path.Up 9 ] }
  in
  Alcotest.(check bool) "allocated" true (Path.uses_only alloc [ good ] = Ok ());
  let bad = { Path.src = 0; dst = 1; hops = [ hop Path.Leaf_l2 Path.Up 6 ] } in
  Alcotest.(check bool) "unallocated flagged" true
    (Result.is_error (Path.uses_only alloc [ bad ]));
  (* Tier confusion: leaf cable 9 is not l2 cable 9. *)
  let tier_bad = { Path.src = 0; dst = 1; hops = [ hop Path.Leaf_l2 Path.Up 9 ] } in
  Alcotest.(check bool) "tier respected" true
    (Result.is_error (Path.uses_only alloc [ tier_bad ]))

let suite =
  [
    Alcotest.test_case "local path" `Quick test_local_path;
    Alcotest.test_case "directions are independent channels" `Quick test_channel_loads_directions_independent;
    Alcotest.test_case "channel conflicts detected" `Quick test_channel_conflict_detected;
    Alcotest.test_case "tiers independent" `Quick test_tiers_independent;
    Alcotest.test_case "uses_only per tier" `Quick test_uses_only;
  ]
