(* Tests for the workload substrate: jobs, traces, generators,
   scenarios. *)

let test_job_validation () =
  Alcotest.check_raises "size 0" (Invalid_argument "Job.v: size must be >= 1")
    (fun () -> ignore (Trace.Job.v ~id:0 ~size:0 ~runtime:1.0 ()));
  Alcotest.check_raises "runtime 0"
    (Invalid_argument "Job.v: runtime must be positive") (fun () ->
      ignore (Trace.Job.v ~id:0 ~size:1 ~runtime:0.0 ()));
  Alcotest.check_raises "negative arrival"
    (Invalid_argument "Job.v: arrival must be >= 0") (fun () ->
      ignore (Trace.Job.v ~id:0 ~size:1 ~runtime:1.0 ~arrival:(-1.0) ()))

let test_is_large () =
  Alcotest.(check bool) "100 not large" false
    (Trace.Job.is_large (Trace.Job.v ~id:0 ~size:100 ~runtime:1.0 ()));
  Alcotest.(check bool) "101 large" true
    (Trace.Job.is_large (Trace.Job.v ~id:0 ~size:101 ~runtime:1.0 ()))

let test_workload_sorted () =
  let jobs =
    [|
      Trace.Job.v ~id:0 ~size:1 ~runtime:10.0 ~arrival:5.0 ();
      Trace.Job.v ~id:1 ~size:1 ~runtime:10.0 ~arrival:1.0 ();
      Trace.Job.v ~id:2 ~size:1 ~runtime:10.0 ~arrival:1.0 ();
    |]
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:8 jobs in
  Alcotest.(check (list int)) "by arrival then id" [ 1; 2; 0 ]
    (Array.to_list (Array.map (fun (j : Trace.Job.t) -> j.id) w.jobs));
  Alcotest.(check bool) "has arrivals" true w.has_arrivals;
  let z = Trace.Workload.zero_arrivals w in
  Alcotest.(check bool) "zeroed" false z.has_arrivals

let test_workload_stats () =
  let jobs =
    [|
      Trace.Job.v ~id:0 ~size:4 ~runtime:100.0 ();
      Trace.Job.v ~id:1 ~size:9 ~runtime:10.0 ();
    |]
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:16 jobs in
  Alcotest.(check int) "max job" 9 (Trace.Workload.max_job_size w);
  Alcotest.(check (float 1e-9)) "node-seconds" 490.0 (Trace.Workload.total_node_seconds w);
  let s = Trace.Workload.summarize w in
  Alcotest.(check int) "summary jobs" 2 s.s_num_jobs;
  Alcotest.(check (float 1e-9)) "min runtime" 10.0 s.s_min_runtime

let test_scale_truncate () =
  let jobs =
    Array.init 10 (fun i ->
        Trace.Job.v ~id:i ~size:1 ~runtime:10.0 ~arrival:(float_of_int i) ())
  in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:8 jobs in
  let scaled = Trace.Workload.scale_arrivals w 0.5 in
  Alcotest.(check (float 1e-9)) "scaled" 4.5 scaled.jobs.(9).arrival;
  let cut = Trace.Workload.truncate w 3 in
  Alcotest.(check int) "truncated" 3 (Trace.Workload.num_jobs cut)

let test_synth_generator () =
  let w = Trace.Synthetic.synth ~mean_size:16 ~n_jobs:5000 ~seed:1 ~max_size:1024 in
  Alcotest.(check int) "count" 5000 (Trace.Workload.num_jobs w);
  Alcotest.(check bool) "no arrivals" false w.has_arrivals;
  Array.iter
    (fun (j : Trace.Job.t) ->
      Alcotest.(check bool) "size >= 1" true (j.size >= 1);
      Alcotest.(check bool) "runtime in range" true
        (j.runtime >= 20.0 && j.runtime <= 3000.0))
    w.jobs;
  (* Mean should be near 16 (exponential, clamped below by 1). *)
  let mean =
    Array.fold_left (fun a (j : Trace.Job.t) -> a +. float_of_int j.size) 0.0 w.jobs
    /. 5000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean size ~16 (got %.1f)" mean)
    true
    (mean > 14.0 && mean < 18.0)

let test_generators_deterministic () =
  let a = Trace.Synthetic.thunder_like ~n_jobs:100 ~seed:3 () in
  let b = Trace.Synthetic.thunder_like ~n_jobs:100 ~seed:3 () in
  Alcotest.(check bool) "same trace" true
    (Array.for_all2
       (fun (x : Trace.Job.t) (y : Trace.Job.t) ->
         x.size = y.size && x.runtime = y.runtime)
       a.jobs b.jobs);
  let c = Trace.Synthetic.thunder_like ~n_jobs:100 ~seed:4 () in
  Alcotest.(check bool) "different seeds differ" false
    (Array.for_all2
       (fun (x : Trace.Job.t) (y : Trace.Job.t) ->
         x.size = y.size && x.runtime = y.runtime)
       a.jobs c.jobs)

let test_cab_arrivals_increase () =
  let w =
    Trace.Synthetic.cab_like ~month:"T" ~n_jobs:500 ~seed:9 ~target_load:1.0
      ~arrival_scale:1.0 ()
  in
  Alcotest.(check bool) "has arrivals" true w.has_arrivals;
  let ok = ref true in
  for i = 1 to 499 do
    if w.jobs.(i).arrival < w.jobs.(i - 1).arrival then ok := false
  done;
  Alcotest.(check bool) "non-decreasing" true !ok

let test_bw_classes () =
  let w = Trace.Synthetic.synth ~mean_size:8 ~n_jobs:1000 ~seed:2 ~max_size:64 in
  let classes =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun (j : Trace.Job.t) -> j.bw_class) w.jobs))
  in
  Alcotest.(check (list (float 1e-9))) "four classes (5.4.2)"
    [ 0.125; 0.25; 0.375; 0.5 ] classes

let test_scenarios () =
  let seed = 7 in
  let small = Trace.Job.v ~id:1 ~size:4 ~runtime:100.0 () in
  let big = Trace.Job.v ~id:2 ~size:200 ~runtime:100.0 () in
  (* None: no change. *)
  Alcotest.(check (float 1e-9)) "none" 100.0
    (Trace.Scenario.isolated_runtime Trace.Scenario.No_speedup ~seed big);
  (* Fixed: only jobs > 4 nodes. *)
  Alcotest.(check (float 1e-9)) "fixed small untouched" 100.0
    (Trace.Scenario.isolated_runtime (Trace.Scenario.Fixed 10) ~seed small);
  Alcotest.(check (float 1e-6)) "fixed big" (100.0 /. 1.1)
    (Trace.Scenario.isolated_runtime (Trace.Scenario.Fixed 10) ~seed big);
  (* Random: only jobs > 64 nodes; speed-up within {0,5,15,30}%. *)
  let s = Trace.Scenario.speedup Trace.Scenario.Random ~seed big in
  Alcotest.(check bool) "random bucket" true
    (List.exists (fun x -> Float.abs (s -. x) < 1e-9) [ 0.0; 0.05; 0.15; 0.3 ]);
  Alcotest.(check (float 1e-9)) "random small" 0.0
    (Trace.Scenario.speedup Trace.Scenario.Random ~seed small);
  (* V2: within [0, 0.30], deterministic per (seed, job). *)
  let v1 = Trace.Scenario.speedup Trace.Scenario.V2 ~seed big in
  let v2 = Trace.Scenario.speedup Trace.Scenario.V2 ~seed big in
  Alcotest.(check (float 1e-12)) "V2 deterministic" v1 v2;
  Alcotest.(check bool) "V2 range" true (v1 >= 0.0 && v1 <= 0.30);
  Alcotest.(check int) "six scenarios" 6 (List.length Trace.Scenario.all)

let test_scenario_speedup_shortens () =
  let seed = 3 in
  let j = Trace.Job.v ~id:5 ~size:128 ~runtime:1000.0 () in
  List.iter
    (fun scen ->
      let iso = Trace.Scenario.isolated_runtime scen ~seed j in
      Alcotest.(check bool)
        (Trace.Scenario.name scen ^ " never lengthens")
        true (iso <= 1000.0 +. 1e-9))
    Trace.Scenario.all

let test_v2_scales_with_size () =
  (* Within a bucket, V2 speed-up grows linearly with node count; across
     many jobs the average speed-up of big jobs must exceed that of small
     ones. *)
  let seed = 11 in
  let avg size =
    let acc = ref 0.0 in
    for id = 0 to 499 do
      let j = Trace.Job.v ~id ~size ~runtime:1.0 () in
      acc := !acc +. Trace.Scenario.speedup Trace.Scenario.V2 ~seed j
    done;
    !acc /. 500.0
  in
  Alcotest.(check bool) "bigger jobs speed up more on average" true
    (avg 256 > avg 8)

let test_inflate_estimates () =
  let jobs = [| Trace.Job.v ~id:0 ~size:2 ~runtime:100.0 () |] in
  let w = Trace.Workload.create ~name:"t" ~system_nodes:8 jobs in
  let w2 = Trace.Workload.inflate_estimates w 3.0 in
  Alcotest.(check (float 1e-9)) "estimate scaled" 300.0 w2.jobs.(0).est_runtime;
  Alcotest.(check (float 1e-9)) "runtime untouched" 100.0 w2.jobs.(0).runtime;
  Alcotest.check_raises "factor < 1"
    (Invalid_argument "Workload.inflate_estimates: factor must be >= 1")
    (fun () -> ignore (Trace.Workload.inflate_estimates w 0.5))

let test_job_estimate_validation () =
  Alcotest.check_raises "estimate below runtime"
    (Invalid_argument "Job.v: est_runtime must be >= runtime") (fun () ->
      ignore (Trace.Job.v ~id:0 ~size:1 ~runtime:10.0 ~est_runtime:5.0 ()));
  let j = Trace.Job.v ~id:0 ~size:1 ~runtime:10.0 () in
  Alcotest.(check (float 1e-9)) "defaults to runtime" 10.0 j.est_runtime

let test_presets_consistent () =
  List.iter
    (fun (e : Trace.Presets.entry) ->
      let w = e.workload in
      Alcotest.(check bool)
        (w.name ^ " max job fits cluster")
        true
        (Trace.Workload.max_job_size w
        <= Fattree.Topology.num_nodes (Fattree.Topology.of_radix e.cluster_radix)))
    (Trace.Presets.all ~full:false);
  Alcotest.(check int) "nine traces" 9 (List.length (Trace.Presets.all ~full:false));
  Alcotest.(check bool) "lookup" true
    (Trace.Presets.by_name ~full:false "Thunder" <> None);
  Alcotest.(check bool) "lookup miss" true
    (Trace.Presets.by_name ~full:false "nope" = None)

let suite =
  [
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "large-job threshold" `Quick test_is_large;
    Alcotest.test_case "workload sorting" `Quick test_workload_sorted;
    Alcotest.test_case "workload statistics" `Quick test_workload_stats;
    Alcotest.test_case "scale and truncate" `Quick test_scale_truncate;
    Alcotest.test_case "synth generator ranges" `Quick test_synth_generator;
    Alcotest.test_case "generators deterministic" `Quick test_generators_deterministic;
    Alcotest.test_case "cab arrivals monotone" `Quick test_cab_arrivals_increase;
    Alcotest.test_case "bandwidth classes" `Quick test_bw_classes;
    Alcotest.test_case "speed-up scenarios" `Quick test_scenarios;
    Alcotest.test_case "speed-ups never lengthen" `Quick test_scenario_speedup_shortens;
    Alcotest.test_case "V2 scales with size" `Quick test_v2_scales_with_size;
    Alcotest.test_case "estimate inflation" `Quick test_inflate_estimates;
    Alcotest.test_case "estimate validation" `Quick test_job_estimate_validation;
    Alcotest.test_case "presets consistent" `Quick test_presets_consistent;
  ]
