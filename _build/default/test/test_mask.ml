(* Tests for the small bitmask helpers. *)

open Jigsaw_core

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Mask.popcount 0);
  Alcotest.(check int) "0b1011" 3 (Mask.popcount 0b1011);
  Alcotest.(check int) "full 14" 14 (Mask.popcount (Mask.full 14))

let test_full () =
  Alcotest.(check int) "full 0" 0 (Mask.full 0);
  Alcotest.(check int) "full 3" 0b111 (Mask.full 3)

let test_mem () =
  Alcotest.(check bool) "bit 1" true (Mask.mem 0b10 1);
  Alcotest.(check bool) "bit 0" false (Mask.mem 0b10 0)

let test_list_roundtrip () =
  Alcotest.(check (list int)) "to_list" [ 0; 2; 5 ] (Mask.to_list 0b100101);
  Alcotest.(check int) "of_list" 0b100101 (Mask.of_list [ 5; 0; 2 ]);
  Alcotest.(check (array int)) "to_array" [| 1; 3 |] (Mask.to_array 0b1010);
  Alcotest.(check int) "of_array" 0b1010 (Mask.of_array [| 3; 1 |])

let test_take_lowest () =
  Alcotest.(check int) "take 2 of 0b1101" 0b0101 (Mask.take_lowest 0b1101 2);
  Alcotest.(check int) "take 0" 0 (Mask.take_lowest 0b111 0);
  Alcotest.check_raises "too few"
    (Invalid_argument "Mask.take_lowest: not enough bits") (fun () ->
      ignore (Mask.take_lowest 0b1 2))

let test_take_preferring () =
  (* take 3 bits of {0,1,2,4,6} preferring {4,6}: must include 4 and 6. *)
  let r = Mask.take_preferring 0b1010111 ~prefer:0b1010000 3 in
  Alcotest.(check int) "popcount" 3 (Mask.popcount r);
  Alcotest.(check bool) "has 4" true (Mask.mem r 4);
  Alcotest.(check bool) "has 6" true (Mask.mem r 6);
  (* preference exceeds k: lowest k preferred bits *)
  let r2 = Mask.take_preferring 0b111 ~prefer:0b111 2 in
  Alcotest.(check int) "prefers low" 0b011 r2;
  (* no preferred bits available *)
  let r3 = Mask.take_preferring 0b1100 ~prefer:0b01 1 in
  Alcotest.(check int) "falls back" 0b0100 r3

let test_subset () =
  Alcotest.(check bool) "subset" true (Mask.subset 0b0101 ~of_:0b1101);
  Alcotest.(check bool) "not subset" false (Mask.subset 0b0011 ~of_:0b0001);
  Alcotest.(check bool) "empty subset" true (Mask.subset 0 ~of_:0)

let prop_take_lowest_is_subset =
  QCheck2.Test.make ~name:"take_lowest returns k-subset" ~count:300
    QCheck2.Gen.(pair (int_range 0 16383) (int_range 0 14))
    (fun (mask, k) ->
      QCheck2.assume (Mask.popcount mask >= k);
      let r = Mask.take_lowest mask k in
      Mask.popcount r = k && Mask.subset r ~of_:mask)

let prop_take_preferring_takes_preferred =
  QCheck2.Test.make ~name:"take_preferring maximizes preferred overlap" ~count:300
    QCheck2.Gen.(triple (int_range 0 16383) (int_range 0 16383) (int_range 0 14))
    (fun (mask, prefer, k) ->
      QCheck2.assume (Mask.popcount mask >= k);
      let r = Mask.take_preferring mask ~prefer k in
      let want = min k (Mask.popcount (mask land prefer)) in
      Mask.popcount r = k
      && Mask.subset r ~of_:mask
      && Mask.popcount (r land prefer) = want)

let suite =
  [
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "full" `Quick test_full;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "list roundtrips" `Quick test_list_roundtrip;
    Alcotest.test_case "take_lowest" `Quick test_take_lowest;
    Alcotest.test_case "take_preferring" `Quick test_take_preferring;
    Alcotest.test_case "subset" `Quick test_subset;
    QCheck_alcotest.to_alcotest prop_take_lowest_is_subset;
    QCheck_alcotest.to_alcotest prop_take_preferring_takes_preferred;
  ]
