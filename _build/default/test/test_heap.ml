(* Unit and property tests for Sim.Heap. *)

open Sim

let test_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek_min h);
  Alcotest.(check (option int)) "pop" None (Heap.pop_min h)

let test_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_min_exn"
    (Invalid_argument "Heap.pop_min_exn: empty heap") (fun () ->
      ignore (Heap.pop_min_exn h))

let test_ordering () =
  let h = Heap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int))
    "sorted drain"
    [ 1; 2; 3; 5; 7; 8; 9 ]
    (Heap.to_sorted_list h);
  (* to_sorted_list must not consume the heap *)
  Alcotest.(check int) "length intact" 7 (Heap.length h)

let test_duplicates () =
  let h = Heap.of_list ~cmp:compare [ 2; 2; 1; 1; 3 ] in
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 3 ] (Heap.to_sorted_list h)

let test_custom_order () =
  let h = Heap.of_list ~cmp:(fun a b -> compare b a) [ 1; 5; 3 ] in
  Alcotest.(check (option int)) "max-heap top" (Some 5) (Heap.pop_min h)

let test_clear () =
  let h = Heap.of_list ~cmp:compare [ 1; 2; 3 ] in
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let test_iter_unordered () =
  let h = Heap.of_list ~cmp:compare [ 4; 2; 6 ] in
  let sum = ref 0 in
  Heap.iter_unordered h ~f:(fun x -> sum := !sum + x);
  Alcotest.(check int) "sum" 12 !sum

let test_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.add h 5;
  Heap.add h 1;
  Alcotest.(check (option int)) "min 1" (Some 1) (Heap.pop_min h);
  Heap.add h 0;
  Heap.add h 7;
  Alcotest.(check (option int)) "min 0" (Some 0) (Heap.pop_min h);
  Alcotest.(check (option int)) "min 5" (Some 5) (Heap.pop_min h);
  Alcotest.(check (option int)) "min 7" (Some 7) (Heap.pop_min h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains any int list sorted" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_size =
  QCheck2.Test.make ~name:"heap length tracks adds and pops" ~count:200
    QCheck2.Gen.(list small_int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      let n = List.length xs in
      let popped = ref 0 in
      while Heap.pop_min h <> None do
        incr popped
      done;
      !popped = n && Heap.is_empty h)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_min_exn on empty" `Quick test_pop_exn_empty;
    Alcotest.test_case "drains in order" `Quick test_ordering;
    Alcotest.test_case "keeps duplicates" `Quick test_duplicates;
    Alcotest.test_case "custom comparator" `Quick test_custom_order;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter_unordered visits all" `Quick test_iter_unordered;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_size;
  ]
