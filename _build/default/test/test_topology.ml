(* Tests for the fat-tree topology substrate. *)

open Fattree

let t16 = Topology.of_radix 16

let test_radix_sizes () =
  (* The paper's four clusters (section 5.1). *)
  List.iter
    (fun (radix, nodes) ->
      let t = Topology.of_radix radix in
      Alcotest.(check int)
        (Printf.sprintf "radix %d" radix)
        nodes (Topology.num_nodes t))
    [ (16, 1024); (18, 1458); (22, 2662); (28, 5488) ]

let test_structure_counts () =
  Alcotest.(check int) "pods" 16 (Topology.pods t16);
  Alcotest.(check int) "leaves/pod" 8 (Topology.leaves_per_pod t16);
  Alcotest.(check int) "nodes/leaf" 8 (Topology.nodes_per_leaf t16);
  Alcotest.(check int) "l2/pod" 8 (Topology.l2_per_pod t16);
  Alcotest.(check int) "spine groups" 8 (Topology.spine_groups t16);
  Alcotest.(check int) "spines/group" 8 (Topology.spines_per_group t16);
  Alcotest.(check int) "num leaves" 128 (Topology.num_leaves t16);
  Alcotest.(check int) "num l2" 128 (Topology.num_l2 t16);
  Alcotest.(check int) "num spines" 64 (Topology.num_spines t16);
  Alcotest.(check int) "leaf-l2 cables" 1024 (Topology.num_leaf_l2_cables t16);
  Alcotest.(check int) "l2-spine cables" 1024 (Topology.num_l2_spine_cables t16)

let test_radix_detection () =
  Alcotest.(check (option int)) "radix" (Some 16) (Topology.radix t16);
  let odd = Topology.create ~nodes_per_leaf:2 ~leaves_per_pod:3 ~pods:2 in
  Alcotest.(check (option int)) "custom" None (Topology.radix odd)

let test_invalid_params () =
  Alcotest.check_raises "odd radix"
    (Invalid_argument "Topology.of_radix: radix must be even and >= 2")
    (fun () -> ignore (Topology.of_radix 7));
  Alcotest.check_raises "zero param"
    (Invalid_argument "Topology.create: parameters must be >= 1") (fun () ->
      ignore (Topology.create ~nodes_per_leaf:0 ~leaves_per_pod:1 ~pods:1))

let test_node_coords_roundtrip () =
  let t = Topology.create ~nodes_per_leaf:3 ~leaves_per_pod:4 ~pods:5 in
  for n = 0 to Topology.num_nodes t - 1 do
    let pod = Topology.node_pod t n in
    let leaf_in_pod = Topology.leaf_index_in_pod t (Topology.node_leaf t n) in
    let slot = Topology.node_slot t n in
    Alcotest.(check int) "roundtrip"
      n
      (Topology.node_of_coords t ~pod ~leaf:leaf_in_pod ~slot)
  done

let test_leaf_node_relation () =
  let t = t16 in
  for l = 0 to Topology.num_leaves t - 1 do
    let first = Topology.leaf_first_node t l in
    for s = 0 to Topology.m1 t - 1 do
      Alcotest.(check int) "node on leaf" l (Topology.node_leaf t (first + s))
    done
  done

let test_cable_roundtrips () =
  let t = t16 in
  for c = 0 to Topology.num_leaf_l2_cables t - 1 do
    let leaf = Topology.leaf_l2_cable_leaf t c in
    let idx = Topology.leaf_l2_cable_l2_index t c in
    Alcotest.(check int) "leaf cable" c (Topology.leaf_l2_cable t ~leaf ~l2_index:idx)
  done;
  for c = 0 to Topology.num_l2_spine_cables t - 1 do
    let l2 = Topology.l2_spine_cable_l2 t c in
    let idx = Topology.l2_spine_cable_spine_index t c in
    Alcotest.(check int) "l2 cable" c (Topology.l2_spine_cable t ~l2 ~spine_index:idx)
  done

let test_spine_wiring () =
  let t = t16 in
  (* Spine group structure: the cable from L2 switch (pod p, index i) at
     spine index j reaches spine (group i, index j); that spine reaches
     back to the same L2 via l2_of_spine_pod. *)
  for pod = 0 to Topology.pods t - 1 do
    for i = 0 to Topology.l2_per_pod t - 1 do
      let l2 = Topology.l2_of_coords t ~pod ~index:i in
      for j = 0 to Topology.spines_per_group t - 1 do
        let cable = Topology.l2_spine_cable t ~l2 ~spine_index:j in
        let spine = Topology.spine_of_l2_cable t cable in
        Alcotest.(check int) "spine group" i (Topology.spine_group t spine);
        Alcotest.(check int) "spine index" j (Topology.spine_index_in_group t spine);
        Alcotest.(check int) "back to l2" l2 (Topology.l2_of_spine_pod t ~spine ~pod)
      done
    done
  done

let test_bounds_checked () =
  Alcotest.check_raises "node oob"
    (Invalid_argument "Topology: node 1024 out of range [0, 1024)") (fun () ->
      ignore (Topology.node_pod t16 1024))

let test_validate () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Topology.validate t16))

let test_pp () =
  Alcotest.(check string)
    "pp radix tree"
    "fat-tree(radix=16: 1024 nodes, 16 pods, 8 leaves/pod, 8 nodes/leaf)"
    (Topology.to_string t16)

let prop_every_node_has_unique_coords =
  QCheck2.Test.make ~name:"node ids are dense and unique over coords" ~count:50
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (m1, m2, m3) ->
      let t = Topology.create ~nodes_per_leaf:m1 ~leaves_per_pod:m2 ~pods:m3 in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      for pod = 0 to m3 - 1 do
        for leaf = 0 to m2 - 1 do
          for slot = 0 to m1 - 1 do
            let n = Topology.node_of_coords t ~pod ~leaf ~slot in
            if Hashtbl.mem seen n || n < 0 || n >= Topology.num_nodes t then
              ok := false;
            Hashtbl.add seen n ()
          done
        done
      done;
      !ok && Hashtbl.length seen = Topology.num_nodes t)

let suite =
  [
    Alcotest.test_case "paper cluster sizes" `Quick test_radix_sizes;
    Alcotest.test_case "structure counts" `Quick test_structure_counts;
    Alcotest.test_case "radix detection" `Quick test_radix_detection;
    Alcotest.test_case "invalid parameters" `Quick test_invalid_params;
    Alcotest.test_case "node coords roundtrip" `Quick test_node_coords_roundtrip;
    Alcotest.test_case "leaf/node relation" `Quick test_leaf_node_relation;
    Alcotest.test_case "cable id roundtrips" `Quick test_cable_roundtrips;
    Alcotest.test_case "spine wiring" `Quick test_spine_wiring;
    Alcotest.test_case "bounds checking" `Quick test_bounds_checked;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_every_node_has_unique_coords;
  ]
