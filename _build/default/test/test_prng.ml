(* Tests for Sim.Prng: determinism, ranges, and rough distribution
   shape. *)

open Sim

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "split differs" true (xa <> xb)

let test_copy () =
  let a = Prng.create ~seed:3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_int_bounds () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int p ~bound:7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p ~bound:0))

let test_int_in () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 500 do
    let x = Prng.int_in p ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (x >= -3 && x <= 4)
  done

let test_int_covers_range () =
  let p = Prng.create ~seed:11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int p ~bound:5) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let p = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Prng.float p ~bound:2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_exponential_mean () =
  let p = Prng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential p ~mean:16.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~16 (got %.2f)" mean)
    true
    (mean > 15.0 && mean < 17.0)

let test_normal_moments () =
  let p = Prng.create ~seed:17 in
  let n = 20_000 in
  let acc = Stats.Acc.create () in
  for _ = 1 to n do
    Stats.Acc.add acc (Prng.normal p ~mu:5.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean ~5" true (Float.abs (Stats.Acc.mean acc -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev ~2" true (Float.abs (Stats.Acc.stddev acc -. 2.0) < 0.1)

let test_permutation () =
  let p = Prng.create ~seed:19 in
  let perm = Prng.permutation p 50 in
  let sorted = Array.copy perm in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_choose () =
  let p = Prng.create ~seed:23 in
  for _ = 1 to 100 do
    let x = Prng.choose p [| 1; 2; 3 |] in
    Alcotest.(check bool) "element" true (List.mem x [ 1; 2; 3 ])
  done

let test_shuffle_preserves_elements () =
  let p = Prng.create ~seed:29 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in inclusive range" `Quick test_int_in;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "permutation valid" `Quick test_permutation;
    Alcotest.test_case "choose picks elements" `Quick test_choose;
    Alcotest.test_case "shuffle preserves elements" `Quick test_shuffle_preserves_elements;
  ]
