(* Tests for the formal-conditions checker: hand-built legal and illegal
   partitions, mirroring the violations of the paper's Figure 1. *)

open Fattree
open Jigsaw_core

let topo = Topology.of_radix 8 (* m1 = m2 = 4, m3 = 8 *)

let leaf_alloc ~pod ~leaf ~slots ~l2 =
  let gleaf = Topology.leaf_of_coords topo ~pod ~leaf in
  let first = Topology.leaf_first_node topo gleaf in
  {
    Partition.leaf = gleaf;
    nodes = Array.map (fun s -> first + s) (Array.of_list slots);
    l2_indices = Array.of_list l2;
  }

(* A legal two-level partition: 2 full leaves of 2 nodes + remainder leaf
   of 1 node, S = {0,1}, Sr = {0}. *)
let legal_two_level () =
  {
    Partition.job = 1;
    size = 5;
    full_trees =
      [|
        {
          Partition.pod = 0;
          full_leaves =
            [|
              leaf_alloc ~pod:0 ~leaf:0 ~slots:[ 0; 1 ] ~l2:[ 0; 1 ];
              leaf_alloc ~pod:0 ~leaf:1 ~slots:[ 0; 1 ] ~l2:[ 0; 1 ];
            |];
          rem_leaf = Some (leaf_alloc ~pod:0 ~leaf:2 ~slots:[ 0 ] ~l2:[ 0 ]);
          spine_sets = [||];
        };
      |];
    rem_tree = None;
  }

(* A legal three-level partition: 2 full trees of 1 full leaf (4 nodes),
   remainder tree with a remainder leaf of 2 nodes.  S = {0,1,2,3},
   Sr = {0,1}; spine sets sized to downlinks. *)
let legal_three_level () =
  let full_tree pod =
    {
      Partition.pod;
      full_leaves = [| leaf_alloc ~pod ~leaf:0 ~slots:[ 0; 1; 2; 3 ] ~l2:[ 0; 1; 2; 3 ] |];
      rem_leaf = None;
      spine_sets = [| (0, [| 0 |]); (1, [| 0 |]); (2, [| 0 |]); (3, [| 0 |]) |];
    }
  in
  {
    Partition.job = 2;
    size = 10;
    full_trees = [| full_tree 0; full_tree 1 |];
    rem_tree =
      Some
        {
          Partition.pod = 2;
          full_leaves = [||];
          rem_leaf = Some (leaf_alloc ~pod:2 ~leaf:0 ~slots:[ 0; 1 ] ~l2:[ 0; 1 ]);
          spine_sets = [| (0, [| 0 |]); (1, [| 0 |]) |];
        };
  }

let check_ok name p =
  match Conditions.check topo p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s rejected: %s" name m

let check_rejected name p =
  match Conditions.check topo p with
  | Ok () -> Alcotest.failf "%s wrongly accepted" name
  | Error _ -> ()

let test_legal_two_level () = check_ok "legal 2L" (legal_two_level ())
let test_legal_three_level () = check_ok "legal 3L" (legal_three_level ())

let test_unbalanced_links_rejected () =
  (* Figure 1 (left): more nodes than uplinks tapers the tree. *)
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad = { tree.full_leaves.(0) with l2_indices = [| 0 |] } in
  let p = { p with full_trees = [| { tree with full_leaves = [| bad; tree.full_leaves.(1) |] } |] } in
  check_rejected "unbalanced links" p

let test_uneven_leaves_rejected () =
  (* Figure 1 (center): arbitrary node counts per leaf. *)
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad = leaf_alloc ~pod:0 ~leaf:0 ~slots:[ 0; 1; 2 ] ~l2:[ 0; 1; 2 ] in
  let p =
    { p with
      size = 6;
      full_trees = [| { tree with full_leaves = [| bad; tree.full_leaves.(1) |] } |] }
  in
  check_rejected "uneven full leaves" p

let test_mismatched_l2_sets_rejected () =
  (* Figure 1 (right): balanced but inconsistent uplink choices. *)
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad = leaf_alloc ~pod:0 ~leaf:1 ~slots:[ 0; 1 ] ~l2:[ 2; 3 ] in
  let p = { p with full_trees = [| { tree with full_leaves = [| tree.full_leaves.(0); bad |] } |] } in
  check_rejected "mismatched L2 sets (condition 4)" p

let test_rem_leaf_not_subset_rejected () =
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad_rem = leaf_alloc ~pod:0 ~leaf:2 ~slots:[ 0 ] ~l2:[ 3 ] in
  let p = { p with full_trees = [| { tree with rem_leaf = Some bad_rem } |] } in
  check_rejected "Sr not subset of S" p

let test_rem_leaf_too_big_rejected () =
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad_rem = leaf_alloc ~pod:0 ~leaf:2 ~slots:[ 0; 1 ] ~l2:[ 0; 1 ] in
  let p = { p with size = 6; full_trees = [| { tree with rem_leaf = Some bad_rem } |] } in
  check_rejected "n_rl = n_l" p

let test_unequal_trees_rejected () =
  (* Condition 1: full trees must carry equal node counts. *)
  let p = legal_three_level () in
  let small_tree =
    {
      Partition.pod = 1;
      full_leaves = [| leaf_alloc ~pod:1 ~leaf:0 ~slots:[ 0; 1 ] ~l2:[ 0; 1 ] |];
      rem_leaf = None;
      spine_sets = [| (0, [| 0 |]); (1, [| 0 |]) |];
    }
  in
  let p = { p with full_trees = [| p.full_trees.(0); small_tree |] } in
  check_rejected "unequal full trees" p

let test_spine_sets_differ_rejected () =
  (* Condition 6: S*_i must match across full trees. *)
  let p = legal_three_level () in
  let tree1 = p.full_trees.(1) in
  let bad =
    { tree1 with
      spine_sets = [| (0, [| 1 |]); (1, [| 0 |]); (2, [| 0 |]); (3, [| 0 |]) |] }
  in
  let p = { p with full_trees = [| p.full_trees.(0); bad |] } in
  check_rejected "inconsistent spine sets" p

let test_rem_spines_not_subset_rejected () =
  let p = legal_three_level () in
  match p.rem_tree with
  | None -> Alcotest.fail "fixture"
  | Some rt ->
      let bad = { rt with spine_sets = [| (0, [| 1 |]); (1, [| 0 |]) |] } in
      check_rejected "S*r not subset" { p with rem_tree = Some bad }

let test_spine_size_mismatch_rejected () =
  (* |S*_i| must equal l_t (downlinks). *)
  let p = legal_three_level () in
  let tree0 = p.full_trees.(0) in
  let bad =
    { tree0 with
      spine_sets = [| (0, [| 0; 1 |]); (1, [| 0 |]); (2, [| 0 |]); (3, [| 0 |]) |] }
  in
  check_rejected "oversized spine set" { p with full_trees = [| bad; p.full_trees.(1) |] }

let test_rem_leaf_in_full_tree_rejected () =
  (* Condition 3: the remainder leaf must live in the remainder tree. *)
  let p = legal_three_level () in
  let tree0 = p.full_trees.(0) in
  let bad =
    { tree0 with rem_leaf = Some (leaf_alloc ~pod:0 ~leaf:1 ~slots:[ 0 ] ~l2:[ 0 ]) }
  in
  check_rejected "remainder leaf in full tree"
    { p with size = 11; full_trees = [| bad; p.full_trees.(1) |] }

let test_two_level_with_spines_is_three_level_checked () =
  (* A single-pod partition carrying spine sets is not minimal; the
     checker must treat it as three-level and flag the missing structure
     or inconsistency rather than ignore the cables. *)
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let with_spines = { tree with spine_sets = [| (0, [| 0; 1 |]) |] } in
  check_rejected "single pod with spine cables" { p with full_trees = [| with_spines |] }

let test_exact_size_enforced () =
  let p = { (legal_two_level ()) with size = 4 } in
  check_rejected "padding rejected by default" p;
  Alcotest.(check bool) "allowed when requested" true
    (Result.is_ok (Conditions.check ~require_exact_size:false topo p))

let test_duplicate_pod_rejected () =
  let p = legal_three_level () in
  let dup = { p.full_trees.(1) with pod = 0 } in
  check_rejected "duplicate pod" { p with full_trees = [| p.full_trees.(0); dup |] }

let test_foreign_node_rejected () =
  let p = legal_two_level () in
  let tree = p.full_trees.(0) in
  let bad = { tree.full_leaves.(0) with nodes = [| 0; 999 |] } in
  check_rejected "node off leaf"
    { p with full_trees = [| { tree with full_leaves = [| bad; tree.full_leaves.(1) |] } |] }

let suite =
  [
    Alcotest.test_case "legal two-level accepted" `Quick test_legal_two_level;
    Alcotest.test_case "legal three-level accepted" `Quick test_legal_three_level;
    Alcotest.test_case "unbalanced links rejected (Fig 1 left)" `Quick test_unbalanced_links_rejected;
    Alcotest.test_case "uneven leaves rejected (Fig 1 center)" `Quick test_uneven_leaves_rejected;
    Alcotest.test_case "mismatched L2 sets rejected (Fig 1 right)" `Quick test_mismatched_l2_sets_rejected;
    Alcotest.test_case "Sr not subset rejected" `Quick test_rem_leaf_not_subset_rejected;
    Alcotest.test_case "oversized remainder leaf rejected" `Quick test_rem_leaf_too_big_rejected;
    Alcotest.test_case "unequal trees rejected (cond 1)" `Quick test_unequal_trees_rejected;
    Alcotest.test_case "inconsistent spine sets rejected (cond 6)" `Quick test_spine_sets_differ_rejected;
    Alcotest.test_case "S*r not subset rejected" `Quick test_rem_spines_not_subset_rejected;
    Alcotest.test_case "spine size mismatch rejected" `Quick test_spine_size_mismatch_rejected;
    Alcotest.test_case "remainder leaf in full tree rejected (cond 3)" `Quick test_rem_leaf_in_full_tree_rejected;
    Alcotest.test_case "single pod must not hold spines" `Quick test_two_level_with_spines_is_three_level_checked;
    Alcotest.test_case "N = Nr enforced" `Quick test_exact_size_enforced;
    Alcotest.test_case "duplicate pod rejected" `Quick test_duplicate_pod_rejected;
    Alcotest.test_case "foreign node rejected" `Quick test_foreign_node_rejected;
  ]
