(* Tests for the discrete-event engine. *)

open Sim

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:5.0 (fun _ -> log := 5 :: !log);
  Engine.schedule e ~time:1.0 (fun _ -> log := 1 :: !log);
  Engine.schedule e ~time:3.0 (fun _ -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "in time order" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 5.0 (Engine.now e)

let test_priority_ties () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:2.0 ~priority:1 (fun _ -> log := "arrival" :: !log);
  Engine.schedule e ~time:2.0 ~priority:0 (fun _ -> log := "completion" :: !log);
  Engine.schedule e ~time:2.0 ~priority:2 (fun _ -> log := "pass" :: !log);
  Engine.run e;
  Alcotest.(check (list string))
    "priority order at equal time"
    [ "completion"; "arrival"; "pass" ]
    (List.rev !log)

let test_fifo_within_priority () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~time:1.0 (fun _ -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_handlers_schedule_more () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick eng =
    incr count;
    if !count < 10 then Engine.schedule_after eng ~delay:1.0 tick
  in
  Engine.schedule e ~time:0.0 tick;
  Engine.run e;
  Alcotest.(check int) "chained events" 10 !count;
  Alcotest.(check (float 1e-9)) "clock" 9.0 (Engine.now e)

let test_no_past_scheduling () =
  let e = Engine.create () in
  Engine.schedule e ~time:5.0 (fun eng ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule: time 3 is before now (5)")
        (fun () -> Engine.schedule eng ~time:3.0 (fun _ -> ())));
  Engine.run e

let test_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun t -> Engine.schedule e ~time:t (fun _ -> log := t :: !log))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run_until e 2.5;
  Alcotest.(check (list (float 1e-9))) "only <= horizon" [ 1.0; 2.0 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 2.5 (Engine.now e);
  Alcotest.(check int) "rest pending" 2 (Engine.pending e)

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule e ~time:1.0 (fun _ -> ());
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

let prop_random_schedule_ordered =
  QCheck2.Test.make ~name:"random event times execute sorted" ~count:150
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
    (fun times ->
      let e = Engine.create () in
      let log = ref [] in
      List.iter
        (fun t -> Engine.schedule e ~time:t (fun _ -> log := t :: !log))
        times;
      Engine.run e;
      List.rev !log = List.stable_sort compare times)

let suite =
  [
    Alcotest.test_case "events run in time order" `Quick test_time_order;
    QCheck_alcotest.to_alcotest prop_random_schedule_ordered;
    Alcotest.test_case "priorities break ties" `Quick test_priority_ties;
    Alcotest.test_case "FIFO within a priority" `Quick test_fifo_within_priority;
    Alcotest.test_case "handlers schedule more events" `Quick test_handlers_schedule_more;
    Alcotest.test_case "scheduling in the past rejected" `Quick test_no_past_scheduling;
    Alcotest.test_case "run_until stops at horizon" `Quick test_run_until;
    Alcotest.test_case "step" `Quick test_step;
  ]
