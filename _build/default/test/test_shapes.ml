(* Tests for allocation-shape enumeration. *)

open Fattree
open Jigsaw_core

let t8 = Topology.of_radix 8 (* m1 = m2 = 4, m3 = 8 *)

let test_two_level_exact_decomposition () =
  List.iter
    (fun size ->
      List.iter
        (fun (s : Shapes.two_level) ->
          Alcotest.(check int)
            (Printf.sprintf "size %d: l_t*n_l + n_rl" size)
            size
            ((s.l_t * s.n_l) + s.n_rl);
          Alcotest.(check bool) "n_rl < n_l" true (s.n_rl < s.n_l);
          Alcotest.(check bool) "fits pod leaves" true
            (s.l_t + (if s.n_rl > 0 then 1 else 0) <= Topology.m2 t8);
          Alcotest.(check bool) "n_l within leaf" true (s.n_l <= Topology.m1 t8))
        (Shapes.two_level t8 ~size))
    [ 1; 2; 3; 4; 5; 7; 8; 11; 13; 16 ]

let test_two_level_dense_first () =
  match Shapes.two_level t8 ~size:7 with
  | first :: _ -> Alcotest.(check int) "largest n_l first" 4 first.n_l
  | [] -> Alcotest.fail "no shapes for size 7"

let test_two_level_bounds () =
  Alcotest.(check int) "size 0" 0 (List.length (Shapes.two_level t8 ~size:0));
  (* pod capacity is 16; size 17 has no single-pod shape *)
  Alcotest.(check int) "size 17" 0 (List.length (Shapes.two_level t8 ~size:17));
  (* exactly pod-sized: one shape, 4 full leaves *)
  (match Shapes.two_level t8 ~size:16 with
  | [ s ] ->
      Alcotest.(check int) "n_l" 4 s.n_l;
      Alcotest.(check int) "l_t" 4 s.l_t;
      Alcotest.(check int) "n_rl" 0 s.n_rl
  | l -> Alcotest.failf "expected 1 shape, got %d" (List.length l))

let test_three_level_exact_decomposition () =
  List.iter
    (fun size ->
      List.iter
        (fun (s : Shapes.three_level) ->
          let n_t = s.l_t3 * s.n_l3 in
          Alcotest.(check int)
            (Printf.sprintf "size %d: t*n_t + n_rt" size)
            size
            ((s.t * n_t) + s.n_rt);
          Alcotest.(check bool) "n_rt < n_t" true (s.n_rt < n_t);
          Alcotest.(check int) "n_rt decomposition" s.n_rt
            ((s.l_rt * s.n_l3) + s.n_rl3);
          Alcotest.(check bool) "pods fit" true
            (s.t + (if s.n_rt > 0 then 1 else 0) <= Topology.m3 t8))
        (Shapes.three_level t8 ~size ~n_l:4))
    [ 17; 20; 32; 33; 64; 100; 128 ]

let test_three_level_skips_single_pod () =
  (* size 16 with n_l=4 would be t=1, n_rt=0 — a two-level shape. *)
  List.iter
    (fun (s : Shapes.three_level) ->
      Alcotest.(check bool) "spans > 1 pod" true
        (s.t + (if s.n_rt > 0 then 1 else 0) >= 2))
    (Shapes.three_level t8 ~size:16 ~n_l:4)

let test_three_level_all_covers_nl () =
  let shapes = Shapes.three_level_all t8 ~size:30 in
  let nls = List.sort_uniq compare (List.map (fun s -> s.Shapes.n_l3) shapes) in
  Alcotest.(check (list int)) "all n_l present" [ 1; 2; 3; 4 ] nls;
  (* dense first: the first shape has the largest n_l *)
  match shapes with
  | first :: _ -> Alcotest.(check int) "first n_l" 4 first.n_l3
  | [] -> Alcotest.fail "no shapes"

let test_whole_machine () =
  let n = Topology.num_nodes t8 in
  let shapes = Shapes.three_level t8 ~size:n ~n_l:4 in
  Alcotest.(check bool) "whole machine has a shape" true
    (List.exists
       (fun (s : Shapes.three_level) -> s.t = 8 && s.l_t3 = 4 && s.n_rt = 0)
       shapes)

let prop_two_level_complete =
  (* Every shape with a given n_l is enumerated exactly once. *)
  QCheck2.Test.make ~name:"two-level shapes unique per n_l" ~count:100
    QCheck2.Gen.(int_range 1 16)
    (fun size ->
      let shapes = Shapes.two_level t8 ~size in
      let nls = List.map (fun s -> s.Shapes.n_l) shapes in
      List.length (List.sort_uniq compare nls) = List.length nls)

let suite =
  [
    Alcotest.test_case "two-level decompositions" `Quick test_two_level_exact_decomposition;
    Alcotest.test_case "two-level dense first" `Quick test_two_level_dense_first;
    Alcotest.test_case "two-level bounds" `Quick test_two_level_bounds;
    Alcotest.test_case "three-level decompositions" `Quick test_three_level_exact_decomposition;
    Alcotest.test_case "three-level skips single pod" `Quick test_three_level_skips_single_pod;
    Alcotest.test_case "three_level_all covers n_l" `Quick test_three_level_all_covers_nl;
    Alcotest.test_case "whole machine shape" `Quick test_whole_machine;
    QCheck_alcotest.to_alcotest prop_two_level_complete;
  ]
