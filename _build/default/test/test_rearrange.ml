(* Tests for the constructive rearrangeable-non-blocking router — the
   executable form of the paper's Theorems 5 and 6. *)

open Fattree
open Jigsaw_core
open Routing

let route_ok topo p perm =
  match Rearrange.route_and_verify topo p ~perm with
  | Ok paths -> paths
  | Error m -> Alcotest.failf "routing failed: %s" m

let alloc_and_claim topo st ~job ~size =
  match Jigsaw.get_allocation st ~job ~size with
  | None -> Alcotest.failf "no allocation for size %d" size
  | Some p ->
      State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
      p

let test_identity_permutation () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:10 in
  let n = Partition.node_count p in
  let paths = route_ok topo p (Array.init n Fun.id) in
  Alcotest.(check int) "one path per flow" n (List.length paths)

let test_shift_permutations () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:23 in
  let n = Partition.node_count p in
  for shift = 0 to n - 1 do
    ignore (route_ok topo p (Rearrange.demo_permutation ~n ~shift))
  done

let test_full_machine_is_rearrangeable () =
  (* Theorem 5: the full tree itself. *)
  let topo = Topology.of_radix 4 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:(Topology.num_nodes topo) in
  let n = Topology.num_nodes topo in
  let prng = Sim.Prng.create ~seed:5 in
  for _ = 1 to 30 do
    ignore (route_ok topo p (Sim.Prng.permutation prng n))
  done

let test_rejects_bad_perm () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:4 in
  (match Rearrange.route_permutation topo p ~perm:[| 0; 0; 1; 2 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-permutation accepted");
  match Rearrange.route_permutation topo p ~perm:[| 0; 1 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong-length permutation accepted"

let test_rejects_illegal_partition () =
  let topo = Topology.of_radix 8 in
  (* Hand-build the Figure-1-left violation: 2 nodes, 1 uplink. *)
  let p =
    {
      Partition.job = 0;
      size = 2;
      full_trees =
        [|
          {
            Partition.pod = 0;
            full_leaves =
              [| { Partition.leaf = 0; nodes = [| 0; 1 |]; l2_indices = [| 0 |] } |];
            rem_leaf = None;
            spine_sets = [||];
          };
        |];
      rem_tree = None;
    }
  in
  match Rearrange.route_permutation topo p ~perm:[| 1; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "illegal partition accepted"

let test_paths_have_node_endpoints () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:9 in
  let nodes = Partition.nodes p in
  let n = Array.length nodes in
  let perm = Rearrange.demo_permutation ~n ~shift:3 in
  let paths = route_ok topo p perm in
  (* Every (src, dst) pair of the permutation appears exactly once. *)
  let expect =
    List.sort compare
      (Array.to_list (Array.mapi (fun k d -> (nodes.(k), nodes.(d))) perm))
  in
  let got =
    List.sort compare (List.map (fun (pa : Path.t) -> (pa.src, pa.dst)) paths)
  in
  Alcotest.(check (list (pair int int))) "flows" expect got

(* The central property: any permutation over any Jigsaw partition routes
   with one flow per channel on allocated cables only. *)
let prop_jigsaw_partitions_rearrangeable =
  QCheck2.Test.make
    ~name:"Jigsaw partitions are rearrangeable non-blocking (Thm 6)" ~count:40
    QCheck2.Gen.(pair (oneofl [ 4; 6; 8 ]) (int_range 0 100_000))
    (fun (radix, seed) ->
      let topo = Topology.of_radix radix in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let ok = ref true in
      for job = 0 to 10 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 2) in
        match Jigsaw.get_allocation st ~job ~size with
        | None -> ()
        | Some p ->
            State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
            let n = Partition.node_count p in
            for _ = 1 to 3 do
              let perm = Sim.Prng.permutation prng n in
              match Rearrange.route_and_verify topo p ~perm with
              | Ok _ -> ()
              | Error _ -> ok := false
            done
      done;
      !ok)

(* Same for the least-constrained search (any n_l), which exercises
   partitions Jigsaw itself never produces. *)
let prop_lc_partitions_rearrangeable =
  QCheck2.Test.make
    ~name:"LC partitions are rearrangeable non-blocking" ~count:25
    QCheck2.Gen.(pair (oneofl [ 4; 6 ]) (int_range 0 100_000))
    (fun (radix, seed) ->
      let topo = Topology.of_radix radix in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let ok = ref true in
      for job = 0 to 8 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 2) in
        match Least_constrained.get_allocation st ~job ~size with
        | None -> ()
        | Some p ->
            State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
            let n = Partition.node_count p in
            let perm = Sim.Prng.permutation prng n in
            (match Rearrange.route_and_verify topo p ~perm with
            | Ok _ -> ()
            | Error _ -> ok := false)
      done;
      !ok)

(* LaaS's padded partitions must also route (they satisfy the conditions
   modulo N = Nr). *)
let prop_laas_partitions_rearrangeable =
  QCheck2.Test.make ~name:"LaaS partitions are rearrangeable non-blocking"
    ~count:25
    QCheck2.Gen.(pair (oneofl [ 4; 6; 8 ]) (int_range 0 100_000))
    (fun (radix, seed) ->
      let topo = Topology.of_radix radix in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let ok = ref true in
      for job = 0 to 8 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 2) in
        match Baselines.Laas.get_allocation st ~job ~size with
        | None -> ()
        | Some p ->
            State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
            let n = Partition.node_count p in
            let perm = Sim.Prng.permutation prng n in
            (match Rearrange.route_and_verify topo p ~perm with
            | Ok _ -> ()
            | Error _ -> ok := false)
      done;
      !ok)

(* The machinery is not tied to square radix-k trees: any full-bandwidth
   XGFT(3; m1, m2, m3) — including the paper's Figure 10 shape — must
   allocate and route identically. *)
let prop_custom_topologies_rearrangeable =
  QCheck2.Test.make ~name:"non-square XGFTs allocate and route" ~count:30
    QCheck2.Gen.(
      quad (int_range 1 5) (int_range 1 5) (int_range 1 5) (int_range 0 100_000))
    (fun (m1, m2, m3, seed) ->
      let topo =
        Topology.create ~nodes_per_leaf:m1 ~leaves_per_pod:m2 ~pods:m3
      in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let ok = ref true in
      for job = 0 to 6 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo) in
        match Jigsaw.get_allocation st ~job ~size with
        | None -> ()
        | Some p ->
            if not (Conditions.is_legal topo p) then ok := false;
            State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
            let n = Partition.node_count p in
            let perm = Sim.Prng.permutation prng n in
            (match Rearrange.route_and_verify topo p ~perm with
            | Ok _ -> ()
            | Error _ -> ok := false)
      done;
      !ok)

let test_route_traffic_partial () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_and_claim topo st ~job:0 ~size:12 in
  let nodes = Partition.nodes p in
  (* Three flows of a gather pattern. *)
  let flows =
    [ (nodes.(0), nodes.(5)); (nodes.(1), nodes.(7)); (nodes.(2), nodes.(11)) ]
  in
  (match Rearrange.route_traffic topo p ~flows with
  | Error m -> Alcotest.fail m
  | Ok paths ->
      Alcotest.(check int) "only requested flows returned" 3 (List.length paths);
      Alcotest.(check bool) "no contention" true
        (Path.max_channel_load paths <= 1);
      let alloc = Partition.to_alloc topo p ~bw:1.0 in
      Alcotest.(check bool) "allocated cables only" true
        (Path.uses_only alloc paths = Ok ()));
  (* Invalid patterns are rejected. *)
  (match Rearrange.route_traffic topo p ~flows:[ (nodes.(0), nodes.(1)); (nodes.(0), nodes.(2)) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double sender accepted");
  match Rearrange.route_traffic topo p ~flows:[ (999, nodes.(1)) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign node accepted"

let test_figure10_tree () =
  (* The paper's Figure 10: XGFT(3; 2,3,2; 1,2,3), 12 nodes. *)
  let topo = Topology.create ~nodes_per_leaf:2 ~leaves_per_pod:3 ~pods:2 in
  let st = State.create topo in
  match Jigsaw.get_allocation st ~job:0 ~size:9 with
  | None -> Alcotest.fail "9 of 12 nodes must fit"
  | Some p ->
      Alcotest.(check bool) "legal" true (Conditions.is_legal topo p);
      let n = Partition.node_count p in
      for shift = 0 to n - 1 do
        ignore (route_ok topo p (Rearrange.demo_permutation ~n ~shift))
      done

let suite =
  [
    Alcotest.test_case "identity permutation" `Quick test_identity_permutation;
    Alcotest.test_case "Figure 10 tree" `Quick test_figure10_tree;
    Alcotest.test_case "partial traffic routing" `Quick test_route_traffic_partial;
    Alcotest.test_case "all shift permutations" `Quick test_shift_permutations;
    Alcotest.test_case "full machine (Thm 5)" `Quick test_full_machine_is_rearrangeable;
    Alcotest.test_case "rejects bad permutations" `Quick test_rejects_bad_perm;
    Alcotest.test_case "rejects illegal partitions" `Quick test_rejects_illegal_partition;
    Alcotest.test_case "paths carry the right endpoints" `Quick test_paths_have_node_endpoints;
    QCheck_alcotest.to_alcotest prop_jigsaw_partitions_rearrangeable;
    QCheck_alcotest.to_alcotest prop_lc_partitions_rearrangeable;
    QCheck_alcotest.to_alcotest prop_laas_partitions_rearrangeable;
    QCheck_alcotest.to_alcotest prop_custom_topologies_rearrangeable;
  ]
