(* Tests for Hopcroft-Karp bipartite matching. *)

open Routing

let test_simple_perfect () =
  let g = Matching.create ~left:3 ~right:3 in
  List.iter (fun (u, v) -> Matching.add_edge g u v)
    [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2) ];
  match Matching.perfect_matching g with
  | None -> Alcotest.fail "perfect matching exists"
  | Some m ->
      Alcotest.(check int) "size" 3 (List.length m);
      let ls = List.sort compare (List.map fst m) in
      let rs = List.sort compare (List.map snd m) in
      Alcotest.(check (list int)) "left cover" [ 0; 1; 2 ] ls;
      Alcotest.(check (list int)) "right cover" [ 0; 1; 2 ] rs;
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "edge exists" true
            (List.mem (u, v) [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2) ]))
        m

let test_no_perfect () =
  let g = Matching.create ~left:2 ~right:2 in
  (* Both left vertices only reach right vertex 0. *)
  Matching.add_edge g 0 0;
  Matching.add_edge g 1 0;
  Alcotest.(check bool) "none" true (Matching.perfect_matching g = None);
  Alcotest.(check int) "max is 1" 1 (List.length (Matching.max_matching g))

let test_self_loops_and_parallel () =
  let g = Matching.create ~left:2 ~right:2 in
  Matching.add_edge g 0 0;
  Matching.add_edge g 0 0;
  Matching.add_edge g 1 1;
  match Matching.perfect_matching g with
  | Some m -> Alcotest.(check int) "size" 2 (List.length m)
  | None -> Alcotest.fail "exists"

let test_unbalanced_sides () =
  let g = Matching.create ~left:2 ~right:3 in
  Matching.add_edge g 0 0;
  Matching.add_edge g 1 1;
  Alcotest.(check bool) "unbalanced has no perfect" true
    (Matching.perfect_matching g = None);
  Alcotest.(check int) "max" 2 (List.length (Matching.max_matching g))

let test_empty () =
  let g = Matching.create ~left:0 ~right:0 in
  Alcotest.(check (option (list (pair int int)))) "empty perfect" (Some [])
    (Matching.perfect_matching g)

(* Property: on random regular bipartite multigraphs a perfect matching
   always exists (Hall/König) — the invariant the router relies on. *)
let prop_regular_has_perfect =
  QCheck2.Test.make ~name:"d-regular bipartite graphs have perfect matchings"
    ~count:200
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 5) (int_range 0 100_000))
    (fun (n, d, seed) ->
      (* Build a d-regular bipartite multigraph as a union of d random
         permutations. *)
      let prng = Sim.Prng.create ~seed in
      let g = Matching.create ~left:n ~right:n in
      for _ = 1 to d do
        let perm = Sim.Prng.permutation prng n in
        Array.iteri (fun u v -> Matching.add_edge g u v) perm
      done;
      match Matching.perfect_matching g with
      | Some m -> List.length m = n
      | None -> false)

let prop_matching_is_valid =
  QCheck2.Test.make ~name:"max matching never repeats endpoints" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 10)
        (list_size (int_range 0 40) (pair (int_range 0 9) (int_range 0 9))))
    (fun (n, edges) ->
      let g = Matching.create ~left:n ~right:n in
      let edges = List.filter (fun (u, v) -> u < n && v < n) edges in
      List.iter (fun (u, v) -> Matching.add_edge g u v) edges;
      let m = Matching.max_matching g in
      let ls = List.map fst m and rs = List.map snd m in
      List.length (List.sort_uniq compare ls) = List.length ls
      && List.length (List.sort_uniq compare rs) = List.length rs
      && List.for_all (fun e -> List.mem e edges) m)

let suite =
  [
    Alcotest.test_case "simple perfect matching" `Quick test_simple_perfect;
    Alcotest.test_case "detects no perfect matching" `Quick test_no_perfect;
    Alcotest.test_case "self loops and parallel edges" `Quick test_self_loops_and_parallel;
    Alcotest.test_case "unbalanced sides" `Quick test_unbalanced_sides;
    Alcotest.test_case "empty graph" `Quick test_empty;
    QCheck_alcotest.to_alcotest prop_regular_has_perfect;
    QCheck_alcotest.to_alcotest prop_matching_is_valid;
  ]
