(* Necessity of the formal conditions (Appendix A.1): allocations that
   violate a condition admit a traffic pattern that cannot be routed with
   one flow per channel.  We witness this with exact max-flow bounds
   (Routing.Feasibility), mirroring the three violations of Figure 1. *)

open Fattree
open Routing

let topo = Topology.of_radix 8 (* m1 = m2 = 4 *)

let node ~leaf ~slot = Topology.leaf_first_node topo leaf + slot
let lcable ~leaf ~i = Topology.leaf_l2_cable topo ~leaf ~l2_index:i

let mk_alloc ~nodes ~leaf_cables ?(l2_cables = [||]) () =
  {
    Alloc.job = 0;
    size = Array.length nodes;
    nodes;
    leaf_cables;
    l2_cables;
    bw = 1.0;
  }

let test_figure1_left_tapering () =
  (* Two leaves with two nodes each but a single uplink per leaf: the two
     sender flows must share a link. *)
  let a0 = node ~leaf:0 ~slot:0 and a1 = node ~leaf:0 ~slot:1 in
  let b0 = node ~leaf:1 ~slot:0 and b1 = node ~leaf:1 ~slot:1 in
  let alloc =
    mk_alloc
      ~nodes:[| a0; a1; b0; b1 |]
      ~leaf_cables:[| lcable ~leaf:0 ~i:0; lcable ~leaf:1 ~i:0 |]
      ()
  in
  let flow =
    Feasibility.max_concurrent_flows topo alloc ~srcs:[| a0; a1 |]
      ~dsts:[| b0; b1 |]
  in
  Alcotest.(check int) "only one cross-leaf flow fits" 1 flow;
  Alcotest.(check bool) "witnesses non-rearrangeability" false
    (Feasibility.supports_permutation_lower_bound topo alloc ~srcs:[| a0; a1 |]
       ~dsts:[| b0; b1 |])

let test_figure1_center_uneven_nodes () =
  (* Leaves with 1, 2 and 3 nodes, per-leaf balanced uplinks {0}, {0,1},
     {0,1,2}: three flows from the 3-node leaf toward the others are
     confined to two usable uplinks. *)
  let c = Array.init 3 (fun s -> node ~leaf:2 ~slot:s) in
  let a = [| node ~leaf:0 ~slot:0 |] in
  let b = Array.init 2 (fun s -> node ~leaf:1 ~slot:s) in
  let alloc =
    mk_alloc
      ~nodes:(Array.concat [ a; b; c ])
      ~leaf_cables:
        [|
          lcable ~leaf:0 ~i:0;
          lcable ~leaf:1 ~i:0;
          lcable ~leaf:1 ~i:1;
          lcable ~leaf:2 ~i:0;
          lcable ~leaf:2 ~i:1;
          lcable ~leaf:2 ~i:2;
        |]
      ()
  in
  let flow =
    Feasibility.max_concurrent_flows topo alloc ~srcs:c
      ~dsts:(Array.append a b)
  in
  Alcotest.(check int) "third flow dead-ends" 2 flow

let test_figure1_right_disconnected () =
  (* Balanced uplinks chosen independently: leaf 0 reaches L2 {0,1},
     leaf 1 reaches L2 {2,3} — no connectivity at all. *)
  let a = Array.init 2 (fun s -> node ~leaf:0 ~slot:s) in
  let b = Array.init 2 (fun s -> node ~leaf:1 ~slot:s) in
  let alloc =
    mk_alloc
      ~nodes:(Array.append a b)
      ~leaf_cables:
        [|
          lcable ~leaf:0 ~i:0;
          lcable ~leaf:0 ~i:1;
          lcable ~leaf:1 ~i:2;
          lcable ~leaf:1 ~i:3;
        |]
      ()
  in
  Alcotest.(check int) "no connectivity" 0
    (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b)

let test_spine_mismatch_across_trees () =
  (* Condition 6 violated: two pods whose L2 switches uplink to different
     spines cannot exchange traffic. *)
  let a = Array.init 4 (fun s -> node ~leaf:0 ~slot:s) in
  (* leaf 4 = first leaf of pod 1 *)
  let b = Array.init 4 (fun s -> node ~leaf:4 ~slot:s) in
  let l2_0 = Topology.l2_of_coords topo ~pod:0 ~index:0 in
  let l2_1 = Topology.l2_of_coords topo ~pod:1 ~index:0 in
  let alloc =
    mk_alloc
      ~nodes:(Array.append a b)
      ~leaf_cables:
        (Array.append
           (Array.init 4 (fun i -> lcable ~leaf:0 ~i))
           (Array.init 4 (fun i -> lcable ~leaf:4 ~i)))
      ~l2_cables:
        [|
          Topology.l2_spine_cable topo ~l2:l2_0 ~spine_index:0;
          Topology.l2_spine_cable topo ~l2:l2_1 ~spine_index:1;
        |]
      ()
  in
  (* Cross-pod traffic through L2 index 0 can reach spines only via
     disjoint spine sets; at most 0 flows connect. *)
  Alcotest.(check int) "disjoint spine sets disconnect pods" 0
    (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b)

let test_legal_partition_supports_full_permutation () =
  (* Sufficiency cross-check through the same max-flow lens: a legal
     Jigsaw partition supports |A| flows for disjoint halves A, B. *)
  let st = State.create topo in
  match Jigsaw_core.Jigsaw.get_allocation st ~job:0 ~size:24 with
  | None -> Alcotest.fail "no allocation"
  | Some p ->
      let alloc = Jigsaw_core.Partition.to_alloc topo p ~bw:1.0 in
      let nodes = Jigsaw_core.Partition.nodes p in
      let half = Array.length nodes / 2 in
      let srcs = Array.sub nodes 0 half in
      let dsts = Array.sub nodes half half in
      Alcotest.(check int) "half-to-half at full rate" half
        (Feasibility.max_concurrent_flows topo alloc ~srcs ~dsts)

(* Property: for random legal partitions and random disjoint subsets the
   max-flow bound is always met (necessity's contrapositive). *)
let prop_legal_partitions_pass_flow_bound =
  QCheck2.Test.make ~name:"legal partitions meet every subset flow bound"
    ~count:40
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 100_000))
    (fun (size, seed) ->
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      match Jigsaw_core.Jigsaw.get_allocation st ~job:0 ~size with
      | None -> QCheck2.assume_fail ()
      | Some p ->
          let alloc = Jigsaw_core.Partition.to_alloc topo p ~bw:1.0 in
          let nodes = Jigsaw_core.Partition.nodes p in
          Sim.Prng.shuffle prng nodes;
          let k = max 1 (Array.length nodes / 2) in
          let srcs = Array.sub nodes 0 k in
          let dsts = Array.sub nodes (Array.length nodes - k) k in
          Feasibility.max_concurrent_flows topo alloc ~srcs ~dsts >= k)

(* ---- Per-lemma counterexamples (Appendix A.1) -------------------- *)

(* Lemma 1: within a tree, two leaves with full-but-unequal node counts
   cannot both exchange full permutation traffic: leaf with 3 nodes and
   leaf with 1 node, each with balanced uplinks to a common switch set.
   A permutation sending all 3 of C's nodes into {A's 1 node + ...} needs
   A-side capacity it does not have; here we check the A->C direction
   bound directly. *)
let test_lemma1_unequal_leaves () =
  (* Leaf 0 carries 3 nodes with uplinks {0,1,2}; leaf 1 carries 1 node
     with uplink {0}; leaf 2 carries 2 nodes with uplinks {0,1}.  Lemma 1
     says equal counts except one remainder: the (3,2,1) arrangement is
     illegal, and indeed 3 flows out of leaf 0 into leaves {1,2} cannot
     all be carried: only 2 usable uplinks lead anywhere. *)
  let c = Array.init 3 (fun s -> node ~leaf:0 ~slot:s) in
  let a = [| node ~leaf:1 ~slot:0 |] in
  let b = Array.init 2 (fun s -> node ~leaf:2 ~slot:s) in
  let alloc =
    mk_alloc
      ~nodes:(Array.concat [ c; a; b ])
      ~leaf_cables:
        [|
          lcable ~leaf:0 ~i:0;
          lcable ~leaf:0 ~i:1;
          lcable ~leaf:0 ~i:2;
          lcable ~leaf:1 ~i:0;
          lcable ~leaf:2 ~i:0;
          lcable ~leaf:2 ~i:1;
        |]
      ()
  in
  Alcotest.(check bool) "3 flows cannot leave leaf 0" false
    (Feasibility.supports_permutation_lower_bound topo alloc ~srcs:c
       ~dsts:(Array.append a b))

(* Lemma 2/5: trees with unequal node counts or inconsistent spine sets
   cannot exchange full traffic.  Two pods, 4 vs 2 nodes, spine uplinks
   sized to their own side only. *)
let test_lemma2_unequal_trees () =
  let a = Array.init 4 (fun s -> node ~leaf:0 ~slot:s) in
  let b = Array.init 2 (fun s -> node ~leaf:4 ~slot:s) in
  let l2_00 = Topology.l2_of_coords topo ~pod:0 ~index:0 in
  let l2_01 = Topology.l2_of_coords topo ~pod:0 ~index:1 in
  let l2_10 = Topology.l2_of_coords topo ~pod:1 ~index:0 in
  let l2_11 = Topology.l2_of_coords topo ~pod:1 ~index:1 in
  (* Pod 0's leaf uses all 4 uplinks; pod 1's leaf only 2.  Spines: one
     per L2 where allocated, common indices {0}. *)
  let alloc =
    mk_alloc
      ~nodes:(Array.append a b)
      ~leaf_cables:
        (Array.append
           (Array.init 4 (fun i -> lcable ~leaf:0 ~i))
           [| lcable ~leaf:4 ~i:0; lcable ~leaf:4 ~i:1 |])
      ~l2_cables:
        [|
          Topology.l2_spine_cable topo ~l2:l2_00 ~spine_index:0;
          Topology.l2_spine_cable topo ~l2:l2_01 ~spine_index:0;
          Topology.l2_spine_cable topo ~l2:l2_10 ~spine_index:0;
          Topology.l2_spine_cable topo ~l2:l2_11 ~spine_index:0;
        |]
      ()
  in
  (* All 4 of pod 0's nodes sending into pod 1 (2 nodes) + ... : already
     the 4 -> {2 nodes} case cannot exist in a permutation; instead
     test: can 3 flows cross from pod 0 to pod 1?  Only 2 spine cables
     reach pod 1. *)
  Alcotest.(check bool) "at most 2 cross-pod flows" true
    (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b <= 2)

(* Lemma 4: within a tree, full leaves using different L2 sets lose
   connectivity even when each is balanced (= Figure 1 right, but with
   partial overlap). *)
let test_lemma4_partial_overlap () =
  let a = Array.init 2 (fun s -> node ~leaf:0 ~slot:s) in
  let b = Array.init 2 (fun s -> node ~leaf:1 ~slot:s) in
  let alloc =
    mk_alloc
      ~nodes:(Array.append a b)
      ~leaf_cables:
        [|
          lcable ~leaf:0 ~i:0;
          lcable ~leaf:0 ~i:1;
          lcable ~leaf:1 ~i:1;
          lcable ~leaf:1 ~i:2;
        |]
      ()
  in
  (* Overlap is only {1}: a 2-flow exchange cannot be carried. *)
  Alcotest.(check int) "single common switch" 1
    (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b)

(* Condition "balanced uplinks" from the high-utilization side: more
   uplinks than nodes wastes links but still routes; fewer does not.
   The checker rejects both, the flow bound only the latter — showing
   why the balance condition is stated as equality for minimality. *)
let test_balance_asymmetry () =
  let a = Array.init 2 (fun s -> node ~leaf:0 ~slot:s) in
  let b = Array.init 2 (fun s -> node ~leaf:1 ~slot:s) in
  let over =
    mk_alloc
      ~nodes:(Array.append a b)
      ~leaf_cables:
        [|
          lcable ~leaf:0 ~i:0;
          lcable ~leaf:0 ~i:1;
          lcable ~leaf:0 ~i:2;
          lcable ~leaf:1 ~i:0;
          lcable ~leaf:1 ~i:1;
          lcable ~leaf:1 ~i:2;
        |]
      ()
  in
  Alcotest.(check bool) "extra uplinks still route" true
    (Feasibility.supports_permutation_lower_bound topo over ~srcs:a ~dsts:b)

let suite =
  [
    Alcotest.test_case "Figure 1 left: tapering" `Quick test_figure1_left_tapering;
    Alcotest.test_case "Lemma 1: unequal leaves" `Quick test_lemma1_unequal_leaves;
    Alcotest.test_case "Lemma 2: unequal trees" `Quick test_lemma2_unequal_trees;
    Alcotest.test_case "Lemma 4: partial L2 overlap" `Quick test_lemma4_partial_overlap;
    Alcotest.test_case "balance asymmetry" `Quick test_balance_asymmetry;
    Alcotest.test_case "Figure 1 center: uneven nodes" `Quick test_figure1_center_uneven_nodes;
    Alcotest.test_case "Figure 1 right: lost connectivity" `Quick test_figure1_right_disconnected;
    Alcotest.test_case "condition 6: spine mismatch" `Quick test_spine_mismatch_across_trees;
    Alcotest.test_case "legal partition passes flow bound" `Quick test_legal_partition_supports_full_permutation;
    QCheck_alcotest.to_alcotest prop_legal_partitions_pass_flow_bound;
  ]
