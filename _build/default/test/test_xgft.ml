(* Tests for the XGFT notation module. *)

open Fattree

let test_create_validation () =
  Alcotest.check_raises "w1 must be 1"
    (Invalid_argument "Xgft.create: w1 must be 1 (nodes have one parent)")
    (fun () -> ignore (Xgft.create ~m:[| 2; 2 |] ~w:[| 2; 2 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Xgft.create: m and w must have the same length")
    (fun () -> ignore (Xgft.create ~m:[| 2; 2 |] ~w:[| 1 |]))

let test_paper_figure9 () =
  (* Figure 9: XGFT(2; 3,4; 1,3) — full bandwidth two-level tree. *)
  let x = Xgft.create ~m:[| 3; 4 |] ~w:[| 1; 3 |] in
  Alcotest.(check int) "nodes" 12 (Xgft.num_nodes x);
  Alcotest.(check bool) "full bandwidth" true (Xgft.is_full_bandwidth x);
  Alcotest.(check int) "leaves" 4 (Xgft.num_switches_at_level x 1);
  Alcotest.(check int) "l2" 3 (Xgft.num_switches_at_level x 2)

let test_paper_figure10 () =
  (* Figure 10: XGFT(3; 2,3,2; 1,2,3). *)
  let x = Xgft.create ~m:[| 2; 3; 2 |] ~w:[| 1; 2; 3 |] in
  Alcotest.(check int) "nodes" 12 (Xgft.num_nodes x);
  Alcotest.(check bool) "full bandwidth" true (Xgft.is_full_bandwidth x);
  Alcotest.(check int) "leaves" 6 (Xgft.num_switches_at_level x 1);
  Alcotest.(check int) "l2 switches" 4 (Xgft.num_switches_at_level x 2);
  Alcotest.(check int) "spines" 6 (Xgft.num_switches_at_level x 3);
  Alcotest.(check string) "pp" "XGFT(3; 2,3,2; 1,2,3)" (Xgft.to_string x)

let test_not_full_bandwidth () =
  let x = Xgft.create ~m:[| 4; 4 |] ~w:[| 1; 2 |] in
  Alcotest.(check bool) "tapered" false (Xgft.is_full_bandwidth x)

let test_topology_roundtrip () =
  let t = Topology.of_radix 16 in
  let x = Xgft.of_topology t in
  Alcotest.(check bool) "full bandwidth" true (Xgft.is_full_bandwidth x);
  Alcotest.(check int) "nodes match" (Topology.num_nodes t) (Xgft.num_nodes x);
  (match Xgft.to_topology x with
  | Some t' ->
      Alcotest.(check int) "roundtrip nodes" (Topology.num_nodes t) (Topology.num_nodes t')
  | None -> Alcotest.fail "roundtrip failed");
  (* Spine count of a three-level XGFT = switches at level 3. *)
  Alcotest.(check int) "spines" (Topology.num_spines t) (Xgft.num_switches_at_level x 3);
  Alcotest.(check int) "l2" (Topology.num_l2 t) (Xgft.num_switches_at_level x 2);
  Alcotest.(check int) "leaves" (Topology.num_leaves t) (Xgft.num_switches_at_level x 1)

let test_to_topology_rejects_non3level () =
  let x = Xgft.create ~m:[| 3; 4 |] ~w:[| 1; 3 |] in
  Alcotest.(check bool) "two-level has no topology" true (Xgft.to_topology x = None);
  let tapered = Xgft.create ~m:[| 2; 3; 2 |] ~w:[| 1; 1; 3 |] in
  Alcotest.(check bool) "tapered rejected" true (Xgft.to_topology tapered = None)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "paper Figure 9 tree" `Quick test_paper_figure9;
    Alcotest.test_case "paper Figure 10 tree" `Quick test_paper_figure10;
    Alcotest.test_case "tapered tree detected" `Quick test_not_full_bandwidth;
    Alcotest.test_case "topology roundtrip" `Quick test_topology_roundtrip;
    Alcotest.test_case "to_topology rejects others" `Quick test_to_topology_rejects_non3level;
  ]
