(* Direct tests for the max-flow feasibility bounds. *)

open Fattree
open Routing

let topo = Topology.of_radix 8

let full_leaf_alloc leaves =
  (* Whole leaves with all uplinks. *)
  let nodes =
    Array.concat
      (List.map
         (fun leaf -> Array.init 4 (fun s -> Topology.leaf_first_node topo leaf + s))
         leaves)
  in
  let cables =
    Array.concat
      (List.map
         (fun leaf ->
           Array.init 4 (fun i -> Topology.leaf_l2_cable topo ~leaf ~l2_index:i))
         leaves)
  in
  {
    Alloc.job = 0;
    size = Array.length nodes;
    nodes;
    leaf_cables = cables;
    l2_cables = [||];
    bw = 1.0;
  }

let test_intra_leaf_free () =
  (* Flows within one leaf need no cables at all. *)
  let alloc = full_leaf_alloc [ 0 ] in
  let nodes = alloc.nodes in
  Alcotest.(check int) "2 intra-leaf flows" 2
    (Feasibility.max_concurrent_flows topo alloc
       ~srcs:[| nodes.(0); nodes.(1) |]
       ~dsts:[| nodes.(2); nodes.(3) |])

let test_full_pod_bisection () =
  (* Two whole leaves in one pod: 4 flows cross at full rate. *)
  let alloc = full_leaf_alloc [ 0; 1 ] in
  let a = Array.sub alloc.nodes 0 4 and b = Array.sub alloc.nodes 4 4 in
  Alcotest.(check int) "full bisection" 4
    (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b)

let test_scales_with_cables () =
  (* Strip uplinks one at a time: the bound tracks the cable count. *)
  let base = full_leaf_alloc [ 0; 1 ] in
  let a = Array.sub base.nodes 0 4 and b = Array.sub base.nodes 4 4 in
  for keep = 0 to 4 do
    let cables_leaf0 =
      Array.init keep (fun i -> Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:i)
    in
    let cables_leaf1 =
      Array.init 4 (fun i -> Topology.leaf_l2_cable topo ~leaf:1 ~l2_index:i)
    in
    let alloc =
      { base with leaf_cables = Array.append cables_leaf0 cables_leaf1 }
    in
    Alcotest.(check int)
      (Printf.sprintf "%d uplinks -> %d flows" keep keep)
      keep
      (Feasibility.max_concurrent_flows topo alloc ~srcs:a ~dsts:b)
  done

let test_self_traffic_is_free () =
  (* A node appearing as both source and destination can satisfy itself
     without touching the network. *)
  let alloc = full_leaf_alloc [ 0 ] in
  let n = alloc.nodes.(0) in
  Alcotest.(check int) "self flow" 1
    (Feasibility.max_concurrent_flows topo alloc ~srcs:[| n |] ~dsts:[| n |])

let test_directionality () =
  (* One uplink per leaf supports one flow each way simultaneously —
     channels are directed. *)
  let nodes = [| 0; Topology.leaf_first_node topo 1 |] in
  let alloc =
    {
      Alloc.job = 0;
      size = 2;
      nodes;
      leaf_cables =
        [|
          Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:0;
          Topology.leaf_l2_cable topo ~leaf:1 ~l2_index:0;
        |];
      l2_cables = [||];
      bw = 1.0;
    }
  in
  (* srcs and dsts are the same pair swapped: 2 counter-flows fit. *)
  Alcotest.(check int) "counter-flows" 2
    (Feasibility.max_concurrent_flows topo alloc ~srcs:nodes
       ~dsts:[| nodes.(1); nodes.(0) |])

let suite =
  [
    Alcotest.test_case "intra-leaf flows are free" `Quick test_intra_leaf_free;
    Alcotest.test_case "full pod bisection" `Quick test_full_pod_bisection;
    Alcotest.test_case "bound tracks cable count" `Quick test_scales_with_cables;
    Alcotest.test_case "self traffic is free" `Quick test_self_traffic_is_free;
    Alcotest.test_case "channels are directed" `Quick test_directionality;
  ]
