(* Tests for the adjusted (wraparound) D-mod-k routing inside partitions
   (paper Figure 5). *)

open Fattree
open Jigsaw_core
open Routing

let topo = Topology.of_radix 8

let alloc_and_claim st ~job ~size =
  match Jigsaw.get_allocation st ~job ~size with
  | None -> Alcotest.failf "no allocation for size %d" size
  | Some p ->
      State.claim_exn st (Partition.to_alloc topo p ~bw:1.0);
      p

let test_connectivity_various_sizes () =
  let st = State.create topo in
  List.iteri
    (fun job size ->
      let p = alloc_and_claim st ~job ~size in
      match Partition_routing.check_connectivity topo p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "size %d: %s" size m)
    [ 1; 3; 7; 16; 17; 23; 40 ]

let test_only_allocated_cables () =
  let st = State.create topo in
  let p = alloc_and_claim st ~job:0 ~size:29 in
  let alloc = Partition.to_alloc topo p ~bw:1.0 in
  let paths = Partition_routing.all_pairs topo p in
  (match Path.uses_only alloc paths with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let n = Partition.node_count p in
  Alcotest.(check int) "all ordered pairs" (n * (n - 1)) (List.length paths)

let test_foreign_node_rejected () =
  let st = State.create topo in
  let p = alloc_and_claim st ~job:0 ~size:4 in
  let foreign = Topology.num_nodes topo - 1 in
  match Partition_routing.path topo p ~src:foreign ~dst:(Partition.nodes p).(0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign source accepted"

let test_deterministic () =
  let st = State.create topo in
  let p = alloc_and_claim st ~job:0 ~size:20 in
  let nodes = Partition.nodes p in
  let a = nodes.(0) and b = nodes.(15) in
  let p1 = Partition_routing.path topo p ~src:a ~dst:b in
  let p2 = Partition_routing.path topo p ~src:a ~dst:b in
  Alcotest.(check bool) "same route twice" true (p1 = p2)

let test_wraparound_on_remainder () =
  (* A partition with a remainder leaf: traffic to its nodes must still
     route, wrapping around its smaller uplink set. *)
  let st = State.create topo in
  let p = alloc_and_claim st ~job:0 ~size:19 in
  (* 19 = 4*4 + 3 in one pod or spans pods; either way a remainder
     exists. *)
  match Partition_routing.check_connectivity topo p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_whole_machine_equals_dmodk () =
  (* On a whole-machine partition the adjusted routing has nothing to
     adjust: S is every L2 index, ranks coincide with slots, and the
     wraparound is the identity — so every route must equal plain
     D-mod-k.  (Figure 5's left/right sides coincide when the job owns
     the tree.) *)
  let st = State.create topo in
  let p = alloc_and_claim st ~job:0 ~size:(Topology.num_nodes topo) in
  let prng = Sim.Prng.create ~seed:123 in
  for _ = 1 to 300 do
    let src = Sim.Prng.int prng ~bound:(Topology.num_nodes topo) in
    let dst = Sim.Prng.int prng ~bound:(Topology.num_nodes topo) in
    if src <> dst then begin
      let adjusted =
        match Partition_routing.path topo p ~src ~dst with
        | Ok pa -> pa
        | Error m -> Alcotest.fail m
      in
      let plain = Dmodk.path topo ~src ~dst in
      Alcotest.(check bool)
        (Printf.sprintf "%d->%d identical" src dst)
        true
        (adjusted.hops = plain.hops)
    end
  done

let prop_partition_routing_connected =
  QCheck2.Test.make
    ~name:"adjusted routing connects all pairs on allocated cables" ~count:30
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 100_000))
    (fun (size, seed) ->
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      (* Fragment the machine a little first. *)
      for j = 0 to 5 do
        let s = Sim.Prng.int_in prng ~lo:1 ~hi:12 in
        match Jigsaw.get_allocation st ~job:(100 + j) ~size:s with
        | Some q -> State.claim_exn st (Partition.to_alloc topo q ~bw:1.0)
        | None -> ()
      done;
      match Jigsaw.get_allocation st ~job:0 ~size with
      | None -> QCheck2.assume_fail ()
      | Some p -> Partition_routing.check_connectivity topo p = Ok ())

let suite =
  [
    Alcotest.test_case "connectivity across sizes" `Quick test_connectivity_various_sizes;
    Alcotest.test_case "only allocated cables used" `Quick test_only_allocated_cables;
    Alcotest.test_case "foreign node rejected" `Quick test_foreign_node_rejected;
    Alcotest.test_case "deterministic routes" `Quick test_deterministic;
    Alcotest.test_case "wraparound on remainder switches" `Quick test_wraparound_on_remainder;
    Alcotest.test_case "whole machine degenerates to D-mod-k" `Quick test_whole_machine_equals_dmodk;
    QCheck_alcotest.to_alcotest prop_partition_routing_connected;
  ]
