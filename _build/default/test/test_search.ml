(* Tests for the pod-level (two-level) search machinery. *)

open Fattree
open Jigsaw_core

let topo = Topology.of_radix 8 (* m1 = m2 = 4 *)

let test_pod_leaf_infos_fresh () =
  let st = State.create topo in
  let infos = Search.pod_leaf_infos st ~pod:0 ~demand:1.0 in
  Alcotest.(check int) "m2 entries" 4 (Array.length infos);
  Array.iter
    (fun (i : Search.leaf_info) ->
      Alcotest.(check int) "all free" 4 i.free;
      Alcotest.(check int) "full mask" 0b1111 i.up_mask)
    infos

let test_pod_leaf_infos_after_claims () =
  let st = State.create topo in
  State.claim_exn st (Alloc.nodes_only ~job:0 ~size:2 [| 0; 1 |]);
  let c = Topology.leaf_l2_cable topo ~leaf:1 ~l2_index:3 in
  State.claim_exn st
    { Alloc.job = 1; size = 0; nodes = [||]; leaf_cables = [| c |]; l2_cables = [||]; bw = 1.0 };
  let infos = Search.pod_leaf_infos st ~pod:0 ~demand:1.0 in
  Alcotest.(check int) "leaf 0 free" 2 infos.(0).free;
  Alcotest.(check int) "leaf 1 mask" 0b0111 infos.(1).up_mask

let test_find_two_level_simple () =
  let st = State.create topo in
  let shape = { Shapes.n_l = 2; l_t = 2; n_rl = 1 } in
  match Search.find_two_level st ~job:0 ~pod:0 ~shape ~demand:1.0 with
  | None -> Alcotest.fail "should fit"
  | Some tree ->
      Alcotest.(check int) "two full leaves" 2 (Array.length tree.full_leaves);
      Alcotest.(check bool) "remainder present" true (tree.rem_leaf <> None);
      Alcotest.(check int) "no spines" 0 (Array.length tree.spine_sets);
      (* Validate through the conditions checker as a single-pod
         partition. *)
      let p =
        { Partition.job = 0; size = 5; full_trees = [| tree |]; rem_tree = None }
      in
      Alcotest.(check bool) "legal" true (Conditions.is_legal topo p)

let test_find_two_level_backtracks () =
  (* Make leaf 0 attractive but incompatible: it has nodes free but only
     uplinks {2,3}; leaves 1 and 2 have uplinks {0,1}; leaf 3 has none.
     A 2x2-node job needs a common pair, so the search must first try
     leaf 0, fail to extend it, and back up to the {1,2} solution. *)
  let st = State.create topo in
  let claim_cables leaf idxs =
    State.claim_exn st
      {
        Alloc.job = 99;
        size = 0;
        nodes = [||];
        leaf_cables =
          Array.of_list
            (List.map (fun i -> Topology.leaf_l2_cable topo ~leaf ~l2_index:i) idxs);
        l2_cables = [||];
        bw = 1.0;
      }
  in
  claim_cables 0 [ 0; 1 ];
  claim_cables 1 [ 2; 3 ];
  claim_cables 2 [ 2; 3 ];
  claim_cables 3 [ 0; 1; 2; 3 ];
  let shape = { Shapes.n_l = 2; l_t = 2; n_rl = 0 } in
  match Search.find_two_level st ~job:0 ~pod:0 ~shape ~demand:1.0 with
  | None -> Alcotest.fail "leaves 1,2 fit"
  | Some tree ->
      let leaves =
        List.sort compare
          (Array.to_list
             (Array.map (fun (l : Partition.leaf_alloc) -> l.leaf) tree.full_leaves))
      in
      Alcotest.(check (list int)) "skipped leaf 0" [ 1; 2 ] leaves

let test_find_two_level_infeasible () =
  let st = State.create topo in
  (* Make every leaf hold at most 1 free node. *)
  for leaf = 0 to 3 do
    let first = Topology.leaf_first_node topo leaf in
    State.claim_exn st
      (Alloc.nodes_only ~job:leaf ~size:3 [| first; first + 1; first + 2 |])
  done;
  let shape = { Shapes.n_l = 2; l_t = 1; n_rl = 0 } in
  Alcotest.(check bool) "no 2-node leaf" true
    (Search.find_two_level st ~job:0 ~pod:0 ~shape ~demand:1.0 = None)

let test_find_all_enumerates () =
  let st = State.create topo in
  let budget = ref 1_000_000 in
  let sols = Search.find_all st ~pod:0 ~l_t:2 ~n_l:4 ~demand:1.0 ~budget in
  (* choose 2 of 4 fully-free leaves: C(4,2) = 6. *)
  Alcotest.(check int) "C(4,2) solutions" 6 (List.length sols);
  List.iter
    (fun (s : Search.pod_solution) ->
      Alcotest.(check int) "two leaves" 2 (Array.length s.leaf_set);
      Alcotest.(check int) "full capability" 0b1111 (s.cap_mask land 0b1111))
    sols

let test_find_all_budget () =
  let st = State.create topo in
  let budget = ref 3 in
  let sols = Search.find_all st ~pod:0 ~l_t:2 ~n_l:4 ~demand:1.0 ~budget in
  Alcotest.(check bool) "cut short" true (List.length sols < 6);
  Alcotest.(check bool) "budget drained" true (!budget <= 0)

let test_fractional_demand_search () =
  (* At demand 0.5 a cable claimed at 0.5 still qualifies; at 1.0 it is
     out.  The search must honour the demand threshold. *)
  let st = State.create topo in
  let half_claim leaf i =
    State.claim_exn st
      {
        Alloc.job = 42;
        size = 0;
        nodes = [||];
        leaf_cables = [| Topology.leaf_l2_cable topo ~leaf ~l2_index:i |];
        l2_cables = [||];
        bw = 0.5;
      }
  in
  for i = 0 to 3 do
    half_claim 0 i
  done;
  let shape = { Shapes.n_l = 4; l_t = 1; n_rl = 0 } in
  (* Exclusive search must avoid leaf 0 entirely. *)
  (match Search.find_two_level st ~job:0 ~pod:0 ~shape ~demand:1.0 with
  | Some tree -> Alcotest.(check bool) "skips leaf 0" true (tree.full_leaves.(0).leaf <> 0)
  | None -> Alcotest.fail "other leaves available");
  (* Fractional search may use it. *)
  match Search.find_two_level st ~job:0 ~pod:0 ~shape ~demand:0.5 with
  | Some tree -> Alcotest.(check int) "uses leaf 0" 0 tree.full_leaves.(0).leaf
  | None -> Alcotest.fail "fractional capacity exists"

let test_materialize_leaf () =
  let st = State.create topo in
  State.claim_exn st (Alloc.nodes_only ~job:0 ~size:1 [| 1 |]);
  let la = Search.materialize_leaf st ~leaf:0 ~take:2 ~l2_indices:[| 0; 2 |] in
  (* lowest free slots on leaf 0 are 0 and 2. *)
  Alcotest.(check (array int)) "skips busy slot" [| 0; 2 |] la.nodes;
  Alcotest.(check (array int)) "uplinks recorded" [| 0; 2 |] la.l2_indices

let suite =
  [
    Alcotest.test_case "fresh pod infos" `Quick test_pod_leaf_infos_fresh;
    Alcotest.test_case "pod infos track claims" `Quick test_pod_leaf_infos_after_claims;
    Alcotest.test_case "two-level with remainder" `Quick test_find_two_level_simple;
    Alcotest.test_case "two-level backtracks over leaves" `Quick test_find_two_level_backtracks;
    Alcotest.test_case "two-level infeasible" `Quick test_find_two_level_infeasible;
    Alcotest.test_case "find_all enumerates combinations" `Quick test_find_all_enumerates;
    Alcotest.test_case "find_all respects budget" `Quick test_find_all_budget;
    Alcotest.test_case "fractional demand honoured" `Quick test_fractional_demand_search;
    Alcotest.test_case "materialize_leaf picks free slots" `Quick test_materialize_leaf;
  ]
