(* Tests for the ASCII occupancy renderer. *)

open Fattree

let topo = Topology.of_radix 4 (* tiny: 2 pods? no — 4 pods, 2x2, 16 nodes *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_node_map_fresh () =
  let st = State.create topo in
  let s = Format.asprintf "%t" (fun ppf -> Render.node_map topo st ppf ()) in
  Alcotest.(check bool) "all free" true (contains ~needle:"[..]" s);
  Alcotest.(check bool) "no busy" false (contains ~needle:"#" s);
  Alcotest.(check bool) "four pods" true (contains ~needle:"pod  3" s)

let test_node_map_with_owners () =
  let st = State.create topo in
  let a = Alloc.nodes_only ~job:7 ~size:2 [| 0; 1 |] in
  State.claim_exn st a;
  let owners = Render.owners_of_allocs [ a ] in
  let s =
    Format.asprintf "%t" (fun ppf -> Render.node_map ~owners topo st ppf ())
  in
  Alcotest.(check bool) "job char shown" true (contains ~needle:"[77]" s)

let test_link_map () =
  let st = State.create topo in
  let c = Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:0 in
  State.claim_exn st
    { Alloc.job = 0; size = 0; nodes = [||]; leaf_cables = [| c |]; l2_cables = [||]; bw = 1.0 };
  let s = Format.asprintf "%t" (fun ppf -> Render.link_map topo st ppf ()) in
  Alcotest.(check bool) "exhausted cable marked" true (contains ~needle:"x-" s);
  (* fractional claim renders a digit *)
  let c2 = Topology.leaf_l2_cable topo ~leaf:1 ~l2_index:0 in
  State.claim_exn st
    { Alloc.job = 1; size = 0; nodes = [||]; leaf_cables = [| c2 |]; l2_cables = [||]; bw = 0.5 };
  let s2 = Format.asprintf "%t" (fun ppf -> Render.link_map topo st ppf ()) in
  Alcotest.(check bool) "fractional digit" true (contains ~needle:"5-" s2)

let test_summary () =
  let st = State.create topo in
  State.claim_exn st (Alloc.nodes_only ~job:0 ~size:3 [| 0; 1; 2 |]);
  let s = Format.asprintf "%t" (fun ppf -> Render.summary topo st ppf ()) in
  Alcotest.(check bool) "counts busy" true (contains ~needle:"3/16 nodes busy" s)

let suite =
  [
    Alcotest.test_case "fresh node map" `Quick test_node_map_fresh;
    Alcotest.test_case "ownership characters" `Quick test_node_map_with_owners;
    Alcotest.test_case "link map markers" `Quick test_link_map;
    Alcotest.test_case "summary" `Quick test_summary;
  ]
