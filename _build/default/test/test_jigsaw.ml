(* Tests for the Jigsaw allocation algorithm (Algorithm 1). *)

open Fattree
open Jigsaw_core

let claim topo st p = State.claim_exn st (Partition.to_alloc topo p ~bw:1.0)

let alloc_exn st ~job ~size =
  match Jigsaw.get_allocation st ~job ~size with
  | Some p -> p
  | None -> Alcotest.failf "no allocation for job %d size %d" job size

let test_single_node () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_exn st ~job:0 ~size:1 in
  Alcotest.(check int) "one node" 1 (Partition.node_count p);
  Alcotest.(check bool) "legal" true (Conditions.is_legal topo p);
  Alcotest.(check bool) "two-level" true (Partition.kind p = Two_level)

let test_whole_machine () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let n = Topology.num_nodes topo in
  let p = alloc_exn st ~job:0 ~size:n in
  Alcotest.(check int) "all nodes" n (Partition.node_count p);
  Alcotest.(check bool) "legal" true (Conditions.is_legal topo p)

let test_oversized_rejected () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  Alcotest.(check bool) "too big" true
    (Jigsaw.get_allocation st ~job:0 ~size:(Topology.num_nodes topo + 1) = None);
  Alcotest.(check bool) "zero" true (Jigsaw.get_allocation st ~job:0 ~size:0 = None)

let test_prefers_two_level () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  (* Pod capacity is 16; a 16-node job must stay in one pod. *)
  let p = alloc_exn st ~job:0 ~size:16 in
  Alcotest.(check bool) "two-level" true (Partition.kind p = Two_level);
  Alcotest.(check int) "one pod" 1 (List.length (Partition.pods_used p))

let test_three_level_when_needed () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p = alloc_exn st ~job:0 ~size:17 in
  Alcotest.(check bool) "three-level" true (Partition.kind p = Three_level);
  Alcotest.(check bool) "legal" true (Conditions.is_legal topo p);
  (* The Jigsaw restriction: full leaves in three-level allocations. *)
  Alcotest.(check int) "n_l = m1" (Topology.m1 topo) (Partition.n_l p)

let test_exact_size_always () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  List.iteri
    (fun job size ->
      let p = alloc_exn st ~job ~size in
      Alcotest.(check int) "exact" size (Partition.node_count p);
      claim topo st p)
    [ 5; 17; 3; 29; 1; 16; 40 ]

let test_isolation_between_jobs () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let p1 = alloc_exn st ~job:0 ~size:20 in
  claim topo st p1;
  let p2 = alloc_exn st ~job:1 ~size:20 in
  claim topo st p2;
  (* Claim succeeding proves node disjointness; check cables too. *)
  let a1 = Partition.to_alloc topo p1 ~bw:1.0 in
  let a2 = Partition.to_alloc topo p2 ~bw:1.0 in
  Alcotest.(check bool) "allocs disjoint" true (Alloc.disjoint a1 a2)

let test_whole_leaves_mode_pads () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  (* LaaS mode on a 17-node job: 5 whole leaves = 20 nodes. *)
  match Jigsaw.get_allocation_whole_leaves st ~job:0 ~size:17 with
  | None -> Alcotest.fail "no whole-leaf allocation"
  | Some p ->
      Alcotest.(check int) "padded to whole leaves" 20 (Partition.node_count p);
      Alcotest.(check int) "records requested size" 17 p.size;
      Alcotest.(check bool) "legal modulo padding" true
        (Conditions.is_legal ~require_exact_size:false topo p)

let test_two_level_only_flag () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  Alcotest.(check bool) "17 nodes cannot be two-level" true
    (Jigsaw.get_allocation ~two_level_only:true st ~job:0 ~size:17 = None);
  Alcotest.(check bool) "16 nodes can" true
    (Jigsaw.get_allocation ~two_level_only:true st ~job:0 ~size:16 <> None)

let test_fragmented_machine () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  (* Occupy one node on every leaf: no fully-free leaf remains, so no
     three-level allocation can exist, but two-level ones with n_l <= 3
     still can. *)
  for leaf = 0 to Topology.num_leaves topo - 1 do
    State.claim_exn st
      (Alloc.nodes_only ~job:(1000 + leaf) ~size:1
         [| Topology.leaf_first_node topo leaf |])
  done;
  Alcotest.(check bool) "13-in-pod fits (4 leaves x 3 + 1)" true
    (Jigsaw.get_allocation st ~job:0 ~size:12 <> None);
  Alcotest.(check bool) "17 needs full leaves and fails" true
    (Jigsaw.get_allocation st ~job:0 ~size:17 = None)

let test_link_contention_blocks () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  (* Claim every uplink of leaf 0 without its nodes: a 2-node job can
     still go to another leaf, but a pod-wide job needing leaf 0's links
     must avoid it. *)
  let cables =
    Array.init (Topology.m1 topo) (fun i ->
        Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:i)
  in
  State.claim_exn st
    { Alloc.job = 99; size = 0; nodes = [||]; leaf_cables = cables; l2_cables = [||]; bw = 1.0 };
  let p = alloc_exn st ~job:0 ~size:16 in
  Alcotest.(check bool) "avoids pod 0 or leaf 0" true
    (not (List.mem 0 (List.map (fun (la : Partition.leaf_alloc) -> la.leaf)
                        (Array.to_list (Partition.leaves p)))))

(* Property: random job sequences on random radices always produce legal,
   claimable, exactly-sized partitions. *)
let prop_alloc_legal =
  QCheck2.Test.make ~name:"every Jigsaw allocation is legal and claimable"
    ~count:60
    QCheck2.Gen.(pair (oneofl [ 4; 6; 8 ]) (int_range 0 10_000))
    (fun (radix, seed) ->
      let topo = Topology.of_radix radix in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let ok = ref true in
      for job = 0 to 30 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 3) in
        match Jigsaw.get_allocation st ~job ~size with
        | None -> ()
        | Some p ->
            if not (Conditions.is_legal topo p) then ok := false;
            if Partition.node_count p <> size then ok := false;
            (match State.claim st (Partition.to_alloc topo p ~bw:1.0) with
            | Ok () -> ()
            | Error _ -> ok := false)
      done;
      !ok)

(* Property: claim/release churn never corrupts the state (final frees
   add back to a fully free machine). *)
let prop_churn_conserves =
  QCheck2.Test.make ~name:"alloc/release churn conserves resources" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let topo = Topology.of_radix 6 in
      let st = State.create topo in
      let prng = Sim.Prng.create ~seed in
      let live = ref [] in
      for job = 0 to 60 do
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:20 in
        (match Jigsaw.get_allocation st ~job ~size with
        | Some p ->
            let a = Partition.to_alloc topo p ~bw:1.0 in
            State.claim_exn st a;
            live := a :: !live
        | None -> ());
        if Sim.Prng.bool prng && !live <> [] then begin
          match !live with
          | a :: rest ->
              State.release st a;
              live := rest
          | [] -> ()
        end
      done;
      List.iter (State.release st) !live;
      State.total_free_nodes st = Topology.num_nodes topo
      && State.leaf_fully_free st 0)

let suite =
  [
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "whole machine" `Quick test_whole_machine;
    Alcotest.test_case "oversized rejected" `Quick test_oversized_rejected;
    Alcotest.test_case "prefers two-level" `Quick test_prefers_two_level;
    Alcotest.test_case "three-level when needed" `Quick test_three_level_when_needed;
    Alcotest.test_case "exact size always" `Quick test_exact_size_always;
    Alcotest.test_case "isolation between jobs" `Quick test_isolation_between_jobs;
    Alcotest.test_case "whole-leaf (LaaS) mode pads" `Quick test_whole_leaves_mode_pads;
    Alcotest.test_case "two_level_only flag" `Quick test_two_level_only_flag;
    Alcotest.test_case "fragmented machine" `Quick test_fragmented_machine;
    Alcotest.test_case "link contention avoided" `Quick test_link_contention_blocks;
    QCheck_alcotest.to_alcotest prop_alloc_legal;
    QCheck_alcotest.to_alcotest prop_churn_conserves;
  ]
