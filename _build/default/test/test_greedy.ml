(* Tests for load-aware (SAR/AFAR-style) greedy routing and the
   pigeonhole bound that limits every routing-based mitigation. *)

open Fattree
open Routing

let topo = Topology.of_radix 8

let test_candidates_are_valid_paths () =
  (* Greedy paths must carry real cables and land at the destination. *)
  let flows = [ (0, 1); (0, 9); (0, 100); (64, 3) ] in
  let paths = Greedy.route topo flows in
  List.iter2
    (fun (s, d) (p : Path.t) ->
      Alcotest.(check (pair int int)) "endpoints" (s, d) (p.src, p.dst))
    flows paths

let test_greedy_balances_single_leaf_fanout () =
  (* 4 flows out of one leaf to 4 different leaves: greedy spreads them
     over the 4 uplinks, load 1; D-mod-k may collide when destination
     slots repeat. *)
  let flows = List.init 4 (fun k -> (k, Topology.leaf_first_node topo (k + 1))) in
  (* All dsts are slot 0 => D-mod-k funnels all four up cable (leaf0, 0). *)
  Alcotest.(check int) "dmodk hotspot" 4 (Dmodk.max_load topo flows);
  Alcotest.(check int) "greedy spreads" 1 (Greedy.max_load topo flows)

let test_greedy_cannot_beat_pigeonhole () =
  (* 8 inter-leaf flows out of a 4-uplink leaf: at least two must share
     an up channel under ANY routing.  Greedy achieves exactly the
     bound. *)
  let dsts = List.init 8 (fun k -> Topology.leaf_first_node topo (k + 1) + (k mod 4)) in
  (* ...but only 4 sources exist per leaf; use two flows per source. *)
  let srcs = List.init 8 (fun k -> k mod 4) in
  let flows = List.map2 (fun s d -> (s, d)) srcs dsts in
  let bound = Greedy.lower_bound_load topo flows in
  Alcotest.(check int) "pigeonhole bound" 2 bound;
  Alcotest.(check int) "greedy hits the bound" bound (Greedy.max_load topo flows)

let test_lower_bound_trivial_cases () =
  Alcotest.(check int) "no flows" 0 (Greedy.lower_bound_load topo []);
  Alcotest.(check int) "intra-leaf only" 0
    (Greedy.lower_bound_load topo [ (0, 1); (2, 3) ]);
  Alcotest.(check int) "one inter-leaf flow" 1
    (Greedy.lower_bound_load topo [ (0, 9) ])

let test_greedy_at_least_bound_property () =
  let prng = Sim.Prng.create ~seed:77 in
  for _ = 1 to 20 do
    let n_flows = Sim.Prng.int_in prng ~lo:1 ~hi:40 in
    let flows =
      List.init n_flows (fun _ ->
          ( Sim.Prng.int prng ~bound:(Topology.num_nodes topo),
            Sim.Prng.int prng ~bound:(Topology.num_nodes topo) ))
    in
    let bound = Greedy.lower_bound_load topo flows in
    let got = Greedy.max_load topo flows in
    Alcotest.(check bool) "load >= bound" true (got >= bound)
  done

let test_greedy_usually_beats_dmodk () =
  (* On scattered multi-job traffic, adaptive spreading should not be
     worse than static D-mod-k. *)
  let prng = Sim.Prng.create ~seed:42 in
  let worse = ref 0 in
  for _ = 1 to 10 do
    let region = Array.init 64 Fun.id in
    Sim.Prng.shuffle prng region;
    let flows =
      Array.to_list
        (Array.mapi
           (fun i s -> (s, region.((i + 7) mod 64)))
           region)
    in
    if Greedy.max_load topo flows > Dmodk.max_load topo flows then incr worse
  done;
  Alcotest.(check int) "never worse on these workloads" 0 !worse

let suite =
  [
    Alcotest.test_case "paths are valid" `Quick test_candidates_are_valid_paths;
    Alcotest.test_case "balances a single-leaf fanout" `Quick test_greedy_balances_single_leaf_fanout;
    Alcotest.test_case "cannot beat the pigeonhole bound" `Quick test_greedy_cannot_beat_pigeonhole;
    Alcotest.test_case "lower bound trivia" `Quick test_lower_bound_trivial_cases;
    Alcotest.test_case "load >= bound (randomized)" `Quick test_greedy_at_least_bound_property;
    Alcotest.test_case "not worse than D-mod-k" `Quick test_greedy_usually_beats_dmodk;
  ]
