bin/jigsaw_sim.ml: Arg Array Cmd Cmdliner Fattree Filename Format List Out_channel Printf Sched String Term Trace
