bin/jigsaw_sim.mli:
