bin/trace_gen.mli:
