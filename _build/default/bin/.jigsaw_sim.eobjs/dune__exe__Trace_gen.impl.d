bin/trace_gen.ml: Arg Cmd Cmdliner Filename Format List String Term Trace
