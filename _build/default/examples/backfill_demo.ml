(* EASY backfilling walkthrough on a hand-sized trace.

   Shows the scheduler mechanics the evaluation relies on: the queue
   head gets a reservation, short jobs jump ahead when they cannot delay
   it, long conflicting jobs wait.  Prints a start/finish timeline under
   Jigsaw placement.

   Run with:  dune exec examples/backfill_demo.exe *)

let () =
  let job ?(arrival = 0.0) id size runtime =
    Trace.Job.v ~id ~size ~runtime ~arrival ()
  in
  (* Radix-8 cluster: 128 nodes.  Job 0 holds most of the machine; job 1
     (the head) needs everything and reserves t=100; jobs 2-4 are
     backfill candidates with different fates. *)
  let jobs =
    [|
      job 0 100 100.0 (* fills the machine until t=100 *);
      job 1 128 50.0 (* whole machine: reserved at t=100 *);
      job 2 16 80.0 (* short: ends before the reservation -> backfills *);
      job 3 20 400.0 (* long and conflicting: must wait for job 1 *);
      job 4 8 60.0 (* short: also backfills *);
    |]
  in
  let w = Trace.Workload.create ~name:"demo" ~system_nodes:128 jobs in
  let cfg = Sched.Simulator.default_config Sched.Allocator.jigsaw ~radix:8 in
  let m, per_job = Sched.Simulator.run_detailed cfg w in
  let sorted =
    List.sort
      (fun (a : Sched.Metrics.per_job) b -> compare a.start_time b.start_time)
      per_job
  in
  Format.printf "%-5s %6s %9s %8s %8s %12s@." "job" "nodes" "runtime" "start"
    "finish" "waited";
  List.iter
    (fun (r : Sched.Metrics.per_job) ->
      Format.printf "%-5d %6d %9.0f %8.0f %8.0f %12.0f%s@." r.job.id r.job.size
        r.job.runtime r.start_time r.end_time
        (r.start_time -. r.job.arrival)
        (if r.start_time = 0.0 && r.job.id <> 0 && r.job.id <> 1 then
           "   <- backfilled"
         else ""))
    sorted;
  Format.printf "@.makespan %.0f s, average turnaround %.0f s@." m.makespan
    m.avg_turnaround_all;
  Format.printf
    "jobs 2 and 4 backfilled ahead of the reserved whole-machine job;@.";
  Format.printf "job 3 would have delayed the reservation and had to wait.@."
