examples/interference_demo.mli:
