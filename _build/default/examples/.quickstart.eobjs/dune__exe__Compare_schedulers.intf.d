examples/compare_schedulers.mli:
