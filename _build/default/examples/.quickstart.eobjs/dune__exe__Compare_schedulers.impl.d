examples/compare_schedulers.ml: Array Format List Printf Sched Sys Trace
