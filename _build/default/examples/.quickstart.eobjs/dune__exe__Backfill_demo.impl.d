examples/backfill_demo.ml: Format List Sched Trace
