examples/quickstart.ml: Conditions Fattree Format Jigsaw Jigsaw_core List Partition Routing State Topology Xgft
