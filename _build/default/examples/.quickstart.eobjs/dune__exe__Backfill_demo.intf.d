examples/backfill_demo.mli:
