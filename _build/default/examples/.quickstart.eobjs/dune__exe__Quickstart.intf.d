examples/quickstart.mli:
