examples/fragmentation_map.ml: Alloc Array Fattree Format List Render Sched Sim State Topology Trace
