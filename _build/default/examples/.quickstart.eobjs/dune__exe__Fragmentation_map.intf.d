examples/fragmentation_map.mli:
