examples/interference_demo.ml: Alloc Array Congestion Dmodk Fattree Format Fun Greedy Jigsaw Jigsaw_core List Partition Rearrange Routing Sim State Topology
