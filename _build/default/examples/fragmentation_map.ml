(* Fragmentation, visualized (the phenomena of paper Figure 2).

   Runs the same churny job sequence under each placement policy and
   renders the cluster occupancy.  Look for:
   - LaaS: padded leaves — nodes held by jobs that do not need them
     (internal node fragmentation);
   - TA: leaves with free nodes but exhausted uplinks — usable only by
     leaf-sized jobs (internal link fragmentation);
   - Jigsaw: packed pods with exact-sized partitions.

   Run with:  dune exec examples/fragmentation_map.exe *)

open Fattree

let topo = Topology.of_radix 8 (* small enough to read: 8 pods of 4x4 *)

(* A deterministic arrival/departure churn. *)
let churn (alloc : Sched.Allocator.t) =
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:4242 in
  let live = ref [] in
  for id = 0 to 60 do
    let size = 1 + Sim.Prng.int prng ~bound:20 in
    let job = Trace.Job.v ~id ~size ~runtime:1.0 () in
    (match alloc.try_alloc st job with
    | Some a ->
        State.claim_exn st a;
        live := a :: !live
    | None -> ());
    (* Retire roughly a third of the jobs as we go. *)
    if Sim.Prng.float prng ~bound:1.0 < 0.35 && !live <> [] then begin
      let arr = Array.of_list !live in
      let victim = arr.(Sim.Prng.int prng ~bound:(Array.length arr)) in
      State.release st victim;
      live := List.filter (fun a -> a != victim) !live
    end
  done;
  (st, !live)

let () =
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      let st, live = churn alloc in
      Format.printf "=== %s ===@." alloc.name;
      let owners = Render.owners_of_allocs live in
      Render.node_map ~owners topo st Format.std_formatter ();
      Format.printf "links:@.";
      Render.link_map topo st Format.std_formatter ();
      Format.printf "%t@.@." (fun ppf -> Render.summary topo st ppf ());
      (* Internal fragmentation: nodes held beyond requests. *)
      let padding = List.fold_left (fun acc a -> acc + Alloc.padding a) 0 live in
      if padding > 0 then
        Format.printf "(%d nodes held but not requested — internal fragmentation)@.@."
          padding)
    [ Sched.Allocator.baseline; Sched.Allocator.jigsaw; Sched.Allocator.laas;
      Sched.Allocator.ta ]
