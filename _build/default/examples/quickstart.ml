(* Quickstart: build a fat-tree, allocate an isolated partition with
   Jigsaw, check the formal conditions, and prove full interconnect
   bandwidth by routing a worst-case permutation with one flow per
   channel.

   Run with:  dune exec examples/quickstart.exe *)

open Fattree
open Jigsaw_core

let () =
  (* A maximal three-level fat-tree built from radix-16 switches: 1024
     nodes in 16 pods (the paper's smallest evaluation cluster). *)
  let topo = Topology.of_radix 16 in
  Format.printf "cluster: %a@." Topology.pp topo;
  Format.printf "XGFT:    %a@.@." Xgft.pp (Xgft.of_topology topo);

  (* Fresh resource state; then ask Jigsaw for a 100-node partition. *)
  let state = State.create topo in
  let partition =
    match Jigsaw.get_allocation state ~job:1 ~size:100 with
    | Some p -> p
    | None -> failwith "empty machine must fit a 100-node job"
  in
  Format.printf "%a@.@." Partition.pp partition;

  (* The partition satisfies the formal conditions of paper section 3.2:
     exact size, balanced links, even node distribution, common L2 and
     spine sets. *)
  (match Conditions.check topo partition with
  | Ok () -> Format.printf "conditions: all satisfied@."
  | Error m -> Format.printf "conditions: VIOLATED (%s)@." m);

  (* Claim the resources; a second job gets a disjoint partition. *)
  State.claim_exn state (Partition.to_alloc topo partition ~bw:1.0);
  Format.printf "utilization after claim: %.1f%%@.@."
    (100.0 *. State.node_utilization state);

  (* Full interconnect bandwidth, demonstrated: route a cyclic-shift
     permutation (a classic adversarial pattern) across the partition.
     The router follows the paper's Appendix-A construction and returns
     one path per flow with at most one flow per directed channel, using
     only the partition's own cables. *)
  let n = Partition.node_count partition in
  let perm = Routing.Rearrange.demo_permutation ~n ~shift:(n / 2) in
  (match Routing.Rearrange.route_and_verify topo partition ~perm with
  | Ok paths ->
      Format.printf
        "routed a %d-flow shift permutation: max channel load = %d (isolated, full bandwidth)@."
        (List.length paths)
        (Routing.Path.max_channel_load paths)
  | Error m -> Format.printf "routing failed: %s@." m);

  (* And the production-style static routing: adjusted D-mod-k with
     wraparound (paper Figure 5) connects every pair inside the
     partition using only allocated links. *)
  match Routing.Partition_routing.check_connectivity topo partition with
  | Ok () -> Format.printf "adjusted D-mod-k: every pair connected on allocated links@."
  | Error m -> Format.printf "adjusted D-mod-k failed: %s@." m
