(* Interference demo: what the paper's introduction motivates.

   Two communication-heavy jobs land on a cluster.  Act 1: under
   traditional (Baseline) scheduling their nodes interleave across
   leaves, and static D-mod-k routing maps flows from different jobs
   onto the same channels — the inter-job interference that slows real
   applications by up to 120%.  Act 2: best-effort load-aware rerouting
   (the SAR/AFAR family) spreads the flows and helps, but cannot
   guarantee anything — the pigeonhole bound still forces sharing
   whenever a leaf's traffic exceeds its links.  Act 3: under Jigsaw
   each job gets an isolated partition: zero shared channels, by
   construction.

   Run with:  dune exec examples/interference_demo.exe *)

open Fattree
open Jigsaw_core
open Routing

let topo = Topology.of_radix 16

let () =
  Format.printf "cluster: %a@.@." Topology.pp topo;

  (* --- Traditional scheduling -------------------------------------- *)
  (* After months of churn a traditional scheduler leaves jobs scattered
     over whatever nodes happen to be free; two jobs end up interleaved
     across the same leaves.  We reproduce that state with a seeded
     shuffle of a 128-node region and give each job a random permutation
     of its own traffic. *)
  let prng = Sim.Prng.create ~seed:2021 in
  let region = Array.init 128 Fun.id in
  Sim.Prng.shuffle prng region;
  let job_a = Array.sub region 0 64 in
  let job_b = Array.sub region 64 64 in
  let perm_flows nodes =
    let p = Sim.Prng.permutation prng (Array.length nodes) in
    Array.to_list (Array.mapi (fun i pi -> (nodes.(i), nodes.(pi))) p)
  in
  let paths_a = Dmodk.routes topo (perm_flows job_a) in
  let paths_b = Dmodk.routes topo (perm_flows job_b) in
  let r = Congestion.analyze [ (0, paths_a); (1, paths_b) ] in
  Format.printf "Baseline placement, D-mod-k routing:@.  %a@." Congestion.pp_report r;
  Format.printf "  -> %d%% of flows cross a channel another job is using@.@."
    (100 * r.interfered_flows / r.total_flows);

  (* --- Routing-based mitigation ------------------------------------- *)
  (* Same placement, but a global controller re-routes every flow onto
     the least-loaded minimal path (Scheduling-Aware Routing / AFAR
     style).  Better — but interference remains, and no routing can do
     better than the pigeonhole bound. *)
  let flows_a = perm_flows job_a and flows_b = perm_flows job_b in
  let greedy_paths = Greedy.route topo (flows_a @ flows_b) in
  let na = List.length flows_a in
  let ga = List.filteri (fun i _ -> i < na) greedy_paths in
  let gb = List.filteri (fun i _ -> i >= na) greedy_paths in
  let r2 = Congestion.analyze [ (0, ga); (1, gb) ] in
  Format.printf "Same placement, load-aware rerouting (SAR/AFAR style):@.  %a@."
    Congestion.pp_report r2;
  Format.printf
    "  -> reduced, not eliminated; no routing can beat the pigeonhole bound (%d here)@.@."
    (Greedy.lower_bound_load topo (flows_a @ flows_b));

  (* --- Jigsaw ------------------------------------------------------- *)
  let state = State.create topo in
  let alloc_job job size =
    match Jigsaw.get_allocation state ~job ~size with
    | Some p ->
        State.claim_exn state (Partition.to_alloc topo p ~bw:1.0);
        p
    | None -> failwith "allocation failed on an empty machine"
  in
  let pa = alloc_job 0 64 in
  let pb = alloc_job 1 64 in
  let route p =
    let n = Partition.node_count p in
    match
      Rearrange.route_permutation topo p
        ~perm:(Rearrange.demo_permutation ~n ~shift:1)
    with
    | Ok paths -> paths
    | Error m -> failwith m
  in
  let r =
    Congestion.analyze [ (0, route pa); (1, route pb) ]
  in
  Format.printf "Jigsaw partitions, partition routing:@.  %a@." Congestion.pp_report r;
  Format.printf "  -> every channel carries at most one flow; interference is structurally impossible@.";

  (* The isolation is not luck: the two partitions share no cable. *)
  let a = Partition.to_alloc topo pa ~bw:1.0 in
  let b = Partition.to_alloc topo pb ~bw:1.0 in
  Format.printf "  partitions disjoint: %b@." (Alloc.disjoint a b)
