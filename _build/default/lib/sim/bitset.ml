type t = { n : int; words : int array }

let bits_per_word = 63
let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0, %d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  let full_words = t.n / bits_per_word in
  Array.fill t.words 0 full_words (lnot 0 land ((1 lsl bits_per_word) - 1));
  let rem = t.n mod bits_per_word in
  if rem > 0 then t.words.(full_words) <- (1 lsl rem) - 1

let copy t = { n = t.n; words = Array.copy t.words }

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> x = y) a.words b.words

let iter t ~f =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let lsb = !word land - !word in
      (* Index of the isolated lowest set bit. *)
      let bit =
        let rec idx v acc = if v = 1 then acc else idx (v lsr 1) (acc + 1) in
        idx lsb 0
      in
      f ((w * bits_per_word) + bit);
      word := !word land (!word - 1)
    done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun i -> acc := f !acc i);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))

let of_list n xs =
  let t = create n in
  List.iter (fun i -> add t i) xs;
  t

let first_clear_from t start =
  if start < 0 then invalid_arg "Bitset.first_clear_from: negative index";
  let rec go i =
    if i >= t.n then None else if not (mem t i) then Some i else go (i + 1)
  in
  go start

let count_range t ~lo ~hi =
  let lo = Stdlib.max lo 0 and hi = Stdlib.min hi t.n in
  let count = ref 0 in
  for i = lo to hi - 1 do
    if mem t i then incr count
  done;
  !count

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let disjoint a b =
  check_same a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land b.words.(w) <> 0 then ok := false
  done;
  !ok

let union_into ~dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done
