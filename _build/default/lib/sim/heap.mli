(** Imperative binary min-heaps.

    The heap is polymorphic in its element type and ordered by a comparison
    function supplied at creation time.  All operations are the standard
    array-backed binary-heap operations: [add] and [pop_min] are O(log n),
    [peek_min] is O(1). *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest element on
    top).  [cmp] must be a total order. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x] into [h].  Duplicates are allowed. *)

val peek_min : 'a t -> 'a option
(** [peek_min h] is the smallest element of [h] without removing it, or
    [None] if [h] is empty. *)

val pop_min : 'a t -> 'a option
(** [pop_min h] removes and returns the smallest element of [h], or [None]
    if [h] is empty. *)

val pop_min_exn : 'a t -> 'a
(** [pop_min_exn h] is like {!pop_min} but raises [Invalid_argument] on an
    empty heap. *)

val clear : 'a t -> unit
(** [clear h] removes every element from [h]. *)

val iter_unordered : 'a t -> f:('a -> unit) -> unit
(** [iter_unordered h ~f] applies [f] to every element of [h] in
    unspecified order.  [f] must not modify [h]. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] is every element of [h] in ascending order.  [h] is
    left unchanged.  O(n log n). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** [of_list ~cmp xs] is a heap containing exactly the elements of [xs]. *)
