(** In-place ascending sort specialized to [int array].

    Same result as [Array.sort Int.compare] but with the comparison
    compiled monomorphically — an order of magnitude faster on the
    few-hundred-entry id arrays built for every allocation. *)

val sort : int array -> unit
(** Sort ascending, in place. *)

val of_list : int list -> int array
(** [of_list l] is [l] as a freshly sorted array. *)
