lib/sim/heap.mli:
