lib/sim/engine.mli:
