lib/sim/bitset.ml: Array List Printf Stdlib
