lib/sim/stats.mli:
