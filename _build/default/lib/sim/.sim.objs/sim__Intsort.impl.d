lib/sim/intsort.ml: Array
