lib/sim/bitset.mli:
