lib/sim/prng.mli:
