lib/sim/intsort.mli:
