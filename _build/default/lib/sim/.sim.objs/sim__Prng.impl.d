lib/sim/prng.ml: Array Float Int64
