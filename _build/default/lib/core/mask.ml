let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let full n = (1 lsl n) - 1
let mem mask i = mask land (1 lsl i) <> 0

let to_list mask =
  let rec go m acc =
    if m = 0 then List.rev acc
    else begin
      let lsb = m land -m in
      let rec idx v acc = if v = 1 then acc else idx (v lsr 1) (acc + 1) in
      go (m land (m - 1)) (idx lsb 0 :: acc)
    end
  in
  go mask []

let of_list l = List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 l
let of_array a = Array.fold_left (fun acc i -> acc lor (1 lsl i)) 0 a
let to_array mask = Array.of_list (to_list mask)

let take_lowest mask k =
  if popcount mask < k then invalid_arg "Mask.take_lowest: not enough bits";
  let rec go m taken acc =
    if taken = k then acc
    else begin
      let lsb = m land -m in
      go (m land (m - 1)) (taken + 1) (acc lor lsb)
    end
  in
  go mask 0 0

let take_preferring mask ~prefer k =
  if popcount mask < k then invalid_arg "Mask.take_preferring: not enough bits";
  let preferred = mask land prefer in
  let from_pref = min k (popcount preferred) in
  let first = take_lowest preferred from_pref in
  let rest = take_lowest (mask land lnot preferred) (k - from_pref) in
  first lor rest

let subset a ~of_ = a land lnot of_ = 0
