open Fattree

type leaf_info = { leaf : int; free : int; up_mask : int }

let pod_leaf_infos st ~pod ~demand =
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  Array.init m2 (fun l ->
      let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
      {
        leaf;
        free = State.free_nodes_on_leaf st leaf;
        up_mask = State.leaf_up_mask st ~leaf ~demand;
      })

type pod_solution = { leaf_set : int array; cap_mask : int }

let materialize_leaf st ~leaf ~take ~l2_indices =
  if Array.length l2_indices <> take then
    invalid_arg "Search.materialize_leaf: l2_indices length mismatch";
  let topo = State.topo st in
  let first = Topology.leaf_first_node topo leaf in
  let slots = State.free_slot_mask st leaf in
  let chosen = Mask.take_lowest slots take in
  let nodes = Array.map (fun s -> first + s) (Mask.to_array chosen) in
  { Partition.leaf = leaf; nodes; l2_indices }

(* Backtracking over the pod's leaves in index order, mirroring find_L2 of
   Algorithm 1: each recursive level picks the next full leaf strictly
   after the previous one and narrows the running uplink-capability
   intersection.  At the base case we look for the remainder leaf among
   leaves not already used. *)
let find_two_level st ~job ~pod ~(shape : Shapes.two_level) ~demand =
  let infos = pod_leaf_infos st ~pod ~demand in
  let m2 = Array.length infos in
  let { Shapes.n_l; l_t; n_rl } = shape in
  let candidate info = info.free >= n_l && Mask.popcount info.up_mask >= n_l in
  let used = Array.make m2 false in
  let find_remainder cap_mask =
    (* A remainder leaf needs n_rl free nodes and n_rl available uplinks
       whose indices can be covered by a choice of S inside cap_mask. *)
    let rec go l =
      if l >= m2 then None
      else begin
        let info = infos.(l) in
        let overlap = info.up_mask land cap_mask in
        if
          (not used.(l))
          && info.free >= n_rl
          && Mask.popcount overlap >= n_rl
        then Some (l, overlap)
        else go (l + 1)
      end
    in
    go 0
  in
  let chosen = ref [] in
  let rec pick start taken cap_mask =
    if taken = l_t then begin
      (* Base case: fix S and, if needed, the remainder leaf. *)
      if n_rl = 0 then begin
        let s = Mask.take_lowest cap_mask n_l in
        Some (s, None)
      end
      else begin
        match find_remainder cap_mask with
        | None -> None
        | Some (l, overlap) ->
            (* Choose S within cap_mask preferring indices reachable by the
               remainder leaf, then Sr inside S ∩ overlap. *)
            let s = Mask.take_preferring cap_mask ~prefer:overlap n_l in
            let sr = Mask.take_lowest (s land overlap) n_rl in
            Some (s, Some (l, sr))
      end
    end
    else begin
      let rec try_leaf l =
        if l >= m2 then None
        else begin
          let info = infos.(l) in
          let cap' = cap_mask land info.up_mask in
          if candidate info && Mask.popcount cap' >= n_l then begin
            used.(l) <- true;
            chosen := l :: !chosen;
            match pick (l + 1) (taken + 1) cap' with
            | Some _ as ok -> ok
            | None ->
                used.(l) <- false;
                chosen := List.tl !chosen;
                try_leaf (l + 1)
          end
          else try_leaf (l + 1)
        end
      in
      try_leaf start
    end
  in
  match pick 0 0 (lnot 0) with
  | None -> None
  | Some (s_mask, rem) ->
      let s = Mask.to_array s_mask in
      let full_leaves =
        List.rev !chosen
        |> List.map (fun l ->
               materialize_leaf st ~leaf:infos.(l).leaf ~take:n_l
                 ~l2_indices:(Array.copy s))
        |> Array.of_list
      in
      let rem_leaf =
        Option.map
          (fun (l, sr_mask) ->
            materialize_leaf st ~leaf:infos.(l).leaf ~take:n_rl
              ~l2_indices:(Mask.to_array sr_mask))
          rem
      in
      ignore job;
      Some { Partition.pod; full_leaves; rem_leaf; spine_sets = [||] }

let find_all st ~pod ~l_t ~n_l ~demand ~budget =
  let infos = pod_leaf_infos st ~pod ~demand in
  let m2 = Array.length infos in
  let candidate info = info.free >= n_l && Mask.popcount info.up_mask >= n_l in
  let sols = ref [] in
  let chosen = ref [] in
  let rec pick start taken cap_mask =
    if !budget <= 0 then ()
    else begin
      decr budget;
      if taken = l_t then
        sols :=
          {
            leaf_set =
              Array.of_list (List.rev_map (fun l -> infos.(l).leaf) !chosen);
            cap_mask;
          }
          :: !sols
      else
        for l = start to m2 - 1 do
          let info = infos.(l) in
          let cap' = cap_mask land info.up_mask in
          if candidate info && Mask.popcount cap' >= n_l then begin
            chosen := l :: !chosen;
            pick (l + 1) (taken + 1) cap';
            chosen := List.tl !chosen
          end
        done
    end
  in
  pick 0 0 (lnot 0);
  List.rev !sols
