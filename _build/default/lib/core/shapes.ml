open Fattree

type two_level = { n_l : int; l_t : int; n_rl : int }

type three_level = {
  n_l3 : int;
  l_t3 : int;
  t : int;
  n_rt : int;
  l_rt : int;
  n_rl3 : int;
}

let two_level topo ~size =
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  if size <= 0 then []
  else begin
    let shapes = ref [] in
    for n_l = 1 to min m1 size do
      let l_t = size / n_l in
      let n_rl = size mod n_l in
      let leaves_needed = l_t + if n_rl > 0 then 1 else 0 in
      if l_t >= 1 && leaves_needed <= m2 then
        shapes := { n_l; l_t; n_rl } :: !shapes
    done;
    (* Prepending while ascending in n_l leaves the largest n_l first:
       dense-first. *)
    !shapes
  end

let three_level topo ~size ~n_l =
  let m2 = Topology.m2 topo and m3 = Topology.m3 topo in
  if size <= 0 || n_l < 1 || n_l > Topology.m1 topo then []
  else begin
    let shapes = ref [] in
    for l_t = 1 to min m2 (size / n_l) do
      let n_t = l_t * n_l in
      let t = size / n_t in
      let n_rt = size mod n_t in
      let pods_needed = t + if n_rt > 0 then 1 else 0 in
      let single_pod = t = 1 && n_rt = 0 in
      (* The remainder tree itself must fit in a pod: it has l_rt full
         leaves plus possibly a remainder leaf; l_rt < l_t <= m2 always
         holds, so it fits whenever full trees do. *)
      if t >= 1 && pods_needed <= m3 && not single_pod then begin
        let l_rt = n_rt / n_l in
        let n_rl3 = n_rt mod n_l in
        shapes := { n_l3 = n_l; l_t3 = l_t; t; n_rt; l_rt; n_rl3 } :: !shapes
      end
    done;
    (* Prepending while ascending in l_t leaves the largest l_t first:
       dense-first (fewest pods touched). *)
    !shapes
  end

let three_level_all topo ~size =
  let m1 = Topology.m1 topo in
  let acc = ref [] in
  for n_l = 1 to m1 do
    acc := three_level topo ~size ~n_l @ !acc
  done;
  (* [acc] now lists n_l = m1 first (dense-first). *)
  !acc

let pp_two_level ppf s =
  Format.fprintf ppf "2L(n_l=%d, l_t=%d, n_rl=%d)" s.n_l s.l_t s.n_rl

let pp_three_level ppf s =
  Format.fprintf ppf "3L(n_l=%d, l_t=%d, t=%d, n_rt=%d=(%d*n_l+%d))" s.n_l3
    s.l_t3 s.t s.n_rt s.l_rt s.n_rl3
