lib/core/mask.ml: Array List
