lib/core/jigsaw.mli: Fattree Partition
