lib/core/mask.mli:
