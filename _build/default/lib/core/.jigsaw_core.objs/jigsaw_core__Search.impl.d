lib/core/search.ml: Array Fattree List Mask Option Partition Shapes State Topology
