lib/core/shapes.mli: Fattree Format
