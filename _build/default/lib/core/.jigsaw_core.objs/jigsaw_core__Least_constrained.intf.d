lib/core/least_constrained.mli: Fattree Partition
