lib/core/jigsaw.ml: Array Fattree List Mask Option Partition Search Shapes State Topology
