lib/core/least_constrained.ml: Array Fattree List Mask Partition Search Shapes State Topology
