lib/core/shapes.ml: Fattree Format Topology
