lib/core/conditions.ml: Array Fattree Format List Partition Printf Result Topology
