lib/core/conditions.mli: Fattree Partition
