lib/core/partition.mli: Fattree Format
