lib/core/search.mli: Fattree Partition Shapes
