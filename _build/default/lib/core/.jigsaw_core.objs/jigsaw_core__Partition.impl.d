lib/core/partition.ml: Alloc Array Fattree Format List Sim String Topology
