lib/core/partition.ml: Alloc Array Fattree Format List String Topology
