(** Small-integer bitmask helpers.

    Allocation search state is kept as OCaml-int bitmasks over switch
    indices (at most [m1] or [m2] bits — 14 for the largest radix-28
    clusters in the paper, always well under the 63 available). *)

val popcount : int -> int
val full : int -> int
(** [full n] is the mask with bits [0 .. n-1] set. *)

val mem : int -> int -> bool
(** [mem mask i] tests bit [i]. *)

val to_list : int -> int list
(** Set bit indices, ascending. *)

val of_list : int list -> int
val of_array : int array -> int
val to_array : int -> int array

val take_lowest : int -> int -> int
(** [take_lowest mask k] is the mask of the [k] lowest set bits of [mask].
    Raises [Invalid_argument] if [mask] has fewer than [k] bits. *)

val take_preferring : int -> prefer:int -> int -> int
(** [take_preferring mask ~prefer k] picks [k] bits of [mask], drawing
    from [mask land prefer] first (lowest-first), then from the rest of
    [mask].  Raises [Invalid_argument] if [mask] has fewer than [k]
    bits. *)

val subset : int -> of_:int -> bool
(** [subset a ~of_:b] is true iff every bit of [a] is set in [b]. *)
