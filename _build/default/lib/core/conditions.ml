open Fattree

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun m -> Error m) fmt

let sorted_unique arr =
  let ok = ref true in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) <= arr.(i - 1) then ok := false
  done;
  !ok

let int_set arr = List.sort_uniq compare (Array.to_list arr)

let subset a b =
  let sb = int_set b in
  List.for_all (fun x -> List.mem x sb) (int_set a)

let arrays_equal_as_sets a b = int_set a = int_set b

(* Structural sanity of a single leaf allocation. *)
let check_leaf topo ~pod (la : Partition.leaf_alloc) =
  let m1 = Topology.m1 topo in
  if la.leaf < 0 || la.leaf >= Topology.num_leaves topo then
    fail "leaf id %d out of range" la.leaf
  else if Topology.leaf_pod topo la.leaf <> pod then
    fail "leaf %d is not in pod %d" la.leaf pod
  else if Array.length la.nodes = 0 then fail "leaf %d allocates no nodes" la.leaf
  else if not (sorted_unique la.nodes) then
    fail "leaf %d: nodes not sorted/unique" la.leaf
  else if not (sorted_unique la.l2_indices) then
    fail "leaf %d: l2 indices not sorted/unique" la.leaf
  else if Array.exists (fun i -> i < 0 || i >= m1) la.l2_indices then
    fail "leaf %d: l2 index out of range" la.leaf
  else if Array.length la.l2_indices <> Array.length la.nodes then
    fail "leaf %d: unbalanced links (%d nodes, %d uplinks)" la.leaf
      (Array.length la.nodes)
      (Array.length la.l2_indices)
  else if
    Array.exists
      (fun n ->
        n < 0
        || n >= Topology.num_nodes topo
        || Topology.node_leaf topo n <> la.leaf)
      la.nodes
  then fail "leaf %d: node not on this leaf" la.leaf
  else Ok ()

let check_tree topo (tr : Partition.tree_alloc) =
  if tr.pod < 0 || tr.pod >= Topology.pods topo then
    fail "pod %d out of range" tr.pod
  else begin
    let rec leaves_ok = function
      | [] -> Ok ()
      | la :: rest ->
          let* () = check_leaf topo ~pod:tr.pod la in
          leaves_ok rest
    in
    let all =
      Array.to_list tr.full_leaves
      @ match tr.rem_leaf with None -> [] | Some l -> [ l ]
    in
    let* () = leaves_ok all in
    let ids = List.map (fun (la : Partition.leaf_alloc) -> la.leaf) all in
    if List.length (List.sort_uniq compare ids) <> List.length ids then
      fail "pod %d: duplicate leaf" tr.pod
    else Ok ()
  end

(* Conditions 1-4 within one tree: full leaves share node count and the
   same L2 set; the remainder leaf is smaller and uses a strict subset. *)
let check_tree_shape topo (tr : Partition.tree_alloc) ~n_l ~s =
  ignore topo;
  let bad = ref None in
  Array.iter
    (fun (la : Partition.leaf_alloc) ->
      if !bad = None then begin
        if Array.length la.nodes <> n_l then
          bad :=
            Some
              (Printf.sprintf "condition 2: leaf %d has %d nodes, expected %d"
                 la.leaf (Array.length la.nodes) n_l)
        else if not (arrays_equal_as_sets la.l2_indices s) then
          bad :=
            Some
              (Printf.sprintf "condition 4: leaf %d L2 set differs from S"
                 la.leaf)
      end)
    tr.full_leaves;
  match !bad with
  | Some m -> Error m
  | None -> (
      match tr.rem_leaf with
      | None -> Ok ()
      | Some la ->
          if Array.length la.nodes >= n_l then
            fail "condition 2: remainder leaf %d has >= n_l nodes" la.leaf
          else if not (subset la.l2_indices s) then
            fail "condition 4: remainder leaf %d L2 set not a subset of S"
              la.leaf
          else Ok ())

(* Condition 6 for one tree: every allocated L2 switch i has a spine set
   sized to its downlink count. *)
let check_tree_spines topo (tr : Partition.tree_alloc) ~s =
  let m2 = Topology.m2 topo in
  let downlinks i =
    let from_full = Array.length tr.full_leaves in
    let from_rem =
      match tr.rem_leaf with
      | Some la when Array.exists (fun x -> x = i) la.l2_indices -> 1
      | _ -> 0
    in
    from_full + from_rem
  in
  let spine_idx = tr.spine_sets in
  let declared = Array.map fst spine_idx in
  (* Spine sets must be declared for exactly the L2 indices with nonzero
     downlinks. *)
  let used = List.filter (fun i -> downlinks i > 0) (int_set s) in
  if not (arrays_equal_as_sets declared (Array.of_list used)) then
    fail "condition 6: pod %d declares spine sets for wrong L2 indices" tr.pod
  else begin
    let bad = ref None in
    Array.iter
      (fun (i, spines) ->
        if !bad = None then begin
          if not (sorted_unique spines) then
            bad := Some (Printf.sprintf "pod %d L2[%d]: spine set not sorted" tr.pod i)
          else if Array.exists (fun j -> j < 0 || j >= m2) spines then
            bad := Some (Printf.sprintf "pod %d L2[%d]: spine index out of range" tr.pod i)
          else if Array.length spines <> downlinks i then
            bad :=
              Some
                (Printf.sprintf
                   "condition 6: pod %d L2[%d] has %d uplinks but %d downlinks"
                   tr.pod i (Array.length spines) (downlinks i))
        end)
      spine_idx;
    match !bad with Some m -> Error m | None -> Ok ()
  end

let find_spine_set (tr : Partition.tree_alloc) i =
  let found = ref None in
  Array.iter (fun (j, s) -> if i = j then found := Some s) tr.spine_sets;
  !found

let check ?(require_exact_size = true) topo (p : Partition.t) =
  let trees =
    Array.to_list p.full_trees
    @ match p.rem_tree with None -> [] | Some tr -> [ tr ]
  in
  if trees = [] then fail "empty partition"
  else begin
    let rec struct_ok = function
      | [] -> Ok ()
      | tr :: rest ->
          let* () = check_tree topo tr in
          struct_ok rest
    in
    let* () = struct_ok trees in
    let pods = List.map (fun (tr : Partition.tree_alloc) -> tr.pod) trees in
    if List.length (List.sort_uniq compare pods) <> List.length pods then
      fail "duplicate pod"
    else begin
      (* Condition 3 placement of the remainder leaf: only the remainder
         tree (or the single tree of a two-level partition) may have one. *)
      let* () =
        let offending =
          Array.exists
            (fun (tr : Partition.tree_alloc) -> tr.rem_leaf <> None)
            p.full_trees
        in
        if offending && (Array.length p.full_trees > 1 || p.rem_tree <> None)
        then fail "condition 3: remainder leaf outside the remainder tree"
        else Ok ()
      in
      (* Establish n_l and S from the first full leaf anywhere. *)
      let first_leaf =
        let rec go = function
          | [] -> None
          | (tr : Partition.tree_alloc) :: rest ->
              if Array.length tr.full_leaves > 0 then Some tr.full_leaves.(0)
              else go rest
        in
        go trees
      in
      let* n_l, s =
        match first_leaf with
        | Some la -> Ok (Array.length la.nodes, la.l2_indices)
        | None -> (
            (* A partition consisting of only a remainder leaf: legal only
               as a single-leaf two-level allocation, in which case that
               leaf is the "full" leaf; reject the degenerate shape. *)
            match trees with
            | [ { rem_leaf = Some _; _ } ] ->
                fail "degenerate: lone remainder leaf (should be a full leaf)"
            | _ -> fail "no full leaf in partition")
      in
      (* Conditions 2 and 4-5 per tree. *)
      let rec shapes_ok = function
        | [] -> Ok ()
        | tr :: rest ->
            let* () = check_tree_shape topo tr ~n_l ~s in
            shapes_ok rest
      in
      let* () = shapes_ok trees in
      (* Condition 1: full trees carry equal node counts; remainder fewer. *)
      let tree_nodes (tr : Partition.tree_alloc) =
        Array.fold_left
          (fun acc (la : Partition.leaf_alloc) -> acc + Array.length la.nodes)
          (match tr.rem_leaf with
          | None -> 0
          | Some la -> Array.length la.nodes)
          tr.full_leaves
      in
      let* n_t =
        match Array.to_list p.full_trees with
        | [] -> fail "no full tree"
        | tr :: rest ->
            let n = tree_nodes tr in
            if List.for_all (fun tr' -> tree_nodes tr' = n) rest then Ok n
            else fail "condition 1: full trees carry unequal node counts"
      in
      let* () =
        match p.rem_tree with
        | None -> Ok ()
        | Some tr ->
            if tree_nodes tr >= n_t then
              fail "condition 1: remainder tree not smaller than full trees"
            else Ok ()
      in
      (* Full trees must also have equal leaf counts (implied by equal node
         counts and uniform n_l, but check the representation anyway). *)
      let* l_t =
        match Array.to_list p.full_trees with
        | [] -> fail "no full tree"
        | tr :: rest ->
            let l = Array.length tr.full_leaves in
            if
              List.for_all
                (fun (tr' : Partition.tree_alloc) ->
                  Array.length tr'.full_leaves = l)
                rest
            then Ok l
            else fail "condition 1: full trees have unequal leaf counts"
      in
      (* Full trees never contain the remainder leaf (checked above), so a
         full tree's node count is l_t * n_l by construction. *)
      let is_two_level = Partition.kind p = Two_level in
      let* () =
        if is_two_level then
          (* Minimality: single-pod partitions allocate no spine cables
             (enforced by [kind]); nothing further to check. *)
          Ok ()
        else begin
          (* Condition 6: consistent spine sets. *)
          let rec spine_shape_ok = function
            | [] -> Ok ()
            | tr :: rest ->
                let* () = check_tree_spines topo tr ~s in
                spine_shape_ok rest
          in
          let* () = spine_shape_ok trees in
          (* Each full tree's S*_i must match across trees and have size
             l_t; the remainder tree's must be a subset. *)
          let* () =
            match Array.to_list p.full_trees with
            | [] -> fail "no full tree"
            | tr0 :: rest ->
                let rec per_index = function
                  | [] -> Ok ()
                  | i :: more -> (
                      match find_spine_set tr0 i with
                      | None -> fail "condition 6: missing spine set for L2[%d]" i
                      | Some s0 ->
                          if Array.length s0 <> l_t then
                            fail
                              "condition 6: |S*_%d| = %d but l_t = %d" i
                              (Array.length s0) l_t
                          else begin
                            let mismatch =
                              List.exists
                                (fun tr' ->
                                  match find_spine_set tr' i with
                                  | None -> true
                                  | Some s' -> not (arrays_equal_as_sets s0 s'))
                                rest
                            in
                            if mismatch then
                              fail
                                "condition 6: S*_%d differs across full trees" i
                            else begin
                              let rem_ok =
                                match p.rem_tree with
                                | None -> true
                                | Some tr -> (
                                    match find_spine_set tr i with
                                    | None -> true (* unused in remainder *)
                                    | Some sr -> subset sr s0)
                              in
                              if rem_ok then per_index more
                              else
                                fail
                                  "condition 6: remainder S*r_%d not a subset"
                                  i
                            end
                          end)
                in
                per_index (int_set s)
          in
          Ok ()
        end
      in
      (* High utilization: exactly the requested node count. *)
      if require_exact_size && Partition.node_count p <> p.size then
        fail "utilization: allocated %d nodes for a request of %d"
          (Partition.node_count p) p.size
      else Ok ()
    end
  end

let is_legal ?require_exact_size topo p =
  Result.is_ok (check ?require_exact_size topo p)
