(** The formal allocation conditions of paper §3.2, as an executable
    checker.

    [check] validates a {!Partition.t} against:

    - {b structural sanity}: ids in range, nodes on their stated leaves,
      leaves in their stated pods, no duplicates, sorted index arrays;
    - {b balanced links}: every leaf uplinks to exactly as many L2
      switches as it has allocated nodes (condition for both full
      bandwidth and minimal link use);
    - {b condition 1–3} (node distribution): full trees carry equal node
      counts; within every tree, full leaves carry equal counts [n_l];
      at most one remainder leaf, with fewer than [n_l] nodes, located in
      the remainder tree;
    - {b condition 4}: within each tree, full leaves uplink to a common
      L2 index set [S] ([|S| = n_l]); the remainder leaf uplinks to
      [Sr ⊂ S];
    - {b condition 5}: the set [S] is the same (same indices) in every
      tree of the allocation;
    - {b condition 6} (spine level): for each [i ∈ S], the L2 switch at
      index [i] of every full tree uplinks to the same spine index set
      [S*_i] with [|S*_i| = l_t] (balanced with its downlinks); the
      remainder tree's switch uplinks to [S*r_i ⊆ S*_i] sized to its own
      downlink count;
    - {b two-level minimality}: a single-pod partition must not allocate
      spine cables;
    - {b high-utilization} (optional): the node count equals the
      requested size ([N = Nr]).  LaaS-style padded partitions set
      [require_exact_size:false]. *)

val check :
  ?require_exact_size:bool ->
  Fattree.Topology.t ->
  Partition.t ->
  (unit, string) result
(** [check topo p] is [Ok ()] iff [p] satisfies every condition above.
    [require_exact_size] defaults to [true].  The error string names the
    first violated condition. *)

val is_legal : ?require_exact_size:bool -> Fattree.Topology.t -> Partition.t -> bool
(** [is_legal topo p = Result.is_ok (check topo p)]. *)
