(** Pod-level (two-level) allocation search.

    This is the [find_L2]/[find_all_L2] machinery of Algorithm 1: finding
    sets of leaves within one pod that can carry a job (or a tree's share
    of a job) while satisfying the common-L2-set condition.

    A {e candidate leaf} for [n] nodes at link demand [d] is one with at
    least [n] free nodes and at least [n] uplink cables with remaining
    capacity >= [d].  A {e pod solution} for [l_t] leaves of [n_l] nodes
    is a set of candidate leaves whose uplink-availability masks intersect
    in at least [n_l] L2 indices; the intersection is the solution's
    capability mask, from which the common set [S] is later drawn. *)

type leaf_info = {
  leaf : int;  (** Global leaf id. *)
  free : int;  (** Free node count. *)
  up_mask : int;  (** L2 indices (bitmask over [0..m1)) with capacity. *)
}

val pod_leaf_infos :
  Fattree.State.t -> pod:int -> demand:float -> leaf_info array
(** Per-leaf availability for every leaf of [pod], in leaf order. *)

type pod_solution = {
  leaf_set : int array;  (** Global leaf ids, ascending. *)
  cap_mask : int;  (** Intersection of the leaves' uplink masks. *)
}

val find_two_level :
  Fattree.State.t ->
  job:int ->
  pod:int ->
  shape:Shapes.two_level ->
  demand:float ->
  Partition.tree_alloc option
(** First single-pod allocation matching [shape] (backtracking over leaves
    in index order), or [None].  The returned tree allocation carries
    concrete nodes, L2 index sets (including the remainder leaf's
    [Sr ⊂ S]) and no spine sets. *)

val find_all :
  Fattree.State.t ->
  pod:int ->
  l_t:int ->
  n_l:int ->
  demand:float ->
  budget:int ref ->
  pod_solution list
(** Every set of [l_t] candidate leaves (for [n_l] nodes each) whose masks
    intersect in >= [n_l] indices.  Decrements [budget] per search step
    and stops early (returning the solutions found so far) when it
    reaches zero.  Solutions are emitted in lexicographic leaf order. *)

val materialize_leaf :
  Fattree.State.t ->
  leaf:int ->
  take:int ->
  l2_indices:int array ->
  Partition.leaf_alloc
(** [materialize_leaf st ~leaf ~take ~l2_indices] picks the [take] lowest
    free nodes of [leaf] and pairs them with the given uplink index set
    (which must have length [take]). *)
