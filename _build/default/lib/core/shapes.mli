(** Enumeration of legal allocation shapes (decompositions).

    A job of [size] nodes can be placed two-level (single pod) as
    [size = l_t * n_l + n_rl] with [n_rl < n_l], or three-level as
    [size = t * n_t + n_rt] with [n_t = l_t * n_l], [n_rt < n_t] and
    [n_l | n_t].  Because [n_rl = size mod n_l] and [n_rt = size mod n_t]
    are forced, a two-level shape is determined by [n_l] alone and a
    three-level shape by [(n_l, l_t)].

    Shapes are emitted dense-first (largest [n_l], then largest [l_t]):
    denser placements touch fewer leaves/pods, which reduces the spread of
    partially-used switches across the machine (paper §4's motivation for
    restricting the condition space). *)

type two_level = {
  n_l : int;  (** Nodes per full leaf. *)
  l_t : int;  (** Number of full leaves. *)
  n_rl : int;  (** Nodes on the remainder leaf (0 = none). *)
}

type three_level = {
  n_l3 : int;  (** Nodes per full leaf. *)
  l_t3 : int;  (** Full leaves per full tree. *)
  t : int;  (** Number of full trees. *)
  n_rt : int;  (** Nodes in the remainder tree (0 = none). *)
  l_rt : int;  (** Full leaves in the remainder tree. *)
  n_rl3 : int;  (** Nodes on the remainder leaf of the remainder tree. *)
}

val two_level : Fattree.Topology.t -> size:int -> two_level list
(** All two-level shapes for a job of [size] nodes on the given topology:
    [n_l] ranges over [min m1 size] down to 1, subject to the pod having
    enough leaves.  Empty if [size] exceeds a pod or is non-positive. *)

val three_level :
  Fattree.Topology.t -> size:int -> n_l:int -> three_level list
(** All three-level shapes with the given (fixed) [n_l]: [l_t] ranges from
    [min m2 (size/n_l)] down to 1, subject to pod count.  Single-pod
    shapes ([t = 1], no remainder) are omitted — they are two-level
    shapes and are searched first.  Empty if no shape fits. *)

val three_level_all : Fattree.Topology.t -> size:int -> three_level list
(** Union of {!three_level} over [n_l = m1 .. 1] (dense-first) — the full
    least-constrained shape space. *)

val pp_two_level : Format.formatter -> two_level -> unit
val pp_three_level : Format.formatter -> three_level -> unit
