(** Least-constrained allocation search (the LC of LC+S, paper §5.2.3).

    Searches the {e full} condition space of §3.2 — any nodes-per-leaf
    value [n_l], not just full leaves — making it strictly more permissive
    than Jigsaw's three-level search.  Combined with fractional link
    demands (link sharing), this is the paper's theoretical near-optimal
    bounding scheduler.

    The search space is exponential in the tree size, so every search
    carries a step budget standing in for the paper's wall-clock timeout
    (§5.3); budget exhaustion returns [None] and the job stays queued. *)

val default_budget : int
(** Default step budget per allocation attempt.  Chosen so that typical
    attempts complete while adversarial states cut off in well under a
    second of wall-clock time. *)

val probe :
  ?demand:float ->
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.probe
(** Like {!get_allocation} but distinguishes a definitive no-fit
    ([Infeasible]) from a budget cut-off ([Exhausted]) — the latter is
    common for this scheduler and must never enter a no-fit memo. *)

val get_allocation :
  ?demand:float ->
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.t option
(** [get_allocation st ~job ~size ~demand] is a condition-compliant
    partition whose cables all have at least [demand] (default 1.0)
    remaining capacity, or [None].  Two-level placements are tried first,
    then three-level shapes over every [n_l] (dense-first). *)
