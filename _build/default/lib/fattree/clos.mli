(** The unfolded (Clos) view of a three-level fat-tree.

    Paper Figure 4: every node of the folded tree appears twice — as an
    input on the left and an output on the right — and each switch level
    becomes a {e stage}; a three-level fat-tree unfolds into a five-stage
    Clos network

    {v inputs -> leaves -> L2 -> spines -> L2 -> leaves -> outputs v}

    with the center three stages forming [m1] disjoint three-stage Clos
    networks (the center networks T*_i the rearrangeability proof routes
    through).  This module provides the coordinate system of that view:
    stages, positions within stages, and the center-network index of
    every middle-stage element.  [Routing.Rearrange] is the algorithmic
    user; the view itself is exposed for tests, diagnostics and
    visualization. *)

type stage =
  | In_leaf  (** Stage 1: leaves on the input side. *)
  | In_l2  (** Stage 2: L2 switches, input side. *)
  | Spine_stage  (** Stage 3: spines (the fold line). *)
  | Out_l2  (** Stage 4: L2 switches, output side. *)
  | Out_leaf  (** Stage 5: leaves on the output side. *)

val stage_index : stage -> int
(** 1 to 5, left to right. *)

val stage_width : Topology.t -> stage -> int
(** Number of switches in the stage ([m2*m3] for leaf stages, [m1*m3]
    for L2 stages, [m1*m2] for the spine stage). *)

val center_network : Topology.t -> stage:stage -> pos:int -> int option
(** [center_network t ~stage ~pos] is the index [i] of the center
    three-stage network (equivalently, the spine group / L2 index / T*_i)
    that the switch at [pos] of [stage] belongs to; [None] for the leaf
    stages, which feed every center network. *)

val input_of_node : Topology.t -> int -> int
(** Position of a node on the input side (equals the node id — inputs
    are ordered as the nodes are). *)

val output_of_node : Topology.t -> int -> int
(** Position of a node on the output side (also the node id). *)

val leaf_of_input : Topology.t -> int -> int
(** The stage-1 switch (global leaf id) an input position feeds. *)

val crossing_stages : Topology.t -> src:int -> dst:int -> int
(** How many stages a flow from [src] to [dst] traverses in the folded
    network's minimal route: 0 within a leaf, 2 within a pod (up to L2
    and back), 4 across pods (up to a spine and back).  The Clos view
    always shows 5 stages; this is the folded-path depth used by the
    routing modules. *)
