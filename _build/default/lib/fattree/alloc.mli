(** Flat allocation records.

    An [Alloc.t] is the resource-level view of a job's allocation: the set
    of nodes, the set of leaf–L2 cables and the set of L2–spine cables it
    holds, together with the per-cable bandwidth demand.  Exclusive
    (isolating) schedulers use demand 1.0 — the whole cable; the LC+S
    bounding scheduler uses fractional demands so that several jobs may
    share a cable.

    Structured, condition-checkable allocations live in
    [Jigsaw.Partition]; they flatten to this type for claiming and
    releasing resources in {!State}. *)

type t = {
  job : int;  (** Job identifier (caller-chosen; not interpreted). *)
  size : int;  (** Number of nodes the job {e requested}. *)
  nodes : int array;  (** Node ids held.  May exceed [size] for padding schedulers (LaaS). *)
  leaf_cables : int array;  (** Leaf–L2 cable ids held. *)
  l2_cables : int array;  (** L2–spine cable ids held. *)
  bw : float;  (** Per-cable demand in (0, 1]; 1.0 = exclusive. *)
}

val nodes_only : job:int -> size:int -> int array -> t
(** [nodes_only ~job ~size nodes] is an allocation holding [nodes] and no
    cables — the traditional-scheduler (Baseline) shape. *)

val exclusive :
  job:int ->
  size:int ->
  nodes:int array ->
  leaf_cables:int array ->
  l2_cables:int array ->
  t
(** An allocation with demand 1.0 on every listed cable. *)

val node_count : t -> int
(** [node_count a] is the number of nodes held (>= [a.size]). *)

val padding : t -> int
(** [padding a] is [node_count a - a.size] — nodes held but not requested
    (internal fragmentation). *)

val disjoint : t -> t -> bool
(** [disjoint a b] is true iff [a] and [b] share no node and no cable.
    (Cables shared fractionally still count as shared here; the check is
    used for conservative backfilling.) *)

val pp : Format.formatter -> t -> unit
