type t = {
  job : int;
  size : int;
  nodes : int array;
  leaf_cables : int array;
  l2_cables : int array;
  bw : float;
}

let nodes_only ~job ~size nodes =
  { job; size; nodes; leaf_cables = [||]; l2_cables = [||]; bw = 1.0 }

let exclusive ~job ~size ~nodes ~leaf_cables ~l2_cables =
  { job; size; nodes; leaf_cables; l2_cables; bw = 1.0 }

let node_count a = Array.length a.nodes
let padding a = node_count a - a.size

let disjoint a b =
  let module IS = Set.Make (Int) in
  let set arr = IS.of_list (Array.to_list arr) in
  let inter x y = not (IS.is_empty (IS.inter x y)) in
  (not (inter (set a.nodes) (set b.nodes)))
  && (not (inter (set a.leaf_cables) (set b.leaf_cables)))
  && not (inter (set a.l2_cables) (set b.l2_cables))

let pp ppf a =
  Format.fprintf ppf "alloc(job=%d, size=%d, nodes=%d, leaf-cables=%d, l2-cables=%d, bw=%g)"
    a.job a.size (Array.length a.nodes) (Array.length a.leaf_cables)
    (Array.length a.l2_cables) a.bw
