(** ASCII rendering of cluster occupancy.

    Debug- and demo-oriented views of who owns what: a pod-by-leaf map of
    node occupancy and a link-capacity map.  Jobs are shown by the last
    character of their id (or ['#'] for mixed/unknown), free nodes as
    ['.'], so fragmentation patterns — LaaS's padded leaves, TA's
    link-reserved-but-half-empty leaves, Jigsaw's packed pods — are
    visible at a glance. *)

type owner_fn = int -> int option
(** Maps a node id to the owning job id, or [None] if free.  Build one
    with {!owners_of_allocs} or supply your own. *)

val owners_of_allocs : Alloc.t list -> owner_fn
(** Ownership lookup over a set of live allocations. *)

val node_map :
  ?owners:owner_fn -> Topology.t -> State.t -> Format.formatter -> unit -> unit
(** [node_map topo st ppf ()] prints one line per pod; each leaf is a
    bracketed group of slot characters.  Without [owners], busy nodes
    print as ['#']. *)

val link_map : Topology.t -> State.t -> Format.formatter -> unit -> unit
(** Prints, per pod, the remaining capacity of each leaf's uplink set and
    each L2 switch's spine uplink set: ['-'] for a fully free cable,
    ['x'] for an exhausted one, digits [1-9] for fractional tenths
    remaining. *)

val summary : Topology.t -> State.t -> Format.formatter -> unit -> unit
(** One-line occupancy summary (busy/total nodes, fully-free leaves and
    pods). *)
