(** Full-bandwidth three-level fat-tree topologies.

    A three-level fat-tree (folded-Clos network) is parameterized, in XGFT
    notation, by [m1] (nodes per leaf switch), [m2] (leaves per pod, i.e.
    per two-level subtree) and [m3] (number of pods).  We model {e full
    bandwidth} trees, so the parent counts are fixed: each leaf has
    [w2 = m1] parent L2 switches and each L2 switch has [w3 = m2] parent
    spines.

    Structure of the maximal tree (no redundant spine connections):

    - each pod contains [m2] leaves and [m1] L2 switches; every leaf has
      exactly one cable to every L2 switch of its pod;
    - the spines form [m1] {e spine groups}, one per L2 index; group [i]
      contains [m2] spines and is a complete bipartite graph with the
      [i]-th L2 switch of every pod (one cable per L2/spine pair).  The
      paper denotes this group, with its switches and links, T*_i.

    A cluster built from radix-[k] switches is the instance
    [m1 = m2 = k/2], [m3 = k], giving [k^3/4] nodes: radix 16, 18, 22, 28
    yield the paper's 1024-, 1458-, 2662- and 5488-node clusters.

    Identifier scheme (all dense integers from 0):

    - node [n]: pod [n / (m1*m2)], leaf-in-pod [(n / m1) mod m2], slot
      [n mod m1];
    - leaf [l]: pod [l / m2], index-in-pod [l mod m2];
    - L2 switch [s]: pod [s / m1], index-in-pod [s mod m1] (which equals
      its spine-group index);
    - spine [sp]: group [sp / m2], index-in-group [sp mod m2].

    Cables are grouped in two tiers.  Node–leaf cables are identified with
    the node itself.  Leaf–L2 cables are [leaf * m1 + l2_index]; L2–spine
    cables are [l2 * m2 + spine_index_in_group]. *)

type t
(** An immutable topology description. *)

val create : nodes_per_leaf:int -> leaves_per_pod:int -> pods:int -> t
(** [create ~nodes_per_leaf ~leaves_per_pod ~pods] is a full-bandwidth
    three-level fat-tree with the given XGFT parameters [m1, m2, m3].  All
    parameters must be >= 1.  Raises [Invalid_argument] otherwise. *)

val of_radix : int -> t
(** [of_radix k] is the maximal three-level fat-tree built from radix-[k]
    switches: [m1 = m2 = k/2], [m3 = k].  [k] must be even and >= 2. *)

val radix : t -> int option
(** [radix t] is [Some k] if [t] has the maximal radix-[k] shape, [None]
    for other parameter combinations. *)

(** {1 Parameters} *)

val m1 : t -> int
(** Nodes per leaf (= L2 switches per pod = number of spine groups). *)

val m2 : t -> int
(** Leaves per pod (= spine uplinks per L2 switch = spines per group). *)

val m3 : t -> int
(** Number of pods (= downlinks per spine). *)

val nodes_per_leaf : t -> int
(** Alias for {!m1}. *)

val leaves_per_pod : t -> int
(** Alias for {!m2}. *)

val pods : t -> int
(** Alias for {!m3}. *)

val l2_per_pod : t -> int
(** L2 switches per pod; equals {!m1} for full-bandwidth trees. *)

val spine_groups : t -> int
(** Number of spine groups; equals {!m1}. *)

val spines_per_group : t -> int
(** Spines per group; equals {!m2}. *)

val nodes_per_pod : t -> int
(** [m1 * m2]. *)

val num_nodes : t -> int
(** [m1 * m2 * m3]. *)

val num_leaves : t -> int
(** [m2 * m3]. *)

val num_l2 : t -> int
(** [m1 * m3]. *)

val num_spines : t -> int
(** [m1 * m2]. *)

val num_leaf_l2_cables : t -> int
(** Total leaf–L2 cables: [m1 * m2 * m3]. *)

val num_l2_spine_cables : t -> int
(** Total L2–spine cables: [m1 * m2 * m3]. *)

(** {1 Coordinate conversions} *)

val node_of_coords : t -> pod:int -> leaf:int -> slot:int -> int
(** [node_of_coords t ~pod ~leaf ~slot] is the node id at [slot] of leaf
    [leaf] (index within pod) of pod [pod].  Bounds-checked. *)

val node_pod : t -> int -> int
val node_leaf : t -> int -> int
(** [node_leaf t n] is the {e global} leaf id hosting node [n]. *)

val node_slot : t -> int -> int

val leaf_of_coords : t -> pod:int -> leaf:int -> int
(** Global leaf id from pod coordinates. *)

val leaf_pod : t -> int -> int
val leaf_index_in_pod : t -> int -> int
val leaf_first_node : t -> int -> int
(** [leaf_first_node t l] is the lowest node id on leaf [l]; the leaf's
    nodes are the contiguous range of length [m1] starting there. *)

val l2_of_coords : t -> pod:int -> index:int -> int
(** Global L2 id from pod coordinates; [index] is the position within the
    pod, equal to the spine-group index. *)

val l2_pod : t -> int -> int
val l2_index_in_pod : t -> int -> int

val spine_of_coords : t -> group:int -> index:int -> int
val spine_group : t -> int -> int
val spine_index_in_group : t -> int -> int

(** {1 Cables} *)

val leaf_l2_cable : t -> leaf:int -> l2_index:int -> int
(** The cable between (global) leaf [leaf] and the L2 switch at [l2_index]
    within the leaf's pod. *)

val leaf_l2_cable_leaf : t -> int -> int
val leaf_l2_cable_l2_index : t -> int -> int

val l2_spine_cable : t -> l2:int -> spine_index:int -> int
(** The cable between (global) L2 switch [l2] and the spine at
    [spine_index] within the switch's group. *)

val l2_spine_cable_l2 : t -> int -> int
val l2_spine_cable_spine_index : t -> int -> int

val spine_of_l2_cable : t -> int -> int
(** [spine_of_l2_cable t c] is the global spine id at the far end of
    L2–spine cable [c]. *)

val l2_of_spine_pod : t -> spine:int -> pod:int -> int
(** [l2_of_spine_pod t ~spine ~pod] is the (unique) global L2 switch of
    [pod] connected to [spine] — the switch at the spine's group index. *)

(** {1 Validation and printing} *)

val validate : t -> (unit, string) result
(** [validate t] re-checks the structural invariants (positive parameters,
    full-bandwidth balance, identifier-space sizes).  Always [Ok] for
    values built by {!create}/{!of_radix}; exposed for property tests. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line description. *)

val to_string : t -> string
