type t = { m1 : int; m2 : int; m3 : int }

let create ~nodes_per_leaf ~leaves_per_pod ~pods =
  if nodes_per_leaf < 1 || leaves_per_pod < 1 || pods < 1 then
    invalid_arg "Topology.create: parameters must be >= 1";
  { m1 = nodes_per_leaf; m2 = leaves_per_pod; m3 = pods }

let of_radix k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.of_radix: radix must be even and >= 2";
  { m1 = k / 2; m2 = k / 2; m3 = k }

let radix t = if t.m1 = t.m2 && t.m3 = 2 * t.m1 then Some (2 * t.m1) else None
let m1 t = t.m1
let m2 t = t.m2
let m3 t = t.m3
let nodes_per_leaf t = t.m1
let leaves_per_pod t = t.m2
let pods t = t.m3
let l2_per_pod t = t.m1
let spine_groups t = t.m1
let spines_per_group t = t.m2
let nodes_per_pod t = t.m1 * t.m2
let num_nodes t = t.m1 * t.m2 * t.m3
let num_leaves t = t.m2 * t.m3
let num_l2 t = t.m1 * t.m3
let num_spines t = t.m1 * t.m2
let num_leaf_l2_cables t = t.m1 * t.m2 * t.m3
let num_l2_spine_cables t = t.m1 * t.m2 * t.m3

let check ~what v bound =
  if v < 0 || v >= bound then
    invalid_arg (Printf.sprintf "Topology: %s %d out of range [0, %d)" what v bound)

let node_of_coords t ~pod ~leaf ~slot =
  check ~what:"pod" pod t.m3;
  check ~what:"leaf" leaf t.m2;
  check ~what:"slot" slot t.m1;
  (((pod * t.m2) + leaf) * t.m1) + slot

let node_pod t n =
  check ~what:"node" n (num_nodes t);
  n / (t.m1 * t.m2)

let node_leaf t n =
  check ~what:"node" n (num_nodes t);
  n / t.m1

let node_slot t n =
  check ~what:"node" n (num_nodes t);
  n mod t.m1

let leaf_of_coords t ~pod ~leaf =
  check ~what:"pod" pod t.m3;
  check ~what:"leaf" leaf t.m2;
  (pod * t.m2) + leaf

let leaf_pod t l =
  check ~what:"leaf" l (num_leaves t);
  l / t.m2

let leaf_index_in_pod t l =
  check ~what:"leaf" l (num_leaves t);
  l mod t.m2

let leaf_first_node t l =
  check ~what:"leaf" l (num_leaves t);
  l * t.m1

let l2_of_coords t ~pod ~index =
  check ~what:"pod" pod t.m3;
  check ~what:"l2 index" index t.m1;
  (pod * t.m1) + index

let l2_pod t s =
  check ~what:"l2" s (num_l2 t);
  s / t.m1

let l2_index_in_pod t s =
  check ~what:"l2" s (num_l2 t);
  s mod t.m1

let spine_of_coords t ~group ~index =
  check ~what:"group" group t.m1;
  check ~what:"spine index" index t.m2;
  (group * t.m2) + index

let spine_group t sp =
  check ~what:"spine" sp (num_spines t);
  sp / t.m2

let spine_index_in_group t sp =
  check ~what:"spine" sp (num_spines t);
  sp mod t.m2

let leaf_l2_cable t ~leaf ~l2_index =
  check ~what:"leaf" leaf (num_leaves t);
  check ~what:"l2 index" l2_index t.m1;
  (leaf * t.m1) + l2_index

let leaf_l2_cable_leaf t c =
  check ~what:"leaf-l2 cable" c (num_leaf_l2_cables t);
  c / t.m1

let leaf_l2_cable_l2_index t c =
  check ~what:"leaf-l2 cable" c (num_leaf_l2_cables t);
  c mod t.m1

let l2_spine_cable t ~l2 ~spine_index =
  check ~what:"l2" l2 (num_l2 t);
  check ~what:"spine index" spine_index t.m2;
  (l2 * t.m2) + spine_index

let l2_spine_cable_l2 t c =
  check ~what:"l2-spine cable" c (num_l2_spine_cables t);
  c / t.m2

let l2_spine_cable_spine_index t c =
  check ~what:"l2-spine cable" c (num_l2_spine_cables t);
  c mod t.m2

let spine_of_l2_cable t c =
  let l2 = l2_spine_cable_l2 t c in
  let idx = l2_spine_cable_spine_index t c in
  spine_of_coords t ~group:(l2_index_in_pod t l2) ~index:idx

let l2_of_spine_pod t ~spine ~pod =
  check ~what:"spine" spine (num_spines t);
  l2_of_coords t ~pod ~index:(spine_group t spine)

let validate t =
  if t.m1 < 1 || t.m2 < 1 || t.m3 < 1 then Error "non-positive parameter"
  else if num_nodes t <> t.m1 * t.m2 * t.m3 then Error "node count mismatch"
  else if num_leaf_l2_cables t <> num_leaves t * l2_per_pod t then
    Error "leaf-l2 cable count mismatch"
  else if num_l2_spine_cables t <> num_l2 t * spines_per_group t then
    Error "l2-spine cable count mismatch"
  else Ok ()

let pp ppf t =
  match radix t with
  | Some k ->
      Format.fprintf ppf "fat-tree(radix=%d: %d nodes, %d pods, %d leaves/pod, %d nodes/leaf)"
        k (num_nodes t) t.m3 t.m2 t.m1
  | None ->
      Format.fprintf ppf "fat-tree(m1=%d, m2=%d, m3=%d: %d nodes)" t.m1 t.m2 t.m3
        (num_nodes t)

let to_string t = Format.asprintf "%a" pp t
