type t = { levels : int; m : int array; w : int array }

let create ~m ~w =
  let h = Array.length m in
  if h = 0 then invalid_arg "Xgft.create: empty parameter arrays";
  if Array.length w <> h then
    invalid_arg "Xgft.create: m and w must have the same length";
  Array.iter (fun x -> if x < 1 then invalid_arg "Xgft.create: non-positive m") m;
  Array.iter (fun x -> if x < 1 then invalid_arg "Xgft.create: non-positive w") w;
  if w.(0) <> 1 then invalid_arg "Xgft.create: w1 must be 1 (nodes have one parent)";
  { levels = h; m = Array.copy m; w = Array.copy w }

let of_topology topo =
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo and m3 = Topology.m3 topo in
  { levels = 3; m = [| m1; m2; m3 |]; w = [| 1; m1; m2 |] }

let to_topology x =
  if x.levels = 3 && x.w.(0) = 1 && x.w.(1) = x.m.(0) && x.w.(2) = x.m.(1) then
    Some
      (Topology.create ~nodes_per_leaf:x.m.(0) ~leaves_per_pod:x.m.(1)
         ~pods:x.m.(2))
  else None

let num_nodes x = Array.fold_left ( * ) 1 x.m

let num_switches_at_level x l =
  if l < 1 || l > x.levels then
    invalid_arg "Xgft.num_switches_at_level: level out of range";
  (* Switches at level l: product of m for levels above l, times product of
     w for levels up to l. *)
  let above = ref 1 in
  for i = l to x.levels - 1 do
    above := !above * x.m.(i)
  done;
  let parents = ref 1 in
  for i = 1 to l - 1 do
    parents := !parents * x.w.(i)
  done;
  !above * !parents

let is_full_bandwidth x =
  let ok = ref true in
  for i = 1 to x.levels - 1 do
    if x.w.(i) <> x.m.(i - 1) then ok := false
  done;
  !ok

let pp ppf x =
  let ints arr =
    String.concat "," (Array.to_list (Array.map string_of_int arr))
  in
  Format.fprintf ppf "XGFT(%d; %s; %s)" x.levels (ints x.m) (ints x.w)

let to_string x = Format.asprintf "%a" pp x
