type stage = In_leaf | In_l2 | Spine_stage | Out_l2 | Out_leaf

let stage_index = function
  | In_leaf -> 1
  | In_l2 -> 2
  | Spine_stage -> 3
  | Out_l2 -> 4
  | Out_leaf -> 5

let stage_width t = function
  | In_leaf | Out_leaf -> Topology.num_leaves t
  | In_l2 | Out_l2 -> Topology.num_l2 t
  | Spine_stage -> Topology.num_spines t

let center_network t ~stage ~pos =
  match stage with
  | In_leaf | Out_leaf -> None
  | In_l2 | Out_l2 ->
      if pos < 0 || pos >= Topology.num_l2 t then
        invalid_arg "Clos.center_network: position out of range"
      else Some (Topology.l2_index_in_pod t pos)
  | Spine_stage ->
      if pos < 0 || pos >= Topology.num_spines t then
        invalid_arg "Clos.center_network: position out of range"
      else Some (Topology.spine_group t pos)

let input_of_node t n =
  if n < 0 || n >= Topology.num_nodes t then
    invalid_arg "Clos.input_of_node: node out of range"
  else n

let output_of_node = input_of_node

let leaf_of_input t pos = Topology.node_leaf t pos

let crossing_stages t ~src ~dst =
  if Topology.node_leaf t src = Topology.node_leaf t dst then 0
  else if Topology.node_pod t src = Topology.node_pod t dst then 2
  else 4
