lib/fattree/xgft.mli: Format Topology
