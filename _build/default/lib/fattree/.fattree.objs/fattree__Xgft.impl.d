lib/fattree/xgft.ml: Array Format String Topology
