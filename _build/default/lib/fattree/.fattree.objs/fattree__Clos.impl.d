lib/fattree/clos.ml: Topology
