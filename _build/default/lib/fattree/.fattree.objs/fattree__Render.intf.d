lib/fattree/render.mli: Alloc Format State Topology
