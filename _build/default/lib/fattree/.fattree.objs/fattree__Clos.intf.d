lib/fattree/clos.mli: Topology
