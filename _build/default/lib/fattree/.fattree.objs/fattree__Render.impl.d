lib/fattree/render.ml: Alloc Array Char Format Hashtbl List State String Topology
