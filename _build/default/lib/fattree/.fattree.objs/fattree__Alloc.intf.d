lib/fattree/alloc.mli: Format
