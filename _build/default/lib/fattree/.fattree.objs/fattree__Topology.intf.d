lib/fattree/topology.mli: Format
