lib/fattree/state.ml: Alloc Array Float Int Lazy Printf Set Sim Sys Topology
