lib/fattree/state.ml: Alloc Array Float Int Printf Set Sim Topology
