lib/fattree/state.mli: Alloc Sim Topology
