lib/fattree/alloc.ml: Array Format Int Set
