lib/fattree/topology.ml: Format Printf
