(** Extended Generalized Fat-Tree (XGFT) notation.

    XGFT(h; m1, ..., mh; w1, ..., wh) describes an [h]-level tree where
    level-[i] elements have [mi] children and [wi] parents.  The paper's
    Appendix A (Figures 9 and 10) uses this notation; we provide it for
    describing trees, checking the full-bandwidth property, and
    pretty-printing topology descriptions in papers'-eye-view form. *)

type t = private {
  levels : int;  (** [h], the number of switch levels. *)
  m : int array;  (** Children per element, [m.(0)] = [m1], length [h]. *)
  w : int array;  (** Parents per element, [w.(0)] = [w1], length [h]. *)
}

val create : m:int array -> w:int array -> t
(** [create ~m ~w] is XGFT(h; m; w) with [h = Array.length m].  Arrays must
    have equal positive length and positive entries, and [w.(0)] must be 1
    (a compute node has exactly one parent leaf). *)

val of_topology : Topology.t -> t
(** The XGFT description of a full-bandwidth three-level tree:
    XGFT(3; m1, m2, m3; 1, m1, m2). *)

val to_topology : t -> Topology.t option
(** [to_topology x] is the concrete three-level topology when [x] is a
    three-level full-bandwidth XGFT, [None] otherwise. *)

val num_nodes : t -> int
(** Product of all [mi]. *)

val num_switches_at_level : t -> int -> int
(** [num_switches_at_level x l] is the number of switches at level [l]
    (1-based: 1 = leaves).  Raises [Invalid_argument] if [l] is outside
    [1, levels]. *)

val is_full_bandwidth : t -> bool
(** True iff [w.(i) = m.(i-1)] for every level above the first, i.e. up-
    and downlink counts balance at every switch level. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. "XGFT(3; 2,3,2; 1,2,3)". *)

val to_string : t -> string
