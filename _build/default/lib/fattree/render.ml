type owner_fn = int -> int option

let owners_of_allocs allocs =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (a : Alloc.t) -> Array.iter (fun n -> Hashtbl.replace tbl n a.job) a.nodes)
    allocs;
  fun n -> Hashtbl.find_opt tbl n

let job_char job =
  let digits = "0123456789abcdefghijklmnopqrstuvwxyz" in
  digits.[job mod String.length digits]

let node_map ?owners topo st ppf () =
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  for pod = 0 to Topology.m3 topo - 1 do
    Format.fprintf ppf "pod %2d " pod;
    for l = 0 to m2 - 1 do
      let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
      Format.fprintf ppf "[";
      for s = 0 to m1 - 1 do
        let n = Topology.leaf_first_node topo leaf + s in
        let c =
          if State.node_free st n then '.'
          else
            match owners with
            | None -> '#'
            | Some f -> ( match f n with Some j -> job_char j | None -> '#')
        in
        Format.fprintf ppf "%c" c
      done;
      Format.fprintf ppf "]"
    done;
    Format.fprintf ppf "@."
  done

let capacity_char remaining =
  if remaining >= 0.999 then '-'
  else if remaining <= 0.001 then 'x'
  else Char.chr (Char.code '0' + max 1 (min 9 (int_of_float (remaining *. 10.0))))

let link_map topo st ppf () =
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  for pod = 0 to Topology.m3 topo - 1 do
    Format.fprintf ppf "pod %2d up:" pod;
    for l = 0 to m2 - 1 do
      let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
      Format.fprintf ppf " ";
      for i = 0 to m1 - 1 do
        let c = Topology.leaf_l2_cable topo ~leaf ~l2_index:i in
        Format.fprintf ppf "%c" (capacity_char (State.leaf_up_remaining st ~cable:c))
      done
    done;
    Format.fprintf ppf "  spine:";
    for i = 0 to m1 - 1 do
      let l2 = Topology.l2_of_coords topo ~pod ~index:i in
      Format.fprintf ppf " ";
      for j = 0 to m2 - 1 do
        let c = Topology.l2_spine_cable topo ~l2 ~spine_index:j in
        Format.fprintf ppf "%c" (capacity_char (State.l2_up_remaining st ~cable:c))
      done
    done;
    Format.fprintf ppf "@."
  done

let summary topo st ppf () =
  let free_leaves = ref 0 and free_pods = ref 0 in
  for leaf = 0 to Topology.num_leaves topo - 1 do
    if State.leaf_fully_free st leaf then incr free_leaves
  done;
  for pod = 0 to Topology.m3 topo - 1 do
    let all = ref true in
    for l = 0 to Topology.m2 topo - 1 do
      if not (State.leaf_fully_free st (Topology.leaf_of_coords topo ~pod ~leaf:l))
      then all := false
    done;
    if !all then incr free_pods
  done;
  Format.fprintf ppf
    "%d/%d nodes busy (%.1f%%), %d fully-free leaves, %d fully-free pods"
    (State.busy_node_count st) (Topology.num_nodes topo)
    (100.0 *. State.node_utilization st)
    !free_leaves !free_pods
