let eps = 1e-9

type t = {
  topo : Topology.t;
  free : Sim.Bitset.t; (* node id -> free *)
  free_per_leaf : int array;
  leaf_up : float array; (* leaf-l2 cable -> remaining capacity *)
  l2_up : float array; (* l2-spine cable -> remaining capacity *)
  mutable busy : int;
}

let create topo =
  let free = Sim.Bitset.create (Topology.num_nodes topo) in
  Sim.Bitset.fill free;
  {
    topo;
    free;
    free_per_leaf = Array.make (Topology.num_leaves topo) (Topology.m1 topo);
    leaf_up = Array.make (Topology.num_leaf_l2_cables topo) 1.0;
    l2_up = Array.make (Topology.num_l2_spine_cables topo) 1.0;
    busy = 0;
  }

let topo t = t.topo

let clone t =
  {
    topo = t.topo;
    free = Sim.Bitset.copy t.free;
    free_per_leaf = Array.copy t.free_per_leaf;
    leaf_up = Array.copy t.leaf_up;
    l2_up = Array.copy t.l2_up;
    busy = t.busy;
  }

let node_free t n = Sim.Bitset.mem t.free n
let free_nodes_on_leaf t l = t.free_per_leaf.(l)

let free_slot_mask t leaf =
  let first = Topology.leaf_first_node t.topo leaf in
  let m1 = Topology.m1 t.topo in
  let mask = ref 0 in
  for s = 0 to m1 - 1 do
    if Sim.Bitset.mem t.free (first + s) then mask := !mask lor (1 lsl s)
  done;
  !mask

let leaf_up_remaining t ~cable = t.leaf_up.(cable)
let l2_up_remaining t ~cable = t.l2_up.(cable)

let leaf_up_mask t ~leaf ~demand =
  let m1 = Topology.m1 t.topo in
  let mask = ref 0 in
  for i = 0 to m1 - 1 do
    let c = Topology.leaf_l2_cable t.topo ~leaf ~l2_index:i in
    if t.leaf_up.(c) >= demand -. eps then mask := !mask lor (1 lsl i)
  done;
  !mask

let l2_up_mask t ~l2 ~demand =
  let m2 = Topology.m2 t.topo in
  let mask = ref 0 in
  for j = 0 to m2 - 1 do
    let c = Topology.l2_spine_cable t.topo ~l2 ~spine_index:j in
    if t.l2_up.(c) >= demand -. eps then mask := !mask lor (1 lsl j)
  done;
  !mask

let leaf_fully_free t leaf =
  let m1 = Topology.m1 t.topo in
  t.free_per_leaf.(leaf) = m1
  && leaf_up_mask t ~leaf ~demand:1.0 = (1 lsl m1) - 1

let total_free_nodes t = Topology.num_nodes t.topo - t.busy
let busy_node_count t = t.busy

let node_utilization t =
  float_of_int t.busy /. float_of_int (Topology.num_nodes t.topo)

let no_dups arr =
  let module IS = Set.Make (Int) in
  let s = IS.of_list (Array.to_list arr) in
  IS.cardinal s = Array.length arr

let check_claim t (a : Alloc.t) =
  if a.bw <= 0.0 || a.bw > 1.0 +. eps then Error "bandwidth demand out of (0,1]"
  else if not (no_dups a.nodes) then Error "duplicate node in allocation"
  else if not (no_dups a.leaf_cables) then Error "duplicate leaf cable"
  else if not (no_dups a.l2_cables) then Error "duplicate l2 cable"
  else begin
    let bad = ref None in
    Array.iter
      (fun n ->
        if !bad = None && not (Sim.Bitset.mem t.free n) then
          bad := Some (Printf.sprintf "node %d is busy" n))
      a.nodes;
    Array.iter
      (fun c ->
        if !bad = None && t.leaf_up.(c) < a.bw -. eps then
          bad := Some (Printf.sprintf "leaf cable %d lacks capacity" c))
      a.leaf_cables;
    Array.iter
      (fun c ->
        if !bad = None && t.l2_up.(c) < a.bw -. eps then
          bad := Some (Printf.sprintf "l2 cable %d lacks capacity" c))
      a.l2_cables;
    match !bad with Some m -> Error m | None -> Ok ()
  end

let claim t (a : Alloc.t) =
  match check_claim t a with
  | Error _ as e -> e
  | Ok () ->
      Array.iter
        (fun n ->
          Sim.Bitset.remove t.free n;
          let leaf = Topology.node_leaf t.topo n in
          t.free_per_leaf.(leaf) <- t.free_per_leaf.(leaf) - 1)
        a.nodes;
      Array.iter (fun c -> t.leaf_up.(c) <- t.leaf_up.(c) -. a.bw) a.leaf_cables;
      Array.iter (fun c -> t.l2_up.(c) <- t.l2_up.(c) -. a.bw) a.l2_cables;
      t.busy <- t.busy + Array.length a.nodes;
      Ok ()

let claim_exn t a =
  match claim t a with
  | Ok () -> ()
  | Error m -> invalid_arg ("State.claim_exn: " ^ m)

let release t (a : Alloc.t) =
  Array.iter
    (fun n ->
      if Sim.Bitset.mem t.free n then
        invalid_arg (Printf.sprintf "State.release: node %d was not busy" n))
    a.nodes;
  Array.iter
    (fun c ->
      if t.leaf_up.(c) +. a.bw > 1.0 +. eps then
        invalid_arg (Printf.sprintf "State.release: leaf cable %d over-released" c))
    a.leaf_cables;
  Array.iter
    (fun c ->
      if t.l2_up.(c) +. a.bw > 1.0 +. eps then
        invalid_arg (Printf.sprintf "State.release: l2 cable %d over-released" c))
    a.l2_cables;
  Array.iter
    (fun n ->
      Sim.Bitset.add t.free n;
      let leaf = Topology.node_leaf t.topo n in
      t.free_per_leaf.(leaf) <- t.free_per_leaf.(leaf) + 1)
    a.nodes;
  Array.iter
    (fun c -> t.leaf_up.(c) <- Float.min 1.0 (t.leaf_up.(c) +. a.bw))
    a.leaf_cables;
  Array.iter
    (fun c -> t.l2_up.(c) <- Float.min 1.0 (t.l2_up.(c) +. a.bw))
    a.l2_cables;
  t.busy <- t.busy - Array.length a.nodes

let snapshot_free_nodes t = Sim.Bitset.copy t.free
