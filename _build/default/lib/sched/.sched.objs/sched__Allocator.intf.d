lib/sched/allocator.mli: Fattree Trace
