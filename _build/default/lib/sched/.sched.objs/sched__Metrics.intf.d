lib/sched/metrics.mli: Format Trace
