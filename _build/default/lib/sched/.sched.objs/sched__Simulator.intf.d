lib/sched/simulator.mli: Allocator Metrics Trace
