lib/sched/simulator.mli: Allocator Fattree Metrics Trace
