lib/sched/simulator.ml: Alloc Allocator Array Fattree Float Hashtbl Int List Metrics Queue Set Sim State Trace Unix
