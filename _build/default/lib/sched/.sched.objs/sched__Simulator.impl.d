lib/sched/simulator.ml: Alloc Allocator Array Fattree Float Hashtbl List Metrics Queue Sim State Trace Unix
