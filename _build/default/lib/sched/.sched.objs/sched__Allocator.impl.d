lib/sched/allocator.ml: Alloc Baselines Fattree Jigsaw_core List State Trace
