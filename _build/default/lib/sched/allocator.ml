open Fattree

type t = {
  name : string;
  isolating : bool;
  try_alloc : State.t -> Trace.Job.t -> Alloc.t option;
}

let of_partition st ~bw p =
  Jigsaw_core.Partition.to_alloc (State.topo st) p ~bw

let baseline =
  {
    name = "Baseline";
    isolating = false;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Baselines.Baseline.get_allocation st ~job:j.id ~size:j.size);
  }

let jigsaw =
  {
    name = "Jigsaw";
    isolating = true;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Jigsaw_core.Jigsaw.get_allocation st ~job:j.id ~size:j.size
        |> Option.map (of_partition st ~bw:1.0));
  }

let laas =
  {
    name = "LaaS";
    isolating = true;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Baselines.Laas.get_allocation st ~job:j.id ~size:j.size
        |> Option.map (of_partition st ~bw:1.0));
  }

let ta =
  {
    name = "TA";
    isolating = true;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Baselines.Ta.get_allocation st ~job:j.id ~size:j.size);
  }

let lcs ?budget () =
  {
    name = "LC+S";
    isolating = true;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Jigsaw_core.Least_constrained.get_allocation ?budget
          ~demand:j.bw_class st ~job:j.id ~size:j.size
        |> Option.map (of_partition st ~bw:j.bw_class));
  }

let lc_exclusive ?budget () =
  {
    name = "LC";
    isolating = true;
    try_alloc =
      (fun st (j : Trace.Job.t) ->
        Jigsaw_core.Least_constrained.get_allocation ?budget st ~job:j.id
          ~size:j.size
        |> Option.map (of_partition st ~bw:1.0));
  }

let all = [ baseline; lcs (); jigsaw; laas; ta ]
let isolating = [ ta; laas; jigsaw ]
let by_name n = List.find_opt (fun a -> a.name = n) (lc_exclusive () :: all)
