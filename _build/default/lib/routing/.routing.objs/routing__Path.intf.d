lib/routing/path.mli: Fattree Format Hashtbl
