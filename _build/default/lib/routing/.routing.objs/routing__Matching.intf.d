lib/routing/matching.mli:
