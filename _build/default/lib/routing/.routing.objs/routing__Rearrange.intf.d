lib/routing/rearrange.mli: Fattree Jigsaw_core Path
