lib/routing/maxflow.mli:
