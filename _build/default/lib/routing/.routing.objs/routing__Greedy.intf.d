lib/routing/greedy.mli: Fattree Path
