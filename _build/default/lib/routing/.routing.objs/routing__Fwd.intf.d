lib/routing/fwd.mli: Fattree Jigsaw_core Path
