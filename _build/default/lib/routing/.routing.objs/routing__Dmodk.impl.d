lib/routing/dmodk.ml: Fattree List Path Topology
