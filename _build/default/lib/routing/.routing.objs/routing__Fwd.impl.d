lib/routing/fwd.ml: Array Fattree Format Hashtbl Jigsaw_core List Partition Partition_routing Path Result Topology
