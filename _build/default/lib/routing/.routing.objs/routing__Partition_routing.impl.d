lib/routing/partition_routing.ml: Array Fattree Format Jigsaw_core List Partition Path Result Topology
