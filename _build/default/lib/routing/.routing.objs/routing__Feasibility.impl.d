lib/routing/feasibility.ml: Alloc Array Fattree Maxflow Topology
