lib/routing/dmodk.mli: Fattree Path
