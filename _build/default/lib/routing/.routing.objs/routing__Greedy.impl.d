lib/routing/greedy.ml: Array Fattree List Path Topology
