lib/routing/partition_routing.mli: Fattree Jigsaw_core Path
