lib/routing/congestion.ml: Format Hashtbl List Path
