lib/routing/matching.ml: Array List Queue
