lib/routing/maxflow.ml: Array List Queue
