lib/routing/congestion.mli: Format Path
