lib/routing/feasibility.mli: Fattree
