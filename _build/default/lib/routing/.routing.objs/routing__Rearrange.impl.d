lib/routing/rearrange.ml: Array Conditions Fattree Format Hashtbl Jigsaw_core List Matching Partition Path Result Set Topology
