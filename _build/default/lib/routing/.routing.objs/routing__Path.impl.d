lib/routing/path.ml: Array Fattree Format Hashtbl Int List Printf Set String
