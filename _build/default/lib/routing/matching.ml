type t = {
  left : int;
  right : int;
  adj : int list array; (* adjacency of left vertices *)
}

let create ~left ~right = { left; right; adj = Array.make (max left 1) [] }

let add_edge g u v =
  if u < 0 || u >= g.left then invalid_arg "Matching.add_edge: left out of range";
  if v < 0 || v >= g.right then
    invalid_arg "Matching.add_edge: right out of range";
  g.adj.(u) <- v :: g.adj.(u)

let inf = max_int

(* Hopcroft–Karp.  match_l.(u) = matched right vertex or -1;
   match_r.(v) = matched left vertex or -1. *)
let max_matching g =
  let match_l = Array.make (max g.left 1) (-1) in
  let match_r = Array.make (max g.right 1) (-1) in
  let dist = Array.make (max g.left 1) inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to g.left - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          let w = match_r.(v) in
          if w = -1 then found := true
          else if dist.(w) = inf then begin
            dist.(w) <- dist.(u) + 1;
            Queue.add w queue
          end)
        g.adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_edges = function
      | [] ->
          dist.(u) <- inf;
          false
      | v :: rest ->
          let w = match_r.(v) in
          if (w = -1 || (dist.(w) = dist.(u) + 1 && dfs w)) then begin
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
          end
          else try_edges rest
    in
    try_edges g.adj.(u)
  in
  while bfs () do
    for u = 0 to g.left - 1 do
      if match_l.(u) = -1 then ignore (dfs u)
    done
  done;
  let pairs = ref [] in
  for u = g.left - 1 downto 0 do
    if match_l.(u) <> -1 then pairs := (u, match_l.(u)) :: !pairs
  done;
  !pairs

let perfect_matching g =
  if g.left <> g.right then None
  else begin
    let m = max_matching g in
    if List.length m = g.left then Some m else None
  end
