type edge = { dst : int; mutable cap : int; rev : int }
type t = { n : int; adj : edge list ref array }

(* Adjacency as growable arrays of edges; [rev] is the index of the
   reverse edge in the destination's list.  We store lists and freeze to
   arrays lazily — simpler, and graphs here are small. *)
type frozen = { fadj : edge array array }

let create n = { n; adj = Array.init n (fun _ -> ref []) }

let add_edge g ~src ~dst ~cap =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  let fwd_pos = List.length !(g.adj.(src)) in
  let rev_pos = List.length !(g.adj.(dst)) in
  g.adj.(src) := !(g.adj.(src)) @ [ { dst; cap; rev = rev_pos } ];
  g.adj.(dst) := !(g.adj.(dst)) @ [ { dst = src; cap = 0; rev = fwd_pos } ]

let freeze g = { fadj = Array.map (fun r -> Array.of_list !r) g.adj }

let max_flow g ~s ~t =
  let f = freeze g in
  let n = g.n in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 n (-1);
    Queue.clear queue;
    level.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun e ->
          if e.cap > 0 && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(u) + 1;
            Queue.add e.dst queue
          end)
        f.fadj.(u)
    done;
    level.(t) >= 0
  in
  let rec dfs u pushed =
    if u = t then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && iter.(u) < Array.length f.fadj.(u) do
        let e = f.fadj.(u).(iter.(u)) in
        if e.cap > 0 && level.(e.dst) = level.(u) + 1 then begin
          let d = dfs e.dst (min pushed e.cap) in
          if d > 0 then begin
            e.cap <- e.cap - d;
            let back = f.fadj.(e.dst).(e.rev) in
            back.cap <- back.cap + d;
            result := d
          end
          else iter.(u) <- iter.(u) + 1
        end
        else iter.(u) <- iter.(u) + 1
      done;
      !result
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let continue = ref true in
    while !continue do
      let d = dfs s max_int in
      if d = 0 then continue := false else flow := !flow + d
    done
  done;
  !flow
