(** Load-aware best-effort routing — the mitigation family Jigsaw
    replaces.

    Models the routing-based approaches of the paper's §2.3.1 and §7
    (Lee et al.'s SDN rerouting, Domke & Hoefler's Scheduling-Aware
    Routing, Smith et al.'s AFAR): a global controller that knows the
    current flows and spreads them over the least-loaded minimal paths.
    Flows are routed one at a time onto the up/down path that minimizes
    the maximum (then total) channel load among all minimal paths.

    These schemes need no scheduler changes and keep utilization
    untouched, but — as the paper argues — they {e cannot bound
    worst-case interference}: when the flows into or out of a switch
    exceed its links, some channel must carry several flows no matter
    how cleverly they are spread.  [lower_bound_load] computes that
    pigeonhole bound so tests and demos can show greedy routing hitting
    it while Jigsaw partitions never share a channel at all. *)

val route : Fattree.Topology.t -> (int * int) list -> Path.t list
(** [route topo flows] routes each (src, dst) flow in order on the
    currently least-loaded minimal path.  Deterministic (ties break
    toward lower switch indices). *)

val max_load : Fattree.Topology.t -> (int * int) list -> int
(** Largest per-channel flow count under greedy routing. *)

val lower_bound_load : Fattree.Topology.t -> (int * int) list -> int
(** A routing-independent lower bound on the max channel load: for every
    leaf, inter-leaf flows leaving (entering) it must spread over its m1
    uplinks (downlinks), so the bound is
    [max over leaves of ceil(flows_out / m1) and ceil(flows_in / m1)]
    (and 1 if any inter-leaf flow exists).  Any routing, adaptive or
    not, is subject to it. *)
