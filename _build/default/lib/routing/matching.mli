(** Maximum bipartite matching (Hopcroft–Karp).

    Used by the rearrangeable-routing construction: Hall's Marriage
    Theorem guarantees perfect matchings in the regular bipartite
    multigraphs that arise there, and Hopcroft–Karp finds them in
    O(E sqrt V). *)

type t
(** A bipartite graph with [left] and [right] vertex sets. *)

val create : left:int -> right:int -> t
(** [create ~left ~right] is an empty bipartite graph with vertex sets
    [0..left-1] and [0..right-1]. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds an edge between left vertex [u] and right vertex
    [v].  Parallel edges are permitted but contribute nothing extra to a
    matching. *)

val max_matching : t -> (int * int) list
(** [max_matching g] is a maximum matching as (left, right) pairs. *)

val perfect_matching : t -> (int * int) list option
(** [perfect_matching g] is a matching covering every left and right
    vertex, or [None] if none exists (requires [left = right]). *)
