type report = {
  max_load : int;
  shared_channels : int;
  interfered_flows : int;
  total_flows : int;
}

let analyze jobs =
  (* channel -> (total load, job set) *)
  let tbl : (Path.tier * Path.dir * int, int * int list) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun (job, paths) ->
      List.iter
        (fun (p : Path.t) ->
          List.iter
            (fun (h : Path.hop) ->
              let key = (h.tier, h.dir, h.cable) in
              let load, js =
                try Hashtbl.find tbl key with Not_found -> (0, [])
              in
              let js = if List.mem job js then js else job :: js in
              Hashtbl.replace tbl key (load + 1, js))
            p.hops)
        paths)
    jobs;
  let max_load = Hashtbl.fold (fun _ (l, _) acc -> max l acc) tbl 0 in
  let shared_channels =
    Hashtbl.fold (fun _ (_, js) acc -> if List.length js >= 2 then acc + 1 else acc) tbl 0
  in
  let shared_key key =
    match Hashtbl.find_opt tbl key with
    | Some (_, js) -> List.length js >= 2
    | None -> false
  in
  let interfered_flows = ref 0 and total_flows = ref 0 in
  List.iter
    (fun (_, paths) ->
      List.iter
        (fun (p : Path.t) ->
          incr total_flows;
          let hit =
            List.exists (fun (h : Path.hop) -> shared_key (h.tier, h.dir, h.cable)) p.hops
          in
          if hit then incr interfered_flows)
        paths)
    jobs;
  {
    max_load;
    shared_channels;
    interfered_flows = !interfered_flows;
    total_flows = !total_flows;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "max channel load %d; %d shared channels; %d/%d flows interfered"
    r.max_load r.shared_channels r.interfered_flows r.total_flows
