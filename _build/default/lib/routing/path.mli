(** Network paths and per-channel load accounting.

    A path is the cable-level route of one flow.  Cables are full-duplex:
    the up and down directions are independent channels, so a cable may
    carry one ascending and one descending flow without contention.  The
    rearrangeable-non-blocking property is exactly "there is a routing
    with at most one flow per channel". *)

type tier = Leaf_l2 | L2_spine
type dir = Up | Down

type hop = { tier : tier; cable : int; dir : dir }

type t = {
  src : int;  (** Source node id. *)
  dst : int;  (** Destination node id. *)
  hops : hop list;  (** In traversal order; empty for intra-leaf flows. *)
}

val local : src:int -> dst:int -> t
(** A path that never leaves the leaf switch. *)

val channel_loads : t list -> (tier * dir * int, int) Hashtbl.t
(** Number of flows per (tier, direction, cable) channel. *)

val max_channel_load : t list -> int
(** The largest per-channel load; 0 for no paths.  A routing witnesses
    rearrangeability iff this is <= 1. *)

val uses_only : Fattree.Alloc.t -> t list -> (unit, string) result
(** [uses_only alloc paths] is [Ok ()] iff every hop's cable belongs to
    [alloc] (leaf–L2 hops to [alloc.leaf_cables], L2–spine hops to
    [alloc.l2_cables]). *)

val one_flow_per_channel : t list -> (unit, string) result
(** [Ok ()] iff no channel carries more than one flow. *)

val pp : Fattree.Topology.t -> Format.formatter -> t -> unit
