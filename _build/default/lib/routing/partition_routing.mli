(** Jigsaw's adjusted static routing within a partition (paper Figure 5).

    Once a job receives a partition, the system routing tables must be
    changed so the job's traffic stays on its allocated cables: plain
    D-mod-k is unaware of the allocation and would hop onto unallocated
    links.  Jigsaw maps D-mod-k onto the partition — destinations select
    L2 switches and spines by their {e rank within the allocation} rather
    than their physical id — and uses {e wraparound} on remainder
    switches, whose allocated uplink sets are smaller.

    The resulting routing is deterministic and destination-based (so it
    is implementable with InfiniBand linear forwarding tables).  Unlike
    {!Rearrange}, it does not guarantee one flow per channel for every
    permutation; it guarantees that every pair of the job's nodes is
    connected using only allocated cables. *)

val path :
  Fattree.Topology.t ->
  Jigsaw_core.Partition.t ->
  src:int ->
  dst:int ->
  (Path.t, string) result
(** The adjusted-D-mod-k route between two nodes of the partition.
    Errors if either endpoint is not in the partition. *)

val all_pairs : Fattree.Topology.t -> Jigsaw_core.Partition.t -> Path.t list
(** Routes for every ordered pair of distinct nodes.  Raises
    [Invalid_argument] on foreign nodes (cannot happen for partitions). *)

val check_connectivity :
  Fattree.Topology.t -> Jigsaw_core.Partition.t -> (unit, string) result
(** Verifies that every ordered pair routes successfully and that every
    hop of every route is an allocated cable. *)
