open Fattree
open Jigsaw_core

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun m -> Error m) fmt

type switch = Leaf of int | L2 of int | Spine of int

type t = { tables : (switch * int, int) Hashtbl.t; topo : Topology.t }

let pp_switch ppf = function
  | Leaf l -> Format.fprintf ppf "leaf %d" l
  | L2 x -> Format.fprintf ppf "L2 %d" x
  | Spine s -> Format.fprintf ppf "spine %d" s

(* Record one (switch, dst) -> port entry, rejecting conflicts. *)
let record tbl sw dst port =
  match Hashtbl.find_opt tbl (sw, dst) with
  | None ->
      Hashtbl.replace tbl (sw, dst) port;
      Ok ()
  | Some p when p = port -> Ok ()
  | Some p ->
      fail "destination-based conflict at %a for node %d: ports %d vs %d"
        pp_switch sw dst p port

(* Decompose a Partition_routing path into per-switch entries. *)
let entries_of_path topo tbl ~src ~dst (path : Path.t) =
  ignore src;
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  let dst_leaf = Topology.node_leaf topo dst in
  let dst_slot = Topology.node_slot topo dst in
  match path.hops with
  | [] ->
      (* Intra-leaf: the leaf switch sends straight down. *)
      record tbl (Leaf dst_leaf) dst dst_slot
  | [ up1; down1 ] ->
      (* Intra-pod: src leaf up, one L2, dst leaf down. *)
      let i = Topology.leaf_l2_cable_l2_index topo up1.cable in
      let src_leaf = Topology.leaf_l2_cable_leaf topo up1.cable in
      let l2 =
        Topology.l2_of_coords topo ~pod:(Topology.leaf_pod topo src_leaf) ~index:i
      in
      let* () = record tbl (Leaf src_leaf) dst (m1 + i) in
      let* () =
        record tbl (L2 l2) dst (Topology.leaf_index_in_pod topo dst_leaf)
      in
      let* () = record tbl (Leaf dst_leaf) dst dst_slot in
      ignore down1;
      Ok ()
  | [ up1; up2; down2; down1 ] ->
      let i = Topology.leaf_l2_cable_l2_index topo up1.cable in
      let src_leaf = Topology.leaf_l2_cable_leaf topo up1.cable in
      let src_l2 = Topology.l2_spine_cable_l2 topo up2.cable in
      let j = Topology.l2_spine_cable_spine_index topo up2.cable in
      let spine = Topology.spine_of_l2_cable topo up2.cable in
      let dst_l2 = Topology.l2_spine_cable_l2 topo down2.cable in
      let* () = record tbl (Leaf src_leaf) dst (m1 + i) in
      let* () = record tbl (L2 src_l2) dst (m2 + j) in
      let* () = record tbl (Spine spine) dst (Topology.l2_pod topo dst_l2) in
      let* () =
        record tbl (L2 dst_l2) dst (Topology.leaf_index_in_pod topo dst_leaf)
      in
      let* () = record tbl (Leaf dst_leaf) dst dst_slot in
      ignore down1;
      Ok ()
  | _ -> fail "unexpected hop shape for %d -> %d" path.src path.dst

let compile topo (p : Partition.t) =
  let tbl = Hashtbl.create 256 in
  let nodes = Partition.nodes p in
  let result = ref (Ok ()) in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst && Result.is_ok !result then
            match Partition_routing.path topo p ~src ~dst with
            | Error m -> result := Error m
            | Ok path -> result := entries_of_path topo tbl ~src ~dst path)
        nodes)
    nodes;
  match !result with Ok () -> Ok { tables = tbl; topo } | Error m -> Error m

let lookup t ~switch ~dst = Hashtbl.find_opt t.tables (switch, dst)
let num_entries t = Hashtbl.length t.tables

let switches t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter (fun (sw, _) _ -> Hashtbl.replace seen sw ()) t.tables;
  Hashtbl.fold (fun sw () acc -> sw :: acc) seen []

(* Hop-by-hop packet walk, driven entirely by table lookups. *)
let walk topo t ~src ~dst =
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  let hops = ref [] in
  let rec step sw ttl =
    if ttl < 0 then fail "TTL exceeded (routing loop) at %a" pp_switch sw
    else
      match lookup t ~switch:sw ~dst with
      | None -> fail "no table entry at %a for node %d" pp_switch sw dst
      | Some port -> (
          match sw with
          | Leaf leaf ->
              if port < m1 then begin
                (* down to a node: must be the destination *)
                let node = Topology.leaf_first_node topo leaf + port in
                if node = dst then Ok ()
                else fail "leaf %d delivered to wrong node %d" leaf node
              end
              else begin
                let i = port - m1 in
                let cable = Topology.leaf_l2_cable topo ~leaf ~l2_index:i in
                hops := { Path.tier = Path.Leaf_l2; cable; dir = Path.Up } :: !hops;
                step (L2 (Topology.l2_of_coords topo ~pod:(Topology.leaf_pod topo leaf) ~index:i)) (ttl - 1)
              end
          | L2 x ->
              if port < m2 then begin
                let leaf =
                  Topology.leaf_of_coords topo ~pod:(Topology.l2_pod topo x) ~leaf:port
                in
                let cable =
                  Topology.leaf_l2_cable topo ~leaf
                    ~l2_index:(Topology.l2_index_in_pod topo x)
                in
                hops := { Path.tier = Path.Leaf_l2; cable; dir = Path.Down } :: !hops;
                step (Leaf leaf) (ttl - 1)
              end
              else begin
                let j = port - m2 in
                let cable = Topology.l2_spine_cable topo ~l2:x ~spine_index:j in
                hops := { Path.tier = Path.L2_spine; cable; dir = Path.Up } :: !hops;
                step (Spine (Topology.spine_of_l2_cable topo cable)) (ttl - 1)
              end
          | Spine s ->
              let l2 = Topology.l2_of_spine_pod topo ~spine:s ~pod:port in
              let cable =
                Topology.l2_spine_cable topo ~l2
                  ~spine_index:(Topology.spine_index_in_group topo s)
              in
              hops := { Path.tier = Path.L2_spine; cable; dir = Path.Down } :: !hops;
              step (L2 l2) (ttl - 1))
  in
  let src_leaf = Topology.node_leaf topo src in
  if src_leaf = Topology.node_leaf topo dst then Ok (Path.local ~src ~dst)
  else begin
    let* () = step (Leaf src_leaf) 5 in
    Ok { Path.src; dst; hops = List.rev !hops }
  end

let verify_all_pairs topo (p : Partition.t) t =
  let nodes = Partition.nodes p in
  let alloc = Partition.to_alloc topo p ~bw:1.0 in
  let bad = ref None in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst && !bad = None then
            match walk topo t ~src ~dst with
            | Error m -> bad := Some m
            | Ok path -> (
                match Path.uses_only alloc [ path ] with
                | Error m -> bad := Some m
                | Ok () -> ()))
        nodes)
    nodes;
  match !bad with Some m -> Error m | None -> Ok ()
