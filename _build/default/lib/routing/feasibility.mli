(** Routability bounds via maximum flow.

    [max_concurrent_flows] computes the largest number of simultaneous
    unit flows from a set of source nodes to a set of destination nodes
    that the {e allocated} cables can carry with at most one flow per
    directed channel.  It is the exact feasibility bound for a one-to-one
    traffic pattern between the two sets, with fully general (even
    non-minimal) routing allowed.

    This is the tool behind the necessity direction of the paper's
    Appendix A: if an allocation violates a §3.2 condition, some pair of
    equal-size node subsets (A, B) has [max_concurrent_flows < |A|] —
    a traffic permutation pairing A with B cannot be routed without
    contention, so the allocation is not rearrangeable non-blocking. *)

val max_concurrent_flows :
  Fattree.Topology.t ->
  Fattree.Alloc.t ->
  srcs:int array ->
  dsts:int array ->
  int
(** [max_concurrent_flows topo alloc ~srcs ~dsts] with distinct sources
    and distinct destinations (a node may appear on both sides).  Every
    node must belong to [alloc].  Channels modeled: node–leaf cables
    (dedicated, capacity 1 per direction), allocated leaf–L2 cables and
    allocated L2–spine cables (capacity 1 per direction); switch
    crossbars are unconstrained. *)

val supports_permutation_lower_bound :
  Fattree.Topology.t -> Fattree.Alloc.t -> srcs:int array -> dsts:int array -> bool
(** [supports_permutation_lower_bound topo alloc ~srcs ~dsts] is
    [max_concurrent_flows ... >= Array.length srcs] — a {e necessary}
    condition for the allocation to route a permutation pairing [srcs]
    with [dsts].  [false] therefore witnesses non-rearrangeability. *)
