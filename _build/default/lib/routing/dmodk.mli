(** Destination-mod-k static routing on the full fat-tree.

    The standard static routing used on production fat-tree clusters
    (Zahavi's D-mod-k): the upward path of a packet is determined by the
    destination identifier alone — the leaf picks uplink
    [dst mod m1] and the L2 switch picks uplink [(dst / m1) mod m2] —
    which balances shift permutations across links on a dedicated tree
    but can hotspot under multi-job workloads.  Used as the routing
    substrate for the Baseline scheduler's interference measurements. *)

val path : Fattree.Topology.t -> src:int -> dst:int -> Path.t
(** The unique D-mod-k route from [src] to [dst].  Intra-leaf traffic has
    an empty hop list; intra-pod traffic makes two hops; inter-pod
    traffic makes four. *)

val routes : Fattree.Topology.t -> (int * int) list -> Path.t list
(** Routes for a list of (src, dst) flows. *)

val max_load : Fattree.Topology.t -> (int * int) list -> int
(** Largest number of flows on any directed channel under D-mod-k. *)
