(** Inter-job interference measurement.

    Quantifies what job-isolating scheduling eliminates: with several jobs
    placed on a shared tree under static D-mod-k routing, flows from
    different jobs can land on the same channel.  [interference] reports,
    per job, how many of its flows share a channel with another job's
    flow — the situation that slows communication-intensive applications
    by up to 120% in the controlled experiments the paper cites. *)

type report = {
  max_load : int;  (** Largest per-channel flow count overall. *)
  shared_channels : int;  (** Channels carrying flows of >= 2 jobs. *)
  interfered_flows : int;  (** Flows sharing >= 1 channel with another job. *)
  total_flows : int;
}

val analyze : (int * Path.t list) list -> report
(** [analyze jobs] takes (job id, routed paths) pairs and reports
    cross-job channel sharing.  Intra-job sharing is not counted as
    interference (it is under the application's own control). *)

val pp_report : Format.formatter -> report -> unit
