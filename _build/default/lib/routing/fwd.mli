(** Destination-based forwarding tables for partitions.

    The paper deploys Jigsaw's adjusted routing by rewriting switch
    forwarding tables through the InfiniBand subnet manager (§4, Figure
    5).  This module performs that compilation step in the simulator:
    it turns {!Partition_routing}'s path function into per-switch {e
    linear forwarding tables} — destination node → output port — and
    provides a hop-by-hop packet walk that delivers packets using table
    lookups alone.

    Port numbering (per switch):

    - leaf switch: ports [0 .. m1-1] go down to the leaf's nodes (by
      slot); ports [m1 .. 2*m1-1] go up to the pod's L2 switches (port
      [m1 + i] to index [i]);
    - L2 switch: ports [0 .. m2-1] go down to the pod's leaves; ports
      [m2 .. 2*m2-1] go up to the group's spines;
    - spine: ports [0 .. m3-1] go down to the pods.

    Compilation checks the {e destination-based} property: within one
    switch, every flow to a given destination must use the same output
    port (different switches may disagree — that is what per-switch
    tables are for).  The adjusted routing satisfies this by
    construction; [compile] reports a conflict as an error rather than
    silently producing an ambiguous table. *)

type switch = Leaf of int | L2 of int | Spine of int
(** Switch identifiers (global leaf / L2 / spine ids). *)

type t
(** A compiled forwarding-table set for one partition. *)

val compile :
  Fattree.Topology.t -> Jigsaw_core.Partition.t -> (t, string) result
(** [compile topo p] derives tables covering every ordered pair of [p]'s
    nodes.  Errors on a destination-based-routing conflict or an
    unroutable pair (neither occurs for condition-compliant
    partitions). *)

val lookup : t -> switch:switch -> dst:int -> int option
(** [lookup t ~switch ~dst] is the output port, if the table has an
    entry. *)

val num_entries : t -> int
(** Total entries across all switches (a size measure for the tables the
    subnet manager would install). *)

val switches : t -> switch list
(** Switches that carry at least one entry. *)

val walk :
  Fattree.Topology.t -> t -> src:int -> dst:int -> (Path.t, string) result
(** [walk topo t ~src ~dst] forwards a packet by table lookups only:
    from [src]'s leaf, through L2 (and spine) switches, to [dst].
    Returns the cable-level path taken, or an error if a lookup is
    missing or the packet exceeds the 4-hop diameter (a routing loop). *)

val verify_all_pairs :
  Fattree.Topology.t -> Jigsaw_core.Partition.t -> t -> (unit, string) result
(** Walks every ordered pair of the partition's nodes and checks each
    packet (a) arrives, and (b) uses only allocated cables. *)
