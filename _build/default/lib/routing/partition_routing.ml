open Fattree
open Jigsaw_core

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun m -> Error m) fmt

(* Locate a node inside the partition: its leaf allocation, its rank on
   the leaf, its tree, and the leaf's rank within the tree. *)
type locus = {
  tree : Partition.tree_alloc;
  leaf : Partition.leaf_alloc;
  node_rank : int; (* position within the leaf's node list *)
  leaf_rank : int; (* position of the leaf within the tree *)
  on_rem_leaf : bool;
}

let locate (p : Partition.t) node =
  let trees =
    Array.to_list p.full_trees
    @ (match p.rem_tree with None -> [] | Some tr -> [ tr ])
  in
  let rec in_trees = function
    | [] -> None
    | (tr : Partition.tree_alloc) :: rest ->
        let leaves =
          Array.to_list tr.full_leaves
          @ (match tr.rem_leaf with None -> [] | Some la -> [ la ])
        in
        let rec in_leaves rank = function
          | [] -> in_trees rest
          | (la : Partition.leaf_alloc) :: lrest -> (
              match Array.find_index (fun n -> n = node) la.nodes with
              | Some i ->
                  Some
                    {
                      tree = tr;
                      leaf = la;
                      node_rank = i;
                      leaf_rank = rank;
                      on_rem_leaf = rank >= Array.length tr.full_leaves;
                    }
              | None -> in_leaves (rank + 1) lrest)
        in
        in_leaves 0 leaves
  in
  in_trees trees

let find_spine_set (tr : Partition.tree_alloc) i =
  let r = ref None in
  Array.iter (fun (j, s) -> if i = j then r := Some s) tr.spine_sets;
  !r

let path topo (p : Partition.t) ~src ~dst =
  match (locate p src, locate p dst) with
  | None, _ -> fail "source node %d not in partition" src
  | _, None -> fail "destination node %d not in partition" dst
  | Some ls, Some ld ->
      if ls.leaf.leaf = ld.leaf.leaf then Ok (Path.local ~src ~dst)
      else begin
        (* D-mod-k on partition ranks: the destination's rank on its leaf
           picks the L2 switch, with wraparound over the destination
           leaf's (possibly smaller) allocated uplink set. *)
        let dst_up = ld.leaf.l2_indices in
        let l2_index = dst_up.(ld.node_rank mod Array.length dst_up) in
        (* The source leaf must also reach that L2 switch; remainder
           sources wrap around their own set.  For non-remainder leaves
           the sets are equal (= S), so the choice is consistent. *)
        let src_up = ls.leaf.l2_indices in
        let* l2_index =
          if Array.exists (fun i -> i = l2_index) src_up then Ok l2_index
          else begin
            (* Source is a remainder leaf lacking this uplink: wrap the
               destination rank around the source's subset Sr. *)
            if Array.length src_up = 0 then fail "leaf %d has no uplinks" ls.leaf.leaf
            else Ok src_up.(ld.node_rank mod Array.length src_up)
          end
        in
        (* The destination must be reachable from the chosen L2 index:
           if the wrap changed the index, re-check the destination side
           (both sets are subsets of S; Sr ⊆ S guarantees a common
           index exists whenever either side is full). *)
        let* l2_index =
          if Array.exists (fun i -> i = l2_index) dst_up then Ok l2_index
          else begin
            (* Both ends are constrained: intersect. *)
            let common =
              List.filter
                (fun i -> Array.exists (fun j -> j = i) dst_up)
                (Array.to_list src_up)
            in
            match common with
            | [] -> fail "no common uplink between leaves %d and %d" ls.leaf.leaf ld.leaf.leaf
            | l -> Ok (List.nth l (ld.node_rank mod List.length l))
          end
        in
        let up1 =
          { Path.tier = Path.Leaf_l2;
            cable = Topology.leaf_l2_cable topo ~leaf:ls.leaf.leaf ~l2_index;
            dir = Path.Up }
        in
        let down1 =
          { Path.tier = Path.Leaf_l2;
            cable = Topology.leaf_l2_cable topo ~leaf:ld.leaf.leaf ~l2_index;
            dir = Path.Down }
        in
        if ls.tree.pod = ld.tree.pod then Ok { Path.src; dst; hops = [ up1; down1 ] }
        else begin
          (* Spine choice: destination leaf rank within its tree, with
             wraparound over the allocated spine sets at this L2 index on
             both sides. *)
          let* src_spines =
            match find_spine_set ls.tree l2_index with
            | Some s when Array.length s > 0 -> Ok s
            | _ -> fail "pod %d has no spine set at L2 index %d" ls.tree.pod l2_index
          in
          let* dst_spines =
            match find_spine_set ld.tree l2_index with
            | Some s when Array.length s > 0 -> Ok s
            | _ -> fail "pod %d has no spine set at L2 index %d" ld.tree.pod l2_index
          in
          let common =
            List.filter
              (fun j -> Array.exists (fun k -> k = j) dst_spines)
              (Array.to_list src_spines)
          in
          let* spine_index =
            match common with
            | [] -> fail "no common spine between pods %d and %d at L2 index %d"
                      ls.tree.pod ld.tree.pod l2_index
            | l -> Ok (List.nth l (ld.leaf_rank mod List.length l))
          in
          let src_l2 = Topology.l2_of_coords topo ~pod:ls.tree.pod ~index:l2_index in
          let dst_l2 = Topology.l2_of_coords topo ~pod:ld.tree.pod ~index:l2_index in
          Ok
            {
              Path.src;
              dst;
              hops =
                [
                  up1;
                  { Path.tier = Path.L2_spine;
                    cable = Topology.l2_spine_cable topo ~l2:src_l2 ~spine_index;
                    dir = Path.Up };
                  { Path.tier = Path.L2_spine;
                    cable = Topology.l2_spine_cable topo ~l2:dst_l2 ~spine_index;
                    dir = Path.Down };
                  down1;
                ];
            }
        end
      end

let all_pairs topo p =
  let nodes = Partition.nodes p in
  let acc = ref [] in
  Array.iter
    (fun s ->
      Array.iter
        (fun d ->
          if s <> d then
            match path topo p ~src:s ~dst:d with
            | Ok pa -> acc := pa :: !acc
            | Error m -> invalid_arg ("Partition_routing.all_pairs: " ^ m))
        nodes)
    nodes;
  List.rev !acc

let check_connectivity topo p =
  let nodes = Partition.nodes p in
  let alloc = Partition.to_alloc topo p ~bw:1.0 in
  let bad = ref None in
  Array.iter
    (fun s ->
      Array.iter
        (fun d ->
          if s <> d && !bad = None then
            match path topo p ~src:s ~dst:d with
            | Error m -> bad := Some m
            | Ok pa -> (
                match Path.uses_only alloc [ pa ] with
                | Error m -> bad := Some m
                | Ok () -> ()))
        nodes)
    nodes;
  match !bad with Some m -> Error m | None -> Ok ()
