(** Dinic's maximum-flow algorithm on unit-ish capacity graphs.

    Used by the necessity tests: if an allocation violates a §3.2
    condition, some pair of node subsets (A, B) with |A| = |B| = n cannot
    exchange n simultaneous flows — equivalently, the max flow from A to
    B through the allocated channels is < n.  Max flow gives the exact
    routable bound, so tests can assert un-routability without
    enumerating routings. *)

type t

val create : int -> t
(** [create n] is an empty flow network over vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (the reverse residual edge is implicit). *)

val max_flow : t -> s:int -> t:int -> int
(** Computes the maximum [s]→[t] flow.  The network keeps its residual
    state afterwards; create a fresh network for each query. *)
