open Fattree

(* Vertex layout for the flow network:
   0                         source
   1                         sink
   2 + n                     node n (both role endpoints; sources get a
                             capacity-1 edge from the source, dsts one to
                             the sink, so double duty is safe)
   node_base + leaf          leaf switch crossbar
   leaf_base + l2            L2 switch crossbar
   l2_base + spine           spine crossbar *)
let max_concurrent_flows topo (alloc : Alloc.t) ~srcs ~dsts =
  let num_nodes = Topology.num_nodes topo in
  let leaf0 = 2 + num_nodes in
  let l20 = leaf0 + Topology.num_leaves topo in
  let spine0 = l20 + Topology.num_l2 topo in
  let total = spine0 + Topology.num_spines topo in
  let g = Maxflow.create total in
  let source = 0 and sink = 1 in
  (* Node-leaf cables: dedicated, one per direction. *)
  Array.iter
    (fun n ->
      let leaf = Topology.node_leaf topo n in
      Maxflow.add_edge g ~src:source ~dst:(2 + n) ~cap:1;
      Maxflow.add_edge g ~src:(2 + n) ~dst:(leaf0 + leaf) ~cap:1)
    srcs;
  Array.iter
    (fun n ->
      let leaf = Topology.node_leaf topo n in
      Maxflow.add_edge g ~src:(leaf0 + leaf) ~dst:(2 + n) ~cap:1;
      Maxflow.add_edge g ~src:(2 + n) ~dst:sink ~cap:1)
    dsts;
  (* Allocated leaf-L2 cables: one unit each way. *)
  Array.iter
    (fun c ->
      let leaf = Topology.leaf_l2_cable_leaf topo c in
      let i = Topology.leaf_l2_cable_l2_index topo c in
      let l2 = Topology.l2_of_coords topo ~pod:(Topology.leaf_pod topo leaf) ~index:i in
      Maxflow.add_edge g ~src:(leaf0 + leaf) ~dst:(l20 + l2) ~cap:1;
      Maxflow.add_edge g ~src:(l20 + l2) ~dst:(leaf0 + leaf) ~cap:1)
    alloc.leaf_cables;
  (* Allocated L2-spine cables. *)
  Array.iter
    (fun c ->
      let l2 = Topology.l2_spine_cable_l2 topo c in
      let spine = Topology.spine_of_l2_cable topo c in
      Maxflow.add_edge g ~src:(l20 + l2) ~dst:(spine0 + spine) ~cap:1;
      Maxflow.add_edge g ~src:(spine0 + spine) ~dst:(l20 + l2) ~cap:1)
    alloc.l2_cables;
  Maxflow.max_flow g ~s:source ~t:sink

let supports_permutation_lower_bound topo alloc ~srcs ~dsts =
  max_concurrent_flows topo alloc ~srcs ~dsts >= Array.length srcs
