open Fattree

let path topo ~src ~dst =
  let src_leaf = Topology.node_leaf topo src in
  let dst_leaf = Topology.node_leaf topo dst in
  if src_leaf = dst_leaf then Path.local ~src ~dst
  else begin
    let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
    let l2_index = dst mod m1 in
    let up1 =
      { Path.tier = Path.Leaf_l2;
        cable = Topology.leaf_l2_cable topo ~leaf:src_leaf ~l2_index;
        dir = Path.Up }
    in
    let down1 =
      { Path.tier = Path.Leaf_l2;
        cable = Topology.leaf_l2_cable topo ~leaf:dst_leaf ~l2_index;
        dir = Path.Down }
    in
    let src_pod = Topology.node_pod topo src in
    let dst_pod = Topology.node_pod topo dst in
    if src_pod = dst_pod then { Path.src; dst; hops = [ up1; down1 ] }
    else begin
      let spine_index = dst / m1 mod m2 in
      let src_l2 = Topology.l2_of_coords topo ~pod:src_pod ~index:l2_index in
      let dst_l2 = Topology.l2_of_coords topo ~pod:dst_pod ~index:l2_index in
      {
        Path.src;
        dst;
        hops =
          [
            up1;
            { Path.tier = Path.L2_spine;
              cable = Topology.l2_spine_cable topo ~l2:src_l2 ~spine_index;
              dir = Path.Up };
            { Path.tier = Path.L2_spine;
              cable = Topology.l2_spine_cable topo ~l2:dst_l2 ~spine_index;
              dir = Path.Down };
            down1;
          ];
      }
    end
  end

let routes topo flows = List.map (fun (src, dst) -> path topo ~src ~dst) flows
let max_load topo flows = Path.max_channel_load (routes topo flows)
