open Fattree

type loads = {
  leaf_up : int array; (* per leaf-l2 cable *)
  leaf_down : int array;
  l2_up : int array; (* per l2-spine cable *)
  l2_down : int array;
}

let mk_loads topo =
  {
    leaf_up = Array.make (Topology.num_leaf_l2_cables topo) 0;
    leaf_down = Array.make (Topology.num_leaf_l2_cables topo) 0;
    l2_up = Array.make (Topology.num_l2_spine_cables topo) 0;
    l2_down = Array.make (Topology.num_l2_spine_cables topo) 0;
  }

let hop_load loads (h : Path.hop) =
  match (h.tier, h.dir) with
  | Path.Leaf_l2, Path.Up -> loads.leaf_up.(h.cable)
  | Path.Leaf_l2, Path.Down -> loads.leaf_down.(h.cable)
  | Path.L2_spine, Path.Up -> loads.l2_up.(h.cable)
  | Path.L2_spine, Path.Down -> loads.l2_down.(h.cable)

let bump loads (h : Path.hop) =
  match (h.tier, h.dir) with
  | Path.Leaf_l2, Path.Up -> loads.leaf_up.(h.cable) <- loads.leaf_up.(h.cable) + 1
  | Path.Leaf_l2, Path.Down ->
      loads.leaf_down.(h.cable) <- loads.leaf_down.(h.cable) + 1
  | Path.L2_spine, Path.Up -> loads.l2_up.(h.cable) <- loads.l2_up.(h.cable) + 1
  | Path.L2_spine, Path.Down ->
      loads.l2_down.(h.cable) <- loads.l2_down.(h.cable) + 1

(* All minimal up/down paths between two nodes. *)
let candidates topo ~src ~dst =
  let src_leaf = Topology.node_leaf topo src in
  let dst_leaf = Topology.node_leaf topo dst in
  if src_leaf = dst_leaf then [ Path.local ~src ~dst ]
  else begin
    let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
    let src_pod = Topology.node_pod topo src in
    let dst_pod = Topology.node_pod topo dst in
    if src_pod = dst_pod then
      List.init m1 (fun i ->
          {
            Path.src;
            dst;
            hops =
              [
                { Path.tier = Path.Leaf_l2;
                  cable = Topology.leaf_l2_cable topo ~leaf:src_leaf ~l2_index:i;
                  dir = Path.Up };
                { Path.tier = Path.Leaf_l2;
                  cable = Topology.leaf_l2_cable topo ~leaf:dst_leaf ~l2_index:i;
                  dir = Path.Down };
              ];
          })
    else
      List.concat
        (List.init m1 (fun i ->
             List.init m2 (fun j ->
                 let src_l2 = Topology.l2_of_coords topo ~pod:src_pod ~index:i in
                 let dst_l2 = Topology.l2_of_coords topo ~pod:dst_pod ~index:i in
                 {
                   Path.src;
                   dst;
                   hops =
                     [
                       { Path.tier = Path.Leaf_l2;
                         cable = Topology.leaf_l2_cable topo ~leaf:src_leaf ~l2_index:i;
                         dir = Path.Up };
                       { Path.tier = Path.L2_spine;
                         cable = Topology.l2_spine_cable topo ~l2:src_l2 ~spine_index:j;
                         dir = Path.Up };
                       { Path.tier = Path.L2_spine;
                         cable = Topology.l2_spine_cable topo ~l2:dst_l2 ~spine_index:j;
                         dir = Path.Down };
                       { Path.tier = Path.Leaf_l2;
                         cable = Topology.leaf_l2_cable topo ~leaf:dst_leaf ~l2_index:i;
                         dir = Path.Down };
                     ];
                 })))
  end

let route topo flows =
  let loads = mk_loads topo in
  List.map
    (fun (src, dst) ->
      let best =
        List.fold_left
          (fun acc path ->
            let cost_max =
              List.fold_left (fun m h -> max m (hop_load loads h)) 0 path.Path.hops
            in
            let cost_sum =
              List.fold_left (fun s h -> s + hop_load loads h) 0 path.Path.hops
            in
            match acc with
            | None -> Some (path, cost_max, cost_sum)
            | Some (_, bm, bs) when cost_max < bm || (cost_max = bm && cost_sum < bs)
              ->
                Some (path, cost_max, cost_sum)
            | some -> some)
          None
          (candidates topo ~src ~dst)
      in
      match best with
      | Some (path, _, _) ->
          List.iter (bump loads) path.hops;
          path
      | None -> assert false (* candidates is never empty *))
    flows

let max_load topo flows = Path.max_channel_load (route topo flows)

let lower_bound_load topo flows =
  let m1 = Topology.m1 topo in
  let out_counts = Array.make (Topology.num_leaves topo) 0 in
  let in_counts = Array.make (Topology.num_leaves topo) 0 in
  let any = ref 0 in
  List.iter
    (fun (src, dst) ->
      let sl = Topology.node_leaf topo src and dl = Topology.node_leaf topo dst in
      if sl <> dl then begin
        any := 1;
        out_counts.(sl) <- out_counts.(sl) + 1;
        in_counts.(dl) <- in_counts.(dl) + 1
      end)
    flows;
  let ceil_div a b = (a + b - 1) / b in
  let bound = ref !any in
  Array.iter (fun c -> bound := max !bound (ceil_div c m1)) out_counts;
  Array.iter (fun c -> bound := max !bound (ceil_div c m1)) in_counts;
  !bound
