type tier = Leaf_l2 | L2_spine
type dir = Up | Down
type hop = { tier : tier; cable : int; dir : dir }
type t = { src : int; dst : int; hops : hop list }

let local ~src ~dst = { src; dst; hops = [] }

let channel_loads paths =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun p ->
      List.iter
        (fun h ->
          let key = (h.tier, h.dir, h.cable) in
          let cur = try Hashtbl.find tbl key with Not_found -> 0 in
          Hashtbl.replace tbl key (cur + 1))
        p.hops)
    paths;
  tbl

let max_channel_load paths =
  Hashtbl.fold (fun _ v acc -> max v acc) (channel_loads paths) 0

let uses_only (alloc : Fattree.Alloc.t) paths =
  let module IS = Set.Make (Int) in
  let leaf_set = IS.of_list (Array.to_list alloc.leaf_cables) in
  let l2_set = IS.of_list (Array.to_list alloc.l2_cables) in
  let bad = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun h ->
          if !bad = None then begin
            let ok =
              match h.tier with
              | Leaf_l2 -> IS.mem h.cable leaf_set
              | L2_spine -> IS.mem h.cable l2_set
            in
            if not ok then
              bad :=
                Some
                  (Printf.sprintf "flow %d->%d uses unallocated %s cable %d"
                     p.src p.dst
                     (match h.tier with Leaf_l2 -> "leaf-l2" | L2_spine -> "l2-spine")
                     h.cable)
          end)
        p.hops)
    paths;
  match !bad with Some m -> Error m | None -> Ok ()

let one_flow_per_channel paths =
  let loads = channel_loads paths in
  let bad = ref None in
  Hashtbl.iter
    (fun (tier, dir, cable) v ->
      if v > 1 && !bad = None then
        bad :=
          Some
            (Printf.sprintf "channel (%s,%s,%d) carries %d flows"
               (match tier with Leaf_l2 -> "leaf-l2" | L2_spine -> "l2-spine")
               (match dir with Up -> "up" | Down -> "down")
               cable v))
    loads;
  match !bad with Some m -> Error m | None -> Ok ()

let pp _topo ppf p =
  Format.fprintf ppf "%d -> %d via [%s]" p.src p.dst
    (String.concat "; "
       (List.map
          (fun h ->
            Printf.sprintf "%s%s:%d"
              (match h.dir with Up -> "^" | Down -> "v")
              (match h.tier with Leaf_l2 -> "L" | L2_spine -> "S")
              h.cable)
          p.hops))
