(** Constructive rearrangeable-non-blocking routing over partitions.

    This module turns the sufficiency proof of the paper's Appendix A
    (Theorems 4–6) into an algorithm.  Given a legal partition and an
    arbitrary permutation of its nodes, [route_permutation] produces a
    routing with {e at most one flow per directed channel}, using {e only}
    the partition's allocated cables — a per-instance witness that the
    partition is rearrangeable non-blocking.

    Construction, as in the proof: the partition is augmented with
    virtual nodes/leaves so every tree looks full; repeated perfect
    matchings (Hall's Marriage Theorem) peel off one flow per leaf per
    round; each round is sent through a single center network, chosen so
    that real flows from the remainder leaf use centers its real cables
    reach (case analysis of Theorem 6); within the center network the
    same machinery recurses one level down (Theorem 4), mapping flows to
    spines. *)

val route_permutation :
  Fattree.Topology.t ->
  Jigsaw_core.Partition.t ->
  perm:int array ->
  (Path.t list, string) result
(** [route_permutation topo p ~perm] routes the permutation in which the
    [k]-th node of [Partition.nodes p] (sorted ascending) sends one flow
    to the [perm.(k)]-th node.  [perm] must be a permutation of
    [0 .. node_count-1].

    Returns one path per flow (including intra-leaf flows, which in a
    two-level partition still traverse the leaf–L2 stage as in the Clos
    view — a stricter witness than physically necessary).  Errors are
    returned for non-permutations, for partitions failing
    [Conditions.check] (padding allowed), and for internal matching
    failures (which would indicate a violated invariant, not a user
    error). *)

val route_traffic :
  Fattree.Topology.t ->
  Jigsaw_core.Partition.t ->
  flows:(int * int) list ->
  (Path.t list, string) result
(** [route_traffic topo p ~flows] routes a {e partial} one-to-one pattern
    (each node sends at most one flow and receives at most one flow;
    endpoints must be partition nodes).  The pattern is completed to a
    full permutation with filler self-flows — any one-to-one pattern is a
    sub-permutation, so the guarantee carries over — and only the
    requested flows' paths are returned. *)

val route_and_verify :
  Fattree.Topology.t ->
  Jigsaw_core.Partition.t ->
  perm:int array ->
  (Path.t list, string) result
(** [route_permutation] followed by the two checks: paths use only
    allocated cables and no channel carries two flows. *)

val demo_permutation : n:int -> shift:int -> int array
(** [demo_permutation ~n ~shift] is the cyclic shift permutation
    [k -> (k + shift) mod n] — the classic worst case for static routing
    and a convenient stress pattern. *)
