open Fattree
open Jigsaw_core

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun m -> Error m) fmt

(* ------------------------------------------------------------------ *)
(* Round-based color assignment (the shared engine of Theorems 4-6).   *)
(*                                                                     *)
(* Input: flows over [n] switches such that every switch has exactly   *)
(* [d] outgoing and [d] incoming flows (virtual padding included by    *)
(* the caller).  Output: a color in [0, d) per flow such that each     *)
(* switch sees every color at most once on each side, and flows whose  *)
(* payload is real and which leave the remainder switch [rem] receive  *)
(* colors below [real_count].                                          *)
(* ------------------------------------------------------------------ *)

type 'a flow = { src_sw : int; dst_sw : int; real : bool; payload : 'a }

let assign_colors ~n ~d ~rem ~real_count (flows : 'a flow array) :
    (int array, string) result =
  let f = Array.length flows in
  if f <> n * d then fail "assign_colors: %d flows but n*d = %d" f (n * d)
  else begin
    (* Stacks of remaining flow ids per (src, dst) pair. *)
    let stacks : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i fl ->
        let key = (fl.src_sw, fl.dst_sw) in
        match Hashtbl.find_opt stacks key with
        | Some r -> r := i :: !r
        | None -> Hashtbl.add stacks key (ref [ i ]))
      flows;
    let colors = Array.make f (-1) in
    let color_used = Array.make d false in
    let next_unused lo hi =
      let rec go c = if c >= hi then None else if color_used.(c) then go (c + 1) else Some c in
      go lo
    in
    let error = ref None in
    for _round = 0 to d - 1 do
      if !error = None then begin
        let g = Matching.create ~left:n ~right:n in
        Hashtbl.iter
          (fun (u, v) r -> if !r <> [] then Matching.add_edge g u v)
          stacks;
        match Matching.perfect_matching g with
        | None -> error := Some "assign_colors: no perfect matching (invariant broken)"
        | Some pairs ->
            (* Pop one concrete flow per matched pair. *)
            let matched =
              List.map
                (fun (u, v) ->
                  let r = Hashtbl.find stacks (u, v) in
                  match !r with
                  | [] -> assert false
                  | i :: rest ->
                      r := rest;
                      i)
                pairs
            in
            let color =
              match rem with
              | Some s -> begin
                  (* The flow leaving the remainder switch decides the
                     color class for the whole round. *)
                  let out_flow =
                    List.find_opt (fun i -> flows.(i).src_sw = s) matched
                  in
                  match out_flow with
                  | None -> next_unused 0 d (* rem switch absent: free choice *)
                  | Some i ->
                      if flows.(i).real then next_unused 0 real_count
                      else next_unused real_count d
                end
              | None -> next_unused 0 d
            in
            (match color with
            | None -> error := Some "assign_colors: color classes exhausted (invariant broken)"
            | Some c ->
                color_used.(c) <- true;
                List.iter (fun i -> colors.(i) <- c) matched)
      end
    done;
    match !error with Some m -> Error m | None -> Ok colors
  end

(* ------------------------------------------------------------------ *)
(* Abstract (augmented) view of a partition.                           *)
(* ------------------------------------------------------------------ *)

(* A physical or virtual node position in the augmented tree. *)
type anode = {
  tree_a : int; (* abstract tree index *)
  leaf_a : int; (* abstract leaf index, global over all trees *)
  node : int; (* physical node id, or -1 if virtual *)
  pod : int; (* physical pod, or -1 if the leaf is virtual *)
  leaf : int; (* physical leaf id, or -1 *)
}

type aview = {
  n_l : int;
  lpt : int; (* abstract leaves per tree: l_t, or l_t+1 for a two-level
                partition whose remainder leaf is an extra leaf *)
  num_trees : int;
  anodes : anode array; (* length num_trees * l_t * n_l *)
  num_leaves_a : int;
  rem_leaf_a : int option; (* abstract leaf index of the remainder leaf *)
  rem_tree_a : int option;
  n_rl : int;
  s_ord : int array; (* L2 indices, remainder subset first *)
  spine_ord : int array array; (* per position c of s_ord: spine indices *)
  spine_real : int array; (* per position c: real prefix length *)
  node_pos : (int, int) Hashtbl.t; (* physical node -> index in anodes *)
}

let sorted_diff a b =
  (* elements of a not in b, preserving order *)
  Array.of_list
    (List.filter (fun x -> not (Array.exists (fun y -> y = x) b)) (Array.to_list a))

let find_spine_set (tr : Partition.tree_alloc) i =
  let r = ref None in
  Array.iter (fun (j, s) -> if i = j then r := Some s) tr.spine_sets;
  !r

let build_view topo (p : Partition.t) : (aview, string) result =
  let* () = Conditions.check ~require_exact_size:false topo p in
  let trees =
    Array.of_list
      (Array.to_list p.full_trees
      @ match p.rem_tree with None -> [] | Some tr -> [ tr ])
  in
  let two_level = Partition.kind p = Two_level in
  let n_l = Partition.n_l p in
  let s = Partition.l2_index_set p in
  (* In a two-level partition the single tree plays the remainder-tree
     role for leaf-level augmentation. *)
  let rem_tree_phys : Partition.tree_alloc option =
    if two_level then Some trees.(0) else p.rem_tree
  in
  let l_t = Array.length p.full_trees.(0).full_leaves in
  let num_trees = Array.length trees in
  let rem_tree_a =
    match p.rem_tree with None -> None | Some _ -> Some (num_trees - 1)
  in
  (* Remainder leaf (if any) lives in the remainder tree (or the single
     two-level tree). *)
  let rem_leaf_phys =
    match rem_tree_phys with None -> None | Some tr -> tr.rem_leaf
  in
  (* Abstract leaves per tree: in a two-level partition the remainder
     leaf is an extra leaf of the (single) tree; in a three-level
     partition it occupies one of the remainder tree's l_t slots. *)
  let lpt = if two_level && rem_leaf_phys <> None then l_t + 1 else l_t in
  let n_rl =
    match rem_leaf_phys with None -> 0 | Some la -> Array.length la.nodes
  in
  let sr =
    match rem_leaf_phys with None -> [||] | Some la -> la.l2_indices
  in
  let s_ord = Array.append sr (sorted_diff s sr) in
  (* Spine orders per center position (three-level only). *)
  let spine_ord, spine_real =
    if two_level then
      (Array.make (Array.length s_ord) [||], Array.make (Array.length s_ord) 0)
    else begin
      let full0 = p.full_trees.(0) in
      let ord = Array.make (Array.length s_ord) [||] in
      let real = Array.make (Array.length s_ord) 0 in
      Array.iteri
        (fun c i ->
          let s_star =
            match find_spine_set full0 i with
            | Some arr -> arr
            | None -> [||]
          in
          let s_star_r =
            match p.rem_tree with
            | None -> [||]
            | Some tr -> (
                match find_spine_set tr i with Some arr -> arr | None -> [||])
          in
          ord.(c) <- Array.append s_star_r (sorted_diff s_star s_star_r);
          real.(c) <-
            (match p.rem_tree with
            | None -> Array.length s_star
            | Some _ -> Array.length s_star_r))
        s_ord;
      (ord, real)
    end
  in
  (* Lay out abstract nodes: each tree gets l_t abstract leaves of n_l
     slots; the remainder tree's layout is [full leaves; remainder leaf;
     virtual leaves]. *)
  let anodes = Array.make (num_trees * lpt * n_l) { tree_a = -1; leaf_a = -1; node = -1; pod = -1; leaf = -1 } in
  let rem_leaf_a = ref None in
  Array.iteri
    (fun k tr ->
      let leaf_allocs =
        Array.to_list tr.Partition.full_leaves
        @ (match tr.rem_leaf with None -> [] | Some la -> [ la ])
      in
      List.iteri
        (fun li la ->
          if tr.rem_leaf <> None && li = Array.length tr.full_leaves then
            rem_leaf_a := Some ((k * lpt) + li);
          for slot = 0 to n_l - 1 do
            let node =
              if slot < Array.length la.Partition.nodes then la.nodes.(slot)
              else -1
            in
            anodes.(((k * lpt) + li) * n_l + slot) <-
              {
                tree_a = k;
                leaf_a = (k * lpt) + li;
                node;
                pod = tr.pod;
                leaf = la.leaf;
              }
          done)
        leaf_allocs;
      (* Virtual leaves fill the rest of the tree. *)
      for li = List.length leaf_allocs to lpt - 1 do
        for slot = 0 to n_l - 1 do
          anodes.(((k * lpt) + li) * n_l + slot) <-
            { tree_a = k; leaf_a = (k * lpt) + li; node = -1; pod = tr.pod; leaf = -1 }
        done
      done)
    trees;
  let node_pos = Hashtbl.create 64 in
  Array.iteri
    (fun idx an -> if an.node >= 0 then Hashtbl.add node_pos an.node idx)
    anodes;
  Ok
    {
      n_l;
      lpt;
      num_trees;
      anodes;
      num_leaves_a = num_trees * lpt;
      rem_leaf_a = !rem_leaf_a;
      rem_tree_a;
      n_rl;
      s_ord;
      spine_ord;
      spine_real;
      node_pos;
    }

(* ------------------------------------------------------------------ *)
(* The router.                                                         *)
(* ------------------------------------------------------------------ *)

let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun v -> if v < 0 || v >= n || seen.(v) then ok := false else seen.(v) <- true)
    perm;
  !ok

(* Flow payload: (src anode index, dst anode index); virtual flows carry
   the padding slot as both ends. *)
let build_flows view nodes perm =
  let real_flows =
    Array.to_list
      (Array.mapi
         (fun k dst_k ->
           let src = nodes.(k) and dst = nodes.(dst_k) in
           let si = Hashtbl.find view.node_pos src in
           let di = Hashtbl.find view.node_pos dst in
           let sa = view.anodes.(si) and da = view.anodes.(di) in
           {
             src_sw = sa.leaf_a;
             dst_sw = da.leaf_a;
             real = true;
             payload = (si, di);
           })
         perm)
  in
  let virtual_flows = ref [] in
  Array.iteri
    (fun idx an ->
      if an.node < 0 then
        virtual_flows :=
          { src_sw = an.leaf_a; dst_sw = an.leaf_a; real = false; payload = (idx, idx) }
          :: !virtual_flows)
    view.anodes;
  Array.of_list (real_flows @ !virtual_flows)

let route_permutation topo (p : Partition.t) ~perm =
  let nodes = Partition.nodes p in
  let n = Array.length nodes in
  if Array.length perm <> n then fail "perm length %d <> %d nodes" (Array.length perm) n
  else if not (is_permutation perm) then fail "not a permutation"
  else
    let* view = build_view topo p in
    let flows = build_flows view nodes perm in
    (* Top level: one color (= center network) per flow. *)
    let* centers =
      assign_colors ~n:view.num_leaves_a ~d:view.n_l ~rem:view.rem_leaf_a
        ~real_count:view.n_rl flows
    in
    let two_level = Array.length view.spine_ord.(0) = 0 in
    (* Per center, solve the spine-level subproblem (three-level only). *)
    let spine_color = Array.make (Array.length flows) (-1) in
    let* () =
      if two_level then Ok ()
      else begin
        let rec per_center c =
          if c >= Array.length view.s_ord then Ok ()
          else begin
            let idxs = ref [] in
            Array.iteri
              (fun i col -> if col = c then idxs := i :: !idxs)
              centers;
            let sub =
              Array.of_list
                (List.map
                   (fun i ->
                     let fl = flows.(i) in
                     let sa = view.anodes.(fst fl.payload) in
                     let da = view.anodes.(snd fl.payload) in
                     {
                       src_sw = sa.tree_a;
                       dst_sw = da.tree_a;
                       real = fl.real;
                       payload = i;
                     })
                   !idxs)
            in
            let* cols =
              assign_colors ~n:view.num_trees ~d:view.lpt ~rem:view.rem_tree_a
                ~real_count:view.spine_real.(c) sub
            in
            Array.iteri (fun k fl -> spine_color.(fl.payload) <- cols.(k)) sub;
            per_center (c + 1)
          end
        in
        per_center 0
      end
    in
    (* Emit physical paths for real flows. *)
    let paths = ref [] in
    Array.iteri
      (fun i fl ->
        if fl.real then begin
          let sa = view.anodes.(fst fl.payload) in
          let da = view.anodes.(snd fl.payload) in
          let c = centers.(i) in
          let l2_index = view.s_ord.(c) in
          let up1 =
            {
              Path.tier = Path.Leaf_l2;
              cable = Topology.leaf_l2_cable topo ~leaf:sa.leaf ~l2_index;
              dir = Path.Up;
            }
          in
          let down1 =
            {
              Path.tier = Path.Leaf_l2;
              cable = Topology.leaf_l2_cable topo ~leaf:da.leaf ~l2_index;
              dir = Path.Down;
            }
          in
          let hops =
            if two_level then [ up1; down1 ]
            else begin
              let j = view.spine_ord.(c).(spine_color.(i)) in
              let src_l2 = Topology.l2_of_coords topo ~pod:sa.pod ~index:l2_index in
              let dst_l2 = Topology.l2_of_coords topo ~pod:da.pod ~index:l2_index in
              [
                up1;
                {
                  Path.tier = Path.L2_spine;
                  cable = Topology.l2_spine_cable topo ~l2:src_l2 ~spine_index:j;
                  dir = Path.Up;
                };
                {
                  Path.tier = Path.L2_spine;
                  cable = Topology.l2_spine_cable topo ~l2:dst_l2 ~spine_index:j;
                  dir = Path.Down;
                };
                down1;
              ]
            end
          in
          paths := { Path.src = sa.node; dst = da.node; hops } :: !paths
        end)
      flows;
    Ok (List.rev !paths)

let route_traffic topo (p : Partition.t) ~flows =
  let nodes = Partition.nodes p in
  let n = Array.length nodes in
  let index_of = Hashtbl.create 64 in
  Array.iteri (fun i x -> Hashtbl.add index_of x i) nodes;
  let lookup what x =
    match Hashtbl.find_opt index_of x with
    | Some i -> Ok i
    | None -> fail "%s node %d is not in the partition" what x
  in
  (* Build a partial permutation, rejecting duplicate senders/receivers. *)
  let dst_of = Array.make n (-1) in
  let has_dst = Array.make n false in
  let is_dst = Array.make n false in
  let rec fill = function
    | [] -> Ok ()
    | (s, d) :: rest ->
        let* si = lookup "source" s in
        let* di = lookup "destination" d in
        if has_dst.(si) then fail "node %d sends twice" s
        else if is_dst.(di) then fail "node %d receives twice" d
        else begin
          dst_of.(si) <- di;
          has_dst.(si) <- true;
          is_dst.(di) <- true;
          fill rest
        end
  in
  let* () = fill flows in
  (* Complete with a matching of the remaining senders to the remaining
     receivers (identity-biased: self-flows where possible). *)
  let free_dsts = ref [] in
  for i = n - 1 downto 0 do
    if not is_dst.(i) then free_dsts := i :: !free_dsts
  done;
  (* First give every unfilled sender its own slot if free, then hand out
     the rest in order. *)
  for i = 0 to n - 1 do
    if (not has_dst.(i)) && not is_dst.(i) then begin
      dst_of.(i) <- i;
      has_dst.(i) <- true;
      is_dst.(i) <- true;
      free_dsts := List.filter (fun j -> j <> i) !free_dsts
    end
  done;
  for i = 0 to n - 1 do
    if not has_dst.(i) then begin
      match !free_dsts with
      | j :: rest ->
          dst_of.(i) <- j;
          has_dst.(i) <- true;
          is_dst.(j) <- true;
          free_dsts := rest
      | [] -> ()
    end
  done;
  let* paths = route_permutation topo p ~perm:dst_of in
  (* Return only the requested flows. *)
  let module PS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let wanted = PS.of_list flows in
  Ok (List.filter (fun (pa : Path.t) -> PS.mem (pa.src, pa.dst) wanted) paths)

let route_and_verify topo p ~perm =
  let* paths = route_permutation topo p ~perm in
  let alloc = Partition.to_alloc topo p ~bw:1.0 in
  let* () = Path.uses_only alloc paths in
  let* () = Path.one_flow_per_channel paths in
  Ok paths

let demo_permutation ~n ~shift = Array.init n (fun k -> (k + shift) mod n)
