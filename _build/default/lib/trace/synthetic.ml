let bw_classes = [| 0.125; 0.25; 0.375; 0.5 |]

let draw_bw prng = bw_classes.(Sim.Prng.int prng ~bound:4)

let synth ~mean_size ~n_jobs ~seed ~max_size =
  let prng = Sim.Prng.create ~seed in
  let jobs =
    Array.init n_jobs (fun id ->
        let size =
          let s =
            int_of_float (Float.round (Sim.Prng.exponential prng ~mean:(float_of_int mean_size)))
          in
          max 1 (min max_size s)
        in
        let runtime = Sim.Prng.float_in prng ~lo:20.0 ~hi:3000.0 in
        Job.v ~id ~size ~runtime ~bw_class:(draw_bw prng) ())
  in
  Workload.create ~name:(Printf.sprintf "Synth-%d" mean_size) ~system_nodes:0 jobs

(* Round to the nearest power of two, at least 1. *)
let nearest_pow2 n =
  if n <= 1 then 1
  else begin
    let lower = 1 lsl (int_of_float (Float.log2 (float_of_int n))) in
    let upper = lower * 2 in
    if n - lower <= upper - n then lower else upper
  end

(* Sizes "roughly exponential in shape but with more job sizes that are
   powers of two" (paper §5.1). *)
let hpc_size prng ~mean ~cap =
  let s =
    int_of_float (Float.round (Sim.Prng.exponential prng ~mean:(float_of_int mean)))
  in
  let s = max 1 (min cap s) in
  if Sim.Prng.float prng ~bound:1.0 < 0.45 then min cap (nearest_pow2 s) else s

(* Runtimes "skewed towards short-running jobs with only a handful of
   long-running jobs": lognormal body with a clamped range. *)
let hpc_runtime prng ~lo ~hi ~median ~sigma =
  let r = Sim.Prng.lognormal prng ~mu:(Float.log median) ~sigma in
  Float.max lo (Float.min hi r)

let thunder_like ?(runtime_cap = 172362.0) ?(huge_prob = 0.0008) ~n_jobs ~seed
    () =
  let prng = Sim.Prng.create ~seed in
  let jobs =
    Array.init n_jobs (fun id ->
        let size =
          if Sim.Prng.float prng ~bound:1.0 < huge_prob then
            Sim.Prng.int_in prng ~lo:512 ~hi:965
          else hpc_size prng ~mean:18 ~cap:512
        in
        let runtime =
          hpc_runtime prng ~lo:1.0 ~hi:runtime_cap ~median:400.0 ~sigma:1.9
        in
        Job.v ~id ~size ~runtime ~bw_class:(draw_bw prng) ())
  in
  Workload.create ~name:"Thunder" ~system_nodes:1024 jobs

let atlas_like ?(runtime_cap = 342754.0) ?(huge_prob = 0.002) ~n_jobs ~seed ()
    =
  let prng = Sim.Prng.create ~seed in
  let jobs =
    Array.init n_jobs (fun id ->
        let size =
          let r = Sim.Prng.float prng ~bound:1.0 in
          if r < huge_prob then 1024 (* whole-machine requests *)
          else if r < 2.0 *. huge_prob then Sim.Prng.int_in prng ~lo:512 ~hi:1000
          else hpc_size prng ~mean:24 ~cap:512
        in
        let runtime =
          hpc_runtime prng ~lo:1.0 ~hi:runtime_cap ~median:700.0 ~sigma:1.9
        in
        Job.v ~id ~size ~runtime ~bw_class:(draw_bw prng) ())
  in
  Workload.create ~name:"Atlas" ~system_nodes:1152 jobs

let cab_like ?(runtime_cap = 86429.0) ~month ~n_jobs ~seed ~target_load
    ~arrival_scale () =
  let prng = Sim.Prng.create ~seed in
  let system_nodes = 1296 in
  let sizes_runtimes =
    Array.init n_jobs (fun _ ->
        let size =
          let r = Sim.Prng.float prng ~bound:1.0 in
          (* Cab carried a sprinkling of capability jobs up to ~257 nodes
             (Table 1); the bulk of the distribution is small. *)
          if r < 0.002 then Sim.Prng.int_in prng ~lo:250 ~hi:258
          else if r < 0.012 then Sim.Prng.int_in prng ~lo:100 ~hi:249
          else hpc_size prng ~mean:9 ~cap:99
        in
        let runtime =
          hpc_runtime prng ~lo:1.0 ~hi:runtime_cap ~median:220.0 ~sigma:1.9
        in
        (size, runtime))
  in
  (* Poisson arrivals: pick the rate so that offered load (node-seconds
     demanded per node-second of capacity) matches target_load. *)
  let mean_work =
    Array.fold_left
      (fun acc (s, r) -> acc +. (float_of_int s *. r))
      0.0 sizes_runtimes
    /. float_of_int n_jobs
  in
  let rate = target_load *. float_of_int system_nodes /. mean_work in
  let clock = ref 0.0 in
  let jobs =
    Array.mapi
      (fun id (size, runtime) ->
        clock := !clock +. Sim.Prng.exponential prng ~mean:(1.0 /. rate);
        Job.v ~id ~size ~runtime
          ~arrival:(!clock *. arrival_scale)
          ~bw_class:(draw_bw prng) ())
      sizes_runtimes
  in
  Workload.create ~name:(month ^ "-Cab") ~system_nodes jobs

let assign_bw_classes ~seed (w : Workload.t) =
  let prng = Sim.Prng.create ~seed in
  Workload.create ~name:w.name ~system_nodes:w.system_nodes
    (Array.map (fun (j : Job.t) -> { j with bw_class = draw_bw prng }) w.jobs)
