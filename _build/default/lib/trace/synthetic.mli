(** Synthetic trace generators.

    [synth] reproduces the paper's synthetic traces (modeled on JUROPA,
    following the LaaS paper): job sizes drawn from an exponential
    distribution, runtimes uniform on [20, 3000] s, all arriving at time
    zero.

    The [*_like] generators are deterministic stand-ins for the LLNL
    traces the paper uses (Thunder, Atlas, Cab), which are not available
    in this sealed environment (see DESIGN.md §3).  They reproduce the
    published characteristics: exponential-ish size distributions with
    extra mass on powers of two, runtimes heavily skewed toward short
    jobs, Atlas's occasional whole-machine requests, and — for Cab —
    retained arrival times forming a Poisson process tuned to a target
    offered load. *)

val synth :
  mean_size:int -> n_jobs:int -> seed:int -> max_size:int -> Workload.t
(** Paper's Synth-N traces: exponential sizes with the given mean (capped
    at [max_size], normally the cluster size), uniform runtimes 20–3000 s,
    arrivals all zero. *)

val thunder_like :
  ?runtime_cap:float -> ?huge_prob:float -> n_jobs:int -> seed:int -> unit -> Workload.t
(** 1024-node system; power-of-two-boosted sizes up to 965; lognormal
    short-skewed runtimes in [1, 172362] s; arrivals zero. *)

val atlas_like :
  ?runtime_cap:float -> ?huge_prob:float -> n_jobs:int -> seed:int -> unit -> Workload.t
(** 1152-node system; includes rare whole-machine (1024-node) requests —
    the paper's worst case for every scheduler; runtimes in [1, 342754]
    s; arrivals zero. *)

val cab_like :
  ?runtime_cap:float ->
  month:string ->
  n_jobs:int ->
  seed:int ->
  target_load:float ->
  arrival_scale:float ->
  unit ->
  Workload.t
(** 1296-node system with retained Poisson arrivals.  [target_load] is
    the offered load (demand / capacity) before [arrival_scale] is
    applied; the paper's Aug/Nov scaling by 0.5 doubles effective load.
    Sizes are capped at 258 (Table 1). *)

val assign_bw_classes : seed:int -> Workload.t -> Workload.t
(** Randomly reassigns every job one of the four LC+S bandwidth classes
    (0.125, 0.25, 0.375, 0.5 of usable link capacity), as §5.4.2. *)
