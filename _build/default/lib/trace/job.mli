(** Jobs as they appear in scheduling traces. *)

type t = {
  id : int;  (** Dense identifier, unique within a trace. *)
  size : int;  (** Requested node count (>= 1). *)
  runtime : float;
      (** Baseline runtime in seconds — the runtime observed (or assumed)
          under traditional scheduling, network interference included. *)
  est_runtime : float;
      (** The user-supplied runtime estimate (requested wall time).  EASY
          backfilling decisions use estimates; actual completions use
          {!runtime}.  Trace generators default it to the actual runtime
          (the paper's traces carry no usable estimates); SWF input takes
          it from the requested-time field when present. *)
  arrival : float;  (** Submission time in seconds. *)
  bw_class : float;
      (** Average per-link bandwidth demand as a fraction of usable link
          capacity, used only by the LC+S scheduler (paper §5.4.2: one of
          0.5/1.0/1.5/2.0 GB/s over a 4 GB/s usable cap, i.e. 0.125,
          0.25, 0.375 or 0.5). *)
}

val v :
  ?arrival:float ->
  ?bw_class:float ->
  ?est_runtime:float ->
  id:int ->
  size:int ->
  runtime:float ->
  unit ->
  t
(** Constructor with defaults [arrival = 0.], [bw_class = 0.25],
    [est_runtime = runtime].  Validates [size >= 1], [runtime > 0] and
    [est_runtime >= runtime] (schedulers kill jobs at their estimate;
    under-estimates would truncate jobs, which the simulator does not
    model). *)

val is_large : t -> bool
(** Jobs over 100 nodes — the paper's "large job" threshold for the
    turnaround-time breakdown (Figure 7). *)

val pp : Format.formatter -> t -> unit
