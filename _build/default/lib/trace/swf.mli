(** Standard Workload Format (SWF) input/output.

    The parallel-workloads archive format used for the Thunder and Atlas
    logs the paper draws on (Feitelson's archive, reference [12]).  Each
    data line has 18 whitespace-separated fields; we read the ones the
    simulator needs — job number (1), submit time (2), run time (4) and
    requested processors (8, falling back to allocated processors (5)) —
    and ignore the rest.  Comment lines start with [';'].

    Real traces can therefore be dropped into the benchmark harness
    unmodified, replacing the synthetic stand-ins. *)

val parse_line : int -> string -> (Job.t option, string) result
(** [parse_line id line] is [Ok None] for comments/blank lines, [Ok (Some
    job)] for a well-formed data line (jobs with non-positive size or
    runtime are also skipped as [Ok None], matching common practice), and
    [Error _] for malformed input.  [id] overrides the job number so ids
    stay dense. *)

val parse_string :
  name:string -> system_nodes:int -> string -> (Workload.t, string) result
(** Parses a whole SWF document. *)

val load : name:string -> system_nodes:int -> string -> (Workload.t, string) result
(** [load ~name ~system_nodes path] reads and parses an SWF file. *)

val to_string : Workload.t -> string
(** Renders a workload as SWF (fields the simulator does not model are
    written as [-1]). *)

val save : Workload.t -> string -> unit
(** Writes {!to_string} to a file. *)
