type t = {
  num_jobs : int;
  mean_size : float;
  median_size : float;
  max_size : int;
  pow2_fraction : float;
  single_node_fraction : float;
  mean_runtime : float;
  median_runtime : float;
  p99_runtime : float;
  max_runtime : float;
  total_node_seconds : float;
  offered_load : float option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let analyze (w : Workload.t) =
  let jobs = w.jobs in
  let n = Array.length jobs in
  if n = 0 then
    {
      num_jobs = 0;
      mean_size = 0.0;
      median_size = 0.0;
      max_size = 0;
      pow2_fraction = 0.0;
      single_node_fraction = 0.0;
      mean_runtime = 0.0;
      median_runtime = 0.0;
      p99_runtime = 0.0;
      max_runtime = 0.0;
      total_node_seconds = 0.0;
      offered_load = None;
    }
  else begin
    let sizes = Array.map (fun (j : Job.t) -> float_of_int j.size) jobs in
    let runtimes = Array.map (fun (j : Job.t) -> j.runtime) jobs in
    let count p = Array.fold_left (fun c j -> if p j then c + 1 else c) 0 jobs in
    let offered_load =
      if w.has_arrivals && w.system_nodes > 0 then begin
        let span =
          Array.fold_left (fun a (j : Job.t) -> Float.max a j.arrival) 0.0 jobs
        in
        if span > 0.0 then
          Some
            (Workload.total_node_seconds w
            /. (float_of_int w.system_nodes *. span))
        else None
      end
      else None
    in
    {
      num_jobs = n;
      mean_size = Sim.Stats.mean sizes;
      median_size = Sim.Stats.median sizes;
      max_size = Workload.max_job_size w;
      pow2_fraction =
        float_of_int (count (fun (j : Job.t) -> is_pow2 j.size)) /. float_of_int n;
      single_node_fraction =
        float_of_int (count (fun (j : Job.t) -> j.size = 1)) /. float_of_int n;
      mean_runtime = Sim.Stats.mean runtimes;
      median_runtime = Sim.Stats.median runtimes;
      p99_runtime = Sim.Stats.percentile runtimes 99.0;
      max_runtime = Workload.max_runtime w;
      total_node_seconds = Workload.total_node_seconds w;
      offered_load;
    }
  end

let size_histogram (w : Workload.t) =
  let max_size = max 1 (Workload.max_job_size w) in
  let rec bounds acc b = if b >= max_size then List.rev (b :: acc) else bounds (b :: acc) (b * 2) in
  let bs = bounds [] 1 in
  List.map
    (fun ub ->
      let lb = ub / 2 in
      let c =
        Array.fold_left
          (fun c (j : Job.t) -> if j.size > lb && j.size <= ub then c + 1 else c)
          0 w.jobs
      in
      (ub, c))
    bs

let load_profile (w : Workload.t) ~buckets =
  if (not w.has_arrivals) || w.system_nodes = 0 || buckets < 1 then
    [| (0.0, 0.0) |]
  else begin
    let span =
      Array.fold_left (fun a (j : Job.t) -> Float.max a j.arrival) 0.0 w.jobs
    in
    if span <= 0.0 then [| (0.0, 0.0) |]
    else begin
      let width = span /. float_of_int buckets in
      let demand = Array.make buckets 0.0 in
      Array.iter
        (fun (j : Job.t) ->
          let b = min (buckets - 1) (int_of_float (j.arrival /. width)) in
          demand.(b) <- demand.(b) +. (float_of_int j.size *. j.runtime))
        w.jobs;
      Array.mapi
        (fun b d ->
          (float_of_int b *. width, d /. (float_of_int w.system_nodes *. width)))
        demand
    end
  end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>jobs: %d@,sizes: mean %.1f, median %.0f, max %d (%.0f%% powers of two, %.0f%% single-node)@,runtimes: mean %.0fs, median %.0fs, p99 %.0fs, max %.0fs@,demand: %.3g node-seconds%a@]"
    t.num_jobs t.mean_size t.median_size t.max_size
    (100.0 *. t.pow2_fraction)
    (100.0 *. t.single_node_fraction)
    t.mean_runtime t.median_runtime t.p99_runtime t.max_runtime
    t.total_node_seconds
    (fun ppf -> function
      | Some l -> Format.fprintf ppf "@,offered load: %.2f" l
      | None -> ())
    t.offered_load
