type t = {
  id : int;
  size : int;
  runtime : float;
  est_runtime : float;
  arrival : float;
  bw_class : float;
}

let v ?(arrival = 0.0) ?(bw_class = 0.25) ?est_runtime ~id ~size ~runtime () =
  if size < 1 then invalid_arg "Job.v: size must be >= 1";
  if runtime <= 0.0 then invalid_arg "Job.v: runtime must be positive";
  if arrival < 0.0 then invalid_arg "Job.v: arrival must be >= 0";
  if bw_class <= 0.0 || bw_class > 1.0 then
    invalid_arg "Job.v: bw_class must be in (0, 1]";
  let est_runtime = Option.value est_runtime ~default:runtime in
  if est_runtime < runtime then
    invalid_arg "Job.v: est_runtime must be >= runtime";
  { id; size; runtime; est_runtime; arrival; bw_class }

let is_large j = j.size > 100

let pp ppf j =
  Format.fprintf ppf "job %d: %d nodes, %.0fs, arrives %.0f" j.id j.size
    j.runtime j.arrival
