lib/trace/scenario.mli: Job
