lib/trace/swf.ml: Array Buffer Float In_channel Job List Out_channel Printf String Workload
