lib/trace/job.mli: Format
