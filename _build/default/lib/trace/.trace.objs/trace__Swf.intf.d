lib/trace/swf.mli: Job Workload
