lib/trace/workload.ml: Array Float Format Job
