lib/trace/analysis.ml: Array Float Format Job List Sim Workload
