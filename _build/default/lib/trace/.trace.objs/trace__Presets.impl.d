lib/trace/presets.ml: List Synthetic Workload
