lib/trace/synthetic.ml: Array Float Job Printf Sim Workload
