lib/trace/presets.mli: Workload
