lib/trace/job.ml: Format Option
