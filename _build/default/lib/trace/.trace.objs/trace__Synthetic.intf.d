lib/trace/synthetic.mli: Workload
