lib/trace/scenario.ml: Array Float Job Printf Sim
