lib/trace/workload.mli: Format Job
