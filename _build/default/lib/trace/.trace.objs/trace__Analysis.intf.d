lib/trace/analysis.mli: Format Workload
