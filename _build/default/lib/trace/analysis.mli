(** Workload analysis: distribution summaries for traces.

    Used to verify that the synthetic stand-ins reproduce the
    characteristics the paper states for the LLNL traces (§5.1): size
    distributions "roughly exponential in shape but with more job sizes
    that are powers of two", runtimes "skewed towards short-running
    jobs", and — for Cab — the offered-load profile of the retained
    arrival process. *)

type t = {
  num_jobs : int;
  mean_size : float;
  median_size : float;
  max_size : int;
  pow2_fraction : float;
      (** Fraction of jobs whose size is an exact power of two. *)
  single_node_fraction : float;
  mean_runtime : float;
  median_runtime : float;
  p99_runtime : float;
  max_runtime : float;
  total_node_seconds : float;
  offered_load : float option;
      (** For traces with arrivals: total demand divided by
          (system_nodes * arrival span); [None] for all-at-zero traces
          or when the system size is unknown. *)
}

val analyze : Workload.t -> t

val size_histogram : Workload.t -> (int * int) list
(** Job counts per power-of-two size bucket: [(upper_bound, count)] for
    buckets (0,1], (1,2], (2,4], ... up to the max size. *)

val load_profile : Workload.t -> buckets:int -> (float * float) array
(** For traces with arrivals: the offered load (node-seconds arriving /
    capacity) per time bucket over the arrival span.  Uses
    [system_nodes]; all-at-zero traces yield a single bucket. *)

val pp : Format.formatter -> t -> unit
