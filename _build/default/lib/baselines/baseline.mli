(** The traditional, unconstrained scheduler's placement policy.

    Nodes are allocated first-fit anywhere on the machine with no regard
    for the network: exactly what production schedulers do today.
    Utilization is maximal, but jobs share links (the interference the
    paper sets out to eliminate; see [Routing.Congestion]). *)

val get_allocation :
  Fattree.State.t -> job:int -> size:int -> Fattree.Alloc.t option
(** First [size] free nodes in id order, as a nodes-only allocation;
    [None] if fewer than [size] nodes are free. *)
