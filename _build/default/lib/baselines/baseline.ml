open Fattree

let get_allocation st ~job ~size =
  if size <= 0 || State.total_free_nodes st < size then None
  else begin
    let topo = State.topo st in
    let num = Topology.num_nodes topo in
    let nodes = Array.make size (-1) in
    let found = ref 0 in
    let n = ref 0 in
    while !found < size && !n < num do
      if State.node_free st !n then begin
        nodes.(!found) <- !n;
        incr found
      end;
      incr n
    done;
    if !found < size then None
    else Some (Alloc.nodes_only ~job ~size nodes)
  end
