open Fattree

(* First [size] free nodes in id order.  Walks leaves through the
   state's cached per-leaf summaries (free counts and slot masks), which
   skips busy leaves in O(1) instead of testing every node bit. *)
let get_allocation st ~job ~size =
  if size <= 0 || State.total_free_nodes st < size then None
  else begin
    let topo = State.topo st in
    let num_leaves = Topology.num_leaves topo in
    let nodes = Array.make size (-1) in
    let found = ref 0 in
    let leaf = ref 0 in
    while !found < size && !leaf < num_leaves do
      let free = State.free_nodes_on_leaf st !leaf in
      if free > 0 then begin
        let first = Topology.leaf_first_node topo !leaf in
        let take = min free (size - !found) in
        let slots =
          Jigsaw_core.Mask.take_lowest (State.free_slot_mask st !leaf) take
        in
        Array.iter
          (fun s ->
            nodes.(!found) <- first + s;
            incr found)
          (Jigsaw_core.Mask.to_array slots)
      end;
      incr leaf
    done;
    if !found < size then None
    else Some (Alloc.nodes_only ~job ~size nodes)
  end
