lib/baselines/ta.mli: Fattree
