lib/baselines/laas.ml: Fattree Jigsaw_core State
