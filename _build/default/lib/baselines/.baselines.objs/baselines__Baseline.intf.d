lib/baselines/baseline.mli: Fattree
