lib/baselines/laas.mli: Fattree Jigsaw_core
