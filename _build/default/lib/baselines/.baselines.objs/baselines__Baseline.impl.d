lib/baselines/baseline.ml: Alloc Array Fattree State Topology
