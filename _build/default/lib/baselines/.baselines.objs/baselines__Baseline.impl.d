lib/baselines/baseline.ml: Alloc Array Fattree Jigsaw_core State Topology
