lib/baselines/ta.ml: Alloc Array Fattree Fun Jigsaw_core List Sim State Topology
