(** Topology-aware (TA) scheduling [Jain et al. 2017, Pollard et al.
    2018].

    TA never allocates links explicitly; instead its node-placement rules
    exclude any placement in which two jobs could conceivably contend
    under an arbitrary (minimal) routing:

    - a job that fits within a leaf ([size <= m1]) {e must} be placed on
      a single leaf (the external fragmentation of Figure 2, right); its
      traffic never leaves the leaf switch, so it may share a leaf with
      any other job's nodes;
    - a job that fits within a pod is packed into a single pod, onto
      leaves whose uplinks no other pod- or machine-scale job has
      reserved; every uplink of every leaf it touches is implicitly
      reserved whole (the internal link fragmentation of Figure 2,
      center), leaving the leaves' leftover nodes usable only by
      leaf-sized jobs;
    - a larger job takes whole pods with unreserved links, reserving
      every link in them.

    We make the implicit reservations explicit by claiming the reserved
    cables outright, so TA's fragmentation flows through the same
    resource accounting as every other scheduler. *)

val get_allocation :
  Fattree.State.t -> job:int -> size:int -> Fattree.Alloc.t option
(** First-fit allocation under the rules above, or [None]. *)

val classify : Fattree.Topology.t -> int -> [ `Small | `Medium | `Large ]
(** The size class the rules assign to a request. *)
