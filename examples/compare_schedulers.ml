(* Scheduler comparison on one workload: a compact version of the
   paper's Figure 6 / Figure 8 experiment.

   Simulates the same synthetic job queue (exponential sizes, heavy
   load, EASY backfilling) under all five placement policies and prints
   utilization, turnaround, makespan and scheduling cost side by side.

   Run with:  dune exec examples/compare_schedulers.exe [-- <n_jobs>] *)

let () =
  let n_jobs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1200
  in
  let workload =
    Trace.Synthetic.synth ~mean_size:16 ~n_jobs ~seed:1601 ~max_size:1024
  in
  Format.printf "workload: %a@.@." Trace.Workload.pp_summary
    (Trace.Workload.summarize workload);
  Format.printf "%-9s %12s %14s %12s %14s@." "Scheme" "Utilization"
    "Avg turnaround" "Makespan" "Sched (s/job)";
  let baseline_makespan = ref 0.0 in
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      let cfg = Sched.Simulator.default_config alloc ~radix:16 in
      (* Assume jobs larger than four nodes run 10% faster in isolation
         (the paper's middle scenario). *)
      let cfg =
        Sched.Simulator.Config.with_scenario (Trace.Scenario.Fixed 10) cfg
      in
      let m = Sched.Simulator.run cfg workload in
      if alloc.name = "Baseline" then baseline_makespan := m.makespan;
      Format.printf "%-9s %11.1f%% %14.0f %12.0f %14.5f%s@." alloc.name
        (100.0 *. m.avg_utilization)
        m.avg_turnaround_all m.makespan m.sched_time_per_job
        (if !baseline_makespan > 0.0 && alloc.name <> "Baseline" then
           Printf.sprintf "   (makespan %.2fx Baseline)"
             (m.makespan /. !baseline_makespan)
         else ""))
    Sched.Allocator.all;
  Format.printf
    "@.Under a modest 10%% isolation speed-up, Jigsaw matches or beats Baseline@.";
  Format.printf
    "throughput while guaranteeing interference freedom; LaaS and TA pay for@.";
  Format.printf "their fragmentation.@."
