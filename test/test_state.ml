(* Tests for resource state and allocation records: the isolation
   enforcement layer. *)

open Fattree

let topo = Topology.of_radix 8 (* 128 nodes, 8 pods, 4x4 *)

let mk_alloc ?(job = 1) ?(bw = 1.0) ?(leaf_cables = [||]) ?(l2_cables = [||])
    nodes =
  { Alloc.job; size = Array.length nodes; nodes; leaf_cables; l2_cables; bw }

let test_fresh_state () =
  let st = State.create topo in
  Alcotest.(check int) "all free" 128 (State.total_free_nodes st);
  Alcotest.(check int) "none busy" 0 (State.busy_node_count st);
  Alcotest.(check (float 1e-9)) "util 0" 0.0 (State.node_utilization st);
  Alcotest.(check bool) "leaf fully free" true (State.leaf_fully_free st 0);
  Alcotest.(check int) "full slot mask" 0b1111 (State.free_slot_mask st 0)

let test_claim_release_nodes () =
  let st = State.create topo in
  let a = mk_alloc [| 0; 1; 5 |] in
  Alcotest.(check bool) "claim ok" true (Result.is_ok (State.claim st a));
  Alcotest.(check bool) "node 0 busy" false (State.node_free st 0);
  Alcotest.(check int) "free count" 125 (State.total_free_nodes st);
  Alcotest.(check int) "leaf 0 free nodes" 2 (State.free_nodes_on_leaf st 0);
  Alcotest.(check bool) "leaf 0 not fully free" false (State.leaf_fully_free st 0);
  State.release st a;
  Alcotest.(check int) "all free again" 128 (State.total_free_nodes st);
  Alcotest.(check bool) "fully free again" true (State.leaf_fully_free st 0)

let test_double_claim_rejected () =
  let st = State.create topo in
  State.claim_exn st (mk_alloc [| 7 |]);
  (match State.claim st (mk_alloc ~job:2 [| 7; 8 |]) with
  | Error m ->
      Alcotest.(check string) "names the busy node and its state"
        "node 7 is not free (claimed)" m
  | Ok () -> Alcotest.fail "double claim must fail");
  (* Atomicity: node 8 must still be free after the failed claim. *)
  Alcotest.(check bool) "atomic rejection" true (State.node_free st 8)

let test_duplicate_node_in_alloc () =
  let st = State.create topo in
  match State.claim st (mk_alloc [| 3; 3 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate node must be rejected"

let test_cable_exclusive () =
  let st = State.create topo in
  let c = Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:2 in
  State.claim_exn st (mk_alloc ~leaf_cables:[| c |] [| 0 |]);
  Alcotest.(check (float 1e-9)) "cable used" 0.0 (State.leaf_up_remaining st ~cable:c);
  (match State.claim st (mk_alloc ~job:2 ~leaf_cables:[| c |] [| 1 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cable over-subscription must fail");
  Alcotest.(check int) "mask misses bit 2" 0b1011 (State.leaf_up_mask st ~leaf:0 ~demand:1.0)

let test_fractional_sharing () =
  let st = State.create topo in
  let c = Topology.l2_spine_cable topo ~l2:0 ~spine_index:1 in
  let a1 = mk_alloc ~job:1 ~bw:0.5 ~l2_cables:[| c |] [| 0 |] in
  let a2 = mk_alloc ~job:2 ~bw:0.375 ~l2_cables:[| c |] [| 1 |] in
  State.claim_exn st a1;
  State.claim_exn st a2;
  Alcotest.(check (float 1e-6)) "remaining" 0.125 (State.l2_up_remaining st ~cable:c);
  (* A third 0.25 demand must fail, a 0.125 one succeed. *)
  (match State.claim st (mk_alloc ~job:3 ~bw:0.25 ~l2_cables:[| c |] [| 2 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "over capacity");
  State.claim_exn st (mk_alloc ~job:4 ~bw:0.125 ~l2_cables:[| c |] [| 3 |]);
  (* Masks at different demands. *)
  Alcotest.(check bool) "mask at 0.5 excludes" true
    (State.l2_up_mask st ~l2:0 ~demand:0.5 land 0b10 = 0);
  State.release st a1;
  State.release st a2;
  Alcotest.(check (float 1e-6)) "partially released" 0.875 (State.l2_up_remaining st ~cable:c)

let test_demand_boundary () =
  (* A demand exactly equal to the remaining capacity qualifies (the
     comparison carries an epsilon so float arithmetic cannot starve an
     exact fit). *)
  let st = State.create topo in
  let c = Topology.leaf_l2_cable topo ~leaf:0 ~l2_index:0 in
  State.claim_exn st (mk_alloc ~bw:0.625 ~leaf_cables:[| c |] [| 0 |]);
  Alcotest.(check bool) "exact fit qualifies" true
    (State.leaf_up_mask st ~leaf:0 ~demand:0.375 land 1 = 1);
  Alcotest.(check bool) "slightly more does not" true
    (State.leaf_up_mask st ~leaf:0 ~demand:0.4 land 1 = 0);
  State.claim_exn st (mk_alloc ~job:2 ~bw:0.375 ~leaf_cables:[| c |] [| 1 |]);
  Alcotest.(check (float 1e-9)) "drained" 0.0 (State.leaf_up_remaining st ~cable:c)

let test_release_unclaimed_rejected () =
  let st = State.create topo in
  Alcotest.(check bool) "release of free node raises" true
    (try
       State.release st (mk_alloc [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_clone_independent () =
  let st = State.create topo in
  State.claim_exn st (mk_alloc [| 0; 1 |]);
  let c = State.clone st in
  State.claim_exn c (mk_alloc ~job:2 [| 2 |]);
  Alcotest.(check int) "original unchanged" 126 (State.total_free_nodes st);
  Alcotest.(check int) "clone changed" 125 (State.total_free_nodes c)

let test_alloc_helpers () =
  let a = Alloc.nodes_only ~job:3 ~size:2 [| 4; 9 |] in
  Alcotest.(check int) "node count" 2 (Alloc.node_count a);
  Alcotest.(check int) "padding" 0 (Alloc.padding a);
  let padded = { a with nodes = [| 4; 9; 10 |] } in
  Alcotest.(check int) "padding counted" 1 (Alloc.padding padded);
  let b = Alloc.nodes_only ~job:4 ~size:1 [| 9 |] in
  Alcotest.(check bool) "overlap detected" false (Alloc.disjoint a b);
  let c = Alloc.nodes_only ~job:5 ~size:1 [| 11 |] in
  Alcotest.(check bool) "disjoint" true (Alloc.disjoint a c)

let prop_claim_release_identity =
  QCheck2.Test.make ~name:"claim then release restores free state" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 0 127))
    (fun nodes ->
      let nodes = List.sort_uniq compare nodes in
      let st = State.create topo in
      let a = mk_alloc (Array.of_list nodes) in
      State.claim_exn st a;
      State.release st a;
      State.total_free_nodes st = 128
      && State.leaf_fully_free st 0
      && State.node_utilization st = 0.0)

let suite =
  [
    Alcotest.test_case "fresh state" `Quick test_fresh_state;
    Alcotest.test_case "claim/release nodes" `Quick test_claim_release_nodes;
    Alcotest.test_case "double claim rejected atomically" `Quick test_double_claim_rejected;
    Alcotest.test_case "duplicate node rejected" `Quick test_duplicate_node_in_alloc;
    Alcotest.test_case "cables are exclusive at bw 1.0" `Quick test_cable_exclusive;
    Alcotest.test_case "fractional link sharing" `Quick test_fractional_sharing;
    Alcotest.test_case "demand boundary (epsilon)" `Quick test_demand_boundary;
    Alcotest.test_case "release of unclaimed rejected" `Quick test_release_unclaimed_rejected;
    Alcotest.test_case "clone independence" `Quick test_clone_independent;
    Alcotest.test_case "alloc helpers" `Quick test_alloc_helpers;
    QCheck_alcotest.to_alcotest prop_claim_release_identity;
  ]
