(* Semantics of the comparison allocators: Baseline, TA, LaaS. *)

open Fattree

let topo = Topology.of_radix 8 (* m1 = m2 = 4, pod = 16, 128 nodes *)

let test_baseline_first_fit () =
  let st = State.create topo in
  (match Baselines.Baseline.get_allocation st ~job:0 ~size:5 with
  | Some a ->
      Alcotest.(check (array int)) "first five ids" [| 0; 1; 2; 3; 4 |] a.nodes;
      State.claim_exn st a
  | None -> Alcotest.fail "alloc failed");
  match Baselines.Baseline.get_allocation st ~job:1 ~size:2 with
  | Some a -> Alcotest.(check (array int)) "next free" [| 5; 6 |] a.nodes
  | None -> Alcotest.fail "alloc failed"

let test_baseline_capacity () =
  let st = State.create topo in
  Alcotest.(check bool) "over capacity" true
    (Baselines.Baseline.get_allocation st ~job:0 ~size:129 = None);
  match Baselines.Baseline.get_allocation st ~job:0 ~size:128 with
  | Some a -> Alcotest.(check int) "whole machine" 128 (Array.length a.nodes)
  | None -> Alcotest.fail "whole machine"

let test_ta_classify () =
  Alcotest.(check bool) "small" true (Baselines.Ta.classify topo 4 = `Small);
  Alcotest.(check bool) "medium" true (Baselines.Ta.classify topo 5 = `Medium);
  Alcotest.(check bool) "medium edge" true (Baselines.Ta.classify topo 16 = `Medium);
  Alcotest.(check bool) "large" true (Baselines.Ta.classify topo 17 = `Large)

let test_ta_small_single_leaf () =
  let st = State.create topo in
  match Baselines.Ta.get_allocation st ~job:0 ~size:3 with
  | Some a ->
      let leaves =
        List.sort_uniq compare
          (Array.to_list (Array.map (Topology.node_leaf topo) a.nodes))
      in
      Alcotest.(check int) "one leaf" 1 (List.length leaves);
      Alcotest.(check int) "no links claimed" 0 (Array.length a.leaf_cables)
  | None -> Alcotest.fail "alloc failed"

let test_ta_small_external_fragmentation () =
  (* Figure 2 right: enough nodes, but no single leaf has three free. *)
  let st = State.create topo in
  for leaf = 0 to Topology.num_leaves topo - 1 do
    let first = Topology.leaf_first_node topo leaf in
    State.claim_exn st (Alloc.nodes_only ~job:(100 + leaf) ~size:2 [| first; first + 1 |])
  done;
  Alcotest.(check int) "64 nodes free" 64 (State.total_free_nodes st);
  Alcotest.(check bool) "3-node job cannot be placed" true
    (Baselines.Ta.get_allocation st ~job:0 ~size:3 = None);
  Alcotest.(check bool) "2-node job fits" true
    (Baselines.Ta.get_allocation st ~job:0 ~size:2 <> None)

let test_ta_medium_reserves_links () =
  let st = State.create topo in
  (match Baselines.Ta.get_allocation st ~job:0 ~size:6 with
  | Some a ->
      State.claim_exn st a;
      (* 6 nodes over ceil(6/4)=2 leaves, all uplinks of both claimed. *)
      Alcotest.(check int) "nodes exact" 6 (Array.length a.nodes);
      Alcotest.(check int) "two leaves' cables" 8 (Array.length a.leaf_cables);
      let pods =
        List.sort_uniq compare
          (Array.to_list (Array.map (Topology.node_pod topo) a.nodes))
      in
      Alcotest.(check int) "single pod" 1 (List.length pods)
  | None -> Alcotest.fail "alloc failed");
  (* The medium filled leaf 0 and half of leaf 1; the 2 leftover nodes
     on leaf 1 remain usable by a leaf-sized job even though leaf 1's
     links are reserved. *)
  match Baselines.Ta.get_allocation st ~job:1 ~size:2 with
  | Some a ->
      Alcotest.(check bool) "small reuses leftover nodes" true
        (Array.for_all (fun n -> Topology.node_leaf topo n = 1) a.nodes)
  | None -> Alcotest.fail "small should fit on leftovers"

let test_ta_mediums_share_pod_on_disjoint_leaves () =
  let st = State.create topo in
  (match Baselines.Ta.get_allocation st ~job:0 ~size:8 with
  | Some a -> State.claim_exn st a
  | None -> Alcotest.fail "first medium");
  (* Pod 0 has 2 leaves with free links left; another 8-node medium fits
     there. *)
  match Baselines.Ta.get_allocation st ~job:1 ~size:8 with
  | Some a ->
      let pods =
        List.sort_uniq compare
          (Array.to_list (Array.map (Topology.node_pod topo) a.nodes))
      in
      Alcotest.(check (list int)) "same pod, other leaves" [ 0 ] pods
  | None -> Alcotest.fail "second medium"

let test_ta_large_whole_pods () =
  let st = State.create topo in
  match Baselines.Ta.get_allocation st ~job:0 ~size:20 with
  | Some a ->
      State.claim_exn st a;
      Alcotest.(check int) "exact nodes" 20 (Array.length a.nodes);
      (* 2 pods' links reserved: 2 * 16 leaf cables + 2 * 16 l2 cables. *)
      Alcotest.(check int) "leaf cables" 32 (Array.length a.leaf_cables);
      Alcotest.(check int) "l2 cables" 32 (Array.length a.l2_cables);
      (* No medium can now use pods 0-1; it must land in pod 2. *)
      (match Baselines.Ta.get_allocation st ~job:1 ~size:6 with
      | Some b ->
          let pods =
            List.sort_uniq compare
              (Array.to_list (Array.map (Topology.node_pod topo) b.nodes))
          in
          Alcotest.(check (list int)) "next pod" [ 2 ] pods
      | None -> Alcotest.fail "medium after large")
  | None -> Alcotest.fail "large alloc"

let test_laas_two_level_no_padding () =
  let st = State.create topo in
  match Baselines.Laas.get_allocation st ~job:0 ~size:11 with
  | Some p ->
      Alcotest.(check int) "exact within a pod" 11
        (Jigsaw_core.Partition.node_count p);
      Alcotest.(check bool) "single pod" true
        (List.length (Jigsaw_core.Partition.pods_used p) = 1)
  | None -> Alcotest.fail "alloc failed"

let test_laas_three_level_pads () =
  let st = State.create topo in
  match Baselines.Laas.get_allocation st ~job:0 ~size:18 with
  | Some p ->
      (* 18 -> 5 whole leaves = 20 nodes. *)
      Alcotest.(check int) "padded" 20 (Jigsaw_core.Partition.node_count p);
      Alcotest.(check int) "requested recorded" 18 p.size;
      Alcotest.(check bool) "legal modulo padding" true
        (Jigsaw_core.Conditions.is_legal ~require_exact_size:false topo p)
  | None -> Alcotest.fail "alloc failed"

let test_allocators_registry () =
  Alcotest.(check int) "five schemes" 5 (List.length Sched.Allocator.all);
  Alcotest.(check bool) "baseline not isolating" false
    Sched.Allocator.baseline.isolating;
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Result.is_ok (Sched.Allocator.by_name name)))
    [ "Baseline"; "LC+S"; "Jigsaw"; "LaaS"; "TA" ]

(* Cross-scheme sanity: on a fresh machine every scheme can place any
   feasible job, and placements are claimable. *)
let prop_all_allocators_place_on_empty =
  QCheck2.Test.make ~name:"all schemes place feasible jobs on empty cluster"
    ~count:60
    QCheck2.Gen.(int_range 1 128)
    (fun size ->
      List.for_all
        (fun (a : Sched.Allocator.t) ->
          let st = State.create topo in
          let job = Trace.Job.v ~id:0 ~size ~runtime:1.0 () in
          match a.try_alloc st job with
          | Some alloc -> Result.is_ok (State.claim st alloc)
          | None ->
              (* LaaS legitimately fails when padding exceeds the
                 machine. *)
              a.name = "LaaS" && (size + 3) / 4 * 4 > 128)
        Sched.Allocator.all)

let suite =
  [
    Alcotest.test_case "baseline first fit" `Quick test_baseline_first_fit;
    Alcotest.test_case "baseline capacity" `Quick test_baseline_capacity;
    Alcotest.test_case "TA classification" `Quick test_ta_classify;
    Alcotest.test_case "TA small in single leaf" `Quick test_ta_small_single_leaf;
    Alcotest.test_case "TA external fragmentation (Fig 2 right)" `Quick test_ta_small_external_fragmentation;
    Alcotest.test_case "TA medium reserves links (Fig 2 center)" `Quick test_ta_medium_reserves_links;
    Alcotest.test_case "TA mediums share pods" `Quick test_ta_mediums_share_pod_on_disjoint_leaves;
    Alcotest.test_case "TA large takes whole pods" `Quick test_ta_large_whole_pods;
    Alcotest.test_case "LaaS exact within a pod" `Quick test_laas_two_level_no_padding;
    Alcotest.test_case "LaaS pads across pods (Fig 2 left)" `Quick test_laas_three_level_pads;
    Alcotest.test_case "allocator registry" `Quick test_allocators_registry;
    QCheck_alcotest.to_alcotest prop_all_allocators_place_on_empty;
  ]
