(* Aggregated test runner: each Test_* module exports [suite]. *)

let () =
  Alcotest.run "jigsaw"
    [
      ("heap", Test_heap.suite);
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("bitset", Test_bitset.suite);
      ("intsort", Test_intsort.suite);
      ("engine", Test_engine.suite);
      ("topology", Test_topology.suite);
      ("xgft", Test_xgft.suite);
      ("clos", Test_clos.suite);
      ("render", Test_render.suite);
      ("state", Test_state.suite);
      ("incremental", Test_incremental.suite);
      ("faults", Test_faults.suite);
      ("mask", Test_mask.suite);
      ("shapes", Test_shapes.suite);
      ("conditions", Test_conditions.suite);
      ("search", Test_search.suite);
      ("partition", Test_partition.suite);
      ("least-constrained", Test_least_constrained.suite);
      ("jigsaw", Test_jigsaw.suite);
      ("matching", Test_matching.suite);
      ("maxflow", Test_maxflow.suite);
      ("path", Test_path.suite);
      ("dmodk", Test_dmodk.suite);
      ("rearrange", Test_rearrange.suite);
      ("partition-routing", Test_partition_routing.suite);
      ("congestion", Test_congestion.suite);
      ("telemetry", Test_telemetry.suite);
      ("fwd", Test_fwd.suite);
      ("greedy", Test_greedy.suite);
      ("necessity", Test_necessity.suite);
      ("feasibility", Test_feasibility.suite);
      ("trace", Test_trace.suite);
      ("swf", Test_swf.suite);
      ("analysis", Test_analysis.suite);
      ("allocators", Test_allocators.suite);
      ("simulator", Test_simulator.suite);
      ("resilience", Test_resilience.suite);
      ("molding", Test_molding.suite);
      ("metrics", Test_metrics.suite);
      ("perf", Test_perf.suite);
      ("reproduction", Test_reproduction.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
    ]
