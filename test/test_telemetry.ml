(* Network telemetry: the incremental congestion index against the
   batch analyzer (property), telemetry as a pure observer (fingerprints
   and traces unchanged when off, fingerprints unchanged when on),
   same-seed trace determinism, kill/complete retraction restoring
   pre-start loads, checkpoint → restore → finish parity with telemetry
   enabled for every scheme with and without faults, and codec
   round-trips for the net event variants. *)

open Fattree
open Routing

let radix = 8
let topo = Topology.of_radix radix

let workload =
  lazy (Trace.Synthetic.synth ~mean_size:16 ~n_jobs:60 ~seed:42 ~max_size:128)

let requeue_policy =
  {
    Sched.Simulator.requeue = true;
    resubmit_delay = 30.0;
    max_retries = 2;
    charge_lost_work = true;
    shrink = false;
  }

let scripted_faults =
  lazy
    (Trace.Faults.scripted
       [
         { Trace.Faults.time = 400.0; kind = Fail; target = Leaf_switch 0 };
         { Trace.Faults.time = 1400.0; kind = Repair; target = Leaf_switch 0 };
         { Trace.Faults.time = 900.0; kind = Fail; target = Node 77 };
         { Trace.Faults.time = 2100.0; kind = Repair; target = Node 77 };
       ])

let policies = [ Telemetry.Dmodk; Telemetry.Greedy; Telemetry.Jigsaw ]

let cfg ?(faults = Trace.Faults.none)
    ?(resilience = Sched.Simulator.no_resilience) ?net ?sink alloc =
  Sched.Simulator.Config.make ~faults ~resilience ?net ?sink ~radix alloc

(* ------------------------------------------------------------------ *)
(* Incremental index vs batch analyzer                                 *)
(* ------------------------------------------------------------------ *)

let report_eq (a : Congestion.report) (b : Congestion.report) =
  a.max_load = b.max_load
  && a.shared_channels = b.shared_channels
  && a.interfered_flows = b.interfered_flows
  && a.total_flows = b.total_flows

let prop_index_matches_batch =
  QCheck2.Test.make ~name:"incremental index = batch analyze" ~count:60
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6)
           (list_size (int_range 0 10)
              (pair (int_range 0 127) (int_range 0 127))))
        (int_range 0 10_000))
    (fun (jobs_pairs, seed) ->
      let jobs =
        List.mapi (fun i pairs -> (i, Dmodk.routes topo pairs)) jobs_pairs
      in
      let idx = Congestion.Index.create topo in
      let present = ref [] in
      let check () =
        report_eq
          (Congestion.analyze (List.rev !present))
          (Congestion.Index.report idx)
      in
      let prng = Sim.Prng.create ~seed in
      let remove_one () =
        match !present with
        | [] -> true
        | l ->
            let victim, _ = List.nth l (Sim.Prng.int prng ~bound:(List.length l)) in
            Congestion.Index.remove_job idx victim;
            present := List.filter (fun (j, _) -> j <> victim) !present;
            check ()
      in
      (* Interleave adds with occasional removes, checking the full
         report after every mutation; then drain in random order. *)
      List.for_all
        (fun (j, paths) ->
          Congestion.Index.add_job idx ~job:j paths;
          present := (j, paths) :: !present;
          check () && if Sim.Prng.bool prng then remove_one () else true)
        jobs
      && (let ok = ref true in
          while !present <> [] do
            if not (remove_one ()) then ok := false
          done;
          !ok)
      && report_eq (Congestion.analyze []) (Congestion.Index.report idx))

let test_index_rejects_duplicates () =
  let idx = Congestion.Index.create topo in
  Congestion.Index.add_job idx ~job:7 (Dmodk.routes topo [ (0, 64) ]);
  (match Congestion.Index.add_job idx ~job:7 [] with
  | () -> Alcotest.fail "duplicate add accepted"
  | exception Invalid_argument _ -> ());
  Congestion.Index.remove_job idx 7;
  match Congestion.Index.remove_job idx 7 with
  | () -> Alcotest.fail "double remove accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Retraction restores pre-start loads                                 *)
(* ------------------------------------------------------------------ *)

let test_retraction_restores_loads () =
  (* Route job A, sample; route and retract job B (the "killed victim");
     the sample must return to A-only values exactly. *)
  let st = State.create topo in
  let alloc_of job size =
    match Jigsaw_core.Jigsaw.get_allocation st ~job ~size with
    | None -> Alcotest.failf "no allocation for job %d" job
    | Some p ->
        let a = Jigsaw_core.Partition.to_alloc topo p ~bw:1.0 in
        State.claim_exn st a;
        a
  in
  let a = alloc_of 1 24 and b = alloc_of 2 40 in
  List.iter
    (fun policy ->
      let t = Telemetry.create topo ~policy ~shape:Telemetry.Alltoall ~now:0.0 in
      ignore (Telemetry.add_job t ~now:1.0 a);
      let before = Telemetry.sample t in
      let routed = Telemetry.add_job t ~now:2.0 b in
      let retracted = Telemetry.remove_job t ~now:3.0 b.Alloc.job in
      Alcotest.(check bool)
        (Telemetry.policy_name policy ^ ": victim flows retracted in full")
        true
        (routed.ri_flows = retracted.ri_flows && routed.ri_flows > 0);
      let after = Telemetry.sample t in
      Alcotest.(check bool)
        (Telemetry.policy_name policy ^ ": loads back to pre-start values")
        true (before = after);
      ignore (Telemetry.remove_job t ~now:4.0 a.Alloc.job);
      let empty = Telemetry.sample t in
      Alcotest.(check int)
        (Telemetry.policy_name policy ^ ": empty max load")
        0 empty.s_max_load;
      Alcotest.(check int)
        (Telemetry.policy_name policy ^ ": empty flows")
        0 empty.s_total_flows)
    policies

let test_sim_kills_retract () =
  (* A faulty run with requeue: every route is eventually retracted and
     the last congestion sample reports an idle network. *)
  let sink, events = Obs.Sink.memory () in
  let c =
    cfg
      ~faults:(Lazy.force scripted_faults)
      ~resilience:requeue_policy
      ~net:(Telemetry.Jigsaw, Telemetry.Alltoall)
      ~sink Sched.Allocator.jigsaw
  in
  let m = Sched.Simulator.run c (Lazy.force workload) in
  Alcotest.(check bool) "jobs were killed" true (m.interrupted > 0);
  let routes = Hashtbl.create 64 in
  let last_sample = ref None in
  List.iter
    (fun (e : Obs.Event.t) ->
      match e.payload with
      | Obs.Event.Net_route { job; retract; flows; _ } ->
          let r, t = try Hashtbl.find routes job with Not_found -> (0, 0) in
          if retract then Hashtbl.replace routes job (r, t + flows)
          else Hashtbl.replace routes job (r + flows, t)
      | Obs.Event.Net_congestion_sample { max_load; total_flows; _ } ->
          last_sample := Some (max_load, total_flows)
      | _ -> ())
    (events ());
  Alcotest.(check bool) "some routes happened" true (Hashtbl.length routes > 0);
  Hashtbl.iter
    (fun job (routed, retracted) ->
      if routed <> retracted then
        Alcotest.failf "job %d: %d flows routed but %d retracted" job routed
          retracted)
    routes;
  match !last_sample with
  | None -> Alcotest.fail "no congestion sample emitted"
  | Some (max_load, total_flows) ->
      Alcotest.(check int) "final max load" 0 max_load;
      Alcotest.(check int) "final flows" 0 total_flows

(* ------------------------------------------------------------------ *)
(* Pure observer: fingerprints and traces                              *)
(* ------------------------------------------------------------------ *)

let strip_net evs =
  List.filter
    (fun (e : Obs.Event.t) ->
      match e.payload with
      | Obs.Event.Net_route _ | Obs.Event.Net_congestion_sample _ -> false
      | _ -> true)
    evs

let test_zero_fingerprint_impact () =
  let w = Lazy.force workload in
  List.iter
    (fun alloc ->
      let off = Sched.Simulator.run (cfg alloc) w in
      let sink_off, evs_off = Obs.Sink.memory () in
      ignore (Sched.Simulator.run (cfg ~sink:sink_off alloc) w);
      List.iter
        (fun policy ->
          let sink_on, evs_on = Obs.Sink.memory () in
          let on =
            Sched.Simulator.run
              (cfg ~net:(policy, Telemetry.Ring) ~sink:sink_on alloc)
              w
          in
          Alcotest.(check string)
            (alloc.Sched.Allocator.name ^ "/" ^ Telemetry.policy_name policy
           ^ ": fingerprint unchanged by telemetry")
            (Sched.Metrics.fingerprint off)
            (Sched.Metrics.fingerprint on);
          Alcotest.(check bool)
            (alloc.Sched.Allocator.name ^ ": non-net events unchanged")
            true
            (strip_net (evs_on ()) = evs_off ()))
        policies)
    Sched.Allocator.all

let test_trace_determinism () =
  (* Same seed, telemetry on: two runs produce structurally identical
     event streams, net events included. *)
  let w = Lazy.force workload in
  let go () =
    let sink, events = Obs.Sink.memory () in
    ignore
      (Sched.Simulator.run
         (cfg
            ~faults:(Lazy.force scripted_faults)
            ~resilience:requeue_policy
            ~net:(Telemetry.Greedy, Telemetry.Alltoall)
            ~sink Sched.Allocator.baseline)
         w);
    events ()
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  Alcotest.(check bool) "identical streams" true (a = b)

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore with telemetry enabled                         *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "jigsaw-net-ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ckpt_parity ?faults ?resilience alloc policy t =
  let w = Lazy.force workload in
  let net = (policy, Telemetry.Ring) in
  let sink_full, evs_full = Obs.Sink.memory () in
  let full =
    Sched.Simulator.run (cfg ?faults ?resilience ~net ~sink:sink_full alloc) w
  in
  with_temp (fun path ->
      let sim =
        Sched.Simulator.start (cfg ?faults ?resilience ~net alloc) w
      in
      Sched.Simulator.run_until sim t;
      Sched.Checkpoint.write ~path sim;
      let sink_rest, evs_rest = Obs.Sink.memory () in
      match Sched.Checkpoint.restore ~sink:sink_rest ~net ~path () with
      | Error m -> Alcotest.failf "restore at t=%g failed: %s" t m
      | Ok sim' ->
          let m, _ = Sched.Simulator.finish sim' in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s t=%g fingerprint"
               alloc.Sched.Allocator.name
               (Telemetry.policy_name policy)
               t)
            (Sched.Metrics.fingerprint full)
            (Sched.Metrics.fingerprint m);
          (* The restored run's trace — net events included — must be
             the uninterrupted run's strict suffix past the checkpoint
             (run_until executed everything at or before [t]).  Run
             metadata is excluded: the restored run may re-emit its
             own [Run_meta] header. *)
          let no_meta evs =
            List.filter
              (fun (e : Obs.Event.t) ->
                match e.payload with Obs.Event.Run_meta _ -> false | _ -> true)
              evs
          in
          let suffix =
            List.filter (fun (e : Obs.Event.t) -> e.time > t)
              (no_meta (evs_full ()))
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s t=%g trace suffix identical"
               alloc.Sched.Allocator.name
               (Telemetry.policy_name policy)
               t)
            true
            (no_meta (evs_rest ()) = suffix))

let test_ckpt_parity_healthy () =
  List.iter
    (fun alloc ->
      List.iter
        (fun policy -> ckpt_parity alloc policy 700.0)
        policies)
    Sched.Allocator.all

let test_ckpt_parity_faulty () =
  let faults = Lazy.force scripted_faults in
  List.iter
    (fun alloc ->
      List.iter
        (fun policy ->
          (* 950.0: leaf 0 and node 77 both down — the restore rebuilds
             telemetry for the degraded machine's running set. *)
          ckpt_parity ~faults ~resilience:requeue_policy alloc policy 950.0)
        [ Telemetry.Jigsaw; Telemetry.Greedy ])
    Sched.Allocator.all

(* ------------------------------------------------------------------ *)
(* Event codec round-trips                                             *)
(* ------------------------------------------------------------------ *)

let test_net_event_codecs () =
  let events =
    [
      {
        Obs.Event.time = 12.5;
        payload =
          Obs.Event.Net_route
            { job = 3; retract = false; flows = 10; channels = 4; interfered = 2 };
      };
      {
        Obs.Event.time = 13.0;
        payload =
          Obs.Event.Net_route
            { job = 3; retract = true; flows = 10; channels = 4; interfered = 0 };
      };
      {
        Obs.Event.time = 14.25;
        payload =
          Obs.Event.Net_congestion_sample
            {
              max_load = 7;
              shared = 2;
              interfered = 3;
              total_flows = 40;
              lower_bound = 5;
            };
      };
    ]
  in
  List.iter
    (fun (e : Obs.Event.t) ->
      let b = Buffer.create 128 in
      Obs.Event.to_jsonl b e;
      let line = String.trim (Buffer.contents b) in
      if Obs.Event.of_jsonl line <> e then
        Alcotest.failf "jsonl round-trip changed %s" line;
      Buffer.clear b;
      Obs.Event.to_csv b e;
      let row = String.trim (Buffer.contents b) in
      if Obs.Event.of_csv row <> e then
        Alcotest.failf "csv round-trip changed %s" row)
    events

let suite =
  [
    QCheck_alcotest.to_alcotest prop_index_matches_batch;
    Alcotest.test_case "index rejects duplicate add/remove" `Quick
      test_index_rejects_duplicates;
    Alcotest.test_case "retraction restores pre-start loads" `Quick
      test_retraction_restores_loads;
    Alcotest.test_case "faulty run: kills retract every flow" `Quick
      test_sim_kills_retract;
    Alcotest.test_case "telemetry never changes fingerprints or traces" `Quick
      test_zero_fingerprint_impact;
    Alcotest.test_case "same-seed traces identical with telemetry" `Quick
      test_trace_determinism;
    Alcotest.test_case "checkpoint parity with telemetry (healthy)" `Quick
      test_ckpt_parity_healthy;
    Alcotest.test_case "checkpoint parity with telemetry (faulty)" `Quick
      test_ckpt_parity_faulty;
    Alcotest.test_case "net event codec round-trips" `Quick
      test_net_event_codecs;
  ]
