(* Tests for the EASY-backfilling trace simulator, on hand-crafted
   micro-traces with known outcomes. *)

let radix = 8 (* 128 nodes *)

let job ?(arrival = 0.0) id size runtime =
  Trace.Job.v ~id ~size ~runtime ~arrival ()

let workload jobs =
  Trace.Workload.create ~name:"micro" ~system_nodes:128 (Array.of_list jobs)

let run ?(alloc = Sched.Allocator.baseline) ?scenario w =
  let cfg = Sched.Simulator.default_config alloc ~radix in
  let cfg =
    match scenario with
    | None -> cfg
    | Some s -> Sched.Simulator.Config.with_scenario s cfg
  in
  Sched.Simulator.run_detailed cfg w

let find jobs id =
  List.find (fun (r : Sched.Metrics.per_job) -> r.job.id = id) jobs

let test_single_job () =
  let m, jobs = run (workload [ job 0 10 100.0 ]) in
  Alcotest.(check int) "one job ran" 1 m.num_jobs;
  let r = find jobs 0 in
  Alcotest.(check (float 1e-9)) "starts at arrival" 0.0 r.start_time;
  Alcotest.(check (float 1e-9)) "ends after runtime" 100.0 r.end_time;
  Alcotest.(check (float 1e-9)) "makespan" 100.0 m.makespan

let test_fifo_order_when_saturated () =
  (* Two 128-node jobs: strictly sequential. *)
  let m, jobs = run (workload [ job 0 128 50.0; job 1 128 50.0 ]) in
  let r0 = find jobs 0 and r1 = find jobs 1 in
  Alcotest.(check (float 1e-9)) "first at 0" 0.0 r0.start_time;
  Alcotest.(check (float 1e-9)) "second after first" 50.0 r1.start_time;
  Alcotest.(check (float 1e-9)) "makespan" 100.0 m.makespan

let test_parallel_when_fits () =
  let _, jobs = run (workload [ job 0 60 100.0; job 1 60 100.0 ]) in
  Alcotest.(check (float 1e-9)) "both at 0" 0.0 (find jobs 1).start_time

let test_backfill_small_job () =
  (* Head job 0 runs on the whole machine until t=100.  Job 1 (also
     whole-machine) must wait; job 2 is small and would end before job
     1's reservation, so EASY backfills it at t=0... except nothing is
     free.  Instead: job 0 takes 100 nodes, job 1 needs 100 (reserved at
     t=100), job 2 (20 nodes, short) backfills immediately. *)
  let w = workload [ job 0 100 100.0; job 1 100 100.0; job 2 20 50.0 ] in
  let _, jobs = run w in
  Alcotest.(check (float 1e-9)) "backfilled now" 0.0 (find jobs 2).start_time;
  Alcotest.(check (float 1e-9)) "head reservation kept" 100.0 (find jobs 1).start_time

let test_backfill_does_not_delay_head () =
  (* The head needs the whole machine, so its reservation covers every
     node; a long candidate that overlaps it (any candidate does) and
     overruns the reservation time must NOT backfill. *)
  let w = workload [ job 0 60 100.0; job 1 128 100.0; job 2 30 500.0 ] in
  let _, jobs = run w in
  Alcotest.(check (float 1e-9)) "head on time" 100.0 (find jobs 1).start_time;
  Alcotest.(check bool) "long job did not jump" true
    ((find jobs 2).start_time >= 100.0)

let test_backfill_disjoint_long_job () =
  (* A long backfill candidate IS allowed when it cannot touch the
     reservation: head needs 100 nodes, reservation at t=100 claims
     jobs 0's nodes; candidate needs 20 nodes and 28 are always free. *)
  let w = workload [ job 0 100 100.0; job 1 100 100.0; job 2 20 500.0 ] in
  let _, jobs = run ~alloc:Sched.Allocator.baseline w in
  (* With first-fit the reservation takes nodes 0..99 at t=100 — exactly
     the nodes of job 0 — so job 2's first-fit allocation (nodes
     100..119) is disjoint and may start at 0 under the disjointness
     rule.  Verify one of the two legal behaviours holds and the head is
     never delayed. *)
  let r2 = find jobs 2 in
  Alcotest.(check bool) "either now (disjoint) or after head" true
    (r2.start_time = 0.0 || r2.start_time >= 100.0);
  Alcotest.(check (float 1e-9)) "head exact" 100.0 (find jobs 1).start_time

let test_arrivals_respected () =
  let w = workload [ job 0 10 10.0; job ~arrival:1000.0 1 10 10.0 ] in
  let _, jobs = run w in
  Alcotest.(check (float 1e-9)) "no time travel" 1000.0 (find jobs 1).start_time

let test_rejected_oversized () =
  let m, _ = run (workload [ job 0 129 10.0; job 1 5 10.0 ]) in
  Alcotest.(check int) "rejected" 1 m.rejected;
  Alcotest.(check int) "other ran" 1 m.num_jobs

let test_scenario_applies_to_isolating_only () =
  let w = workload [ job 0 128 100.0 ] in
  let scenario = Trace.Scenario.Fixed 25 in
  let _, base_jobs = run ~alloc:Sched.Allocator.baseline ~scenario w in
  Alcotest.(check (float 1e-9)) "baseline full runtime" 100.0
    (find base_jobs 0).end_time;
  let _, jig_jobs = run ~alloc:Sched.Allocator.jigsaw ~scenario w in
  Alcotest.(check (float 1e-6)) "jigsaw sped up" (100.0 /. 1.25)
    (find jig_jobs 0).end_time

let test_utilization_simple () =
  (* Two equal jobs saturating half the machine, back to back at the
     head: steady window [0, 50] at 50% occupancy. *)
  let w = workload [ job 0 64 50.0; job 1 64 50.0; job 2 64 50.0 ] in
  let m, _ = run w in
  (* Jobs 0 and 1 run together (128 nodes), job 2 starts at 50.  Steady
     window = [0, 50], fully busy. *)
  Alcotest.(check (float 1e-6)) "utilization 1.0" 1.0 m.avg_utilization

let test_turnaround_accounting () =
  let w = workload [ job 0 128 100.0; job 1 128 100.0 ] in
  let m, _ = run w in
  (* Turnarounds: 100 and 200. *)
  Alcotest.(check (float 1e-6)) "avg tat" 150.0 m.avg_turnaround_all;
  Alcotest.(check int) "large jobs counted" 2 m.num_large;
  Alcotest.(check (float 1e-6)) "large tat same" 150.0 m.avg_turnaround_large

let test_isolating_run_has_no_claim_conflicts () =
  (* A denser random trace on each isolating scheduler: claims all
     succeed (the simulator would raise otherwise). *)
  let w =
    Trace.Synthetic.synth ~mean_size:10 ~n_jobs:300 ~seed:21 ~max_size:100
  in
  List.iter
    (fun alloc ->
      let m, _ = run ~alloc w in
      Alcotest.(check int) (alloc.Sched.Allocator.name ^ " all ran") 300 m.num_jobs)
    [ Sched.Allocator.jigsaw; Sched.Allocator.laas; Sched.Allocator.ta ]

let test_padding_visible_in_alloc_utilization () =
  (* 18 nodes via LaaS on radix 8 spans pods and pads to 20 held; a
     second job that cannot coexist stretches the steady window past
     zero so the utilization integrals are non-trivial. *)
  let w = workload [ job 0 18 100.0; job 1 120 50.0 ] in
  let m, _ = run ~alloc:Sched.Allocator.laas w in
  Alcotest.(check bool) "held > requested" true
    (m.alloc_utilization > m.avg_utilization)

let test_fifo_mode_blocks_strictly () =
  (* With backfilling disabled, a blocked head stops everything behind
     it, even trivially-placeable jobs. *)
  let w = workload [ job 0 100 100.0; job 1 100 100.0; job 2 5 10.0 ] in
  let cfg =
    Sched.Simulator.Config.with_backfill false
      (Sched.Simulator.default_config Sched.Allocator.baseline ~radix)
  in
  let _, jobs = Sched.Simulator.run_detailed cfg w in
  Alcotest.(check (float 1e-9)) "small job waits behind head" 100.0
    (find jobs 2).start_time

let test_fifo_mode_rejects_oversized () =
  let w = workload [ job 0 129 10.0; job 1 5 10.0 ] in
  let cfg =
    Sched.Simulator.Config.with_backfill false
      (Sched.Simulator.default_config Sched.Allocator.baseline ~radix)
  in
  let m, jobs = Sched.Simulator.run_detailed cfg w in
  Alcotest.(check int) "rejected" 1 m.rejected;
  Alcotest.(check (float 1e-9)) "queue unblocked" 0.0 (find jobs 1).start_time

let test_window_one_limits_backfill () =
  (* Window 1 looks at a single candidate: job 2 (long, conflicting) is
     the only one inspected, so job 3 (short) cannot jump even though
     EASY with a wider window would start it. *)
  let w =
    workload [ job 0 100 100.0; job 1 128 100.0; job 2 28 500.0; job 3 20 50.0 ]
  in
  let narrow =
    Sched.Simulator.Config.with_backfill_window 1
      (Sched.Simulator.default_config Sched.Allocator.baseline ~radix)
  in
  let _, jobs = Sched.Simulator.run_detailed narrow w in
  Alcotest.(check bool) "short job not reached" true
    ((find jobs 3).start_time > 0.0);
  let wide =
    Sched.Simulator.Config.with_backfill_window 50
      (Sched.Simulator.default_config Sched.Allocator.baseline ~radix)
  in
  let _, jobs = Sched.Simulator.run_detailed wide w in
  Alcotest.(check (float 1e-9)) "wide window backfills it" 0.0
    (find jobs 3).start_time

let test_midtrace_idle_counts_against_utilization () =
  (* A demand gap in the middle of an arrival trace is genuine low
     demand: the steady window spans it and utilization drops, unlike
     the excluded cold-start ramp and final drain. *)
  let w =
    workload
      [
        job 0 128 100.0;
        job ~arrival:10.0 1 128 100.0 (* blocks: steady start *);
        (* long idle gap: nothing arrives between 210 and 1000 *)
        job ~arrival:1000.0 2 128 100.0;
        job ~arrival:1000.0 3 128 100.0 (* blocks again; last start 1100 *);
      ]
  in
  let m, _ = run w in
  (* Window [10, 1100]: busy except [210, 1000). *)
  Alcotest.(check bool)
    (Printf.sprintf "gap visible (%.2f)" m.avg_utilization)
    true
    (m.avg_utilization < 0.5)

let test_estimates_gate_backfill () =
  (* Same layout as the backfill test, but the short candidate's
     ESTIMATE overruns the reservation: EASY must refuse it even though
     its actual runtime would fit. *)
  let est_job ?(arrival = 0.0) id size runtime est =
    Trace.Job.v ~id ~size ~runtime ~est_runtime:est ~arrival ()
  in
  let w =
    workload
      [ job 0 100 100.0; job 1 128 100.0; est_job 2 20 50.0 500.0 ]
  in
  let _, jobs = run w in
  Alcotest.(check bool) "over-estimated job held back" true
    ((find jobs 2).start_time >= 100.0);
  (* With an exact estimate it backfills (whole-machine head reserves at
     t=100; 50 <= 100). *)
  let w' = workload [ job 0 100 100.0; job 1 128 100.0; job 2 20 50.0 ] in
  let _, jobs' = run w' in
  Alcotest.(check (float 1e-9)) "exact estimate backfills" 0.0
    (find jobs' 2).start_time

let test_estimates_keep_reservations_conservative () =
  (* The running job's estimate is loose: the reservation lands at the
     ESTIMATED completion, but the head still starts at the ACTUAL one
     (completions retrigger scheduling). *)
  let est_job id size runtime est =
    Trace.Job.v ~id ~size ~runtime ~est_runtime:est ()
  in
  let w = workload [ est_job 0 128 100.0 1000.0; job 1 128 10.0 ] in
  let _, jobs = run w in
  Alcotest.(check (float 1e-9)) "head starts at actual completion" 100.0
    (find jobs 1).start_time

let test_series_exposed () =
  let w = workload [ job 0 64 10.0; job 1 128 10.0 ] in
  let m, _ = run w in
  Alcotest.(check bool) "series non-empty" true (Array.length m.series > 0);
  Array.iter
    (fun (_, u) -> Alcotest.(check bool) "fraction" true (u >= 0.0 && u <= 1.0))
    m.series

let suite =
  [
    Alcotest.test_case "single job" `Quick test_single_job;
    Alcotest.test_case "FIFO under saturation" `Quick test_fifo_order_when_saturated;
    Alcotest.test_case "parallel when fits" `Quick test_parallel_when_fits;
    Alcotest.test_case "EASY backfills short jobs" `Quick test_backfill_small_job;
    Alcotest.test_case "backfill never delays head" `Quick test_backfill_does_not_delay_head;
    Alcotest.test_case "disjoint long backfill" `Quick test_backfill_disjoint_long_job;
    Alcotest.test_case "arrivals respected" `Quick test_arrivals_respected;
    Alcotest.test_case "oversized jobs rejected" `Quick test_rejected_oversized;
    Alcotest.test_case "scenarios only speed isolating schemes" `Quick test_scenario_applies_to_isolating_only;
    Alcotest.test_case "utilization accounting" `Quick test_utilization_simple;
    Alcotest.test_case "turnaround accounting" `Quick test_turnaround_accounting;
    Alcotest.test_case "isolating runs claim-safe" `Slow test_isolating_run_has_no_claim_conflicts;
    Alcotest.test_case "padding visible" `Quick test_padding_visible_in_alloc_utilization;
    Alcotest.test_case "FIFO mode blocks strictly" `Quick test_fifo_mode_blocks_strictly;
    Alcotest.test_case "FIFO mode rejects oversized" `Quick test_fifo_mode_rejects_oversized;
    Alcotest.test_case "window=1 limits backfill" `Quick test_window_one_limits_backfill;
    Alcotest.test_case "utilization series exposed" `Quick test_series_exposed;
    Alcotest.test_case "mid-trace idle counts" `Quick test_midtrace_idle_counts_against_utilization;
    Alcotest.test_case "estimates gate backfill" `Quick test_estimates_gate_backfill;
    Alcotest.test_case "reservations use estimates, starts use actuals" `Quick
      test_estimates_keep_reservations_conservative;
  ]
