(* Tests for the domain pool (Par.Pool) and the parallel sweep
   (Sched.Sweep): determinism across domain counts, registry merge
   algebra, ownership enforcement and exception propagation. *)

(* A cheap but order-sensitive pure function: catches any merge that
   permutes or drops slots. *)
let mix i =
  let h = ref (i * 2654435761) in
  for _ = 1 to 50 do
    h := !h lxor (!h lsr 13);
    h := !h * 1099511628211
  done;
  !h

let test_pool_determinism () =
  let cells = Array.init 37 (fun i -> i) in
  let expect = Array.map mix cells in
  List.iter
    (fun size ->
      Par.Pool.with_pool ~size (fun p ->
          let got = Par.Pool.run_cells p ~f:mix cells in
          Alcotest.(check (array int))
            (Printf.sprintf "pool size %d" size)
            expect got;
          let got_chunked = Par.Pool.run_cells ~chunk:5 p ~f:mix cells in
          Alcotest.(check (array int))
            (Printf.sprintf "pool size %d, chunk 5" size)
            expect got_chunked))
    [ 1; 2; 3; 8 ];
  Alcotest.(check (array int))
    "map ~jobs:4" expect
    (Par.Pool.map ~jobs:4 ~f:mix cells);
  Alcotest.(check (array int))
    "empty input" [||]
    (Par.Pool.map ~jobs:4 ~f:mix [||])

let test_exception_propagation () =
  Par.Pool.with_pool ~size:3 (fun p ->
      (* The pool must survive a failing batch and run the next one. *)
      (try
         ignore
           (Par.Pool.run_cells p
              ~f:(fun i -> if i = 11 then failwith "cell 11 exploded" else i)
              (Array.init 20 (fun i -> i)));
         Alcotest.fail "expected Failure"
       with Failure m ->
         Alcotest.(check string) "failure message" "cell 11 exploded" m);
      let ok = Par.Pool.run_cells p ~f:(fun i -> i + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool survives a failure" [| 2; 3; 4 |] ok)

let test_shutdown () =
  let p = Par.Pool.create ~size:2 in
  Alcotest.(check int) "size" 2 (Par.Pool.size p);
  Par.Pool.shutdown p;
  Par.Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run_cells: pool is shut down") (fun () ->
      ignore (Par.Pool.run_cells p ~f:(fun i -> i) [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Obs.Prof: single-writer enforcement and merge algebra.              *)
(* ------------------------------------------------------------------ *)

let test_prof_single_writer () =
  let p = Obs.Prof.create () in
  Obs.Prof.incr p "c/ok";
  let failed_cross_domain =
    Domain.join
      (Domain.spawn (fun () ->
           match Obs.Prof.incr p "c/ok" with
           | () -> false
           | exception Invalid_argument _ -> true))
  in
  Alcotest.(check bool) "cross-domain write rejected" true failed_cross_domain;
  (* Cross-domain *reads* after the join are part of the contract. *)
  let q =
    Domain.join
      (Domain.spawn (fun () ->
           let q = Obs.Prof.create () in
           Obs.Prof.incr q "c/worker";
           Obs.Prof.record_span q "span/w" 2e3;
           q))
  in
  Alcotest.(check int) "read joined registry" 1 (Obs.Prof.counter q "c/worker");
  Obs.Prof.merge_into ~into:p q;
  Alcotest.(check int) "merged counter" 1 (Obs.Prof.counter p "c/worker")

(* A registry as a value: a list of integral operations.  Integral
   span/gauge values make float sums exact, so associativity and
   commutativity hold bit-for-bit and registries compare as their JSON
   dumps. *)
type op = Incr of int | Add of int * int | Sample of int * int | Span of int * int

let apply_ops ops =
  let p = Obs.Prof.create () in
  List.iter
    (fun op ->
      match op with
      | Incr k -> Obs.Prof.incr p (Printf.sprintf "c/%d" k)
      | Add (k, v) -> Obs.Prof.add p (Printf.sprintf "c/%d" k) v
      | Sample (k, v) ->
          Obs.Prof.sample p (Printf.sprintf "g/%d" k) (float_of_int v)
      | Span (k, v) ->
          Obs.Prof.record_span p (Printf.sprintf "s/%d" k) (float_of_int v))
    ops;
  p

let dump p =
  let b = Buffer.create 256 in
  Obs.Prof.write_json b p;
  Buffer.contents b

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Incr k) (int_range 0 4);
        map2 (fun k v -> Add (k, v)) (int_range 0 4) (int_range 0 1000);
        map2 (fun k v -> Sample (k, v)) (int_range 0 3) (int_range 0 1000);
        map2 (fun k v -> Span (k, v)) (int_range 0 3) (int_range 0 100_000);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 30) op_gen)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"Prof.merge_into commutative (integral values)"
    ~count:100
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (xs, ys) ->
      let ab = apply_ops xs in
      Obs.Prof.merge_into ~into:ab (apply_ops ys);
      let ba = apply_ops ys in
      Obs.Prof.merge_into ~into:ba (apply_ops xs);
      String.equal (dump ab) (dump ba))

let prop_merge_associative =
  QCheck2.Test.make ~name:"Prof.merge_into associative (integral values)"
    ~count:100
    QCheck2.Gen.(triple ops_gen ops_gen ops_gen)
    (fun (xs, ys, zs) ->
      (* (x <- y) <- z  vs  x <- (y <- z) *)
      let left = apply_ops xs in
      Obs.Prof.merge_into ~into:left (apply_ops ys);
      Obs.Prof.merge_into ~into:left (apply_ops zs);
      let yz = apply_ops ys in
      Obs.Prof.merge_into ~into:yz (apply_ops zs);
      let right = apply_ops xs in
      Obs.Prof.merge_into ~into:right yz;
      String.equal (dump left) (dump right))

(* ------------------------------------------------------------------ *)
(* Sweep: fingerprints and merged profiles must not see domain count.  *)
(* ------------------------------------------------------------------ *)

let small_grid ~profile =
  List.concat_map
    (fun (e : Trace.Presets.entry) ->
      let workload = Trace.Workload.truncate e.workload 120 in
      List.map
        (fun a ->
          Sched.Sweep.cell ~profile ~radix:e.cluster_radix a workload)
        Sched.Allocator.all)
    (Trace.Presets.all ~full:false)
  |> Array.of_list

let fingerprints results =
  Array.map
    (fun (r : Sched.Sweep.result) -> Sched.Metrics.fingerprint r.metrics)
    results

let test_sweep_matches_serial () =
  let cells = small_grid ~profile:true in
  let serial = Sched.Sweep.run ~jobs:1 cells in
  let par = Sched.Sweep.run ~jobs:2 cells in
  Alcotest.(check (array string))
    "fingerprints: 2 domains = serial" (fingerprints serial)
    (fingerprints par);
  (* The deterministic half of the merged profile: counters and span
     counts are integers and must match exactly; span durations (and
     thus histograms and totals) are wall-clock and legitimately
     differ. *)
  let counters r =
    match Sched.Sweep.merged_profile r with
    | None -> Alcotest.fail "expected merged profile"
    | Some p -> Obs.Prof.counters p
  in
  let pairs l = List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l in
  Alcotest.(check (list string))
    "merged profile counters: 2 domains = serial"
    (pairs (counters serial))
    (pairs (counters par));
  let span_counts r =
    match Sched.Sweep.merged_profile r with
    | None -> []
    | Some p ->
        List.map
          (fun (k, (v : Obs.Prof.span_view)) ->
            Printf.sprintf "%s:%d" k v.sp_count)
          (Obs.Prof.spans p)
  in
  Alcotest.(check (list string))
    "merged span counts: 2 domains = serial" (span_counts serial)
    (span_counts par)

let test_sweep_faulty_matches_serial () =
  (* A seeded-fault, requeueing cell pair: the fault/kill/requeue path
     must be just as invisible to the merge. *)
  let e = Trace.Presets.synth_16 ~full:false in
  let workload = Trace.Workload.truncate e.workload 200 in
  let topo = Fattree.Topology.of_radix e.cluster_radix in
  let faults =
    Trace.Faults.generate ~seed:7 ~mtbf:2e4 ~mttr:5e3 ~horizon:1e5 topo
  in
  let resilience =
    {
      Sched.Simulator.requeue = true;
      resubmit_delay = 30.0;
      max_retries = 2;
      charge_lost_work = true;
      shrink = false;
    }
  in
  let cells =
    List.map
      (fun a ->
        Sched.Sweep.cell ~faults ~resilience ~radix:e.cluster_radix a workload)
      Sched.Allocator.all
    |> Array.of_list
  in
  let serial = Sched.Sweep.run ~jobs:1 cells in
  let par = Sched.Sweep.run ~jobs:3 cells in
  Alcotest.(check (array string))
    "faulty fingerprints: 3 domains = serial" (fingerprints serial)
    (fingerprints par);
  Alcotest.(check bool)
    "faults actually fired" true
    (Array.exists
       (fun (r : Sched.Sweep.result) -> r.metrics.fault_events > 0)
       serial)

let suite =
  [
    Alcotest.test_case "pool determinism across sizes" `Quick
      test_pool_determinism;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown;
    Alcotest.test_case "Prof single-writer enforcement" `Quick
      test_prof_single_writer;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    Alcotest.test_case "sweep fingerprints match serial" `Slow
      test_sweep_matches_serial;
    Alcotest.test_case "faulty sweep matches serial" `Quick
      test_sweep_faulty_matches_serial;
  ]
