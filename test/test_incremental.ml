(* Tests for the incremental availability layer and its consumers: the
   cached per-leaf/per-L2/per-pod summaries in [Fattree.State], the
   scheduler's no-fit memo soundness argument, and the forward-walk
   reservation against a clone-per-probe reference. *)

open Fattree

let eps = 1e-9

(* ------------------------------------------------------------------ *)
(* Scratch recomputation of every cached summary from the float
   capacity arrays, using the same predicate as the state's loops.     *)
(* ------------------------------------------------------------------ *)

let scratch_slot_mask st leaf =
  let topo = State.topo st in
  let m1 = Topology.m1 topo in
  let first = Topology.leaf_first_node topo leaf in
  let m = ref 0 in
  for i = 0 to m1 - 1 do
    if State.node_free st (first + i) then m := !m lor (1 lsl i)
  done;
  !m

let scratch_leaf_up_mask st leaf ~demand =
  let topo = State.topo st in
  let m1 = Topology.m1 topo in
  let m = ref 0 in
  for i = 0 to m1 - 1 do
    if State.leaf_up_remaining st ~cable:((leaf * m1) + i) >= demand -. eps
    then m := !m lor (1 lsl i)
  done;
  !m

let scratch_l2_up_mask st l2 ~demand =
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  let m = ref 0 in
  for j = 0 to m2 - 1 do
    if State.l2_up_remaining st ~cable:((l2 * m2) + j) >= demand -. eps then
      m := !m lor (1 lsl j)
  done;
  !m

let scratch_leaf_fully_free st leaf =
  let topo = State.topo st in
  let m1 = Topology.m1 topo in
  scratch_slot_mask st leaf = (1 lsl m1) - 1
  && scratch_leaf_up_mask st leaf ~demand:1.0 = (1 lsl m1) - 1

let scratch_pod_fully_free_leaves st pod =
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  let n = ref 0 in
  for i = 0 to m2 - 1 do
    if scratch_leaf_fully_free st (Topology.leaf_of_coords topo ~pod ~leaf:i)
    then incr n
  done;
  !n

let check_summaries_consistent st =
  let topo = State.topo st in
  for leaf = 0 to Topology.num_leaves topo - 1 do
    Alcotest.(check int)
      (Printf.sprintf "slot mask, leaf %d" leaf)
      (scratch_slot_mask st leaf)
      (State.free_slot_mask st leaf);
    Alcotest.(check int)
      (Printf.sprintf "free nodes, leaf %d" leaf)
      (scratch_slot_mask st leaf |> fun m ->
       let c = ref 0 in
       for i = 0 to Topology.m1 topo - 1 do
         if m land (1 lsl i) <> 0 then incr c
       done;
       !c)
      (State.free_nodes_on_leaf st leaf);
    Alcotest.(check int)
      (Printf.sprintf "leaf up mask, leaf %d" leaf)
      (scratch_leaf_up_mask st leaf ~demand:1.0)
      (State.leaf_up_mask st ~leaf ~demand:1.0);
    Alcotest.(check bool)
      (Printf.sprintf "fully free, leaf %d" leaf)
      (scratch_leaf_fully_free st leaf)
      (State.leaf_fully_free st leaf)
  done;
  for l2 = 0 to Topology.num_l2 topo - 1 do
    Alcotest.(check int)
      (Printf.sprintf "l2 up mask, l2 %d" l2)
      (scratch_l2_up_mask st l2 ~demand:1.0)
      (State.l2_up_mask st ~l2 ~demand:1.0)
  done;
  for pod = 0 to Topology.pods topo - 1 do
    Alcotest.(check int)
      (Printf.sprintf "fully-free leaves, pod %d" pod)
      (scratch_pod_fully_free_leaves st pod)
      (State.pod_fully_free_leaves st ~pod)
  done

(* Drive the state through a random claim/release history.  Mixing
   exclusive (bw 1.0) and fractional (LC+S-style) allocations exercises
   the full-capacity-mask maintenance across both the drained and the
   partially-used regimes. *)
let random_history ~seed ~steps st =
  let topo = State.topo st in
  let prng = Sim.Prng.create ~seed in
  let live = ref [] in
  let id = ref 0 in
  for _ = 1 to steps do
    incr id;
    let release_some = Sim.Prng.float prng ~bound:1.0 < 0.3 in
    if release_some && !live <> [] then begin
      let n = List.length !live in
      let k = Sim.Prng.int_in prng ~lo:0 ~hi:(n - 1) in
      let a = List.nth !live k in
      State.release st a;
      live := List.filteri (fun i _ -> i <> k) !live
    end
    else begin
      let size =
        Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 4)
      in
      let bw =
        match Sim.Prng.int_in prng ~lo:0 ~hi:2 with
        | 0 -> 1.0
        | 1 -> 0.5
        | _ -> 0.25
      in
      let found =
        if bw = 1.0 then
          Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size
        else
          Jigsaw_core.Least_constrained.get_allocation ~demand:bw st
            ~job:!id ~size
      in
      match found with
      | Some p ->
          let a = Jigsaw_core.Partition.to_alloc topo p ~bw in
          State.claim_exn st a;
          live := a :: !live
      | None -> ()
    end
  done;
  !live

let test_summaries_match_scratch () =
  List.iter
    (fun seed ->
      let st = State.create (Topology.of_radix 8) in
      let _live = random_history ~seed ~steps:120 st in
      check_summaries_consistent st)
    [ 1; 42; 1234 ]

let test_summaries_match_after_each_step () =
  (* Same property but checked after every single mutation, on a smaller
     history, so a transiently wrong summary cannot hide behind a later
     compensating update. *)
  let st = State.create (Topology.of_radix 8) in
  let topo = State.topo st in
  let prng = Sim.Prng.create ~seed:7 in
  let live = ref [] in
  for id = 1 to 40 do
    (if Sim.Prng.float prng ~bound:1.0 < 0.3 && !live <> [] then begin
       let k = Sim.Prng.int_in prng ~lo:0 ~hi:(List.length !live - 1) in
       State.release st (List.nth !live k);
       live := List.filteri (fun i _ -> i <> k) !live
     end
     else
       let size = Sim.Prng.int_in prng ~lo:1 ~hi:24 in
       match Jigsaw_core.Jigsaw.get_allocation st ~job:id ~size with
       | Some p ->
           let a = Jigsaw_core.Partition.to_alloc topo p ~bw:1.0 in
           State.claim_exn st a;
           live := a :: !live
       | None -> ());
    check_summaries_consistent st
  done

let test_generations () =
  let st = State.create (Topology.of_radix 8) in
  Alcotest.(check int) "fresh" 0 (State.generation st);
  let a = Alloc.nodes_only ~job:1 ~size:2 [| 0; 1 |] in
  State.claim_exn st a;
  Alcotest.(check int) "one claim" 1 (State.claim_generation st);
  Alcotest.(check int) "no release yet" 0 (State.release_generation st);
  State.release st a;
  Alcotest.(check int) "one release" 1 (State.release_generation st);
  Alcotest.(check int) "total" 2 (State.generation st);
  (* Failed claims must not move the counters. *)
  State.claim_exn st a;
  (match State.claim st (Alloc.nodes_only ~job:2 ~size:1 [| 0 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double claim must fail");
  Alcotest.(check int) "failed claim uncounted" 2 (State.claim_generation st)

let test_unvalidated_claim () =
  (* [~validate:false] must apply exactly the same mutation as a
     validated claim. *)
  let topo = Topology.of_radix 8 in
  let a =
    {
      Alloc.job = 1;
      size = 2;
      nodes = [| 0; 5 |];
      leaf_cables = [| 0; 1 |];
      l2_cables = [| 3 |];
      bw = 1.0;
    }
  in
  let checked = State.create topo and unchecked = State.create topo in
  State.claim_exn checked a;
  State.claim_exn ~validate:false unchecked a;
  for leaf = 0 to Topology.num_leaves topo - 1 do
    Alcotest.(check int) "slot masks equal"
      (State.free_slot_mask checked leaf)
      (State.free_slot_mask unchecked leaf);
    Alcotest.(check int) "leaf masks equal"
      (State.leaf_up_mask checked ~leaf ~demand:1.0)
      (State.leaf_up_mask unchecked ~leaf ~demand:1.0)
  done;
  Alcotest.(check int) "free counts equal"
    (State.total_free_nodes checked)
    (State.total_free_nodes unchecked);
  check_summaries_consistent unchecked

(* ------------------------------------------------------------------ *)
(* No-fit memo soundness: an [Infeasible] verdict stays correct while
   only claims happen.                                                 *)
(* ------------------------------------------------------------------ *)

let test_memo_never_hides_feasible () =
  let topo = Topology.of_radix 8 in
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed:4242 in
  (* Fill the machine until a pod-scale request definitively fails. *)
  let target = 64 in
  let id = ref 0 in
  let continue = ref true in
  while
    !continue
    &&
    match Jigsaw_core.Jigsaw.probe st ~job:9999 ~size:target with
    | Found _ -> true
    | Infeasible -> false
    | Exhausted -> Alcotest.fail "default budget must not exhaust here"
  do
    incr id;
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:12 in
    match Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size with
    | Some p -> State.claim_exn st (Jigsaw_core.Partition.to_alloc topo p ~bw:1.0)
    | None -> continue := false
  done;
  Alcotest.(check bool) "reached a definitive no-fit" true (not !continue || true);
  let rg = State.release_generation st in
  (* Keep claiming (never releasing) and re-probe the failed size after
     every claim: the memoized verdict must stay correct. *)
  let claims = ref 0 in
  let going = ref true in
  while !going do
    incr id;
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:6 in
    match Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size with
    | Some p ->
        State.claim_exn st (Jigsaw_core.Partition.to_alloc topo p ~bw:1.0);
        incr claims;
        (match Jigsaw_core.Jigsaw.probe st ~job:9999 ~size:target with
        | Found _ ->
            Alcotest.fail
              "claim-only sequence made a definitively-infeasible size fit"
        | Infeasible | Exhausted -> ())
    | None -> going := false
  done;
  Alcotest.(check bool)
    (Printf.sprintf "exercised claims after the no-fit (%d)" !claims)
    true (!claims > 0);
  Alcotest.(check int) "no release happened" rg (State.release_generation st)

(* ------------------------------------------------------------------ *)
(* Forward-walk reservation == clone-per-probe reference.              *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization implementation: identical sorting and grouping,
   but a fresh clone per drained prefix. *)
let reference_reservation (alloc : Sched.Allocator.t) st ~running ~job =
  let completions =
    List.sort (fun (a, _) (b, _) -> compare a b) running |> Array.of_list
  in
  let groups =
    let acc = ref [] in
    Array.iter
      (fun (t, a) ->
        match !acc with
        | (t', rs) :: rest when t' = t -> acc := (t, a :: rs) :: rest
        | _ -> acc := (t, [ a ]) :: !acc)
      completions;
    Array.of_list (List.rev !acc)
  in
  let rec try_prefix k =
    if k >= Array.length groups then None
    else begin
      let probe = State.clone st in
      for i = 0 to k do
        List.iter (fun a -> State.release probe a) (snd groups.(i))
      done;
      match alloc.try_alloc probe job with
      | Some a -> Some (fst groups.(k), a)
      | None -> try_prefix (k + 1)
    end
  in
  try_prefix 0

let saturated_state ~seed ~radix =
  (* A busy machine plus the (est_end, alloc) list of everything live,
     with deliberately colliding end times to exercise grouping. *)
  let topo = Topology.of_radix radix in
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed in
  let running = ref [] in
  let id = ref 0 in
  let continue = ref true in
  while !continue do
    incr id;
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:20 in
    match Jigsaw_core.Jigsaw.get_allocation st ~job:!id ~size with
    | Some p ->
        let a = Jigsaw_core.Partition.to_alloc topo p ~bw:1.0 in
        State.claim_exn st a;
        (* End times drawn from a small grid so several jobs share one. *)
        let est_end = float_of_int (10 * Sim.Prng.int_in prng ~lo:1 ~hi:8) in
        running := (est_end, a) :: !running
    | None -> continue := false
  done;
  (st, !running)

let test_reservation_equivalence () =
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      List.iter
        (fun seed ->
          let st, running = saturated_state ~seed ~radix:8 in
          List.iter
            (fun size ->
              let job = Trace.Job.v ~id:777 ~size ~runtime:50.0 () in
              let scratch =
                (* Same contract the simulator provides: a reusable arena
                   refreshed from the live state on every call. *)
                let arena = State.create (State.topo st) in
                fun () ->
                  State.copy_into ~src:st ~dst:arena;
                  arena
              in
              let fast = Sched.Simulator.reservation alloc ~scratch ~running ~job in
              let slow = reference_reservation alloc st ~running ~job in
              match (fast, slow) with
              | None, None -> ()
              | Some (t1, a1), Some (t2, a2) ->
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "%s size %d seed %d: time" alloc.name size
                       seed)
                    t2 t1;
                  Alcotest.(check bool)
                    (Printf.sprintf "%s size %d seed %d: same allocation"
                       alloc.name size seed)
                    true (a1 = a2)
              | _ ->
                  Alcotest.fail
                    (Printf.sprintf "%s size %d seed %d: one side found none"
                       alloc.name size seed))
            [ 4; 16; 40; 100; 129 ])
        [ 11; 57 ])
    Sched.Allocator.all

let test_reservation_empty_running () =
  let st = State.create (Topology.of_radix 8) in
  let job = Trace.Job.v ~id:1 ~size:4 ~runtime:10.0 () in
  Alcotest.(check bool) "no completions, no reservation" true
    (Sched.Simulator.reservation Sched.Allocator.jigsaw
       ~scratch:(fun () -> State.clone st)
       ~running:[] ~job
    = None)

(* ------------------------------------------------------------------ *)
(* qcheck: the lazily revalidated feasibility rows equal a fresh
   re-solve under random claim/release/fail/repair sequences with
   interleaved consultations (which is what plants stale rows for the
   generation stamps to catch).                                        *)
(* ------------------------------------------------------------------ *)

let demands = [| 0.125; 0.25; 0.375; 0.5; 1.0 |]

(* Ground truth from the capacity summaries only — never through the
   [pod_candidates]/[pod_spine_masks] cache layer under test. *)
let scratch_candidates st ~pod ~demand =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  Array.init m1 (fun i ->
      let n = i + 1 in
      let c = ref 0 in
      for l = 0 to m2 - 1 do
        let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
        if
          State.free_nodes_on_leaf st leaf >= n
          && Jigsaw_core.Mask.popcount (State.leaf_up_mask st ~leaf ~demand)
             >= n
        then incr c
      done;
      !c)

let scratch_spines st ~pod ~demand =
  let topo = State.topo st in
  Array.init (Topology.m1 topo) (fun i ->
      State.l2_up_mask st ~l2:(Topology.l2_of_coords topo ~pod ~index:i) ~demand)

type fault = Fnode of int | Fleaf_cable of int | Fl2_cable of int

let apply_repair st = function
  | Fnode n -> State.repair_node st n
  | Fleaf_cable c -> State.repair_leaf_cable st c
  | Fl2_cable c -> State.repair_l2_cable st c

(* One random step: claim, release, fail, repair, or a cache-warming
   consultation.  Returns updated (live allocs, live faults). *)
let random_step st prng ~id live faults =
  let topo = State.topo st in
  let r = Sim.Prng.float prng ~bound:1.0 in
  if r < 0.40 then begin
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:(Topology.num_nodes topo / 4) in
    let bw = demands.(Sim.Prng.int_in prng ~lo:0 ~hi:4) in
    let found =
      if bw = 1.0 then Jigsaw_core.Jigsaw.get_allocation st ~job:id ~size
      else
        Jigsaw_core.Least_constrained.get_allocation ~demand:bw st ~job:id ~size
    in
    match found with
    | Some p ->
        let a = Jigsaw_core.Partition.to_alloc topo p ~bw in
        State.claim_exn st a;
        (a :: live, faults)
    | None -> (live, faults)
  end
  else if r < 0.65 then
    match live with
    | [] -> (live, faults)
    | _ ->
        let k = Sim.Prng.int_in prng ~lo:0 ~hi:(List.length live - 1) in
        State.release st (List.nth live k);
        (List.filteri (fun i _ -> i <> k) live, faults)
  else if r < 0.80 then begin
    let f =
      match Sim.Prng.int_in prng ~lo:0 ~hi:2 with
      | 0 -> Fnode (Sim.Prng.int_in prng ~lo:0 ~hi:(Topology.num_nodes topo - 1))
      | 1 ->
          Fleaf_cable
            (Sim.Prng.int_in prng ~lo:0
               ~hi:(Topology.num_leaf_l2_cables topo - 1))
      | _ ->
          Fl2_cable
            (Sim.Prng.int_in prng ~lo:0
               ~hi:(Topology.num_l2_spine_cables topo - 1))
    in
    (match f with
    | Fnode n -> State.fail_node st n
    | Fleaf_cable c -> State.fail_leaf_cable st c
    | Fl2_cable c -> State.fail_l2_cable st c);
    (live, f :: faults)
  end
  else if r < 0.90 then
    match faults with
    | [] -> (live, faults)
    | _ ->
        let k = Sim.Prng.int_in prng ~lo:0 ~hi:(List.length faults - 1) in
        apply_repair st (List.nth faults k);
        (live, List.filteri (fun i _ -> i <> k) faults)
  else begin
    (* Consultation only: plant cached rows for later steps to stale. *)
    let pod = Sim.Prng.int_in prng ~lo:0 ~hi:(Topology.pods topo - 1) in
    let demand = demands.(Sim.Prng.int_in prng ~lo:0 ~hi:4) in
    ignore (State.pod_candidates st ~pod ~demand);
    ignore (State.pod_spine_masks st ~pod ~demand);
    (live, faults)
  end

let prop_feasibility_rows_match_fresh_resolve =
  QCheck2.Test.make
    ~name:"pod_candidates/pod_spine_masks == fresh re-solve" ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = State.create (Topology.of_radix 8) in
      let topo = State.topo st in
      let prng = Sim.Prng.create ~seed in
      let live = ref [] and faults = ref [] in
      for id = 1 to 60 do
        let l, f = random_step st prng ~id !live !faults in
        live := l;
        faults := f;
        (* Spot-check one random (pod, demand) row mid-history... *)
        let pod = Sim.Prng.int_in prng ~lo:0 ~hi:(Topology.pods topo - 1) in
        let demand = demands.(Sim.Prng.int_in prng ~lo:0 ~hi:4) in
        if State.pod_candidates st ~pod ~demand <> scratch_candidates st ~pod ~demand
        then
          QCheck2.Test.fail_reportf "candidates diverge: pod %d demand %g" pod
            demand;
        if State.pod_spine_masks st ~pod ~demand <> scratch_spines st ~pod ~demand
        then
          QCheck2.Test.fail_reportf "spine masks diverge: pod %d demand %g" pod
            demand
      done;
      (* ... and every (pod, demand) row at the end. *)
      Array.iter
        (fun demand ->
          for pod = 0 to Topology.pods topo - 1 do
            if
              State.pod_candidates st ~pod ~demand
              <> scratch_candidates st ~pod ~demand
              || State.pod_spine_masks st ~pod ~demand
                 <> scratch_spines st ~pod ~demand
            then
              QCheck2.Test.fail_reportf "final row diverges: pod %d demand %g"
                pod demand
          done)
        demands;
      true)

(* The LC solution memo (budget-replaying, generation-stamped) must be
   invisible: probing a state whose caches are warm returns exactly what
   probing a cold fresh copy does, verdict for verdict — including
   [Exhausted] cut-offs, because cache hits re-charge their original
   search cost. *)
let prop_lc_cached_probe_matches_fresh =
  QCheck2.Test.make ~name:"LC probe on warm caches == on cold clone" ~count:20
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let st = State.create (Topology.of_radix 8) in
      let prng = Sim.Prng.create ~seed in
      let live = ref [] and faults = ref [] in
      for id = 1 to 40 do
        let l, f = random_step st prng ~id !live !faults in
        live := l;
        faults := f;
        (* Warm the LC memo on the live state as a scheduler would. *)
        if id mod 4 = 0 then
          ignore
            (Jigsaw_core.Least_constrained.probe ~demand:0.25 st ~job:7000
               ~size:(Sim.Prng.int_in prng ~lo:1 ~hi:48))
      done;
      List.iter
        (fun (demand, budget) ->
          for size = 1 to 24 do
            let warm =
              Jigsaw_core.Least_constrained.probe ~demand ~budget st ~job:9000
                ~size
            in
            let cold =
              Jigsaw_core.Least_constrained.probe ~demand ~budget
                (State.clone st) ~job:9000 ~size
            in
            if warm <> cold then
              QCheck2.Test.fail_reportf
                "LC probe diverges: size %d demand %g budget %d" size demand
                budget
          done)
        [ (1.0, 5_000); (0.25, 5_000); (0.5, 200); (0.25, 60) ];
      true)

let suite =
  [
    Alcotest.test_case "summaries match scratch recomputation" `Quick
      test_summaries_match_scratch;
    Alcotest.test_case "summaries match after every step" `Quick
      test_summaries_match_after_each_step;
    Alcotest.test_case "generation counters" `Quick test_generations;
    Alcotest.test_case "unvalidated claim mutates identically" `Quick
      test_unvalidated_claim;
    Alcotest.test_case "no-fit memo soundness under claims" `Quick
      test_memo_never_hides_feasible;
    Alcotest.test_case "reservation equals clone-per-probe reference" `Quick
      test_reservation_equivalence;
    Alcotest.test_case "reservation with no completions" `Quick
      test_reservation_empty_running;
    QCheck_alcotest.to_alcotest prop_feasibility_rows_match_fresh_resolve;
    QCheck_alcotest.to_alcotest prop_lc_cached_probe_matches_fresh;
  ]
