(* The monomorphic int sort must agree exactly with [Array.sort
   Int.compare] — allocation materialization depends on it for the
   canonical ordering of node and cable id arrays. *)

let prop_matches_stdlib =
  QCheck2.Test.make ~name:"Intsort.sort = Array.sort Int.compare" ~count:500
    QCheck2.Gen.(list_size (int_range 0 600) (int_range (-1000) 1000))
    (fun l ->
      let a = Array.of_list l in
      let b = Array.of_list l in
      Sim.Intsort.sort a;
      Array.sort Int.compare b;
      a = b)

let test_edges () =
  let check l =
    let got = Sim.Intsort.of_list l in
    let want = Array.of_list (List.sort Int.compare l) in
    Alcotest.(check (array int)) "sorted" want got
  in
  check [];
  check [ 5 ];
  check [ 3; 3; 3 ];
  check (List.init 100 (fun i -> 99 - i));
  check (List.init 100 (fun i -> i))

let suite =
  [
    Alcotest.test_case "edge cases" `Quick test_edges;
    QCheck_alcotest.to_alcotest prop_matches_stdlib;
  ]
