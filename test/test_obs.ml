(* Observability layer: event serialization round-trips, trace
   determinism, the null-sink "changes nothing" invariant (metric
   fingerprints bit-identical with tracing on and off), profile
   registry consistency, and the trace analysis pipeline. *)

let radix = 8 (* 128 nodes *)
let nodes = 128

let config ?(alloc = Sched.Allocator.baseline) ?(faults = Trace.Faults.none)
    ?(resilience = Sched.Simulator.no_resilience) () =
  Sched.Simulator.Config.make ~faults ~resilience ~radix alloc

let workload jobs =
  Trace.Workload.create ~name:"obs-test" ~system_nodes:nodes
    (Array.of_list jobs)

let fev time kind target = { Trace.Faults.time; kind; target }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* One event per payload kind, with awkward floats so the 17-digit
   round-trip is actually exercised. *)
let specimen_events =
  let open Obs.Event in
  [
    { time = 0.0;
      payload =
        Run_meta
          { trace = "t\"quoted\\name"; scheme = "LC+S"; scenario = "10%";
            radix = 16; nodes = 1024; jobs = 7 } };
    { time = 0.1; payload = Arrival { job = 3; size = 65 } };
    { time = 0.30000000000000004; payload = Pass_start { pending = 12 } };
    { time = 1e9; payload = Pass_end { started = 3 } };
    { time = 2.5;
      payload =
        Attempt
          { job = 4; ctx = Head; outcome = Fit; nodes = 8; leaf_cables = 16;
            l2_cables = 0 } };
    { time = 2.5;
      payload =
        Attempt
          { job = 5; ctx = Backfill; outcome = Infeasible; nodes = 0;
            leaf_cables = 0; l2_cables = 0 } };
    { time = 2.5;
      payload =
        Attempt
          { job = 6; ctx = Backfill; outcome = Exhausted; nodes = 0;
            leaf_cables = 0; l2_cables = 0 } };
    { time = 2.5;
      payload =
        Attempt
          { job = 7; ctx = Head; outcome = Memo_hit; nodes = 0;
            leaf_cables = 0; l2_cables = 0 } };
    { time = 3.75;
      payload =
        Start
          { job = 4; ctx = Head; nodes = 8; leaf_cables = 16; l2_cables = 4;
            est_end = 1234.5678901234567; attempt = 0 } };
    { time = 3.75;
      payload =
        Start
          { job = 9; ctx = Backfill; nodes = 1; leaf_cables = 0;
            l2_cables = 0; est_end = 4.0; attempt = 2 } };
    { time = 4.0;
      payload =
        Reservation_set
          { job = 11; at = 99.25; nodes = 128; leaf_cables = 64;
            l2_cables = 32 } };
    { time = 5.0; payload = Reservation_clear { job = 11 } };
    { time = 6.5; payload = Complete { job = 4; started = 3.75; waited = 1.25 } };
    { time = 7.0; payload = Reject { job = 13 } };
    { time = 8.0;
      payload =
        Fail { target = "leaf"; id = 5; nodes = 8; leaf_cables = 8;
               l2_cables = 0 } };
    { time = 9.0; payload = Repair { target = "l2-cable"; id = 77 } };
    { time = 10.0; payload = Kill { job = 4; attempt = 1; lost = 640.5 } };
    { time = 10.0; payload = Requeue { job = 4; attempt = 2; resume_at = 15.0 } };
    { time = 10.0; payload = Abandon { job = 21; attempt = 3 } };
  ]

let test_jsonl_roundtrip () =
  List.iter
    (fun (e : Obs.Event.t) ->
      let b = Buffer.create 128 in
      Obs.Event.to_jsonl b e;
      let line = Buffer.contents b in
      Alcotest.(check bool)
        "line ends with newline" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      let e' = Obs.Event.of_jsonl (String.trim line) in
      if e' <> e then
        Alcotest.failf "jsonl round-trip mismatch for %a" Obs.Event.pp e)
    specimen_events

let test_csv_roundtrip () =
  List.iter
    (fun (e : Obs.Event.t) ->
      let b = Buffer.create 128 in
      Obs.Event.to_csv b e;
      let e' = Obs.Event.of_csv (String.trim (Buffer.contents b)) in
      if e' <> e then
        Alcotest.failf "csv round-trip mismatch for %a" Obs.Event.pp e)
    specimen_events

let test_parse_errors () =
  (match Obs.Event.of_jsonl "not json" with
  | _ -> Alcotest.fail "bad json accepted"
  | exception Obs.Json.Parse_error _ -> ());
  (match Obs.Event.of_csv "1,2,3" with
  | _ -> Alcotest.fail "short csv row accepted"
  | exception Obs.Json.Parse_error _ -> ());
  match Obs.Event.of_jsonl {|{"t":1,"ev":"no_such_kind"}|} with
  | _ -> Alcotest.fail "unknown kind accepted"
  | exception Obs.Json.Parse_error _ -> ()

(* A small workload exercising every simulator path: saturating head,
   reservation + backfill, a fault kill with requeue, and a repair. *)
let rich_workload () =
  let jobs =
    [
      Trace.Job.v ~id:0 ~size:nodes ~runtime:100.0 ();
      Trace.Job.v ~id:1 ~size:nodes ~runtime:10.0 ~arrival:1.0 ();
      Trace.Job.v ~id:2 ~size:8 ~runtime:20.0 ~arrival:2.0 ();
    ]
  in
  let faults =
    Trace.Faults.scripted
      [
        fev 5.0 Trace.Faults.Fail (Trace.Faults.Node 0);
        fev 6.0 Trace.Faults.Repair (Trace.Faults.Node 0);
      ]
  in
  let resilience =
    { Sched.Simulator.requeue = true; resubmit_delay = 5.0; max_retries = 3;
      charge_lost_work = true; shrink = false }
  in
  (workload jobs, faults, resilience)

let traced_run ?(prof = None) ?(faults = Trace.Faults.none)
    ?(resilience = Sched.Simulator.no_resilience) alloc w =
  let sink, events = Obs.Sink.memory () in
  let cfg =
    config ~alloc ~faults ~resilience ()
    |> Sched.Simulator.Config.with_sink sink
    |> Sched.Simulator.Config.with_prof prof
  in
  let m = Sched.Simulator.run cfg w in
  (m, events ())

let test_trace_deterministic () =
  (* Two same-seed runs must produce byte-identical event streams —
     events carry simulated time and logical payloads only.  The fault
     run additionally pins the job-id kill order across a multi-victim
     failure. *)
  let w, faults, resilience = rich_workload () in
  List.iter
    (fun alloc ->
      let _, ev1 = traced_run ~faults ~resilience alloc w in
      let _, ev2 = traced_run ~faults ~resilience alloc w in
      Alcotest.(check int)
        ("same event count: " ^ alloc.Sched.Allocator.name)
        (List.length ev1) (List.length ev2);
      if ev1 <> ev2 then
        Alcotest.failf "%s: event streams differ across identical runs"
          alloc.Sched.Allocator.name)
    [ Sched.Allocator.baseline; Sched.Allocator.jigsaw ]

let test_multi_victim_kill_order () =
  (* Fill the machine with size-2 jobs: leaf 0's 4 nodes (m1 = k/2 with
     radix 8) necessarily host at least two of them, so a leaf-switch
     failure is a multi-victim kill — and the Kill events must appear
     in job-id order at the fault instant, matching the post-mortem
     attribution. *)
  let jobs =
    List.init 64 (fun i -> Trace.Job.v ~id:(63 - i) ~size:2 ~runtime:100.0 ())
  in
  let faults =
    Trace.Faults.scripted
      [ fev 10.0 Trace.Faults.Fail (Trace.Faults.Leaf_switch 0) ]
  in
  let _, events =
    traced_run ~faults Sched.Allocator.baseline (workload jobs)
  in
  let kills =
    List.filter_map
      (fun (e : Obs.Event.t) ->
        match e.payload with Obs.Event.Kill { job; _ } -> Some job | _ -> None)
      events
  in
  Alcotest.(check bool) "multiple victims" true (List.length kills >= 2);
  Alcotest.(check (list int)) "kills in job-id order"
    (List.sort_uniq compare kills)
    kills;
  let a = Obs.Analysis.of_run { Obs.Reader.meta = None; events } in
  match a.faults with
  | [ f ] ->
      Alcotest.(check string) "target" "leaf" f.f_target;
      Alcotest.(check (list int)) "attribution" kills f.f_killed
  | l -> Alcotest.failf "expected 1 fault view, got %d" (List.length l)

(* The tentpole invariant: with the null sink (tracing off) and with a
   live sink + profiling, the metrics fingerprint is bit-identical.
   Covers every allocator on truncated presets plus a seeded fault run. *)
let test_null_sink_changes_nothing () =
  let presets = Trace.Presets.all ~full:false in
  List.iter
    (fun (entry : Trace.Presets.entry) ->
      let w = Trace.Workload.truncate entry.workload 60 in
      List.iter
        (fun alloc ->
          let cfg =
            Sched.Simulator.default_config alloc ~radix:entry.cluster_radix
          in
          let plain = Sched.Simulator.run cfg w in
          let sink, _ = Obs.Sink.memory () in
          let traced =
            Sched.Simulator.run
              (cfg
              |> Sched.Simulator.Config.with_sink sink
              |> Sched.Simulator.Config.with_prof (Some (Obs.Prof.create ())))
              w
          in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s fingerprint" w.name
               alloc.Sched.Allocator.name)
            (Sched.Metrics.fingerprint plain)
            (Sched.Metrics.fingerprint traced))
        [ Sched.Allocator.baseline; Sched.Allocator.jigsaw ])
    presets

let test_null_sink_all_schemes_under_faults () =
  let entry =
    match Trace.Presets.by_name ~full:false "Synth-16" with
    | Some e -> e
    | None -> Alcotest.fail "Synth-16 preset missing"
  in
  let w = Trace.Workload.truncate entry.workload 80 in
  let topo = Fattree.Topology.of_radix entry.cluster_radix in
  let faults =
    Trace.Faults.generate ~seed:42 ~mtbf:2e5 ~mttr:2e4 ~horizon:5e3 topo
  in
  let resilience =
    { Sched.Simulator.requeue = true; resubmit_delay = 30.0; max_retries = 2;
      charge_lost_work = true; shrink = false }
  in
  List.iter
    (fun alloc ->
      let cfg =
        Sched.Simulator.Config.make ~faults ~resilience
          ~radix:entry.cluster_radix alloc
      in
      let plain = Sched.Simulator.run cfg w in
      let sink, _ = Obs.Sink.memory () in
      let traced =
        Sched.Simulator.run
          (cfg
          |> Sched.Simulator.Config.with_sink sink
          |> Sched.Simulator.Config.with_prof (Some (Obs.Prof.create ())))
          w
      in
      Alcotest.(check string)
        (alloc.Sched.Allocator.name ^ " fingerprint under faults")
        (Sched.Metrics.fingerprint plain)
        (Sched.Metrics.fingerprint traced))
    Sched.Allocator.all

let test_file_roundtrip () =
  (* Simulator -> sink -> file -> Reader recovers the exact stream, in
     both formats. *)
  let w, faults, resilience = rich_workload () in
  let _, mem_events =
    traced_run ~faults ~resilience Sched.Allocator.jigsaw w
  in
  List.iter
    (fun fmt ->
      let suffix =
        match fmt with Obs.Sink.Jsonl -> ".jsonl" | Obs.Sink.Csv -> ".csv"
      in
      let path = Filename.temp_file "jigsaw-obs" suffix in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Out_channel.with_open_text path (fun oc ->
              let sink = Obs.Sink.to_channel fmt oc in
              let cfg =
                (Sched.Simulator.Config.with_sink sink
                   (config ~alloc:Sched.Allocator.jigsaw ~faults ~resilience
                      ()))
              in
              ignore (Sched.Simulator.run cfg w));
          match Obs.Reader.load path with
          | Error m -> Alcotest.fail m
          | Ok [ run ] ->
              (match run.meta with
              | Some meta ->
                  Alcotest.(check string) "meta trace" "obs-test" meta.trace;
                  Alcotest.(check string) "meta scheme" "Jigsaw" meta.scheme;
                  Alcotest.(check int) "meta nodes" nodes meta.nodes
              | None -> Alcotest.fail "run lost its meta event");
              let expected =
                List.filter
                  (fun (e : Obs.Event.t) ->
                    match e.payload with
                    | Obs.Event.Run_meta _ -> false
                    | _ -> true)
                  mem_events
              in
              Alcotest.(check int)
                (Obs.Sink.format_name fmt ^ " event count")
                (List.length expected)
                (List.length run.events);
              if run.events <> expected then
                Alcotest.failf "%s file round-trip diverges from memory sink"
                  (Obs.Sink.format_name fmt)
          | Ok runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)))
    [ Obs.Sink.Jsonl; Obs.Sink.Csv ]

let test_reader_splits_runs () =
  let mk scheme =
    { Obs.Event.time = 0.0;
      payload =
        Obs.Event.Run_meta
          { trace = "t"; scheme; scenario = "None"; radix = 8; nodes = 128;
            jobs = 1 } }
  in
  let arr id =
    { Obs.Event.time = 1.0; payload = Obs.Event.Arrival { job = id; size = 1 } }
  in
  let runs =
    Obs.Reader.split_runs [ arr 0; mk "A"; arr 1; arr 2; mk "B"; arr 3 ]
  in
  match runs with
  | [ headless; a; b ] ->
      Alcotest.(check bool) "headless has no meta" true (headless.meta = None);
      Alcotest.(check int) "headless events" 1 (List.length headless.events);
      Alcotest.(check string) "run A" "A"
        (match a.meta with Some m -> m.scheme | None -> "?");
      Alcotest.(check int) "A events" 2 (List.length a.events);
      Alcotest.(check string) "run B" "B"
        (match b.meta with Some m -> m.scheme | None -> "?");
      Alcotest.(check int) "B events" 1 (List.length b.events)
  | l -> Alcotest.failf "expected 3 runs, got %d" (List.length l)

let test_profile_consistency () =
  let w, faults, resilience = rich_workload () in
  let p = Obs.Prof.create () in
  let m, _ =
    traced_run ~prof:(Some p) ~faults ~resilience Sched.Allocator.jigsaw w
  in
  let c = Obs.Prof.counter p in
  (* Every claim is a start; this run completes everything it starts. *)
  Alcotest.(check int) "claims = starts"
    (c "sched/starts" + c "sched/backfill_starts")
    (c "state/claims");
  Alcotest.(check int) "releases = claims (all done)" (c "state/claims")
    (c "state/releases");
  Alcotest.(check int) "fail ops recorded" 1 (c "state/failures");
  Alcotest.(check int) "repair ops recorded" 1 (c "state/repairs");
  Alcotest.(check bool) "passes counted" true (c "sched/passes" > 0);
  Alcotest.(check bool) "engine stepped" true (c "engine/steps" > 0);
  Alcotest.(check bool) "probes fit" true (c "probe/fit" > 0);
  (* 4 starts: job0, job2 (backfill), job0 again (requeue), job1. *)
  Alcotest.(check int) "starts" 4
    (c "sched/starts" + c "sched/backfill_starts");
  Alcotest.(check int) "interrupted metric agrees" 1 m.interrupted;
  let spans = Obs.Prof.spans p in
  Alcotest.(check bool) "head-probe span present" true
    (List.mem_assoc "sched/head_probe" spans);
  List.iter
    (fun (name, (v : Obs.Prof.span_view)) ->
      Alcotest.(check bool) (name ^ " hist total = count") true
        (Array.fold_left ( + ) 0 v.sp_hist = v.sp_count);
      Alcotest.(check bool) (name ^ " mean <= max") true
        (v.sp_mean_ns <= v.sp_max_ns +. 1e-9))
    spans;
  let gauges = Obs.Prof.gauges p in
  Alcotest.(check bool) "queue-depth gauge sampled" true
    (match List.assoc_opt "gauge/queue_depth" gauges with
    | Some g -> g.Obs.Prof.g_samples > 0
    | None -> false);
  (* Profile JSON is well-formed enough to contain every section. *)
  let b = Buffer.create 256 in
  Obs.Prof.write_json b p;
  let s = Buffer.contents b in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("json has " ^ key) true
        (contains s (Printf.sprintf "\"%s\"" key)))
    [ "counters"; "spans"; "gauges"; "state/claims"; "sched/head_probe" ]

let test_analysis_summary () =
  let w, faults, resilience = rich_workload () in
  let _, events = traced_run ~faults ~resilience Sched.Allocator.jigsaw w in
  let runs = Obs.Reader.split_runs events in
  let run = List.hd runs in
  let a = Obs.Analysis.of_run run in
  Alcotest.(check int) "3 jobs" 3 (List.length a.timelines);
  Alcotest.(check int) "all completed" 3
    (List.length
       (List.filter
          (fun (tl : Obs.Analysis.timeline) -> tl.fate = Obs.Analysis.Completed)
          a.timelines));
  (* Job 0: killed at t=5 and restarted — two starts, one kill. *)
  let tl0 =
    List.find (fun (tl : Obs.Analysis.timeline) -> tl.id = 0) a.timelines
  in
  Alcotest.(check int) "job 0 restarted" 2 (List.length tl0.starts);
  Alcotest.(check (list (float 1e-9))) "job 0 killed at 5" [ 5.0 ] tl0.kills;
  Alcotest.(check int) "4 starts -> 4 waits" 4 (Array.length a.waits);
  Alcotest.(check bool) "queue sampled" true (Array.length a.queue_depths > 0);
  Alcotest.(check int) "one requeue" 1 a.requeues;
  Alcotest.(check int) "one repair" 1 a.repairs;
  (match a.faults with
  | [ f ] -> Alcotest.(check (list int)) "fault killed job 0" [ 0 ] f.f_killed
  | l -> Alcotest.failf "expected 1 fault, got %d" (List.length l));
  (* The report renders and mentions the load-bearing sections. *)
  let report = Format.asprintf "%a" (Obs.Analysis.pp_summary ~timeline:true) a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (contains report needle))
    [ "scheme=Jigsaw"; "queue depth"; "wait histogram"; "faults: 1 injected";
      "timelines:"; "[completed]" ]

let test_metrics_json_roundtrip () =
  let w, _, _ = rich_workload () in
  let m = Sched.Simulator.run (config ~alloc:Sched.Allocator.jigsaw ()) w in
  let fields = Obs.Json.parse_line (Sched.Metrics.to_json_string m) in
  Alcotest.(check string) "trace" "obs-test" (Obs.Json.str fields "trace");
  Alcotest.(check string) "sched" "Jigsaw" (Obs.Json.str fields "sched");
  Alcotest.(check int) "num_jobs" m.num_jobs (Obs.Json.int fields "num_jobs");
  Alcotest.(check (float 1e-12)) "avg_utilization" m.avg_utilization
    (Obs.Json.num fields "avg_utilization");
  Alcotest.(check int) "series_points" (Array.length m.series)
    (Obs.Json.int fields "series_points");
  Alcotest.(check int) "hist key per bucket" (Array.length m.inst_hist)
    (List.length
       (List.filter
          (fun (k, _) -> String.length k > 10 && String.sub k 0 10 = "inst_hist_")
          fields))

let test_fingerprint_sensitivity () =
  let w, _, _ = rich_workload () in
  let m = Sched.Simulator.run (config ~alloc:Sched.Allocator.jigsaw ()) w in
  let fp = Sched.Metrics.fingerprint m in
  Alcotest.(check string) "wall-clock excluded" fp
    (Sched.Metrics.fingerprint
       { m with sched_time_total = 1234.0; sched_time_per_job = 5.0 });
  Alcotest.(check bool) "simulated fields included" true
    (fp <> Sched.Metrics.fingerprint { m with num_jobs = m.num_jobs + 1 });
  Alcotest.(check bool) "series included" true
    (fp <> Sched.Metrics.fingerprint { m with series = [||] })

let test_series_csv () =
  let w, _, _ = rich_workload () in
  let m = Sched.Simulator.run (config ~alloc:Sched.Allocator.baseline ()) w in
  let path = Filename.temp_file "jigsaw-series" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Sched.Metrics.write_series_csv oc m);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check int) "header + one row per point"
        (1 + Array.length m.series)
        (List.length lines);
      Alcotest.(check string) "header" "time,utilization" (List.hd lines);
      (* Full-precision round trip through the text form. *)
      List.iteri
        (fun i line ->
          if i > 0 then
            match String.split_on_char ',' line with
            | [ t; u ] ->
                let et, eu = m.series.(i - 1) in
                Alcotest.(check (float 0.0)) "time" et (float_of_string t);
                Alcotest.(check (float 0.0)) "util" eu (float_of_string u)
            | _ -> Alcotest.failf "bad csv line %s" line)
        lines)

let test_null_sink_is_disabled () =
  Alcotest.(check bool) "null sink disabled" false Obs.Sink.null.enabled;
  let sink, events = Obs.Sink.memory () in
  Alcotest.(check bool) "memory sink enabled" true sink.enabled;
  Alcotest.(check int) "empty before emission" 0 (List.length (events ()));
  Alcotest.(check bool) "format by path" true
    (Obs.Sink.format_of_path "x/y.csv" = Obs.Sink.Csv
    && Obs.Sink.format_of_path "x/y.jsonl" = Obs.Sink.Jsonl
    && Obs.Sink.format_of_path "plain" = Obs.Sink.Jsonl)

let suite =
  [
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "multi-victim kill order" `Quick
      test_multi_victim_kill_order;
    Alcotest.test_case "null sink changes nothing" `Quick
      test_null_sink_changes_nothing;
    Alcotest.test_case "null sink: all schemes under faults" `Quick
      test_null_sink_all_schemes_under_faults;
    Alcotest.test_case "file round-trip via reader" `Quick test_file_roundtrip;
    Alcotest.test_case "reader splits runs" `Quick test_reader_splits_runs;
    Alcotest.test_case "profile consistency" `Quick test_profile_consistency;
    Alcotest.test_case "analysis summary" `Quick test_analysis_summary;
    Alcotest.test_case "metrics json round-trip" `Quick
      test_metrics_json_roundtrip;
    Alcotest.test_case "fingerprint sensitivity" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "sink basics" `Quick test_null_sink_is_disabled;
  ]
