(* The svc suite runs in its own executable: its crash trials fork, and
   OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
   domain — which the par and sweep suites in [main] do.  Everything in
   [Test_svc] is single-domain (sweeps run with [jobs:1]). *)
let () = Alcotest.run "jigsaw-svc" [ ("svc", Test_svc.suite) ]
