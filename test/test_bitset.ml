(* Tests for Sim.Bitset. *)

open Sim

let test_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63 (word boundary)" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index 10 out of range [0, 10)") (fun () ->
      Bitset.add b 10);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitset: index -1 out of range [0, 10)") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_fill_clear () =
  let b = Bitset.create 130 in
  Bitset.fill b;
  Alcotest.(check int) "full" 130 (Bitset.cardinal b);
  Alcotest.(check bool) "mem last" true (Bitset.mem b 129);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let test_iter_order () =
  let b = Bitset.of_list 200 [ 150; 3; 77; 3; 64 ] in
  Alcotest.(check (list int)) "ascending" [ 3; 64; 77; 150 ] (Bitset.to_list b)

let test_first_clear_from () =
  let b = Bitset.of_list 10 [ 0; 1; 2; 5 ] in
  Alcotest.(check (option int)) "from 0" (Some 3) (Bitset.first_clear_from b 0);
  Alcotest.(check (option int)) "from 3" (Some 3) (Bitset.first_clear_from b 3);
  Alcotest.(check (option int)) "from 5" (Some 6) (Bitset.first_clear_from b 5);
  let full = Bitset.create 4 in
  Bitset.fill full;
  Alcotest.(check (option int)) "all set" None (Bitset.first_clear_from full 0)

let test_count_range () =
  let b = Bitset.of_list 100 [ 10; 20; 30; 40 ] in
  Alcotest.(check int) "range [15,35)" 2 (Bitset.count_range b ~lo:15 ~hi:35);
  Alcotest.(check int) "clamped" 4 (Bitset.count_range b ~lo:(-5) ~hi:1000)

let test_set_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 65; 66 ] in
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  let c = Bitset.of_list 70 [ 3; 69 ] in
  Alcotest.(check bool) "disjoint" true (Bitset.disjoint a c);
  Bitset.union_into ~dst:a c;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 65; 69 ] (Bitset.to_list a)

let test_copy_equal () =
  let a = Bitset.of_list 50 [ 5; 10 ] in
  let b = Bitset.copy a in
  Alcotest.(check bool) "equal" true (Bitset.equal a b);
  Bitset.add b 11;
  Alcotest.(check bool) "copy independent" false (Bitset.equal a b)

let test_iter_set () =
  (* iter_set must agree with a mem loop, including across word
     boundaries (62/63/64) and in the ragged last word. *)
  let b = Bitset.of_list 200 [ 0; 62; 63; 64; 126; 127; 199 ] in
  let via_iter = ref [] in
  Bitset.iter_set b ~f:(fun i -> via_iter := i :: !via_iter);
  Alcotest.(check (list int))
    "iter_set = to_list" (Bitset.to_list b)
    (List.rev !via_iter);
  let empty = Bitset.create 100 in
  Bitset.iter_set empty ~f:(fun _ -> Alcotest.fail "iter on empty set")

let test_exists_set () =
  let any b = Bitset.exists_set b ~f:(fun _ -> true) in
  let b = Bitset.create 130 in
  Alcotest.(check bool) "empty" false (any b);
  Bitset.add b 129;
  Alcotest.(check bool) "last bit only" true (any b);
  Alcotest.(check bool) "predicate filters" false
    (Bitset.exists_set b ~f:(fun i -> i < 100));
  Bitset.remove b 129;
  Bitset.add b 63;
  Alcotest.(check bool) "word-boundary bit" true (any b)

let test_intersects_array () =
  let b = Bitset.of_list 200 [ 63; 64; 199 ] in
  Alcotest.(check bool) "hit" true (Bitset.intersects_array b [| 5; 64 |]);
  Alcotest.(check bool) "miss" false (Bitset.intersects_array b [| 5; 65 |]);
  Alcotest.(check bool) "empty array" false (Bitset.intersects_array b [||]);
  Alcotest.check_raises "bounds checked"
    (Invalid_argument "Bitset: index 200 out of range [0, 200)") (fun () ->
      ignore (Bitset.intersects_array b [| 200 |]))

let test_of_array () =
  let b = Bitset.of_array 100 [| 9; 3; 3; 77 |] in
  Alcotest.(check (list int)) "members" [ 3; 9; 77 ] (Bitset.to_list b)

let gen_members = QCheck2.Gen.(list (int_range 0 199))

let prop_iter_set_matches_mem =
  QCheck2.Test.make ~name:"iter_set visits exactly the members, ascending"
    ~count:200 gen_members (fun xs ->
      let b = Sim.Bitset.of_list 200 xs in
      let acc = ref [] in
      Sim.Bitset.iter_set b ~f:(fun i -> acc := i :: !acc);
      List.rev !acc = List.sort_uniq compare xs)

let prop_count_range_matches_naive =
  QCheck2.Test.make ~name:"count_range = naive mem count" ~count:200
    QCheck2.Gen.(triple gen_members (int_range 0 200) (int_range 0 200))
    (fun (xs, a, c) ->
      let lo = min a c and hi = max a c in
      let b = Sim.Bitset.of_list 200 xs in
      let naive = ref 0 in
      for i = lo to hi - 1 do
        if Sim.Bitset.mem b i then incr naive
      done;
      Sim.Bitset.count_range b ~lo ~hi = !naive)

let prop_first_clear_matches_naive =
  QCheck2.Test.make ~name:"first_clear_from = naive scan" ~count:200
    QCheck2.Gen.(pair gen_members (int_range 0 199))
    (fun (xs, from) ->
      let b = Sim.Bitset.of_list 200 xs in
      let rec naive i =
        if i >= 200 then None
        else if not (Sim.Bitset.mem b i) then Some i
        else naive (i + 1)
      in
      Sim.Bitset.first_clear_from b from = naive from)

let prop_intersects_array_matches_exists =
  QCheck2.Test.make ~name:"intersects_array = Array.exists mem" ~count:200
    QCheck2.Gen.(pair gen_members (array_size (int_range 0 20) (int_range 0 199)))
    (fun (xs, probe) ->
      let b = Sim.Bitset.of_list 200 xs in
      Sim.Bitset.intersects_array b probe
      = Array.exists (Sim.Bitset.mem b) probe)

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list (int_range 0 199))
    (fun xs ->
      let b = Sim.Bitset.of_list 200 xs in
      Sim.Bitset.to_list b = List.sort_uniq compare xs)

let prop_cardinal =
  QCheck2.Test.make ~name:"cardinal = |set|" ~count:200
    QCheck2.Gen.(list (int_range 0 499))
    (fun xs ->
      let b = Sim.Bitset.of_list 500 xs in
      Sim.Bitset.cardinal b = List.length (List.sort_uniq compare xs))

let suite =
  [
    Alcotest.test_case "basic membership" `Quick test_basic;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "fill and clear" `Quick test_fill_clear;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    Alcotest.test_case "first_clear_from" `Quick test_first_clear_from;
    Alcotest.test_case "count_range" `Quick test_count_range;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "copy and equal" `Quick test_copy_equal;
    Alcotest.test_case "iter_set" `Quick test_iter_set;
    Alcotest.test_case "exists_set" `Quick test_exists_set;
    Alcotest.test_case "intersects_array" `Quick test_intersects_array;
    Alcotest.test_case "of_array" `Quick test_of_array;
    QCheck_alcotest.to_alcotest prop_iter_set_matches_mem;
    QCheck_alcotest.to_alcotest prop_count_range_matches_naive;
    QCheck_alcotest.to_alcotest prop_first_clear_matches_naive;
    QCheck_alcotest.to_alcotest prop_intersects_array_matches_exists;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_cardinal;
  ]
