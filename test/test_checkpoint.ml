(* Checkpoint/restore determinism: for arbitrary checkpoint times —
   including between a fault and its repair — checkpoint → restore →
   finish must reproduce the uninterrupted run's fingerprint bit for
   bit, for every scheme, with and without faults.  Plus: file-level
   integrity (corrupted/truncated checkpoints fail loudly) and sweep
   manifest resume (interrupted sweeps complete from their journal). *)

let radix = 8 (* 128 nodes *)

let workload =
  lazy (Trace.Synthetic.synth ~mean_size:16 ~n_jobs:60 ~seed:42 ~max_size:128)

let requeue_policy =
  {
    Sched.Simulator.requeue = true;
    resubmit_delay = 30.0;
    max_retries = 2;
    charge_lost_work = true;
    shrink = false;
  }

(* A fail/repair pair wide enough that checkpoint times strictly
   between them are easy to pick. *)
let fail_at = 400.0
let repair_at = 1400.0

let scripted_faults =
  lazy
    (Trace.Faults.scripted
       [
         { Trace.Faults.time = fail_at; kind = Fail; target = Leaf_switch 0 };
         { Trace.Faults.time = repair_at; kind = Repair; target = Leaf_switch 0 };
         { Trace.Faults.time = 900.0; kind = Fail; target = Node 77 };
         { Trace.Faults.time = 2100.0; kind = Repair; target = Node 77 };
       ])

let cfg ?(faults = Trace.Faults.none)
    ?(resilience = Sched.Simulator.no_resilience) alloc =
  Sched.Simulator.Config.make ~faults ~resilience ~radix alloc

let fingerprint_of cfg w =
  Sched.Metrics.fingerprint (Sched.Simulator.run cfg w)

let with_temp f =
  let path = Filename.temp_file "jigsaw-ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* checkpoint at [t] → write → read back → finish. *)
let fingerprint_via_checkpoint cfg w t =
  with_temp (fun path ->
      let sim = Sched.Simulator.start cfg w in
      Sched.Simulator.run_until sim t;
      Sched.Checkpoint.write ~path sim;
      match Sched.Checkpoint.restore ~path () with
      | Error m -> Alcotest.failf "restore at t=%g failed: %s" t m
      | Ok sim' ->
          let m, _ = Sched.Simulator.finish sim' in
          Sched.Metrics.fingerprint m)

let checkpoint_times prng makespan =
  [ 0.0; makespan +. 10.0 ]
  @ List.init 4 (fun _ -> Sim.Prng.float_in prng ~lo:0.0 ~hi:makespan)

let test_roundtrip_healthy () =
  let w = Lazy.force workload in
  let prng = Sim.Prng.create ~seed:7 in
  List.iter
    (fun alloc ->
      let c = cfg alloc in
      let m = Sched.Simulator.run c w in
      let expected = Sched.Metrics.fingerprint m in
      List.iter
        (fun t ->
          Alcotest.(check string)
            (Printf.sprintf "%s t=%g" alloc.Sched.Allocator.name t)
            expected
            (fingerprint_via_checkpoint c w t))
        (checkpoint_times prng m.makespan))
    Sched.Allocator.all

let test_roundtrip_faulty () =
  let w = Lazy.force workload in
  let faults = Lazy.force scripted_faults in
  let prng = Sim.Prng.create ~seed:11 in
  List.iter
    (fun alloc ->
      let c = cfg ~faults ~resilience:requeue_policy alloc in
      let m = Sched.Simulator.run c w in
      let expected = Sched.Metrics.fingerprint m in
      Alcotest.(check bool)
        (alloc.Sched.Allocator.name ^ ": faults actually fired")
        true (m.fault_events > 0);
      (* The times that stress the fault overlay: strictly between a
         fail and its repair (the degraded machine must rebuild), at the
         fault instants themselves, and a few arbitrary points. *)
      let times =
        [
          (fail_at +. repair_at) /. 2.0;
          fail_at;
          repair_at;
          950.0 (* node 77 down, leaf 0 down *);
        ]
        @ List.init 3 (fun _ -> Sim.Prng.float_in prng ~lo:0.0 ~hi:m.makespan)
      in
      List.iter
        (fun t ->
          Alcotest.(check string)
            (Printf.sprintf "%s faulty t=%g" alloc.Sched.Allocator.name t)
            expected
            (fingerprint_via_checkpoint c w t))
        times)
    Sched.Allocator.all

let test_chained_checkpoints () =
  (* checkpoint → restore → run further → checkpoint again → restore →
     finish: restores compose. *)
  let w = Lazy.force workload in
  let faults = Lazy.force scripted_faults in
  let c = cfg ~faults ~resilience:requeue_policy Sched.Allocator.jigsaw in
  let expected = fingerprint_of c w in
  let fp =
    with_temp (fun p1 ->
        with_temp (fun p2 ->
            let sim = Sched.Simulator.start c w in
            Sched.Simulator.run_until sim 500.0;
            Sched.Checkpoint.write ~path:p1 sim;
            let sim =
              match Sched.Checkpoint.restore ~path:p1 () with
              | Ok s -> s
              | Error m -> Alcotest.failf "first restore: %s" m
            in
            Sched.Simulator.run_until sim 1600.0;
            Sched.Checkpoint.write ~path:p2 sim;
            match Sched.Checkpoint.restore ~path:p2 () with
            | Ok s ->
                let m, _ = Sched.Simulator.finish s in
                Sched.Metrics.fingerprint m
            | Error m -> Alcotest.failf "second restore: %s" m))
  in
  Alcotest.(check string) "chained restores" expected fp

let test_snapshot_file_identity () =
  (* save → load is the identity on snapshots (structural equality). *)
  let w = Lazy.force workload in
  let c =
    cfg
      ~faults:(Lazy.force scripted_faults)
      ~resilience:requeue_policy Sched.Allocator.(lcs ())
  in
  let sim = Sched.Simulator.start c w in
  Sched.Simulator.run_until sim 950.0;
  let s = Sched.Simulator.snapshot sim in
  with_temp (fun path ->
      Sched.Checkpoint.save ~path s;
      match Sched.Checkpoint.load ~path with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok s' ->
          if s <> s' then Alcotest.fail "snapshot changed across save/load")

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: corrupted checkpoint accepted" what
  | Error _ -> ()

let test_corruption_fails_loudly () =
  let w = Lazy.force workload in
  let c = cfg Sched.Allocator.jigsaw in
  let sim = Sched.Simulator.start c w in
  Sched.Simulator.run_until sim 700.0;
  with_temp (fun path ->
      Sched.Checkpoint.write ~path sim;
      let original = In_channel.with_open_bin path In_channel.input_all in
      let write s = Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc s)
      in
      (* Sanity: the pristine file loads. *)
      (match Sched.Checkpoint.load ~path with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "pristine checkpoint rejected: %s" m);
      (* Truncation: keep 40% of the bytes. *)
      write (String.sub original 0 (String.length original * 2 / 5));
      expect_error "truncated" (Sched.Checkpoint.load ~path);
      (* Trailer dropped: every record present, no integrity line. *)
      let no_trailer =
        let stop = String.rindex_from original (String.length original - 2) '\n' in
        String.sub original 0 (stop + 1)
      in
      write no_trailer;
      expect_error "no trailer" (Sched.Checkpoint.load ~path);
      (* One flipped byte in the middle of the body. *)
      let flipped = Bytes.of_string original in
      let mid = Bytes.length flipped / 2 in
      Bytes.set flipped mid
        (if Bytes.get flipped mid = '3' then '4' else '3');
      write (Bytes.to_string flipped);
      (match Sched.Checkpoint.load ~path with
      | Ok _ -> Alcotest.fail "bit-flipped checkpoint accepted"
      | Error m ->
          Alcotest.(check bool)
            "error names the integrity check" true
            (let has sub =
               let n = String.length sub and h = String.length m in
               let rec go i =
                 i + n <= h && (String.sub m i n = sub || go (i + 1))
               in
               go 0
             in
             has "integrity"));
      (* Not a checkpoint at all. *)
      write "{\"record\":\"something-else\",\"version\":1}\n";
      expect_error "foreign file" (Sched.Checkpoint.load ~path));
  expect_error "missing file"
    (Sched.Checkpoint.load ~path:"/nonexistent/jigsaw.ckpt")

(* ------------------------------------------------------------------ *)
(* Cell ids, metrics round-trip, sweep manifests                       *)
(* ------------------------------------------------------------------ *)

let small_cells () =
  let w1 = Trace.Workload.truncate (Lazy.force workload) 40 in
  let w2 =
    Trace.Synthetic.synth ~mean_size:8 ~n_jobs:40 ~seed:9 ~max_size:128
  in
  [|
    Sched.Sweep.cell ~radix Sched.Allocator.baseline w1;
    Sched.Sweep.cell ~radix Sched.Allocator.jigsaw w1;
    Sched.Sweep.cell ~profile:true ~radix Sched.Allocator.baseline w2;
    Sched.Sweep.cell ~faults:(Lazy.force scripted_faults)
      ~resilience:requeue_policy ~radix Sched.Allocator.jigsaw w2;
  |]

let test_cell_ids () =
  let cells = small_cells () in
  let ids = Array.map (fun (c : Sched.Sweep.cell) -> c.id) cells in
  let distinct = List.sort_uniq compare (Array.to_list ids) in
  Alcotest.(check int) "ids distinct" (Array.length cells)
    (List.length distinct);
  (* Stable across reconstruction, independent of the display label and
     of profiling. *)
  let c = cells.(3) in
  let again =
    Sched.Sweep.cell ~label:"something else" ~profile:true
      ~faults:(Lazy.force scripted_faults) ~resilience:requeue_policy ~radix
      Sched.Allocator.jigsaw c.workload
  in
  Alcotest.(check string) "id stable" c.id again.id;
  Alcotest.(check string) "id recomputable" c.id (Sched.Sweep.cell_id c);
  Alcotest.(check bool) "fault axis tagged" true
    (c.id <> cells.(1).Sched.Sweep.id)

let test_metrics_manifest_roundtrip () =
  let w = Trace.Workload.truncate (Lazy.force workload) 30 in
  let m = Sched.Simulator.run (cfg (Sched.Allocator.lcs ())) w in
  let series = Sched.Metrics.series_encode m in
  match Sched.Metrics.of_json ~series (Sched.Metrics.json_fields m) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok m' ->
      Alcotest.(check string) "fingerprint survives the round-trip"
        (Sched.Metrics.fingerprint m)
        (Sched.Metrics.fingerprint m')

let test_sweep_manifest_resume () =
  let cells = small_cells () in
  let baseline = Sched.Sweep.run ~jobs:1 cells in
  let fp (r : Sched.Sweep.result) = Sched.Metrics.fingerprint r.metrics in
  with_temp (fun manifest ->
      Sys.remove manifest;
      (* "Interrupted" sweep: only the first two cells completed. *)
      let partial =
        Sched.Sweep.run ~jobs:1 ~manifest (Array.sub cells 0 2)
      in
      Alcotest.(check bool) "fresh cells not marked restored" true
        (Array.for_all (fun (r : Sched.Sweep.result) -> not r.restored) partial);
      (* Resume over the full grid, in parallel: the two journaled cells
         come back from the file, the rest run. *)
      let resumed = Sched.Sweep.run ~jobs:2 ~manifest cells in
      Alcotest.(check (list bool))
        "restored flags" [ true; true; false; false ]
        (Array.to_list
           (Array.map (fun (r : Sched.Sweep.result) -> r.restored) resumed));
      Array.iteri
        (fun i r ->
          Alcotest.(check string)
            (Printf.sprintf "cell %d fingerprint" i)
            (fp baseline.(i)) (fp r))
        resumed;
      Alcotest.(check bool) "restored profile registry survives" true
        (resumed.(2).prof <> None);
      (* A third run restores everything... *)
      let all_restored = Sched.Sweep.run ~jobs:1 ~manifest cells in
      Alcotest.(check bool) "all restored" true
        (Array.for_all (fun (r : Sched.Sweep.result) -> r.restored) all_restored);
      (* ...and the journal verifies clean. *)
      (match Sched.Sweep.load_manifest manifest with
      | Error m -> Alcotest.failf "load_manifest: %s" m
      | Ok m ->
          Alcotest.(check int) "rows" (Array.length cells)
            (List.length m.rows);
          Alcotest.(check int) "no corrupt rows" 0 m.corrupt);
      (* A half-written trailing row (killed mid-append) is skipped and
         its cell re-run, not trusted. *)
      let content = In_channel.with_open_bin manifest In_channel.input_all in
      let clipped = String.sub content 0 (String.length content - 25) in
      Out_channel.with_open_bin manifest (fun oc ->
          Out_channel.output_string oc clipped);
      (match Sched.Sweep.load_manifest manifest with
      | Error m -> Alcotest.failf "load_manifest (clipped): %s" m
      | Ok m ->
          Alcotest.(check int) "clipped row rejected" 1 m.corrupt;
          Alcotest.(check int) "other rows kept"
            (Array.length cells - 1)
            (List.length m.rows));
      let after = Sched.Sweep.run ~jobs:1 ~manifest cells in
      Alcotest.(check int) "clipped cell re-ran" 1
        (Array.length
           (Array.of_list
              (List.filter
                 (fun (r : Sched.Sweep.result) -> not r.restored)
                 (Array.to_list after))));
      Array.iteri
        (fun i r ->
          Alcotest.(check string)
            (Printf.sprintf "cell %d fingerprint after repair" i)
            (fp baseline.(i)) (fp r))
        after)

let test_sweep_manifest_rejects_foreign_file () =
  with_temp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "this is not a manifest\n");
      (match Sched.Sweep.load_manifest path with
      | Ok _ -> Alcotest.fail "foreign file accepted as manifest"
      | Error _ -> ());
      match Sched.Sweep.run ~jobs:1 ~manifest:path (small_cells ()) with
      | _ -> Alcotest.fail "run accepted a foreign manifest"
      | exception Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "healthy: checkpoint at random times" `Quick
      test_roundtrip_healthy;
    Alcotest.test_case "faulty: checkpoint incl. between fail and repair"
      `Quick test_roundtrip_faulty;
    Alcotest.test_case "chained checkpoints compose" `Quick
      test_chained_checkpoints;
    Alcotest.test_case "save/load is the identity" `Quick
      test_snapshot_file_identity;
    Alcotest.test_case "corruption fails loudly" `Quick
      test_corruption_fails_loudly;
    Alcotest.test_case "cell ids stable and distinct" `Quick test_cell_ids;
    Alcotest.test_case "metrics manifest round-trip" `Quick
      test_metrics_manifest_roundtrip;
    Alcotest.test_case "sweep manifest resume" `Quick
      test_sweep_manifest_resume;
    Alcotest.test_case "manifest rejects foreign files" `Quick
      test_sweep_manifest_rejects_foreign_file;
  ]
