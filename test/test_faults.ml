(* Fault-injection layer: State fail/repair semantics, the Trace.Faults
   component model, and the interleaving property tests of the
   robustness milestone. *)

open Fattree

let topo8 () = Topology.of_radix 8

(* ------------------------------------------------------------------ *)
(* State-level fail/repair                                             *)
(* ------------------------------------------------------------------ *)

let test_fail_free_node () =
  let st = State.create (topo8 ()) in
  let n = Topology.num_nodes (State.topo st) in
  State.fail_node st 3;
  Alcotest.(check bool) "not free" false (State.node_free st 3);
  Alcotest.(check bool) "failed" true (State.node_failed st 3);
  Alcotest.(check int) "total free" (n - 1) (State.total_free_nodes st);
  Alcotest.(check int) "failed count" 1 (State.failed_node_count st);
  Alcotest.(check int) "healthy" (n - 1) (State.healthy_node_count st);
  Alcotest.(check int) "slot mask lost bit"
    ((1 lsl Topology.m1 (State.topo st)) - 1 - (1 lsl 3))
    (State.free_slot_mask st 0);
  (* Generations: failure counts as a claim, repair as a release. *)
  Alcotest.(check int) "claim side" 1 (State.claim_generation st);
  Alcotest.(check int) "release side" 0 (State.release_generation st);
  State.repair_node st 3;
  Alcotest.(check bool) "free again" true (State.node_free st 3);
  Alcotest.(check int) "all free" n (State.total_free_nodes st);
  Alcotest.(check int) "repair bumped release side" 1
    (State.release_generation st);
  (* Repairing a healthy node is a caller bug. *)
  Alcotest.check_raises "repair healthy"
    (Invalid_argument "State.repair_node: node 3 is not failed (free)")
    (fun () -> State.repair_node st 3)

let test_fail_claimed_node () =
  let st = State.create (topo8 ()) in
  let n = Topology.num_nodes (State.topo st) in
  let a = Alloc.nodes_only ~job:1 ~size:2 [| 4; 5 |] in
  State.claim_exn st a;
  State.fail_node st 4;
  Alcotest.(check bool) "still claimed" true (State.node_claimed st 4);
  Alcotest.(check int) "busy unchanged" 2 (State.busy_node_count st);
  Alcotest.(check int) "free excludes claimed and failed" (n - 2)
    (State.total_free_nodes st);
  (* Release with a failed node: healthy nodes return, the failed one
     stays withdrawn until repaired. *)
  State.release st a;
  Alcotest.(check bool) "healthy node returned" true (State.node_free st 5);
  Alcotest.(check bool) "failed node withheld" false (State.node_free st 4);
  Alcotest.(check int) "one node missing" (n - 1) (State.total_free_nodes st);
  State.repair_node st 4;
  Alcotest.(check int) "machine whole again" n (State.total_free_nodes st)

let test_repair_before_release () =
  (* The overlays unwind in either order: repair while still claimed
     keeps the node busy; the later release frees it. *)
  let st = State.create (topo8 ()) in
  let n = Topology.num_nodes (State.topo st) in
  let a = Alloc.nodes_only ~job:1 ~size:1 [| 7 |] in
  State.claim_exn st a;
  State.fail_node st 7;
  State.repair_node st 7;
  Alcotest.(check bool) "still claimed, not free" false (State.node_free st 7);
  Alcotest.(check int) "busy" 1 (State.busy_node_count st);
  State.release st a;
  Alcotest.(check bool) "free after release" true (State.node_free st 7);
  Alcotest.(check int) "all free" n (State.total_free_nodes st)

let test_overlapping_faults_refcount () =
  (* A node failed both individually and via its whole leaf switch comes
     back only when both faults are repaired. *)
  let st = State.create (topo8 ()) in
  State.fail_node st 2;
  Trace.Faults.apply st (Trace.Faults.Leaf_switch 0);
  Trace.Faults.revert st (Trace.Faults.Leaf_switch 0);
  Alcotest.(check bool) "still failed individually" true (State.node_failed st 2);
  Alcotest.(check bool) "leaf sibling recovered" true (State.node_free st 1);
  State.repair_node st 2;
  Alcotest.(check bool) "recovered" true (State.node_free st 2)

let test_cable_failure_masks () =
  let st = State.create (topo8 ()) in
  let m1 = Topology.m1 (State.topo st) in
  let full = (1 lsl m1) - 1 in
  State.fail_leaf_cable st 0;
  Alcotest.(check (float 0.0)) "no usable capacity" 0.0
    (State.leaf_up_remaining st ~cable:0);
  Alcotest.(check int) "full-capacity mask lost bit 0" (full - 1)
    (State.leaf_up_mask st ~leaf:0 ~demand:1.0);
  Alcotest.(check int) "fractional mask lost bit 0 too" (full - 1)
    (State.leaf_up_mask st ~leaf:0 ~demand:0.25);
  Alcotest.(check bool) "leaf no longer fully free" false
    (State.leaf_fully_free st 0);
  Alcotest.(check int) "pod count dropped"
    (Topology.m2 (State.topo st) - 1)
    (State.pod_fully_free_leaves st ~pod:0);
  State.repair_leaf_cable st 0;
  Alcotest.(check int) "mask restored" full
    (State.leaf_up_mask st ~leaf:0 ~demand:1.0);
  Alcotest.(check bool) "fully free again" true (State.leaf_fully_free st 0);
  State.fail_l2_cable st 5;
  Alcotest.(check (float 0.0)) "l2 capacity gone" 0.0
    (State.l2_up_remaining st ~cable:5);
  State.repair_l2_cable st 5;
  Alcotest.(check (float 0.0)) "l2 capacity back" 1.0
    (State.l2_up_remaining st ~cable:5)

let test_claim_rejects_failed_resources () =
  let st = State.create (topo8 ()) in
  State.fail_node st 1;
  (match State.claim st (Alloc.nodes_only ~job:1 ~size:2 [| 0; 1 |]) with
  | Error m ->
      Alcotest.(check string) "message names node and state"
        "node 1 is not free (failed)" m
  | Ok () -> Alcotest.fail "claim of a failed node must be rejected");
  State.repair_node st 1;
  let a =
    {
      Alloc.job = 2;
      size = 1;
      nodes = [| 2 |];
      leaf_cables = [| 3 |];
      l2_cables = [||];
      bw = 1.0;
    }
  in
  State.fail_leaf_cable st 3;
  (match State.claim st a with
  | Error m ->
      Alcotest.(check string) "message names cable and state"
        "leaf cable 3 lacks capacity for demand 1 (failed (1.000 claimed-free))"
        m
  | Ok () -> Alcotest.fail "claim over a failed cable must be rejected");
  (* Claimed-node error message carries the state too. *)
  State.claim_exn st (Alloc.nodes_only ~job:3 ~size:1 [| 0 |]);
  (match State.claim st (Alloc.nodes_only ~job:4 ~size:1 [| 0 |]) with
  | Error m ->
      Alcotest.(check string) "busy message" "node 0 is not free (claimed)" m
  | Ok () -> Alcotest.fail "double claim must be rejected");
  Alcotest.check_raises "release of unclaimed node names its state"
    (Invalid_argument "State.release: node 9 is not claimed (free)")
    (fun () -> State.release st (Alloc.nodes_only ~job:5 ~size:1 [| 9 |]))

(* ------------------------------------------------------------------ *)
(* Trace.Faults component model                                        *)
(* ------------------------------------------------------------------ *)

let test_target_resources () =
  let topo = topo8 () in
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  let sizes target =
    let n, lc, l2c = Trace.Faults.resources topo target in
    (Array.length n, Array.length lc, Array.length l2c)
  in
  Alcotest.(check (triple int int int)) "node" (1, 0, 0) (sizes (Node 0));
  Alcotest.(check (triple int int int)) "leaf cable" (0, 1, 0)
    (sizes (Leaf_cable 0));
  Alcotest.(check (triple int int int)) "l2 cable" (0, 0, 1)
    (sizes (L2_cable 0));
  Alcotest.(check (triple int int int)) "leaf switch" (m1, m1, 0)
    (sizes (Leaf_switch 2));
  Alcotest.(check (triple int int int)) "l2 switch" (0, m2, m2)
    (sizes (L2_switch 3));
  Alcotest.(check (triple int int int)) "spine" (0, 0, Topology.pods topo)
    (sizes (Spine 1));
  Alcotest.check_raises "bounds checked"
    (Invalid_argument "Faults.resources: node 4096 out of range") (fun () ->
      ignore (Trace.Faults.resources topo (Node 4096)))

let test_switch_failure_is_atomic_composite () =
  (* Failing an L2 switch cuts one uplink of every leaf in its pod and
     one cable of every spine in its group — and a repair undoes exactly
     that. *)
  let st = State.create (topo8 ()) in
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  let full_l2 = (1 lsl m2) - 1 in
  Trace.Faults.apply st (Trace.Faults.L2_switch 0);
  for leaf = 0 to m2 - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "pod-0 leaf %d lost uplink 0" leaf)
      true
      (State.leaf_up_mask st ~leaf ~demand:1.0 land 1 = 0)
  done;
  Alcotest.(check int) "spine-side cables cut" 0
    (State.l2_up_mask st ~l2:0 ~demand:1.0);
  Alcotest.(check int) "other pods untouched" full_l2
    (State.l2_up_mask st ~l2:(Topology.l2_per_pod topo) ~demand:1.0);
  Trace.Faults.revert st (Trace.Faults.L2_switch 0);
  Alcotest.(check int) "restored" full_l2 (State.l2_up_mask st ~l2:0 ~demand:1.0)

let test_generate_deterministic () =
  let topo = topo8 () in
  let gen seed =
    Trace.Faults.generate ~seed ~mtbf:5_000.0 ~mttr:500.0 ~horizon:20_000.0 topo
  in
  let a = Trace.Faults.events (gen 7) and b = Trace.Faults.events (gen 7) in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  Alcotest.(check bool) "different seed, different trace" true
    (a <> Trace.Faults.events (gen 8));
  Alcotest.(check bool) "non-trivial" true (Array.length a > 0);
  Array.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool) "sorted by time" true
          (a.(i - 1).Trace.Faults.time <= e.Trace.Faults.time))
    a;
  (* Every fail has a matching later repair of the same target: applying
     the whole trace to a state must leave it fully healthy. *)
  let st = State.create topo in
  Array.iter
    (fun (e : Trace.Faults.event) ->
      match e.kind with
      | Fail -> Trace.Faults.apply st e.target
      | Repair -> Trace.Faults.revert st e.target)
    a;
  Alcotest.(check int) "fully repaired" 0 (State.failed_node_count st);
  Alcotest.(check int) "all nodes back" (Topology.num_nodes topo)
    (State.total_free_nodes st)

let test_scripted_file_roundtrip () =
  let path = Filename.temp_file "faults" ".txt" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "# a comment\n\
         10.5 fail node 3\n\
         \n\
         12 fail leaf 1   # trailing comment\n\
         20.25 repair node 3\n\
         30 repair leaf 1\n");
  (match Trace.Faults.load path with
  | Error m -> Alcotest.fail m
  | Ok t ->
      let evs = Trace.Faults.events t in
      Alcotest.(check int) "four events" 4 (Array.length evs);
      Alcotest.(check bool) "first is node fail" true
        (evs.(0) = { Trace.Faults.time = 10.5; kind = Fail; target = Node 3 });
      Alcotest.(check bool) "second expands a leaf switch" true
        (evs.(1).target = Leaf_switch 1));
  Out_channel.with_open_text path (fun oc -> output_string oc "5 melt node 1\n");
  (match Trace.Faults.load path with
  | Error m ->
      Alcotest.(check bool) "parse error is located" true
        (String.length m > 0 && String.sub m 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "bad verb must not parse");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Property: random claim/release/fail/repair interleavings             *)
(* ------------------------------------------------------------------ *)

let random_target prng topo =
  let pick bound = Sim.Prng.int prng ~bound in
  match pick 6 with
  | 0 -> Trace.Faults.Node (pick (Topology.num_nodes topo))
  | 1 -> Trace.Faults.Leaf_cable (pick (Topology.num_leaf_l2_cables topo))
  | 2 -> Trace.Faults.L2_cable (pick (Topology.num_l2_spine_cables topo))
  | 3 -> Trace.Faults.Leaf_switch (pick (Topology.num_leaves topo))
  | 4 -> Trace.Faults.L2_switch (pick (Topology.num_l2 topo))
  | _ -> Trace.Faults.Spine (pick (Topology.num_spines topo))

(* Drive a state through a random interleaving of the four mutations,
   mirroring every claim/release (but no fault) onto a shadow state.
   Checked invariants:
   - incremental summaries stay bit-identical to a from-scratch
     recomputation (via the scratch helpers of Test_incremental);
   - allocator probes never propose failed resources (validated claims
     would abort);
   - after repairing every outstanding fault, the state is
     resource-identical to the never-failed shadow. *)
let run_interleaving ~seed ~steps =
  let topo = topo8 () in
  let st = State.create topo and shadow = State.create topo in
  let prng = Sim.Prng.create ~seed in
  let live = ref [] and faults = ref [] in
  for id = 1 to steps do
    (match Sim.Prng.int prng ~bound:10 with
    | (0 | 1) when !live <> [] ->
        let k = Sim.Prng.int_in prng ~lo:0 ~hi:(List.length !live - 1) in
        let a = List.nth !live k in
        State.release st a;
        State.release shadow a;
        live := List.filteri (fun i _ -> i <> k) !live
    | 2 | 3 ->
        let t = random_target prng topo in
        Trace.Faults.apply st t;
        faults := t :: !faults
    | 4 when !faults <> [] ->
        let k = Sim.Prng.int_in prng ~lo:0 ~hi:(List.length !faults - 1) in
        Trace.Faults.revert st (List.nth !faults k);
        faults := List.filteri (fun i _ -> i <> k) !faults
    | _ -> (
        let size = Sim.Prng.int_in prng ~lo:1 ~hi:24 in
        let bw =
          match Sim.Prng.int prng ~bound:3 with
          | 0 -> 1.0
          | 1 -> 0.5
          | _ -> 0.25
        in
        let found =
          if bw = 1.0 then Jigsaw_core.Jigsaw.get_allocation st ~job:id ~size
          else
            Jigsaw_core.Least_constrained.get_allocation ~demand:bw st ~job:id
              ~size
        in
        match found with
        | Some p ->
            let a = Jigsaw_core.Partition.to_alloc topo p ~bw in
            (* Validated claims: an allocator touching a failed resource
               aborts right here. *)
            State.claim_exn st a;
            State.claim_exn shadow a;
            live := a :: !live
        | None -> ()));
    if id mod 10 = 0 then Test_incremental.check_summaries_consistent st
  done;
  (* Repair everything still broken; st must now equal the shadow. *)
  List.iter (Trace.Faults.revert st) !faults;
  Test_incremental.check_summaries_consistent st;
  Alcotest.(check int) "no failed nodes left" 0 (State.failed_node_count st);
  for n = 0 to Topology.num_nodes topo - 1 do
    Alcotest.(check bool) (Printf.sprintf "node %d free" n)
      (State.node_free shadow n) (State.node_free st n);
    Alcotest.(check bool) (Printf.sprintf "node %d claimed" n)
      (State.node_claimed shadow n) (State.node_claimed st n)
  done;
  for c = 0 to Topology.num_leaf_l2_cables topo - 1 do
    Alcotest.(check (float 0.0)) (Printf.sprintf "leaf cable %d" c)
      (State.leaf_up_remaining shadow ~cable:c)
      (State.leaf_up_remaining st ~cable:c)
  done;
  for c = 0 to Topology.num_l2_spine_cables topo - 1 do
    Alcotest.(check (float 0.0)) (Printf.sprintf "l2 cable %d" c)
      (State.l2_up_remaining shadow ~cable:c)
      (State.l2_up_remaining st ~cable:c)
  done;
  for leaf = 0 to Topology.num_leaves topo - 1 do
    Alcotest.(check int) (Printf.sprintf "slot mask %d" leaf)
      (State.free_slot_mask shadow leaf) (State.free_slot_mask st leaf);
    Alcotest.(check int) (Printf.sprintf "leaf mask %d" leaf)
      (State.leaf_up_mask shadow ~leaf ~demand:1.0)
      (State.leaf_up_mask st ~leaf ~demand:1.0)
  done;
  for pod = 0 to Topology.pods topo - 1 do
    Alcotest.(check int) (Printf.sprintf "pod %d" pod)
      (State.pod_fully_free_leaves shadow ~pod)
      (State.pod_fully_free_leaves st ~pod)
  done;
  Alcotest.(check int) "total free" (State.total_free_nodes shadow)
    (State.total_free_nodes st);
  Alcotest.(check int) "busy" (State.busy_node_count shadow)
    (State.busy_node_count st)

let test_interleaving_property () =
  List.iter (fun seed -> run_interleaving ~seed ~steps:120) [ 3; 77; 2024 ]

let suite =
  [
    Alcotest.test_case "fail/repair a free node" `Quick test_fail_free_node;
    Alcotest.test_case "fail a claimed node, then release" `Quick
      test_fail_claimed_node;
    Alcotest.test_case "repair before release" `Quick test_repair_before_release;
    Alcotest.test_case "overlapping faults are ref-counted" `Quick
      test_overlapping_faults_refcount;
    Alcotest.test_case "cable failures update the masks" `Quick
      test_cable_failure_masks;
    Alcotest.test_case "claims reject failed resources by name" `Quick
      test_claim_rejects_failed_resources;
    Alcotest.test_case "target blast radii" `Quick test_target_resources;
    Alcotest.test_case "switch failure is a composite of its parts" `Quick
      test_switch_failure_is_atomic_composite;
    Alcotest.test_case "MTBF generation is deterministic and paired" `Quick
      test_generate_deterministic;
    Alcotest.test_case "scripted fault files round-trip" `Quick
      test_scripted_file_roundtrip;
    Alcotest.test_case "claim/release/fail/repair interleavings" `Quick
      test_interleaving_property;
  ]
