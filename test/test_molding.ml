(* The sized-request allocator API and the molding paths built on it.

   Three layers are held to their contracts here:

   - the allocator laws: [try_alloc] is always [probe] with both
     failure verdicts collapsed, and [probe_sized] degenerates to
     [probe] on rigid jobs — checked as qcheck properties over random
     mid-run-shaped states for every scheme (the five paper schemes
     plus LC-exclusive), not just the derived implementations;
   - shrink recovery: inert on rigid traces (bit-identical
     fingerprints with the policy on or off), and on a single-victim
     fault it beats kill+resubmit-at-the-shrunk-size analytically
     (zero lost work, strictly earlier completion);
   - checkpoint round-trips with moldable jobs and network telemetry
     on, for every scheme: checkpoint → restore → finish must equal
     the uninterrupted run's fingerprint bit for bit. *)

open Fattree

let radix = 8 (* 128 nodes *)
let topo = Topology.of_radix radix

let schemes () = Sched.Allocator.all @ [ Sched.Allocator.lc_exclusive () ]

(* ------------------------------------------------------------------ *)
(* Allocator laws                                                      *)
(* ------------------------------------------------------------------ *)

(* A state shaped like the simulator's mid-run states: jobs the scheme
   itself placed, plus a few failed nodes.  [seed] drives everything. *)
let occupied_state (a : Sched.Allocator.t) ~seed =
  let st = State.create topo in
  let prng = Sim.Prng.create ~seed in
  let placed = Sim.Prng.int_in prng ~lo:0 ~hi:10 in
  for job = 0 to placed - 1 do
    let size = Sim.Prng.int_in prng ~lo:1 ~hi:48 in
    let bw_class = Sim.Prng.choose prng [| 0.125; 0.25; 0.375; 0.5 |] in
    let j = Trace.Job.v ~id:job ~size ~bw_class ~runtime:1.0 () in
    match a.try_alloc st j with
    | Some alloc -> State.claim_exn st alloc
    | None -> ()
  done;
  let failures = Sim.Prng.int_in prng ~lo:0 ~hi:3 in
  for _ = 1 to failures do
    let n = Sim.Prng.int_in prng ~lo:0 ~hi:(Topology.num_nodes topo - 1) in
    if State.node_free st n && not (State.node_failed st n) then
      State.fail_node st n
  done;
  (st, prng)

let probe_job prng ~moldable =
  let size = Sim.Prng.int_in prng ~lo:1 ~hi:64 in
  let bw_class = Sim.Prng.choose prng [| 0.125; 0.25; 0.375; 0.5 |] in
  let spec =
    if moldable then
      let min_size = max 1 (Sim.Prng.int_in prng ~lo:(size / 4) ~hi:size) in
      let max_size = Sim.Prng.int_in prng ~lo:size ~hi:(2 * size) in
      Some (Trace.Job.Moldable { min_size; max_size; pref = size })
    else None
  in
  Trace.Job.v ~id:9999 ~size ~bw_class ?spec ~runtime:1.0 ()

let prop_try_alloc_collapses_probe =
  QCheck2.Test.make
    ~name:"try_alloc = probe with failure verdicts collapsed (all schemes)"
    ~count:80
    QCheck2.Gen.(pair (int_range 0 100000) bool)
    (fun (seed, moldable) ->
      List.for_all
        (fun (a : Sched.Allocator.t) ->
          let st, prng = occupied_state a ~seed in
          let j = probe_job prng ~moldable in
          let collapsed =
            match a.probe st j with
            | Sched.Allocator.Alloc x -> Some x
            | Sched.Allocator.No_fit | Sched.Allocator.Gave_up -> None
          in
          a.try_alloc st j = collapsed)
        (schemes ()))

let prop_probe_sized_rigid_is_probe =
  QCheck2.Test.make
    ~name:"probe_sized on rigid jobs = probe (all schemes)" ~count:80
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      List.for_all
        (fun (a : Sched.Allocator.t) ->
          let st, prng = occupied_state a ~seed in
          let j = probe_job prng ~moldable:false in
          match (a.probe_sized st j, a.probe st j) with
          | Sized { granted; alloc }, Sched.Allocator.Alloc x ->
              granted = j.size && alloc = x
          | Sized_no_fit, Sched.Allocator.No_fit -> true
          | Sized_gave_up, Sched.Allocator.Gave_up -> true
          | _ -> false)
        (schemes ()))

let prop_probe_sized_moldable_grants_in_range =
  QCheck2.Test.make
    ~name:"probe_sized grants a claimable size in [min, pref] (all schemes)"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      List.for_all
        (fun (a : Sched.Allocator.t) ->
          let st, prng = occupied_state a ~seed in
          let j = probe_job prng ~moldable:true in
          match a.probe_sized st j with
          | Sized { granted; alloc } ->
              granted >= Trace.Job.min_size j
              && granted <= j.size
              && alloc.Alloc.size = granted
              && Result.is_ok (State.claim (State.clone st) alloc)
          | Sized_no_fit ->
              (* Definitive only: the minimum size must itself be a
                 definitive no-fit, which is what the simulator's memo
                 relies on. *)
              a.probe st (Trace.Job.at_size j (Trace.Job.min_size j))
              = Sched.Allocator.No_fit
          | Sized_gave_up -> true)
        (schemes ()))

(* ------------------------------------------------------------------ *)
(* Shrink recovery                                                     *)
(* ------------------------------------------------------------------ *)

let fev time kind target = { Trace.Faults.time; kind; target }

let policy ?(retries = 2) ?(resubmit_delay = 5.0) ~shrink () =
  {
    Sched.Simulator.requeue = true;
    resubmit_delay;
    max_retries = retries;
    charge_lost_work = true;
    shrink;
  }

let test_shrink_inert_on_rigid () =
  (* With every job rigid, the shrink arm can never fire: fingerprints
     with the policy on and off are bit-identical, for every scheme. *)
  let w = Trace.Synthetic.synth ~mean_size:16 ~n_jobs:60 ~seed:42 ~max_size:128 in
  let faults =
    Trace.Faults.scripted
      [
        fev 400.0 Trace.Faults.Fail (Trace.Faults.Leaf_switch 0);
        fev 1400.0 Trace.Faults.Repair (Trace.Faults.Leaf_switch 0);
        fev 900.0 Trace.Faults.Fail (Trace.Faults.Node 77);
        fev 2100.0 Trace.Faults.Repair (Trace.Faults.Node 77);
      ]
  in
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      let fp shrink =
        Sched.Metrics.fingerprint
          (Sched.Simulator.run
             (Sched.Simulator.Config.make ~faults
                ~resilience:(policy ~shrink ()) ~radix alloc)
             w)
      in
      Alcotest.(check string)
        (alloc.name ^ ": shrink invisible on rigid traces")
        (fp false) (fp true))
    Sched.Allocator.all

let test_shrink_single_victim_beats_resubmit () =
  (* A whole-machine moldable job, one node fault at t=10.  Shrink keeps
     the 127 survivors: zero lost work, completion at
     10 + 90 * 128/127 (the remaining work recompressed).  The kill
     policy restarts from scratch at the shrunk size (127 is the
     largest feasible grant with the node down), finishing later and
     charging the 10 x 128 node-seconds the fault destroyed. *)
  let size = 128 in
  let job =
    Trace.Job.v ~id:1 ~size
      ~spec:(Trace.Job.Moldable { min_size = 64; max_size = size; pref = size })
      ~runtime:100.0 ()
  in
  let w =
    Trace.Workload.create ~name:"shrink-test" ~system_nodes:size [| job |]
  in
  let faults =
    Trace.Faults.scripted [ fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5) ]
  in
  let run ~shrink =
    Sched.Simulator.run_detailed
      (Sched.Simulator.Config.make ~faults
         ~resilience:(policy ~resubmit_delay:5.0 ~shrink ()) ~radix
         Sched.Allocator.baseline)
      w
  in
  let m_shrink, per_shrink = run ~shrink:true in
  let m_kill, per_kill = run ~shrink:false in
  Alcotest.(check int) "one shrink recovery" 1 m_shrink.shrunk;
  Alcotest.(check int) "no kill under shrink" 0 m_shrink.interrupted;
  Alcotest.(check (float 1e-9)) "zero lost work" 0.0 m_shrink.lost_node_time;
  Alcotest.(check int) "kill policy shrinks nothing" 0 m_kill.shrunk;
  Alcotest.(check (float 1e-9)) "kill charges the destroyed work"
    (10.0 *. float_of_int size)
    m_kill.lost_node_time;
  match (per_shrink, per_kill) with
  | [ rs ], [ rk ] ->
      Alcotest.(check (float 1e-9)) "shrunk job recompresses remaining work"
        (10.0 +. (90.0 *. 128.0 /. 127.0))
        rs.end_time;
      Alcotest.(check (float 1e-9)) "resubmission reruns from scratch at 127"
        (15.0 +. (100.0 *. 128.0 /. 127.0))
        rk.end_time;
      Alcotest.(check bool) "shrink finishes strictly earlier" true
        (rs.end_time < rk.end_time)
  | a, b ->
      Alcotest.failf "expected 1 record each, got %d and %d" (List.length a)
        (List.length b)

let test_shrink_below_min_falls_back_to_kill () =
  (* The fault takes the job below its min_size: shrink cannot help and
     the ordinary kill/requeue path must run instead. *)
  let size = 128 in
  let job =
    Trace.Job.v ~id:1 ~size
      ~spec:
        (Trace.Job.Moldable { min_size = size; max_size = size; pref = size })
      ~runtime:100.0 ()
  in
  let w =
    Trace.Workload.create ~name:"shrink-test" ~system_nodes:size [| job |]
  in
  let faults =
    Trace.Faults.scripted
      [
        fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5);
        fev 12.0 Trace.Faults.Repair (Trace.Faults.Node 5);
      ]
  in
  let m, _ =
    Sched.Simulator.run_detailed
      (Sched.Simulator.Config.make ~faults
         ~resilience:(policy ~resubmit_delay:5.0 ~shrink:true ()) ~radix
         Sched.Allocator.baseline)
      w
  in
  Alcotest.(check int) "no shrink below min" 0 m.shrunk;
  Alcotest.(check int) "killed instead" 1 m.interrupted;
  Alcotest.(check int) "requeued" 1 m.requeued;
  Alcotest.(check int) "finished on the rerun" 1 m.num_jobs

(* ------------------------------------------------------------------ *)
(* Online resize                                                       *)
(* ------------------------------------------------------------------ *)

let test_online_resize () =
  (* A full machine: the moldable job (32) and a rigid neighbor (96)
     saturate the 128 nodes, and a third rigid job (16) waits.  The
     API shrink to 16 frees exactly the nodes the waiter needs, so the
     pass it requests starts the waiter — and with the machine full
     again the grow pass can never undo the shrink. *)
  let moldable =
    Trace.Job.v ~id:1 ~size:32
      ~spec:(Trace.Job.Moldable { min_size = 8; max_size = 64; pref = 32 })
      ~runtime:100.0 ()
  in
  let neighbor = Trace.Job.v ~id:2 ~size:96 ~runtime:500.0 () in
  let waiter = Trace.Job.v ~id:3 ~size:16 ~runtime:500.0 () in
  let w =
    Trace.Workload.create ~name:"resize-test" ~system_nodes:128
      [| moldable; neighbor; waiter |]
  in
  let cfg = Sched.Simulator.Config.make ~radix Sched.Allocator.baseline in
  let sim = Sched.Simulator.start cfg w in
  Sched.Simulator.run_until sim 1.0;
  (match Sched.Simulator.resize sim 1 ~size:16 with
  | Sched.Simulator.Resized_to n -> Alcotest.(check int) "shrank to 16" 16 n
  | Sched.Simulator.Resize_refused m -> Alcotest.failf "shrink refused: %s" m);
  (match Sched.Simulator.resize sim 2 ~size:4 with
  | Sched.Simulator.Resize_refused _ -> ()
  | Sched.Simulator.Resized_to _ -> Alcotest.fail "rigid job resized");
  (match Sched.Simulator.resize sim 1 ~size:512 with
  | Sched.Simulator.Resize_refused _ -> ()
  | Sched.Simulator.Resized_to _ -> Alcotest.fail "resize beyond max accepted");
  (match Sched.Simulator.resize sim 99 ~size:4 with
  | Sched.Simulator.Resize_refused _ -> ()
  | Sched.Simulator.Resized_to _ -> Alcotest.fail "unknown job resized");
  let m, per_job = Sched.Simulator.finish sim in
  Alcotest.(check int) "all jobs finished" 3 m.num_jobs;
  (* [shrunk] counts fault recoveries only; an explicit API resize is an
     ordinary Resize event, not a recovery. *)
  Alcotest.(check int) "no fault recovery recorded" 0 m.shrunk;
  let record id =
    match
      List.find_opt
        (fun (r : Sched.Metrics.per_job) -> r.job.Trace.Job.id = id)
        per_job
    with
    | Some r -> r
    | None -> Alcotest.failf "job %d has no record" id
  in
  (* 1 s at 32 nodes, the remaining 99 s recompressed onto 16. *)
  Alcotest.(check (float 1e-9)) "work-conserving end time"
    (1.0 +. (99.0 *. 32.0 /. 16.0))
    (record 1).end_time;
  Alcotest.(check (float 1e-9)) "waiter starts on the freed nodes" 1.0
    (record 3).start_time

(* ------------------------------------------------------------------ *)
(* Moldable checkpoint round-trips (telemetry on)                      *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "jigsaw-mold" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_moldable_checkpoint_roundtrip () =
  let w =
    Trace.Workload.moldable
      (Trace.Synthetic.synth ~mean_size:16 ~n_jobs:50 ~seed:42 ~max_size:128)
  in
  let faults =
    Trace.Faults.scripted
      [
        fev 400.0 Trace.Faults.Fail (Trace.Faults.Node 13);
        fev 2000.0 Trace.Faults.Repair (Trace.Faults.Node 13);
      ]
  in
  let net = (Routing.Telemetry.Jigsaw, Routing.Telemetry.Alltoall) in
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      let cfg =
        Sched.Simulator.Config.make ~faults
          ~resilience:(policy ~shrink:true ()) ~net ~radix alloc
      in
      let m = Sched.Simulator.run cfg w in
      let expected = Sched.Metrics.fingerprint m in
      List.iter
        (fun t ->
          let fp =
            with_temp (fun path ->
                let sim = Sched.Simulator.start cfg w in
                Sched.Simulator.run_until sim t;
                Sched.Checkpoint.write ~path sim;
                match Sched.Checkpoint.restore ~net ~path () with
                | Error m -> Alcotest.failf "restore at t=%g: %s" t m
                | Ok sim' ->
                    let m, _ = Sched.Simulator.finish sim' in
                    Sched.Metrics.fingerprint m)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s moldable t=%g" alloc.name t)
            expected fp)
        [ 0.0; 450.0; m.makespan /. 2.0 ])
    Sched.Allocator.all

let suite =
  [
    QCheck_alcotest.to_alcotest prop_try_alloc_collapses_probe;
    QCheck_alcotest.to_alcotest prop_probe_sized_rigid_is_probe;
    QCheck_alcotest.to_alcotest prop_probe_sized_moldable_grants_in_range;
    Alcotest.test_case "shrink policy inert on rigid traces" `Quick
      test_shrink_inert_on_rigid;
    Alcotest.test_case "shrink beats kill+resubmit on a single victim" `Quick
      test_shrink_single_victim_beats_resubmit;
    Alcotest.test_case "shrink below min falls back to kill" `Quick
      test_shrink_below_min_falls_back_to_kill;
    Alcotest.test_case "online resize: verdicts and work conservation" `Quick
      test_online_resize;
    Alcotest.test_case "moldable checkpoint round-trip (telemetry on)" `Quick
      test_moldable_checkpoint_roundtrip;
  ]
