(* Simulator-level failure resilience: fault events killing running
   jobs, the requeue/abandon policy, degraded-capacity metrics, and the
   no-fit memo across repair events (the memo must treat a repair
   exactly like a release). *)

let radix = 8 (* 128 nodes *)
let nodes = 128

let fev time kind target = { Trace.Faults.time; kind; target }

let config ?(alloc = Sched.Allocator.baseline) ?(faults = Trace.Faults.none)
    ?(resilience = Sched.Simulator.no_resilience) () =
  Sched.Simulator.Config.make ~faults ~resilience ~radix alloc

let workload jobs =
  Trace.Workload.create ~name:"fault-test" ~system_nodes:nodes
    (Array.of_list jobs)

let requeue ?(resubmit_delay = 0.0) max_retries =
  {
    Sched.Simulator.requeue = true;
    resubmit_delay;
    max_retries;
    charge_lost_work = true;
    shrink = false;
  }

(* ------------------------------------------------------------------ *)

let test_kill_and_requeue () =
  (* A whole-machine job is killed at t=10 by a node failure, the node
     is repaired at t=12, and the resubmission arrives at t=15: the job
     must restart and run to a *new* completion at t=115 — the stale
     completion event of the killed attempt (t=100) must be ignored. *)
  let job = Trace.Job.v ~id:1 ~size:nodes ~runtime:100.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5);
        fev 12.0 Trace.Faults.Repair (Trace.Faults.Node 5);
      ]
  in
  let cfg = config ~faults ~resilience:(requeue ~resubmit_delay:5.0 3) () in
  let m, per_job = Sched.Simulator.run_detailed cfg (workload [ job ]) in
  Alcotest.(check int) "one fail event" 1 m.fault_events;
  Alcotest.(check int) "interrupted" 1 m.interrupted;
  Alcotest.(check int) "requeued" 1 m.requeued;
  Alcotest.(check int) "abandoned" 0 m.abandoned;
  Alcotest.(check int) "finished" 1 m.num_jobs;
  Alcotest.(check (float 1e-9)) "lost work = 10s x 128 nodes" 1280.0
    m.lost_node_time;
  match per_job with
  | [ r ] ->
      Alcotest.(check (float 1e-9)) "restart at kill + delay" 15.0 r.start_time;
      Alcotest.(check (float 1e-9)) "full rerun, stale completion ignored"
        115.0 r.end_time
  | l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l))

let test_abandon_without_requeue () =
  let job = Trace.Job.v ~id:1 ~size:nodes ~runtime:100.0 () in
  let faults =
    Trace.Faults.scripted [ fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5) ]
  in
  let m, per_job = Sched.Simulator.run_detailed (config ~faults ()) (workload [ job ]) in
  Alcotest.(check int) "interrupted" 1 m.interrupted;
  Alcotest.(check int) "requeued" 0 m.requeued;
  Alcotest.(check int) "abandoned" 1 m.abandoned;
  Alcotest.(check int) "nothing finished" 0 m.num_jobs;
  Alcotest.(check int) "no record" 0 (List.length per_job);
  Alcotest.(check (float 1e-9)) "lost work" 1280.0 m.lost_node_time

let test_retry_cap () =
  (* Two kills against a cap of one retry: the first requeues, the
     second abandons. *)
  let job = Trace.Job.v ~id:1 ~size:nodes ~runtime:100.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5);
        fev 12.0 Trace.Faults.Repair (Trace.Faults.Node 5);
        fev 30.0 Trace.Faults.Fail (Trace.Faults.Node 6);
        fev 32.0 Trace.Faults.Repair (Trace.Faults.Node 6);
      ]
  in
  let cfg = config ~faults ~resilience:(requeue ~resubmit_delay:5.0 1) () in
  let m, per_job = Sched.Simulator.run_detailed cfg (workload [ job ]) in
  Alcotest.(check int) "two kills" 2 m.interrupted;
  Alcotest.(check int) "one requeue" 1 m.requeued;
  Alcotest.(check int) "then abandoned" 1 m.abandoned;
  Alcotest.(check int) "never finished" 0 m.num_jobs;
  Alcotest.(check int) "no record" 0 (List.length per_job);
  (* Attempt 1 ran [0,10), attempt 2 ran [15,30). *)
  Alcotest.(check (float 1e-9)) "lost work both attempts"
    (float_of_int nodes *. (10.0 +. 15.0))
    m.lost_node_time

let test_charge_lost_work_off () =
  (* With [charge_lost_work = false] a kill that leads to a successful
     rerun costs nothing; only the abandoning kill is charged. *)
  let job = Trace.Job.v ~id:1 ~size:nodes ~runtime:100.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 5);
        fev 12.0 Trace.Faults.Repair (Trace.Faults.Node 5);
      ]
  in
  let resilience =
    { (requeue ~resubmit_delay:5.0 3) with charge_lost_work = false }
  in
  let m = Sched.Simulator.run (config ~faults ~resilience ()) (workload [ job ]) in
  Alcotest.(check (float 1e-9)) "rerun succeeded, nothing charged" 0.0
    m.lost_node_time;
  Alcotest.(check int) "still counted as interrupted" 1 m.interrupted

let test_fault_on_idle_resources_kills_nothing () =
  (* Failing resources no running job holds must not interrupt anyone;
     it only dents the healthy-capacity integral.  The second arrival at
     t=50 keeps the steady window ([first start, last start]) open
     across the fault. *)
  let jobs =
    [
      Trace.Job.v ~id:1 ~size:4 ~runtime:100.0 ();
      Trace.Job.v ~id:2 ~size:4 ~runtime:10.0 ~arrival:50.0 ();
    ]
  in
  let faults =
    Trace.Faults.scripted
      [
        fev 10.0 Trace.Faults.Fail (Trace.Faults.Node 120);
        fev 60.0 Trace.Faults.Repair (Trace.Faults.Node 120);
      ]
  in
  let m = Sched.Simulator.run (config ~faults ()) (workload jobs) in
  Alcotest.(check int) "no interruption" 0 m.interrupted;
  Alcotest.(check int) "jobs finished" 2 m.num_jobs;
  Alcotest.(check int) "fault recorded" 1 m.fault_events;
  Alcotest.(check bool) "healthy fraction dipped below 1" true
    (m.healthy_fraction < 1.0)

let test_memo_invalidated_by_repair () =
  (* Satellite: the no-fit memo must never hide a feasible allocation
     across a repair.  Node 0 fails before anything arrives; job A then
     occupies the remaining 127 nodes until t=1000.  Job B (1 node,
     arriving at t=1) is definitively infeasible — a verdict the memo
     caches.  The repair at t=5 is the only resource-adding event before
     t=1000, so B starting at exactly t=5 proves the repair invalidated
     the memo like a release; a stale memo would sit on B until A
     completes. *)
  let a = Trace.Job.v ~id:1 ~size:(nodes - 1) ~runtime:1000.0 () in
  let b = Trace.Job.v ~id:2 ~size:1 ~runtime:10.0 ~arrival:1.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 0);
        fev 5.0 Trace.Faults.Repair (Trace.Faults.Node 0);
      ]
  in
  let m, per_job = Sched.Simulator.run_detailed (config ~faults ()) (workload [ a; b ]) in
  Alcotest.(check int) "both ran" 2 m.num_jobs;
  let rb =
    List.find (fun (r : Sched.Metrics.per_job) -> r.job.id = 2) per_job
  in
  Alcotest.(check (float 1e-9)) "B starts the instant the repair lands" 5.0
    rb.start_time;
  Alcotest.(check (float 1e-9)) "B ends" 15.0 rb.end_time

let test_backfilled_job_requeues_without_double_start () =
  (* Regression: a job started by backfill leaves its id in the pending
     queue (lazy deletion).  If a fault then kills and requeues it, the
     stale entry must not come back to life — or one backfill pass could
     collect the job twice and start it twice with the same attempt
     number, leaking the first allocation forever.

     Placements are forced by pre-failing nodes: A (126 nodes) takes
     everything but nodes 0-1, so backfilled B (1 node) must sit on the
     repaired node 0; failing node 0 at t=4 therefore kills exactly B.
     After the t=5 repairs two nodes are free — enough for the buggy
     double start, so a leak would show as a non-zero final sample. *)
  let a = Trace.Job.v ~id:1 ~size:(nodes - 2) ~runtime:10.0 () in
  let h = Trace.Job.v ~id:2 ~size:64 ~runtime:10.0 ~arrival:1.0 () in
  let b = Trace.Job.v ~id:3 ~size:1 ~runtime:5.0 ~arrival:2.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 0);
        fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 1);
        fev 1.5 Trace.Faults.Repair (Trace.Faults.Node 0);
        fev 4.0 Trace.Faults.Fail (Trace.Faults.Node 0);
        fev 5.0 Trace.Faults.Repair (Trace.Faults.Node 0);
        fev 5.0 Trace.Faults.Repair (Trace.Faults.Node 1);
      ]
  in
  let cfg = config ~faults ~resilience:(requeue 3) () in
  let m, per_job = Sched.Simulator.run_detailed cfg (workload [ a; h; b ]) in
  Alcotest.(check int) "all three finished" 3 m.num_jobs;
  Alcotest.(check int) "one interruption" 1 m.interrupted;
  Alcotest.(check int) "one requeue" 1 m.requeued;
  Alcotest.(check int) "nothing stuck" 0 m.stuck_pending;
  let b_records =
    List.filter (fun (r : Sched.Metrics.per_job) -> r.job.id = 3) per_job
  in
  (match b_records with
  | [ r ] ->
      Alcotest.(check (float 1e-9)) "B restarts at the repair" 5.0 r.start_time;
      Alcotest.(check (float 1e-9)) "B's rerun completes once" 10.0 r.end_time
  | l ->
      Alcotest.fail
        (Printf.sprintf "B finished %d times, expected 1" (List.length l)));
  (* A leaked allocation never releases: the requested-busy series would
     end above zero. *)
  let _, last = m.series.(Array.length m.series - 1) in
  Alcotest.(check (float 0.0)) "no leaked allocation at end of run" 0.0 last

let test_transient_infeasibility_waits_for_repair () =
  (* A full-machine job arriving during a single-node outage is not
     "impossible": the scheduled repair makes it feasible.  It must stay
     blocked and start the instant the repair lands, not be rejected. *)
  let job = Trace.Job.v ~id:1 ~size:nodes ~runtime:10.0 ~arrival:1.0 () in
  let faults =
    Trace.Faults.scripted
      [
        fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 0);
        fev 5.0 Trace.Faults.Repair (Trace.Faults.Node 0);
      ]
  in
  let m, per_job =
    Sched.Simulator.run_detailed (config ~faults ()) (workload [ job ])
  in
  Alcotest.(check int) "not rejected" 0 m.rejected;
  Alcotest.(check int) "ran" 1 m.num_jobs;
  Alcotest.(check int) "nothing stuck" 0 m.stuck_pending;
  match per_job with
  | [ r ] ->
      Alcotest.(check (float 1e-9)) "starts when the repair lands" 5.0
        r.start_time
  | l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l))

let test_permanent_infeasibility_still_rejected () =
  (* With no repair left in the trace the degradation is permanent, so
     the oversized head is definitively infeasible: reject it (keeping
     the run terminating) and let the queue behind it proceed. *)
  let big = Trace.Job.v ~id:1 ~size:nodes ~runtime:10.0 ~arrival:1.0 () in
  let small = Trace.Job.v ~id:2 ~size:4 ~runtime:10.0 ~arrival:1.0 () in
  let faults =
    Trace.Faults.scripted [ fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 0) ]
  in
  let m = Sched.Simulator.run (config ~faults ()) (workload [ big; small ]) in
  Alcotest.(check int) "big job rejected" 1 m.rejected;
  Alcotest.(check int) "small job ran" 1 m.num_jobs;
  Alcotest.(check int) "nothing stuck" 0 m.stuck_pending

let test_fifo_wedged_queue_is_reported () =
  (* Plain FIFO has no reservation path, so a head that fits nameplate
     capacity but not the permanently degraded machine wedges the queue;
     the run must end with those jobs visible in [stuck_pending] rather
     than silently unaccounted. *)
  let big = Trace.Job.v ~id:1 ~size:nodes ~runtime:10.0 ~arrival:1.0 () in
  let small = Trace.Job.v ~id:2 ~size:4 ~runtime:10.0 ~arrival:2.0 () in
  let faults =
    Trace.Faults.scripted [ fev 0.0 Trace.Faults.Fail (Trace.Faults.Node 0) ]
  in
  let cfg = Sched.Simulator.Config.with_backfill false (config ~faults ()) in
  let m = Sched.Simulator.run cfg (workload [ big; small ]) in
  Alcotest.(check int) "nothing ran" 0 m.num_jobs;
  Alcotest.(check int) "nothing rejected" 0 m.rejected;
  Alcotest.(check int) "both jobs reported stuck" 2 m.stuck_pending

let test_zero_fault_metrics_are_clean () =
  let entry =
    match Trace.Presets.by_name ~full:false "Synth-16" with
    | Some e -> e
    | None -> Alcotest.fail "preset missing"
  in
  let w = Trace.Workload.truncate entry.workload 80 in
  let cfg = Sched.Simulator.default_config Sched.Allocator.jigsaw ~radix:entry.cluster_radix in
  let m = Sched.Simulator.run cfg w in
  Alcotest.(check int) "no fault events" 0 m.fault_events;
  Alcotest.(check int) "no interruptions" 0 m.interrupted;
  Alcotest.(check (float 0.0)) "no lost work" 0.0 m.lost_node_time;
  Alcotest.(check (float 0.0)) "healthy the whole run" 1.0 m.healthy_fraction;
  Alcotest.(check (float 1e-9)) "util vs healthy collapses to util"
    m.avg_utilization m.util_vs_healthy

let test_all_schemes_survive_mtbf_faults () =
  (* Every allocator must complete a seeded MTBF run with consistent
     accounting; validated claims inside State abort the run if any
     scheme ever proposes a failed resource. *)
  let entry =
    match Trace.Presets.by_name ~full:false "Synth-16" with
    | Some e -> e
    | None -> Alcotest.fail "preset missing"
  in
  let w = Trace.Workload.truncate entry.workload 120 in
  let topo = Fattree.Topology.of_radix entry.cluster_radix in
  let faults =
    Trace.Faults.generate ~seed:3 ~mtbf:5e6 ~mttr:2e4 ~horizon:3e5 topo
  in
  Alcotest.(check bool) "trace is non-trivial" true
    (Trace.Faults.num_events faults > 0);
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      let cfg =
        Sched.Simulator.Config.make ~faults
          ~resilience:(requeue ~resubmit_delay:60.0 2)
          ~radix:entry.cluster_radix alloc
      in
      let m = Sched.Simulator.run cfg w in
      Alcotest.(check int)
        (alloc.name ^ ": every kill requeues or abandons")
        m.interrupted
        (m.requeued + m.abandoned);
      Alcotest.(check int)
        (alloc.name ^ ": every job finished, was rejected or abandoned")
        (Trace.Workload.num_jobs w)
        (m.num_jobs + m.rejected + m.abandoned);
      Alcotest.(check bool)
        (alloc.name ^ ": healthy fraction in (0.9, 1]")
        true
        (m.healthy_fraction > 0.9 && m.healthy_fraction <= 1.0);
      Alcotest.(check bool)
        (alloc.name ^ ": lost work non-negative")
        true (m.lost_node_time >= 0.0))
    Sched.Allocator.all

let suite =
  [
    Alcotest.test_case "kill, requeue, rerun (stale completion guarded)" `Quick
      test_kill_and_requeue;
    Alcotest.test_case "abandon without requeue" `Quick
      test_abandon_without_requeue;
    Alcotest.test_case "retry cap abandons after too many kills" `Quick
      test_retry_cap;
    Alcotest.test_case "charge-lost-work=false charges only abandonment" `Quick
      test_charge_lost_work_off;
    Alcotest.test_case "fault on idle resources kills nothing" `Quick
      test_fault_on_idle_resources_kills_nothing;
    Alcotest.test_case "no-fit memo invalidated by repair" `Quick
      test_memo_invalidated_by_repair;
    Alcotest.test_case "backfilled job requeues without double start" `Quick
      test_backfilled_job_requeues_without_double_start;
    Alcotest.test_case "transient infeasibility waits for repair" `Quick
      test_transient_infeasibility_waits_for_repair;
    Alcotest.test_case "permanent infeasibility still rejected" `Quick
      test_permanent_infeasibility_still_rejected;
    Alcotest.test_case "FIFO wedged queue reported as stuck" `Quick
      test_fifo_wedged_queue_is_reported;
    Alcotest.test_case "zero-fault metrics are clean" `Quick
      test_zero_fault_metrics_are_clean;
    Alcotest.test_case "all schemes survive a seeded MTBF run" `Quick
      test_all_schemes_survive_mtbf_faults;
  ]
