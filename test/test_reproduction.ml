(* End-to-end reproduction guards: the paper's headline orderings on a
   small-but-meaningful workload.  These pin the Figure 6 / Figure 8 /
   Table 3 shapes so a regression in any allocator or in the simulator
   shows up as a failed band, not as silent drift.  (Bands are generous;
   the full reproduction lives in bench/main.exe.) *)

let workload =
  lazy (Trace.Synthetic.synth ~mean_size:16 ~n_jobs:800 ~seed:1601 ~max_size:1024)

let run ?(scenario = Trace.Scenario.No_speedup) alloc =
  let cfg = Sched.Simulator.Config.make ~scenario ~radix:16 alloc in
  Sched.Simulator.run cfg (Lazy.force workload)

let results = Hashtbl.create 8

let metrics alloc =
  match Hashtbl.find_opt results alloc with
  | Some m -> m
  | None ->
      let m = run alloc in
      Hashtbl.replace results alloc m;
      m

let in_band name lo v hi =
  Alcotest.(check bool)
    (Printf.sprintf "%s utilization %.1f%% in [%.0f, %.0f]" name (100.0 *. v) lo hi)
    true
    (100.0 *. v >= lo && 100.0 *. v <= hi)

let test_figure6_bands () =
  in_band "Baseline" 97.0 (metrics Sched.Allocator.baseline).avg_utilization 100.0;
  in_band "Jigsaw" 92.0 (metrics Sched.Allocator.jigsaw).avg_utilization 98.0;
  in_band "LaaS" 87.0 (metrics Sched.Allocator.laas).avg_utilization 94.0;
  in_band "TA" 80.0 (metrics Sched.Allocator.ta).avg_utilization 90.0

let test_figure6_ordering () =
  let u a = (metrics a).Sched.Metrics.avg_utilization in
  Alcotest.(check bool) "Baseline > Jigsaw" true
    (u Sched.Allocator.baseline > u Sched.Allocator.jigsaw);
  Alcotest.(check bool) "Jigsaw > LaaS" true
    (u Sched.Allocator.jigsaw > u Sched.Allocator.laas);
  Alcotest.(check bool) "LaaS > TA" true
    (u Sched.Allocator.laas > u Sched.Allocator.ta)

let test_laas_padding_band () =
  (* LaaS's internal fragmentation: held minus requested utilization in
     the paper's 3-7 point range. *)
  let m = metrics Sched.Allocator.laas in
  let gap = 100.0 *. (m.alloc_utilization -. m.avg_utilization) in
  Alcotest.(check bool)
    (Printf.sprintf "padding gap %.1f in [2, 9]" gap)
    true
    (gap >= 2.0 && gap <= 9.0)

let test_makespan_worst_case_band () =
  (* Figure 8, no speed-ups: Jigsaw within ~8% of Baseline; TA worse
     than Jigsaw. *)
  let base = (metrics Sched.Allocator.baseline).makespan in
  let jig = (metrics Sched.Allocator.jigsaw).makespan /. base in
  let ta = (metrics Sched.Allocator.ta).makespan /. base in
  Alcotest.(check bool)
    (Printf.sprintf "Jigsaw makespan ratio %.3f <= 1.08" jig)
    true (jig <= 1.08);
  Alcotest.(check bool) "TA >= Jigsaw" true (ta >= jig -. 0.01)

let test_speedup_beats_baseline () =
  (* Figure 8 with the 20%% scenario: Jigsaw's makespan beats Baseline. *)
  let base = (metrics Sched.Allocator.baseline).makespan in
  let jig20 = run ~scenario:(Trace.Scenario.Fixed 20) Sched.Allocator.jigsaw in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f < 1.0" (jig20.makespan /. base))
    true
    (jig20.makespan /. base < 1.0)

let test_sched_times_band () =
  (* Table 3 shape: all isolating schemes at milliseconds. *)
  List.iter
    (fun alloc ->
      let m = metrics alloc in
      Alcotest.(check bool)
        (Printf.sprintf "%s %.5f s/job < 0.05" m.sched_name m.sched_time_per_job)
        true
        (m.sched_time_per_job < 0.05))
    [ Sched.Allocator.jigsaw; Sched.Allocator.laas; Sched.Allocator.ta ]

let suite =
  [
    Alcotest.test_case "Figure 6 utilization bands" `Slow test_figure6_bands;
    Alcotest.test_case "Figure 6 ordering" `Slow test_figure6_ordering;
    Alcotest.test_case "LaaS padding band (3-7%)" `Slow test_laas_padding_band;
    Alcotest.test_case "Figure 8 worst-case band" `Slow test_makespan_worst_case_band;
    Alcotest.test_case "Figure 8 speed-up crossover" `Slow test_speedup_beats_baseline;
    Alcotest.test_case "Table 3 scheduling-time band" `Slow test_sched_times_band;
  ]
