(* Crash-safety of the scheduler-as-a-service layer: the state directory
   must recover to the uncrashed state from a [kill -9] landing at any
   instruction — mid-WAL-write, between fsync and apply, right after a
   checkpoint — for every scheme, with and without faults.  Plus the
   degradation contract: fuzzed input never raises out of the protocol
   parser or kills the reactor, and interrupted sweeps journal and
   resume.

   The crash trials fork a child that drives the daemon's journaled op
   path (admit -> WAL append+fsync -> apply -> maybe checkpoint) with a
   [Crash] point armed via JIGSAW_SVC_CRASH, wait for the self-SIGKILL,
   then recover in-process and finish the op script.  The final drained
   fingerprint must equal the script run uncrashed. *)

let radix = 8

let requeue_policy =
  {
    Sched.Simulator.requeue = true;
    resubmit_delay = 30.0;
    max_retries = 2;
    charge_lost_work = true;
    shrink = false;
  }

let params ?(scheme = "Jigsaw") ?(faulty = false) () =
  {
    Svc.Core.scheme;
    radix;
    scenario = "None";
    scenario_seed = 1;
    backfill_window = 50;
    backfill = true;
    resilience =
      (if faulty then requeue_policy else Sched.Simulator.no_resilience);
    trace_name = "svc-test";
    system_nodes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Temp dirs                                                           *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { st_kind = S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let with_tmpdir f =
  let dir = Filename.temp_file "jigsaw-svc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let config = [ ("who", Obs.Json.Str "test"); ("n", Obs.Json.Num 3.0) ]
let op_fields i = [ ("op", Obs.Json.Str "noop"); ("i", Obs.Json.Num (float_of_int i)) ]

let test_wal_roundtrip () =
  with_tmpdir (fun dir ->
      let w = Svc.Wal.create ~dir ~config ~start_seq:0 in
      let seqs = List.init 5 (fun i -> Svc.Wal.append w (op_fields i)) in
      Alcotest.(check (list int)) "seqs" [ 0; 1; 2; 3; 4 ] seqs;
      Svc.Wal.rotate w;
      Alcotest.(check int) "segment start after rotate" 5
        (Svc.Wal.segment_start w);
      ignore (Svc.Wal.append w (op_fields 5));
      ignore (Svc.Wal.append w (op_fields 6));
      Svc.Wal.close w;
      match Svc.Wal.read_dir ~dir with
      | Error m -> Alcotest.failf "read_dir: %s" m
      | Ok None -> Alcotest.fail "read_dir: empty"
      | Ok (Some r) ->
          Alcotest.(check int) "entries" 7 (List.length r.entries);
          Alcotest.(check int) "next" 7 r.wal_next_seq;
          Alcotest.(check int) "dropped" 0 r.dropped;
          Alcotest.(check int) "segments" 2 r.segments;
          List.iteri
            (fun i (e : Svc.Wal.entry) ->
              Alcotest.(check int) "seq" i e.seq;
              Alcotest.(check (float 0.0)) "payload" (float_of_int i)
                (Obs.Json.num e.fields "i"))
            r.entries;
          Alcotest.(check string) "config str" "test"
            (Obs.Json.str r.config "who"))

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_wal_torn_tail () =
  with_tmpdir (fun dir ->
      let w = Svc.Wal.create ~dir ~config ~start_seq:0 in
      for i = 0 to 3 do
        ignore (Svc.Wal.append w (op_fields i))
      done;
      Svc.Wal.close w;
      let seg = Filename.concat dir (Svc.Wal.segment_name 0) in
      (* A half-written line: no CRC, no newline — what a crash mid-
         [write] leaves behind. *)
      append_bytes seg "{\"op\":\"noop\",\"i\":4";
      (match Svc.Wal.read_dir ~dir with
      | Error m -> Alcotest.failf "torn tail should recover: %s" m
      | Ok None -> Alcotest.fail "torn tail: empty"
      | Ok (Some r) ->
          Alcotest.(check int) "entries survive" 4 (List.length r.entries);
          Alcotest.(check int) "dropped" 1 r.dropped;
          Alcotest.(check int) "next" 4 r.wal_next_seq);
      (* A complete line whose CRC fails (bit flip in transit to disk)
         is also only tolerable as the final line. *)
      let good =
        Svc.Wal.line_of
          (("record", Obs.Json.Str "op") :: ("seq", Obs.Json.Num 5.0)
          :: op_fields 5)
      in
      let flipped = Bytes.of_string good in
      Bytes.set flipped 8 'X';
      with_tmpdir (fun dir2 ->
          let w2 = Svc.Wal.create ~dir:dir2 ~config ~start_seq:0 in
          for i = 0 to 2 do
            ignore (Svc.Wal.append w2 (op_fields i))
          done;
          Svc.Wal.close w2;
          append_bytes
            (Filename.concat dir2 (Svc.Wal.segment_name 0))
            (Bytes.to_string flipped);
          match Svc.Wal.read_dir ~dir:dir2 with
          | Ok (Some r) ->
              Alcotest.(check int) "crc-fail tail dropped" 1 r.dropped;
              Alcotest.(check int) "entries" 3 (List.length r.entries)
          | Ok None -> Alcotest.fail "crc tail: empty"
          | Error m -> Alcotest.failf "crc tail should recover: %s" m))

let test_wal_mid_corruption () =
  with_tmpdir (fun dir ->
      let w = Svc.Wal.create ~dir ~config ~start_seq:0 in
      for i = 0 to 4 do
        ignore (Svc.Wal.append w (op_fields i))
      done;
      Svc.Wal.close w;
      let seg = Filename.concat dir (Svc.Wal.segment_name 0) in
      let lines = In_channel.with_open_bin seg In_channel.input_lines in
      (* Flip a byte in an interior line: damage a crash cannot cause,
         so the reader must refuse the whole directory loudly. *)
      let corrupted =
        List.mapi
          (fun i l ->
            if i = 2 then (
              let b = Bytes.of_string l in
              Bytes.set b (Bytes.length b / 2) '~';
              Bytes.to_string b)
            else l)
          lines
      in
      Out_channel.with_open_bin seg (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) corrupted);
      match Svc.Wal.read_dir ~dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "interior corruption must be a loud error")

let test_wal_seq_gap () =
  with_tmpdir (fun dir ->
      let w = Svc.Wal.create ~dir ~config ~start_seq:0 in
      for i = 0 to 2 do
        ignore (Svc.Wal.append w (op_fields i))
      done;
      Svc.Wal.close w;
      (* A second segment that skips seq 3–4: continuity violation. *)
      let w2 = Svc.Wal.create ~dir ~config ~start_seq:5 in
      ignore (Svc.Wal.append w2 (op_fields 5));
      Svc.Wal.close w2;
      match Svc.Wal.read_dir ~dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "sequence gap must be a loud error")

let test_wal_gc () =
  with_tmpdir (fun dir ->
      let w = Svc.Wal.create ~dir ~config ~start_seq:0 in
      for i = 0 to 2 do
        ignore (Svc.Wal.append w (op_fields i))
      done;
      Svc.Wal.rotate w;
      for i = 3 to 5 do
        ignore (Svc.Wal.append w (op_fields i))
      done;
      Svc.Wal.rotate w;
      ignore (Svc.Wal.append w (op_fields 6));
      Svc.Wal.close w;
      (* keep_from inside the second segment: only the first may go. *)
      Alcotest.(check int) "gc one segment" 1 (Svc.Wal.gc ~dir ~keep_from:4);
      (match Svc.Wal.read_dir ~dir with
      | Ok (Some r) ->
          Alcotest.(check int) "first_seq" 3 r.first_seq;
          Alcotest.(check int) "next" 7 r.wal_next_seq
      | _ -> Alcotest.fail "gc broke the dir");
      Alcotest.(check int) "gc keeps live tail" 0
        (Svc.Wal.gc ~dir ~keep_from:4))

let test_wal_empty_and_fully_torn () =
  with_tmpdir (fun dir ->
      (match Svc.Wal.read_dir ~dir with
      | Ok None -> ()
      | _ -> Alcotest.fail "empty dir must read as None");
      (* A lone segment whose header never made it to disk whole:
         nothing was acknowledged, so this is a fresh start. *)
      append_bytes (Filename.concat dir (Svc.Wal.segment_name 0)) "{\"rec";
      match Svc.Wal.read_dir ~dir with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "torn header must collapse to None"
      | Error m -> Alcotest.failf "torn lone header must recover: %s" m)

(* ------------------------------------------------------------------ *)
(* Protocol fuzz                                                       *)
(* ------------------------------------------------------------------ *)

let test_protocol_fuzz () =
  let prng = Sim.Prng.create ~seed:97 in
  for _ = 1 to 2000 do
    let len = Sim.Prng.int prng ~bound:120 in
    let line =
      String.init len (fun _ ->
          (* Bias toward JSON punctuation so some lines get deep into
             the parser before failing. *)
          match Sim.Prng.int prng ~bound:10 with
          | 0 -> '{'
          | 1 -> '}'
          | 2 -> '"'
          | 3 -> ':'
          | 4 -> ','
          | 5 -> Char.chr (Sim.Prng.int prng ~bound:256)
          | _ -> Char.chr (32 + Sim.Prng.int prng ~bound:95))
    in
    match Svc.Protocol.request_of_line line with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "request_of_line raised %s on %S"
          (Printexc.to_string e) line
  done

let test_protocol_typed_errors () =
  let err line =
    match Svc.Protocol.request_of_line line with
    | Error (code, _) -> Svc.Protocol.error_code_name code
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  Alcotest.(check string) "garbage" "parse" (err "not json at all");
  Alcotest.(check string) "no op" "bad-request" (err "{}");
  Alcotest.(check string) "unknown op" "bad-request"
    (err "{\"op\":\"frobnicate\"}");
  Alcotest.(check string) "submit sans size" "bad-request"
    (err "{\"op\":\"submit\",\"runtime\":10}");
  Alcotest.(check string) "negative size" "bad-request"
    (err "{\"op\":\"submit\",\"size\":-4,\"runtime\":10}");
  Alcotest.(check string) "nan runtime" "parse"
    (err "{\"op\":\"submit\",\"size\":4,\"runtime\":nan}");
  Alcotest.(check string) "infinite runtime" "bad-request"
    (err "{\"op\":\"submit\",\"size\":4,\"runtime\":1e999}");
  Alcotest.(check string) "bad fault target" "bad-request"
    (err "{\"op\":\"fail\",\"target\":\"moon\",\"index\":0}");
  match Svc.Protocol.request_of_line "{\"op\":\"ping\",\"rid\":\"r1\"}" with
  | Ok { rid = Some "r1"; req = Svc.Protocol.Ping; _ } -> ()
  | _ -> Alcotest.fail "ping did not parse"

let test_protocol_versioning () =
  let ok line =
    match Svc.Protocol.request_of_line line with
    | Ok e -> e
    | Error (_, m) -> Alcotest.failf "rejected %S: %s" line m
  in
  (* Requests from pre-versioning clients carry no version field and
     must keep parsing as v1 forever. *)
  Alcotest.(check int) "absent version = v1" 1 (ok "{\"op\":\"ping\"}").version;
  Alcotest.(check int) "current version accepted" Svc.Protocol.current_version
    (ok
       (Printf.sprintf "{\"op\":\"ping\",\"version\":%d}"
          Svc.Protocol.current_version))
      .version;
  (match
     Svc.Protocol.request_of_line
       "{\"op\":\"resize\",\"id\":3,\"size\":16,\"version\":2}"
   with
  | Ok { req = Svc.Protocol.Resize { id = 3; size = 16 }; version = 2; _ } ->
      ()
  | _ -> Alcotest.fail "resize did not parse");
  (match
     Svc.Protocol.request_of_line
       "{\"op\":\"submit\",\"size\":8,\"min\":4,\"max\":16,\"runtime\":10,\
        \"version\":2}"
   with
  | Ok { req = Svc.Protocol.Submit { min_size = Some 4; max_size = Some 16; _ };
         _ } ->
      ()
  | _ -> Alcotest.fail "moldable submit did not parse");
  let err line =
    match Svc.Protocol.request_of_line line with
    | Error (code, m) -> (Svc.Protocol.error_code_name code, m)
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  (* A speaker from the future is told about the version mismatch, not
     given a misleading unknown-op error for whatever op it used. *)
  let code, m = err "{\"op\":\"frobnicate\",\"version\":3}" in
  Alcotest.(check string) "future version refused" "bad-request" code;
  Alcotest.(check bool) "refusal names the version gap" true
    (String.length m >= 11 && String.sub m 0 11 = "unsupported");
  let code, _ = err "{\"op\":\"ping\",\"version\":0}" in
  Alcotest.(check string) "version 0 refused" "bad-request" code;
  let code, _ = err "{\"op\":\"resize\",\"id\":3,\"size\":0,\"version\":2}" in
  Alcotest.(check string) "non-positive resize size" "bad-request" code

(* ------------------------------------------------------------------ *)
(* Op scripts: the deterministic workload every recovery test replays   *)
(* ------------------------------------------------------------------ *)

let submit_of (j : Trace.Job.t) =
  Svc.Protocol.Submit
    {
      id = None;
      size = j.size;
      min_size =
        (match j.spec with
        | Trace.Job.Rigid _ -> None
        | Trace.Job.Moldable { min_size; _ } -> Some min_size);
      max_size =
        (match j.spec with
        | Trace.Job.Rigid _ -> None
        | Trace.Job.Moldable { max_size; _ } -> Some max_size);
      runtime = j.runtime;
      est_runtime = Some j.est_runtime;
      bw_class = Some j.bw_class;
    }

(* [n_jobs] submissions spaced 40 s apart, two cancels (one live, one
   unknown), and — when [faulty] — a fail/repair pair on a node and on
   a whole leaf switch, straddling several submissions. *)
let mk_ops ~n_jobs ~faulty =
  let w = Trace.Synthetic.synth ~mean_size:16 ~n_jobs ~seed:42 ~max_size:128 in
  let submits =
    Array.to_list
      (Array.mapi (fun i j -> (float_of_int i *. 40.0, submit_of j)) w.jobs)
  in
  let cancels =
    [
      (85.0, Svc.Protocol.Cancel { id = 1 });
      (130.0, Svc.Protocol.Cancel { id = 999 });
    ]
  in
  let faults =
    if not faulty then []
    else
      [
        (200.0, Svc.Protocol.Fault { kind = Fail; target = Node 5 });
        (810.0, Svc.Protocol.Fault { kind = Repair; target = Node 5 });
        (350.0, Svc.Protocol.Fault { kind = Fail; target = Leaf_switch 1 });
        (1400.0, Svc.Protocol.Fault { kind = Repair; target = Leaf_switch 1 });
      ]
  in
  let ops =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (submits @ cancels @ faults)
  in
  ops @ [ (float_of_int n_jobs *. 40.0 +. 10.0, Svc.Protocol.Drain) ]

(* The daemon's journaled path, minus the socket: recover whatever the
   directory holds, then admit -> append -> apply the remainder of the
   script, checkpointing every [ckpt_every] ops.  Total for any prefix
   of prior progress, so the same call is the crashing child, the
   recovering parent, and the uncrashed reference. *)
let drive ~dir ~p ~ops ~ckpt_every =
  match Svc.Daemon.recover ~params:p ~dir () with
  | Error m -> Alcotest.failf "recover: %s" m
  | Ok (core, wal, _report) ->
      let next = Svc.Core.last_seq core + 1 in
      List.iteri
        (fun seq (at, req) ->
          if seq >= next then begin
            let stamp = Float.max at (Svc.Core.now core) in
            match Svc.Core.admit core ~stamp req with
            | Error m -> Alcotest.failf "admit seq %d: %s" seq m
            | Ok op ->
                let fields = Svc.Core.fields_of_op ~stamp ~rid:None op in
                let seq' = Svc.Wal.append wal fields in
                Alcotest.(check int) "wal seq tracks script" seq seq';
                ignore (Svc.Core.apply core ~seq ~rid:None ~stamp op);
                if ckpt_every > 0 && (seq + 1) mod ckpt_every = 0 then begin
                  let path =
                    Filename.concat dir (Svc.Daemon.ckpt_name seq)
                  in
                  if Svc.Core.checkpoint core ~path then Svc.Wal.rotate wal
                end
          end)
        ops;
      Svc.Wal.close wal;
      core

let drained_fingerprint core =
  match Svc.Core.fingerprint core with
  | Some fp -> fp
  | None -> Alcotest.fail "script ended undrained"

let reference_fingerprint ~p ~ops ~ckpt_every =
  with_tmpdir (fun dir -> drained_fingerprint (drive ~dir ~p ~ops ~ckpt_every))

(* ------------------------------------------------------------------ *)
(* Core determinism: checkpoint mid-stream + replay == one shot         *)
(* ------------------------------------------------------------------ *)

let test_core_replay_equivalence () =
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      List.iter
        (fun faulty ->
          let p = params ~scheme:alloc.name ~faulty () in
          let ops = mk_ops ~n_jobs:18 ~faulty in
          (* No checkpoints: pure WAL replay from genesis. *)
          let a = reference_fingerprint ~p ~ops ~ckpt_every:0 in
          (* Checkpoint every 4 ops: recovery = snapshot + short replay. *)
          let b = reference_fingerprint ~p ~ops ~ckpt_every:4 in
          (* Same directory driven twice: the second drive recovers a
             finished run and must see the same drained result. *)
          let c =
            with_tmpdir (fun dir ->
                ignore (drive ~dir ~p ~ops ~ckpt_every:5);
                drained_fingerprint (drive ~dir ~p ~ops ~ckpt_every:5))
          in
          let name suffix =
            Printf.sprintf "%s%s %s" alloc.name
              (if faulty then " faulty" else "")
              suffix
          in
          Alcotest.(check string) (name "ckpt path") a b;
          Alcotest.(check string) (name "re-recover") a c)
        [ false; true ])
    Sched.Allocator.all

(* ------------------------------------------------------------------ *)
(* Crash injection: kill -9 at armed points, recover, compare            *)
(* ------------------------------------------------------------------ *)

let crash_points =
  [ "wal-torn"; "wal-pre-fsync"; "wal-post-fsync"; "post-apply"; "ckpt-post-save" ]

(* Fork a child that drives the script with [point:count] armed; it
   SIGKILLs itself at that instruction (or finishes, if the count
   overshoots — an admissible, vacuous trial).  The parent then
   recovers the directory and finishes the script in-process. *)
let crash_trial ~p ~ops ~ckpt_every ~point ~count ~expected =
  with_tmpdir (fun dir ->
      (match Unix.fork () with
      | 0 ->
          Unix.putenv "JIGSAW_SVC_CRASH" (Printf.sprintf "%s:%d" point count);
          (try ignore (drive ~dir ~p ~ops ~ckpt_every) with _ -> ());
          Unix._exit 0
      | pid -> (
          match Unix.waitpid [] pid with
          | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
          | _, Unix.WEXITED 0 -> () (* count overshot: ran to completion *)
          | _, st ->
              Alcotest.failf "%s:%d child ended oddly (%s)" point count
                (match st with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)));
      let core = drive ~dir ~p ~ops ~ckpt_every in
      Alcotest.(check string)
        (Printf.sprintf "recover after %s:%d" point count)
        expected
        (drained_fingerprint core))

let test_crash_every_point () =
  (* Jigsaw, faulty: every point, early and late occurrences. *)
  let p = params ~faulty:true () in
  let ops = mk_ops ~n_jobs:14 ~faulty:true in
  let expected = reference_fingerprint ~p ~ops ~ckpt_every:4 in
  List.iter
    (fun point ->
      List.iter
        (fun count -> crash_trial ~p ~ops ~ckpt_every:4 ~point ~count ~expected)
        [ 1; 3 ])
    crash_points

(* Resize ops through the journaled path: moldable submissions, one
   resize the engine grants, one it refuses (unknown job).  Both are
   journaled — a refusal is a deterministic verdict, not an error — so
   recovery from a kill -9 landing on either must replay to the
   uncrashed fingerprint. *)
let test_resize_crash_recovery () =
  let p = params ~faulty:true () in
  let w =
    Trace.Workload.moldable
      (Trace.Synthetic.synth ~mean_size:16 ~n_jobs:10 ~seed:42 ~max_size:128)
  in
  let submits =
    Array.to_list
      (Array.mapi (fun i j -> (float_of_int i *. 40.0, submit_of j)) w.jobs)
  in
  let resizes =
    [
      (90.0,
       Svc.Protocol.Resize { id = 0; size = Trace.Job.min_size w.jobs.(0) });
      (130.0, Svc.Protocol.Resize { id = 999; size = 4 });
    ]
  in
  let ops =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (submits @ resizes)
    @ [ (500.0, Svc.Protocol.Drain) ]
  in
  let resize_counts =
    List.mapi (fun i (_, op) -> (i, op)) ops
    |> List.filter (fun (_, op) ->
           match op with Svc.Protocol.Resize _ -> true | _ -> false)
    |> List.map (fun (i, _) -> i + 1)
  in
  let expected = reference_fingerprint ~p ~ops ~ckpt_every:3 in
  List.iter
    (fun point ->
      let counts =
        if point = "ckpt-post-save" then [ 1; 2 ] else resize_counts
      in
      List.iter
        (fun count ->
          crash_trial ~p ~ops ~ckpt_every:3 ~point ~count ~expected)
        counts)
    crash_points

let test_crash_random_all_schemes () =
  let prng = Sim.Prng.create ~seed:23 in
  List.iter
    (fun (alloc : Sched.Allocator.t) ->
      List.iter
        (fun faulty ->
          let p = params ~scheme:alloc.name ~faulty () in
          let ops = mk_ops ~n_jobs:12 ~faulty in
          let n_ops = List.length ops in
          let expected = reference_fingerprint ~p ~ops ~ckpt_every:5 in
          for _ = 1 to 3 do
            let point =
              List.nth crash_points
                (Sim.Prng.int prng ~bound:(List.length crash_points))
            in
            let count =
              if point = "ckpt-post-save" then
                1 + Sim.Prng.int prng ~bound:2
              else 1 + Sim.Prng.int prng ~bound:(n_ops - 1)
            in
            crash_trial ~p ~ops ~ckpt_every:5 ~point ~count ~expected
          done)
        [ false; true ])
    Sched.Allocator.all

(* ------------------------------------------------------------------ *)
(* Checkpoint corruption: fall back to an older snapshot, or genesis     *)
(* ------------------------------------------------------------------ *)

let checkpoint_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 5
         && String.sub f 0 5 = "ckpt-"
         && Filename.check_suffix f ".jsonl")
  |> List.sort (fun a b -> compare b a)

let clobber path =
  let st = Unix.stat path in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (st.st_size / 2) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "XXXX" 0 4);
  Unix.close fd

let test_checkpoint_fallback () =
  let p = params ~faulty:true () in
  let ops = mk_ops ~n_jobs:14 ~faulty:true in
  let expected = reference_fingerprint ~p ~ops ~ckpt_every:0 in
  with_tmpdir (fun dir ->
      ignore (drive ~dir ~p ~ops ~ckpt_every:4);
      (match checkpoint_files dir with
      | newest :: _ :: _ ->
          (* Corrupt the newest: recovery must step back to the next
             one and replay a longer WAL suffix. *)
          clobber (Filename.concat dir newest)
      | _ -> Alcotest.fail "expected at least two checkpoints");
      Alcotest.(check string) "older ckpt + longer replay" expected
        (drained_fingerprint (drive ~dir ~p ~ops ~ckpt_every:4));
      (* Corrupt every checkpoint: recovery must replay the WAL from
         genesis and still land on the same state. *)
      List.iter
        (fun f -> clobber (Filename.concat dir f))
        (checkpoint_files dir);
      Alcotest.(check string) "all ckpts dead -> full replay" expected
        (drained_fingerprint (drive ~dir ~p ~ops ~ckpt_every:4)))

(* ------------------------------------------------------------------ *)
(* Live daemon over a socket                                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* Blocking line reader over a raw fd. *)
let line_reader fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec next () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let s = Buffer.contents buf in
        let line = String.sub s 0 i in
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        line
    | None ->
        let n = Unix.read fd chunk 0 4096 in
        if n = 0 then Alcotest.fail "daemon closed the connection";
        Buffer.add_subbytes buf chunk 0 n;
        next ()
  in
  next

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.02;
        go (tries - 1)
  in
  go 250

let with_daemon ~p f =
  with_tmpdir (fun dir ->
      let sock = Filename.concat dir "s" in
      match Unix.fork () with
      | 0 ->
          let opts =
            {
              (Svc.Daemon.default_opts ~socket:sock
                 ~dir:(Filename.concat dir "state"))
              with
              params = Some p;
              ckpt_every_ops = 6;
            }
          in
          (try ignore (Svc.Daemon.run opts) with _ -> ());
          Unix._exit 0
      | pid ->
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid))
            (fun () -> f sock pid))

let rpc fd read line =
  write_all fd (line ^ "\n");
  Obs.Json.parse_line (read ())

let test_daemon_socket_parity () =
  (* Ops submitted over the wire must drain to the same fingerprint the
     in-process drive produces — the socket adds no nondeterminism. *)
  let p = params ~faulty:true () in
  let ops = mk_ops ~n_jobs:12 ~faulty:true in
  let expected = reference_fingerprint ~p ~ops ~ckpt_every:0 in
  with_daemon ~p (fun sock _pid ->
      let fd = connect sock in
      let read = line_reader fd in
      let fp = ref "" in
      List.iter
        (fun (at, req) ->
          let fields =
            match (req : Svc.Protocol.request) with
            | Submit { size; runtime; est_runtime; bw_class; _ } ->
                [ ("op", Obs.Json.Str "submit");
                  ("size", Obs.Json.Num (float_of_int size));
                  ("runtime", Obs.Json.Num runtime) ]
                @ (match est_runtime with
                  | Some e -> [ ("est_runtime", Obs.Json.Num e) ]
                  | None -> [])
                @ (match bw_class with
                  | Some b -> [ ("bw", Obs.Json.Num b) ]
                  | None -> [])
            | Cancel { id } ->
                [ ("op", Obs.Json.Str "cancel");
                  ("id", Obs.Json.Num (float_of_int id)) ]
            | Fault { kind; target } ->
                let name, index =
                  match target with
                  | Trace.Faults.Node i -> ("node", i)
                  | Trace.Faults.Leaf_switch i -> ("leaf", i)
                  | _ -> Alcotest.fail "unused target in script"
                in
                [ ("op",
                   Obs.Json.Str
                     (match kind with Fail -> "fail" | Repair -> "repair"));
                  ("target", Obs.Json.Str name);
                  ("index", Obs.Json.Num (float_of_int index)) ]
            | Drain -> [ ("op", Obs.Json.Str "drain") ]
            | _ -> Alcotest.fail "unused op in script"
          in
          let b = Buffer.create 128 in
          Obs.Json.write b (fields @ [ ("at", Obs.Json.Num at) ]);
          let reply = rpc fd read (Buffer.contents b) in
          Alcotest.(check (float 0.0)) "ok" 1.0 (Obs.Json.num reply "ok");
          if Obs.Json.mem reply "fingerprint" then
            fp := Obs.Json.str reply "fingerprint")
        ops;
      Alcotest.(check string) "socket == in-process" expected !fp;
      Unix.close fd)

let test_daemon_survives_fuzz () =
  let p = params () in
  with_daemon ~p (fun sock pid ->
      let prng = Sim.Prng.create ~seed:5 in
      let fd = connect sock in
      let read = line_reader fd in
      for i = 1 to 300 do
        let len = Sim.Prng.int prng ~bound:200 in
        let junk =
          String.init len (fun _ ->
              match Char.chr (Sim.Prng.int prng ~bound:256) with
              | '\n' -> ' '
              | c -> c)
        in
        write_all fd (junk ^ "\n");
        (* Every line gets exactly one reply; malformed ones must be
           typed errors, never silence or a dead reactor. *)
        let reply = Obs.Json.parse_line (read ()) in
        if Obs.Json.num reply "ok" = 0.0 then
          Alcotest.(check bool)
            (Printf.sprintf "typed error %d" i)
            true
            (Obs.Json.mem reply "error")
      done;
      (* The reactor is still serving. *)
      let pong = rpc fd read "{\"op\":\"ping\",\"rid\":\"alive\"}" in
      Alcotest.(check (float 0.0)) "pong" 1.0 (Obs.Json.num pong "ok");
      Alcotest.(check string) "rid echo" "alive" (Obs.Json.str pong "rid");
      Unix.kill pid 0 (* still alive *);
      Unix.close fd)

let test_daemon_rejects_oversize_line () =
  let p = params () in
  with_daemon ~p (fun sock _pid ->
      let fd = connect sock in
      let read = line_reader fd in
      write_all fd (String.make 70_000 'a');
      (* 70 000 > max_line without a newline: rejected mid-stream. *)
      let reply = Obs.Json.parse_line (read ()) in
      Alcotest.(check (float 0.0)) "rejected" 0.0 (Obs.Json.num reply "ok");
      Alcotest.(check string) "parse error" "parse"
        (Obs.Json.str reply "error");
      Unix.close fd;
      (* A fresh connection still works. *)
      let fd2 = connect sock in
      let read2 = line_reader fd2 in
      let pong = rpc fd2 read2 "{\"op\":\"ping\"}" in
      Alcotest.(check (float 0.0)) "fresh pong" 1.0 (Obs.Json.num pong "ok");
      Unix.close fd2)

let test_daemon_rid_dedup () =
  let p = params () in
  with_daemon ~p (fun sock _pid ->
      let fd = connect sock in
      let read = line_reader fd in
      let line =
        "{\"op\":\"submit\",\"size\":4,\"runtime\":100,\"rid\":\"once\"}"
      in
      let r1 = rpc fd read line in
      let r2 = rpc fd read line in
      Alcotest.(check (float 0.0)) "first ok" 1.0 (Obs.Json.num r1 "ok");
      Alcotest.(check (float 0.0)) "retry ok" 1.0 (Obs.Json.num r2 "ok");
      Alcotest.(check (float 0.0))
        "retry suppressed, same seq" (Obs.Json.num r1 "seq")
        (Obs.Json.num r2 "seq");
      Alcotest.(check (float 0.0)) "flagged duplicate" 1.0
        (Obs.Json.num r2 "duplicate");
      let st = rpc fd read "{\"op\":\"status\"}" in
      Alcotest.(check (float 0.0)) "only one op journaled" 0.0
        (Obs.Json.num st "seq");
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Sweep interruption                                                   *)
(* ------------------------------------------------------------------ *)

let test_sweep_interrupt_resume () =
  let w = Trace.Synthetic.synth ~mean_size:16 ~n_jobs:25 ~seed:9 ~max_size:128 in
  let cells =
    Array.of_list
      (List.map
         (fun a -> Sched.Sweep.cell ~radix a w)
         Sched.Allocator.all)
  in
  let fresh = Sched.Sweep.run ~jobs:1 cells in
  with_tmpdir (fun dir ->
      let manifest = Filename.concat dir "man.jsonl" in
      (* Stop after the first cell: polled before each start, so cell 0
         runs and journals, cell 1 never begins. *)
      let polls = Atomic.make 0 in
      let should_stop () = Atomic.fetch_and_add polls 1 >= 1 in
      (match Sched.Sweep.run ~jobs:1 ~manifest ~should_stop cells with
      | _ -> Alcotest.fail "expected Interrupted"
      | exception Sched.Sweep.Interrupted -> ());
      (match Sched.Sweep.load_manifest manifest with
      | Ok m ->
          Alcotest.(check int) "one row journaled" 1 (List.length m.rows);
          Alcotest.(check int) "no corruption" 0 m.corrupt
      | Error m -> Alcotest.failf "manifest unreadable: %s" m);
      let resumed = Sched.Sweep.run ~jobs:1 ~manifest cells in
      Alcotest.(check bool) "cell 0 restored" true resumed.(0).restored;
      Array.iteri
        (fun i (r : Sched.Sweep.result) ->
          Alcotest.(check string)
            (Printf.sprintf "cell %d fingerprint" i)
            (Sched.Metrics.fingerprint fresh.(i).metrics)
            (Sched.Metrics.fingerprint r.metrics))
        resumed)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal interior corruption" `Quick test_wal_mid_corruption;
    Alcotest.test_case "wal sequence gap" `Quick test_wal_seq_gap;
    Alcotest.test_case "wal gc" `Quick test_wal_gc;
    Alcotest.test_case "wal empty / fully torn" `Quick
      test_wal_empty_and_fully_torn;
    Alcotest.test_case "protocol fuzz never raises" `Quick test_protocol_fuzz;
    Alcotest.test_case "protocol typed errors" `Quick
      test_protocol_typed_errors;
    Alcotest.test_case "protocol versioning" `Quick test_protocol_versioning;
    Alcotest.test_case "core replay equivalence (all schemes)" `Quick
      test_core_replay_equivalence;
    Alcotest.test_case "crash at every point (jigsaw, faulty)" `Quick
      test_crash_every_point;
    Alcotest.test_case "resize ops survive crash recovery" `Quick
      test_resize_crash_recovery;
    Alcotest.test_case "random crashes, all schemes" `Slow
      test_crash_random_all_schemes;
    Alcotest.test_case "corrupt checkpoint fallback" `Quick
      test_checkpoint_fallback;
    Alcotest.test_case "daemon socket parity" `Quick test_daemon_socket_parity;
    Alcotest.test_case "daemon survives fuzz" `Quick test_daemon_survives_fuzz;
    Alcotest.test_case "daemon rejects oversize line" `Quick
      test_daemon_rejects_oversize_line;
    Alcotest.test_case "daemon rid dedup" `Quick test_daemon_rid_dedup;
    Alcotest.test_case "sweep interrupt + resume" `Quick
      test_sweep_interrupt_resume;
  ]
