let eps = 1e-9

(* Derived availability summaries are maintained incrementally on every
   claim/release so allocator probes never rescan the machine:

   - [slot_mask]:      per leaf, bitmask of free node slots;
   - [leaf_full_mask]: per leaf, bitmask of uplink indices whose cable is
                       at full capacity (remaining >= 1.0 - eps);
   - [l2_full_mask]:   per L2 switch, same for its spine uplinks;
   - [pod_free_leaves]: per pod, count of fully-free leaves (all nodes
                       free and all uplinks at full capacity).

   The float capacity arrays remain the source of truth; the masks cache
   exactly the predicate the demand-1.0 queries would recompute, so a
   cached answer is bit-identical to a from-scratch scan (the property
   test in test_incremental.ml checks this).

   Failures are a ref-counted overlay on top of the claim accounting: a
   resource with a positive failure count is withdrawn from every
   availability summary (so allocators avoid it through their normal
   mask/summary probes) but keeps its logical claim state, so a fault
   landing on claimed resources and the eventual release/repair compose
   in either order.  The counts make overlapping faults (a node failed
   both individually and via its leaf switch) repair correctly: the
   resource returns only when every covering fault is repaired. *)
(* Per-demand cached feasibility summaries (see [pod_candidates] /
   [pod_spine_masks] below).  One record per distinct bandwidth demand;
   the workload draws demands from a handful of classes, so the list
   stays tiny.  Staleness is tracked per pod against the pod generation
   counters: a mutation bumps the touched pod's generation, and the next
   consultation of that pod recomputes just that pod's row. *)
type feas = {
  f_demand : float;
  cand : int array array; (* pod -> counts over n = 1..m1 *)
  cand_gen : int array; (* pod -> pod_node_gen stamp; -1 = never *)
  spine : int array array; (* pod -> per-L2-index spine up-mask *)
  spine_gen : int array; (* pod -> pod_l2_gen stamp; -1 = never *)
}

type ext = ..

type t = {
  topo : Topology.t;
  free : Sim.Bitset.t; (* node id -> available (not claimed, not failed) *)
  claimed : Sim.Bitset.t; (* node id -> held by a live allocation *)
  nonempty_leaves : Sim.Bitset.t; (* leaf id -> >= 1 free node *)
  free_per_leaf : int array;
  slot_mask : int array; (* leaf -> bitmask of free slots *)
  leaf_up : float array; (* leaf-l2 cable -> remaining capacity *)
  l2_up : float array; (* l2-spine cable -> remaining capacity *)
  leaf_full_mask : int array; (* leaf -> full-capacity uplink indices *)
  l2_full_mask : int array; (* l2 -> full-capacity spine indices *)
  pod_free_leaves : int array; (* pod -> # fully-free leaves *)
  node_fail : int array; (* node -> # live faults covering it *)
  leaf_cable_fail : int array; (* leaf-l2 cable -> # live faults *)
  l2_cable_fail : int array; (* l2-spine cable -> # live faults *)
  pod_node_gen : int array; (* pod -> leaf-level availability mutations *)
  pod_l2_gen : int array; (* pod -> L2-spine availability mutations *)
  mutable failed_nodes : int; (* # nodes with node_fail > 0 *)
  mutable failed_claimed : int; (* # failed nodes also claimed *)
  mutable busy : int;
  mutable claims : int; (* # successful claims since creation *)
  mutable releases : int; (* # releases since creation *)
  mutable failures : int; (* # fail operations since creation *)
  mutable repairs : int; (* # repair operations since creation *)
  mutable clones : int; (* # clones taken of this state *)
  mutable feas_caches : feas list; (* per-demand candidate summaries *)
  mutable ext_cache : ext option; (* allocator-owned cache slot *)
}

let create topo =
  let free = Sim.Bitset.create (Topology.num_nodes topo) in
  Sim.Bitset.fill free;
  let nonempty_leaves = Sim.Bitset.create (Topology.num_leaves topo) in
  Sim.Bitset.fill nonempty_leaves;
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  {
    topo;
    free;
    claimed = Sim.Bitset.create (Topology.num_nodes topo);
    nonempty_leaves;
    free_per_leaf = Array.make (Topology.num_leaves topo) m1;
    slot_mask = Array.make (Topology.num_leaves topo) ((1 lsl m1) - 1);
    leaf_up = Array.make (Topology.num_leaf_l2_cables topo) 1.0;
    l2_up = Array.make (Topology.num_l2_spine_cables topo) 1.0;
    leaf_full_mask = Array.make (Topology.num_leaves topo) ((1 lsl m1) - 1);
    l2_full_mask = Array.make (Topology.num_l2 topo) ((1 lsl m2) - 1);
    pod_free_leaves = Array.make (Topology.pods topo) m2;
    node_fail = Array.make (Topology.num_nodes topo) 0;
    leaf_cable_fail = Array.make (Topology.num_leaf_l2_cables topo) 0;
    l2_cable_fail = Array.make (Topology.num_l2_spine_cables topo) 0;
    pod_node_gen = Array.make (Topology.pods topo) 0;
    pod_l2_gen = Array.make (Topology.pods topo) 0;
    failed_nodes = 0;
    failed_claimed = 0;
    busy = 0;
    claims = 0;
    releases = 0;
    failures = 0;
    repairs = 0;
    clones = 0;
    feas_caches = [];
    ext_cache = None;
  }

let topo t = t.topo

let clone t =
  t.clones <- t.clones + 1;
  {
    topo = t.topo;
    free = Sim.Bitset.copy t.free;
    claimed = Sim.Bitset.copy t.claimed;
    nonempty_leaves = Sim.Bitset.copy t.nonempty_leaves;
    free_per_leaf = Array.copy t.free_per_leaf;
    slot_mask = Array.copy t.slot_mask;
    leaf_up = Array.copy t.leaf_up;
    l2_up = Array.copy t.l2_up;
    leaf_full_mask = Array.copy t.leaf_full_mask;
    l2_full_mask = Array.copy t.l2_full_mask;
    pod_free_leaves = Array.copy t.pod_free_leaves;
    node_fail = Array.copy t.node_fail;
    leaf_cable_fail = Array.copy t.leaf_cable_fail;
    l2_cable_fail = Array.copy t.l2_cable_fail;
    pod_node_gen = Array.copy t.pod_node_gen;
    pod_l2_gen = Array.copy t.pod_l2_gen;
    failed_nodes = t.failed_nodes;
    failed_claimed = t.failed_claimed;
    busy = t.busy;
    claims = t.claims;
    releases = t.releases;
    failures = t.failures;
    repairs = t.repairs;
    clones = 0;
    (* Caches stay with their state: the copy starts cold, so stamped
       entries can never validate against another state's counters. *)
    feas_caches = [];
    ext_cache = None;
  }

(* Refresh [dst] to mirror [src] without allocating: the double-buffered
   scratch primitive behind zero-clone reservation search.  Blits every
   array, copies every scalar, and drops [dst]'s caches (their stamps
   would otherwise validate against [src]'s copied generation counters
   while the cached rows still describe [dst]'s previous contents).
   Deliberately does NOT count as a clone: the clone counter measures
   per-probe state duplication, which is exactly what this avoids. *)
let copy_into ~src ~dst =
  if
    src.topo != dst.topo
    && (Topology.m1 src.topo <> Topology.m1 dst.topo
       || Topology.m2 src.topo <> Topology.m2 dst.topo
       || Topology.m3 src.topo <> Topology.m3 dst.topo)
  then invalid_arg "State.copy_into: topology mismatch";
  Sim.Bitset.blit ~src:src.free ~dst:dst.free;
  Sim.Bitset.blit ~src:src.claimed ~dst:dst.claimed;
  Sim.Bitset.blit ~src:src.nonempty_leaves ~dst:dst.nonempty_leaves;
  let blit a b = Array.blit a 0 b 0 (Array.length a) in
  blit src.free_per_leaf dst.free_per_leaf;
  blit src.slot_mask dst.slot_mask;
  blit src.leaf_up dst.leaf_up;
  blit src.l2_up dst.l2_up;
  blit src.leaf_full_mask dst.leaf_full_mask;
  blit src.l2_full_mask dst.l2_full_mask;
  blit src.pod_free_leaves dst.pod_free_leaves;
  blit src.node_fail dst.node_fail;
  blit src.leaf_cable_fail dst.leaf_cable_fail;
  blit src.l2_cable_fail dst.l2_cable_fail;
  blit src.pod_node_gen dst.pod_node_gen;
  blit src.pod_l2_gen dst.pod_l2_gen;
  dst.failed_nodes <- src.failed_nodes;
  dst.failed_claimed <- src.failed_claimed;
  dst.busy <- src.busy;
  dst.claims <- src.claims;
  dst.releases <- src.releases;
  dst.failures <- src.failures;
  dst.repairs <- src.repairs;
  dst.feas_caches <- [];
  dst.ext_cache <- None

let node_free t n = Sim.Bitset.mem t.free n
let node_claimed t n = Sim.Bitset.mem t.claimed n
let iter_free_nodes t ~f = Sim.Bitset.iter_set t.free ~f
let next_nonempty_leaf t ~from = Sim.Bitset.next_set_from t.nonempty_leaves from
let any_claimed_in t nodes = Sim.Bitset.intersects_array t.claimed nodes

(* Raw claim accounting, ignoring the failure overlay: a cable is
   "claimed" iff some live allocation holds part of it.  Exactly the
   question the fault path asks ("can this fault possibly kill a job?"),
   which [*_up_remaining] cannot answer once the fault is applied. *)
let leaf_cable_claimed t c = t.leaf_up.(c) < 1.0 -. eps
let l2_cable_claimed t c = t.l2_up.(c) < 1.0 -. eps
let node_failed t n = t.node_fail.(n) > 0
let leaf_cable_failed t c = t.leaf_cable_fail.(c) > 0
let l2_cable_failed t c = t.l2_cable_fail.(c) > 0
let free_nodes_on_leaf t l = t.free_per_leaf.(l)
let free_slot_mask t leaf = t.slot_mask.(leaf)

(* Remaining capacities are reported through the failure overlay: a
   failed cable has no usable capacity, whatever its claim accounting
   says. *)
let leaf_up_remaining t ~cable =
  if t.leaf_cable_fail.(cable) > 0 then 0.0 else t.leaf_up.(cable)

let l2_up_remaining t ~cable =
  if t.l2_cable_fail.(cable) > 0 then 0.0 else t.l2_up.(cable)

let leaf_up_mask t ~leaf ~demand =
  if demand = 1.0 then t.leaf_full_mask.(leaf)
  else begin
    let m1 = Topology.m1 t.topo in
    let mask = ref 0 in
    for i = 0 to m1 - 1 do
      let c = Topology.leaf_l2_cable t.topo ~leaf ~l2_index:i in
      if t.leaf_cable_fail.(c) = 0 && t.leaf_up.(c) >= demand -. eps then
        mask := !mask lor (1 lsl i)
    done;
    !mask
  end

let l2_up_mask t ~l2 ~demand =
  if demand = 1.0 then t.l2_full_mask.(l2)
  else begin
    let m2 = Topology.m2 t.topo in
    let mask = ref 0 in
    for j = 0 to m2 - 1 do
      let c = Topology.l2_spine_cable t.topo ~l2 ~spine_index:j in
      if t.l2_cable_fail.(c) = 0 && t.l2_up.(c) >= demand -. eps then
        mask := !mask lor (1 lsl j)
    done;
    !mask
  end

let leaf_fully_free t leaf =
  let m1 = Topology.m1 t.topo in
  t.free_per_leaf.(leaf) = m1 && t.leaf_full_mask.(leaf) = (1 lsl m1) - 1

let pod_fully_free_leaves t ~pod = t.pod_free_leaves.(pod)

(* Failures count as claims and repairs as releases for generation
   purposes: both pairs move resources in the same direction, which is
   exactly the monotonicity the no-fit memo layered above relies on. *)
let generation t = t.claims + t.releases + t.failures + t.repairs
let claim_generation t = t.claims + t.failures
let release_generation t = t.releases + t.repairs

let claim_count t = t.claims
let release_count t = t.releases
let failure_count t = t.failures
let repair_count t = t.repairs
let clone_count t = t.clones

let set_op_counters t ~claims ~releases ~failures ~repairs ~clones =
  if claims < 0 || releases < 0 || failures < 0 || repairs < 0 || clones < 0
  then invalid_arg "State.set_op_counters: negative counter";
  t.claims <- claims;
  t.releases <- releases;
  t.failures <- failures;
  t.repairs <- repairs;
  t.clones <- clones
let failed_node_count t = t.failed_nodes
let healthy_node_count t = Topology.num_nodes t.topo - t.failed_nodes

(* Every repair operation retires exactly one live fault (repairing a
   non-failed resource raises), so the op counters double as a live-fault
   census covering nodes and both cable tiers. *)
let has_failures t = t.failures > t.repairs

let total_free_nodes t =
  Topology.num_nodes t.topo - t.busy - (t.failed_nodes - t.failed_claimed)

let busy_node_count t = t.busy

let node_utilization t =
  float_of_int t.busy /. float_of_int (Topology.num_nodes t.topo)

(* For error messages: the precise current state of a resource. *)
let describe_node t n =
  match (node_claimed t n, node_failed t n) with
  | true, true -> "failed while claimed"
  | true, false -> "claimed"
  | false, true -> "failed"
  | false, false -> "free"

let describe_leaf_cable t c =
  if leaf_cable_failed t c then Printf.sprintf "failed (%.3f claimed-free)" t.leaf_up.(c)
  else Printf.sprintf "%.3f remaining" t.leaf_up.(c)

let describe_l2_cable t c =
  if l2_cable_failed t c then Printf.sprintf "failed (%.3f claimed-free)" t.l2_up.(c)
  else Printf.sprintf "%.3f remaining" t.l2_up.(c)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

let pod_delta t leaf was =
  let now = leaf_fully_free t leaf in
  if was <> now then begin
    let pod = Topology.leaf_pod t.topo leaf in
    t.pod_free_leaves.(pod) <- t.pod_free_leaves.(pod) + (if now then 1 else -1)
  end

(* Generation bumps: every mutation that can change a pod's leaf-level
   availability (free counts, slot masks, leaf-uplink capacity or
   failure overlay) advances that pod's node generation; L2-spine
   capacity and failure changes advance the pod's L2 generation.  The
   cached summaries below validate per pod against these stamps. *)
let bump_pod_node t leaf =
  let pod = Topology.leaf_pod t.topo leaf in
  t.pod_node_gen.(pod) <- t.pod_node_gen.(pod) + 1

let bump_pod_l2 t l2 =
  let pod = Topology.l2_pod t.topo l2 in
  t.pod_l2_gen.(pod) <- t.pod_l2_gen.(pod) + 1

(* Withdraw / restore a node from the availability summaries.  Claim
   state is tracked separately ([claimed]): both claiming and failing a
   node take it, and it comes back only when neither applies. *)
let take_node t n =
  let leaf = Topology.node_leaf t.topo n in
  let was = leaf_fully_free t leaf in
  Sim.Bitset.remove t.free n;
  t.free_per_leaf.(leaf) <- t.free_per_leaf.(leaf) - 1;
  if t.free_per_leaf.(leaf) = 0 then Sim.Bitset.remove t.nonempty_leaves leaf;
  t.slot_mask.(leaf) <- t.slot_mask.(leaf) land lnot (1 lsl Topology.node_slot t.topo n);
  pod_delta t leaf was;
  bump_pod_node t leaf

let give_node t n =
  let leaf = Topology.node_leaf t.topo n in
  let was = leaf_fully_free t leaf in
  Sim.Bitset.add t.free n;
  t.free_per_leaf.(leaf) <- t.free_per_leaf.(leaf) + 1;
  if t.free_per_leaf.(leaf) = 1 then Sim.Bitset.add t.nonempty_leaves leaf;
  t.slot_mask.(leaf) <- t.slot_mask.(leaf) lor (1 lsl Topology.node_slot t.topo n);
  pod_delta t leaf was;
  bump_pod_node t leaf

(* The full-capacity mask bit is the conjunction of the claim accounting
   (remaining >= 1.0) and the failure overlay (no live fault). *)
let set_leaf_up t c v =
  let leaf = Topology.leaf_l2_cable_leaf t.topo c in
  let was = leaf_fully_free t leaf in
  t.leaf_up.(c) <- v;
  let bit = 1 lsl Topology.leaf_l2_cable_l2_index t.topo c in
  if v >= 1.0 -. eps && t.leaf_cable_fail.(c) = 0 then
    t.leaf_full_mask.(leaf) <- t.leaf_full_mask.(leaf) lor bit
  else t.leaf_full_mask.(leaf) <- t.leaf_full_mask.(leaf) land lnot bit;
  pod_delta t leaf was;
  bump_pod_node t leaf

let set_l2_up t c v =
  let l2 = Topology.l2_spine_cable_l2 t.topo c in
  t.l2_up.(c) <- v;
  let bit = 1 lsl Topology.l2_spine_cable_spine_index t.topo c in
  if v >= 1.0 -. eps && t.l2_cable_fail.(c) = 0 then
    t.l2_full_mask.(l2) <- t.l2_full_mask.(l2) lor bit
  else t.l2_full_mask.(l2) <- t.l2_full_mask.(l2) land lnot bit;
  bump_pod_l2 t l2

(* ------------------------------------------------------------------ *)
(* Claim / release                                                     *)
(* ------------------------------------------------------------------ *)

let no_dups arr =
  let module IS = Set.Make (Int) in
  let s = IS.of_list (Array.to_list arr) in
  IS.cardinal s = Array.length arr

let check_claim t (a : Alloc.t) =
  if a.bw <= 0.0 || a.bw > 1.0 +. eps then Error "bandwidth demand out of (0,1]"
  else if not (no_dups a.nodes) then Error "duplicate node in allocation"
  else if not (no_dups a.leaf_cables) then Error "duplicate leaf cable"
  else if not (no_dups a.l2_cables) then Error "duplicate l2 cable"
  else begin
    let bad = ref None in
    Array.iter
      (fun n ->
        if !bad = None && not (Sim.Bitset.mem t.free n) then
          bad :=
            Some (Printf.sprintf "node %d is not free (%s)" n (describe_node t n)))
      a.nodes;
    Array.iter
      (fun c ->
        if !bad = None && leaf_up_remaining t ~cable:c < a.bw -. eps then
          bad :=
            Some
              (Printf.sprintf "leaf cable %d lacks capacity for demand %g (%s)"
                 c a.bw (describe_leaf_cable t c)))
      a.leaf_cables;
    Array.iter
      (fun c ->
        if !bad = None && l2_up_remaining t ~cable:c < a.bw -. eps then
          bad :=
            Some
              (Printf.sprintf "l2 cable %d lacks capacity for demand %g (%s)" c
                 a.bw (describe_l2_cable t c)))
      a.l2_cables;
    match !bad with Some m -> Error m | None -> Ok ()
  end

let apply_claim t (a : Alloc.t) =
  Array.iter
    (fun n ->
      take_node t n;
      Sim.Bitset.add t.claimed n)
    a.nodes;
  Array.iter (fun c -> set_leaf_up t c (t.leaf_up.(c) -. a.bw)) a.leaf_cables;
  Array.iter (fun c -> set_l2_up t c (t.l2_up.(c) -. a.bw)) a.l2_cables;
  t.busy <- t.busy + Array.length a.nodes;
  t.claims <- t.claims + 1

(* The full claim validation is O(n log n) in the allocation size and
   dominated simulator hot loops; callers that have already proved the
   allocation legal (the simulator claims exactly what a pure probe on
   the same state proposed) pass ~validate:false.  JIGSAW_VALIDATE=1
   forces validation everywhere regardless.

   Evaluated eagerly at module init: [Lazy.force] is not domain-safe
   (concurrent forcing raises [Lazy.Undefined]), and the parallel sweep
   hits this flag from every worker domain. *)
let forced_validation = Sys.getenv_opt "JIGSAW_VALIDATE" = Some "1"

let claim ?(validate = true) t (a : Alloc.t) =
  if validate || forced_validation then
    match check_claim t a with
    | Error _ as e -> e
    | Ok () ->
        apply_claim t a;
        Ok ()
  else begin
    apply_claim t a;
    Ok ()
  end

let claim_exn ?validate t a =
  match claim ?validate t a with
  | Ok () -> ()
  | Error m -> invalid_arg ("State.claim_exn: " ^ m)

let release t (a : Alloc.t) =
  Array.iter
    (fun n ->
      if not (Sim.Bitset.mem t.claimed n) then
        invalid_arg
          (Printf.sprintf "State.release: node %d is not claimed (%s)" n
             (describe_node t n)))
    a.nodes;
  Array.iter
    (fun c ->
      if t.leaf_up.(c) +. a.bw > 1.0 +. eps then
        invalid_arg
          (Printf.sprintf
             "State.release: leaf cable %d over-released by demand %g (%s)" c
             a.bw (describe_leaf_cable t c)))
    a.leaf_cables;
  Array.iter
    (fun c ->
      if t.l2_up.(c) +. a.bw > 1.0 +. eps then
        invalid_arg
          (Printf.sprintf
             "State.release: l2 cable %d over-released by demand %g (%s)" c a.bw
             (describe_l2_cable t c)))
    a.l2_cables;
  Array.iter
    (fun n ->
      Sim.Bitset.remove t.claimed n;
      (* A node failed while claimed stays withdrawn; it returns to the
         free summaries only on repair. *)
      if t.node_fail.(n) = 0 then give_node t n
      else t.failed_claimed <- t.failed_claimed - 1)
    a.nodes;
  Array.iter
    (fun c -> set_leaf_up t c (Float.min 1.0 (t.leaf_up.(c) +. a.bw)))
    a.leaf_cables;
  Array.iter
    (fun c -> set_l2_up t c (Float.min 1.0 (t.l2_up.(c) +. a.bw)))
    a.l2_cables;
  t.busy <- t.busy - Array.length a.nodes;
  t.releases <- t.releases + 1

(* ------------------------------------------------------------------ *)
(* Fail / repair                                                       *)
(* ------------------------------------------------------------------ *)

let fail_node t n =
  let c = t.node_fail.(n) in
  t.node_fail.(n) <- c + 1;
  if c = 0 then begin
    t.failed_nodes <- t.failed_nodes + 1;
    if Sim.Bitset.mem t.claimed n then t.failed_claimed <- t.failed_claimed + 1
    else take_node t n
  end;
  t.failures <- t.failures + 1

let repair_node t n =
  let c = t.node_fail.(n) in
  if c = 0 then
    invalid_arg
      (Printf.sprintf "State.repair_node: node %d is not failed (%s)" n
         (describe_node t n));
  t.node_fail.(n) <- c - 1;
  if c = 1 then begin
    t.failed_nodes <- t.failed_nodes - 1;
    if Sim.Bitset.mem t.claimed n then t.failed_claimed <- t.failed_claimed - 1
    else give_node t n
  end;
  t.repairs <- t.repairs + 1

let fail_leaf_cable t c =
  let k = t.leaf_cable_fail.(c) in
  t.leaf_cable_fail.(c) <- k + 1;
  if k = 0 then begin
    let leaf = Topology.leaf_l2_cable_leaf t.topo c in
    let was = leaf_fully_free t leaf in
    let bit = 1 lsl Topology.leaf_l2_cable_l2_index t.topo c in
    t.leaf_full_mask.(leaf) <- t.leaf_full_mask.(leaf) land lnot bit;
    pod_delta t leaf was;
    bump_pod_node t leaf
  end;
  t.failures <- t.failures + 1

let repair_leaf_cable t c =
  let k = t.leaf_cable_fail.(c) in
  if k = 0 then
    invalid_arg
      (Printf.sprintf "State.repair_leaf_cable: cable %d is not failed (%s)" c
         (describe_leaf_cable t c));
  t.leaf_cable_fail.(c) <- k - 1;
  if k = 1 then begin
    let leaf = Topology.leaf_l2_cable_leaf t.topo c in
    let was = leaf_fully_free t leaf in
    if t.leaf_up.(c) >= 1.0 -. eps then begin
      let bit = 1 lsl Topology.leaf_l2_cable_l2_index t.topo c in
      t.leaf_full_mask.(leaf) <- t.leaf_full_mask.(leaf) lor bit
    end;
    pod_delta t leaf was;
    bump_pod_node t leaf
  end;
  t.repairs <- t.repairs + 1

let fail_l2_cable t c =
  let k = t.l2_cable_fail.(c) in
  t.l2_cable_fail.(c) <- k + 1;
  if k = 0 then begin
    let l2 = Topology.l2_spine_cable_l2 t.topo c in
    let bit = 1 lsl Topology.l2_spine_cable_spine_index t.topo c in
    t.l2_full_mask.(l2) <- t.l2_full_mask.(l2) land lnot bit;
    bump_pod_l2 t l2
  end;
  t.failures <- t.failures + 1

let repair_l2_cable t c =
  let k = t.l2_cable_fail.(c) in
  if k = 0 then
    invalid_arg
      (Printf.sprintf "State.repair_l2_cable: cable %d is not failed (%s)" c
         (describe_l2_cable t c));
  t.l2_cable_fail.(c) <- k - 1;
  if k = 1 then begin
    let l2 = Topology.l2_spine_cable_l2 t.topo c in
    if t.l2_up.(c) >= 1.0 -. eps then begin
      let bit = 1 lsl Topology.l2_spine_cable_spine_index t.topo c in
      t.l2_full_mask.(l2) <- t.l2_full_mask.(l2) lor bit
    end;
    (* Even without the full-capacity bit, sub-1.0 demand masks change
       the moment the last covering fault clears. *)
    bump_pod_l2 t l2
  end;
  t.repairs <- t.repairs + 1

let snapshot_free_nodes t = Sim.Bitset.copy t.free

(* ------------------------------------------------------------------ *)
(* Cached per-pod feasibility summaries                                 *)
(* ------------------------------------------------------------------ *)

let pod_node_generation t ~pod = t.pod_node_gen.(pod)
let pod_l2_generation t ~pod = t.pod_l2_gen.(pod)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let feas_for t demand =
  let rec find = function
    | f :: rest -> if f.f_demand = demand then Some f else find rest
    | [] -> None
  in
  match find t.feas_caches with
  | Some f -> f
  | None ->
      let pods = Topology.pods t.topo in
      let m1 = Topology.m1 t.topo in
      let f =
        {
          f_demand = demand;
          cand = Array.init pods (fun _ -> Array.make m1 0);
          cand_gen = Array.make pods (-1);
          spine = Array.init pods (fun _ -> Array.make m1 0);
          spine_gen = Array.make pods (-1);
        }
      in
      t.feas_caches <- f :: t.feas_caches;
      f

let pod_candidates t ~pod ~demand =
  let f = feas_for t demand in
  let gen = t.pod_node_gen.(pod) in
  let counts = f.cand.(pod) in
  if f.cand_gen.(pod) <> gen then begin
    (* counts.(n-1) = number of leaves in the pod able to carry n nodes
       at this demand (free nodes AND uplink-capable indices both >= n).
       Built as a histogram over each leaf's capacity followed by a
       suffix sum — O(m2 + m1) per refresh instead of O(m2 * m1). *)
    let m1 = Topology.m1 t.topo and m2 = Topology.m2 t.topo in
    Array.fill counts 0 m1 0;
    for l = 0 to m2 - 1 do
      let leaf = Topology.leaf_of_coords t.topo ~pod ~leaf:l in
      let free = t.free_per_leaf.(leaf) in
      let cap = popcount (leaf_up_mask t ~leaf ~demand) in
      let upto = Stdlib.min (Stdlib.min free cap) m1 in
      if upto > 0 then counts.(upto - 1) <- counts.(upto - 1) + 1
    done;
    let acc = ref 0 in
    for n = m1 - 1 downto 0 do
      acc := !acc + counts.(n);
      counts.(n) <- !acc
    done;
    f.cand_gen.(pod) <- gen
  end;
  counts

let pod_spine_masks t ~pod ~demand =
  let f = feas_for t demand in
  let gen = t.pod_l2_gen.(pod) in
  let masks = f.spine.(pod) in
  if f.spine_gen.(pod) <> gen then begin
    let m1 = Topology.m1 t.topo in
    for i = 0 to m1 - 1 do
      let l2 = Topology.l2_of_coords t.topo ~pod ~index:i in
      masks.(i) <- l2_up_mask t ~l2 ~demand
    done;
    f.spine_gen.(pod) <- gen
  end;
  masks

let get_ext t = t.ext_cache
let set_ext t e = t.ext_cache <- e
