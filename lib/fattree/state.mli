(** Mutable cluster resource state.

    Tracks which nodes are busy and how much capacity remains on every
    leaf–L2 and L2–spine cable.  Cable capacity is normalized: 1.0 is the
    full usable capacity of a cable.  Exclusive allocations demand 1.0;
    the link-sharing scheduler (LC+S) demands a fraction.

    {!claim} is atomic: it either commits the whole allocation or rejects
    it and leaves the state untouched.  This is what makes the scheduler's
    isolation guarantee checkable — double allocation of a node or
    over-subscription of a cable is a claim-time error, not a silent
    overlap.

    Failures are a ref-counted overlay on the claim accounting
    ({!fail_node} and friends): a failed resource is withdrawn from every
    availability summary, so allocators avoid it through their normal
    mask/summary probes, while its claim state is preserved — a fault
    landing on claimed resources and the eventual release/repair compose
    in either order.  Ref counting makes overlapping faults (a node
    failed both individually and via its whole leaf switch) repair
    correctly: a resource returns only when every covering fault is
    repaired. *)

type t

val create : Topology.t -> t
(** [create topo] is a fully free cluster. *)

val topo : t -> Topology.t
val clone : t -> t

val copy_into : src:t -> dst:t -> unit
(** [copy_into ~src ~dst] refreshes [dst] to mirror [src] without
    allocating — the double-buffered scratch primitive behind zero-clone
    reservation search.  The two states must share topology dimensions.
    [dst]'s cached summaries ({!pod_candidates} rows, the {!ext} slot)
    are dropped, and the operation does {e not} count as a {!clone} in
    either state's tally. *)

(** {1 Nodes} *)

val node_free : t -> int -> bool
(** Available: neither claimed nor failed. *)

val node_claimed : t -> int -> bool
(** Held by a live allocation (possibly also failed). *)

val iter_free_nodes : t -> f:(int -> unit) -> unit
(** Visit every available node in increasing id order — a word-skipping
    walk of the free bitset, O(words + free nodes). *)

val next_nonempty_leaf : t -> from:int -> int option
(** Smallest leaf id [>= from] with at least one free node, found by a
    word-level walk of the maintained nonempty-leaf bitset — on a
    saturated machine, allocator leaf scans skip whole busy regions 63
    leaves at a time instead of consulting each leaf's free count. *)

val any_claimed_in : t -> int array -> bool
(** True iff any listed node is held by a live allocation;
    short-circuits.  The fault path uses it to skip the running-job
    scan when a fault lands entirely on idle resources. *)

val free_nodes_on_leaf : t -> int -> int
(** Number of free nodes on a (global) leaf. *)

val free_slot_mask : t -> int -> int
(** [free_slot_mask t leaf] is the bitmask (over slots [0 .. m1-1]) of free
    nodes on [leaf]. *)

val leaf_fully_free : t -> int -> bool
(** All nodes free {e and} all uplink cables at full capacity.  O(1):
    answered from the incrementally maintained summaries. *)

val pod_fully_free_leaves : t -> pod:int -> int
(** Number of fully-free leaves in [pod], maintained incrementally. *)

val total_free_nodes : t -> int
(** Nodes neither claimed nor failed. *)

val busy_node_count : t -> int
(** Claimed nodes (failed-while-claimed ones included). *)

val failed_node_count : t -> int
(** Nodes currently covered by at least one live fault. *)

val healthy_node_count : t -> int
(** [num_nodes - failed_node_count]: the degraded machine size, the
    denominator of failure-aware utilization metrics. *)

val has_failures : t -> bool
(** Any resource — node or cable of either tier — currently covered by a
    live fault.  Distinguishes a definitive placement failure (nothing
    withdrawn, the machine will never get bigger) from transient
    degradation that a repair may undo. *)

val node_utilization : t -> float
(** [busy_node_count / num_nodes]. *)

(** {1 Generations}

    Monotone mutation counters, for caches layered above the state (the
    scheduler's no-fit memo, incremental consistency checks).  A failed
    allocation probe stays valid while {!release_generation} is
    unchanged: claims and failures only remove resources; releases and
    repairs only add them back. *)

val generation : t -> int
(** Total claims + releases + failures + repairs since creation. *)

val claim_generation : t -> int
(** Resource-removing mutations: successful claims + fail operations. *)

val release_generation : t -> int
(** Resource-adding mutations: releases + repair operations. *)

val pod_node_generation : t -> pod:int -> int
(** Per-pod stamp advanced by every mutation that can change the pod's
    leaf-level availability: node take/give, leaf-uplink capacity
    changes, and leaf-cable fail/repair.  Caches over per-pod leaf
    summaries validate against it. *)

val pod_l2_generation : t -> pod:int -> int
(** Per-pod stamp advanced by every mutation that can change the pod's
    L2-to-spine availability: spine-uplink capacity changes and
    L2-cable fail/repair. *)

(** {1 Operation counters}

    The raw tallies behind the generations, exposed individually for
    profiling ([Obs.Prof]'s end-of-run ["state/*"] counters). *)

val claim_count : t -> int
val release_count : t -> int
val failure_count : t -> int
val repair_count : t -> int

val clone_count : t -> int
(** Clones taken {e of this state} ({!clone} resets the copy's tally to
    0) — the cost driver of reservation walks and probe validation. *)

val set_op_counters :
  t ->
  claims:int ->
  releases:int ->
  failures:int ->
  repairs:int ->
  clones:int ->
  unit
(** [set_op_counters t ...] overwrites the five operation tallies.  For
    checkpoint restore only: a restored state is rebuilt by replaying
    faults and re-claiming running allocations, which would otherwise
    leave the counters (and hence the generations that guard the no-fit
    memo, and the end-of-run ["state/*"] profile counters) different
    from the uninterrupted run's.  Raises [Invalid_argument] on a
    negative value. *)

(** {1 Cables}

    Remaining capacities are in [0, 1].  Masks report, per switch, which
    uplink indices have at least [demand] capacity remaining. *)

val leaf_up_remaining : t -> cable:int -> float
val l2_up_remaining : t -> cable:int -> float

val leaf_cable_claimed : t -> int -> bool
(** Raw claim accounting, failure overlay ignored: true iff a live
    allocation holds part of the cable.  Unlike [leaf_up_remaining],
    still meaningful after the cable has failed. *)

val l2_cable_claimed : t -> int -> bool

val leaf_up_mask : t -> leaf:int -> demand:float -> int
(** Bitmask over L2 indices [0 .. m1-1]. *)

val l2_up_mask : t -> l2:int -> demand:float -> int
(** Bitmask over spine indices [0 .. m2-1]. *)

(** {1 Claim / release} *)

val claim : ?validate:bool -> t -> Alloc.t -> (unit, string) result
(** [claim t a] atomically marks [a]'s nodes busy and subtracts [a.bw]
    from each listed cable.  Fails (leaving [t] unchanged) if any node is
    busy, any cable lacks capacity, or the allocation lists a node or
    cable twice.

    [~validate:false] skips those checks (the duplicate scan is
    O(n log n) and dominates simulator hot loops) — callers must have
    established legality themselves, e.g. by claiming exactly what a
    pure allocator probe against the same state proposed.  Setting the
    environment variable [JIGSAW_VALIDATE=1] re-enables validation
    everywhere, turning any illegal unchecked claim back into an
    error. *)

val claim_exn : ?validate:bool -> t -> Alloc.t -> unit
(** Like {!claim} but raises [Invalid_argument] on failure. *)

val release : t -> Alloc.t -> unit
(** [release t a] returns [a]'s resources.  Raises [Invalid_argument],
    naming the offending resource and its current state, if a node was
    not claimed or a cable's capacity would exceed 1.0 — that is, if [a]
    was not currently claimed.  Nodes of [a] that failed while claimed
    stay withdrawn from the availability summaries until repaired. *)

(** {1 Fail / repair}

    Each operation covers one resource with one fault (or removes one).
    Failing a free resource withdraws it from the availability summaries
    exactly like a claim; failing a claimed resource leaves the claim
    intact and the two overlays unwind independently.  All operations
    are O(1) against the incremental summaries. *)

val fail_node : t -> int -> unit
val repair_node : t -> int -> unit
(** Raises [Invalid_argument] if the node has no live fault. *)

val fail_leaf_cable : t -> int -> unit
val repair_leaf_cable : t -> int -> unit
val fail_l2_cable : t -> int -> unit
val repair_l2_cable : t -> int -> unit

val node_failed : t -> int -> bool
val leaf_cable_failed : t -> int -> bool
val l2_cable_failed : t -> int -> bool

val snapshot_free_nodes : t -> Sim.Bitset.t
(** A copy of the free-node set (for tests and diagnostics). *)

(** {1 Incremental feasibility summaries}

    Per-pod candidate structures maintained lazily against the pod
    generation counters: a probe consults the cached row; a mutation in
    the pod invalidates (only) that pod's row, which is rebuilt on its
    next consultation.  Answers are bit-identical to a from-scratch
    scan — the property tests in test_incremental.ml check this on
    random claim/release/fail/repair sequences. *)

val pod_candidates : t -> pod:int -> demand:float -> int array
(** [pod_candidates t ~pod ~demand].(n-1) is the number of leaves in
    [pod] that could carry [n] nodes at [demand]: free nodes >= n and
    at least [n] uplink indices with [demand] capacity remaining.  The
    returned array is owned by the cache — callers must not mutate it,
    and it is valid until the pod's next mutation. *)

val pod_spine_masks : t -> pod:int -> demand:float -> int array
(** [pod_spine_masks t ~pod ~demand].(i) is {!l2_up_mask} of the pod's
    [i]-th L2 switch at [demand].  Same ownership rules as
    {!pod_candidates}. *)

(** {1 Allocator cache slot}

    An extensible slot for allocator-owned caches that live and die
    with one state (per-pod solution memos, etc.).  The slot travels
    with the state — never across states: {!clone} starts the copy
    empty and {!copy_into} drops the destination's slot. *)

type ext = ..

val get_ext : t -> ext option
val set_ext : t -> ext option -> unit
