(** The Jigsaw allocation algorithm (paper §4, Algorithm 1).

    [get_allocation] searches for a partition satisfying the formal
    conditions of §3.2, restricted — as Jigsaw requires — to {e full
    leaves} ([n_l] = nodes-per-leaf) for allocations spanning more than
    one pod.  Two-level (single-pod) allocations are tried first, over
    every decomposition [size = l_t·n_l + n_rl] with any [n_l]; if none
    fits, three-level allocations [size = t·n_t + n_rt] are tried with
    recursive backtracking over pods, requiring a consistent L2 index set
    and common spine sets per L2 index.

    The returned partition has not been claimed: callers claim
    [Partition.to_alloc topo p ~bw:demand] against the state.  The search
    only proposes resources that are free at the given demand, so an
    immediate claim always succeeds (single-threaded schedulers). *)

val default_budget : int
(** Backtracking-step backstop (the paper's Jigsaw needs no timeout; this
    bound is orders of magnitude above what searches use in practice and
    exists to keep adversarial states from hanging a simulation). *)

val probe :
  ?demand:float ->
  ?budget:int ->
  ?two_level_only:bool ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.probe
(** Like {!get_allocation} but reports {e why} no partition was returned:
    [Infeasible] (definitive, search space covered) vs [Exhausted]
    (budget cut the search short).  The scheduler's no-fit memo may only
    cache [Infeasible]. *)

val probe_whole_leaves :
  ?demand:float ->
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.probe
(** {!get_allocation_whole_leaves} with the same outcome reporting. *)

val get_allocation :
  ?demand:float ->
  ?budget:int ->
  ?two_level_only:bool ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.t option
(** [get_allocation st ~job ~size] is the first Jigsaw-compliant partition
    found for a [size]-node job on the current state, or [None] if none
    exists (or the budget ran out).  [demand] (default 1.0) is the
    per-cable bandwidth fraction to require and is 1.0 for the isolating
    scheduler; fractions are used by the LC+S bounding scheduler.
    [two_level_only] (default false) stops after the single-pod search —
    the shared prefix of LaaS's algorithm. *)

val get_allocation_whole_leaves :
  ?demand:float ->
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Partition.t option
(** The Links-as-a-Service placement mode: the request is rounded up to
    whole leaves (alloc = ceil(size / m1) * m1 nodes) and only full-leaf
    shapes are searched, reproducing LaaS's reduction of the three-level
    problem to two levels.  The returned partition carries the padded
    node set but records the original [size], exposing LaaS's internal
    node fragmentation to the utilization metrics. *)
