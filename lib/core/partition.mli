(** Structured network partitions.

    A partition is the structured form of a job's allocation: which pods
    (two-level subtrees, "trees" in the paper) it occupies, which leaves
    and nodes within each pod, which L2 switches each leaf uplinks to, and
    which spines each L2 switch uplinks to.  It is the object over which
    the formal conditions of paper §3.2 are stated; [Conditions.check]
    validates a partition against them, and [Routing.Rearrange] routes
    permutations over it.

    Invariant vocabulary (paper notation):

    - [n_l]: nodes on each {e full} leaf; the common L2 index set [S] has
      this size.
    - [l_t]: full leaves in each {e full} tree; each allocated L2 switch
      of a full tree uplinks to [l_t] spines.
    - [t]: number of full trees.
    - remainder tree: at most one, with [l_rt < l_t] full leaves plus an
      optional remainder leaf of [n_rl < n_l] nodes on L2 subset
      [Sr ⊂ S].

    A {e two-level} partition occupies a single pod and allocates no
    spine cables (single-pod traffic never crosses spines). *)

type leaf_alloc = {
  leaf : int;  (** Global leaf id. *)
  nodes : int array;  (** Node ids on this leaf, sorted ascending. *)
  l2_indices : int array;
      (** Indices (within the pod) of the L2 switches this leaf uplinks
          to; sorted; same length as [nodes]. *)
}

type tree_alloc = {
  pod : int;
  full_leaves : leaf_alloc array;  (** Leaves carrying [n_l] nodes each. *)
  rem_leaf : leaf_alloc option;  (** Remainder leaf, [< n_l] nodes. *)
  spine_sets : (int * int array) array;
      (** [(i, s)] pairs: the pod's L2 switch at index [i] uplinks to the
          spines of its group at indices [s] (sorted).  Empty for
          two-level partitions. *)
}

type t = {
  job : int;  (** Job identifier. *)
  size : int;  (** Requested node count. *)
  full_trees : tree_alloc array;
  rem_tree : tree_alloc option;
}

type kind = Two_level | Three_level

type probe = Found of t | Infeasible | Exhausted
(** Outcome of an allocation search.  [Infeasible] is a {e definitive}
    no-fit: the search covered its whole space without finding a legal
    partition, and since claims only remove resources the verdict stays
    valid until some allocation is released (the scheduler's no-fit memo
    relies on exactly this monotonicity).  [Exhausted] means the step
    budget ran out first, so feasibility is unknown and the result must
    not be memoized. *)

val to_option : probe -> t option
(** [Found p] as [Some p]; the two failure outcomes as [None]. *)

val kind : t -> kind
(** [Two_level] iff the partition occupies a single pod and allocates no
    spine cables. *)

val node_count : t -> int
(** Total nodes held (counting padding, if any). *)

val nodes : t -> int array
(** All node ids, sorted ascending. *)

val leaves : t -> leaf_alloc array
(** Every leaf allocation (full and remainder), in tree order. *)

val pods_used : t -> int list
(** Sorted pod ids occupied. *)

val n_l : t -> int
(** Nodes per full leaf.  Raises [Invalid_argument] on a partition with no
    full leaf (can only arise from hand-built ill-formed values). *)

val l2_index_set : t -> int array
(** The common L2 index set [S] (from the first full leaf). *)

val to_alloc : Fattree.Topology.t -> t -> bw:float -> Fattree.Alloc.t
(** Flatten to the resource-level allocation: all nodes, one leaf–L2 cable
    per (leaf, l2-index) pair, one L2–spine cable per (L2, spine-index)
    pair, each demanding [bw]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
