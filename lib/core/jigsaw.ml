open Fattree

let default_budget = 100_000

(* ------------------------------------------------------------------ *)
(* Two-level search: first shape that fits in any single pod.          *)
(* ------------------------------------------------------------------ *)

let try_two_level st ~job ~size ~alloc_size ~demand =
  let topo = State.topo st in
  let shapes = Shapes.two_level topo ~size:alloc_size in
  let m3 = Topology.m3 topo in
  let rec over_shapes = function
    | [] -> None
    | shape :: rest ->
        let rec over_pods pod =
          if pod >= m3 then None
          else begin
            match Search.find_two_level st ~job ~pod ~shape ~demand with
            | Some tree ->
                Some
                  {
                    Partition.job;
                    size;
                    full_trees = [| tree |];
                    rem_tree = None;
                  }
            | None -> over_pods (pod + 1)
          end
        in
        (match over_pods 0 with
        | Some _ as ok -> ok
        | None -> over_shapes rest)
  in
  over_shapes shapes

(* ------------------------------------------------------------------ *)
(* Three-level search with the full-leaf restriction.                  *)
(* ------------------------------------------------------------------ *)

(* Per-pod availability snapshot for the three-level search. *)
type pod_info = {
  pod : int;
  free_leaves : int array; (* fully-free leaf ids, ascending *)
  spine_masks : int array; (* per L2 index i: available spine indices *)
}

(* All three summary sources ([pod_fully_free_leaves], [leaf_fully_free]
   and [l2_up_mask] at demand 1.0) are O(1) reads of State's incremental
   caches, so a whole snapshot costs O(pods * (m1 + m2)) instead of the
   former O(pods * m1 * m2) rescan. *)
let pod_infos st ~demand =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  Array.init (Topology.m3 topo) (fun pod ->
      let count = State.pod_fully_free_leaves st ~pod in
      let free_leaves =
        if count = 0 then [||]
        else begin
          let arr = Array.make count 0 in
          let k = ref 0 in
          for l = 0 to m2 - 1 do
            let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
            if !k < count && State.leaf_fully_free st leaf then begin
              arr.(!k) <- leaf;
              incr k
            end
          done;
          arr
        end
      in
      let spine_masks =
        Array.init m1 (fun i ->
            let l2 = Topology.l2_of_coords topo ~pod ~index:i in
            State.l2_up_mask st ~l2 ~demand)
      in
      { pod; free_leaves; spine_masks })

(* Materialize one full tree: its first l_t fully-free leaves, all nodes,
   uplinks to every L2 index, and the chosen spine sets. *)
let materialize_full_tree st info ~l_t ~s ~spine_sets =
  let leaves =
    Array.init l_t (fun k ->
        Search.materialize_leaf st ~leaf:info.free_leaves.(k)
          ~take:(Array.length s) ~l2_indices:(Array.copy s))
  in
  { Partition.pod = info.pod; full_leaves = leaves; rem_leaf = None; spine_sets }

(* Try to complete a remainder tree in pod [info]:
   l_rt fully-free leaves plus (if n_rl > 0) a distinct remainder leaf
   with n_rl free nodes and uplink cables at indices where the pod also
   has the extra spine capacity.  [inter] is the running spine-mask
   intersection of the chosen full pods.  Returns the remainder tree and
   the per-index spine needs/choices. *)
let try_remainder st info ~l_t ~l_rt ~n_rl ~demand ~inter =
  let topo = State.topo st in
  let m1 = Topology.m1 topo in
  if Array.length info.free_leaves < l_rt then None
  else begin
    (* avail.(i): spine indices usable by this pod's L2_i consistent with
       the full pods' common sets. *)
    let avail = Array.init m1 (fun i -> inter.(i) land info.spine_masks.(i)) in
    let base_ok =
      l_rt = 0
      || Array.for_all (fun a -> Mask.popcount a >= l_rt) avail
    in
    if not base_ok then None
    else if n_rl = 0 then begin
      let spine_sets =
        if l_rt = 0 then [||]
        else Array.init m1 (fun i -> (i, Mask.to_array (Mask.take_lowest avail.(i) l_rt)))
      in
      let s = Array.init m1 (fun i -> i) in
      let leaves =
        Array.init l_rt (fun k ->
            Search.materialize_leaf st ~leaf:info.free_leaves.(k) ~take:m1
              ~l2_indices:(Array.copy s))
      in
      Some
        ( { Partition.pod = info.pod; full_leaves = leaves; rem_leaf = None; spine_sets },
          spine_sets )
    end
    else begin
      (* Indices where an extra downlink (the remainder leaf) can be
         matched by an extra spine uplink. *)
      let extra_ok =
        Array.init m1 (fun i -> Mask.popcount avail.(i) >= l_rt + 1)
      in
      let used_leaves =
        Array.to_list (Array.sub info.free_leaves 0 (min l_rt (Array.length info.free_leaves)))
      in
      (* Candidate remainder leaf: any leaf of the pod, not among the
         chosen fully-free leaves, with >= n_rl free nodes and uplink
         cables at >= n_rl indices i where extra_ok.(i). *)
      let m2 = Topology.m2 topo in
      let rec find_leaf l =
        if l >= m2 then None
        else begin
          let leaf = Topology.leaf_of_coords topo ~pod:info.pod ~leaf:l in
          if List.mem leaf used_leaves then find_leaf (l + 1)
          else begin
            let free = State.free_nodes_on_leaf st leaf in
            let up = State.leaf_up_mask st ~leaf ~demand in
            let eligible = ref 0 in
            for i = 0 to m1 - 1 do
              if extra_ok.(i) && Mask.mem up i then
                eligible := !eligible lor (1 lsl i)
            done;
            if free >= n_rl && Mask.popcount !eligible >= n_rl then
              Some (leaf, Mask.take_lowest !eligible n_rl)
            else find_leaf (l + 1)
          end
        end
      in
      match find_leaf 0 with
      | None -> None
      | Some (leaf, sr_mask) ->
          let s = Array.init m1 (fun i -> i) in
          let leaves =
            Array.init l_rt (fun k ->
                Search.materialize_leaf st ~leaf:info.free_leaves.(k) ~take:m1
                  ~l2_indices:(Array.copy s))
          in
          let rem_leaf =
            Search.materialize_leaf st ~leaf ~take:n_rl
              ~l2_indices:(Mask.to_array sr_mask)
          in
          let spine_sets =
            let sets = ref [] in
            for i = m1 - 1 downto 0 do
              let need = l_rt + if Mask.mem sr_mask i then 1 else 0 in
              if need > 0 then
                sets := (i, Mask.to_array (Mask.take_lowest avail.(i) need)) :: !sets
            done;
            Array.of_list !sets
          in
          ignore l_t;
          Some
            ( {
                Partition.pod = info.pod;
                full_leaves = leaves;
                rem_leaf = Some rem_leaf;
                spine_sets;
              },
              spine_sets )
    end
  end

let try_three_level st ~job ~size ~alloc_size ~demand ~budget =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m3 = Topology.m3 topo in
  let infos = pod_infos st ~demand in
  let shapes = Shapes.three_level topo ~size:alloc_size ~n_l:m1 in
  (* Quick necessary-condition filter: enough pods with enough fully-free
     leaves for the full trees and the remainder tree.  Hopeless shapes
     are skipped before any backtracking. *)
  let pods_with k =
    let c = ref 0 in
    Array.iter
      (fun info -> if Array.length info.free_leaves >= k then incr c)
      infos;
    !c
  in
  let shapes =
    List.filter
      (fun (s : Shapes.three_level) ->
        pods_with s.l_t3 >= s.t
        && (s.n_rt = 0 || s.l_rt = 0 || pods_with s.l_rt >= s.t + 1))
      shapes
  in
  let rec over_shapes = function
    | [] -> None
    | ({ Shapes.l_t3 = l_t; t; n_rt; l_rt; n_rl3 = n_rl; _ } : Shapes.three_level)
      :: rest ->
        let eligible p = Array.length infos.(p).free_leaves >= l_t in
        (* Recursive backtracking over pods (find_L3).  [inter] is the
           per-L2-index intersection of available spine masks. *)
        let chosen = ref [] in
        let result = ref None in
        let rec pick start taken (inter : int array) =
          if !result <> None || !budget <= 0 then ()
          else begin
            decr budget;
            if taken = t then begin
              if n_rt = 0 then finish inter None
              else begin
                (* Find a remainder pod among pods not chosen. *)
                let in_chosen p = List.mem p !chosen in
                let rec find_rem p =
                  if p >= m3 || !result <> None then ()
                  else begin
                    if not (in_chosen p) then begin
                      match
                        try_remainder st infos.(p) ~l_t ~l_rt ~n_rl ~demand
                          ~inter
                      with
                      | Some (tree, rem_spines) ->
                          finish inter (Some (tree, rem_spines))
                      | None -> find_rem (p + 1)
                    end
                    else find_rem (p + 1)
                  end
                in
                find_rem 0
              end
            end
            else begin
              let p = ref start in
              while !result = None && !p < m3 do
                let info = infos.(!p) in
                if eligible !p then begin
                  let inter' =
                    Array.init m1 (fun i -> inter.(i) land info.spine_masks.(i))
                  in
                  if Array.for_all (fun x -> Mask.popcount x >= l_t) inter' then begin
                    chosen := !p :: !chosen;
                    pick (!p + 1) (taken + 1) inter';
                    if !result = None then chosen := List.tl !chosen
                  end
                end;
                incr p
              done
            end
          end
        and finish inter rem =
          (* Choose common spine sets: prefer indices the remainder tree
             can also reach so that its subsets are honoured. *)
          let rem_spines =
            match rem with Some (_, s) -> Some s | None -> None
          in
          let spine_sets =
            Array.init m1 (fun i ->
                let prefer =
                  match rem_spines with
                  | None -> 0
                  | Some sets ->
                      Array.fold_left
                        (fun acc (j, s) ->
                          if i = j then acc lor Mask.of_array s else acc)
                        0 sets
                in
                (i, Mask.to_array (Mask.take_preferring inter.(i) ~prefer l_t)))
          in
          let s = Array.init m1 (fun i -> i) in
          let full_trees =
            List.rev !chosen
            |> List.map (fun p ->
                   materialize_full_tree st infos.(p) ~l_t ~s ~spine_sets)
            |> Array.of_list
          in
          let rem_tree = Option.map fst rem in
          result := Some { Partition.job; size; full_trees; rem_tree }
        in
        pick 0 0 (Array.make m1 (lnot 0));
        (match !result with Some _ as ok -> ok | None -> over_shapes rest)
  in
  over_shapes shapes

let allocate ?(demand = 1.0) ?(budget = default_budget) ?(two_level_only = false)
    st ~job ~size ~alloc_size =
  let topo = State.topo st in
  if
    size <= 0
    || alloc_size < size
    || alloc_size > Topology.num_nodes topo
    || State.total_free_nodes st < alloc_size
  then Partition.Infeasible
  else begin
    match try_two_level st ~job ~size ~alloc_size ~demand with
    | Some p -> Partition.Found p
    | None ->
        if two_level_only then Partition.Infeasible
        else begin
          let budget = ref budget in
          match try_three_level st ~job ~size ~alloc_size ~demand ~budget with
          | Some p -> Partition.Found p
          | None ->
              if !budget <= 0 then Partition.Exhausted else Partition.Infeasible
        end
  end

let probe ?demand ?budget ?two_level_only st ~job ~size =
  allocate ?demand ?budget ?two_level_only st ~job ~size ~alloc_size:size

let probe_whole_leaves ?demand ?budget st ~job ~size =
  let topo = State.topo st in
  let m1 = Topology.m1 topo in
  let alloc_size = (size + m1 - 1) / m1 * m1 in
  allocate ?demand ?budget st ~job ~size ~alloc_size

let get_allocation ?demand ?budget ?two_level_only st ~job ~size =
  Partition.to_option (probe ?demand ?budget ?two_level_only st ~job ~size)

let get_allocation_whole_leaves ?demand ?budget st ~job ~size =
  Partition.to_option (probe_whole_leaves ?demand ?budget st ~job ~size)
