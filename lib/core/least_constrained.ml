open Fattree

let default_budget = 150_000

(* Per-state memo of [Search.find_all] enumerations, living in the
   state's extension slot so it dies with the state (never shared across
   clones or sweep domains).  Entries are keyed by the full argument
   tuple, stamped with the pod's node generation, and carry the exact
   budget the enumeration consumed.  A hit requires the stamp to match
   AND the remaining budget to cover the recorded cost; the cost is then
   re-charged, so budget accounting — and therefore every Exhausted
   verdict and fingerprint — is bit-identical to an uncached run.  Only
   complete enumerations are recorded: one truncated by budget depends
   on the starting budget and must re-run. *)
type sols_entry = {
  se_sols : Search.pod_solution list;
  se_cost : int;
  se_gen : int;
}

type lc_cache = (int * int * int * float, sols_entry) Hashtbl.t

type State.ext += Lc_cache of lc_cache

let cache_of st : lc_cache =
  match State.get_ext st with
  | Some (Lc_cache c) -> c
  | _ ->
      let c = Hashtbl.create 64 in
      State.set_ext st (Some (Lc_cache c));
      c

let cached_find_all st ~pod ~l_t ~n_l ~demand ~budget =
  let tbl = cache_of st in
  let key = (pod, l_t, n_l, demand) in
  let gen = State.pod_node_generation st ~pod in
  match Hashtbl.find_opt tbl key with
  | Some e when e.se_gen = gen && !budget >= e.se_cost ->
      budget := !budget - e.se_cost;
      e.se_sols
  | _ ->
      let b0 = !budget in
      let sols = Search.find_all st ~pod ~l_t ~n_l ~demand ~budget in
      if !budget > 0 then
        Hashtbl.replace tbl key
          { se_sols = sols; se_cost = b0 - !budget; se_gen = gen };
      sols

(* Materialize a full tree from a pod solution: every leaf carries n_l
   nodes uplinked to the common set [s]; spine sets attach to the indices
   of [s]. *)
let materialize_tree st ~pod ~(sol : Search.pod_solution) ~n_l ~s ~spine_sets =
  let leaves =
    Array.map
      (fun leaf ->
        Search.materialize_leaf st ~leaf ~take:n_l ~l2_indices:(Array.copy s))
      sol.leaf_set
  in
  { Partition.pod; full_leaves = leaves; rem_leaf = None; spine_sets }

let try_three_level st ~job ~size ~demand ~budget =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m3 = Topology.m3 topo in
  (* Spine availability per pod and L2 index: consulted from the state's
     incrementally maintained cache — a pod untouched since the last
     probe costs one generation compare instead of an m1 x m2 rescan. *)
  let spines = Array.init m3 (fun pod -> State.pod_spine_masks st ~pod ~demand) in
  let shapes = Shapes.three_level_all topo ~size in
  (* Cheap per-shape feasibility precheck: candidate_leaves.(pod).(n_l-1)
     counts leaves that could carry n_l nodes at this demand.  A shape
     needing t full pods of l_t such leaves (plus a remainder pod) is
     skipped outright when the counts cannot support it, so hopeless
     shapes do not burn search budget.  Counts come from the same
     generation-validated cache. *)
  let candidate_leaves =
    Array.init m3 (fun pod -> State.pod_candidates st ~pod ~demand)
  in
  let shape_feasible (s : Shapes.three_level) =
    let pods_with k =
      let c = ref 0 in
      Array.iter
        (fun counts -> if counts.(s.n_l3 - 1) >= k then incr c)
        candidate_leaves;
      !c
    in
    (* Necessary conditions only — the precheck must never reject a
       feasible shape, so the remainder pod is tested against its full
       leaves alone (the remainder leaf's needs are weaker than n_l). *)
    let full_ok = pods_with s.l_t3 >= s.t in
    let rem_ok =
      s.n_rt = 0 || s.l_rt = 0 || pods_with s.l_rt >= s.t + 1
    in
    full_ok && rem_ok
  in
  let shapes = List.filter shape_feasible shapes in
  let rec over_shapes = function
    | [] -> None
    | ({ Shapes.n_l3 = n_l; l_t3 = l_t; t; n_rt; l_rt; n_rl3 = n_rl; _ }
        : Shapes.three_level)
      :: rest ->
        if !budget <= 0 then None
        else begin
          (* Enumerate per-pod solutions for full trees (l_t leaves of n_l
             nodes) lazily, pod by pod, caching results. *)
          let sol_cache : Search.pod_solution list option array =
            Array.make m3 None
          in
          let sols p =
            match sol_cache.(p) with
            | Some s -> s
            | None ->
                let s = cached_find_all st ~pod:p ~l_t ~n_l ~demand ~budget in
                sol_cache.(p) <- Some s;
                s
          in
          let result = ref None in
          (* Spine feasibility of index i at intersection [spine_inter]:
             it can serve as a member of S for the full trees. *)
          let feasible_count cap_inter spine_inter =
            let c = ref 0 in
            for i = 0 to m1 - 1 do
              if Mask.mem cap_inter i && Mask.popcount spine_inter.(i) >= l_t
              then incr c
            done;
            !c
          in
          let finish chosen cap_inter spine_inter =
            (* chosen: (pod, solution) list in reverse order. *)
            if n_rt = 0 then begin
              (* Select S: lowest n_l feasible indices. *)
              let ok = ref 0 in
              for i = m1 - 1 downto 0 do
                if Mask.mem cap_inter i && Mask.popcount spine_inter.(i) >= l_t
                then ok := !ok lor (1 lsl i)
              done;
              if Mask.popcount !ok >= n_l then begin
                let s_mask = Mask.take_lowest !ok n_l in
                let s = Mask.to_array s_mask in
                let spine_sets =
                  Array.map
                    (fun i ->
                      (i, Mask.to_array (Mask.take_lowest spine_inter.(i) l_t)))
                    s
                in
                let full_trees =
                  List.rev chosen
                  |> List.map (fun (p, sol) ->
                         materialize_tree st ~pod:p ~sol ~n_l ~s ~spine_sets)
                  |> Array.of_list
                in
                result := Some { Partition.job; size; full_trees; rem_tree = None }
              end
            end
            else begin
              (* Look for a remainder pod: l_rt full leaves (+ remainder
                 leaf when n_rl > 0). *)
              let chosen_pods = List.map fst chosen in
              let rec over_pods q =
                if q >= m3 || !result <> None || !budget <= 0 then ()
                else begin
                  if not (List.mem q chosen_pods) then begin
                    let q_sols =
                      if l_rt = 0 then
                        [ { Search.leaf_set = [||]; cap_mask = lnot 0 } ]
                      else
                        cached_find_all st ~pod:q ~l_t:l_rt ~n_l ~demand ~budget
                    in
                    over_q_sols q q_sols
                  end;
                  if !result = None then over_pods (q + 1)
                end
              and over_q_sols q = function
                | [] -> ()
                | (qsol : Search.pod_solution) :: more ->
                    attempt q qsol;
                    if !result = None && !budget > 0 then over_q_sols q more
              and attempt q qsol =
                decr budget;
                (* Base feasibility per index. *)
                let aq i = spine_inter.(i) land spines.(q).(i) in
                let idx_base = ref 0 in
                for i = 0 to m1 - 1 do
                  if
                    Mask.mem cap_inter i
                    && Mask.mem qsol.cap_mask i
                    && Mask.popcount spine_inter.(i) >= l_t
                    && (l_rt = 0 || Mask.popcount (aq i) >= l_rt)
                  then idx_base := !idx_base lor (1 lsl i)
                done;
                if n_rl = 0 then begin
                  if Mask.popcount !idx_base >= n_l then begin
                    let s_mask = Mask.take_lowest !idx_base n_l in
                    commit q qsol None s_mask
                  end
                end
                else begin
                  (* Need a remainder leaf in pod q, distinct from the
                     solution's leaves. *)
                  let topo = State.topo st in
                  let m2 = Topology.m2 topo in
                  let rec find_leaf l =
                    if l >= m2 || !result <> None then ()
                    else begin
                      let leaf = Topology.leaf_of_coords topo ~pod:q ~leaf:l in
                      let in_sol = Array.exists (fun x -> x = leaf) qsol.leaf_set in
                      if not in_sol then begin
                        let free = State.free_nodes_on_leaf st leaf in
                        let up = State.leaf_up_mask st ~leaf ~demand in
                        if free >= n_rl then begin
                          let idx_extra = ref 0 in
                          for i = 0 to m1 - 1 do
                            if
                              Mask.mem !idx_base i
                              && Mask.mem up i
                              && Mask.popcount (aq i) >= l_rt + 1
                            then idx_extra := !idx_extra lor (1 lsl i)
                          done;
                          if Mask.popcount !idx_extra >= n_rl then begin
                            let s_mask =
                              Mask.take_preferring !idx_base ~prefer:!idx_extra
                                n_l
                            in
                            let sr =
                              Mask.take_lowest (s_mask land !idx_extra) n_rl
                            in
                            commit q qsol (Some (leaf, sr)) s_mask
                          end
                        end
                      end;
                      if !result = None then find_leaf (l + 1)
                    end
                  in
                  if Mask.popcount !idx_base >= n_l then find_leaf 0
                end
              and commit q qsol rem s_mask =
                let s = Mask.to_array s_mask in
                let aq i = spine_inter.(i) land spines.(q).(i) in
                (* Remainder spine sets first, then common sets preferring
                   them. *)
                let rem_leaf_alloc, sr_mask =
                  match rem with
                  | None -> (None, 0)
                  | Some (leaf, sr) ->
                      ( Some
                          (Search.materialize_leaf st ~leaf ~take:n_rl
                             ~l2_indices:(Mask.to_array sr)),
                        sr )
                in
                let rem_spine_sets =
                  let sets = ref [] in
                  Array.iter
                    (fun i ->
                      let need = l_rt + if Mask.mem sr_mask i then 1 else 0 in
                      if need > 0 then
                        sets := (i, Mask.to_array (Mask.take_lowest (aq i) need)) :: !sets)
                    s;
                  Array.of_list (List.rev !sets)
                in
                let spine_sets =
                  Array.map
                    (fun i ->
                      let prefer =
                        Array.fold_left
                          (fun acc (j, arr) ->
                            if i = j then acc lor Mask.of_array arr else acc)
                          0 rem_spine_sets
                      in
                      ( i,
                        Mask.to_array
                          (Mask.take_preferring spine_inter.(i) ~prefer l_t) ))
                    s
                in
                let full_trees =
                  List.rev chosen
                  |> List.map (fun (p, sol) ->
                         materialize_tree st ~pod:p ~sol ~n_l ~s ~spine_sets)
                  |> Array.of_list
                in
                let rem_tree =
                  {
                    Partition.pod = q;
                    full_leaves =
                      Array.map
                        (fun leaf ->
                          Search.materialize_leaf st ~leaf ~take:n_l
                            ~l2_indices:(Array.copy s))
                        qsol.leaf_set;
                    rem_leaf = rem_leaf_alloc;
                    spine_sets = rem_spine_sets;
                  }
                in
                result :=
                  Some { Partition.job; size; full_trees; rem_tree = Some rem_tree }
              in
              over_pods 0
            end
          in
          (* Backtracking over pods for the t full trees. *)
          let rec pick start taken chosen cap_inter spine_inter =
            if !result <> None || !budget <= 0 then ()
            else begin
              decr budget;
              if taken = t then finish chosen cap_inter spine_inter
              else begin
                let p = ref start in
                while !result = None && !budget > 0 && !p < m3 do
                  let pod = !p in
                  let rec over = function
                    | [] -> ()
                    | (sol : Search.pod_solution) :: more ->
                        let cap' = cap_inter land sol.cap_mask in
                        if Mask.popcount cap' >= n_l then begin
                          let spine' =
                            Array.init m1 (fun i ->
                                spine_inter.(i) land spines.(pod).(i))
                          in
                          if feasible_count cap' spine' >= n_l then
                            pick (pod + 1) (taken + 1) ((pod, sol) :: chosen)
                              cap' spine'
                        end;
                        if !result = None && !budget > 0 then over more
                  in
                  over (sols pod);
                  incr p
                done
              end
            end
          in
          pick 0 0 [] (Mask.full m1) (Array.make m1 (lnot 0));
          (match !result with
          | Some _ as ok -> ok
          | None -> if !budget <= 0 then None else over_shapes rest)
        end
  in
  over_shapes shapes

let try_two_level st ~job ~size ~demand =
  let topo = State.topo st in
  let m3 = Topology.m3 topo in
  let shapes = Shapes.two_level topo ~size in
  (* Necessary-condition precheck from the cached candidate counts: a
     pod lacking l_t leaves able to carry n_l nodes cannot host the
     shape's full leaves, so the O(m2) backtracking setup is skipped.
     The remainder leaf's needs are weaker than n_l, so the precheck
     never rejects a feasible pod. *)
  let pod_may_fit (shape : Shapes.two_level) pod =
    shape.l_t = 0
    || (State.pod_candidates st ~pod ~demand).(shape.n_l - 1) >= shape.l_t
  in
  let rec over_shapes = function
    | [] -> None
    | (shape : Shapes.two_level) :: rest ->
        let rec over_pods pod =
          if pod >= m3 then None
          else if not (pod_may_fit shape pod) then over_pods (pod + 1)
          else begin
            match Search.find_two_level st ~job ~pod ~shape ~demand with
            | Some tree ->
                Some
                  { Partition.job; size; full_trees = [| tree |]; rem_tree = None }
            | None -> over_pods (pod + 1)
          end
        in
        (match over_pods 0 with
        | Some _ as ok -> ok
        | None -> over_shapes rest)
  in
  over_shapes shapes

let probe ?(demand = 1.0) ?(budget = default_budget) st ~job ~size =
  let topo = State.topo st in
  if size <= 0 || size > Topology.num_nodes topo || State.total_free_nodes st < size
  then Partition.Infeasible
  else begin
    match try_two_level st ~job ~size ~demand with
    | Some p -> Partition.Found p
    | None -> (
        let budget = ref budget in
        match try_three_level st ~job ~size ~demand ~budget with
        | Some p -> Partition.Found p
        | None ->
            if !budget <= 0 then Partition.Exhausted else Partition.Infeasible)
  end

let get_allocation ?demand ?budget st ~job ~size =
  Partition.to_option (probe ?demand ?budget st ~job ~size)
