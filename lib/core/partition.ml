open Fattree

type leaf_alloc = { leaf : int; nodes : int array; l2_indices : int array }

type tree_alloc = {
  pod : int;
  full_leaves : leaf_alloc array;
  rem_leaf : leaf_alloc option;
  spine_sets : (int * int array) array;
}

type t = {
  job : int;
  size : int;
  full_trees : tree_alloc array;
  rem_tree : tree_alloc option;
}

type kind = Two_level | Three_level
type probe = Found of t | Infeasible | Exhausted

let to_option = function Found p -> Some p | Infeasible | Exhausted -> None

let all_trees p =
  match p.rem_tree with
  | None -> Array.to_list p.full_trees
  | Some r -> Array.to_list p.full_trees @ [ r ]

let kind p =
  let trees = all_trees p in
  let no_spines =
    List.for_all (fun tr -> Array.length tr.spine_sets = 0) trees
  in
  if List.length trees = 1 && no_spines then Two_level else Three_level

let leaves p =
  let of_tree tr =
    match tr.rem_leaf with
    | None -> Array.to_list tr.full_leaves
    | Some r -> Array.to_list tr.full_leaves @ [ r ]
  in
  Array.of_list (List.concat_map of_tree (all_trees p))

let node_count p =
  Array.fold_left (fun acc la -> acc + Array.length la.nodes) 0 (leaves p)

let nodes p =
  let ls = leaves p in
  let all = Array.concat (List.map (fun la -> la.nodes) (Array.to_list ls)) in
  Sim.Intsort.sort all;
  all

let pods_used p =
  List.sort_uniq compare (List.map (fun tr -> tr.pod) (all_trees p))

let first_full_leaf p =
  let rec find = function
    | [] -> None
    | tr :: rest ->
        if Array.length tr.full_leaves > 0 then Some tr.full_leaves.(0)
        else find rest
  in
  find (all_trees p)

let n_l p =
  match first_full_leaf p with
  | Some la -> Array.length la.nodes
  | None -> invalid_arg "Partition.n_l: no full leaf"

let l2_index_set p =
  match first_full_leaf p with
  | Some la -> Array.copy la.l2_indices
  | None -> invalid_arg "Partition.l2_index_set: no full leaf"

let to_alloc topo p ~bw =
  let nodes = nodes p in
  let leaf_cables = ref [] in
  Array.iter
    (fun la ->
      Array.iter
        (fun i ->
          leaf_cables :=
            Topology.leaf_l2_cable topo ~leaf:la.leaf ~l2_index:i :: !leaf_cables)
        la.l2_indices)
    (leaves p);
  let l2_cables = ref [] in
  List.iter
    (fun tr ->
      Array.iter
        (fun (i, spines) ->
          let l2 = Topology.l2_of_coords topo ~pod:tr.pod ~index:i in
          Array.iter
            (fun j ->
              l2_cables :=
                Topology.l2_spine_cable topo ~l2 ~spine_index:j :: !l2_cables)
            spines)
        tr.spine_sets)
    (all_trees p);
  (* Monomorphic sort: these arrays reach a few hundred entries on
     machine-scale partitions and a closure-calling sort dominates the
     whole materialization otherwise. *)
  let arr = Sim.Intsort.of_list in
  {
    Alloc.job = p.job;
    size = p.size;
    nodes;
    leaf_cables = arr !leaf_cables;
    l2_cables = arr !l2_cables;
    bw;
  }

let pp_int_array ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int a)))

let pp_leaf ppf la =
  Format.fprintf ppf "leaf %d: nodes %a -> L2 %a" la.leaf pp_int_array la.nodes
    pp_int_array la.l2_indices

let pp_tree ppf tr =
  Format.fprintf ppf "@[<v 2>pod %d:" tr.pod;
  Array.iter (fun la -> Format.fprintf ppf "@,%a" pp_leaf la) tr.full_leaves;
  (match tr.rem_leaf with
  | Some la -> Format.fprintf ppf "@,rem %a" pp_leaf la
  | None -> ());
  Array.iter
    (fun (i, s) -> Format.fprintf ppf "@,L2[%d] -> spines %a" i pp_int_array s)
    tr.spine_sets;
  Format.fprintf ppf "@]"

let pp ppf p =
  Format.fprintf ppf "@[<v 2>partition job=%d size=%d (%s):" p.job p.size
    (match kind p with Two_level -> "two-level" | Three_level -> "three-level");
  Array.iter (fun tr -> Format.fprintf ppf "@,%a" pp_tree tr) p.full_trees;
  (match p.rem_tree with
  | Some tr -> Format.fprintf ppf "@,remainder %a" pp_tree tr
  | None -> ());
  Format.fprintf ppf "@]"
