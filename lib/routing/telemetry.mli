(** Network telemetry: measured per-channel congestion and cross-job
    interference, maintained live during simulation.

    On every job start the job's synthetic flow set (all-to-all or ring
    over its allocated nodes) is routed under a pluggable policy and
    installed into a persistent {!Congestion.Index}; on completion or
    kill the flows are retracted.  Both operations cost time
    proportional to the changed job's hops — no global re-solve — so
    congestion counters (max channel load per tier, shared channels,
    interfered flows, the pigeonhole lower bound of
    {!Greedy.lower_bound_load}) are exact at every instant.

    Determinism rules (DESIGN.md §15): routing is a {e pure function of
    (policy, topology, allocation)} — the [Greedy] policy routes each
    job's flows over fresh loads (per-job scoped, not cross-job-global,
    which would make paths depend on departed jobs' history), and the
    [Jigsaw] policy reconstructs its partition view from the flat
    allocation.  Checkpoint restore therefore rebuilds the whole index
    by re-routing the running set, in any order, to the same state. *)

(** How flows are mapped to channels. *)
type policy =
  | Dmodk  (** Static destination-mod-k — the ECMP-style default. *)
  | Greedy
      (** Load-aware least-loaded minimal path, scoped to the job's own
          flows (see determinism rules above). *)
  | Jigsaw
      (** Spread over the allocation's own cables by destination rank;
          flows the allocation cannot carry fall back to D-mod-k
          (Baseline allocations hold no cables and route fully
          D-mod-k). *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

(** Synthetic traffic shape over a job's allocated nodes (the [size]
    lowest held node ids, sorted). *)
type shape =
  | Alltoall  (** Every ordered pair — k(k-1) flows for k nodes. *)
  | Ring  (** node i -> node (i+1) mod k. *)

val shape_name : shape -> string
val shape_of_name : string -> shape option

type t

val create :
  Fattree.Topology.t -> policy:policy -> shape:shape -> now:float -> t
(** An empty telemetry state; [now] anchors the time-weighted series. *)

val policy_of : t -> policy
val shape_of : t -> shape

val mem : t -> int -> bool
(** Is the job's flow set currently installed? *)

(** What one add/remove did, for the [Net_route] trace event. *)
type route_info = {
  ri_flows : int;  (** Flows routed for the job. *)
  ri_channels : int;  (** Distinct channels the job occupies. *)
  ri_interfered : int;
      (** Of the job's flows, how many share a channel with another
          job (at event time — for removals, just before retraction). *)
}

val add_job : t -> now:float -> Fattree.Alloc.t -> route_info
(** Route and install a starting job's flows. *)

val remove_job : t -> now:float -> int -> route_info
(** Retract a completed/killed job's flows; every counter returns to
    its value as if the job had never run. *)

(** Instantaneous congestion state, for [Net_congestion_sample]. *)
type sample = {
  s_max_load : int;
  s_leaf_max : int;
  s_l2_max : int;
  s_shared : int;
  s_interfered : int;
  s_total_flows : int;
  s_jobs : int;
  s_lower_bound : int;
      (** {!Greedy.lower_bound_load} of the currently installed flows,
          maintained incrementally. *)
}

val sample : t -> sample

(** Whole-run aggregate, printed by [jigsaw-sim] and embedded in bench
    JSON.  Covers the observed window only: after a checkpoint restore
    the series restarts from the running set (state is rebuilt, history
    is not replayed). *)
type summary = {
  sm_policy : policy;
  sm_shape : shape;
  sm_routed_jobs : int;
  sm_routed_flows : int;
  sm_peak_max_load : int;
  sm_mean_max_load : float;  (** Time-weighted over the run. *)
  sm_peak_leaf : int;
  sm_peak_l2 : int;
  sm_peak_shared : int;
  sm_peak_interfered : int;
  sm_peak_lower_bound : int;
  sm_interfered_fraction : float;
      (** Time-weighted interfered flows over time-weighted total
          flows — the fraction of flow-seconds spent interfered. *)
  sm_elapsed : float;
}

val summary : t -> now:float -> summary
val pp_summary : Format.formatter -> summary -> unit
