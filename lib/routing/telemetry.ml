open Fattree

type policy = Dmodk | Greedy | Jigsaw

let policy_name = function
  | Dmodk -> "dmodk"
  | Greedy -> "greedy"
  | Jigsaw -> "jigsaw"

let policy_of_name = function
  | "dmodk" -> Some Dmodk
  | "greedy" -> Some Greedy
  | "jigsaw" -> Some Jigsaw
  | _ -> None

type shape = Alltoall | Ring

let shape_name = function Alltoall -> "alltoall" | Ring -> "ring"

let shape_of_name = function
  | "alltoall" -> Some Alltoall
  | "ring" -> Some Ring
  | _ -> None

(* The job's communicating nodes, sorted ascending.  Padding schedulers
   (LaaS) hold more nodes than the job requested; traffic comes from the
   [size] lowest held ids — a deterministic stand-in for "the nodes the
   processes actually run on". *)
let comm_nodes (a : Alloc.t) =
  let nodes = Array.copy a.nodes in
  Array.sort compare nodes;
  if Array.length nodes > a.size then Array.sub nodes 0 a.size else nodes

(* Flow endpoints as (src_rank, dst_rank) index pairs into the sorted
   node array — ranks feed the jigsaw router's deterministic spreading. *)
let flow_ranks shape k =
  if k < 2 then []
  else
    match shape with
    | Ring -> List.init k (fun i -> (i, (i + 1) mod k))
    | Alltoall ->
        List.concat
          (List.init k (fun i ->
               List.filter_map
                 (fun j -> if i = j then None else Some (i, j))
                 (List.init k Fun.id)))

(* Alloc-scoped Jigsaw routing: the view [Fwd] compiles from a
   [Partition.t], reconstructed here from the flat allocation alone so
   that routing is a pure function of (topology, allocation) — the
   determinism rule that lets checkpoint restore re-route every running
   job independently of history (DESIGN.md §15).  Per-leaf allocated L2
   indices come from [leaf_cables]; per-(pod, L2 index) allocated spine
   indices from [l2_cables].  Flows spread over the allocation's own
   cables by destination rank; any flow the allocation cannot carry
   (Baseline holds no cables at all) falls back to D-mod-k. *)
module Jig = struct
  type t = {
    leaf_l2s : (int, int array) Hashtbl.t;  (** leaf -> sorted L2 indices *)
    spines : (int * int, int array) Hashtbl.t;
        (** (pod, L2 index) -> sorted spine indices *)
  }

  let sorted_tbl tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun k v ->
        let a = Array.of_list v in
        Array.sort compare a;
        Hashtbl.replace out k a)
      tbl;
    out

  let build topo (a : Alloc.t) =
    let leaf_l2s = Hashtbl.create 16 and spines = Hashtbl.create 16 in
    let push tbl k v =
      Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    Array.iter
      (fun c ->
        push leaf_l2s
          (Topology.leaf_l2_cable_leaf topo c)
          (Topology.leaf_l2_cable_l2_index topo c))
      a.leaf_cables;
    Array.iter
      (fun c ->
        let l2 = Topology.l2_spine_cable_l2 topo c in
        push spines
          (Topology.l2_pod topo l2, Topology.l2_index_in_pod topo l2)
          (Topology.l2_spine_cable_spine_index topo c))
      a.l2_cables;
    { leaf_l2s = sorted_tbl leaf_l2s; spines = sorted_tbl spines }

  let intersect a b =
    let out = ref [] and i = ref 0 and j = ref 0 in
    let la = Array.length a and lb = Array.length b in
    while !i < la && !j < lb do
      if a.(!i) = b.(!j) then begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
      else if a.(!i) < b.(!j) then incr i
      else incr j
    done;
    Array.of_list (List.rev !out)

  let empty = [||]

  let leaf_set t leaf = Option.value ~default:empty (Hashtbl.find_opt t.leaf_l2s leaf)

  let spine_set t pod idx =
    Option.value ~default:empty (Hashtbl.find_opt t.spines (pod, idx))

  let route topo t ~src ~dst ~dst_rank =
    let src_leaf = Topology.node_leaf topo src in
    let dst_leaf = Topology.node_leaf topo dst in
    if src_leaf = dst_leaf then Path.local ~src ~dst
    else
      let inter = intersect (leaf_set t src_leaf) (leaf_set t dst_leaf) in
      let n = Array.length inter in
      if n = 0 then Dmodk.path topo ~src ~dst
      else
        let hops_leaf l2_index =
          ( { Path.tier = Path.Leaf_l2;
              cable = Topology.leaf_l2_cable topo ~leaf:src_leaf ~l2_index;
              dir = Path.Up },
            { Path.tier = Path.Leaf_l2;
              cable = Topology.leaf_l2_cable topo ~leaf:dst_leaf ~l2_index;
              dir = Path.Down } )
        in
        let src_pod = Topology.node_pod topo src in
        let dst_pod = Topology.node_pod topo dst in
        if src_pod = dst_pod then begin
          let i = inter.(dst_rank mod n) in
          let up, down = hops_leaf i in
          { Path.src; dst; hops = [ up; down ] }
        end
        else begin
          (* Scan allocated L2 indices from the rank's offset for one
             whose spine sets reach both pods. *)
          let start = dst_rank mod n in
          let rec scan k =
            if k = n then Dmodk.path topo ~src ~dst
            else
              let i = inter.((start + k) mod n) in
              let sp =
                intersect (spine_set t src_pod i) (spine_set t dst_pod i)
              in
              let ns = Array.length sp in
              if ns = 0 then scan (k + 1)
              else begin
                let spine_index = sp.(dst_rank / n mod ns) in
                let up, down = hops_leaf i in
                let src_l2 = Topology.l2_of_coords topo ~pod:src_pod ~index:i in
                let dst_l2 = Topology.l2_of_coords topo ~pod:dst_pod ~index:i in
                {
                  Path.src;
                  dst;
                  hops =
                    [
                      up;
                      { Path.tier = Path.L2_spine;
                        cable = Topology.l2_spine_cable topo ~l2:src_l2 ~spine_index;
                        dir = Path.Up };
                      { Path.tier = Path.L2_spine;
                        cable = Topology.l2_spine_cable topo ~l2:dst_l2 ~spine_index;
                        dir = Path.Down };
                      down;
                    ];
                }
              end
          in
          scan 0
        end
end

let route_alloc topo policy shape (a : Alloc.t) =
  let nodes = comm_nodes a in
  let ranks = flow_ranks shape (Array.length nodes) in
  match policy with
  | Dmodk ->
      List.map
        (fun (i, j) -> Dmodk.path topo ~src:nodes.(i) ~dst:nodes.(j))
        ranks
  | Greedy ->
      Greedy.route topo (List.map (fun (i, j) -> (nodes.(i), nodes.(j))) ranks)
  | Jigsaw ->
      let view = Jig.build topo a in
      List.map
        (fun (i, j) ->
          Jig.route topo view ~src:nodes.(i) ~dst:nodes.(j) ~dst_rank:j)
        ranks

(* Per-job contribution to the routing-independent lower bound: how many
   inter-leaf flows leave/enter each leaf. *)
let lb_deltas topo paths =
  let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let bump leaf dout din =
    let o, i = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl leaf) in
    Hashtbl.replace tbl leaf (o + dout, i + din)
  in
  let inter = ref 0 in
  List.iter
    (fun (p : Path.t) ->
      match p.hops with
      | [] -> ()
      | _ ->
          incr inter;
          bump (Topology.node_leaf topo p.src) 1 0;
          bump (Topology.node_leaf topo p.dst) 0 1)
    paths;
  (!inter, Hashtbl.fold (fun l (o, i) acc -> (l, o, i) :: acc) tbl [])

type route_info = { ri_flows : int; ri_channels : int; ri_interfered : int }

type sample = {
  s_max_load : int;
  s_leaf_max : int;
  s_l2_max : int;
  s_shared : int;
  s_interfered : int;
  s_total_flows : int;
  s_jobs : int;
  s_lower_bound : int;
}

type t = {
  topo : Topology.t;
  policy : policy;
  shape : shape;
  index : Congestion.Index.t;
  (* Incremental lower bound: per-leaf inter-leaf flow counters and a
     max tracker over them. *)
  lb_out : int array;
  lb_in : int array;
  lb_max : Congestion.Maxtrack.t;
  mutable lb_flows : int;
  job_lb : (int, int * (int * int * int) list) Hashtbl.t;
      (** job -> (inter-leaf flows, (leaf, out, in) deltas) for retract *)
  (* Time-weighted series and peaks. *)
  mutable t0 : float;
  mutable last_t : float;
  mutable area_max : float;
  mutable area_interfered : float;
  mutable area_total : float;
  mutable peak_max : int;
  mutable peak_leaf : int;
  mutable peak_l2 : int;
  mutable peak_shared : int;
  mutable peak_interfered : int;
  mutable peak_lb : int;
  mutable routed_jobs : int;
  mutable routed_flows : int;
}

let create topo ~policy ~shape ~now =
  {
    topo;
    policy;
    shape;
    index = Congestion.Index.create topo;
    lb_out = Array.make (Topology.num_leaves topo) 0;
    lb_in = Array.make (Topology.num_leaves topo) 0;
    lb_max = Congestion.Maxtrack.create ();
    lb_flows = 0;
    job_lb = Hashtbl.create 64;
    t0 = now;
    last_t = now;
    area_max = 0.;
    area_interfered = 0.;
    area_total = 0.;
    peak_max = 0;
    peak_leaf = 0;
    peak_l2 = 0;
    peak_shared = 0;
    peak_interfered = 0;
    peak_lb = 0;
    routed_jobs = 0;
    routed_flows = 0;
  }

let policy_of t = t.policy
let shape_of t = t.shape
let mem t job = Congestion.Index.mem t.index job

let lower_bound t =
  if t.lb_flows = 0 then 0
  else
    let m1 = Topology.m1 t.topo in
    (Congestion.Maxtrack.max t.lb_max + m1 - 1) / m1

let sample t =
  let r = Congestion.Index.report t.index in
  {
    s_max_load = r.max_load;
    s_leaf_max = Congestion.Index.max_load_leaf t.index;
    s_l2_max = Congestion.Index.max_load_l2 t.index;
    s_shared = r.shared_channels;
    s_interfered = r.interfered_flows;
    s_total_flows = r.total_flows;
    s_jobs = Congestion.Index.jobs t.index;
    s_lower_bound = lower_bound t;
  }

(* Settle the time-weighted areas up to [now] under the pre-mutation
   values, then let the caller mutate; peaks are refreshed afterwards. *)
let advance t ~now =
  let dt = now -. t.last_t in
  if dt > 0. then begin
    let r = Congestion.Index.report t.index in
    t.area_max <- t.area_max +. (float_of_int r.max_load *. dt);
    t.area_interfered <-
      t.area_interfered +. (float_of_int r.interfered_flows *. dt);
    t.area_total <- t.area_total +. (float_of_int r.total_flows *. dt);
    t.last_t <- now
  end

let refresh_peaks t =
  let s = sample t in
  if s.s_max_load > t.peak_max then t.peak_max <- s.s_max_load;
  if s.s_leaf_max > t.peak_leaf then t.peak_leaf <- s.s_leaf_max;
  if s.s_l2_max > t.peak_l2 then t.peak_l2 <- s.s_l2_max;
  if s.s_shared > t.peak_shared then t.peak_shared <- s.s_shared;
  if s.s_interfered > t.peak_interfered then
    t.peak_interfered <- s.s_interfered;
  if s.s_lower_bound > t.peak_lb then t.peak_lb <- s.s_lower_bound

let apply_lb t sign (inter, deltas) =
  t.lb_flows <- t.lb_flows + (sign * inter);
  List.iter
    (fun (leaf, dout, din) ->
      if dout <> 0 then begin
        let v = t.lb_out.(leaf) in
        t.lb_out.(leaf) <- v + (sign * dout);
        Congestion.Maxtrack.move t.lb_max ~from_:v ~to_:(v + (sign * dout))
      end;
      if din <> 0 then begin
        let v = t.lb_in.(leaf) in
        t.lb_in.(leaf) <- v + (sign * din);
        Congestion.Maxtrack.move t.lb_max ~from_:v ~to_:(v + (sign * din))
      end)
    deltas

let job_info t job =
  match Congestion.Index.job_stats t.index job with
  | Some (f, c, i) -> { ri_flows = f; ri_channels = c; ri_interfered = i }
  | None -> { ri_flows = 0; ri_channels = 0; ri_interfered = 0 }

let add_job t ~now (a : Alloc.t) =
  advance t ~now;
  let paths = route_alloc t.topo t.policy t.shape a in
  Congestion.Index.add_job t.index ~job:a.job paths;
  let lb = lb_deltas t.topo paths in
  Hashtbl.replace t.job_lb a.job lb;
  apply_lb t 1 lb;
  t.routed_jobs <- t.routed_jobs + 1;
  t.routed_flows <- t.routed_flows + List.length paths;
  refresh_peaks t;
  job_info t a.job

let remove_job t ~now job =
  advance t ~now;
  let info = job_info t job in
  Congestion.Index.remove_job t.index job;
  (match Hashtbl.find_opt t.job_lb job with
  | Some lb ->
      Hashtbl.remove t.job_lb job;
      apply_lb t (-1) lb
  | None -> ());
  refresh_peaks t;
  info

type summary = {
  sm_policy : policy;
  sm_shape : shape;
  sm_routed_jobs : int;
  sm_routed_flows : int;
  sm_peak_max_load : int;
  sm_mean_max_load : float;  (** time-weighted *)
  sm_peak_leaf : int;
  sm_peak_l2 : int;
  sm_peak_shared : int;
  sm_peak_interfered : int;
  sm_peak_lower_bound : int;
  sm_interfered_fraction : float;
      (** time-weighted interfered flows over time-weighted total flows *)
  sm_elapsed : float;
}

let summary t ~now =
  advance t ~now;
  let elapsed = t.last_t -. t.t0 in
  {
    sm_policy = t.policy;
    sm_shape = t.shape;
    sm_routed_jobs = t.routed_jobs;
    sm_routed_flows = t.routed_flows;
    sm_peak_max_load = t.peak_max;
    sm_mean_max_load = (if elapsed > 0. then t.area_max /. elapsed else 0.);
    sm_peak_leaf = t.peak_leaf;
    sm_peak_l2 = t.peak_l2;
    sm_peak_shared = t.peak_shared;
    sm_peak_interfered = t.peak_interfered;
    sm_peak_lower_bound = t.peak_lb;
    sm_interfered_fraction =
      (if t.area_total > 0. then t.area_interfered /. t.area_total else 0.);
    sm_elapsed = elapsed;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "net telemetry (routing=%s, flows=%s): %d jobs / %d flows routed@\n"
    (policy_name s.sm_policy) (shape_name s.sm_shape) s.sm_routed_jobs
    s.sm_routed_flows;
  Format.fprintf ppf
    "  peak max channel load %d (leaf %d, l2 %d); time-weighted mean %.3f; \
     peak lower bound %d@\n"
    s.sm_peak_max_load s.sm_peak_leaf s.sm_peak_l2 s.sm_mean_max_load
    s.sm_peak_lower_bound;
  Format.fprintf ppf
    "  peak shared channels %d; peak interfered flows %d; interfered flow \
     fraction %.4f@\n"
    s.sm_peak_shared s.sm_peak_interfered s.sm_interfered_fraction
