type report = {
  max_load : int;
  shared_channels : int;
  interfered_flows : int;
  total_flows : int;
}

let analyze jobs =
  (* channel -> (total load, job set) *)
  let tbl : (Path.tier * Path.dir * int, int * int list) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun (job, paths) ->
      List.iter
        (fun (p : Path.t) ->
          List.iter
            (fun (h : Path.hop) ->
              let key = (h.tier, h.dir, h.cable) in
              let load, js =
                try Hashtbl.find tbl key with Not_found -> (0, [])
              in
              let js = if List.mem job js then js else job :: js in
              Hashtbl.replace tbl key (load + 1, js))
            p.hops)
        paths)
    jobs;
  let max_load = Hashtbl.fold (fun _ (l, _) acc -> max l acc) tbl 0 in
  let shared_channels =
    Hashtbl.fold (fun _ (_, js) acc -> if List.length js >= 2 then acc + 1 else acc) tbl 0
  in
  let shared_key key =
    match Hashtbl.find_opt tbl key with
    | Some (_, js) -> List.length js >= 2
    | None -> false
  in
  let interfered_flows = ref 0 and total_flows = ref 0 in
  List.iter
    (fun (_, paths) ->
      List.iter
        (fun (p : Path.t) ->
          incr total_flows;
          let hit =
            List.exists (fun (h : Path.hop) -> shared_key (h.tier, h.dir, h.cable)) p.hops
          in
          if hit then incr interfered_flows)
        paths)
    jobs;
  {
    max_load;
    shared_channels;
    interfered_flows = !interfered_flows;
    total_flows = !total_flows;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "max channel load %d; %d shared channels; %d/%d flows interfered"
    r.max_load r.shared_channels r.interfered_flows r.total_flows

(* Occupancy-histogram maximum tracker: [hist.(v)] counts values
   currently equal to [v]; the cached maximum only ever descends through
   emptied buckets, so the total descent work is bounded by the total
   number of increments — O(1) amortized per update. *)
module Maxtrack = struct
  type t = { mutable hist : int array; mutable cur : int }

  let create () = { hist = Array.make 64 0; cur = 0 }

  let ensure t v =
    let n = Array.length t.hist in
    if v >= n then begin
      let n' = max (v + 1) (2 * n) in
      let h = Array.make n' 0 in
      Array.blit t.hist 0 h 0 n;
      t.hist <- h
    end

  (* A tracked value changed from [from_] to [to_]. *)
  let move t ~from_ ~to_ =
    if from_ > 0 then t.hist.(from_) <- t.hist.(from_) - 1;
    if to_ > 0 then begin
      ensure t to_;
      t.hist.(to_) <- t.hist.(to_) + 1
    end;
    if to_ > t.cur then t.cur <- to_
    else while t.cur > 0 && t.hist.(t.cur) = 0 do t.cur <- t.cur - 1 done

  let max t = t.cur
end

module Index = struct
  (* One (channel, job) pair.  [c_flows] holds one entry per hop the
     job's flows place on the channel (minimal up/down paths never visit
     a channel twice, so each flow appears at most once). *)
  type flow = { mutable f_shared : int }

  type cell = { c_job : int; mutable c_count : int; mutable c_flows : flow list }

  type jobrec = {
    j_flows : flow array;
    j_cells : (int * cell) list;  (** (packed channel, cell) pairs. *)
  }

  type t = {
    leaf_cables : int;  (** Leaf–L2 cable count [L]. *)
    cells : cell list array;  (** Packed channel -> cells, one per job. *)
    loads : int array;  (** Packed channel -> total flow count. *)
    jobs : (int, jobrec) Hashtbl.t;
    leaf_max : Maxtrack.t;  (** Over channels [0, 2L). *)
    l2_max : Maxtrack.t;  (** Over channels [2L, 2L+2S). *)
    mutable shared_channels : int;
    mutable interfered_flows : int;
    mutable total_flows : int;
  }

  let create topo =
    let l = Fattree.Topology.num_leaf_l2_cables topo in
    let s = Fattree.Topology.num_l2_spine_cables topo in
    let n = (2 * l) + (2 * s) in
    {
      leaf_cables = l;
      cells = Array.make n [];
      loads = Array.make n 0;
      jobs = Hashtbl.create 64;
      leaf_max = Maxtrack.create ();
      l2_max = Maxtrack.create ();
      shared_channels = 0;
      interfered_flows = 0;
      total_flows = 0;
    }

  (* Four contiguous segments: leaf-up, leaf-down, l2-up, l2-down. *)
  let pack t (h : Path.hop) =
    match (h.tier, h.dir) with
    | Path.Leaf_l2, Path.Up -> h.cable
    | Path.Leaf_l2, Path.Down -> t.leaf_cables + h.cable
    | Path.L2_spine, Path.Up -> (2 * t.leaf_cables) + h.cable
    | Path.L2_spine, Path.Down ->
        (2 * t.leaf_cables) + ((Array.length t.loads - (2 * t.leaf_cables)) / 2)
        + h.cable

  let tracker t ch = if ch < 2 * t.leaf_cables then t.leaf_max else t.l2_max

  let bump_flow t f delta =
    let before = f.f_shared in
    f.f_shared <- before + delta;
    if before = 0 && delta > 0 then t.interfered_flows <- t.interfered_flows + 1
    else if before + delta = 0 && delta < 0 then
      t.interfered_flows <- t.interfered_flows - 1

  let add_job t ~job paths =
    if Hashtbl.mem t.jobs job then
      invalid_arg (Printf.sprintf "Congestion.Index.add_job: job %d present" job);
    (* Channels this add already touched, so later hops of the same job
       reuse their cell instead of scanning the channel's cell list. *)
    let mine : (int, cell) Hashtbl.t = Hashtbl.create 64 in
    let j_cells = ref [] in
    let flows =
      List.map
        (fun (p : Path.t) ->
          let f = { f_shared = 0 } in
          t.total_flows <- t.total_flows + 1;
          List.iter
            (fun (h : Path.hop) ->
              let ch = pack t h in
              let cell =
                match Hashtbl.find_opt mine ch with
                | Some c -> c
                | None ->
                    let c = { c_job = job; c_count = 0; c_flows = [] } in
                    let others = t.cells.(ch) in
                    t.cells.(ch) <- c :: others;
                    Hashtbl.add mine ch c;
                    j_cells := (ch, c) :: !j_cells;
                    (* Our arrival just made the channel shared: every
                       flow already on it gains a shared hop. *)
                    (match others with
                    | [ o ] ->
                        t.shared_channels <- t.shared_channels + 1;
                        List.iter (fun f' -> bump_flow t f' 1) o.c_flows
                    | _ -> ());
                    c
              in
              cell.c_count <- cell.c_count + 1;
              cell.c_flows <- f :: cell.c_flows;
              (match t.cells.(ch) with
              | _ :: _ :: _ -> bump_flow t f 1
              | _ -> ());
              let load = t.loads.(ch) in
              t.loads.(ch) <- load + 1;
              Maxtrack.move (tracker t ch) ~from_:load ~to_:(load + 1))
            p.hops;
          f)
        paths
    in
    Hashtbl.add t.jobs job
      { j_flows = Array.of_list flows; j_cells = !j_cells }

  let remove_job t job =
    match Hashtbl.find_opt t.jobs job with
    | None -> invalid_arg (Printf.sprintf "Congestion.Index.remove_job: job %d absent" job)
    | Some jr ->
        Hashtbl.remove t.jobs job;
        t.total_flows <- t.total_flows - Array.length jr.j_flows;
        Array.iter
          (fun f -> if f.f_shared > 0 then
              t.interfered_flows <- t.interfered_flows - 1)
          jr.j_flows;
        List.iter
          (fun (ch, cell) ->
            let rest =
              List.filter (fun (c : cell) -> c != cell) t.cells.(ch)
            in
            t.cells.(ch) <- rest;
            (* Down to one job: the survivor's flows lose a shared hop. *)
            (match rest with
            | [ o ] ->
                t.shared_channels <- t.shared_channels - 1;
                List.iter (fun f' -> bump_flow t f' (-1)) o.c_flows
            | _ -> ());
            let load = t.loads.(ch) in
            t.loads.(ch) <- load - cell.c_count;
            Maxtrack.move (tracker t ch) ~from_:load ~to_:(load - cell.c_count))
          jr.j_cells

  let mem t job = Hashtbl.mem t.jobs job
  let jobs t = Hashtbl.length t.jobs
  let max_load_leaf t = Maxtrack.max t.leaf_max
  let max_load_l2 t = Maxtrack.max t.l2_max

  let job_stats t job =
    match Hashtbl.find_opt t.jobs job with
    | None -> None
    | Some jr ->
        let interfered =
          Array.fold_left
            (fun acc f -> if f.f_shared > 0 then acc + 1 else acc)
            0 jr.j_flows
        in
        Some (Array.length jr.j_flows, List.length jr.j_cells, interfered)

  let report t =
    {
      max_load = max (Maxtrack.max t.leaf_max) (Maxtrack.max t.l2_max);
      shared_channels = t.shared_channels;
      interfered_flows = t.interfered_flows;
      total_flows = t.total_flows;
    }
end
