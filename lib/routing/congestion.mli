(** Inter-job interference measurement.

    Quantifies what job-isolating scheduling eliminates: with several jobs
    placed on a shared tree under static D-mod-k routing, flows from
    different jobs can land on the same channel.  [interference] reports,
    per job, how many of its flows share a channel with another job's
    flow — the situation that slows communication-intensive applications
    by up to 120% in the controlled experiments the paper cites. *)

type report = {
  max_load : int;  (** Largest per-channel flow count overall. *)
  shared_channels : int;  (** Channels carrying flows of >= 2 jobs. *)
  interfered_flows : int;  (** Flows sharing >= 1 channel with another job. *)
  total_flows : int;
}

val analyze : (int * Path.t list) list -> report
(** [analyze jobs] takes (job id, routed paths) pairs and reports
    cross-job channel sharing.  Intra-job sharing is not counted as
    interference (it is under the application's own control). *)

val pp_report : Format.formatter -> report -> unit

(** Occupancy-histogram maximum tracker over a multiset of nonnegative
    integers: [move] records one element changing value, [max] is the
    current largest element, O(1) amortized (the cached maximum only
    descends through buckets whose count reached zero). *)
module Maxtrack : sig
  type t

  val create : unit -> t

  val move : t -> from_:int -> to_:int -> unit
  (** One tracked value changed from [from_] to [to_].  Value 0 is "not
      present": entering a value with [~from_:0] adds it, leaving with
      [~to_:0] drops it. *)

  val max : t -> int
  (** Largest value present; 0 when empty. *)
end

(** Persistent incremental interference index.

    Maintains the same quantities as {!analyze} under job add/remove in
    time proportional to the {e changed} job's hops — no full re-solve
    per event — so the simulator can keep measured congestion live at
    every start/completion/kill.  State transitions are counted exactly:
    a channel becomes shared when a second job lands on it (every flow
    already there gains a shared hop), and unshared when it drops back
    to one job.  Per-channel maxima are tracked with an occupancy
    histogram, O(1) amortized.

    The result after any add/remove sequence equals {!analyze} of the
    currently-present jobs (property-tested), and is independent of the
    order jobs were added. *)
module Index : sig
  type t

  val create : Fattree.Topology.t -> t
  (** An empty index over the topology's channel space (up and down
      directions of every leaf–L2 and L2–spine cable). *)

  val add_job : t -> job:int -> Path.t list -> unit
  (** Install a job's routed flows.  Raises [Invalid_argument] if [job]
      is already present. *)

  val remove_job : t -> int -> unit
  (** Retract every flow of a job, restoring all counters to their
      values as if the job had never been added.  Raises
      [Invalid_argument] if the job is absent. *)

  val mem : t -> int -> bool
  val jobs : t -> int
  (** Number of jobs currently installed. *)

  val max_load_leaf : t -> int
  (** Largest current load on any leaf–L2 channel. *)

  val max_load_l2 : t -> int
  (** Largest current load on any L2–spine channel. *)

  val job_stats : t -> int -> (int * int * int) option
  (** [job_stats t job] is [Some (flows, channels, interfered)]: the
      job's flow count, distinct channels used, and how many of its
      flows currently share a channel with another job. *)

  val report : t -> report
  (** The same report {!analyze} would compute for the present jobs. *)
end
