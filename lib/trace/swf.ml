let is_blank line = String.trim line = ""
let is_comment line = String.length (String.trim line) > 0 && (String.trim line).[0] = ';'

let parse_line id line =
  if is_blank line || is_comment line then Ok None
  else begin
    let fields =
      String.split_on_char ' ' (String.trim line)
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
    in
    if List.length fields < 8 then
      Error (Printf.sprintf "SWF: expected >= 8 fields, got %d" (List.length fields))
    else begin
      let nth n = List.nth fields n in
      let float_field n =
        match float_of_string_opt (nth n) with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "SWF: field %d is not a number: %s" (n + 1) (nth n))
      in
      match (float_field 1, float_field 3, float_field 7, float_field 4) with
      | Ok submit, Ok runtime, Ok req_procs, Ok alloc_procs ->
          let size =
            if req_procs > 0.0 then int_of_float req_procs
            else int_of_float alloc_procs
          in
          let est_runtime =
            (* Field 9 is the requested wall time; clamp to >= runtime
               (the simulator never truncates jobs). *)
            match float_field 8 with
            | Ok r when r > 0.0 -> Some (Float.max r runtime)
            | _ -> None
          in
          if size <= 0 || runtime <= 0.0 then Ok None
          else (
            match
              Job.v ~id ~size ~runtime ?est_runtime
                ~arrival:(Float.max 0.0 submit) ()
            with
            | j -> Ok (Some j)
            | exception Invalid_argument m ->
                Error (Printf.sprintf "SWF: unusable job record: %s" m))
      | (Error _ as e), _, _, _
      | _, (Error _ as e), _, _
      | _, _, (Error _ as e), _
      | _, _, _, (Error _ as e) ->
          (match e with Error m -> Error m | Ok _ -> assert false)
    end
  end

let parse_string ~name ~system_nodes text =
  let lines = String.split_on_char '\n' text in
  let jobs = ref [] in
  let next_id = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then
        match parse_line !next_id line with
        | Ok None -> ()
        | Ok (Some j) ->
            incr next_id;
            jobs := j :: !jobs
        | Error m -> error := Some (Printf.sprintf "line %d: %s" (lineno + 1) m))
    lines;
  match !error with
  | Some m -> Error m
  | None ->
      Ok (Workload.create ~name ~system_nodes (Array.of_list (List.rev !jobs)))

let load ~name ~system_nodes path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string ~name ~system_nodes text
  | exception Sys_error m -> Error m

let to_string (w : Workload.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "; SWF export of trace %s (%d jobs)\n" w.name
       (Array.length w.jobs));
  Array.iter
    (fun (j : Job.t) ->
      (* job submit wait run alloc avgcpu mem req_procs req_time req_mem
         status user group app queue part prev think *)
      Buffer.add_string buf
        (Printf.sprintf "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 -1 -1 -1 -1 -1 -1 -1\n"
           (j.id + 1) j.arrival j.runtime j.size j.size j.est_runtime))
    w.jobs;
  Buffer.contents buf

let save w path = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string w))
