open Fattree

type target =
  | Node of int
  | Leaf_cable of int
  | L2_cable of int
  | Leaf_switch of int
  | L2_switch of int
  | Spine of int

type kind = Fail | Repair

type event = { time : float; kind : kind; target : target }

type t = { events : event array }

let none = { events = [||] }

(* Stable by construction: [List.stable_sort] keeps the scripted order
   of same-instant events, so fail-before-repair scripts stay
   deterministic. *)
let scripted evs =
  let events = Array.of_list (List.stable_sort (fun a b -> compare a.time b.time) evs) in
  Array.iter
    (fun e ->
      if e.time < 0.0 then invalid_arg "Faults.scripted: negative event time")
    events;
  { events }

(* Keeps the caller's order verbatim — the constructor for traces whose
   positions are load-bearing (the simulator tags scheduled fault events
   by array index, and a daemon appends injected events after the fact,
   possibly with earlier times than static ones). *)
let of_ordered evs =
  let events = Array.of_list evs in
  Array.iter
    (fun e ->
      if e.time < 0.0 then invalid_arg "Faults.of_ordered: negative event time")
    events;
  { events }

let events t = t.events
let num_events t = Array.length t.events
let is_empty t = Array.length t.events = 0

let target_name = function
  | Node _ -> "node"
  | Leaf_cable _ -> "leaf-cable"
  | L2_cable _ -> "l2-cable"
  | Leaf_switch _ -> "leaf"
  | L2_switch _ -> "l2"
  | Spine _ -> "spine"

let target_id = function
  | Node i | Leaf_cable i | L2_cable i | Leaf_switch i | L2_switch i | Spine i
    -> i

let target_of_name name id =
  match name with
  | "node" -> Ok (Node id)
  | "leaf-cable" -> Ok (Leaf_cable id)
  | "l2-cable" -> Ok (L2_cable id)
  | "leaf" -> Ok (Leaf_switch id)
  | "l2" -> Ok (L2_switch id)
  | "spine" -> Ok (Spine id)
  | _ ->
      Error
        (Printf.sprintf
           "unknown fault target %S (node|leaf-cable|l2-cable|leaf|l2|spine)"
           name)

let pp_event ppf e =
  Format.fprintf ppf "%.3f %s %s %d" e.time
    (match e.kind with Fail -> "fail" | Repair -> "repair")
    (target_name e.target) (target_id e.target)

(* ------------------------------------------------------------------ *)
(* Target -> concrete resources                                        *)
(* ------------------------------------------------------------------ *)

(* A whole-switch failure takes down every cable hanging off the switch
   — and, for a leaf switch, its nodes, which have no other path into
   the network.  Nodes behind a failed L2/spine keep their remaining
   uplinks (the tree is multi-path above the leaf level). *)
let resources topo target =
  let check what id bound =
    if id < 0 || id >= bound then
      invalid_arg (Printf.sprintf "Faults.resources: %s %d out of range" what id)
  in
  match target with
  | Node n ->
      check "node" n (Topology.num_nodes topo);
      ([| n |], [||], [||])
  | Leaf_cable c ->
      check "leaf cable" c (Topology.num_leaf_l2_cables topo);
      ([||], [| c |], [||])
  | L2_cable c ->
      check "l2 cable" c (Topology.num_l2_spine_cables topo);
      ([||], [||], [| c |])
  | Leaf_switch leaf ->
      check "leaf switch" leaf (Topology.num_leaves topo);
      let m1 = Topology.m1 topo in
      let first = Topology.leaf_first_node topo leaf in
      ( Array.init m1 (fun i -> first + i),
        Array.init m1 (fun i -> Topology.leaf_l2_cable topo ~leaf ~l2_index:i),
        [||] )
  | L2_switch l2 ->
      check "l2 switch" l2 (Topology.num_l2 topo);
      let m2 = Topology.m2 topo in
      let pod = Topology.l2_pod topo l2 in
      let idx = Topology.l2_index_in_pod topo l2 in
      let leaf_cables =
        Array.init m2 (fun i ->
            let leaf = Topology.leaf_of_coords topo ~pod ~leaf:i in
            Topology.leaf_l2_cable topo ~leaf ~l2_index:idx)
      in
      let l2_cables =
        Array.init m2 (fun j -> Topology.l2_spine_cable topo ~l2 ~spine_index:j)
      in
      ([||], leaf_cables, l2_cables)
  | Spine sp ->
      check "spine" sp (Topology.num_spines topo);
      let group = Topology.spine_group topo sp in
      let idx = Topology.spine_index_in_group topo sp in
      let cables =
        Array.init (Topology.pods topo) (fun pod ->
            let l2 = Topology.l2_of_coords topo ~pod ~index:group in
            Topology.l2_spine_cable topo ~l2 ~spine_index:idx)
      in
      ([||], [||], cables)

let apply st target =
  let nodes, leaf_cables, l2_cables = resources (State.topo st) target in
  Array.iter (State.fail_node st) nodes;
  Array.iter (State.fail_leaf_cable st) leaf_cables;
  Array.iter (State.fail_l2_cable st) l2_cables

let revert st target =
  let nodes, leaf_cables, l2_cables = resources (State.topo st) target in
  Array.iter (State.repair_node st) nodes;
  Array.iter (State.repair_leaf_cable st) leaf_cables;
  Array.iter (State.repair_l2_cable st) l2_cables

(* ------------------------------------------------------------------ *)
(* MTBF/MTTR generation                                                *)
(* ------------------------------------------------------------------ *)

(* One deterministic stream per component, independent of every other
   component and of how far any other stream is consumed — the same
   seed yields the same fault history whatever scheduler replays it
   (mirroring Scenario's per-job streams). *)
let component_prng ~seed ~klass ~id =
  Sim.Prng.create ~seed:((((seed * 1_000_003) + klass) * 1_000_003) + id)

let generate ?(nodes = true) ?(cables = true) ?(switches = true) ~seed ~mtbf
    ~mttr ~horizon topo =
  if mtbf <= 0.0 then invalid_arg "Faults.generate: mtbf must be positive";
  if mttr <= 0.0 then invalid_arg "Faults.generate: mttr must be positive";
  let acc = ref [] in
  let component klass id mk =
    let prng = component_prng ~seed ~klass ~id in
    let t = ref (Sim.Prng.exponential prng ~mean:mtbf) in
    while !t < horizon do
      let down = Sim.Prng.exponential prng ~mean:mttr in
      acc := { time = !t; kind = Fail; target = mk id } :: !acc;
      acc := { time = !t +. down; kind = Repair; target = mk id } :: !acc;
      t := !t +. down +. Sim.Prng.exponential prng ~mean:mtbf
    done
  in
  let each klass count mk =
    for id = 0 to count - 1 do
      component klass id mk
    done
  in
  if nodes then each 0 (Topology.num_nodes topo) (fun i -> Node i);
  if cables then begin
    each 1 (Topology.num_leaf_l2_cables topo) (fun i -> Leaf_cable i);
    each 2 (Topology.num_l2_spine_cables topo) (fun i -> L2_cable i)
  end;
  if switches then begin
    each 3 (Topology.num_leaves topo) (fun i -> Leaf_switch i);
    each 4 (Topology.num_l2 topo) (fun i -> L2_switch i);
    each 5 (Topology.num_spines topo) (fun i -> Spine i)
  end;
  scripted !acc

(* ------------------------------------------------------------------ *)
(* Scripted trace files                                                *)
(* ------------------------------------------------------------------ *)

let parse_line ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ time; kind; target; id ] -> (
        match
          ( float_of_string_opt time,
            (match kind with
            | "fail" -> Some Fail
            | "repair" -> Some Repair
            | _ -> None),
            int_of_string_opt id )
        with
        | Some time, Some kind, Some id -> (
            if time < 0.0 then
              Error (Printf.sprintf "line %d: negative event time" lineno)
            else
            match target_of_name target id with
            | Ok target -> Ok (Some { time; kind; target })
            | Error _ ->
                Error
                  (Printf.sprintf
                     "line %d: unknown target %s (node|leaf-cable|l2-cable|leaf|l2|spine)"
                     lineno target))
        | _ ->
            Error
              (Printf.sprintf "line %d: expected <time> fail|repair <target> <id>"
                 lineno))
    | _ ->
        Error
          (Printf.sprintf "line %d: expected <time> fail|repair <target> <id>"
             lineno)

let load path =
  try
    In_channel.with_open_text path (fun ic ->
        let rec go lineno acc =
          match In_channel.input_line ic with
          | None -> Ok (scripted (List.rev acc))
          | Some line -> (
              match parse_line ~lineno line with
              | Ok None -> go (lineno + 1) acc
              | Ok (Some e) -> go (lineno + 1) (e :: acc)
              | Error m -> Error m)
        in
        go 1 [])
  with Sys_error m -> Error m
