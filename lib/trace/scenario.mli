(** Job performance scenarios (paper §5.4.1).

    Job-isolating schedulers eliminate inter-job network interference, so
    jobs may run faster in isolation than the baseline runtime recorded
    in the trace.  Each scenario assigns every job a speed-up [s];
    isolating schedulers run the job for [runtime / (1 + s)] while the
    Baseline scheduler uses the trace runtime unchanged.

    Random assignments (V2 and Random) are keyed by a scenario seed and
    the job id, so every scheduler sees the same speed-up for the same
    job. *)

type t =
  | No_speedup  (** Worst case: isolation buys nothing. *)
  | Fixed of int
      (** [Fixed x]: jobs larger than four nodes speed up by [x]%%
          (paper's 5%%, 10%%, 20%% scenarios). *)
  | V2
      (** TA-paper scenario: jobs are randomly assigned to speed-up
          buckets with maxima 0/10/20/30%%; within a bucket the speed-up
          scales linearly with node count (our documented reading:
          factor [min 1 (size/256)]). *)
  | Random
      (** Less optimistic: only jobs over 64 nodes speed up, by 0, 5, 15
          or 30%% chosen uniformly. *)

val all : t list
(** The six scenarios of Figures 7 and 8, in paper order. *)

val name : t -> string

val of_name : string -> (t, string) result
(** Inverse of {!name}, also accepting the CLI spellings ["10"] and
    ["10%"].  Shared by the [jigsaw-sim] flag parser and checkpoint
    restore. *)

val speedup : t -> seed:int -> Job.t -> float
(** The fractional speed-up [s >= 0] for this job under the scenario. *)

val isolated_runtime : t -> seed:int -> Job.t -> float
(** [job.runtime /. (1 +. speedup)]. *)
