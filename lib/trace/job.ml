type spec =
  | Rigid of int
  | Moldable of { min_size : int; max_size : int; pref : int }

type t = {
  id : int;
  size : int;
  spec : spec;
  runtime : float;
  est_runtime : float;
  arrival : float;
  bw_class : float;
}

let nominal = function Rigid n -> n | Moldable { pref; _ } -> pref

let v ?(arrival = 0.0) ?(bw_class = 0.25) ?est_runtime ?spec ~id ~size ~runtime
    () =
  if size < 1 then invalid_arg "Job.v: size must be >= 1";
  if runtime <= 0.0 then invalid_arg "Job.v: runtime must be positive";
  if arrival < 0.0 then invalid_arg "Job.v: arrival must be >= 0";
  if bw_class <= 0.0 || bw_class > 1.0 then
    invalid_arg "Job.v: bw_class must be in (0, 1]";
  let est_runtime = Option.value est_runtime ~default:runtime in
  if est_runtime < runtime then
    invalid_arg "Job.v: est_runtime must be >= runtime";
  let spec = Option.value spec ~default:(Rigid size) in
  (match spec with
  | Rigid n -> if n <> size then invalid_arg "Job.v: Rigid spec must equal size"
  | Moldable { min_size; max_size; pref } ->
      if min_size < 1 then invalid_arg "Job.v: min_size must be >= 1";
      if pref <> size then invalid_arg "Job.v: Moldable pref must equal size";
      if not (min_size <= pref && pref <= max_size) then
        invalid_arg "Job.v: Moldable requires min_size <= pref <= max_size");
  { id; size; spec; runtime; est_runtime; arrival; bw_class }

let is_large j = j.size > 100
let is_moldable j = match j.spec with Rigid _ -> false | Moldable _ -> true

let min_size j =
  match j.spec with Rigid n -> n | Moldable { min_size; _ } -> min_size

let max_size j =
  match j.spec with Rigid n -> n | Moldable { max_size; _ } -> max_size

let at_size j n = { j with size = n }

let scale_runtime j ~granted base =
  (* Work-conserving molding: node-seconds are preserved, so the exact
     [granted = size] guard keeps rigid runs (and moldable runs granted
     their preferred size) bit-identical to the pre-molding simulator. *)
  if granted = j.size then base
  else base *. float_of_int j.size /. float_of_int granted

let pp ppf j =
  match j.spec with
  | Rigid _ ->
      Format.fprintf ppf "job %d: %d nodes, %.0fs, arrives %.0f" j.id j.size
        j.runtime j.arrival
  | Moldable { min_size; max_size; _ } ->
      Format.fprintf ppf "job %d: %d nodes [%d-%d], %.0fs, arrives %.0f" j.id
        j.size min_size max_size j.runtime j.arrival
