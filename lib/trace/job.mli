(** Jobs as they appear in scheduling traces. *)

(** How many nodes the job can run on.  [Rigid n] is the classical
    exact request; [Moldable] jobs accept any granted size in
    [min_size, max_size], preferring [pref], and run work-conservingly:
    the node-seconds of the preferred-size run are preserved, so a job
    granted half its preference runs twice as long. *)
type spec =
  | Rigid of int
  | Moldable of { min_size : int; max_size : int; pref : int }

type t = {
  id : int;  (** Dense identifier, unique within a trace. *)
  size : int;
      (** Nominal node count (>= 1): the rigid request, or the moldable
          preference.  Every consumer that predates molding reads this
          field, so rigid behaviour is unchanged by construction. *)
  spec : spec;  (** Size flexibility; [Rigid size] for classical jobs. *)
  runtime : float;
      (** Baseline runtime in seconds {e at the nominal size} — the
          runtime observed (or assumed) under traditional scheduling,
          network interference included. *)
  est_runtime : float;
      (** The user-supplied runtime estimate (requested wall time).  EASY
          backfilling decisions use estimates; actual completions use
          {!runtime}.  Trace generators default it to the actual runtime
          (the paper's traces carry no usable estimates); SWF input takes
          it from the requested-time field when present. *)
  arrival : float;  (** Submission time in seconds. *)
  bw_class : float;
      (** Average per-link bandwidth demand as a fraction of usable link
          capacity, used only by the LC+S scheduler (paper §5.4.2: one of
          0.5/1.0/1.5/2.0 GB/s over a 4 GB/s usable cap, i.e. 0.125,
          0.25, 0.375 or 0.5). *)
}

val v :
  ?arrival:float ->
  ?bw_class:float ->
  ?est_runtime:float ->
  ?spec:spec ->
  id:int ->
  size:int ->
  runtime:float ->
  unit ->
  t
(** Constructor with defaults [arrival = 0.], [bw_class = 0.25],
    [est_runtime = runtime], [spec = Rigid size].  Validates [size >= 1],
    [runtime > 0] and [est_runtime >= runtime] (schedulers kill jobs at
    their estimate; under-estimates would truncate jobs, which the
    simulator does not model).  A [spec] must agree with [size]:
    [Rigid size], or [Moldable] with [pref = size] and
    [1 <= min_size <= pref <= max_size]. *)

val nominal : spec -> int
(** The spec's nominal size: [n] for [Rigid n], [pref] for [Moldable]. *)

val is_large : t -> bool
(** Jobs over 100 nodes — the paper's "large job" threshold for the
    turnaround-time breakdown (Figure 7). *)

val is_moldable : t -> bool

val min_size : t -> int
(** Smallest acceptable granted size ([size] for rigid jobs). *)

val max_size : t -> int
(** Largest useful granted size ([size] for rigid jobs). *)

val at_size : t -> int -> t
(** [at_size j n] is [j] requesting exactly [n] nodes ([size = n], spec
    unchanged) — the probe-time view allocators use to test a candidate
    granted size.  The nominal size (and hence the scenario speedup and
    work-conserving scaling base) is the original [j.size]. *)

val scale_runtime : t -> granted:int -> float -> float
(** [scale_runtime j ~granted base] is the work-conserving runtime of
    [j] granted [granted] nodes when its nominal-size runtime is [base]:
    [base * size / granted], with an exact no-op when [granted = size]
    so rigid timelines stay bit-identical. *)

val pp : Format.formatter -> t -> unit
