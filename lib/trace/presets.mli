(** The nine evaluation traces of the paper's Table 1, with the cluster
    each is simulated on (§5.4.3).

    Default mode generates scaled-down job counts so the whole benchmark
    suite runs in minutes; [full:true] uses the paper's job counts. *)

type entry = {
  workload : Workload.t;
  cluster_radix : int;
      (** Radix of the simulation fat-tree: Synth-16 on radix 16
          (1024 nodes), Synth-22 on 22 (2662), Synth-28 on 28 (5488);
          Thunder, Atlas and the Cab months on radix 18 (1458). *)
}

val synth_16 : full:bool -> entry
val synth_22 : full:bool -> entry
val synth_28 : full:bool -> entry
val thunder : full:bool -> entry
val atlas : full:bool -> entry
val aug_cab : full:bool -> entry
val sep_cab : full:bool -> entry
val oct_cab : full:bool -> entry
val nov_cab : full:bool -> entry

val all : full:bool -> entry list
(** In Table 1 order: Synth-16, Synth-22, Synth-28, Aug/Sep/Oct/Nov-Cab,
    Thunder, Atlas. *)

val figure6_order : full:bool -> entry list
(** In Figure 6 x-axis order: Synth-16/22/28, Atlas, Thunder, then the
    Cab months. *)

val scale_radix : int
(** Switch radix of the scale tier's cluster: 48 (27648 nodes) —
    beyond the paper's largest evaluation machine, for measuring
    allocator cost growth with radix. *)

val scale_all : unit -> entry list
(** The radix-48 {e scale tier}: the nine Table-1 workload families
    re-targeted at a radix-48 cluster.  Job sizes are multiplied by the
    node-count ratio of the radix-48 machine to each family's native
    cluster (so traces keep their machine-relative shape); arrivals and
    runtimes are unchanged; job counts are small enough that the full
    45-cell grid finishes in minutes on one core.  Workload names carry
    an ["@48"] suffix (e.g. ["Synth-16@48"]), so sweep cell ids and
    manifests never collide with the native tier's. *)

val by_name : full:bool -> string -> entry option
(** Looks up native-tier names first, then — for names containing
    ['@'] — the scale tier. *)
