type entry = { workload : Workload.t; cluster_radix : int }

(* Scaled-down default job counts keep the full benchmark suite in the
   minutes range; [full:true] restores the paper's counts (Table 1). *)
let count ~full ~paper ~scaled = if full then paper else scaled

let synth_16 ~full =
  {
    workload =
      Synthetic.synth ~mean_size:16
        ~n_jobs:(count ~full ~paper:10_000 ~scaled:2_500)
        ~seed:1601 ~max_size:1024;
    cluster_radix = 16;
  }

let synth_22 ~full =
  {
    workload =
      Synthetic.synth ~mean_size:22
        ~n_jobs:(count ~full ~paper:10_000 ~scaled:2_500)
        ~seed:2201 ~max_size:2662;
    cluster_radix = 22;
  }

let synth_28 ~full =
  {
    workload =
      Synthetic.synth ~mean_size:28
        ~n_jobs:(count ~full ~paper:10_000 ~scaled:2_500)
        ~seed:2801 ~max_size:5488;
    cluster_radix = 28;
  }

(* Scaled-down runs shorten the runtime tail proportionally: a paper-
   length monster job amortized over 100k jobs would dominate a 6k-job
   window and swamp the steady-state metrics. *)
let thunder ~full =
  {
    workload =
      Synthetic.thunder_like
        ~runtime_cap:(if full then 172362.0 else 40000.0)
        ~n_jobs:(count ~full ~paper:105_764 ~scaled:6_000)
        ~seed:3301 ();
    cluster_radix = 18;
  }

let atlas ~full =
  {
    workload =
      Synthetic.atlas_like
        ~runtime_cap:(if full then 342754.0 else 60000.0)
        ~n_jobs:(count ~full ~paper:29_700 ~scaled:2_500)
        ~seed:3401 ();
    cluster_radix = 18;
  }

(* The Cab months keep their arrival processes; Aug and Nov had low
   baseline utilization, so the paper scales their arrival times by 0.5
   (doubling offered load).  We generate them at low target load and
   apply the same scaling. *)
(* The scaled Cab months also shorten the runtime tail: the real traces
   span a month, so an 86 ks job is 3%% of the window; at scaled job
   counts the window shrinks to tens of kiloseconds and an uncapped tail
   would push most node-seconds past the arrival window, deflating
   offered load for every scheduler. *)
let cab_cap ~full = if full then 86429.0 else 6000.0

let aug_cab ~full =
  {
    workload =
      Synthetic.cab_like ~runtime_cap:(cab_cap ~full) ~month:"Aug"
        ~n_jobs:(count ~full ~paper:30_691 ~scaled:2_500)
        ~seed:3501 ~target_load:0.56 ~arrival_scale:0.5 ();
    cluster_radix = 18;
  }

let sep_cab ~full =
  {
    workload =
      Synthetic.cab_like ~runtime_cap:(cab_cap ~full) ~month:"Sep"
        ~n_jobs:(count ~full ~paper:87_564 ~scaled:5_000)
        ~seed:3601 ~target_load:1.12 ~arrival_scale:1.0 ();
    cluster_radix = 18;
  }

let oct_cab ~full =
  {
    workload =
      Synthetic.cab_like ~runtime_cap:(cab_cap ~full) ~month:"Oct"
        ~n_jobs:(count ~full ~paper:125_228 ~scaled:6_000)
        ~seed:3701 ~target_load:1.3 ~arrival_scale:1.0 ();
    cluster_radix = 18;
  }

let nov_cab ~full =
  {
    workload =
      Synthetic.cab_like ~runtime_cap:(cab_cap ~full) ~month:"Nov"
        ~n_jobs:(count ~full ~paper:50_353 ~scaled:3_000)
        ~seed:3801 ~target_load:0.58 ~arrival_scale:0.5 ();
    cluster_radix = 18;
  }

let all ~full =
  [
    synth_16 ~full;
    synth_22 ~full;
    synth_28 ~full;
    aug_cab ~full;
    sep_cab ~full;
    oct_cab ~full;
    nov_cab ~full;
    thunder ~full;
    atlas ~full;
  ]

let figure6_order ~full =
  [
    synth_16 ~full;
    synth_22 ~full;
    synth_28 ~full;
    atlas ~full;
    thunder ~full;
    aug_cab ~full;
    sep_cab ~full;
    oct_cab ~full;
    nov_cab ~full;
  ]

(* ------------------------------------------------------------------ *)
(* Radix-48 scale tier                                                 *)
(* ------------------------------------------------------------------ *)

let scale_radix = 48
let scale_nodes = scale_radix * scale_radix * scale_radix / 4

(* Re-target a native-tier workload at the radix-48 machine: sizes are
   multiplied by the node-count ratio of the radix-48 cluster to the
   family's native cluster, so each trace keeps its machine-relative
   shape (a half-machine Atlas request stays half the machine).
   Arrivals and runtimes are untouched — only the spatial axis grows. *)
let rescale ~native_nodes (w : Workload.t) =
  let factor =
    max 1
      (int_of_float
         (Float.round (float_of_int scale_nodes /. float_of_int native_nodes)))
  in
  Workload.create
    ~name:(Printf.sprintf "%s@%d" w.Workload.name scale_radix)
    ~system_nodes:scale_nodes
    (Array.map
       (fun (j : Job.t) ->
         { j with Job.size = min scale_nodes (j.Job.size * factor) })
       w.Workload.jobs)

(* Job counts are a fraction of the scaled native tier: per-event
   allocator cost grows with radix, and the tier exists to measure that
   cost — the full 45-cell grid should stay in the minutes range on one
   core.  Seeds match the native families, so the streams are the same
   draws, just rescaled. *)
let scale_all () =
  let e native w = { workload = rescale ~native_nodes:native w; cluster_radix = scale_radix } in
  [
    e 1024 (Synthetic.synth ~mean_size:16 ~n_jobs:250 ~seed:1601 ~max_size:1024);
    e 2662 (Synthetic.synth ~mean_size:22 ~n_jobs:250 ~seed:2201 ~max_size:2662);
    e 5488 (Synthetic.synth ~mean_size:28 ~n_jobs:250 ~seed:2801 ~max_size:5488);
    e 1458
      (Synthetic.cab_like ~runtime_cap:6000.0 ~month:"Aug" ~n_jobs:400
         ~seed:3501 ~target_load:0.56 ~arrival_scale:0.5 ());
    e 1458
      (Synthetic.cab_like ~runtime_cap:6000.0 ~month:"Sep" ~n_jobs:600
         ~seed:3601 ~target_load:1.12 ~arrival_scale:1.0 ());
    e 1458
      (Synthetic.cab_like ~runtime_cap:6000.0 ~month:"Oct" ~n_jobs:600
         ~seed:3701 ~target_load:1.3 ~arrival_scale:1.0 ());
    e 1458
      (Synthetic.cab_like ~runtime_cap:6000.0 ~month:"Nov" ~n_jobs:400
         ~seed:3801 ~target_load:0.58 ~arrival_scale:0.5 ());
    e 1458
      (Synthetic.thunder_like ~runtime_cap:40000.0 ~n_jobs:400 ~seed:3301 ());
    e 1458 (Synthetic.atlas_like ~runtime_cap:60000.0 ~n_jobs:300 ~seed:3401 ());
  ]

let by_name ~full name =
  match
    List.find_opt (fun e -> e.workload.Workload.name = name) (all ~full)
  with
  | Some e -> Some e
  | None ->
      (* The scale tier is only generated when the native tier misses:
         its "@48" names cannot collide with Table-1 names. *)
      if String.contains name '@' then
        List.find_opt (fun e -> e.workload.Workload.name = name) (scale_all ())
      else None
