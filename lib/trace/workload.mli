(** Job-queue traces (Table 1 of the paper). *)

type t = {
  name : string;
  system_nodes : int;
      (** Size of the system the trace came from (for reporting; the
          simulation cluster may differ, as in the paper). *)
  jobs : Job.t array;  (** Sorted by arrival time, then id. *)
  has_arrivals : bool;
      (** False when every job arrives at time zero (heavy-load mode). *)
}

val create : name:string -> system_nodes:int -> Job.t array -> t
(** Sorts the jobs by (arrival, id) and derives [has_arrivals]. *)

val num_jobs : t -> int
val max_job_size : t -> int
val min_runtime : t -> float
val max_runtime : t -> float

val total_node_seconds : t -> float
(** Sum over jobs of [size * runtime] — the trace's total demand. *)

val zero_arrivals : t -> t
(** The same trace with every arrival forced to time zero (what the paper
    does to the Thunder and Atlas traces for heavy-load experiments). *)

val scale_arrivals : t -> float -> t
(** Multiplies all arrival times (the paper scales Aug-Cab and Nov-Cab
    arrivals by 0.5 to raise offered load). *)

val truncate : t -> int -> t
(** The first [n] jobs (by arrival order); used for scaled-down runs. *)

val inflate_estimates : t -> float -> t
(** [inflate_estimates w f] sets every job's runtime estimate to
    [f * runtime] ([f >= 1]).  Models the loose wall-time requests real
    users submit; used by the estimate-accuracy ablation. *)

val moldable : ?min_frac:float -> ?max_frac:float -> t -> t
(** [moldable w] makes every job moldable around its rigid request:
    [min_size = ceil (min_frac * size)] (default 0.5), [max_size =
    floor (max_frac * size)] (default 2.0, clamped to at least [size]),
    [pref = size].  The name gains a ["+m"] suffix so sweep cell ids
    (and checkpoint/WAL trace names) never collide with the rigid
    trace's. *)

(** One row of the paper's Table 1. *)
type summary = {
  s_name : string;
  s_system_nodes : int;
  s_num_jobs : int;
  s_max_job : int;
  s_min_runtime : float;
  s_max_runtime : float;
  s_has_arrivals : bool;
}

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit
val pp_summary_header : Format.formatter -> unit -> unit
