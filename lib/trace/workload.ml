type t = {
  name : string;
  system_nodes : int;
  jobs : Job.t array;
  has_arrivals : bool;
}

let create ~name ~system_nodes jobs =
  let jobs = Array.copy jobs in
  Array.sort
    (fun (a : Job.t) (b : Job.t) ->
      let c = compare a.arrival b.arrival in
      if c <> 0 then c else compare a.id b.id)
    jobs;
  let has_arrivals = Array.exists (fun (j : Job.t) -> j.arrival > 0.0) jobs in
  { name; system_nodes; jobs; has_arrivals }

let num_jobs t = Array.length t.jobs

let max_job_size t =
  Array.fold_left (fun acc (j : Job.t) -> max acc j.size) 0 t.jobs

let min_runtime t =
  Array.fold_left (fun acc (j : Job.t) -> Float.min acc j.runtime) Float.infinity t.jobs

let max_runtime t =
  Array.fold_left (fun acc (j : Job.t) -> Float.max acc j.runtime) 0.0 t.jobs

let total_node_seconds t =
  Array.fold_left
    (fun acc (j : Job.t) -> acc +. (float_of_int j.size *. j.runtime))
    0.0 t.jobs

let zero_arrivals t =
  create ~name:t.name ~system_nodes:t.system_nodes
    (Array.map (fun (j : Job.t) -> { j with arrival = 0.0 }) t.jobs)

let scale_arrivals t f =
  create ~name:t.name ~system_nodes:t.system_nodes
    (Array.map (fun (j : Job.t) -> { j with arrival = j.arrival *. f }) t.jobs)

let inflate_estimates t f =
  if f < 1.0 then invalid_arg "Workload.inflate_estimates: factor must be >= 1";
  create ~name:t.name ~system_nodes:t.system_nodes
    (Array.map (fun (j : Job.t) -> { j with est_runtime = j.runtime *. f }) t.jobs)

let truncate t n =
  let n = min n (Array.length t.jobs) in
  create ~name:t.name ~system_nodes:t.system_nodes (Array.sub t.jobs 0 n)

let moldable ?(min_frac = 0.5) ?(max_frac = 2.0) t =
  if min_frac <= 0.0 || min_frac > 1.0 then
    invalid_arg "Workload.moldable: min_frac must be in (0, 1]";
  if max_frac < 1.0 then
    invalid_arg "Workload.moldable: max_frac must be >= 1";
  create ~name:(t.name ^ "+m") ~system_nodes:t.system_nodes
    (Array.map
       (fun (j : Job.t) ->
         let min_size =
           max 1 (int_of_float (ceil (float_of_int j.size *. min_frac)))
         in
         let max_size =
           max j.size (int_of_float (floor (float_of_int j.size *. max_frac)))
         in
         { j with spec = Job.Moldable { min_size; max_size; pref = j.size } })
       t.jobs)

type summary = {
  s_name : string;
  s_system_nodes : int;
  s_num_jobs : int;
  s_max_job : int;
  s_min_runtime : float;
  s_max_runtime : float;
  s_has_arrivals : bool;
}

let summarize t =
  {
    s_name = t.name;
    s_system_nodes = t.system_nodes;
    s_num_jobs = num_jobs t;
    s_max_job = max_job_size t;
    s_min_runtime = (if num_jobs t = 0 then 0.0 else min_runtime t);
    s_max_runtime = max_runtime t;
    s_has_arrivals = t.has_arrivals;
  }

let pp_summary_header ppf () =
  Format.fprintf ppf "%-10s %7s %8s %8s %14s %8s" "Trace" "SysN" "Jobs"
    "MaxJob" "Runtimes(s)" "Arrivals"

let pp_summary ppf s =
  Format.fprintf ppf "%-10s %7d %8d %8d %6.0f-%-7.0f %8s" s.s_name
    s.s_system_nodes s.s_num_jobs s.s_max_job s.s_min_runtime s.s_max_runtime
    (if s.s_has_arrivals then "Y" else "N")
