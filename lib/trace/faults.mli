(** Failure/repair traces: the resource-dynamics axis of the simulation.

    A fault trace is a time-ordered script of fail/repair events over
    fat-tree components.  The simulator replays it alongside the job
    trace; the allocators never see it directly — failed resources are
    withdrawn from [Fattree.State]'s availability summaries, so every
    placement policy avoids them through its normal probe paths.

    Traces come from three sources: {!scripted} (tests, what-if
    scenarios), {!load} (files), and {!generate} (per-component
    exponential MTBF/MTTR streams off [Sim.Prng], deterministic in the
    seed). *)

type target =
  | Node of int  (** One compute node. *)
  | Leaf_cable of int  (** One leaf–L2 cable. *)
  | L2_cable of int  (** One L2–spine cable. *)
  | Leaf_switch of int
      (** A whole leaf switch: its [m1] nodes (which have no other path
          into the network) and its [m1] uplink cables. *)
  | L2_switch of int
      (** A whole L2 switch: its [m2] leaf-side and [m2] spine-side
          cables.  Nodes keep their other uplinks. *)
  | Spine of int  (** A whole spine: its [m3] downlink cables. *)

type kind = Fail | Repair

type event = { time : float; kind : kind; target : target }

type t
(** An immutable fault trace, events sorted by time (stable for
    same-instant events). *)

val none : t
(** The empty trace: a permanently healthy machine. *)

val scripted : event list -> t
(** Sorts by time (stable).  Raises [Invalid_argument] on a negative
    event time. *)

val of_ordered : event list -> t
(** Like {!scripted} but keeps the caller's order verbatim, for callers
    whose event {e positions} are load-bearing — the simulator schedules
    fault events tagged by array index, and checkpoint restore must
    reproduce those indices even when events were injected dynamically
    (appended after, but timed before, earlier entries).  Raises
    [Invalid_argument] on a negative event time. *)

val events : t -> event array
val num_events : t -> int
val is_empty : t -> bool

val resources :
  Fattree.Topology.t -> target -> int array * int array * int array
(** [(nodes, leaf_cables, l2_cables)] affected by a target, per the
    blast radii documented on {!target}.  Raises [Invalid_argument] on
    an out-of-range id. *)

val apply : Fattree.State.t -> target -> unit
(** Fail every resource of the target (ref-counted, so overlapping
    faults compose; see [Fattree.State]). *)

val revert : Fattree.State.t -> target -> unit
(** Repair every resource of the target. *)

val generate :
  ?nodes:bool ->
  ?cables:bool ->
  ?switches:bool ->
  seed:int ->
  mtbf:float ->
  mttr:float ->
  horizon:float ->
  Fattree.Topology.t ->
  t
(** Exponential fail/repair streams, one independent deterministic
    stream per component (same seed, same history, whatever scheduler
    replays it).  [mtbf]/[mttr] are per-component means in simulated
    time units; new failures start only before [horizon] (their repairs
    may land after).  The optional flags select component classes
    (default: all — nodes, both cable tiers, all three switch tiers).
    Expected unavailable fraction per component is
    [mttr /. (mtbf +. mttr)]. *)

val load : string -> (t, string) result
(** Parse a scripted trace file: one [<time> fail|repair
    node|leaf-cable|l2-cable|leaf|l2|spine <id>] per line; [#] starts a
    comment.  Ids are validated against the topology only when the
    trace is applied. *)

val target_name : target -> string
val target_id : target -> int

val target_of_name : string -> int -> (target, string) result
(** Inverse of [(target_name, target_id)]: the names {!load} accepts.
    Checkpoint files use this to round-trip fault traces. *)

val pp_event : Format.formatter -> event -> unit
