type t = No_speedup | Fixed of int | V2 | Random

let all = [ No_speedup; Fixed 5; Fixed 10; Fixed 20; V2; Random ]

let name = function
  | No_speedup -> "None"
  | Fixed x -> Printf.sprintf "%d%%" x
  | V2 -> "V2"
  | Random -> "Random"

let of_name = function
  | "None" -> Ok No_speedup
  | "V2" -> Ok V2
  | "Random" -> Ok Random
  | s -> (
      (* accept "10" or "10%" *)
      let digits =
        if String.length s > 0 && s.[String.length s - 1] = '%' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      match int_of_string_opt digits with
      | Some x -> Ok (Fixed x)
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (None|5%%|10%%|20%%|V2|Random)"
               s))

(* A per-job deterministic stream: same scenario seed and job id => same
   draw, whatever scheduler is simulating. *)
let job_prng ~seed (j : Job.t) = Sim.Prng.create ~seed:((seed * 1_000_003) + j.id)

let speedup t ~seed (j : Job.t) =
  match t with
  | No_speedup -> 0.0
  | Fixed x -> if j.size > 4 then float_of_int x /. 100.0 else 0.0
  | V2 ->
      let prng = job_prng ~seed j in
      let bucket_max = [| 0.0; 0.10; 0.20; 0.30 |].(Sim.Prng.int prng ~bound:4) in
      let scale = Float.min 1.0 (float_of_int j.size /. 256.0) in
      bucket_max *. scale
  | Random ->
      if j.size > 64 then begin
        let prng = job_prng ~seed j in
        [| 0.0; 0.05; 0.15; 0.30 |].(Sim.Prng.int prng ~bound:4)
      end
      else 0.0

let isolated_runtime t ~seed j = j.Job.runtime /. (1.0 +. speedup t ~seed j)
