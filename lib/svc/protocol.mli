(** Daemon wire protocol: one flat-JSON object per line, both ways.

    Requests carry an ["op"] field naming the operation, an optional
    ["rid"] (client request id, echoed in the reply and used for
    duplicate suppression across retries), and an optional ["at"]
    (logical timestamp; ignored in wall-clock mode).  Parsing is total —
    {!request_of_line} never raises, whatever the bytes.

    Requests may also carry a ["version"] field naming the protocol
    version the client speaks.  Absent means version 1 (the pre-molding
    wire format) and is always accepted; version 2 adds [min]/[max] on
    submit and the [resize] op.  A version outside [1..current_version]
    is rejected with [Bad_request] before op dispatch, so newer clients
    get "upgrade the daemon" rather than "unknown op".

    Ops: [submit] (size, runtime, [est_runtime]?, [bw]?, [id]?, and
    [min]/[max] for a moldable request), [cancel] (id),
    [resize] (id, size — molds a running moldable job in place),
    [fail]/[repair] (target, index — names as in fault-script files),
    [advance] (to — logical mode only), [drain], [status], [stats]
    (operational counters: uptime, ops applied, WAL/checkpoint state,
    queue depth, shed and disconnect tallies), [ping], [shutdown],
    [crash] (test hook, gated by the daemon).

    Replies: [{"ok":1,...}] or
    [{"ok":0,"error":<code>,"message":...,"retry_after":<s>?}]. *)

type request =
  | Submit of {
      id : int option;  (** Daemon assigns the next id when absent. *)
      size : int;
      min_size : int option;  (** Moldable lower bound; absent = rigid. *)
      max_size : int option;  (** Moldable upper bound; absent = rigid. *)
      runtime : float;
      est_runtime : float option;
      bw_class : float option;  (** LC+S bandwidth class, default 0.25. *)
    }
  | Cancel of { id : int }
  | Resize of { id : int; size : int }
      (** Mold a running moldable job to [size] nodes in place.  The
          reply reports the engine's verdict — a refusal (rigid job, out
          of range, no room to grow) is an ordinary reply, not an
          error. *)
  | Fault of { kind : Trace.Faults.kind; target : Trace.Faults.target }
  | Advance of { upto : float }
  | Drain
  | Status
  | Stats  (** Operational counters; read-only, never journaled. *)
  | Ping
  | Shutdown
  | Crash of { point : string }

type envelope = {
  rid : string option;
  at : float option;
  version : int;  (** Protocol version claimed by the client; 1 if absent. *)
  req : request;
}

val current_version : int
(** The newest protocol version this daemon speaks (2). *)

type error_code =
  | Parse_failed  (** Not a flat JSON line. *)
  | Bad_request  (** Parsed, but no valid request in it. *)
  | Invalid  (** Well-formed, rejected by the engine. *)
  | Overloaded  (** Ingest queue full — retry after the hint. *)
  | Internal

val error_code_name : error_code -> string

val request_of_line : string -> (envelope, error_code * string) result
(** Total: any input maps to a typed request or a typed error. *)

val ok_reply : ?fields:(string * Obs.Json.value) list -> string option -> string
(** [ok_reply ?fields rid] is one reply line (newline included). *)

val error_reply :
  ?retry_after:float ->
  rid:string option ->
  error_code ->
  string ->
  string
