(** Named crash points for recovery testing.

    The environment variable [JIGSAW_SVC_CRASH="<point>[:<n>]"] arms one
    point; the [n]-th time execution reaches it the process delivers
    SIGKILL to itself — indistinguishable from a [kill -9] landing at
    that exact instruction.  Unarmed, a crash point costs one [getenv].

    Points are laced through the WAL append and checkpoint paths
    (["wal-torn"], ["wal-pre-fsync"], ["wal-post-fsync"],
    ["post-apply"], ["ckpt-post-save"]); the test suite forks a daemon
    with the variable set and asserts recovery reaches the uncrashed
    fingerprint. *)

val hit : string -> unit
(** SIGKILL the process if this point is armed and its count is due. *)

val triggered : string -> bool
(** Like {!hit} but returns [true] instead of dying, so the caller can
    stage a deliberately torn state (a half-written line) first and then
    call {!die}. *)

val die : unit -> 'a
(** [kill -9] self.  Never returns. *)
