(* Scheduler-as-a-service: a single-threaded reactor over
   [Unix.select].

   One Unix-domain socket, line-delimited JSON ([Protocol]), no threads,
   no new dependencies.  The event loop multiplexes accepting clients,
   reading request lines, executing ops against [Core], and draining
   reply buffers; every state-mutating request follows the one ordering
   that makes crash recovery sound:

     admit (fallible, reads only op-determined state)
     -> WAL append + fsync          (the point of no return)
     -> apply (infallible)
     -> ack

   A [kill -9] anywhere in that sequence loses at most un-acked work:
   before the fsync the entry vanishes with the process (client never
   got an ack, retries); after it, recovery replays the entry
   (duplicate-suppressed by rid).

   Degradation is graceful and typed: malformed lines get error replies
   (never a crash — [Protocol.request_of_line] is total), a full ingest
   queue sheds with [overloaded] + a retry-after hint, clients that stop
   draining replies get disconnected, and an over-long line without a
   newline is rejected rather than buffered without bound. *)

let num_i i = Obs.Json.Num (float_of_int i)

type opts = {
  socket : string;
  dir : string;
  params : Core.params option;
      (** Required for a fresh state dir; cross-checked otherwise. *)
  time_scale : float option;
      (** [Some s]: wall-clock mode, [s] simulated seconds per wall
          second.  [None]: logical time — the clock only moves on op
          stamps and [advance]. *)
  max_clients : int;
  max_queue : int;  (** Ingest queue bound; beyond it, requests shed. *)
  max_line : int;  (** Request line length bound (bytes). *)
  client_timeout : float;
      (** Wall seconds a client may sit on an undrained reply buffer. *)
  ckpt_every_ops : int;
  ckpt_every_s : float;
  retain : int;  (** Checkpoints kept (>= 1); older ones pruned + WAL GC'd. *)
  allow_crash_op : bool;  (** Honor the [crash] test op. *)
  log : string -> unit;
}

let default_opts ~socket ~dir =
  {
    socket;
    dir;
    params = None;
    time_scale = None;
    max_clients = 32;
    max_queue = 256;
    max_line = 65536;
    client_timeout = 10.0;
    ckpt_every_ops = 64;
    ckpt_every_s = 5.0;
    retain = 2;
    allow_crash_op = false;
    log = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let ckpt_name seq = Printf.sprintf "ckpt-%012d.jsonl" seq

let parse_ckpt_name name =
  if
    String.length name = 5 + 12 + 6
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".jsonl"
  then int_of_string_opt (String.sub name 5 12)
  else None

(* Newest first. *)
let checkpoints dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             Option.map
               (fun s -> (s, Filename.concat dir n))
               (parse_ckpt_name n))
      |> List.sort (fun a b -> compare b a)

exception Recovery_failed of string

(* Rebuild the exact pre-crash state from [dir]: newest usable
   checkpoint (corrupt ones are skipped with a note — an older
   checkpoint plus a longer replay gives the same state) + the WAL
   suffix past its [x_svc_seq].  Entries at or below it are scanned for
   request-id dedup only.  Returns the live state, a fresh WAL appender
   (recovery never appends to old segments), and a report. *)
let recover ?sink ?prof ?params ~dir () =
  let report = ref [] in
  let note fmt = Printf.ksprintf (fun m -> report := m :: !report) fmt in
  let fresh p =
    match Core.create ?sink ?prof p with
    | Error m -> Error m
    | Ok core ->
        Ok (core, Wal.create ~dir ~config:(Core.params_to_fields p) ~start_seq:0)
  in
  let result =
    match Wal.read_dir ~dir with
    | Error m -> Error ("WAL: " ^ m)
    | Ok None -> (
        match params with
        | None -> Error "state dir holds no WAL and no configuration was given"
        | Some p ->
            note "fresh state directory";
            fresh p)
    | Ok (Some r) -> (
        match Core.params_of_fields r.config with
        | Error m -> Error ("WAL header: " ^ m)
        | Ok wal_params -> (
            match params with
            | Some p when p <> wal_params ->
                Error
                  "configuration disagrees with the state directory's WAL \
                   (start with no explicit config to adopt the recorded one)"
            | _ -> (
                if r.dropped > 0 then
                  note "dropped %d torn (unacknowledged) WAL line%s" r.dropped
                    (if r.dropped = 1 then "" else "s");
                let rec pick = function
                  | [] ->
                      note "no usable checkpoint: full WAL replay";
                      Core.create ?sink ?prof wal_params
                  | (seq, path) :: rest -> (
                      match Core.of_checkpoint ?sink ?prof ~path () with
                      | Ok core when Core.last_seq core <> seq ->
                          note
                            "checkpoint %s: x_svc_seq %d disagrees with file \
                             name; skipping"
                            (Filename.basename path) (Core.last_seq core);
                          pick rest
                      | Ok core when Core.params core <> wal_params ->
                          note
                            "checkpoint %s: config disagrees with WAL; \
                             skipping"
                            (Filename.basename path);
                          pick rest
                      | Ok core ->
                          note "restored checkpoint at seq %d" seq;
                          Ok core
                      | Error m ->
                          note
                            "checkpoint %s unusable (%s); falling back to an \
                             older one"
                            (Filename.basename path) m;
                          pick rest)
                in
                match pick (checkpoints dir) with
                | Error m -> Error m
                | Ok core -> (
                    let last = Core.last_seq core in
                    if last + 1 < r.first_seq then
                      Error
                        (Printf.sprintf
                           "unrecoverable: checkpoint stops at seq %d but the \
                            oldest retained WAL entry is %d"
                           last r.first_seq)
                    else
                      match
                        let replayed = ref 0 in
                        List.iter
                          (fun (e : Wal.entry) ->
                            if e.seq <= last then (
                              match
                                if Obs.Json.mem e.fields "rid" then
                                  Some (Obs.Json.str e.fields "rid")
                                else None
                              with
                              | Some rid -> Core.note_rid core rid e.seq
                              | None -> ()
                              | exception Obs.Json.Parse_error _ -> ())
                            else
                              match Core.apply_entry core e with
                              | Ok _ -> incr replayed
                              | Error m -> raise (Recovery_failed m))
                          r.entries;
                        !replayed
                      with
                      | exception Recovery_failed m -> Error m
                      | exception Failure m -> Error m
                      | replayed ->
                          note "replayed %d WAL entr%s" replayed
                            (if replayed = 1 then "y" else "ies");
                          Ok
                            ( core,
                              Wal.create ~dir
                                ~config:(Core.params_to_fields wal_params)
                                ~start_seq:r.wal_next_seq )))))
  in
  match result with
  | Error m -> Error m
  | Ok (core, wal) -> Ok (core, wal, List.rev !report)

(* ------------------------------------------------------------------ *)
(* Reactor                                                             *)
(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (* undrained reply bytes *)
  mutable last_io : float;
  mutable closing : bool;  (* close once [out] drains *)
}

type state = {
  opts : opts;
  core : Core.t;
  wal : Wal.t;
  prof : Obs.Prof.t;
  listen : Unix.file_descr;
  mutable clients : client list;
  queue : (client * string) Queue.t;
  mutable last_ckpt_seq : int;
  mutable last_ckpt_wall : float;
  mutable ops_since_ckpt : int;
  mutable stopping : bool;
  mutable sim_base : float;  (* wall mode: sim clock at startup *)
  mutable wall_base : float;
}

let send st c line =
  if not c.closing then begin
    c.out <- c.out ^ line;
    if String.length c.out > 1 lsl 20 then begin
      (* A megabyte of undrained replies: the peer is gone in spirit. *)
      Obs.Prof.incr st.prof "svc/slow_disconnects";
      c.closing <- true
    end
  end

let drop st c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  st.clients <- List.filter (fun c' -> c' != c) st.clients

(* -- checkpointing -- *)

let do_checkpoint st =
  let seq = Core.last_seq st.core in
  if Core.fingerprint st.core = None && seq > st.last_ckpt_seq then begin
    let path = Filename.concat st.opts.dir (ckpt_name seq) in
    if Core.checkpoint st.core ~path then begin
      st.last_ckpt_seq <- seq;
      Wal.rotate st.wal;
      Obs.Prof.incr st.prof "svc/checkpoints";
      st.opts.log (Printf.sprintf "checkpoint at seq %d" seq);
      (* Prune to [retain] checkpoints, then drop WAL segments that only
         feed checkpoints no longer on disk. *)
      let cks = checkpoints st.opts.dir in
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
            if i < st.opts.retain then
              let keep, drop = split (i + 1) rest in
              (x :: keep, drop)
            else ([], x :: rest)
      in
      let keep, drop = split 0 cks in
      List.iter
        (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
        drop;
      (match List.rev keep with
      | (oldest, _) :: _ ->
          ignore (Wal.gc ~dir:st.opts.dir ~keep_from:(oldest + 1))
      | [] -> ())
    end
  end;
  st.ops_since_ckpt <- 0;
  st.last_ckpt_wall <- Unix.gettimeofday ()

let maybe_checkpoint st =
  if
    st.ops_since_ckpt >= st.opts.ckpt_every_ops
    || Unix.gettimeofday () -. st.last_ckpt_wall >= st.opts.ckpt_every_s
       && st.ops_since_ckpt > 0
  then do_checkpoint st

(* -- time -- *)

let wall_sim_now st =
  match st.opts.time_scale with
  | None -> Core.now st.core
  | Some scale ->
      Float.max (Core.now st.core)
        (st.sim_base +. ((Unix.gettimeofday () -. st.wall_base) *. scale))

let stamp_of st at =
  let now = Core.now st.core in
  match st.opts.time_scale with
  | None -> ( match at with Some a -> Float.max a now | None -> now)
  | Some _ -> wall_sim_now st

(* -- request execution -- *)

let exec st c line =
  Obs.Prof.incr st.prof "svc/requests";
  match Protocol.request_of_line line with
  | Error (code, msg) ->
      Obs.Prof.incr st.prof "svc/malformed";
      send st c (Protocol.error_reply ~rid:None code msg)
  | Ok { rid; at; version = _; req } -> (
      let invalid msg = send st c (Protocol.error_reply ~rid Protocol.Invalid msg) in
      match req with
      | Protocol.Ping ->
          send st c
            (Protocol.ok_reply
               ~fields:[ ("clock", Obs.Json.Num (Core.now st.core)) ]
               rid)
      | Protocol.Status ->
          let fields =
            Core.status st.core
            @ [
                ("queue", num_i (Queue.length st.queue));
                ("clients", num_i (List.length st.clients));
                ("wal_next", num_i (Wal.next_seq st.wal));
                ("requests", num_i (Obs.Prof.counter st.prof "svc/requests"));
                ("shed", num_i (Obs.Prof.counter st.prof "svc/shed"));
                ("malformed", num_i (Obs.Prof.counter st.prof "svc/malformed"));
              ]
          in
          send st c (Protocol.ok_reply ~fields rid)
      | Protocol.Stats ->
          (* Operational introspection: everything here is either a
             [Prof] counter the reactor already maintains or read off
             the live state, so the op is read-only and un-journaled —
             safe to poll from monitoring at any rate. *)
          let wal_segments =
            match Sys.readdir st.opts.dir with
            | exception Sys_error _ -> 0
            | names ->
                Array.fold_left
                  (fun n name ->
                    if
                      String.length name > 4
                      && String.sub name 0 4 = "wal-"
                      && Filename.check_suffix name ".jsonl"
                    then n + 1
                    else n)
                  0 names
          in
          let counter = Obs.Prof.counter st.prof in
          let fields =
            [
              ("uptime_s", Obs.Json.Num (Unix.gettimeofday () -. st.wall_base));
              ("clock", Obs.Json.Num (Core.now st.core));
              ("applied", num_i (counter "svc/applied"));
              ("requests", num_i (counter "svc/requests"));
              ("duplicates", num_i (counter "svc/duplicates"));
              ("wal_next", num_i (Wal.next_seq st.wal));
              ("wal_segment_start", num_i (Wal.segment_start st.wal));
              ("wal_segments", num_i wal_segments);
              ("checkpoints", num_i (List.length (checkpoints st.opts.dir)));
              ("checkpoints_written", num_i (counter "svc/checkpoints"));
              ("last_ckpt_seq", num_i st.last_ckpt_seq);
              ("queue", num_i (Queue.length st.queue));
              ("clients", num_i (List.length st.clients));
              ("shed", num_i (counter "svc/shed"));
              ("malformed", num_i (counter "svc/malformed"));
              ("slow_disconnects", num_i (counter "svc/slow_disconnects"));
            ]
          in
          send st c (Protocol.ok_reply ~fields rid)
      | Protocol.Advance { upto } -> (
          match st.opts.time_scale with
          | Some _ -> invalid "advance is for logical-clock daemons"
          | None ->
              if Core.fingerprint st.core <> None then invalid "already drained"
              else begin
                Core.advance st.core upto;
                send st c
                  (Protocol.ok_reply
                     ~fields:[ ("clock", Obs.Json.Num (Core.now st.core)) ]
                     rid)
              end)
      | Protocol.Shutdown ->
          st.stopping <- true;
          send st c (Protocol.ok_reply rid)
      | Protocol.Crash { point } ->
          if not st.opts.allow_crash_op then
            invalid "crash op disabled (start the daemon with --allow-crash)"
          else if point = "" then Crash.die ()
          else begin
            (* Arm a named crash point in the live process — the test
               suite's remote trigger for fault-injection runs. *)
            Unix.putenv "JIGSAW_SVC_CRASH" point;
            send st c (Protocol.ok_reply rid)
          end
      | Protocol.Submit _ | Protocol.Cancel _ | Protocol.Resize _
      | Protocol.Fault _ | Protocol.Drain -> (
          (* Journaled ops. *)
          match rid with
          | Some r when Core.find_rid st.core r <> None ->
              let seq = Option.get (Core.find_rid st.core r) in
              Obs.Prof.incr st.prof "svc/duplicates";
              let extra =
                match (req, Core.fingerprint st.core) with
                | Protocol.Drain, Some fp -> [ ("fingerprint", Obs.Json.Str fp) ]
                | _ -> []
              in
              send st c
                (Protocol.ok_reply
                   ~fields:
                     ([ ("seq", num_i seq); ("duplicate", Obs.Json.Num 1.0) ]
                     @ extra)
                   rid)
          | _ -> (
              match (req, Core.fingerprint st.core) with
              | Protocol.Drain, Some fp ->
                  (* Idempotent even without a rid. *)
                  send st c
                    (Protocol.ok_reply
                       ~fields:
                         [
                           ("fingerprint", Obs.Json.Str fp);
                           ("duplicate", Obs.Json.Num 1.0);
                         ]
                       rid)
              | _ -> (
                  let stamp = stamp_of st at in
                  match Core.admit st.core ~stamp req with
                  | Error m -> invalid m
                  | Ok op ->
                      let t0 = Unix.gettimeofday () in
                      let seq =
                        Wal.append st.wal (Core.fields_of_op ~stamp ~rid op)
                      in
                      let fields = Core.apply st.core ~seq ~rid ~stamp op in
                      Obs.Prof.record_span st.prof "svc/apply"
                        (Unix.gettimeofday () -. t0);
                      Obs.Prof.incr st.prof "svc/applied";
                      st.ops_since_ckpt <- st.ops_since_ckpt + 1;
                      send st c
                        (Protocol.ok_reply
                           ~fields:
                             (fields
                             @ [
                                 ("seq", num_i seq);
                                 ("at", Obs.Json.Num stamp);
                               ])
                           rid);
                      maybe_checkpoint st))))

(* -- socket plumbing -- *)

let ingest st c =
  let bytes = Bytes.create 4096 in
  match Unix.read c.fd bytes 0 4096 with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop st c
  | 0 -> if c.out = "" then drop st c else c.closing <- true
  | n ->
      c.last_io <- Unix.gettimeofday ();
      Buffer.add_subbytes c.inbuf bytes 0 n;
      let data = Buffer.contents c.inbuf in
      let len = String.length data in
      let pos = ref 0 in
      (try
         while true do
           let nl = String.index_from data !pos '\n' in
           let line = String.sub data !pos (nl - !pos) in
           pos := nl + 1;
           if line <> "" then
             if Queue.length st.queue >= st.opts.max_queue then begin
               Obs.Prof.incr st.prof "svc/shed";
               send st c
                 (Protocol.error_reply ~retry_after:0.1 ~rid:None
                    Protocol.Overloaded "ingest queue full")
             end
             else Queue.add (c, line) st.queue
         done
       with Not_found -> ());
      Buffer.clear c.inbuf;
      Buffer.add_substring c.inbuf data !pos (len - !pos);
      if Buffer.length c.inbuf > st.opts.max_line then begin
        Buffer.clear c.inbuf;
        send st c
          (Protocol.error_reply ~rid:None Protocol.Parse_failed
             "request line too long");
        c.closing <- true
      end

let flush_out st c =
  if c.out <> "" then begin
    match Unix.write_substring c.fd c.out 0 (String.length c.out) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> drop st c
    | n ->
        if n > 0 then c.last_io <- Unix.gettimeofday ();
        c.out <- String.sub c.out n (String.length c.out - n);
        if c.out = "" && c.closing then drop st c
  end
  else if c.closing then drop st c

let accept_clients st =
  let rec go () =
    match Unix.accept ~cloexec:true st.listen with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | fd, _ ->
        Unix.set_nonblock fd;
        let c =
          {
            fd;
            inbuf = Buffer.create 256;
            out = "";
            last_io = Unix.gettimeofday ();
            closing = false;
          }
        in
        if List.length st.clients >= st.opts.max_clients then begin
          Obs.Prof.incr st.prof "svc/shed";
          c.out <-
            Protocol.error_reply ~retry_after:0.5 ~rid:None Protocol.Overloaded
              "too many clients";
          c.closing <- true
        end;
        st.clients <- c :: st.clients;
        go ()
  in
  go ()

let reap_slow st =
  let now = Unix.gettimeofday () in
  List.iter
    (fun c ->
      if c.out <> "" && now -. c.last_io > st.opts.client_timeout then begin
        Obs.Prof.incr st.prof "svc/slow_disconnects";
        drop st c
      end)
    st.clients

(* -- main loop -- *)

let run ?(prof = Obs.Prof.create ()) opts =
  if not (Sys.file_exists opts.dir) then Unix.mkdir opts.dir 0o755;
  match recover ~prof ?params:opts.params ~dir:opts.dir () with
  | Error m -> Error m
  | Ok (core, wal, report) ->
      List.iter (fun m -> opts.log ("recovery: " ^ m)) report;
      (* A replayed suffix means the last run died between checkpoints:
         re-anchor now so the next crash replays less. *)
      if Core.last_seq core >= 0 then begin
        let seqs = List.map fst (checkpoints opts.dir) in
        if not (List.mem (Core.last_seq core) seqs) then begin
          let path = Filename.concat opts.dir (ckpt_name (Core.last_seq core)) in
          if Core.checkpoint core ~path then Wal.rotate wal
        end
      end;
      (try Unix.unlink opts.socket with Unix.Unix_error _ -> ());
      let listen = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind listen (ADDR_UNIX opts.socket);
      Unix.listen listen 16;
      Unix.set_nonblock listen;
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let st =
        {
          opts;
          core;
          wal;
          prof;
          listen;
          clients = [];
          queue = Queue.create ();
          last_ckpt_seq = Core.last_seq core;
          last_ckpt_wall = Unix.gettimeofday ();
          ops_since_ckpt = 0;
          stopping = false;
          sim_base = Core.now core;
          wall_base = Unix.gettimeofday ();
        }
      in
      let stop_sig = ref false in
      let install s =
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_sig := true))
        with Invalid_argument _ -> ()
      in
      install Sys.sigterm;
      install Sys.sigint;
      opts.log
        (Printf.sprintf "listening on %s (seq %d, clock %g)" opts.socket
           (Core.last_seq core) (Core.now core));
      while not (st.stopping || !stop_sig) do
        (* Wall-clock mode: the simulation tracks real time even with no
           requests in flight. *)
        (if opts.time_scale <> None && Core.fingerprint core = None then
           let t = wall_sim_now st in
           if t > Core.now core then Core.advance core t);
        let rfds = st.listen :: List.map (fun c -> c.fd) st.clients in
        let wfds =
          List.filter_map
            (fun c -> if c.out <> "" then Some c.fd else None)
            st.clients
        in
        let timeout =
          if (not (Queue.is_empty st.queue)) || opts.time_scale <> None then 0.05
          else
            Float.max 0.05
              (Float.min 1.0
                 (st.opts.ckpt_every_s
                 -. (Unix.gettimeofday () -. st.last_ckpt_wall)))
        in
        (match Unix.select rfds wfds [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | readable, writable, _ ->
            if List.mem st.listen readable then accept_clients st;
            List.iter
              (fun c -> if List.mem c.fd readable then ingest st c)
              st.clients;
            List.iter
              (fun c -> if List.mem c.fd writable then flush_out st c)
              st.clients);
        Obs.Prof.sample st.prof "svc/queue_depth"
          (float_of_int (Queue.length st.queue));
        (* Bounded batch per iteration so slow-client reaping and
           checkpoint deadlines stay responsive under a flood. *)
        let budget = ref 256 in
        while (not (Queue.is_empty st.queue)) && !budget > 0 && not st.stopping
        do
          decr budget;
          let c, line = Queue.pop st.queue in
          if not c.closing then exec st c line
        done;
        List.iter (fun c -> flush_out st c) st.clients;
        reap_slow st;
        maybe_checkpoint st
      done;
      opts.log
        (if !stop_sig then "signal: checkpointing and shutting down"
         else "shutdown requested");
      (* Best-effort final reply flush, then make the state durable. *)
      List.iter (fun c -> flush_out st c) st.clients;
      do_checkpoint st;
      Wal.close st.wal;
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.clients;
      (try Unix.close st.listen with Unix.Unix_error _ -> ());
      (try Unix.unlink opts.socket with Unix.Unix_error _ -> ());
      Ok ()
