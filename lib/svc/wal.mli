(** Write-ahead log for the scheduler daemon.

    A directory of segment files [wal-<start_seq>.jsonl], each a stream
    of flat-JSON lines (the [Obs.Json] writer — no new dependencies).
    Every line, header included, carries a ["crc"] field: the MD5 of the
    line's own serialization without that field.  {!append} fsyncs
    before returning, so a sequence number handed back — and therefore
    any acknowledgement sent to a client — names an entry that survives
    [kill -9] and power loss.

    Reading tolerates exactly the damage a crash can cause and nothing
    more: an unparseable or CRC-failing {e final} line of a segment is a
    torn tail (never acknowledged) and is dropped and counted; the same
    anywhere else, a sequence discontinuity, or a config mismatch across
    segment headers is reported as a loud [Error].  See the policy note
    at the top of [wal.ml]. *)

val version : int
(** Format version stamped into segment headers. *)

val segment_name : int -> string
(** [segment_name seq] is ["wal-%012d.jsonl"] — exposed for tests that
    corrupt specific files. *)

val line_of : (string * Obs.Json.value) list -> string
(** Serialize fields, append the ["crc"] field and a newline — the exact
    bytes {!append} writes (minus the record/seq envelope).  Exposed so
    tests can forge valid and near-valid lines. *)

(** {1 Appending} *)

type t

val create :
  dir:string ->
  config:(string * Obs.Json.value) list ->
  start_seq:int ->
  t
(** Open a {e new} segment starting at [start_seq] (truncating any
    leftover same-named file, which by construction holds nothing
    acknowledged), write its header, fsync file and directory.  [config]
    is embedded in every segment header and checked for consistency on
    read; keys must avoid [record]/[version]/[start_seq]/[crc]. *)

val append : t -> (string * Obs.Json.value) list -> int
(** Append one op record ([fields] must not use keys
    [record]/[seq]/[crc]), fsync, and return its sequence number.
    Carries the ["wal-torn"], ["wal-pre-fsync"] and ["wal-post-fsync"]
    crash points. *)

val next_seq : t -> int
(** Sequence number the next {!append} will assign. *)

val segment_start : t -> int
(** First sequence number of the segment currently being written. *)

val rotate : t -> unit
(** Fsync and close the current segment, open a fresh one at
    {!next_seq}.  Done after each checkpoint so {!gc} can reclaim whole
    segments. *)

val close : t -> unit

(** {1 Reading} *)

type entry = { seq : int; fields : (string * Obs.Json.value) list }

type recovered = {
  config : (string * Obs.Json.value) list;
  entries : entry list;  (** Contiguous, ascending [seq]. *)
  first_seq : int;  (** Start of the oldest retained segment. *)
  wal_next_seq : int;  (** One past the last valid entry. *)
  dropped : int;  (** Torn tail lines discarded. *)
  segments : int;
}

val read_dir : dir:string -> (recovered option, string) result
(** Read and validate every segment in [dir].  [Ok None] if the
    directory holds no segments (or only a single fully-torn one —
    nothing was ever acknowledged); [Error] on any damage beyond a torn
    tail. *)

val gc : dir:string -> keep_from:int -> int
(** Delete the longest prefix of segments whose every entry precedes
    [keep_from]; returns how many files went.  Entries [>= keep_from]
    are always retained. *)
