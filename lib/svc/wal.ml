(* Write-ahead log: fsync'd, CRC-guarded, segmented.

   Every accepted daemon request becomes one flat-JSON line (the
   [Obs.Json] writer again — no new dependencies) carrying a monotonic
   sequence number and a per-line MD5 over the line's own serialized
   prefix, appended and fsync'd *before* the request is acknowledged.
   The log is the authoritative input record: replaying its entries
   against a fresh simulation reproduces the daemon's state bit for bit.

   Segmentation: each file [wal-<start_seq>.jsonl] opens with a
   CRC-guarded header naming the first sequence number it holds plus the
   daemon's simulation config, so a directory of segments is fully
   self-describing.  The appender rotates to a new segment after every
   checkpoint (and on every daemon start), which is what makes old
   segments garbage-collectable and torn tails attributable.

   Corruption policy, the part that matters:

   - an unparseable or CRC-failing line at the *end* of a segment is a
     torn tail — the victim of a crash mid-append.  It was never
     fsync'd, therefore never acknowledged, therefore safe to drop
     (counted, reported);
   - the same anywhere *else* is lost acknowledged data, and reading
     fails loudly rather than resuming from a silent hole;
   - sequence numbers must be contiguous across lines and segments.
     A torn line that *was* acknowledged cannot slip through by being
     last in its segment: the next segment would continue at the
     following sequence number and the continuity check fails. *)

let version = 1
let magic = "jigsaw-wal"

let num_of_int i = Obs.Json.Num (float_of_int i)

let segment_name start_seq = Printf.sprintf "wal-%012d.jsonl" start_seq

let parse_segment_name name =
  if
    String.length name = 4 + 12 + 6
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".jsonl"
  then int_of_string_opt (String.sub name 4 12)
  else None

let segment_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             Option.map
               (fun s -> (s, Filename.concat dir n))
               (parse_segment_name n))
      |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Lines                                                               *)
(* ------------------------------------------------------------------ *)

(* The CRC covers the serialized object *without* its crc field; the
   writer's float/string printing is canonical (parse + re-serialize is
   the identity on its own output), so the reader can verify by
   re-serializing the parsed fields.  Field key "crc" is reserved. *)
let line_of fields =
  let b = Buffer.create 256 in
  Obs.Json.write b fields;
  let crc = Digest.to_hex (Digest.string (Buffer.contents b)) in
  let b = Buffer.create 256 in
  Obs.Json.write b (fields @ [ ("crc", Obs.Json.Str crc) ]);
  Buffer.add_char b '\n';
  Buffer.contents b

(* [Some fields] (crc stripped) if the line parses and its digest
   matches; [None] for anything else — the caller decides whether the
   position makes that a torn tail or corruption. *)
let checked_line line =
  match Obs.Json.parse_line line with
  | exception Obs.Json.Parse_error _ -> None
  | fields -> (
      match List.assoc_opt "crc" fields with
      | Some (Obs.Json.Str crc) ->
          let rest = List.filter (fun (k, _) -> k <> "crc") fields in
          let b = Buffer.create 256 in
          Obs.Json.write b rest;
          if String.equal (Digest.to_hex (Digest.string (Buffer.contents b))) crc
          then Some rest
          else None
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  config : (string * Obs.Json.value) list;
  mutable oc : Out_channel.t;
  mutable next_seq : int;
  mutable segment_start : int;
}

let fsync_oc oc =
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let open_segment ~dir ~config ~start_seq =
  let path = Filename.concat dir (segment_name start_seq) in
  (* O_TRUNC is safe: a same-named segment can only pre-exist when it
     holds no acknowledged entries (its start_seq equals the recovered
     next_seq), and truncating scrubs any torn tail it carried. *)
  let oc =
    Out_channel.open_gen
      [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      0o644 path
  in
  let header =
    ("record", Obs.Json.Str magic)
    :: ("version", num_of_int version)
    :: ("start_seq", num_of_int start_seq)
    :: config
  in
  Out_channel.output_string oc (line_of header);
  fsync_oc oc;
  Sched.Checkpoint.fsync_dir dir;
  oc

let create ~dir ~config ~start_seq =
  {
    dir;
    config;
    oc = open_segment ~dir ~config ~start_seq;
    next_seq = start_seq;
    segment_start = start_seq;
  }

let next_seq t = t.next_seq
let segment_start t = t.segment_start

let append t fields =
  let seq = t.next_seq in
  let line =
    line_of (("record", Obs.Json.Str "op") :: ("seq", num_of_int seq) :: fields)
  in
  if Crash.triggered "wal-torn" then begin
    (* Stage the state this log exists to survive: half a line on disk,
       then die as if the power went. *)
    Out_channel.output_string t.oc (String.sub line 0 (String.length line / 2));
    Out_channel.flush t.oc;
    Crash.die ()
  end;
  Out_channel.output_string t.oc line;
  Out_channel.flush t.oc;
  Crash.hit "wal-pre-fsync";
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  Crash.hit "wal-post-fsync";
  t.next_seq <- seq + 1;
  seq

let rotate t =
  fsync_oc t.oc;
  Out_channel.close t.oc;
  t.oc <- open_segment ~dir:t.dir ~config:t.config ~start_seq:t.next_seq;
  t.segment_start <- t.next_seq

let close t =
  fsync_oc t.oc;
  Out_channel.close t.oc

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type entry = { seq : int; fields : (string * Obs.Json.value) list }

type recovered = {
  config : (string * Obs.Json.value) list;
  entries : entry list;  (** Contiguous, ascending [seq]. *)
  first_seq : int;  (** Start of the oldest retained segment. *)
  wal_next_seq : int;
  dropped : int;  (** Torn tail lines discarded. *)
  segments : int;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let header_config fields =
  List.filter
    (fun (k, _) -> k <> "record" && k <> "version" && k <> "start_seq")
    fields

let read_dir ~dir =
  match segment_files dir with
  | [] -> Ok None
  | segs -> (
      let nsegs = List.length segs in
      try
        let config = ref None in
        let entries = ref [] in
        let expected = ref (-1) in
        let first_seq = ref (-1) in
        let dropped = ref 0 in
        List.iteri
          (fun si (start_seq, path) ->
            let last_segment = si = nsegs - 1 in
            let content =
              try In_channel.with_open_bin path In_channel.input_all
              with Sys_error m -> corrupt "%s" m
            in
            let lines =
              match List.rev (String.split_on_char '\n' content) with
              | "" :: rest -> List.rev rest
              | all -> List.rev all
            in
            let nlines = List.length lines in
            (try
               List.iteri
                 (fun i line ->
                   match checked_line line with
                   | None ->
                       if i = nlines - 1 then begin
                         (* Torn tail: unacknowledged, droppable — but a
                            torn *header* means the whole segment holds
                            nothing, which only a crash during rotation
                            (necessarily the last segment) explains. *)
                         if i = 0 && not last_segment then
                           corrupt "%s: unreadable segment header" path;
                         incr dropped;
                         raise Exit
                       end
                       else
                         corrupt
                           "%s: corrupt record at line %d (not a torn tail — \
                            acknowledged data is damaged)"
                           path (i + 1)
                   | Some fields -> (
                       if i = 0 then begin
                         (try
                            if Obs.Json.str fields "record" <> magic then
                              corrupt "%s: not a WAL segment" path;
                            if Obs.Json.int fields "version" <> version then
                              corrupt "%s: unsupported WAL version" path;
                            if Obs.Json.int fields "start_seq" <> start_seq then
                              corrupt "%s: header start_seq disagrees with \
                                       file name"
                                path
                          with Obs.Json.Parse_error m ->
                            corrupt "%s: bad segment header: %s" path m);
                         (match !config with
                         | None -> config := Some (header_config fields)
                         | Some c ->
                             if header_config fields <> c then
                               corrupt
                                 "%s: segment config disagrees with the \
                                  first segment's"
                                 path);
                         if !expected = -1 then begin
                           expected := start_seq;
                           first_seq := start_seq
                         end
                         else if start_seq <> !expected then
                           corrupt
                             "%s: sequence gap: segment starts at %d, \
                              expected %d (acknowledged entries missing)"
                             path start_seq !expected
                       end
                       else
                         match Obs.Json.str fields "record" with
                         | "op" ->
                             let seq =
                               try Obs.Json.int fields "seq"
                               with Obs.Json.Parse_error m ->
                                 corrupt "%s: line %d: %s" path (i + 1) m
                             in
                             if seq <> !expected then
                               corrupt
                                 "%s: line %d: sequence %d, expected %d"
                                 path (i + 1) seq !expected;
                             entries := { seq; fields } :: !entries;
                             incr expected
                         | r ->
                             corrupt "%s: line %d: unknown record %S" path
                               (i + 1) r
                         | exception Obs.Json.Parse_error m ->
                             corrupt "%s: line %d: %s" path (i + 1) m))
                 lines
             with Exit -> ()))
          segs;
        match !config with
        | None ->
            (* Every segment collapsed to a torn header — treat as a
               fresh directory (nothing was ever acknowledged). *)
            Ok None
        | Some config ->
            Ok
              (Some
                 {
                   config;
                   entries = List.rev !entries;
                   first_seq = !first_seq;
                   wal_next_seq = !expected;
                   dropped = !dropped;
                   segments = nsegs;
                 })
      with Corrupt m -> Error m)

(* Garbage collection: a segment is deletable when its successor's
   start_seq shows every entry it holds precedes [keep_from] — and only
   as a prefix, so the retained files stay contiguous. *)
let gc ~dir ~keep_from =
  let rec go deleted = function
    | (_, path) :: ((next_start, _) :: _ as rest) when next_start <= keep_from
      ->
        (try Sys.remove path with Sys_error _ -> ());
        go (deleted + 1) rest
    | _ -> deleted
  in
  let n = go 0 (segment_files dir) in
  if n > 0 then Sched.Checkpoint.fsync_dir dir;
  n
