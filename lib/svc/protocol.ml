(* Wire protocol: line-delimited flat JSON over a Unix-domain socket.

   One request per line, one reply per line, same [Obs.Json] dialect as
   the WAL and the trace sink.  Parsing is total: any byte sequence a
   client can send maps to either a typed request or a typed error —
   never an exception escaping to the reactor.  The fuzz suite in
   [test_svc] holds the reactor to that. *)

type request =
  | Submit of {
      id : int option;  (** Daemon assigns the next id when absent. *)
      size : int;
      min_size : int option;  (** Moldable lower bound; absent = rigid. *)
      max_size : int option;  (** Moldable upper bound; absent = rigid. *)
      runtime : float;
      est_runtime : float option;
      bw_class : float option;
    }
  | Cancel of { id : int }
  | Resize of { id : int; size : int }
  | Fault of { kind : Trace.Faults.kind; target : Trace.Faults.target }
  | Advance of { upto : float }
  | Drain
  | Status
  | Stats
  | Ping
  | Shutdown
  | Crash of { point : string }

type envelope = {
  rid : string option;
  at : float option;
  version : int;
  req : request;
}

(* Version 1 is the pre-molding wire format; version 2 adds the
   [version] field itself, [min]/[max] on submit and the [resize] op.
   A request with no [version] field is a v1 client and is always
   accepted — v2 is a strict superset. *)
let current_version = 2

type error_code =
  | Parse_failed  (** Not a flat JSON line. *)
  | Bad_request  (** Parsed, but no valid request in it. *)
  | Invalid  (** Well-formed, rejected by the engine. *)
  | Overloaded  (** Ingest queue full — retry after the hint. *)
  | Internal

let error_code_name = function
  | Parse_failed -> "parse"
  | Bad_request -> "bad-request"
  | Invalid -> "invalid"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let opt_str fields k =
  if Obs.Json.mem fields k then Some (Obs.Json.str fields k) else None

let opt_num fields k =
  if Obs.Json.mem fields k then Some (Obs.Json.num fields k) else None

let opt_int fields k =
  if Obs.Json.mem fields k then Some (Obs.Json.int fields k) else None

let finite what x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    raise (Obs.Json.Parse_error (what ^ " must be finite"))
  else x

let request_of_fields fields =
  match Obs.Json.str fields "op" with
  | "submit" ->
      let size = Obs.Json.int fields "size" in
      let runtime = finite "runtime" (Obs.Json.num fields "runtime") in
      if size <= 0 then Error "size must be positive"
      else if runtime < 0.0 then Error "runtime must be non-negative"
      else
        Ok
          (Submit
             {
               id = opt_int fields "id";
               size;
               min_size = opt_int fields "min";
               max_size = opt_int fields "max";
               runtime;
               est_runtime =
                 Option.map (finite "est_runtime")
                   (opt_num fields "est_runtime");
               bw_class = Option.map (finite "bw") (opt_num fields "bw");
             })
  | "cancel" -> Ok (Cancel { id = Obs.Json.int fields "id" })
  | "resize" ->
      let size = Obs.Json.int fields "size" in
      if size <= 0 then Error "size must be positive"
      else Ok (Resize { id = Obs.Json.int fields "id"; size })
  | "fail" | "repair" -> (
      let op = Obs.Json.str fields "op" in
      let kind =
        if op = "fail" then Trace.Faults.Fail else Trace.Faults.Repair
      in
      match
        Trace.Faults.target_of_name
          (Obs.Json.str fields "target")
          (Obs.Json.int fields "index")
      with
      | Ok target -> Ok (Fault { kind; target })
      | Error m -> Error m)
  | "advance" -> Ok (Advance { upto = finite "to" (Obs.Json.num fields "to") })
  | "drain" -> Ok Drain
  | "status" -> Ok Status
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | "crash" ->
      Ok (Crash { point = Option.value ~default:"" (opt_str fields "point") })
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  match Obs.Json.parse_line line with
  | exception Obs.Json.Parse_error m -> Error (Parse_failed, m)
  | fields -> (
      let rid = try opt_str fields "rid" with Obs.Json.Parse_error _ -> None in
      (* Version gates op dispatch: a client speaking a newer protocol
         may use ops this daemon has never heard of, and "upgrade the
         daemon" is the actionable error, not "unknown op". *)
      match opt_int fields "version" with
      | Some v when v < 1 || v > current_version ->
          Error
            ( Bad_request,
              Printf.sprintf
                "unsupported protocol version %d (daemon speaks 1..%d)" v
                current_version )
      | exception Obs.Json.Parse_error m -> Error (Bad_request, m)
      | version -> (
          let version = Option.value ~default:1 version in
          match request_of_fields fields with
          | Ok req -> (
              (* [rid]/[at] validated after op dispatch so a malformed
                 envelope still reports against the right request. *)
              match Option.map (finite "at") (opt_num fields "at") with
              | at -> Ok { rid; at; version; req }
              | exception Obs.Json.Parse_error m -> Error (Bad_request, m))
          | Error m -> Error (Bad_request, m)
          | exception Obs.Json.Parse_error m -> Error (Bad_request, m)))

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let reply_line fields =
  let b = Buffer.create 128 in
  Obs.Json.write b fields;
  Buffer.add_char b '\n';
  Buffer.contents b

let with_rid rid fields =
  match rid with
  | None -> fields
  | Some r -> fields @ [ ("rid", Obs.Json.Str r) ]

let ok_reply ?(fields = []) rid =
  reply_line (("ok", Obs.Json.Num 1.0) :: with_rid rid fields)

let error_reply ?retry_after ~rid code message =
  let extra =
    match retry_after with
    | None -> []
    | Some s -> [ ("retry_after", Obs.Json.Num s) ]
  in
  reply_line
    (with_rid rid
       ([
          ("ok", Obs.Json.Num 0.0);
          ("error", Obs.Json.Str (error_code_name code));
          ("message", Obs.Json.Str message);
        ]
       @ extra))
