(* The daemon's replayable state machine.

   One rule produces every recovery guarantee downstream: the simulation
   state is a pure function of (params, the sequence of applied WAL
   entries).  [admit] does all fallible validation against current state
   *before* anything is logged; [apply] is then infallible for admitted
   ops and is driven identically by the live request path and by WAL
   replay.  Time is folded in by stamping each op with
   [max (requested, now)] at admission and replaying [run_until stamp;
   op; run_until stamp] — the second slice drains same-instant
   scheduling passes, so the state is always snapshot-able between
   entries.

   The balance table tracks live fail/repair pairing per fault target:
   [Fattree.State] raises if a repair lands on a healthy resource, and
   unlike the offline simulator (whose fault script is validated as a
   whole) the daemon sees faults one at a time, so the pairing check
   must happen at admission. *)

let num_i i = Obs.Json.Num (float_of_int i)
let num_b b = Obs.Json.Num (if b then 1.0 else 0.0)

type params = {
  scheme : string;
  radix : int;
  scenario : string;
  scenario_seed : int;
  backfill_window : int;
  backfill : bool;
  resilience : Sched.Simulator.resilience;
  trace_name : string;
  system_nodes : int;
}

let params_to_fields p =
  [
    ("scheme", Obs.Json.Str p.scheme);
    ("radix", num_i p.radix);
    ("scenario", Obs.Json.Str p.scenario);
    ("scenario_seed", num_i p.scenario_seed);
    ("backfill_window", num_i p.backfill_window);
    ("backfill", num_b p.backfill);
    ("requeue", num_b p.resilience.requeue);
    ("resubmit_delay", Obs.Json.Num p.resilience.resubmit_delay);
    ("max_retries", num_i p.resilience.max_retries);
    ("charge_lost_work", num_b p.resilience.charge_lost_work);
  ]
  @ (if p.resilience.shrink then [ ("shrink", num_b true) ] else [])
  @ [
    ("trace_name", Obs.Json.Str p.trace_name);
    ("system_nodes", num_i p.system_nodes);
  ]

let params_of_fields fields =
  try
    Ok
      {
        scheme = Obs.Json.str fields "scheme";
        radix = Obs.Json.int fields "radix";
        scenario = Obs.Json.str fields "scenario";
        scenario_seed = Obs.Json.int fields "scenario_seed";
        backfill_window = Obs.Json.int fields "backfill_window";
        backfill = Obs.Json.int fields "backfill" <> 0;
        resilience =
          {
            requeue = Obs.Json.int fields "requeue" <> 0;
            resubmit_delay = Obs.Json.num fields "resubmit_delay";
            max_retries = Obs.Json.int fields "max_retries";
            charge_lost_work = Obs.Json.int fields "charge_lost_work" <> 0;
            (* Absent in configs written before molding existed. *)
            shrink =
              Obs.Json.mem fields "shrink"
              && Obs.Json.int fields "shrink" <> 0;
          };
        trace_name = Obs.Json.str fields "trace_name";
        system_nodes = Obs.Json.int fields "system_nodes";
      }
  with Obs.Json.Parse_error m -> Error ("bad config fields: " ^ m)

type t = {
  sim : Sched.Simulator.t;
  params : params;
  topo : Fattree.Topology.t;  (* for fault-target range validation *)
  balance : (string, int) Hashtbl.t;  (* "<target>:<id>" -> live fails *)
  dedup : (string, int) Hashtbl.t;  (* rid -> seq of first application *)
  mutable next_job_id : int;
  mutable last_seq : int;
  mutable drained : (Sched.Metrics.t * string) option;
}

let params t = t.params
let now t = Sched.Simulator.now t.sim
let last_seq t = t.last_seq
let fingerprint t = Option.map snd t.drained
let metrics t = Option.map fst t.drained
let find_rid t rid = Hashtbl.find_opt t.dedup rid
let note_rid t rid seq = Hashtbl.replace t.dedup rid seq

let balance_key target =
  Printf.sprintf "%s:%d"
    (Trace.Faults.target_name target)
    (Trace.Faults.target_id target)

let balance_of t target =
  Option.value ~default:0 (Hashtbl.find_opt t.balance (balance_key target))

let bump_balance t target d =
  Hashtbl.replace t.balance (balance_key target) (balance_of t target + d)

let of_sim ~params ~last_seq sim =
  let t =
    {
      sim;
      params;
      topo = Fattree.Topology.of_radix params.radix;
      balance = Hashtbl.create 64;
      dedup = Hashtbl.create 256;
      next_job_id = Sched.Simulator.max_job_id sim + 1;
      last_seq;
      drained = None;
    }
  in
  (* Every event in the log has executed (daemon ops always run_until
     their own stamp), so the live fail count per target is a plain
     fold. *)
  Array.iter
    (fun (e : Trace.Faults.event) ->
      bump_balance t e.target
        (match e.kind with Trace.Faults.Fail -> 1 | Trace.Faults.Repair -> -1))
    (Sched.Simulator.fault_log sim);
  t

let create ?sink ?prof p =
  match Sched.Allocator.by_name p.scheme with
  | Error m -> Error m
  | Ok allocator -> (
      match Trace.Scenario.of_name p.scenario with
      | Error m -> Error m
      | Ok scenario ->
          if p.system_nodes < 0 then Error "system_nodes must be non-negative"
          else
            let config =
              Sched.Simulator.Config.make ~scenario
                ~scenario_seed:p.scenario_seed
                ~backfill_window:p.backfill_window ~backfill:p.backfill
                ~resilience:p.resilience ?sink ?prof ~radix:p.radix allocator
            in
            let workload =
              Trace.Workload.create ~name:p.trace_name
                ~system_nodes:p.system_nodes [||]
            in
            Ok (of_sim ~params:p ~last_seq:(-1)
                  (Sched.Simulator.start config workload)))

let params_of_snapshot (s : Sched.Simulator.Snapshot.t) =
  {
    scheme = s.scheme;
    radix = s.radix;
    scenario = s.scenario;
    scenario_seed = s.scenario_seed;
    backfill_window = s.backfill_window;
    backfill = s.backfill;
    resilience = s.resilience;
    trace_name = s.trace_name;
    system_nodes = s.system_nodes;
  }

let of_checkpoint ?sink ?prof ~path () =
  match Sched.Checkpoint.load_ext ~path with
  | Error m -> Error m
  | Ok (snap, header) -> (
      match
        try Ok (Obs.Json.int header "x_svc_seq")
        with Obs.Json.Parse_error _ ->
          Error (path ^ ": checkpoint carries no x_svc_seq (not a daemon \
                         checkpoint)")
      with
      | Error m -> Error m
      | Ok last_seq -> (
          match Sched.Simulator.of_snapshot ?sink ?prof snap with
          | Error m -> Error m
          | Ok sim ->
              Ok (of_sim ~params:(params_of_snapshot snap) ~last_seq sim)))

let checkpoint t ~path =
  match t.drained with
  | Some _ -> false  (* the WAL'd drain op re-derives everything *)
  | None ->
      Sched.Checkpoint.save
        ~meta:[ ("x_svc_seq", num_i t.last_seq) ]
        ~path
        (Sched.Simulator.snapshot t.sim);
      Crash.hit "ckpt-post-save";
      true

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Submit of Trace.Job.t  (* arrival = the op's stamp *)
  | Cancel of int
  | Resize of int * int  (* job id, requested granted size *)
  | Fault of Trace.Faults.event  (* time = the op's stamp *)
  | Drain

(* Validation happens here, against the state all earlier ops produced —
   and the properties checked (id uniqueness, target ranges, fail/repair
   balance) only change through ops, so a verdict issued now still holds
   when [apply] runs right after the WAL append. *)
let admit t ~stamp (req : Protocol.request) =
  match t.drained with
  | Some _ -> Error "simulation already drained"
  | None -> (
      match req with
      | Protocol.Submit
          { id; size; min_size; max_size; runtime; est_runtime; bw_class }
        -> (
          let id =
            match id with
            | Some i -> i
            | None -> t.next_job_id
          in
          let spec =
            match (min_size, max_size) with
            | None, None -> None  (* classical rigid submission *)
            | _ ->
                Some
                  (Trace.Job.Moldable
                     {
                       min_size = Option.value ~default:size min_size;
                       max_size = Option.value ~default:size max_size;
                       pref = size;
                     })
          in
          if id < 0 then Error "job id must be non-negative"
          else if Sched.Simulator.known_job t.sim id then
            Error (Printf.sprintf "duplicate job id %d" id)
          else
            match
              Trace.Job.v ~arrival:stamp ?bw_class ?est_runtime ?spec ~id
                ~size ~runtime ()
            with
            | j -> Ok (Submit j)
            | exception Invalid_argument m -> Error m)
      | Protocol.Cancel { id } -> Ok (Cancel id)
      | Protocol.Resize { id; size } ->
          (* Whether the engine will grant the resize depends on the
             state at apply time; the verdict is part of the reply, not
             of admission.  Both verdicts are deterministic, so WAL
             replay reproduces them. *)
          if size <= 0 then Error "size must be positive"
          else Ok (Resize (id, size))
      | Protocol.Fault { kind; target } -> (
          match Trace.Faults.resources t.topo target with
          | exception Invalid_argument m -> Error m
          | _ -> (
              match kind with
              | Trace.Faults.Fail ->
                  Ok (Fault { time = stamp; kind; target })
              | Trace.Faults.Repair ->
                  if balance_of t target <= 0 then
                    Error
                      (Printf.sprintf
                         "repair of healthy target %s %d (no live fail on \
                          record)"
                         (Trace.Faults.target_name target)
                         (Trace.Faults.target_id target))
                  else Ok (Fault { time = stamp; kind; target })))
      | Protocol.Drain -> Ok Drain
      | _ -> Error "not a journaled operation")

let fields_of_op ~stamp ~rid op =
  let envelope rest =
    ("at", Obs.Json.Num stamp)
    :: (match rid with
       | None -> rest
       | Some r -> ("rid", Obs.Json.Str r) :: rest)
  in
  match op with
  | Submit j ->
      ("op", Obs.Json.Str "submit")
      :: envelope
           ([
              ("id", num_i j.id);
              ("size", num_i j.size);
            ]
           @ (match j.spec with
             | Trace.Job.Rigid _ -> []  (* keep rigid entries v1-shaped *)
             | Trace.Job.Moldable { min_size; max_size; _ } ->
                 [ ("min", num_i min_size); ("max", num_i max_size) ])
           @ [
               ("runtime", Obs.Json.Num j.runtime);
               ("est", Obs.Json.Num j.est_runtime);
               ("bw", Obs.Json.Num j.bw_class);
             ])
  | Cancel id -> ("op", Obs.Json.Str "cancel") :: envelope [ ("id", num_i id) ]
  | Resize (id, size) ->
      ("op", Obs.Json.Str "resize")
      :: envelope [ ("id", num_i id); ("size", num_i size) ]
  | Fault e ->
      ( "op",
        Obs.Json.Str
          (match e.kind with
          | Trace.Faults.Fail -> "fail"
          | Trace.Faults.Repair -> "repair") )
      :: envelope
           [
             ("target", Obs.Json.Str (Trace.Faults.target_name e.target));
             ("index", num_i (Trace.Faults.target_id e.target));
           ]
  | Drain -> ("op", Obs.Json.Str "drain") :: envelope []

let op_of_fields fields =
  try
    let stamp = Obs.Json.num fields "at" in
    let rid =
      if Obs.Json.mem fields "rid" then Some (Obs.Json.str fields "rid")
      else None
    in
    match Obs.Json.str fields "op" with
    | "submit" -> (
        let size = Obs.Json.int fields "size" in
        let spec =
          if Obs.Json.mem fields "min" || Obs.Json.mem fields "max" then
            Some
              (Trace.Job.Moldable
                 {
                   min_size =
                     (if Obs.Json.mem fields "min" then
                        Obs.Json.int fields "min"
                      else size);
                   max_size =
                     (if Obs.Json.mem fields "max" then
                        Obs.Json.int fields "max"
                      else size);
                   pref = size;
                 })
          else None
        in
        match
          Trace.Job.v ~arrival:stamp
            ~bw_class:(Obs.Json.num fields "bw")
            ~est_runtime:(Obs.Json.num fields "est")
            ?spec
            ~id:(Obs.Json.int fields "id")
            ~size
            ~runtime:(Obs.Json.num fields "runtime")
            ()
        with
        | j -> Ok (stamp, rid, Submit j)
        | exception Invalid_argument m -> Error ("bad submit entry: " ^ m))
    | "cancel" -> Ok (stamp, rid, Cancel (Obs.Json.int fields "id"))
    | "resize" ->
        Ok
          ( stamp,
            rid,
            Resize (Obs.Json.int fields "id", Obs.Json.int fields "size") )
    | ("fail" | "repair") as op -> (
        match
          Trace.Faults.target_of_name
            (Obs.Json.str fields "target")
            (Obs.Json.int fields "index")
        with
        | Error m -> Error m
        | Ok target ->
            let kind =
              if op = "fail" then Trace.Faults.Fail else Trace.Faults.Repair
            in
            Ok (stamp, rid, Fault { time = stamp; kind; target }))
    | "drain" -> Ok (stamp, rid, Drain)
    | op -> Error (Printf.sprintf "unknown WAL op %S" op)
  with Obs.Json.Parse_error m -> Error ("bad WAL entry: " ^ m)

(* Infallible for ops [admit] issued against this exact state; an
   engine-level rejection here means the WAL and the state diverged,
   which recovery must treat as corruption, not business as usual. *)
let svc_invariant m = failwith ("svc state/WAL divergence: " ^ m)

let apply t ~seq ~rid ~stamp op =
  let sim = t.sim in
  Sched.Simulator.run_until sim stamp;
  let reply =
    match op with
    | Submit j ->
        (match Sched.Simulator.submit sim j with
        | Ok () -> ()
        | Error m -> svc_invariant m);
        if j.id >= t.next_job_id then t.next_job_id <- j.id + 1;
        [ ("id", num_i j.id) ]
    | Cancel id ->
        let outcome =
          match Sched.Simulator.cancel sim id with
          | Sched.Simulator.Cancelled -> "cancelled"
          | Sched.Simulator.Not_pending -> "not-pending"
          | Sched.Simulator.Unknown_job -> "unknown-job"
        in
        [ ("outcome", Obs.Json.Str outcome) ]
    | Resize (id, size) -> (
        match Sched.Simulator.resize sim id ~size with
        | Sched.Simulator.Resized_to n ->
            [ ("outcome", Obs.Json.Str "resized"); ("size", num_i n) ]
        | Sched.Simulator.Resize_refused m ->
            [
              ("outcome", Obs.Json.Str "refused");
              ("reason", Obs.Json.Str m);
            ])
    | Fault e ->
        (match Sched.Simulator.inject_fault sim e with
        | Ok () -> ()
        | Error m -> svc_invariant m);
        bump_balance t e.target
          (match e.kind with
          | Trace.Faults.Fail -> 1
          | Trace.Faults.Repair -> -1);
        []
    | Drain ->
        let m, _ = Sched.Simulator.finish sim in
        let fp = Sched.Metrics.fingerprint m in
        t.drained <- Some (m, fp);
        [ ("fingerprint", Obs.Json.Str fp) ]
  in
  (* Second slice: execute what the op scheduled at its own stamp and
     drain the same-instant scheduling pass. *)
  (match op with Drain -> () | _ -> Sched.Simulator.run_until sim stamp);
  Crash.hit "post-apply";
  t.last_seq <- seq;
  (match rid with Some r -> Hashtbl.replace t.dedup r seq | None -> ());
  reply

let apply_entry t (e : Wal.entry) =
  match op_of_fields e.fields with
  | Error m -> Error (Printf.sprintf "WAL entry %d: %s" e.seq m)
  | Ok (stamp, rid, op) -> Ok (apply t ~seq:e.seq ~rid ~stamp op)

let status t =
  let sim = t.sim in
  [
    ("clock", Obs.Json.Num (Sched.Simulator.now sim));
    ("seq", num_i t.last_seq);
    ("pending", num_i (Sched.Simulator.pending_count sim));
    ("running", num_i (Sched.Simulator.running_count sim));
    ("finished", num_i (Sched.Simulator.finished_count sim));
    ("cancelled", num_i (Sched.Simulator.cancelled_count sim));
    ("rejected", num_i (Sched.Simulator.rejected_count sim));
    ("drained", num_b (t.drained <> None));
  ]

let advance t upto =
  let upto = Float.max upto (Sched.Simulator.now t.sim) in
  Sched.Simulator.run_until t.sim upto
