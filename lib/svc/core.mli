(** The daemon's replayable state machine.

    Wraps a live {!Sched.Simulator} so that the whole state is a pure
    function of [(params, applied WAL entries)]:

    - {!admit} performs every fallible check {e before} anything is
      logged, against state only ops can change — so its verdict still
      holds when {!apply} runs after the WAL append;
    - {!apply} is infallible for admitted ops and identical on the live
      path and on replay ([run_until stamp; op; run_until stamp], the
      second slice draining same-instant scheduling passes so the state
      stays checkpoint-able between entries);
    - {!fields_of_op}/{!op_of_fields} are the WAL encoding, exact dual
      of each other. *)

(** Simulation configuration, embedded in WAL segment headers and
    recovered from checkpoint snapshots; the daemon cross-checks the two
    sources at startup. *)
type params = {
  scheme : string;
  radix : int;
  scenario : string;
  scenario_seed : int;
  backfill_window : int;
  backfill : bool;
  resilience : Sched.Simulator.resilience;
  trace_name : string;
  system_nodes : int;
}

val params_to_fields : params -> (string * Obs.Json.value) list
val params_of_fields : (string * Obs.Json.value) list -> (params, string) result

type t

val create :
  ?sink:Obs.Sink.t -> ?prof:Obs.Prof.t -> params -> (t, string) result
(** Fresh state: an empty workload on the configured cluster, clock 0. *)

val of_checkpoint :
  ?sink:Obs.Sink.t ->
  ?prof:Obs.Prof.t ->
  path:string ->
  unit ->
  (t, string) result
(** Restore from a daemon checkpoint ({!checkpoint}); {!last_seq} comes
    back as the [x_svc_seq] header field.  [Error] on corruption, a
    non-daemon checkpoint, or an unknown scheme/scenario. *)

val checkpoint : t -> path:string -> bool
(** Atomic, durable snapshot + last applied sequence number.  [false]
    (and no file) once drained — the WAL'd drain op re-derives the
    result on replay.  Carries the ["ckpt-post-save"] crash point. *)

val params : t -> params
val now : t -> float

val last_seq : t -> int
(** Sequence number of the last applied WAL entry; [-1] if none. *)

val fingerprint : t -> string option
(** The run's {!Sched.Metrics.fingerprint} once drained. *)

val metrics : t -> Sched.Metrics.t option

(** {1 Ops} *)

type op =
  | Submit of Trace.Job.t  (** Arrival = the op's stamp. *)
  | Cancel of int
  | Resize of int * int
      (** Job id, requested granted size.  Journaled even when the
          engine refuses (rigid job, out of range, no room): the verdict
          depends on apply-time state, is deterministic given it, and so
          replays identically. *)
  | Fault of Trace.Faults.event  (** Time = the op's stamp. *)
  | Drain

val admit : t -> stamp:float -> Protocol.request -> (op, string) result
(** Validate a request against current state and resolve it to a
    concrete op (assigning the next job id to an id-less submit).
    [stamp] must already be clamped to [>= now].  [Error] messages are
    client-facing ([Protocol.Invalid]). *)

val fields_of_op :
  stamp:float -> rid:string option -> op -> (string * Obs.Json.value) list

val op_of_fields :
  (string * Obs.Json.value) list -> (float * string option * op, string) result

val apply :
  t ->
  seq:int ->
  rid:string option ->
  stamp:float ->
  op ->
  (string * Obs.Json.value) list
(** Execute an admitted (or replayed) op; returns the reply's extra
    fields.  Records [rid] for duplicate suppression and advances
    {!last_seq}.  Raises [Failure] only if the op is rejected by the
    engine — WAL/state divergence, i.e. corruption. *)

val apply_entry :
  t -> Wal.entry -> ((string * Obs.Json.value) list, string) result
(** Decode + {!apply} one WAL entry (the replay path). *)

val advance : t -> float -> unit
(** [run_until (max upto now)].  Deliberately {e not} journaled: event
    effects never read the clock horizon, so idle advances are invisible
    to replay — op stamps alone reproduce the timeline. *)

val status : t -> (string * Obs.Json.value) list
(** Read-only counters for the [status] reply. *)

(** {1 Duplicate suppression} *)

val find_rid : t -> string -> int option
(** The WAL sequence number that first carried this request id, if any —
    a retried request is acked again without re-applying. *)

val note_rid : t -> string -> int -> unit
(** Seed the rid table during recovery (entries at or below the
    checkpoint's [x_svc_seq] are scanned, not re-applied). *)
