(* Crash-point injection for the recovery test suite.

   JIGSAW_SVC_CRASH="<point>" or "<point>:<n>" arms one named crash
   point; the [n]-th time execution reaches it (default: the first) the
   process SIGKILLs itself — the real thing, not an exception: no
   at_exit handlers, no buffer flushes, no unwinding.  A crash point
   placed between a write and its fsync therefore exercises exactly the
   torn-tail/unsynced-data states the recovery path must survive.

   Unarmed (the production case), every [hit] is one getenv plus a
   string compare.  The hit counter keyed by point name persists for the
   life of the process, so "<point>:3" crashes on the third visit. *)

let counts : (string, int) Hashtbl.t = Hashtbl.create 8

let die () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* SIGKILL is delivered before [kill] returns to the caller. *)
  assert false

(* Returns [true] exactly when the armed point fires, letting callers
   stage a deliberately inconsistent state (e.g. a half-written WAL
   line) before dying. *)
let triggered point =
  match Sys.getenv_opt "JIGSAW_SVC_CRASH" with
  | None | Some "" -> false
  | Some spec ->
      let name, n =
        match String.index_opt spec ':' with
        | None -> (spec, 1)
        | Some i ->
            ( String.sub spec 0 i,
              Option.value ~default:1
                (int_of_string_opt
                   (String.sub spec (i + 1) (String.length spec - i - 1))) )
      in
      name = point
      &&
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts point) in
      Hashtbl.replace counts point c;
      c = n

let hit point = if triggered point then die ()
