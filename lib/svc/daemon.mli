(** The scheduler daemon: a single-threaded [Unix.select] reactor over a
    Unix-domain socket, speaking {!Protocol} and journaling every
    accepted op through {!Wal} before acknowledging it.

    Crash contract: at any instant — including [kill -9] mid-write — the
    state directory recovers to exactly the state all {e acknowledged}
    ops produce.  Unacknowledged work (requests whose fsync had not
    completed) vanishes without trace; clients retry them by rid and the
    daemon suppresses duplicates.

    Degradation contract: malformed input gets typed error replies, a
    full ingest queue sheds with [overloaded] + retry-after, clients
    that stop draining replies are disconnected, over-long lines are
    rejected.  The reactor itself never dies to client input.

    DESIGN.md §14 documents the full protocol and recovery procedure. *)

type opts = {
  socket : string;
  dir : string;  (** State directory: WAL segments + checkpoints. *)
  params : Core.params option;
      (** Required for a fresh state dir; if given for an existing one,
          must match its WAL config exactly. *)
  time_scale : float option;
      (** [Some s]: wall-clock mode, [s] simulated seconds per wall
          second.  [None]: logical time — the clock moves only on op
          stamps and [advance] (the deterministic mode tests use). *)
  max_clients : int;
  max_queue : int;
  max_line : int;
  client_timeout : float;
  ckpt_every_ops : int;
  ckpt_every_s : float;
  retain : int;  (** Checkpoints kept; older pruned, their WAL GC'd. *)
  allow_crash_op : bool;  (** Honor the [crash] test op. *)
  log : string -> unit;
}

val default_opts : socket:string -> dir:string -> opts
(** No params, logical clock off (wall mode off too — [time_scale =
    None] means logical), 32 clients, queue 256, 64 KiB lines, 10 s
    client timeout, checkpoint every 64 ops / 5 s, retain 2, crash op
    disabled, silent. *)

val recover :
  ?sink:Obs.Sink.t ->
  ?prof:Obs.Prof.t ->
  ?params:Core.params ->
  dir:string ->
  unit ->
  (Core.t * Wal.t * string list, string) result
(** Rebuild the pre-crash state: newest usable checkpoint (corrupt ones
    skipped — an older checkpoint plus a longer replay reaches the same
    state) + WAL replay past its [x_svc_seq]; entries at or below it
    seed rid dedup only.  Returns the state, a fresh WAL appender
    (recovery never appends to old segments), and a human-readable
    report.  Exposed separately from {!run} so the crash-recovery
    property tests can drive it directly. *)

val run : ?prof:Obs.Prof.t -> opts -> (unit, string) result
(** Recover, bind, serve until a [shutdown] op or SIGTERM/SIGINT, then
    checkpoint and exit cleanly.  [Error] on a recovery or bind
    failure. *)

val ckpt_name : int -> string
(** ["ckpt-%012d.jsonl"] — exposed for tests that corrupt specific
    checkpoint files. *)
