let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

module Acc = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable sum_sq : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { n = 0; sum = 0.0; sum_sq = 0.0; mn = Float.infinity; mx = Float.neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let stddev t =
    if t.n < 2 then 0.0
    else begin
      let m = mean t in
      let v = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
      sqrt (Float.max v 0.0)
    end

  let min t = if t.n = 0 then invalid_arg "Stats.Acc.min: empty" else t.mn
  let max t = if t.n = 0 then invalid_arg "Stats.Acc.max: empty" else t.mx
  let sum_sq t = t.sum_sq

  let restore ~count ~total ~sum_sq ~min ~max =
    if count < 0 then invalid_arg "Stats.Acc.restore: negative count";
    if count = 0 then create ()
    else { n = count; sum = total; sum_sq; mn = min; mx = max }

  (* Accumulators are sum-based, so combining two is exact for the
     counts and extrema and as associative as float addition allows:
     callers that need reproducible totals must fix the merge order. *)
  let merge_into ~into src =
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    into.sum_sq <- into.sum_sq +. src.sum_sq;
    if src.mn < into.mn then into.mn <- src.mn;
    if src.mx > into.mx then into.mx <- src.mx
end

module Hist = struct
  type t = { boundaries : float array; counts : int array; mutable total : int }

  let create ~boundaries =
    let k = Array.length boundaries in
    for i = 1 to k - 1 do
      if boundaries.(i) <= boundaries.(i - 1) then
        invalid_arg "Stats.Hist.create: boundaries must be strictly increasing"
    done;
    { boundaries; counts = Array.make (k + 1) 0; total = 0 }

  let bucket t x =
    (* Index of the first boundary strictly greater than x; x lands in that
       bucket.  Linear scan is fine for the handful of buckets we use. *)
    let k = Array.length t.boundaries in
    let rec go i = if i < k && x >= t.boundaries.(i) then go (i + 1) else i in
    go 0

  let add_weighted t x ~weight =
    let b = bucket t x in
    t.counts.(b) <- t.counts.(b) + weight;
    t.total <- t.total + weight

  let add t x = add_weighted t x ~weight:1
  let counts t = Array.copy t.counts
  let total t = t.total
  let boundaries t = Array.copy t.boundaries

  let restore ~boundaries ~counts =
    let t = create ~boundaries in
    if Array.length counts <> Array.length t.counts then
      invalid_arg "Stats.Hist.restore: counts length mismatch";
    Array.blit counts 0 t.counts 0 (Array.length counts);
    t.total <- Array.fold_left ( + ) 0 counts;
    t

  let merge_into ~into src =
    let k = Array.length into.boundaries in
    if
      k <> Array.length src.boundaries
      || not
           (Array.for_all2
              (fun a b -> Float.equal a b)
              into.boundaries src.boundaries)
    then invalid_arg "Stats.Hist.merge_into: boundary mismatch";
    for b = 0 to k do
      into.counts.(b) <- into.counts.(b) + src.counts.(b)
    done;
    into.total <- into.total + src.total
end
