(* Monomorphic in-place sort for int arrays.

   [Array.sort] calls its comparator through a closure, which for the
   id arrays materialized on every successful allocation (nodes, cable
   lists — a few hundred entries at machine scale) costs more than the
   whole partition search.  A hand-specialized quicksort compiles the
   comparisons to direct register operations.  Output order is the same
   ascending order as [Array.sort Int.compare] (duplicates are
   indistinguishable), so swapping the two is behavior-preserving. *)

let insertion (a : int array) lo hi =
  for i = lo + 1 to hi do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let swap (a : int array) i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

(* Median-of-three pivot; recurse on the smaller side to bound the
   stack depth at O(log n). *)
let rec quick (a : int array) lo hi =
  if hi - lo < 16 then insertion a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    if a.(mid) < a.(lo) then swap a mid lo;
    if a.(hi) < a.(lo) then swap a hi lo;
    if a.(hi) < a.(mid) then swap a hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do incr i done;
      while a.(!j) > pivot do decr j done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    if !j - lo < hi - !i then begin
      quick a lo !j;
      quick a !i hi
    end
    else begin
      quick a !i hi;
      quick a lo !j
    end
  end

let sort (a : int array) =
  let n = Array.length a in
  if n > 1 then quick a 0 (n - 1)

let of_list l =
  let a = Array.of_list l in
  sort a;
  a
