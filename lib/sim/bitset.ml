type t = { n : int; words : int array }

let bits_per_word = 63
let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0, %d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  let full_words = t.n / bits_per_word in
  Array.fill t.words 0 full_words (lnot 0 land ((1 lsl bits_per_word) - 1));
  let rem = t.n mod bits_per_word in
  if rem > 0 then t.words.(full_words) <- (1 lsl rem) - 1

let copy t = { n = t.n; words = Array.copy t.words }

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> x = y) a.words b.words

(* Number of trailing zeros of a non-zero isolated-LSB value: a branchy
   binary reduction over the 63 usable bit positions.  OCaml's native int
   is 63-bit, so the classic 64-bit de Bruijn multiply would wrap; six
   shift/test steps are branch-predictable and allocation-free. *)
let ntz_lsb lsb =
  let v = ref lsb and bit = ref 0 in
  if !v land 0x7FFFFFFF = 0 then begin
    v := !v lsr 31;
    bit := !bit + 31
  end;
  if !v land 0xFFFF = 0 then begin
    v := !v lsr 16;
    bit := !bit + 16
  end;
  if !v land 0xFF = 0 then begin
    v := !v lsr 8;
    bit := !bit + 8
  end;
  if !v land 0xF = 0 then begin
    v := !v lsr 4;
    bit := !bit + 4
  end;
  if !v land 0x3 = 0 then begin
    v := !v lsr 2;
    bit := !bit + 2
  end;
  if !v land 0x1 = 0 then bit := !bit + 1;
  !bit

(* Dense words flip the cost balance: the lsb-isolation walk pays a
   branchy ntz per set bit, so on a nearly-full word it does ~63 of
   them and loses to a straight bit loop whose test is one [land].
   Each word picks its strategy from its own popcount (O(set bits),
   negligible on sparse words where the walk wins anyway). *)
let dense_word_bits = 40

let iter_set t ~f =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let word = ref (Array.unsafe_get words w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      if popcount !word >= dense_word_bits then
        for b = 0 to bits_per_word - 1 do
          if !word land (1 lsl b) <> 0 then f (base + b)
        done
      else
        while !word <> 0 do
          let lsb = !word land - !word in
          f (base + ntz_lsb lsb);
          word := !word land (!word - 1)
        done
    end
  done

let iter = iter_set

let exists_set t ~f =
  let words = t.words in
  let nw = Array.length words in
  let rec scan_word w word base =
    if word = 0 then scan w (* next word *)
    else begin
      let lsb = word land -word in
      if f (base + ntz_lsb lsb) then true
      else scan_word w (word land (word - 1)) base
    end
  and scan w =
    if w >= nw then false
    else scan_word (w + 1) (Array.unsafe_get words w) (w * bits_per_word)
  in
  scan 0

let intersects_array t arr =
  let words = t.words in
  let len = Array.length arr in
  let rec go i =
    if i >= len then false
    else begin
      let x = Array.unsafe_get arr i in
      check t x;
      if
        Array.unsafe_get words (x / bits_per_word)
        land (1 lsl (x mod bits_per_word))
        <> 0
      then true
      else go (i + 1)
    end
  in
  go 0

let fold t ~init ~f =
  let acc = ref init in
  iter_set t ~f:(fun i -> acc := f !acc i);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))

let of_list n xs =
  let t = create n in
  List.iter (fun i -> add t i) xs;
  t

let of_array n xs =
  let t = create n in
  Array.iter (fun i -> add t i) xs;
  t

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Bitset.blit: capacity mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let next_set_from t start =
  if start < 0 then invalid_arg "Bitset.next_set_from: negative index";
  if start >= t.n then None
  else begin
    (* Word-walk: mask off bits below [start] in its word, then skip
       empty words; the lowest set bit of the first non-empty word is
       the answer. *)
    let nw = Array.length t.words in
    let rec go w mask =
      if w >= nw then None
      else begin
        let v = t.words.(w) land mask in
        if v = 0 then go (w + 1) (lnot 0)
        else Some ((w * bits_per_word) + ntz_lsb (v land -v))
      end
    in
    let w0 = start / bits_per_word in
    go w0 (lnot ((1 lsl (start mod bits_per_word)) - 1))
  end

let rank t i =
  let i = Stdlib.min (Stdlib.max i 0) t.n in
  if i = 0 then 0
  else begin
    let w = i / bits_per_word and b = i mod bits_per_word in
    let acc = ref 0 in
    for k = 0 to w - 1 do
      acc := !acc + popcount t.words.(k)
    done;
    if b > 0 then acc := !acc + popcount (t.words.(w) land ((1 lsl b) - 1));
    !acc
  end

let nth_set t k =
  if k < 0 then invalid_arg "Bitset.nth_set: negative rank";
  let nw = Array.length t.words in
  let rec over_words w k =
    if w >= nw then None
    else begin
      let word = t.words.(w) in
      let pc = popcount word in
      if k >= pc then over_words (w + 1) (k - pc)
      else begin
        (* Drop the k lowest set bits, then take the next one. *)
        let v = ref word in
        for _ = 1 to k do
          v := !v land (!v - 1)
        done;
        Some ((w * bits_per_word) + ntz_lsb (!v land - !v))
      end
    end
  in
  over_words 0 k

let first_clear_from t start =
  if start < 0 then invalid_arg "Bitset.first_clear_from: negative index";
  if start >= t.n then None
  else begin
    (* Word-wise: complement the word, mask off positions below [start]
       (first word only), then the lowest set bit of the complement is
       the first clear index. *)
    let nw = Array.length t.words in
    let full_mask = (1 lsl bits_per_word) - 1 in
    let rec go w mask =
      if w >= nw then None
      else begin
        let inv = lnot t.words.(w) land mask in
        if inv = 0 then go (w + 1) full_mask
        else begin
          let i = (w * bits_per_word) + ntz_lsb (inv land -inv) in
          if i < t.n then Some i else None
        end
      end
    in
    let w0 = start / bits_per_word in
    go w0 (full_mask land lnot ((1 lsl (start mod bits_per_word)) - 1))
  end

let count_range t ~lo ~hi =
  let lo = Stdlib.max lo 0 and hi = Stdlib.min hi t.n in
  if lo >= hi then 0
  else begin
    (* Popcount whole words, trimming the partial words at both ends. *)
    let wlo = lo / bits_per_word and whi = (hi - 1) / bits_per_word in
    let full_mask = (1 lsl bits_per_word) - 1 in
    let mask_from b = lnot ((1 lsl b) - 1) in
    (* [b] ranges over 1..63; shifting an OCaml int by 63 is unspecified. *)
    let mask_upto b = if b >= bits_per_word then full_mask else (1 lsl b) - 1 in
    if wlo = whi then
      popcount
        (t.words.(wlo)
        land mask_from (lo mod bits_per_word)
        land mask_upto (((hi - 1) mod bits_per_word) + 1))
    else begin
      let acc = ref (popcount (t.words.(wlo) land mask_from (lo mod bits_per_word))) in
      for w = wlo + 1 to whi - 1 do
        acc := !acc + popcount t.words.(w)
      done;
      acc
      := !acc
         + popcount (t.words.(whi) land mask_upto (((hi - 1) mod bits_per_word) + 1));
      !acc
    end
  end

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let disjoint a b =
  check_same a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land b.words.(w) <> 0 then ok := false
  done;
  !ok

let union_into ~dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done
