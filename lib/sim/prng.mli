(** Deterministic pseudo-random number generation.

    A SplitMix64 generator with convenience samplers for the distributions
    used by the workload generators.  Every experiment in this repository is
    seeded, so results are bit-for-bit reproducible across runs. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Useful for giving each trace or scenario its own stream. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; the two then evolve
    independently. *)

val state : t -> int64
(** [state t] is the raw 64-bit internal state — everything a SplitMix64
    generator is.  Checkpointing serializes this word. *)

val of_state : int64 -> t
(** [of_state s] is a generator whose next outputs are exactly those a
    generator with [state t = s] would produce.  Inverse of {!state}. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [0, bound).  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform on the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> bound:float -> float
(** [float t ~bound] is uniform on [0, bound). *)

val float_in : t -> lo:float -> hi:float -> float
(** [float_in t ~lo ~hi] is uniform on [lo, hi). *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples Exp(1/mean) by inversion. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] is [exp (mu + sigma * z)] with [z] standard
    normal (Box–Muller). *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal t ~mu ~sigma] is a Gaussian sample (Box–Muller). *)

val choose : t -> 'a array -> 'a
(** [choose t arr] is a uniformly random element of [arr], which must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)
