(** Fixed-capacity mutable bitsets.

    Backed by an array of 63-bit words.  Used for node- and cable-occupancy
    maps over clusters of up to several thousand elements, where set/test/
    popcount must be fast and allocation-free. *)

type t

val create : int -> t
(** [create n] is an empty bitset over the universe [0 .. n-1].
    [n] must be >= 0. *)

val capacity : t -> int
(** The universe size [n]. *)

val mem : t -> int -> bool
(** [mem t i] tests bit [i].  Bounds-checked. *)

val add : t -> int -> unit
(** [add t i] sets bit [i]. *)

val remove : t -> int -> unit
(** [remove t i] clears bit [i]. *)

val set : t -> int -> bool -> unit
(** [set t i b] sets bit [i] to [b]. *)

val cardinal : t -> int
(** Number of set bits.  O(words). *)

val is_empty : t -> bool

val clear : t -> unit
(** Clears every bit. *)

val fill : t -> unit
(** Sets every bit in the universe. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] overwrites [dst]'s members with [src]'s without
    allocating; capacities must match.  The refresh primitive behind
    reusable scratch states. *)

val equal : t -> t -> bool
(** Same capacity and same members. *)

val iter_set : t -> f:(int -> unit) -> unit
(** [iter_set t ~f] applies [f] to every set bit in increasing order.
    Skips empty words and isolates each set bit with word-level
    arithmetic — O(words + set bits) rather than O(universe), which is
    what the hot backfill/fault paths need on mostly-empty maps.
    Nearly-full words switch to a straight bit loop, so dense sets pay
    one cheap test per bit instead of a branchy isolation per set
    bit. *)

val iter : t -> f:(int -> unit) -> unit
(** Alias for {!iter_set} (the historical name). *)

val exists_set : t -> f:(int -> bool) -> bool
(** [exists_set t ~f] is true iff [f i] holds for some set bit [i];
    short-circuits on the first hit, visiting bits in increasing
    order. *)

val intersects_array : t -> int array -> bool
(** [intersects_array t arr] is true iff some element of [arr] is a
    member of [t]; short-circuits on the first hit.  Bounds-checked.
    Equivalent to [Array.exists (mem t) arr] without the closure. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val to_list : t -> int list
(** Set bits in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the bitset over [0..n-1] containing [xs]. *)

val of_array : int -> int array -> t
(** [of_array n xs] is the bitset over [0..n-1] containing [xs]. *)

val next_set_from : t -> int -> int option
(** [next_set_from t i] is the smallest set index [>= i], or [None] if
    no bit at or above [i] is set.  A word-walk: empty words are
    skipped with one test each, so scans over sparse sets touch
    O(words) memory rather than O(universe) bits. *)

val rank : t -> int -> int
(** [rank t i] is the number of set bits with index [< i].  [i] is
    clamped to [0 .. n].  O(words up to [i]). *)

val nth_set : t -> int -> int option
(** [nth_set t k] is the [k]-th set bit in increasing order (0-based),
    or [None] if fewer than [k+1] bits are set.  The select dual of
    {!rank}: word-level popcounts skip ahead, then the target word is
    walked. *)

val first_clear_from : t -> int -> int option
(** [first_clear_from t i] is the smallest index [>= i] whose bit is clear,
    or [None] if all of [i .. n-1] are set. *)

val count_range : t -> lo:int -> hi:int -> int
(** [count_range t ~lo ~hi] is the number of set bits with
    [lo <= index < hi]. *)

val inter_cardinal : t -> t -> int
(** Cardinality of the intersection; capacities must match. *)

val disjoint : t -> t -> bool
(** True iff the two sets share no member; capacities must match. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst];
    capacities must match. *)
