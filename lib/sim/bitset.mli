(** Fixed-capacity mutable bitsets.

    Backed by an array of 63-bit words.  Used for node- and cable-occupancy
    maps over clusters of up to several thousand elements, where set/test/
    popcount must be fast and allocation-free. *)

type t

val create : int -> t
(** [create n] is an empty bitset over the universe [0 .. n-1].
    [n] must be >= 0. *)

val capacity : t -> int
(** The universe size [n]. *)

val mem : t -> int -> bool
(** [mem t i] tests bit [i].  Bounds-checked. *)

val add : t -> int -> unit
(** [add t i] sets bit [i]. *)

val remove : t -> int -> unit
(** [remove t i] clears bit [i]. *)

val set : t -> int -> bool -> unit
(** [set t i b] sets bit [i] to [b]. *)

val cardinal : t -> int
(** Number of set bits.  O(words). *)

val is_empty : t -> bool

val clear : t -> unit
(** Clears every bit. *)

val fill : t -> unit
(** Sets every bit in the universe. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same capacity and same members. *)

val iter_set : t -> f:(int -> unit) -> unit
(** [iter_set t ~f] applies [f] to every set bit in increasing order.
    Skips empty words and isolates each set bit with word-level
    arithmetic — O(words + set bits) rather than O(universe), which is
    what the hot backfill/fault paths need on mostly-empty maps. *)

val iter : t -> f:(int -> unit) -> unit
(** Alias for {!iter_set} (the historical name). *)

val exists_set : t -> f:(int -> bool) -> bool
(** [exists_set t ~f] is true iff [f i] holds for some set bit [i];
    short-circuits on the first hit, visiting bits in increasing
    order. *)

val intersects_array : t -> int array -> bool
(** [intersects_array t arr] is true iff some element of [arr] is a
    member of [t]; short-circuits on the first hit.  Bounds-checked.
    Equivalent to [Array.exists (mem t) arr] without the closure. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val to_list : t -> int list
(** Set bits in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the bitset over [0..n-1] containing [xs]. *)

val of_array : int -> int array -> t
(** [of_array n xs] is the bitset over [0..n-1] containing [xs]. *)

val first_clear_from : t -> int -> int option
(** [first_clear_from t i] is the smallest index [>= i] whose bit is clear,
    or [None] if all of [i .. n-1] are set. *)

val count_range : t -> lo:int -> hi:int -> int
(** [count_range t ~lo ~hi] is the number of set bits with
    [lo <= index < hi]. *)

val inter_cardinal : t -> t -> int
(** Cardinality of the intersection; capacities must match. *)

val disjoint : t -> t -> bool
(** True iff the two sets share no member; capacities must match. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst];
    capacities must match. *)
