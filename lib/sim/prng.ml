type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub (Int64.sub r v) (Int64.of_int (bound - 1)) < 0L then go ()
    else Int64.to_int v
  in
  go ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t ~bound:(hi - lo + 1)

let float t ~bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits scaled to [0,1). *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let float_in t ~lo ~hi = lo +. float t ~bound:(hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float t ~bound:1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t ~bound:1.0 in
  let u2 = float t ~bound:1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t ~bound:(Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
