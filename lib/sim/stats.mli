(** Descriptive statistics and histograms for simulation metrics. *)

val mean : float array -> float
(** [mean xs] is the arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** [variance xs] is the population variance; 0 for fewer than two values. *)

val stddev : float array -> float
(** [stddev xs] is [sqrt (variance xs)]. *)

val min_max : float array -> float * float
(** [min_max xs] is the pair of extrema.  Raises [Invalid_argument] on an
    empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between closest ranks.  Does not mutate [xs].
    Raises [Invalid_argument] on an empty array. *)

val median : float array -> float
(** [median xs] is [percentile xs 50.]. *)

(** Streaming accumulator: mean, variance, extrema in O(1) memory. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val stddev : t -> float

  val min : t -> float
  (** Raises [Invalid_argument] if empty. *)

  val max : t -> float
  (** Raises [Invalid_argument] if empty. *)

  val sum_sq : t -> float
  (** [sum_sq t] is the running sum of squares — with {!count}, {!total},
      {!min} and {!max} it is the accumulator's entire state, which is
      what lets a checkpoint round-trip it exactly. *)

  val restore : count:int -> total:float -> sum_sq:float -> min:float -> max:float -> t
  (** [restore ~count ~total ~sum_sq ~min ~max] is an accumulator in
      exactly that state; with [count = 0] the other arguments are
      ignored and the result equals [create ()].  Inverse of reading the
      five accessors. *)

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] folds [src]'s samples into [into] (counts
      and extrema exactly; sums by float addition, so a reproducible
      total requires a fixed merge order).  [src] is not modified. *)
end

(** Fixed-boundary histograms.

    A histogram over boundaries [b0 < b1 < ... < bk] has [k+1] buckets:
    (-inf, b0), [b0, b1), ..., [bk, +inf). *)
module Hist : sig
  type t

  val create : boundaries:float array -> t
  (** [create ~boundaries] is an empty histogram.  Boundaries must be
      strictly increasing. *)

  val add : t -> float -> unit

  val add_weighted : t -> float -> weight:int -> unit
  (** [add_weighted t x ~weight] counts [x] as [weight] samples. *)

  val counts : t -> int array
  (** Bucket counts, lowest bucket first; length = boundaries + 1. *)

  val total : t -> int

  val boundaries : t -> float array
  (** A copy of the bucket boundaries. *)

  val restore : boundaries:float array -> counts:int array -> t
  (** [restore ~boundaries ~counts] is a histogram with exactly those
      bucket counts ([Array.length counts = Array.length boundaries + 1],
      else [Invalid_argument]).  Inverse of reading {!boundaries} and
      {!counts}. *)

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] adds [src]'s bucket counts into [into].
      Integer counts, so the merge is exact, associative and
      commutative.  Raises [Invalid_argument] unless both histograms
      share identical boundaries.  [src] is not modified. *)
end
