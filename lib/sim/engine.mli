(** A minimal discrete-event simulation engine.

    Events are scheduled at absolute simulated times and executed in
    non-decreasing time order.  Ties are broken first by an integer
    priority class (lower runs first — e.g. job completions before job
    arrivals at the same instant, so freed resources are visible), then by
    insertion order (FIFO). *)

type t
(** A simulation engine with its own clock and pending-event queue. *)

val create : unit -> t
(** [create ()] is an engine with clock at time 0 and no pending events. *)

val now : t -> float
(** [now t] is the current simulated time. *)

val schedule : t -> time:float -> ?priority:int -> (t -> unit) -> unit
(** [schedule t ~time ~priority f] enqueues [f] to run at simulated [time].
    [priority] defaults to 0.  Scheduling in the past (before [now t])
    raises [Invalid_argument]. *)

val schedule_after : t -> delay:float -> ?priority:int -> (t -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule t ~time:(now t +. delay) f]. *)

val pending : t -> int
(** [pending t] is the number of events still queued. *)

val steps : t -> int
(** [steps t] is the number of events executed so far. *)

val set_on_step : t -> (t -> unit) option -> unit
(** [set_on_step t (Some hook)] runs [hook] after every executed event —
    an observability tap (e.g. sampling queue length into a profiling
    gauge).  The hook must not schedule events.  [None] (the default)
    removes it. *)

val step : t -> bool
(** [step t] executes the next event, advancing the clock to its time.
    Returns [false] if no event was pending. *)

val run : t -> unit
(** [run t] executes events until the queue is empty.  Event handlers may
    schedule further events. *)

val run_until : t -> float -> unit
(** [run_until t horizon] executes events with time <= [horizon], then
    advances the clock to [horizon] (if it is not already past it).
    Remaining events stay queued. *)
