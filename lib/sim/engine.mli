(** A minimal discrete-event simulation engine.

    Events are scheduled at absolute simulated times and executed in
    non-decreasing time order.  Ties are broken first by an integer
    priority class (lower runs first — e.g. job completions before job
    arrivals at the same instant, so freed resources are visible), then by
    insertion order (FIFO). *)

type t
(** A simulation engine with its own clock and pending-event queue. *)

val create : unit -> t
(** [create ()] is an engine with clock at time 0 and no pending events. *)

val now : t -> float
(** [now t] is the current simulated time. *)

val schedule :
  t -> time:float -> ?priority:int -> ?tag:string -> (t -> unit) -> unit
(** [schedule t ~time ~priority f] enqueues [f] to run at simulated [time].
    [priority] defaults to 0.  Scheduling in the past (before [now t])
    raises [Invalid_argument].

    [tag] (default [""]) is an opaque label carried alongside the event.
    Closures cannot be serialized, so a checkpoint records each pending
    event as its [(time, priority, seq, tag)] quadruple and the restore
    path rebuilds the closure from the tag (see {!pending_events} and
    {!schedule_restored}). *)

val schedule_after :
  t -> delay:float -> ?priority:int -> ?tag:string -> (t -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule t ~time:(now t +. delay) f]. *)

val pending : t -> int
(** [pending t] is the number of events still queued. *)

val pending_events : t -> (float * int * int * string) list
(** [pending_events t] is every queued event as [(time, priority, seq,
    tag)], sorted by insertion order ([seq]).  The queue is unchanged.
    Used by checkpointing to serialize the heap logically. *)

val steps : t -> int
(** [steps t] is the number of events executed so far. *)

val next_seq : t -> int
(** [next_seq t] is the sequence number the next {!schedule} will use.
    Part of the checkpoint: restoring it exactly preserves FIFO
    tie-breaking across a checkpoint/restore boundary. *)

val restore : clock:float -> steps:int -> next_seq:int -> t
(** [restore ~clock ~steps ~next_seq] is an engine with an empty queue
    whose clock and counters are set exactly, ready to receive the
    checkpointed events via {!schedule_restored}.  Raises
    [Invalid_argument] on negative values. *)

val schedule_restored :
  t ->
  time:float ->
  priority:int ->
  seq:int ->
  tag:string ->
  (t -> unit) ->
  unit
(** [schedule_restored t ~time ~priority ~seq ~tag f] re-inserts a
    checkpointed event with its {e original} sequence number, so
    same-instant tie-breaking after restore is identical to the
    uninterrupted run.  Raises [Invalid_argument] if [time] is in the
    past or [seq >= next_seq t]. *)

val set_on_step : t -> (t -> unit) option -> unit
(** [set_on_step t (Some hook)] runs [hook] after every executed event —
    an observability tap (e.g. sampling queue length into a profiling
    gauge).  The hook must not schedule events.  [None] (the default)
    removes it. *)

val step : t -> bool
(** [step t] executes the next event, advancing the clock to its time.
    Returns [false] if no event was pending. *)

val run : t -> unit
(** [run t] executes events until the queue is empty.  Event handlers may
    schedule further events. *)

val run_until : t -> float -> unit
(** [run_until t horizon] executes events with time <= [horizon], then
    advances the clock to [horizon] (if it is not already past it).
    Remaining events stay queued. *)
