type event = {
  time : float;
  priority : int;
  seq : int;
  tag : string;
  action : t -> unit;
}

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  mutable steps : int;
  mutable on_step : (t -> unit) option;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else begin
    let c = compare a.priority b.priority in
    if c <> 0 then c else compare a.seq b.seq
  end

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    steps = 0;
    on_step = None;
  }

let now t = t.clock
let steps t = t.steps
let next_seq t = t.next_seq
let set_on_step t hook = t.on_step <- hook

let schedule t ~time ?(priority = 0) ?(tag = "") action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.add t.queue { time; priority; seq; tag; action }

let schedule_after t ~delay ?priority ?tag action =
  schedule t ~time:(t.clock +. delay) ?priority ?tag action

let pending t = Heap.length t.queue

let pending_events t =
  let evs = ref [] in
  Heap.iter_unordered t.queue ~f:(fun ev ->
      evs := (ev.time, ev.priority, ev.seq, ev.tag) :: !evs);
  List.sort (fun (_, _, s1, _) (_, _, s2, _) -> compare s1 s2) !evs

let restore ~clock ~steps ~next_seq =
  if clock < 0.0 then invalid_arg "Engine.restore: negative clock";
  if steps < 0 || next_seq < 0 then
    invalid_arg "Engine.restore: negative counter";
  {
    clock;
    next_seq;
    queue = Heap.create ~cmp:cmp_event;
    steps;
    on_step = None;
  }

let schedule_restored t ~time ~priority ~seq ~tag action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_restored: time %g is before now (%g)"
         time t.clock);
  if seq >= t.next_seq then
    invalid_arg
      (Printf.sprintf "Engine.schedule_restored: seq %d >= next_seq %d" seq
         t.next_seq);
  Heap.add t.queue { time; priority; seq; tag; action }

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.steps <- t.steps + 1;
      ev.action t;
      (match t.on_step with Some hook -> hook t | None -> ());
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek_min t.queue with
    | Some ev when ev.time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon
