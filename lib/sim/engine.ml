type event = { time : float; priority : int; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  mutable steps : int;
  mutable on_step : (t -> unit) option;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else begin
    let c = compare a.priority b.priority in
    if c <> 0 then c else compare a.seq b.seq
  end

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    steps = 0;
    on_step = None;
  }

let now t = t.clock
let steps t = t.steps
let set_on_step t hook = t.on_step <- hook

let schedule t ~time ?(priority = 0) action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.add t.queue { time; priority; seq; action }

let schedule_after t ~delay ?priority action =
  schedule t ~time:(t.clock +. delay) ?priority action

let pending t = Heap.length t.queue

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.steps <- t.steps + 1;
      ev.action t;
      (match t.on_step with Some hook -> hook t | None -> ());
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek_min t.queue with
    | Some ev when ev.time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon
