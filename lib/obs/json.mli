(** Flat JSON objects: the writer/parser pair behind the JSONL trace
    format and every other machine-readable output (metrics [--json],
    profile reports).

    Deliberately not a JSON library: values are numbers or strings only
    and objects are single-level, which is exactly what the emitters
    produce.  The parser rejects anything nested. *)

type value = Num of float | Str of string

val write : Buffer.t -> (string * value) list -> unit
(** Append one [{"k":v,...}] object (no trailing newline).  Floats are
    printed with enough digits to round-trip exactly. *)

exception Parse_error of string

val parse_line : string -> (string * value) list
(** Parse one flat object.  Raises {!Parse_error} with a position and
    reason on malformed input. *)

(** Typed field accessors; all raise {!Parse_error} on a missing field
    or a type mismatch. *)

val mem : (string * value) list -> string -> bool
val str : (string * value) list -> string -> string
val num : (string * value) list -> string -> float
val int : (string * value) list -> string -> int
