type meta = {
  trace : string;
  scheme : string;
  scenario : string;
  radix : int;
  nodes : int;
  jobs : int;
}

type run = { meta : meta option; events : Event.t list }

let meta_of_payload = function
  | Event.Run_meta { trace; scheme; scenario; radix; nodes; jobs } ->
      Some { trace; scheme; scenario; radix; nodes; jobs }
  | _ -> None

(* Split a flat event stream into runs on Run_meta boundaries.  Events
   before the first meta (hand-built or truncated files) form a headless
   run rather than being dropped. *)
let split_runs events =
  let runs = ref [] and meta = ref None and acc = ref [] in
  let close () =
    if !meta <> None || !acc <> [] then
      runs := { meta = !meta; events = List.rev !acc } :: !runs
  in
  List.iter
    (fun (e : Event.t) ->
      match meta_of_payload e.payload with
      | Some m ->
          close ();
          meta := Some m;
          acc := []
      | None -> acc := e :: !acc)
    events;
  close ();
  List.rev !runs

let parse_events fmt lines =
  let parse_one =
    match fmt with Sink.Jsonl -> Event.of_jsonl | Sink.Csv -> Event.of_csv
  in
  let events = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        let lineno = i + 1 in
        let skip =
          String.trim line = ""
          || (fmt = Sink.Csv && lineno = 1 && line = Event.csv_header)
        in
        if not skip then
          match parse_one line with
          | e -> events := e :: !events
          | exception Json.Parse_error m ->
              err := Some (Printf.sprintf "line %d: %s" lineno m))
    lines;
  match !err with
  | Some m -> Error m
  | None -> Ok (split_runs (List.rev !events))

(* Generic flat-JSONL reading — checkpoint files and sweep manifests are
   streams of flat [Json] records, not event traces, so they bypass
   [Event] entirely. *)
let parse_jsonl content =
  let lines = String.split_on_char '\n' content in
  let records = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match Json.parse_line line with
        | fields -> records := fields :: !records
        | exception Json.Parse_error m ->
            err := Some (Printf.sprintf "line %d: %s" (i + 1) m))
    lines;
  match !err with Some m -> Error m | None -> Ok (List.rev !records)

let load_jsonl path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> (
      match parse_jsonl content with
      | Ok records -> Ok records
      | Error m -> Error (Printf.sprintf "%s: %s" path m))
  | exception Sys_error m -> Error m

let load ?format path =
  let fmt = match format with Some f -> f | None -> Sink.format_of_path path in
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> (
      match parse_events fmt lines with
      | Ok runs -> Ok runs
      | Error m -> Error (Printf.sprintf "%s: %s" path m))
  | exception Sys_error m -> Error m
