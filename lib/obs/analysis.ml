(* Trace analysis: fold a run's event stream back into per-job
   timelines, queue statistics and a fault post-mortem.  Everything here
   derives from the trace alone — the analyzer never sees the simulator,
   which is the point: the trace must be self-describing. *)

type fate = Completed | Abandoned | Rejected | Stuck

type timeline = {
  id : int;
  size : int;
  submitted : float;
  starts : (float * Event.ctx) list;  (** Chronological, one per attempt. *)
  kills : float list;
  completed : float option;
  fate : fate;
}

type fault_view = {
  f_time : float;
  f_target : string;
  f_id : int;
  f_nodes : int;
  f_killed : int list;  (** Job ids killed by this fault, in kill order. *)
}

type net_job = {
  nj_id : int;
  nj_flows : int;
  nj_peak_interfered : int;  (** Across all its route/retract events. *)
}

type net_view = {
  nv_samples : int;
  nv_routes : int;
  nv_retracts : int;
  nv_peak_max_load : int;
  nv_peak_shared : int;
  nv_peak_interfered : int;
  nv_peak_lower_bound : int;
  nv_jobs : net_job list;  (** Sorted by job id; every routed job. *)
}

type t = {
  meta : Reader.meta option;
  events : int;
  timelines : timeline list;  (** Sorted by job id. *)
  queue_depths : float array;  (** One sample per [Pass_start]. *)
  waits : float array;  (** start - submission, per start (sim time). *)
  attempts : (string * (Event.probe_outcome * int) list) list;
      (** Per-context ("head"/"backfill") probe-outcome counts. *)
  faults : fault_view list;
  requeues : int;
  repairs : int;
  net : net_view option;  (** Present iff the run carried net events. *)
}

type builder = {
  mutable b_size : int;
  mutable b_submitted : float;
  mutable b_starts : (float * Event.ctx) list;
  mutable b_kills : float list;
  mutable b_completed : float option;
  mutable b_rejected : bool;
  mutable b_abandoned : bool;
}

let of_run (run : Reader.run) =
  let jobs : (int, builder) Hashtbl.t = Hashtbl.create 64 in
  let builder id =
    match Hashtbl.find_opt jobs id with
    | Some b -> b
    | None ->
        let b =
          {
            b_size = 0;
            b_submitted = nan;
            b_starts = [];
            b_kills = [];
            b_completed = None;
            b_rejected = false;
            b_abandoned = false;
          }
        in
        Hashtbl.replace jobs id b;
        b
  in
  let depths = ref [] and waits = ref [] in
  let attempt_counts : (Event.ctx * Event.probe_outcome, int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let faults = ref [] and open_fault = ref None in
  let requeues = ref 0 and repairs = ref 0 in
  let net_samples = ref 0 and net_routes = ref 0 and net_retracts = ref 0 in
  let net_peak_max = ref 0
  and net_peak_shared = ref 0
  and net_peak_interfered = ref 0
  and net_peak_lb = ref 0 in
  let net_jobs : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  let close_fault () =
    match !open_fault with
    | None -> ()
    | Some f ->
        faults := { f with f_killed = List.rev f.f_killed } :: !faults;
        open_fault := None
  in
  List.iter
    (fun (e : Event.t) ->
      (* Kills (with their interleaved requeue/abandon outcomes) follow
         their Fail at the same instant; any other event kind closes the
         association window.  Net events ride along with the kills they
         retract for, so they must not close it either. *)
      (match (e.payload, !open_fault) with
      | ( ( Event.Fail _ | Event.Kill _ | Event.Requeue _ | Event.Abandon _
          | Event.Shrink_recover _ | Event.Net_route _
          | Event.Net_congestion_sample _ ),
          _ ) ->
          ()
      | _, Some _ -> close_fault ()
      | _, None -> ());
      match e.payload with
      | Event.Run_meta _ -> ()
      | Event.Arrival { job; size } ->
          let b = builder job in
          b.b_size <- size;
          if Float.is_nan b.b_submitted then b.b_submitted <- e.time
      | Event.Pass_start { pending } ->
          depths := float_of_int pending :: !depths
      | Event.Pass_end _ -> ()
      | Event.Attempt { ctx; outcome; _ } ->
          let key = (ctx, outcome) in
          let r =
            match Hashtbl.find_opt attempt_counts key with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace attempt_counts key r;
                r
          in
          incr r
      | Event.Start { job; ctx; _ } ->
          let b = builder job in
          b.b_starts <- (e.time, ctx) :: b.b_starts;
          if not (Float.is_nan b.b_submitted) then
            waits := (e.time -. b.b_submitted) :: !waits
      | Event.Reservation_set _ | Event.Reservation_clear _ -> ()
      | Event.Complete { job; _ } -> (builder job).b_completed <- Some e.time
      | Event.Reject { job } -> (builder job).b_rejected <- true
      | Event.Fail { target; id; nodes; _ } ->
          close_fault ();
          open_fault :=
            Some
              {
                f_time = e.time;
                f_target = target;
                f_id = id;
                f_nodes = nodes;
                f_killed = [];
              }
      | Event.Repair _ -> incr repairs
      | Event.Kill { job; _ } ->
          let b = builder job in
          b.b_kills <- e.time :: b.b_kills;
          (match !open_fault with
          | Some f when f.f_time = e.time ->
              open_fault := Some { f with f_killed = job :: f.f_killed }
          | _ -> ())
      | Event.Requeue _ -> incr requeues
      | Event.Abandon { job; _ } -> (builder job).b_abandoned <- true
      (* Resizes change a grant, not a job's fate; the per-job timeline
         and fault association are unaffected. *)
      | Event.Resize _ | Event.Shrink_recover _ -> ()
      | Event.Net_route { job; retract; flows; interfered; _ } ->
          if retract then incr net_retracts else incr net_routes;
          let fl, pk =
            match Hashtbl.find_opt net_jobs job with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0) in
                Hashtbl.replace net_jobs job cell;
                cell
          in
          fl := max !fl flows;
          pk := max !pk interfered
      | Event.Net_congestion_sample
          { max_load; shared; interfered; lower_bound; _ } ->
          incr net_samples;
          net_peak_max := max !net_peak_max max_load;
          net_peak_shared := max !net_peak_shared shared;
          net_peak_interfered := max !net_peak_interfered interfered;
          net_peak_lb := max !net_peak_lb lower_bound)
    run.events;
  close_fault ();
  let timelines =
    Hashtbl.fold
      (fun id b acc ->
        let fate =
          if b.b_completed <> None then Completed
          else if b.b_abandoned then Abandoned
          else if b.b_rejected then Rejected
          else Stuck
        in
        {
          id;
          size = b.b_size;
          submitted = b.b_submitted;
          starts = List.rev b.b_starts;
          kills = List.rev b.b_kills;
          completed = b.b_completed;
          fate;
        }
        :: acc)
      jobs []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  let attempts =
    List.filter_map
      (fun ctx ->
        let rows =
          List.filter_map
            (fun o ->
              match Hashtbl.find_opt attempt_counts (ctx, o) with
              | Some r -> Some (o, !r)
              | None -> None)
            [ Event.Fit; Event.Infeasible; Event.Exhausted; Event.Memo_hit ]
        in
        if rows = [] then None else Some (Event.ctx_name ctx, rows))
      [ Event.Head; Event.Backfill ]
  in
  let net =
    if !net_routes = 0 && !net_retracts = 0 && !net_samples = 0 then None
    else
      Some
        {
          nv_samples = !net_samples;
          nv_routes = !net_routes;
          nv_retracts = !net_retracts;
          nv_peak_max_load = !net_peak_max;
          nv_peak_shared = !net_peak_shared;
          nv_peak_interfered = !net_peak_interfered;
          nv_peak_lower_bound = !net_peak_lb;
          nv_jobs =
            Hashtbl.fold
              (fun id (fl, pk) acc ->
                { nj_id = id; nj_flows = !fl; nj_peak_interfered = !pk } :: acc)
              net_jobs []
            |> List.sort (fun a b -> compare a.nj_id b.nj_id);
        }
  in
  {
    meta = run.meta;
    events = List.length run.events;
    timelines;
    queue_depths = Array.of_list (List.rev !depths);
    waits = Array.of_list (List.rev !waits);
    attempts;
    faults = List.rev !faults;
    requeues = !requeues;
    repairs = !repairs;
    net;
  }

let count_fate t fate =
  List.length (List.filter (fun tl -> tl.fate = fate) t.timelines)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

(* Wait-time buckets in simulated seconds: instant, minutes, fractions
   of an hour, hours, beyond. *)
let wait_boundaries = [| 1.0; 60.0; 600.0; 3600.0; 14400.0; 86400.0 |]

let wait_labels =
  [| "<1s"; "1s-1m"; "1m-10m"; "10m-1h"; "1h-4h"; "4h-24h"; ">24h" |]

let pp_percentiles ppf xs =
  if Array.length xs = 0 then Format.fprintf ppf "(no samples)"
  else
    Format.fprintf ppf "p50=%.1f p90=%.1f p99=%.1f max=%.1f"
      (Sim.Stats.percentile xs 50.) (Sim.Stats.percentile xs 90.)
      (Sim.Stats.percentile xs 99.)
      (snd (Sim.Stats.min_max xs))

let pp_summary ?(timeline = false) ppf t =
  (match t.meta with
  | Some m ->
      Format.fprintf ppf
        "run: trace=%s scheme=%s scenario=%s radix=%d nodes=%d jobs=%d@."
        m.trace m.scheme m.scenario m.radix m.nodes m.jobs
  | None -> Format.fprintf ppf "run: (no meta event)@.");
  Format.fprintf ppf "events: %d@." t.events;
  Format.fprintf ppf
    "jobs: %d seen, %d completed, %d abandoned, %d rejected, %d stuck@."
    (List.length t.timelines) (count_fate t Completed) (count_fate t Abandoned)
    (count_fate t Rejected) (count_fate t Stuck);
  Format.fprintf ppf "queue depth (%d passes): %a@."
    (Array.length t.queue_depths)
    pp_percentiles t.queue_depths;
  Format.fprintf ppf "wait (submit->start, sim s, %d starts): %a@."
    (Array.length t.waits) pp_percentiles t.waits;
  if Array.length t.waits > 0 then begin
    let h = Sim.Stats.Hist.create ~boundaries:wait_boundaries in
    Array.iter (Sim.Stats.Hist.add h) t.waits;
    let counts = Sim.Stats.Hist.counts h in
    Format.fprintf ppf "wait histogram:";
    Array.iteri
      (fun i c -> if c > 0 then Format.fprintf ppf " %s:%d" wait_labels.(i) c)
      counts;
    Format.fprintf ppf "@."
  end;
  List.iter
    (fun (ctx, rows) ->
      Format.fprintf ppf "attempts[%s]:" ctx;
      List.iter
        (fun (o, n) ->
          Format.fprintf ppf " %s=%d" (Event.outcome_name o) n)
        rows;
      Format.fprintf ppf "@.")
    t.attempts;
  if t.faults <> [] || t.requeues > 0 || t.repairs > 0 then begin
    Format.fprintf ppf
      "faults: %d injected, %d repairs, %d requeues@."
      (List.length t.faults) t.repairs t.requeues;
    List.iter
      (fun f ->
        Format.fprintf ppf
          "  t=%.1f %s %d (blast %d nodes): killed %d job(s)%s@." f.f_time
          f.f_target f.f_id f.f_nodes
          (List.length f.f_killed)
          (if f.f_killed = [] then ""
           else
             " ["
             ^ String.concat ", " (List.map string_of_int f.f_killed)
             ^ "]"))
      t.faults
  end;
  (match t.net with
  | None -> ()
  | Some nv ->
      Format.fprintf ppf
        "interference: %d routes, %d retracts, %d samples@." nv.nv_routes
        nv.nv_retracts nv.nv_samples;
      Format.fprintf ppf
        "  peak max channel load %d (lower bound %d); peak shared channels \
         %d; peak interfered flows %d@."
        nv.nv_peak_max_load nv.nv_peak_lower_bound nv.nv_peak_shared
        nv.nv_peak_interfered;
      let hit =
        List.filter (fun nj -> nj.nj_peak_interfered > 0) nv.nv_jobs
      in
      if hit <> [] then begin
        Format.fprintf ppf "  interfered jobs (%d):" (List.length hit);
        List.iter
          (fun nj ->
            Format.fprintf ppf " %d(%d/%d)" nj.nj_id nj.nj_peak_interfered
              nj.nj_flows)
          hit;
        Format.fprintf ppf "@."
      end);
  if timeline then begin
    Format.fprintf ppf "timelines:@.";
    List.iter
      (fun tl ->
        Format.fprintf ppf "  job %d (n=%d) submit=%.1f" tl.id tl.size
          tl.submitted;
        List.iter
          (fun (time, ctx) ->
            Format.fprintf ppf " %s=%.1f"
              (match ctx with Event.Head -> "start" | Event.Backfill -> "bf")
              time)
          tl.starts;
        List.iter (fun k -> Format.fprintf ppf " kill=%.1f" k) tl.kills;
        (match tl.completed with
        | Some c -> Format.fprintf ppf " done=%.1f" c
        | None -> ());
        let fate =
          match tl.fate with
          | Completed -> "completed"
          | Abandoned -> "abandoned"
          | Rejected -> "rejected"
          | Stuck -> "stuck"
        in
        Format.fprintf ppf " [%s]@." fate)
      t.timelines
  end
