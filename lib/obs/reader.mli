(** Reading traces back: the parsing half of the trace pipeline, shared
    by the [jigsaw-trace] tool and the round-trip tests. *)

type meta = {
  trace : string;
  scheme : string;
  scenario : string;
  radix : int;
  nodes : int;
  jobs : int;
}

type run = {
  meta : meta option;
      (** [None] for a headless fragment (no [Run_meta] line). *)
  events : Event.t list;  (** Emission order, meta event excluded. *)
}

val split_runs : Event.t list -> run list
(** Split a flat stream on [Run_meta] boundaries — one [jigsaw-sim
    --sched all --trace-out f] file holds one run per scheme. *)

val parse_events : Sink.format -> string list -> (run list, string) result
(** Parse raw lines (blank lines and a leading CSV header are skipped).
    [Error] carries the first offending line number and reason. *)

val load : ?format:Sink.format -> string -> (run list, string) result
(** Read a trace file; format defaults to {!Sink.format_of_path}. *)

(** {1 Generic flat JSONL}

    Checkpoint files and sweep manifests are streams of flat {!Json}
    records that are not event traces; these readers parse them without
    going through {!Event}. *)

val parse_jsonl : string -> ((string * Json.value) list list, string) result
(** Parse a whole buffer of newline-separated flat JSON objects (blank
    lines skipped).  [Error] carries the first offending line number and
    reason. *)

val load_jsonl : string -> ((string * Json.value) list list, string) result
(** {!parse_jsonl} on a file's contents; [Error] on I/O failure too. *)
