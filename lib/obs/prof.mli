(** Profiling registry: named counters, gauges and monotonic-clock span
    timers, aggregated into a per-phase profile report.

    This is the wall-clock half of observability — everything the event
    trace deliberately excludes so that traces stay deterministic.
    Names follow a ["phase/metric"] convention (["sched/head_probe"],
    ["state/clones"], ["gauge/queue_depth"]); reports and JSON output
    sort by name, so related metrics group visually by prefix.

    A simulation profiles only when handed a registry ([prof = Some p]);
    with [None] every instrumentation site is a single branch.

    {b Ownership.}  A registry is plain mutable state with no locking:
    it is {e single-writer}, owned by the domain that created it.  Every
    mutator ([incr]/[add]/[set]/[sample]/[record_span]/[time] and the
    [into] side of [merge_into]) raises [Invalid_argument] when called
    from any other domain, so a stray cross-domain record fails loudly
    instead of silently corrupting counts.  Reading (or merging from) a
    registry built on another domain is fine once that domain has been
    joined — the join is the happens-before edge.  The parallel sweep
    therefore gives every cell its own registry and merges them on the
    coordinating domain, in cell submission order. *)

type t

val create : unit -> t
(** The calling domain becomes the owner. *)

val owner : t -> int
(** Domain id of the owning (creating) domain. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into]: counters sum, span
    counts/maxima and histogram buckets combine exactly, gauge
    accumulators merge, and float totals add.  Integer parts are
    associative and commutative; float sums are associative only up to
    rounding, so reproducible aggregate reports require a fixed merge
    order (the sweep uses cell submission order).  Memo-hit rates are
    derived from counters at report time, so they recompute correctly
    from a merged registry.  [src] is not modified; [into] must be
    owned by the calling domain. *)

(** {1 Counters} — monotone event tallies. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set : t -> string -> int -> unit
(** Overwrite — for importing an externally maintained counter
    (e.g. [Fattree.State]'s clone/claim tallies) at end of run. *)

val counter : t -> string -> int
(** 0 for a name never touched. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Gauges} — values sampled over time (queue depth, free nodes). *)

val sample : t -> string -> float -> unit

type gauge_view = {
  g_samples : int;
  g_mean : float;
  g_min : float;
  g_max : float;
}

val gauges : t -> (string * gauge_view) list

val find_gauge : t -> string -> gauge_view option
(** Single-gauge read, for live telemetry endpoints (the daemon's
    status reply) that must not pay a full sorted listing per query. *)

(** {1 Spans} — wall-clock timings of code regions. *)

val span_boundaries : float array
(** Histogram bucket edges in nanoseconds: decades from 1 us to 1 s
    (8 buckets). *)

val record_span : t -> string -> float -> unit
(** Record an externally measured duration (nanoseconds). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk under a monotonic-clock span. *)

type span_view = {
  sp_count : int;
  sp_total_ns : float;
  sp_mean_ns : float;
  sp_max_ns : float;
  sp_p50_ns : float;
      (** Histogram-derived percentile: upper edge of the bucket where
          the cumulative count crosses the quantile, clamped by the
          observed maximum — order-of-magnitude tail estimates. *)
  sp_p90_ns : float;
  sp_p99_ns : float;
  sp_hist : int array;  (** Per-{!span_boundaries} bucket counts. *)
}

val spans : t -> (string * span_view) list

val find_span : t -> string -> span_view option
(** Single-span read (e.g. ["svc/recovery"] in the daemon status). *)

(** {1 Output} *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable per-phase report (spans, counters, gauges). *)

val write_json : Buffer.t -> t -> unit
(** One JSON object [{"counters":…,"spans":…,"gauges":…}] with sorted
    keys — embedded by [bench] into BENCH json and by [jigsaw-sim
    --json --profile] into its output. *)

val encode : t -> string
(** A single-line, newline-free, {e exact} textual serialization of the
    registry (hex floats — unlike {!write_json}, which rounds), suitable
    for embedding in a flat [Json] string field.  The sweep manifest
    uses it to persist per-cell registries across a resume.  Raises
    [Invalid_argument] if a metric name contains [';'], ['|'] or a
    newline (names are identifier-like in practice). *)

val decode : string -> t
(** Inverse of {!encode}; the calling domain owns the result.  Raises
    [Invalid_argument] on malformed input. *)
