(* Structured trace events.

   Every record carries *simulated* time and logical payloads only —
   never wall-clock durations — so the stream produced by a run is a
   pure function of (workload, scheme, seeds) and two runs with the same
   inputs emit byte-identical traces.  Wall-clock profiling lives in
   [Prof], outside the trace. *)

type probe_outcome = Fit | Infeasible | Exhausted | Memo_hit
type ctx = Head | Backfill

type payload =
  | Run_meta of {
      trace : string;
      scheme : string;
      scenario : string;
      radix : int;
      nodes : int;
      jobs : int;
    }
  | Arrival of { job : int; size : int }
  | Pass_start of { pending : int }
  | Pass_end of { started : int }
  | Attempt of {
      job : int;
      ctx : ctx;
      outcome : probe_outcome;
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
    }
  | Start of {
      job : int;
      ctx : ctx;
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
      est_end : float;
      attempt : int;
    }
  | Reservation_set of {
      job : int;
      at : float;
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
    }
  | Reservation_clear of { job : int }
  | Complete of { job : int; started : float; waited : float }
  | Reject of { job : int }
  | Fail of {
      target : string;
      id : int;
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
    }
  | Repair of { target : string; id : int }
  | Kill of { job : int; attempt : int; lost : float }
  | Requeue of { job : int; attempt : int; resume_at : float }
  | Abandon of { job : int; attempt : int }
  | Resize of { job : int; from_size : int; to_size : int; new_end : float }
  | Shrink_recover of {
      job : int;
      attempt : int;
      from_size : int;
      to_size : int;
    }
  | Net_route of {
      job : int;
      retract : bool;
      flows : int;
      channels : int;
      interfered : int;
    }
  | Net_congestion_sample of {
      max_load : int;
      shared : int;
      interfered : int;
      total_flows : int;
      lower_bound : int;
    }

type t = { time : float; payload : payload }

let outcome_name = function
  | Fit -> "fit"
  | Infeasible -> "infeasible"
  | Exhausted -> "exhausted"
  | Memo_hit -> "memo_hit"

let outcome_of_name = function
  | "fit" -> Fit
  | "infeasible" -> Infeasible
  | "exhausted" -> Exhausted
  | "memo_hit" -> Memo_hit
  | s -> raise (Json.Parse_error (Printf.sprintf "unknown probe outcome %S" s))

let ctx_name = function Head -> "head" | Backfill -> "backfill"

let ctx_of_name = function
  | "head" -> Head
  | "backfill" -> Backfill
  | s -> raise (Json.Parse_error (Printf.sprintf "unknown attempt context %S" s))

(* A [Start] from the backfill phase serializes as its own event kind:
   the distinction is what trace analyses group on. *)
let kind_name = function
  | Run_meta _ -> "run"
  | Arrival _ -> "arrival"
  | Pass_start _ -> "pass_start"
  | Pass_end _ -> "pass_end"
  | Attempt _ -> "attempt"
  | Start { ctx = Head; _ } -> "start"
  | Start { ctx = Backfill; _ } -> "backfill_start"
  | Reservation_set _ -> "reservation_set"
  | Reservation_clear _ -> "reservation_clear"
  | Complete _ -> "complete"
  | Reject _ -> "reject"
  | Fail _ -> "fail"
  | Repair _ -> "repair"
  | Kill _ -> "kill"
  | Requeue _ -> "requeue"
  | Abandon _ -> "abandon"
  | Resize _ -> "resize"
  | Shrink_recover _ -> "shrink_recover"
  | Net_route { retract = false; _ } -> "net_route"
  | Net_route { retract = true; _ } -> "net_retract"
  | Net_congestion_sample _ -> "net_sample"

let job_id = function
  | Run_meta _ | Pass_start _ | Pass_end _ | Fail _ | Repair _
  | Net_congestion_sample _ ->
      None
  | Arrival { job; _ }
  | Attempt { job; _ }
  | Start { job; _ }
  | Reservation_set { job; _ }
  | Reservation_clear { job }
  | Complete { job; _ }
  | Reject { job }
  | Kill { job; _ }
  | Requeue { job; _ }
  | Abandon { job; _ }
  | Resize { job; _ }
  | Shrink_recover { job; _ }
  | Net_route { job; _ } ->
      Some job

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let n x = Json.Num (float_of_int x)
let f x = Json.Num x
let s x = Json.Str x

let json_fields e =
  let base = [ ("t", f e.time); ("ev", s (kind_name e.payload)) ] in
  base
  @
  match e.payload with
  | Run_meta { trace; scheme; scenario; radix; nodes; jobs } ->
      [
        ("trace", s trace);
        ("scheme", s scheme);
        ("scenario", s scenario);
        ("radix", n radix);
        ("nodes", n nodes);
        ("jobs", n jobs);
      ]
  | Arrival { job; size } -> [ ("job", n job); ("size", n size) ]
  | Pass_start { pending } -> [ ("pending", n pending) ]
  | Pass_end { started } -> [ ("started", n started) ]
  | Attempt { job; ctx; outcome; nodes; leaf_cables; l2_cables } ->
      [
        ("job", n job);
        ("ctx", s (ctx_name ctx));
        ("outcome", s (outcome_name outcome));
        ("nodes", n nodes);
        ("leaf", n leaf_cables);
        ("l2", n l2_cables);
      ]
  | Start { job; ctx = _; nodes; leaf_cables; l2_cables; est_end; attempt } ->
      [
        ("job", n job);
        ("nodes", n nodes);
        ("leaf", n leaf_cables);
        ("l2", n l2_cables);
        ("est_end", f est_end);
        ("attempt", n attempt);
      ]
  | Reservation_set { job; at; nodes; leaf_cables; l2_cables } ->
      [
        ("job", n job);
        ("at", f at);
        ("nodes", n nodes);
        ("leaf", n leaf_cables);
        ("l2", n l2_cables);
      ]
  | Reservation_clear { job } -> [ ("job", n job) ]
  | Complete { job; started; waited } ->
      [ ("job", n job); ("started", f started); ("waited", f waited) ]
  | Reject { job } -> [ ("job", n job) ]
  | Fail { target; id; nodes; leaf_cables; l2_cables } ->
      [
        ("target", s target);
        ("id", n id);
        ("nodes", n nodes);
        ("leaf", n leaf_cables);
        ("l2", n l2_cables);
      ]
  | Repair { target; id } -> [ ("target", s target); ("id", n id) ]
  | Kill { job; attempt; lost } ->
      [ ("job", n job); ("attempt", n attempt); ("lost", f lost) ]
  | Requeue { job; attempt; resume_at } ->
      [ ("job", n job); ("attempt", n attempt); ("resume_at", f resume_at) ]
  | Abandon { job; attempt } -> [ ("job", n job); ("attempt", n attempt) ]
  | Resize { job; from_size; to_size; new_end } ->
      [
        ("job", n job);
        ("from", n from_size);
        ("to", n to_size);
        ("new_end", f new_end);
      ]
  | Shrink_recover { job; attempt; from_size; to_size } ->
      [
        ("job", n job);
        ("attempt", n attempt);
        ("from", n from_size);
        ("to", n to_size);
      ]
  | Net_route { job; retract = _; flows; channels; interfered } ->
      [
        ("job", n job);
        ("flows", n flows);
        ("channels", n channels);
        ("interfered", n interfered);
      ]
  | Net_congestion_sample { max_load; shared; interfered; total_flows; lower_bound }
    ->
      [
        ("max_load", n max_load);
        ("shared", n shared);
        ("interfered", n interfered);
        ("flows", n total_flows);
        ("lb", n lower_bound);
      ]

let to_jsonl b e =
  Json.write b (json_fields e);
  Buffer.add_char b '\n'

let of_json_fields fields =
  let time = Json.num fields "t" in
  let job () = Json.int fields "job" in
  let counts () =
    (Json.int fields "nodes", Json.int fields "leaf", Json.int fields "l2")
  in
  let payload =
    match Json.str fields "ev" with
    | "run" ->
        Run_meta
          {
            trace = Json.str fields "trace";
            scheme = Json.str fields "scheme";
            scenario = Json.str fields "scenario";
            radix = Json.int fields "radix";
            nodes = Json.int fields "nodes";
            jobs = Json.int fields "jobs";
          }
    | "arrival" -> Arrival { job = job (); size = Json.int fields "size" }
    | "pass_start" -> Pass_start { pending = Json.int fields "pending" }
    | "pass_end" -> Pass_end { started = Json.int fields "started" }
    | "attempt" ->
        let nodes, leaf_cables, l2_cables = counts () in
        Attempt
          {
            job = job ();
            ctx = ctx_of_name (Json.str fields "ctx");
            outcome = outcome_of_name (Json.str fields "outcome");
            nodes;
            leaf_cables;
            l2_cables;
          }
    | ("start" | "backfill_start") as k ->
        let nodes, leaf_cables, l2_cables = counts () in
        Start
          {
            job = job ();
            ctx = (if k = "start" then Head else Backfill);
            nodes;
            leaf_cables;
            l2_cables;
            est_end = Json.num fields "est_end";
            attempt = Json.int fields "attempt";
          }
    | "reservation_set" ->
        let nodes, leaf_cables, l2_cables = counts () in
        Reservation_set
          { job = job (); at = Json.num fields "at"; nodes; leaf_cables; l2_cables }
    | "reservation_clear" -> Reservation_clear { job = job () }
    | "complete" ->
        Complete
          {
            job = job ();
            started = Json.num fields "started";
            waited = Json.num fields "waited";
          }
    | "reject" -> Reject { job = job () }
    | "fail" ->
        let nodes, leaf_cables, l2_cables = counts () in
        Fail
          {
            target = Json.str fields "target";
            id = Json.int fields "id";
            nodes;
            leaf_cables;
            l2_cables;
          }
    | "repair" ->
        Repair { target = Json.str fields "target"; id = Json.int fields "id" }
    | "kill" ->
        Kill
          {
            job = job ();
            attempt = Json.int fields "attempt";
            lost = Json.num fields "lost";
          }
    | "requeue" ->
        Requeue
          {
            job = job ();
            attempt = Json.int fields "attempt";
            resume_at = Json.num fields "resume_at";
          }
    | "abandon" -> Abandon { job = job (); attempt = Json.int fields "attempt" }
    | "resize" ->
        Resize
          {
            job = job ();
            from_size = Json.int fields "from";
            to_size = Json.int fields "to";
            new_end = Json.num fields "new_end";
          }
    | "shrink_recover" ->
        Shrink_recover
          {
            job = job ();
            attempt = Json.int fields "attempt";
            from_size = Json.int fields "from";
            to_size = Json.int fields "to";
          }
    | ("net_route" | "net_retract") as k ->
        Net_route
          {
            job = job ();
            retract = k = "net_retract";
            flows = Json.int fields "flows";
            channels = Json.int fields "channels";
            interfered = Json.int fields "interfered";
          }
    | "net_sample" ->
        Net_congestion_sample
          {
            max_load = Json.int fields "max_load";
            shared = Json.int fields "shared";
            interfered = Json.int fields "interfered";
            total_flows = Json.int fields "flows";
            lower_bound = Json.int fields "lb";
          }
    | k -> raise (Json.Parse_error (Printf.sprintf "unknown event kind %S" k))
  in
  { time; payload }

let of_jsonl line = of_json_fields (Json.parse_line line)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

(* One fixed column set for every event kind; unused cells are empty.
   [a] and [b] are the two generic numeric columns — the per-kind
   meaning is in DESIGN.md's schema table (and in [to_csv] below). *)

let csv_header = "time,event,job,ctx,outcome,target,nodes,leaf_cables,l2_cables,a,b"

let add_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let to_csv b e =
  (* job ctx outcome target nodes leaf l2 a b *)
  let row ?job ?ctx ?outcome ?target ?(counts = (0, 0, 0)) ?(a = 0.0) ?(b = 0.0)
      () =
    (job, ctx, outcome, target, counts, a, b)
  in
  let job, ctx, outcome, target, (nodes, leaf, l2), a, bb =
    match e.payload with
    | Run_meta { trace; scheme; scenario; radix; nodes; jobs } ->
        row ~ctx:scheme ~outcome:scenario ~target:trace
          ~counts:(nodes, radix, jobs) ()
    | Arrival { job; size } -> row ~job ~counts:(size, 0, 0) ()
    | Pass_start { pending } -> row ~a:(float_of_int pending) ()
    | Pass_end { started } -> row ~a:(float_of_int started) ()
    | Attempt { job; ctx; outcome; nodes; leaf_cables; l2_cables } ->
        row ~job ~ctx:(ctx_name ctx) ~outcome:(outcome_name outcome)
          ~counts:(nodes, leaf_cables, l2_cables) ()
    | Start { job; ctx = _; nodes; leaf_cables; l2_cables; est_end; attempt } ->
        row ~job ~counts:(nodes, leaf_cables, l2_cables) ~a:est_end
          ~b:(float_of_int attempt) ()
    | Reservation_set { job; at; nodes; leaf_cables; l2_cables } ->
        row ~job ~counts:(nodes, leaf_cables, l2_cables) ~a:at ()
    | Reservation_clear { job } -> row ~job ()
    | Complete { job; started; waited } -> row ~job ~a:started ~b:waited ()
    | Reject { job } -> row ~job ()
    | Fail { target; id; nodes; leaf_cables; l2_cables } ->
        row ~target ~counts:(nodes, leaf_cables, l2_cables)
          ~a:(float_of_int id) ()
    | Repair { target; id } -> row ~target ~a:(float_of_int id) ()
    | Kill { job; attempt; lost } ->
        row ~job ~a:(float_of_int attempt) ~b:lost ()
    | Requeue { job; attempt; resume_at } ->
        row ~job ~a:(float_of_int attempt) ~b:resume_at ()
    | Abandon { job; attempt } -> row ~job ~a:(float_of_int attempt) ()
    | Resize { job; from_size; to_size; new_end } ->
        row ~job ~counts:(from_size, to_size, 0) ~a:new_end ()
    | Shrink_recover { job; attempt; from_size; to_size } ->
        row ~job ~counts:(from_size, to_size, 0) ~a:(float_of_int attempt) ()
    | Net_route { job; retract = _; flows; channels; interfered } ->
        row ~job ~counts:(flows, channels, interfered) ()
    | Net_congestion_sample
        { max_load; shared; interfered; total_flows; lower_bound } ->
        row
          ~counts:(max_load, shared, interfered)
          ~a:(float_of_int total_flows)
          ~b:(float_of_int lower_bound) ()
  in
  add_float b e.time;
  Buffer.add_char b ',';
  Buffer.add_string b (kind_name e.payload);
  Buffer.add_char b ',';
  (match job with Some j -> Buffer.add_string b (string_of_int j) | None -> ());
  Buffer.add_char b ',';
  (match ctx with Some c -> Buffer.add_string b c | None -> ());
  Buffer.add_char b ',';
  (match outcome with Some o -> Buffer.add_string b o | None -> ());
  Buffer.add_char b ',';
  (match target with Some t -> Buffer.add_string b t | None -> ());
  Buffer.add_char b ',';
  Buffer.add_string b (string_of_int nodes);
  Buffer.add_char b ',';
  Buffer.add_string b (string_of_int leaf);
  Buffer.add_char b ',';
  Buffer.add_string b (string_of_int l2);
  Buffer.add_char b ',';
  add_float b a;
  Buffer.add_char b ',';
  add_float b bb;
  Buffer.add_char b '\n'

let of_csv line =
  let cells = String.split_on_char ',' line in
  match cells with
  | [ time; event; job; ctx; outcome; target; nodes; leaf; l2; a; b ] ->
      let fail fmt =
        Printf.ksprintf (fun m -> raise (Json.Parse_error m)) fmt
      in
      let flt name v =
        match float_of_string_opt v with
        | Some x -> x
        | None -> fail "column %s: malformed number %S" name v
      in
      let int_of name v =
        let x = flt name v in
        let i = int_of_float x in
        if float_of_int i <> x then fail "column %s: not an integer (%s)" name v;
        i
      in
      let time = flt "time" time in
      let job () =
        if job = "" then fail "column job: empty" else int_of "job" job
      in
      let counts () = (int_of "nodes" nodes, int_of "leaf" leaf, int_of "l2" l2) in
      let a_f () = flt "a" a and b_f () = flt "b" b in
      let a_i () = int_of "a" a and b_i () = int_of "b" b in
      let payload =
        match event with
        | "run" ->
            let nodes, radix, jobs = counts () in
            Run_meta
              { trace = target; scheme = ctx; scenario = outcome; radix; nodes; jobs }
        | "arrival" ->
            let size, _, _ = counts () in
            Arrival { job = job (); size }
        | "pass_start" -> Pass_start { pending = a_i () }
        | "pass_end" -> Pass_end { started = a_i () }
        | "attempt" ->
            let nodes, leaf_cables, l2_cables = counts () in
            Attempt
              {
                job = job ();
                ctx = ctx_of_name ctx;
                outcome = outcome_of_name outcome;
                nodes;
                leaf_cables;
                l2_cables;
              }
        | "start" | "backfill_start" ->
            let nodes, leaf_cables, l2_cables = counts () in
            Start
              {
                job = job ();
                ctx = (if event = "start" then Head else Backfill);
                nodes;
                leaf_cables;
                l2_cables;
                est_end = a_f ();
                attempt = b_i ();
              }
        | "reservation_set" ->
            let nodes, leaf_cables, l2_cables = counts () in
            Reservation_set
              { job = job (); at = a_f (); nodes; leaf_cables; l2_cables }
        | "reservation_clear" -> Reservation_clear { job = job () }
        | "complete" ->
            Complete { job = job (); started = a_f (); waited = b_f () }
        | "reject" -> Reject { job = job () }
        | "fail" ->
            let nodes, leaf_cables, l2_cables = counts () in
            Fail { target; id = a_i (); nodes; leaf_cables; l2_cables }
        | "repair" -> Repair { target; id = a_i () }
        | "kill" -> Kill { job = job (); attempt = a_i (); lost = b_f () }
        | "requeue" ->
            Requeue { job = job (); attempt = a_i (); resume_at = b_f () }
        | "abandon" -> Abandon { job = job (); attempt = a_i () }
        | "resize" ->
            let from_size, to_size, _ = counts () in
            Resize { job = job (); from_size; to_size; new_end = a_f () }
        | "shrink_recover" ->
            let from_size, to_size, _ = counts () in
            Shrink_recover { job = job (); attempt = a_i (); from_size; to_size }
        | "net_route" | "net_retract" ->
            let flows, channels, interfered = counts () in
            Net_route
              {
                job = job ();
                retract = event = "net_retract";
                flows;
                channels;
                interfered;
              }
        | "net_sample" ->
            let max_load, shared, interfered = counts () in
            Net_congestion_sample
              {
                max_load;
                shared;
                interfered;
                total_flows = a_i ();
                lower_bound = b_i ();
              }
        | k -> fail "unknown event kind %S" k
      in
      { time; payload }
  | cells ->
      raise
        (Json.Parse_error
           (Printf.sprintf "expected 11 CSV columns, found %d"
              (List.length cells)))

let pp ppf e =
  let b = Buffer.create 128 in
  Json.write b (json_fields e);
  Format.pp_print_string ppf (Buffer.contents b)
