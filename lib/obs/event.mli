(** Structured trace events: every observable state transition of a
    simulation run, as typed records.

    Events carry {e simulated} time and logical payloads only — never
    wall-clock measurements — so the event stream of a run is a pure
    function of (workload, scheme, seeds): two runs with the same inputs
    produce byte-identical traces, and a trace diff is a behaviour diff.
    Wall-clock profiling lives in {!Prof}, outside the trace.

    Serialization formats (one event per line, both lossless):
    - JSONL: [{"t":…,"ev":"…", …}] with per-kind fields;
    - CSV: one fixed 11-column row
      ([time,event,job,ctx,outcome,target,nodes,leaf_cables,l2_cables,a,b])
      where [a]/[b] are generic numeric cells whose per-kind meaning is
      documented in DESIGN.md §10. *)

type probe_outcome =
  | Fit  (** The allocator proposed a claimable allocation. *)
  | Infeasible  (** Definitive no-fit on the current state. *)
  | Exhausted  (** Budgeted search gave up (LC/LC+S). *)
  | Memo_hit  (** Skipped: the no-fit memo already had this job class. *)

type ctx = Head | Backfill

type payload =
  | Run_meta of {
      trace : string;
      scheme : string;
      scenario : string;
      radix : int;
      nodes : int;
      jobs : int;
    }
      (** First event of every run; delimits runs when several are
          appended to one file (e.g. [jigsaw-sim --sched all]). *)
  | Arrival of { job : int; size : int }
  | Pass_start of { pending : int }  (** [pending]: live queue depth. *)
  | Pass_end of { started : int }  (** Jobs started during the pass. *)
  | Attempt of {
      job : int;
      ctx : ctx;
      outcome : probe_outcome;
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
    }
      (** One allocation probe against the live state; resource counts
          are those of the proposed allocation ([Fit]) or zero. *)
  | Start of {
      job : int;
      ctx : ctx;  (** Serialized as [start] vs [backfill_start]. *)
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
      est_end : float;
      attempt : int;  (** 0 for the first run, +1 per requeue. *)
    }
  | Reservation_set of {
      job : int;
      at : float;  (** Estimated start instant of the blocked head. *)
      nodes : int;
      leaf_cables : int;
      l2_cables : int;
    }
  | Reservation_clear of { job : int }
  | Complete of { job : int; started : float; waited : float }
      (** [waited]: start minus original submission. *)
  | Reject of { job : int }
  | Fail of {
      target : string;  (** Component kind, e.g. ["node"], ["leaf"]. *)
      id : int;
      nodes : int;  (** Blast radius: resources covered by the fault. *)
      leaf_cables : int;
      l2_cables : int;
    }
  | Repair of { target : string; id : int }
  | Kill of { job : int; attempt : int; lost : float }
      (** [lost]: node-seconds of the killed attempt. *)
  | Requeue of { job : int; attempt : int; resume_at : float }
  | Abandon of { job : int; attempt : int }
  | Resize of { job : int; from_size : int; to_size : int; new_end : float }
      (** A running moldable job's grant changed in place — an idle-time
          grow or an accepted online resize.  [new_end] is the scheduler's
          new estimated completion after compressing the remaining work
          onto [to_size] nodes. *)
  | Shrink_recover of {
      job : int;
      attempt : int;
      from_size : int;
      to_size : int;
    }
      (** Fault recovery by molding: the job lost [from_size - to_size]
          nodes to a fault and kept running on the survivors — no kill,
          no lost work ([resilience.shrink]). *)
  | Net_route of {
      job : int;
      retract : bool;
          (** false: flows installed at start (serialized [net_route]);
              true: flows retracted at completion/kill ([net_retract]). *)
      flows : int;  (** Flows routed for the job. *)
      channels : int;  (** Distinct channels the job occupies. *)
      interfered : int;
          (** Of the job's flows, how many share a channel with another
              job at event time (for retracts: just before removal). *)
    }
      (** Emitted by [--net-telemetry] when a job's synthetic flow set
          is (un)installed.  All values are logical routing results —
          deterministic per (workload, scheme, seeds). *)
  | Net_congestion_sample of {
      max_load : int;  (** Largest per-channel flow count right now. *)
      shared : int;  (** Channels carrying >= 2 jobs. *)
      interfered : int;  (** Flows sharing a channel with another job. *)
      total_flows : int;
      lower_bound : int;
          (** Routing-independent pigeonhole bound on [max_load]
              ({!Greedy.lower_bound_load} of the installed flows). *)
    }
      (** Cluster-wide congestion snapshot, emitted after every
          [Net_route]/[net_retract] transition. *)

type t = { time : float; payload : payload }

val kind_name : payload -> string
(** The serialized event name ([Start] maps to ["start"] or
    ["backfill_start"] by its context). *)

val job_id : payload -> int option
val outcome_name : probe_outcome -> string
val ctx_name : ctx -> string

(** {1 Serialization} — [of_x (to_x e) = e] for every event. *)

val to_jsonl : Buffer.t -> t -> unit
(** Append one JSON line (newline included). *)

val of_jsonl : string -> t
(** Parse one JSON line.  Raises {!Json.Parse_error}. *)

val csv_header : string

val to_csv : Buffer.t -> t -> unit
(** Append one CSV row (newline included). *)

val of_csv : string -> t
(** Parse one CSV row (not the header).  Raises {!Json.Parse_error}. *)

val pp : Format.formatter -> t -> unit
(** Debug printing (the JSON form). *)
