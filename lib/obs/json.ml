(* Flat JSON objects — the only JSON shape the trace pipeline uses.
   The writer and parser are dual: every line the JSONL sink emits is a
   single-level object whose values are numbers or strings, so a full
   JSON library would be dead weight (and the container image carries
   none).  Nested values are rejected, not silently mangled. *)

type value = Num of float | Str of string

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* %.17g round-trips every float exactly through float_of_string. *)
let add_num b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let add_field b ~first key v =
  if not first then Buffer.add_char b ',';
  Buffer.add_char b '"';
  escape b key;
  Buffer.add_string b "\":";
  match v with
  | Num x -> add_num b x
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'

let write b fields =
  Buffer.add_char b '{';
  List.iteri (fun i (k, v) -> add_field b ~first:(i = 0) k v) fields;
  Buffer.add_char b '}'

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> error "expected '%c' at %d, found '%c'" ch c.pos x
  | None -> error "expected '%c' at %d, found end of input" ch c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
        (if c.pos >= String.length c.s then error "unterminated escape";
         let e = c.s.[c.pos] in
         c.pos <- c.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'u' ->
             if c.pos + 4 > String.length c.s then error "short \\u escape";
             let hex = String.sub c.s c.pos 4 in
             c.pos <- c.pos + 4;
             let code = int_of_string ("0x" ^ hex) in
             (* ASCII control escapes only — all this writer emits. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else error "non-ASCII \\u escape %s" hex
         | e -> error "bad escape '\\%c'" e);
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error "expected a number at %d" start;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some x -> x
  | None -> error "malformed number at %d" start

let parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some ('{' | '[') -> error "nested JSON at %d: trace lines are flat" c.pos
  | Some _ -> Num (parse_number c)
  | None -> error "expected a value, found end of input"

let parse_line line =
  let c = { s = line; pos = 0 } in
  expect c '{';
  skip_ws c;
  let fields = ref [] in
  (match peek c with
  | Some '}' -> c.pos <- c.pos + 1
  | _ ->
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> c.pos <- c.pos + 1; members ()
        | Some '}' -> c.pos <- c.pos + 1
        | Some ch -> error "expected ',' or '}' at %d, found '%c'" c.pos ch
        | None -> error "unterminated object"
      in
      members ());
  skip_ws c;
  if c.pos <> String.length c.s then error "trailing input at %d" c.pos;
  List.rev !fields

let mem fields key = List.mem_assoc key fields

let str fields key =
  match List.assoc_opt key fields with
  | Some (Str s) -> s
  | Some (Num _) -> error "field %S is a number, expected a string" key
  | None -> error "missing field %S" key

let num fields key =
  match List.assoc_opt key fields with
  | Some (Num x) -> x
  | Some (Str _) -> error "field %S is a string, expected a number" key
  | None -> error "missing field %S" key

let int fields key =
  let x = num fields key in
  let i = int_of_float x in
  if float_of_int i <> x then error "field %S is not an integer (%g)" key x;
  i
