type format = Jsonl | Csv

type t = { enabled : bool; emit : Event.t -> unit; flush : unit -> unit }

(* The null sink is a pair of constant closures behind [enabled = false]:
   instrumentation sites test the flag before even constructing the
   event payload, so a disabled run pays one load and one branch per
   would-be event — nothing allocates. *)
let null = { enabled = false; emit = ignore; flush = ignore }

let emit t e = t.emit e
let flush t = t.flush ()

(* Writers buffer ~64 KiB before touching the channel: trace emission
   sits inside the simulator's event loop and a write(2) per event would
   dominate it. *)
let buffer_limit = 64 * 1024

let buffered ~header ~serialize oc =
  let b = Buffer.create (2 * buffer_limit) in
  (match header with None -> () | Some h -> Buffer.add_string b h; Buffer.add_char b '\n');
  let drain () =
    Buffer.output_buffer oc b;
    Buffer.clear b
  in
  {
    enabled = true;
    emit =
      (fun e ->
        serialize b e;
        if Buffer.length b >= buffer_limit then drain ());
    flush =
      (fun () ->
        drain ();
        Out_channel.flush oc);
  }

let jsonl oc = buffered ~header:None ~serialize:Event.to_jsonl oc
let csv oc = buffered ~header:(Some Event.csv_header) ~serialize:Event.to_csv oc

let to_channel fmt oc = match fmt with Jsonl -> jsonl oc | Csv -> csv oc

let format_name = function Jsonl -> "jsonl" | Csv -> "csv"

let format_of_name = function
  | "jsonl" -> Some Jsonl
  | "csv" -> Some Csv
  | _ -> None

let format_of_path path =
  if Filename.check_suffix path ".csv" then Csv else Jsonl

let memory () =
  let acc = ref [] in
  ( {
      enabled = true;
      emit = (fun e -> acc := e :: !acc);
      flush = ignore;
    },
    fun () -> List.rev !acc )
