(** Event sinks: where a run's trace goes.

    The simulator emits through this interface only; the sink decides
    the cost.  The {!null} sink reduces an instrumentation site to one
    flag test — instrumented-but-disabled runs stay within noise of
    uninstrumented ones (pinned by the fingerprint and perf tests). *)

type format = Jsonl | Csv

type t = {
  enabled : bool;
      (** Instrumentation sites test this before building an event
          payload; [false] makes every site a branch and nothing more. *)
  emit : Event.t -> unit;
  flush : unit -> unit;
}

val null : t
(** Drops everything; [enabled = false]. *)

val emit : t -> Event.t -> unit
val flush : t -> unit

val jsonl : out_channel -> t
(** Buffered JSONL writer (~64 KiB batches).  The caller owns the
    channel; {!flush} drains the buffer and flushes the channel. *)

val csv : out_channel -> t
(** Buffered CSV writer; emits the header row immediately. *)

val to_channel : format -> out_channel -> t

val memory : unit -> t * (unit -> Event.t list)
(** In-memory sink for tests: the closure returns events in emission
    order. *)

val format_name : format -> string
val format_of_name : string -> format option

val format_of_path : string -> format
(** [Csv] for a [.csv] suffix, [Jsonl] otherwise. *)
