(** Trace analysis: fold a parsed run back into per-job timelines,
    queue statistics and a fault post-mortem.

    The analyzer sees only the trace — it never touches the simulator —
    so everything here doubles as a check that traces are
    self-describing. *)

type fate =
  | Completed
  | Abandoned  (** Killed and gave up after exhausting requeues. *)
  | Rejected  (** Larger than the cluster. *)
  | Stuck  (** Still pending (or running) when the trace ended. *)

type timeline = {
  id : int;
  size : int;
  submitted : float;
  starts : (float * Event.ctx) list;
      (** Chronological; several entries mean requeued attempts. *)
  kills : float list;
  completed : float option;
  fate : fate;
}

type fault_view = {
  f_time : float;
  f_target : string;
  f_id : int;
  f_nodes : int;  (** Blast radius in nodes. *)
  f_killed : int list;  (** Jobs this fault killed, in kill order. *)
}

type net_job = {
  nj_id : int;
  nj_flows : int;  (** Flows routed for the job (largest seen). *)
  nj_peak_interfered : int;
      (** Most of its flows ever observed sharing a channel with
          another job — the per-job interference attribution. *)
}

(** Interference post-mortem, folded from [Net_route] /
    [Net_congestion_sample] events of a [--net-telemetry] run. *)
type net_view = {
  nv_samples : int;
  nv_routes : int;
  nv_retracts : int;
  nv_peak_max_load : int;
  nv_peak_shared : int;
  nv_peak_interfered : int;
  nv_peak_lower_bound : int;
  nv_jobs : net_job list;  (** Sorted by job id; every routed job. *)
}

type t = {
  meta : Reader.meta option;
  events : int;
  timelines : timeline list;  (** Sorted by job id. *)
  queue_depths : float array;  (** One sample per scheduling pass. *)
  waits : float array;
      (** Submit-to-start latency in {e simulated} seconds, one entry
          per start event — the allocation-latency distribution. *)
  attempts : (string * (Event.probe_outcome * int) list) list;
      (** Probe-outcome counts per context (["head"], ["backfill"]). *)
  faults : fault_view list;
  requeues : int;
  repairs : int;
  net : net_view option;  (** Present iff the run carried net events. *)
}

val of_run : Reader.run -> t

val wait_boundaries : float array
(** Wait-histogram bucket edges in simulated seconds. *)

val pp_summary : ?timeline:bool -> Format.formatter -> t -> unit
(** The [jigsaw-trace] report: run header, job fates, queue-depth and
    wait percentiles, wait histogram, per-context attempt outcomes and
    the fault post-mortem.  [~timeline:true] appends one line per job. *)
