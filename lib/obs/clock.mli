(** Monotonic clock for profiling spans (CLOCK_MONOTONIC, nanoseconds).

    Wall-clock readings never enter the event trace — traces carry
    simulated time only, which is what keeps them bit-identical across
    runs of the same seed.  The profiling layer ({!Prof}) is the only
    consumer. *)

val now_ns : unit -> int64

val elapsed_ns : since:int64 -> float
(** Nanoseconds elapsed since a {!now_ns} reading. *)
