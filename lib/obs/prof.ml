(* Profiling registry: counters, gauges and span timers keyed by name.

   This is the wall-clock side of observability — everything the event
   trace deliberately excludes.  Names use a "phase/metric" convention
   ("sched/head_probe", "state/clones", "gauge/queue_depth"); the report
   groups by the prefix, which is what turns a flat registry into the
   per-phase profile. *)

type span = {
  mutable s_count : int;
  mutable s_total_ns : float;
  mutable s_max_ns : float;
  s_hist : Sim.Stats.Hist.t;
}

type t = {
  owner : int;  (** Domain id of the creator — the only legal writer. *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, Sim.Stats.Acc.t) Hashtbl.t;
  spans : (string, span) Hashtbl.t;
}

(* Decade buckets from 1 us to 1 s: allocation probes on big clusters
   span roughly this range (BENCH json has the exact means). *)
let span_boundaries = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let create () =
  {
    owner = (Domain.self () :> int);
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    spans = Hashtbl.create 16;
  }

let owner t = t.owner

(* Single-writer discipline: a registry is plain mutable state with no
   locking, so a stray cross-domain record would silently corrupt
   counts.  Every mutator asserts the caller is the creating domain;
   cross-domain {e reads} are fine once the writer has been joined
   (the join provides the happens-before edge). *)
let check_owner t =
  let d = (Domain.self () :> int) in
  if d <> t.owner then
    invalid_arg
      (Printf.sprintf
         "Obs.Prof: write from domain %d to a registry owned by domain %d \
          (registries are single-writer; merge after joining instead)"
         d t.owner)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let incr t name =
  check_owner t;
  Stdlib.incr (counter_ref t name)

let add t name by =
  check_owner t;
  counter_ref t name := !(counter_ref t name) + by

let set t name v =
  check_owner t;
  counter_ref t name := v
let counter t name = match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let sample t name v =
  check_owner t;
  let acc =
    match Hashtbl.find_opt t.gauges name with
    | Some a -> a
    | None ->
        let a = Sim.Stats.Acc.create () in
        Hashtbl.replace t.gauges name a;
        a
  in
  Sim.Stats.Acc.add acc v

let span t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
      let s =
        {
          s_count = 0;
          s_total_ns = 0.0;
          s_max_ns = 0.0;
          s_hist = Sim.Stats.Hist.create ~boundaries:span_boundaries;
        }
      in
      Hashtbl.replace t.spans name s;
      s

let record_span t name ns =
  check_owner t;
  let s = span t name in
  s.s_count <- s.s_count + 1;
  s.s_total_ns <- s.s_total_ns +. ns;
  if ns > s.s_max_ns then s.s_max_ns <- ns;
  Sim.Stats.Hist.add s.s_hist ns

let time t name f =
  let t0 = Clock.now_ns () in
  let r = f () in
  record_span t name (Clock.elapsed_ns ~since:t0);
  r

(* Associative merge of a per-cell registry into an aggregate: counters
   and histogram buckets are integers (exact, order-independent);
   span/gauge totals are float sums, so callers that need reproducible
   totals merge in a fixed order (cell submission order — never domain
   order).  Memo-hit {e rates} are not stored, only the underlying
   counters, so they recompute correctly from the merged registry. *)
let merge_into ~into src =
  check_owner into;
  Hashtbl.iter
    (fun name r -> counter_ref into name := !(counter_ref into name) + !r)
    src.counters;
  Hashtbl.iter
    (fun name acc ->
      match Hashtbl.find_opt into.gauges name with
      | Some dst -> Sim.Stats.Acc.merge_into ~into:dst acc
      | None ->
          let dst = Sim.Stats.Acc.create () in
          Sim.Stats.Acc.merge_into ~into:dst acc;
          Hashtbl.replace into.gauges name dst)
    src.gauges;
  Hashtbl.iter
    (fun name s ->
      let d = span into name in
      d.s_count <- d.s_count + s.s_count;
      d.s_total_ns <- d.s_total_ns +. s.s_total_ns;
      if s.s_max_ns > d.s_max_ns then d.s_max_ns <- s.s_max_ns;
      Sim.Stats.Hist.merge_into ~into:d.s_hist s.s_hist)
    src.spans

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted t.counters)

type gauge_view = { g_samples : int; g_mean : float; g_min : float; g_max : float }

let gauge_view acc =
  let n = Sim.Stats.Acc.count acc in
  {
    g_samples = n;
    g_mean = Sim.Stats.Acc.mean acc;
    g_min = (if n = 0 then 0.0 else Sim.Stats.Acc.min acc);
    g_max = (if n = 0 then 0.0 else Sim.Stats.Acc.max acc);
  }

let gauges t = List.map (fun (k, a) -> (k, gauge_view a)) (sorted t.gauges)

let find_gauge t name =
  Option.map gauge_view (Hashtbl.find_opt t.gauges name)

type span_view = {
  sp_count : int;
  sp_total_ns : float;
  sp_mean_ns : float;
  sp_max_ns : float;
  sp_p50_ns : float;
  sp_p90_ns : float;
  sp_p99_ns : float;
  sp_hist : int array;
}

(* Histogram-derived percentile: the upper edge of the bucket where the
   cumulative count crosses the quantile, clamped by the observed
   maximum (which is also the estimate for the open overflow bucket).
   Decade buckets make this an order-of-magnitude answer — exactly the
   resolution a tail-latency report needs. *)
let hist_percentile counts total max_ns q =
  if total = 0 then 0.0
  else begin
    let rank = q *. float_of_int total in
    let acc = ref 0 and bucket = ref (Array.length counts - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if float_of_int !acc >= rank then begin
             bucket := i;
             raise Exit
           end)
         counts
     with Exit -> ());
    if !bucket >= Array.length span_boundaries then max_ns
    else Float.min span_boundaries.(!bucket) max_ns
  end

let span_view s =
  let hist = Sim.Stats.Hist.counts s.s_hist in
  let pct q = hist_percentile hist s.s_count s.s_max_ns q in
  {
    sp_count = s.s_count;
    sp_total_ns = s.s_total_ns;
    sp_mean_ns =
      (if s.s_count = 0 then 0.0 else s.s_total_ns /. float_of_int s.s_count);
    sp_max_ns = s.s_max_ns;
    sp_p50_ns = pct 0.5;
    sp_p90_ns = pct 0.9;
    sp_p99_ns = pct 0.99;
    sp_hist = hist;
  }

let spans t = List.map (fun (k, s) -> (k, span_view s)) (sorted t.spans)

let find_span t name = Option.map span_view (Hashtbl.find_opt t.spans name)

(* ------------------------------------------------------------------ *)
(* Flat codec                                                          *)
(* ------------------------------------------------------------------ *)

(* A single-line textual round-trip for persisting a registry inside a
   flat [Json] string field (the sweep manifest).  [write_json] cannot
   serve: it nests, and its %g floats lose bits.  Records are
   ';'-separated, fields '|'-separated; floats use %h (hex), which is
   exact.  Metric names are identifiers like "sched/head_probe", so the
   separators never appear in practice — encode checks anyway. *)

let codec_name_ok name =
  name <> ""
  && String.for_all (fun ch -> ch <> '|' && ch <> ';' && ch <> '\n') name

let encode t =
  let b = Buffer.create 512 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char b ';';
        Buffer.add_string b s)
      fmt
  in
  let check name =
    if not (codec_name_ok name) then
      invalid_arg ("Obs.Prof.encode: reserved character in name: " ^ name)
  in
  List.iter
    (fun (k, r) ->
      check k;
      emit "c|%s|%d" k !r)
    (sorted t.counters);
  List.iter
    (fun (k, acc) ->
      check k;
      let n = Sim.Stats.Acc.count acc in
      let mn = if n = 0 then 0.0 else Sim.Stats.Acc.min acc in
      let mx = if n = 0 then 0.0 else Sim.Stats.Acc.max acc in
      emit "g|%s|%d|%h|%h|%h|%h" k n
        (Sim.Stats.Acc.total acc)
        (Sim.Stats.Acc.sum_sq acc)
        mn mx)
    (sorted t.gauges);
  List.iter
    (fun (k, s) ->
      check k;
      let hist =
        Sim.Stats.Hist.counts s.s_hist |> Array.to_list
        |> List.map string_of_int |> String.concat " "
      in
      emit "s|%s|%d|%h|%h|%s" k s.s_count s.s_total_ns s.s_max_ns hist)
    (sorted t.spans);
  Buffer.contents b

let decode str =
  let t = create () in
  let fail fmt =
    Printf.ksprintf (fun m -> invalid_arg ("Obs.Prof.decode: " ^ m)) fmt
  in
  let int_of s = try int_of_string s with _ -> fail "bad int %S" s in
  let float_of s = try float_of_string s with _ -> fail "bad float %S" s in
  if str <> "" then
    List.iter
      (fun record ->
        match String.split_on_char '|' record with
        | [ "c"; name; v ] -> counter_ref t name := int_of v
        | [ "g"; name; n; total; sum_sq; mn; mx ] ->
            let acc =
              Sim.Stats.Acc.restore ~count:(int_of n) ~total:(float_of total)
                ~sum_sq:(float_of sum_sq) ~min:(float_of mn)
                ~max:(float_of mx)
            in
            Hashtbl.replace t.gauges name acc
        | [ "s"; name; count; total_ns; max_ns; hist ] ->
            let counts =
              String.split_on_char ' ' hist
              |> List.map int_of |> Array.of_list
            in
            let s =
              {
                s_count = int_of count;
                s_total_ns = float_of total_ns;
                s_max_ns = float_of max_ns;
                s_hist =
                  Sim.Stats.Hist.restore ~boundaries:span_boundaries ~counts;
              }
            in
            Hashtbl.replace t.spans name s
        | _ -> fail "malformed record %S" record)
      (String.split_on_char ';' str);
  t

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let ms ns = ns /. 1e6

let pp_report ppf t =
  let spans = spans t and counters = counters t and gauges = gauges t in
  Format.fprintf ppf "profile:@.";
  if spans <> [] then begin
    Format.fprintf ppf
      "  spans (count / total ms / mean us / p50 us / p90 us / p99 us / max \
       ms):@.";
    List.iter
      (fun (name, v) ->
        Format.fprintf ppf "    %-24s %9d %11.3f %9.2f %9.2f %9.2f %9.2f %9.3f@."
          name v.sp_count (ms v.sp_total_ns) (v.sp_mean_ns /. 1e3)
          (v.sp_p50_ns /. 1e3) (v.sp_p90_ns /. 1e3) (v.sp_p99_ns /. 1e3)
          (ms v.sp_max_ns))
      spans;
    Format.fprintf ppf
      "    (span histogram buckets: <=1us 1-10us 10-100us 0.1-1ms 1-10ms 10-100ms 0.1-1s >1s)@.";
    List.iter
      (fun (name, v) ->
        Format.fprintf ppf "    %-24s %s@." name
          (String.concat " " (Array.to_list (Array.map string_of_int v.sp_hist))))
      spans
  end;
  if counters <> [] then begin
    Format.fprintf ppf "  counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "    %-32s %12d@." name v)
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "  gauges (samples / mean / min / max):@.";
    List.iter
      (fun (name, g) ->
        Format.fprintf ppf "    %-24s %9d %12.2f %10.0f %10.0f@." name
          g.g_samples g.g_mean g.g_min g.g_max)
      gauges
  end

(* Hand-rolled (sorted keys, one nesting level per section): the flat
   [Json] writer cannot express the nested sections. *)
let write_json b t =
  let add_key k =
    Buffer.add_char b '"';
    Buffer.add_string b k;
    Buffer.add_string b "\":"
  in
  let obj fields_fn =
    Buffer.add_char b '{';
    fields_fn ();
    Buffer.add_char b '}'
  in
  obj (fun () ->
      add_key "counters";
      obj (fun () ->
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              add_key k;
              Buffer.add_string b (string_of_int v))
            (counters t));
      Buffer.add_char b ',';
      add_key "spans";
      obj (fun () ->
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              add_key k;
              obj (fun () ->
                  add_key "count";
                  Buffer.add_string b (string_of_int v.sp_count);
                  Buffer.add_char b ',';
                  add_key "total_ns";
                  Buffer.add_string b (Printf.sprintf "%.0f" v.sp_total_ns);
                  Buffer.add_char b ',';
                  add_key "mean_ns";
                  Buffer.add_string b (Printf.sprintf "%.1f" v.sp_mean_ns);
                  Buffer.add_char b ',';
                  add_key "max_ns";
                  Buffer.add_string b (Printf.sprintf "%.0f" v.sp_max_ns);
                  Buffer.add_char b ',';
                  add_key "p50_ns";
                  Buffer.add_string b (Printf.sprintf "%.0f" v.sp_p50_ns);
                  Buffer.add_char b ',';
                  add_key "p90_ns";
                  Buffer.add_string b (Printf.sprintf "%.0f" v.sp_p90_ns);
                  Buffer.add_char b ',';
                  add_key "p99_ns";
                  Buffer.add_string b (Printf.sprintf "%.0f" v.sp_p99_ns);
                  Buffer.add_char b ',';
                  add_key "hist";
                  Buffer.add_char b '[';
                  Array.iteri
                    (fun j c ->
                      if j > 0 then Buffer.add_char b ',';
                      Buffer.add_string b (string_of_int c))
                    v.sp_hist;
                  Buffer.add_char b ']'))
            (spans t));
      Buffer.add_char b ',';
      add_key "gauges";
      obj (fun () ->
          List.iteri
            (fun i (k, g) ->
              if i > 0 then Buffer.add_char b ',';
              add_key k;
              obj (fun () ->
                  add_key "samples";
                  Buffer.add_string b (string_of_int g.g_samples);
                  Buffer.add_char b ',';
                  add_key "mean";
                  Buffer.add_string b (Printf.sprintf "%.3f" g.g_mean);
                  Buffer.add_char b ',';
                  add_key "min";
                  Buffer.add_string b (Printf.sprintf "%g" g.g_min);
                  Buffer.add_char b ',';
                  add_key "max";
                  Buffer.add_string b (Printf.sprintf "%g" g.g_max)))
            (gauges t)))
