(* Monotonic wall-clock for span timing.  Simulated time lives in
   [Sim.Engine]; this clock only ever measures how long the *simulator
   itself* took, so it must be monotone (gettimeofday can step
   backwards under NTP) and never appears in the event trace — traces
   stay bit-deterministic across runs. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns ~since = Int64.to_float (Int64.sub (Monotonic_clock.now ()) since)
