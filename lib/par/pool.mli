(** Fixed-size domain pool with a chunked work queue.

    The pool shards independent work items ("cells" — e.g. one
    simulation run of trace x scheme x seed x fault-config) across a
    fixed set of OCaml 5 domains and merges results {e in submission
    order}, so the combined output of {!run_cells} is byte-identical to
    a serial [Array.map] regardless of how many domains execute it or
    how the scheduler interleaves them.

    Determinism contract: [f] must be a pure function of its cell (no
    shared mutable state, no dependence on domain identity or timing).
    Everything it allocates — PRNGs, memo tables, profiling registries —
    must be per-call.  Under that contract the only nondeterminism left
    is wall-clock, which the rest of the stack already excludes from
    fingerprints.

    The queue hands out contiguous chunks of the cell array (sized
    adaptively by default — see {!run_cells}) via an atomic cursor, so
    load balancing is dynamic: a domain
    that finishes a cheap cell immediately claims the next one, which is
    what keeps one expensive cell (LC+S on Synth-28) from serialising
    the whole sweep.

    Not reentrant: calling {!run_cells} from inside a task running on
    the same pool can deadlock (the caller would occupy a worker while
    waiting for workers). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves
    to. *)

val create : size:int -> t
(** [create ~size] starts a pool of [size] worker domains ([size >= 1]).
    A pool of size 1 spawns no domains at all: work runs inline on the
    calling domain, making the serial path zero-overhead and trivially
    identical to [Array.map]. *)

val size : t -> int
(** Number of workers (1 means inline/serial). *)

val run_cells : ?chunk:int -> t -> f:('a -> 'b) -> 'a array -> 'b array
(** [run_cells pool ~f cells] applies [f] to every cell and returns the
    results indexed exactly like [cells] (submission order), whatever
    the execution interleaving.  Blocks until every cell has finished.

    If any [f cell] raises, the batch is cancelled (already-claimed
    cells finish, unclaimed ones are skipped) and the exception of the
    lowest-indexed cell {e observed} to fail is re-raised on the caller
    with its backtrace.  With a single failing cell this is exact; when
    several fail in a race, which ones ran before cancellation can vary,
    but the caller always sees one of the real failures.

    [chunk] is the number of consecutive cells claimed per queue
    operation.  Default: adaptive — about eight chunks per worker
    ([max 1 (n / (8 * size))]), which keeps load balancing dynamic for
    expensive cells while large batches of cheap cells touch the cursor
    O(size) times instead of O(n).  Pass an explicit value to pin it
    (e.g. [~chunk:1] for maximally dynamic scheduling).  Chunking never
    changes results: the merge is slot-indexed. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Any subsequent [run_cells]
    raises [Invalid_argument]. *)

val with_pool : size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] runs [f] with a fresh pool and shuts it down on
    the way out, exception or not. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** One-shot convenience: [with_pool ~size:jobs (fun p -> run_cells p ~f
    cells)], with [jobs <= 1] short-circuiting to a plain serial map. *)
