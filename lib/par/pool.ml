(* A fixed-size domain pool over a Mutex/Condition work queue — stdlib
   only, no new dependencies.  The queue holds closures; [run_cells]
   enqueues one "driver" per worker, and the drivers drain an atomic
   cursor over the cell array in chunks.  Results land in a slot array
   indexed by submission position, so merge order never depends on which
   domain ran what. *)

type t = {
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable quitting : bool;
  mutable workers : unit Domain.t list;
  mutable alive : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.quitting do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* quitting *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (* Drivers trap their own exceptions; this guard only keeps a
         buggy task from killing the worker loop. *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      quitting = false;
      workers = [];
      alive = true;
    }
  in
  (* A pool of one never spawns: [run_cells] short-circuits to a serial
     map on the calling domain. *)
  if size > 1 then
    t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.mutex;
    t.quitting <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~size f =
  let t = create ~size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_cells ?chunk t ~f cells =
  if not t.alive then invalid_arg "Pool.run_cells: pool is shut down";
  let n = Array.length cells in
  (* Adaptive default: about eight chunks per worker.  Enough slack for
     dynamic load balancing (one slow cell never strands more than 1/8th
     of a worker's share behind it), while batches of cheap cells claim
     the atomic cursor O(size) times instead of O(n).  An explicit
     [chunk] always wins; chunking never affects results — the merge is
     slot-indexed, not arrival-ordered. *)
  let chunk =
    match chunk with
    | Some c ->
        if c < 1 then invalid_arg "Pool.run_cells: chunk must be >= 1";
        c
    | None -> max 1 (n / (t.size * 8))
  in
  if n = 0 then [||]
  else if t.size = 1 then Array.map f cells
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let cancelled = Atomic.make false in
    (* Batch-local rendezvous: drivers report completion and the
       lowest-indexed failure under this mutex; the final unlock/lock
       pair is also what publishes the result slots to the caller. *)
    let bm = Mutex.create () in
    let finished = Condition.create () in
    let first_error = ref None in
    let record_error i e bt =
      Mutex.lock bm;
      (match !first_error with
      | Some (j, _, _) when j <= i -> ()
      | _ -> first_error := Some (i, e, bt));
      Mutex.unlock bm;
      Atomic.set cancelled true
    in
    let rec drive () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        if not (Atomic.get cancelled) then
          for i = start to Stdlib.min n (start + chunk) - 1 do
            if not (Atomic.get cancelled) then begin
              match f cells.(i) with
              | r -> results.(i) <- Some r
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  record_error i e bt
            end
          done;
        drive ()
      end
    in
    let drivers = Stdlib.min t.size ((n + chunk - 1) / chunk) in
    let remaining = ref drivers in
    let driver () =
      drive ();
      Mutex.lock bm;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock bm
    in
    Mutex.lock t.mutex;
    for _ = 1 to drivers do
      Queue.push driver t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait finished bm
    done;
    Mutex.unlock bm;
    match !first_error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function
            | Some r -> r
            | None -> assert false (* every slot filled when no error *))
          results
  end

let map ~jobs ~f cells =
  if jobs <= 1 then Array.map f cells
  else with_pool ~size:jobs (fun t -> run_cells t ~f cells)
