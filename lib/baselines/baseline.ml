open Fattree

(* First [size] free nodes in id order.  Hops from one nonempty leaf to
   the next through the state's word-level leaf index
   ([State.next_nonempty_leaf]), so fully busy stretches of a saturated
   machine cost one word scan instead of a per-leaf summary read, then
   takes slots from the cached free-slot masks. *)
let get_allocation st ~job ~size =
  if size <= 0 || State.total_free_nodes st < size then None
  else begin
    let topo = State.topo st in
    let nodes = Array.make size (-1) in
    let found = ref 0 in
    let leaf = ref (State.next_nonempty_leaf st ~from:0) in
    while !found < size && !leaf <> None do
      let l = Option.get !leaf in
      let first = Topology.leaf_first_node topo l in
      let take = min (State.free_nodes_on_leaf st l) (size - !found) in
      let slots =
        Jigsaw_core.Mask.take_lowest (State.free_slot_mask st l) take
      in
      Array.iter
        (fun s ->
          nodes.(!found) <- first + s;
          incr found)
        (Jigsaw_core.Mask.to_array slots);
      leaf := State.next_nonempty_leaf st ~from:(l + 1)
    done;
    if !found < size then None
    else Some (Alloc.nodes_only ~job ~size nodes)
  end
