open Fattree

let classify topo size =
  if size <= Topology.m1 topo then `Small
  else if size <= Topology.nodes_per_pod topo then `Medium
  else `Large

(* Leaf-sized jobs: first leaf with enough free nodes.  Such jobs use no
   uplinks, so they may share a leaf with any other job's nodes. *)
let alloc_small st ~job ~size =
  let topo = State.topo st in
  let rec go leaf =
    if leaf >= Topology.num_leaves topo then None
    else if State.free_nodes_on_leaf st leaf >= size then begin
      let first = Topology.leaf_first_node topo leaf in
      let slots = Jigsaw_core.Mask.take_lowest (State.free_slot_mask st leaf) size in
      let nodes = Array.map (fun s -> first + s) (Jigsaw_core.Mask.to_array slots) in
      Some (Alloc.nodes_only ~job ~size nodes)
    end
    else go (leaf + 1)
  in
  go 0

(* A leaf whose uplinks are implicitly claimable: no other pod- or
   machine-scale job has reserved them. *)
let leaf_links_free st leaf =
  let topo = State.topo st in
  State.leaf_up_mask st ~leaf ~demand:1.0 = Jigsaw_core.Mask.full (Topology.m1 topo)

let leaf_cables topo leaf =
  Array.init (Topology.m1 topo) (fun i ->
      Topology.leaf_l2_cable topo ~leaf ~l2_index:i)

let take_leaf_nodes st leaf take =
  let topo = State.topo st in
  let first = Topology.leaf_first_node topo leaf in
  let slots = Jigsaw_core.Mask.take_lowest (State.free_slot_mask st leaf) take in
  Array.map (fun s -> first + s) (Jigsaw_core.Mask.to_array slots)

(* Pod-sized jobs: packed into one pod, on leaves whose uplinks no other
   pod/machine-scale job has reserved.  Every touched leaf's uplinks are
   reserved whole (the implicit link fragmentation of Figure 2, center) —
   leftover nodes on those leaves remain usable, but only by leaf-sized
   jobs. *)
let alloc_medium st ~job ~size =
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  let rec go pod =
    if pod >= Topology.pods topo then None
    else begin
      let eligible =
        List.filter_map
          (fun l ->
            let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
            let free = State.free_nodes_on_leaf st leaf in
            if free > 0 && leaf_links_free st leaf then Some (leaf, free)
            else None)
          (List.init m2 Fun.id)
      in
      let total = List.fold_left (fun acc (_, f) -> acc + f) 0 eligible in
      if total >= size then begin
        (* Pack into as few leaves as possible (fullest first) so the
           implicit link reservation touches the fewest uplinks. *)
        let eligible =
          List.sort (fun (_, a) (_, b) -> compare b a) eligible
        in
        let nodes = ref [] and cables = ref [] and left = ref size in
        List.iter
          (fun (leaf, free) ->
            if !left > 0 then begin
              let take = min free !left in
              nodes := Array.to_list (take_leaf_nodes st leaf take) @ !nodes;
              cables := Array.to_list (leaf_cables topo leaf) @ !cables;
              left := !left - take
            end)
          eligible;
        Some
          (Alloc.exclusive ~job ~size
             ~nodes:(Sim.Intsort.of_list !nodes)
             ~leaf_cables:(Sim.Intsort.of_list !cables)
             ~l2_cables:[||])
      end
      else go (pod + 1)
    end
  in
  go 0

(* A pod whose links no other pod/machine-scale job has reserved. *)
let pod_links_free st pod =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  let ok = ref true in
  for l = 0 to m2 - 1 do
    if not (leaf_links_free st (Topology.leaf_of_coords topo ~pod ~leaf:l)) then
      ok := false
  done;
  for i = 0 to m1 - 1 do
    let l2 = Topology.l2_of_coords topo ~pod ~index:i in
    if State.l2_up_mask st ~l2 ~demand:1.0 <> Jigsaw_core.Mask.full m2 then
      ok := false
  done;
  !ok

let pod_free_nodes st pod =
  let topo = State.topo st in
  let m2 = Topology.m2 topo in
  let acc = ref 0 in
  for l = 0 to m2 - 1 do
    acc := !acc + State.free_nodes_on_leaf st (Topology.leaf_of_coords topo ~pod ~leaf:l)
  done;
  !acc

(* Machine-spanning jobs: whole pods whose links are unreserved; every
   link of every chosen pod is reserved.  Leftover nodes in the last pod
   remain usable only by leaf-sized jobs. *)
let alloc_large st ~job ~size =
  let topo = State.topo st in
  let m1 = Topology.m1 topo and m2 = Topology.m2 topo in
  let pods =
    List.filter
      (fun p -> pod_links_free st p && pod_free_nodes st p > 0)
      (List.init (Topology.pods topo) Fun.id)
  in
  (* First-fit: accumulate pods until the job fits. *)
  let rec pick chosen got = function
    | _ when got >= size -> Some (List.rev chosen)
    | [] -> None
    | p :: rest -> pick (p :: chosen) (got + pod_free_nodes st p) rest
  in
  match pick [] 0 pods with
  | None -> None
  | Some chosen ->
      let nodes = ref [] and lc = ref [] and l2c = ref [] and left = ref size in
      List.iter
        (fun pod ->
          for l = 0 to m2 - 1 do
            let leaf = Topology.leaf_of_coords topo ~pod ~leaf:l in
            if !left > 0 then begin
              let take = min (State.free_nodes_on_leaf st leaf) !left in
              if take > 0 then
                nodes := Array.to_list (take_leaf_nodes st leaf take) @ !nodes;
              left := !left - take
            end;
            lc := Array.to_list (leaf_cables topo leaf) @ !lc
          done;
          for i = 0 to m1 - 1 do
            let l2 = Topology.l2_of_coords topo ~pod ~index:i in
            for j = 0 to m2 - 1 do
              l2c := Topology.l2_spine_cable topo ~l2 ~spine_index:j :: !l2c
            done
          done)
        chosen;
      Some
        (Alloc.exclusive ~job ~size
           ~nodes:(Sim.Intsort.of_list !nodes)
           ~leaf_cables:(Sim.Intsort.of_list !lc)
           ~l2_cables:(Sim.Intsort.of_list !l2c))

let get_allocation st ~job ~size =
  if
    size <= 0
    || size > Topology.num_nodes (State.topo st)
    || State.total_free_nodes st < size
  then None
  else begin
    match classify (State.topo st) size with
    | `Small -> alloc_small st ~job ~size
    | `Medium -> alloc_medium st ~job ~size
    | `Large -> alloc_large st ~job ~size
  end
