open Fattree

(* LaaS's two-level conditions (equal nodes per leaf plus a remainder
   leaf over a common L2 set) are the ones Jigsaw shares — Algorithm 1's
   footnote: "As LaaS shares a few conditions with Jigsaw, its algorithm
   is similar up to here [the two-level search]".  So a job that fits in
   one pod is placed exactly as Jigsaw would place it, with no padding.
   Only allocations spanning pods go through LaaS's reduction to two
   levels, which makes leaves atomic and rounds the request up. *)
let probe ?budget st ~job ~size =
  if size <= 0 || State.total_free_nodes st < size then
    Jigsaw_core.Partition.Infeasible
  else begin
    match
      Jigsaw_core.Jigsaw.probe ?budget ~two_level_only:true st ~job ~size
    with
    | Jigsaw_core.Partition.Found _ as ok -> ok
    | Jigsaw_core.Partition.Infeasible | Jigsaw_core.Partition.Exhausted ->
        (* The two-level pass is unbudgeted, so only the padded
           three-level search can report a cut-off. *)
        Jigsaw_core.Jigsaw.probe_whole_leaves ?budget st ~job ~size
  end

let get_allocation ?budget st ~job ~size =
  Jigsaw_core.Partition.to_option (probe ?budget st ~job ~size)
