(** Links as a Service (LaaS) scheduling [Zahavi et al. 2016].

    LaaS allocates dedicated links and nodes like Jigsaw, but avoids the
    three-level placement problem by reducing it to two levels: whole
    leaves take the place of nodes, so every request is rounded up to a
    multiple of the leaf size.  The rounding causes the internal node
    fragmentation (grey nodes of the paper's Figure 2, left) that keeps
    LaaS utilization at 90–93%.

    The placement itself is a special case of the Jigsaw condition space
    (full leaves, no remainder leaf), so this module delegates to
    [Jigsaw.get_allocation_whole_leaves]. *)

val probe :
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Jigsaw_core.Partition.probe
(** Like {!get_allocation} but distinguishes a definitive no-fit from a
    search-budget cut-off (see {!Jigsaw_core.Partition.probe}). *)

val get_allocation :
  ?budget:int ->
  Fattree.State.t ->
  job:int ->
  size:int ->
  Jigsaw_core.Partition.t option
(** A whole-leaf partition holding [ceil(size / m1) * m1] nodes, or
    [None].  [Partition.to_alloc] of the result claims the padded node
    set; the partition records the requested [size]. *)
