(* Parallel sweep cells.  A cell is a self-contained simulation: its
   [run_cell] builds every mutable structure (cluster state, queues,
   memos, PRNGs, profile registry) from scratch, so cells can run on any
   domain in any order.  Determinism then only needs the merge to be
   slot-indexed — which [Par.Pool.run_cells] guarantees — plus profile
   registries combined in cell order, never domain order. *)

type cell = {
  label : string;
  workload : Trace.Workload.t;
  radix : int;
  allocator : Allocator.t;
  scenario : Trace.Scenario.t;
  scenario_seed : int;
  backfill_window : int;
  backfill : bool;
  faults : Trace.Faults.t;
  resilience : Simulator.resilience;
  profile : bool;
}

let cell ?label ?(scenario = Trace.Scenario.No_speedup) ?(scenario_seed = 1)
    ?(backfill_window = 50) ?(backfill = true) ?(faults = Trace.Faults.none)
    ?(resilience = Simulator.no_resilience) ?(profile = false) ~radix allocator
    workload =
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "%s/%s" workload.Trace.Workload.name
          allocator.Allocator.name
  in
  {
    label;
    workload;
    radix;
    allocator;
    scenario;
    scenario_seed;
    backfill_window;
    backfill;
    faults;
    resilience;
    profile;
  }

type result = {
  metrics : Metrics.t;
  prof : Obs.Prof.t option;
  wall_s : float;
}

let run_cell c =
  let t0 = Unix.gettimeofday () in
  (* The registry is created on the executing domain — it owns it until
     the pool joins, after which the coordinator may read and merge. *)
  let prof = if c.profile then Some (Obs.Prof.create ()) else None in
  let cfg =
    {
      Simulator.allocator = c.allocator;
      radix = c.radix;
      scenario = c.scenario;
      scenario_seed = c.scenario_seed;
      backfill_window = c.backfill_window;
      backfill = c.backfill;
      faults = c.faults;
      resilience = c.resilience;
      sink = Obs.Sink.null;
      prof;
    }
  in
  let metrics = Simulator.run cfg c.workload in
  { metrics; prof; wall_s = Unix.gettimeofday () -. t0 }

let run_in ?chunk pool cells = Par.Pool.run_cells ?chunk pool ~f:run_cell cells

let run ?chunk ~jobs cells =
  let jobs = if jobs = 0 then Par.Pool.default_jobs () else jobs in
  if jobs <= 1 then Array.map run_cell cells
  else Par.Pool.with_pool ~size:jobs (fun p -> run_in ?chunk p cells)

let merged_profile results =
  if not (Array.exists (fun r -> r.prof <> None) results) then None
  else begin
    let agg = Obs.Prof.create () in
    Array.iter
      (fun r ->
        match r.prof with
        | Some p -> Obs.Prof.merge_into ~into:agg p
        | None -> ())
      results;
    Some agg
  end

let grid ?(profile = false) ?(faults_for = fun _ -> Trace.Faults.none) ~full ()
    =
  let entries = Trace.Presets.all ~full in
  List.concat_map
    (fun (e : Trace.Presets.entry) ->
      List.map
        (fun alloc ->
          cell ~faults:(faults_for e) ~profile ~radix:e.cluster_radix alloc
            e.workload)
        Allocator.all)
    entries
  |> Array.of_list
